// The supervisor: probe loop, failover orchestration, re-protection and
// the topology endpoint. One goroutine owns all shard state; probes fan
// out in parallel each tick but join before any verdict is read, so the
// detectors and the promote/attach decisions are single-writer. Only the
// published topology (and the event meter behind StatsLines) crosses
// goroutines, under one mutex.
package ctl

import (
	"errors"
	"io"
	"net"
	"strconv"
	"strings"
	"sync"
	"time"

	"shieldstore/internal/client"
	"shieldstore/internal/proto"
	"shieldstore/internal/sim"
)

// Node names one data-node endpoint and the options to dial it with.
type Node struct {
	Addr string
	Link client.Options
}

// ShardConfig is one shard's initial primary/replica pair.
type ShardConfig struct {
	Primary Node
	// Replica is the shard's standby; a zero Addr means the shard starts
	// life unprotected (re-protection will attach a spare if configured).
	Replica Node
}

// Config parameterizes a supervisor.
type Config struct {
	// Shards lists the cluster's pairs in ring order — the same order
	// every cluster client uses.
	Shards []ShardConfig
	// ProbeInterval is the health-probe tick (default 25ms).
	ProbeInterval time.Duration
	// ProbeTimeout deadline-bounds each probe's dial, handshake and
	// round trip (default 250ms): a wedged node costs one bounded wait
	// per tick, never a hang.
	ProbeTimeout time.Duration
	// DownAfter / UpAfter parameterize every node's failure detector
	// (Detector; defaults 3 and 2).
	DownAfter, UpAfter int
	// LagAlarm is the replication-lag alarm threshold in frames
	// (assigned - acked; default 4096). Crossing it on a protected shard
	// raises the topology's alarm flag and counts CtrCtlLagAlarm.
	LagAlarm uint64
	// SpawnSpare, when set, provisions a fresh empty replica-role node
	// for shard — the re-protection hook. After a failover (or a standby
	// death) the supervisor spawns a spare, attaches it to the shard's
	// active node (CmdReplAttach) and declares the shard protected once
	// the spare's watermark catches up. Unset, failed-over shards stay
	// unprotected and the topology says so.
	SpawnSpare func(shard int) (Node, error)
	// DropProbe, when set, drops matching probes before they touch the
	// network — the chaos tests' flaky-supervisor-link injection point.
	DropProbe func(shard int, addr string) bool
	// Listener serves CmdTopology/CmdPing/CmdStats (plaintext frames —
	// the topology holds no secrets and a lying supervisor can only
	// redirect reads; enclave-enforced epochs fence writes). Nil listens
	// on 127.0.0.1:0.
	Listener net.Listener
	// Logf receives orchestration decisions and probe failures.
	Logf func(format string, args ...any)
}

func (c Config) withDefaults() Config {
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 25 * time.Millisecond
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = 250 * time.Millisecond
	}
	if c.DownAfter <= 0 {
		c.DownAfter = 3
	}
	if c.UpAfter <= 0 {
		c.UpAfter = 2
	}
	if c.LagAlarm == 0 {
		c.LagAlarm = 4096
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// nodeState is one probed node: its endpoint, detector, lazily-dialed
// probe connection, and the outcome of the latest probe round.
type nodeState struct {
	node  Node
	det   Detector
	conn  *client.Client
	ok    bool              // latest probe succeeded
	stats map[string]string // latest repl_* stats (nil when probe failed)
}

func (ns *nodeState) close() {
	if ns.conn != nil {
		ns.conn.Close()
		ns.conn = nil
	}
}

// shardState is one shard's orchestration state, owned by the run loop.
type shardState struct {
	idx          int
	active       *nodeState
	standby      *nodeState // nil while unprotected
	pendingSpare *Node      // spawned but not yet attached
	epoch        uint64
	protected    bool
	lagAlarm     bool
	failovers    int
}

// Supervisor is a running control plane.
type Supervisor struct {
	cfg Config
	ln  net.Listener

	mu      sync.Mutex
	topo    Topology
	version uint64
	meter   *sim.Meter
	conns   map[net.Conn]struct{}
	closed  bool

	shards []*shardState

	quit chan struct{}
	done chan struct{}
	wg   sync.WaitGroup
}

// Start builds and starts a supervisor: probe loop plus topology
// endpoint. Close stops both.
func Start(cfg Config) (*Supervisor, error) {
	cfg = cfg.withDefaults()
	if len(cfg.Shards) == 0 {
		return nil, errors.New("ctl: no shards configured")
	}
	ln := cfg.Listener
	if ln == nil {
		var err error
		ln, err = net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
	}
	s := &Supervisor{
		cfg:   cfg,
		ln:    ln,
		meter: sim.NewMeter(sim.DefaultCostModel()),
		conns: make(map[net.Conn]struct{}),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	for i, sc := range cfg.Shards {
		st := &shardState{
			idx:    i,
			active: s.newNodeState(sc.Primary),
			epoch:  1,
		}
		if sc.Replica.Addr != "" {
			st.standby = s.newNodeState(sc.Replica)
		}
		s.shards = append(s.shards, st)
	}
	s.publish()
	s.wg.Add(1)
	go s.acceptLoop()
	go s.run()
	return s, nil
}

func (s *Supervisor) newNodeState(n Node) *nodeState {
	return &nodeState{
		node: n,
		det:  Detector{DownAfter: s.cfg.DownAfter, UpAfter: s.cfg.UpAfter},
	}
}

// Addr is the topology endpoint clients fetch CmdTopology from.
func (s *Supervisor) Addr() string { return s.ln.Addr().String() }

// Topology returns a copy of the current published view.
func (s *Supervisor) Topology() Topology {
	s.mu.Lock()
	defer s.mu.Unlock()
	t := s.topo
	t.Shards = append([]ShardTopo(nil), s.topo.Shards...)
	return t
}

// StatsLines renders the supervisor's own counters ("name=value").
func (s *Supervisor) StatsLines() []string {
	s.mu.Lock()
	defer s.mu.Unlock()
	ev := s.meter.Snapshot().Events
	return []string{
		"ctl_version=" + strconv.FormatUint(s.version, 10),
		"ctl_probes=" + strconv.FormatUint(ev[sim.CtrCtlProbe], 10),
		"ctl_failovers=" + strconv.FormatUint(ev[sim.CtrCtlFailover], 10),
		"ctl_lag_alarms=" + strconv.FormatUint(ev[sim.CtrCtlLagAlarm], 10),
	}
}

// Close stops the probe loop, the topology endpoint, and every probe
// connection.
func (s *Supervisor) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.quit)
	<-s.done // the loop owns the probe connections; wait before closing them
	s.ln.Close()
	s.mu.Lock()
	for c := range s.conns {
		c.Close()
	}
	s.mu.Unlock()
	s.wg.Wait()
	for _, st := range s.shards {
		st.active.close()
		if st.standby != nil {
			st.standby.close()
		}
	}
}

func (s *Supervisor) logf(format string, args ...any) { s.cfg.Logf(format, args...) }

func (s *Supervisor) count(c sim.Counter) {
	s.mu.Lock()
	s.meter.Count(c)
	s.mu.Unlock()
}

// --- probe loop ---

func (s *Supervisor) run() {
	defer close(s.done)
	tick := time.NewTicker(s.cfg.ProbeInterval)
	defer tick.Stop()
	for {
		select {
		case <-s.quit:
			return
		case <-tick.C:
		}
		s.probeAll()
		for _, st := range s.shards {
			s.evalShard(st)
		}
	}
}

// probeAll probes every node of every shard in parallel, joins, then
// folds the outcomes into the detectors single-threaded.
func (s *Supervisor) probeAll() {
	var wg sync.WaitGroup
	for _, st := range s.shards {
		for _, ns := range []*nodeState{st.active, st.standby} {
			if ns == nil {
				continue
			}
			wg.Add(1)
			go func(shard int, ns *nodeState) {
				defer wg.Done()
				s.probeNode(shard, ns)
			}(st.idx, ns)
		}
	}
	wg.Wait()
	for _, st := range s.shards {
		st.active.det.Observe(st.active.ok)
		s.count(sim.CtrCtlProbe)
		if st.standby != nil {
			st.standby.det.Observe(st.standby.ok)
			s.count(sim.CtrCtlProbe)
		}
	}
}

// probeNode runs one deadline-bounded health+stats probe. A node counts
// as failed when it is unreachable, times out, or reports an unhealable
// partition (it answers, but it cannot serve its whole key range and
// retrying will not help — exactly what failover exists for).
func (s *Supervisor) probeNode(shard int, ns *nodeState) {
	ns.ok = false
	ns.stats = nil
	if s.cfg.DropProbe != nil && s.cfg.DropProbe(shard, ns.node.Addr) {
		return
	}
	if ns.conn == nil {
		link := ns.node.Link
		link.Timeout = s.cfg.ProbeTimeout
		link.Retry = client.RetryPolicy{} // the detector is the retry policy
		c, err := client.Dial(ns.node.Addr, link)
		if err != nil {
			return
		}
		ns.conn = c
	}
	health, err := ns.conn.Health()
	if err == nil {
		var stats []string
		stats, err = ns.conn.Stats()
		if err == nil {
			for _, l := range health {
				if strings.Contains(l, "=unhealable") {
					return // reachable but unserviceable: a miss
				}
			}
			ns.stats = parseKV(stats)
			ns.ok = true
			return
		}
	}
	ns.conn.Close()
	ns.conn = nil
}

// --- orchestration ---

// evalShard makes this tick's decisions for one shard, in priority
// order: reconcile a fallback promotion the clients performed while the
// supervisor was unreachable, orchestrate a failover for a dead active,
// drop a dead standby, re-protect an unprotected shard, and track
// protection/lag off the active's replication stats.
func (s *Supervisor) evalShard(st *shardState) {
	act := st.active

	// A writable cluster node reporting repl_fenced=1 means somebody won
	// an epoch race we did not run — a client's fallback failover
	// promoted the standby while this supervisor was unreachable. The
	// promotion already happened inside the enclaves; reconcile the
	// topology to it instead of fighting it.
	if act.ok && act.stats["repl_fenced"] == "1" &&
		st.standby != nil && st.standby.ok && st.standby.stats["repl_role"] == "promoted" {
		if ep := parseUint(st.standby.stats["repl_epoch"]); ep > st.epoch {
			st.epoch = ep
		}
		st.failovers++
		s.count(sim.CtrCtlFailover)
		s.swapActive(st, "reconciled fallback promotion")
		return
	}

	if act.det.Down() {
		// Promote only a live, caught-up standby: an unsynced spare is
		// missing acked writes and promoting it would lose them — better
		// a longer blackout than a silent gap.
		if st.standby != nil && !st.standby.det.Down() && st.protected {
			s.promoteStandby(st)
		}
		return
	}

	if st.standby != nil && st.standby.det.Down() {
		s.logf("ctl: shard %d: standby %s down, shard unprotected", st.idx, st.standby.node.Addr)
		st.standby.close()
		st.standby = nil
		st.protected = false
		s.publish()
	}

	if st.standby == nil && s.cfg.SpawnSpare != nil {
		s.reprotect(st)
		return
	}

	// Protection + lag monitoring off the active's shipper stats.
	if st.standby != nil && act.stats != nil {
		if !st.protected && act.stats["repl_synced"] == "1" {
			st.protected = true
			s.logf("ctl: shard %d: protected (replica %s caught up)", st.idx, st.standby.node.Addr)
			s.publish()
		}
		alarm := st.protected && parseUint(act.stats["repl_lag"]) > s.cfg.LagAlarm
		if alarm != st.lagAlarm {
			st.lagAlarm = alarm
			if alarm {
				s.count(sim.CtrCtlLagAlarm)
				s.logf("ctl: shard %d: replication lag %s frames over alarm threshold",
					st.idx, act.stats["repl_lag"])
			}
			s.publish()
		}
	}
}

// promoteStandby issues the supervisor-owned Promote(epoch+1) and swaps
// the standby in as the shard's active node.
func (s *Supervisor) promoteStandby(st *shardState) {
	tgt := st.standby
	if tgt.conn == nil {
		return // probe redials next tick
	}
	newEpoch := st.epoch + 1
	ep, err := tgt.conn.Promote(newEpoch)
	if err != nil {
		if ep > newEpoch {
			// The node is already past our target epoch: a promotion we
			// did not perform (fallback failover) won. Adopt its epoch.
			newEpoch = ep
		} else {
			s.logf("ctl: shard %d: promote %s to epoch %d: %v", st.idx, tgt.node.Addr, newEpoch, err)
			tgt.conn.Close()
			tgt.conn = nil
			return
		}
	}
	st.epoch = newEpoch
	st.failovers++
	s.count(sim.CtrCtlFailover)
	s.swapActive(st, "orchestrated failover")
}

// swapActive repoints the shard at its standby and retires the deposed
// node from probing — a recovered revenant is not failed back to; it is
// fenced by its own shipping the moment it talks to the new active.
func (s *Supervisor) swapActive(st *shardState, why string) {
	old := st.active
	st.active = st.standby
	st.standby = nil
	st.protected = false
	st.lagAlarm = false
	old.close()
	s.logf("ctl: shard %d: %s: active now %s at epoch %d", st.idx, why, st.active.node.Addr, st.epoch)
	s.publish()
}

// reprotect drives an unprotected shard back toward a protected pair:
// spawn a spare once, then attach it to the active node (CmdReplAttach,
// which bootstraps it through the shipper's snapshot path). Protection
// itself is declared later, by the stats monitor, when the spare's
// watermark has caught up.
func (s *Supervisor) reprotect(st *shardState) {
	if st.pendingSpare == nil {
		sp, err := s.cfg.SpawnSpare(st.idx)
		if err != nil {
			s.logf("ctl: shard %d: spawn spare: %v", st.idx, err)
			return
		}
		s.logf("ctl: shard %d: spawned spare %s", st.idx, sp.Addr)
		st.pendingSpare = &sp
	}
	act := st.active
	if !act.ok || act.conn == nil {
		return
	}
	if err := act.conn.ReplAttach(st.pendingSpare.Addr); err != nil {
		s.logf("ctl: shard %d: attach spare %s: %v", st.idx, st.pendingSpare.Addr, err)
		act.conn.Close()
		act.conn = nil
		return
	}
	st.standby = s.newNodeState(*st.pendingSpare)
	st.pendingSpare = nil
	st.protected = false
	s.logf("ctl: shard %d: attached spare %s, bootstrapping", st.idx, st.standby.node.Addr)
	s.publish()
}

// publish rebuilds and versions the topology from the loop-owned shard
// state. Called from the run loop (and once from Start).
func (s *Supervisor) publish() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.version++
	t := Topology{Version: s.version}
	for _, st := range s.shards {
		e := ShardTopo{
			Shard:     st.idx,
			Epoch:     st.epoch,
			Primary:   st.active.node.Addr,
			Protected: st.protected,
			LagAlarm:  st.lagAlarm,
			Failovers: st.failovers,
		}
		if st.standby != nil {
			e.Replica = st.standby.node.Addr
		}
		t.Shards = append(t.Shards, e)
	}
	s.topo = t
}

// --- topology endpoint ---

// acceptLoop serves the topology endpoint: plaintext request/response
// frames answering CmdTopology, CmdPing and CmdStats.
func (s *Supervisor) acceptLoop() {
	defer s.wg.Done()
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			return
		}
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			conn.Close()
			return
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			s.serveConn(conn)
		}()
	}
}

func (s *Supervisor) serveConn(conn net.Conn) {
	var frame []byte
	var req proto.Request
	for {
		var err error
		frame, err = proto.ReadFrameInto(conn, frame[:0])
		if err != nil {
			if !errors.Is(err, io.EOF) {
				return
			}
			return
		}
		resp := proto.Response{Status: proto.StatusError}
		if derr := proto.DecodeRequestInto(&req, frame); derr == nil {
			switch req.Cmd {
			case proto.CmdPing:
				resp = proto.Response{Status: proto.StatusOK}
			case proto.CmdTopology:
				t := s.Topology()
				resp = proto.Response{
					Status: proto.StatusOK,
					Num:    int64(t.Version),
					Value:  proto.EncodeList(toBytes(t.Lines())),
				}
			case proto.CmdStats:
				resp = proto.Response{
					Status: proto.StatusOK,
					Value:  proto.EncodeList(toBytes(s.StatsLines())),
				}
			}
		}
		if err := proto.WriteFrame(conn, proto.AppendResponse(nil, &resp)); err != nil {
			return
		}
	}
}

// --- helpers ---

func toBytes(lines []string) [][]byte {
	out := make([][]byte, len(lines))
	for i, l := range lines {
		out[i] = []byte(l)
	}
	return out
}

// parseKV splits "name=value" stats lines into a map.
func parseKV(lines []string) map[string]string {
	m := make(map[string]string, len(lines))
	for _, l := range lines {
		if k, v, ok := strings.Cut(l, "="); ok {
			m[k] = v
		}
	}
	return m
}

func parseUint(v string) uint64 {
	n, _ := strconv.ParseUint(v, 10, 64)
	return n
}
