// Supervisor orchestration, end to end over real wires: a killed
// primary is detected by the probe loop, its replica promoted at
// epoch+1, the topology republished, and the shard re-protected by
// spawning and attaching a spare — all without any client deciding
// anything. Flaky probe links never promote. These tests use the
// in-process cluster harness; the full adversarial schedule lives in
// chaos_test.go.
package ctl_test

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"shieldstore/internal/client"
	"shieldstore/internal/cluster"
	"shieldstore/internal/ctl"
)

// startPairs boots a Secure primary/replica harness for ctl tests.
func startPairs(t *testing.T, cfg cluster.HarnessConfig) *cluster.Harness {
	t.Helper()
	if cfg.Buckets == 0 {
		cfg.Buckets = 1 << 10
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = 2
	}
	cfg.Secure = true
	cfg.Replicas = true
	cfg.Logf = t.Logf
	h, err := cluster.StartHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	return h
}

// supervisorFor starts a supervisor covering every harness pair. It is
// registered for cleanup after the harness, so it closes first.
func supervisorFor(t *testing.T, h *cluster.Harness, tune func(*ctl.Config)) *ctl.Supervisor {
	t.Helper()
	cfg := ctl.Config{
		ProbeInterval: 5 * time.Millisecond,
		DownAfter:     3,
		UpAfter:       2,
		Logf:          t.Logf,
	}
	for i := 0; i < h.Shards(); i++ {
		s := h.Shard(i)
		sc := ctl.ShardConfig{Primary: ctl.Node{Addr: s.Addr, Link: h.ClientOptionsFor(s)}}
		if s.Replica != nil {
			sc.Replica = ctl.Node{Addr: s.Replica.Addr, Link: h.ClientOptionsFor(s.Replica)}
		}
		cfg.Shards = append(cfg.Shards, sc)
	}
	if tune != nil {
		tune(&cfg)
	}
	sup, err := ctl.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sup.Close)
	return sup
}

// dialSupervised dials a cluster client that recovers through sup.
func dialSupervised(t *testing.T, h *cluster.Harness, sup *ctl.Supervisor) *cluster.Client {
	t.Helper()
	opts := h.Options()
	opts.Supervisor = sup.Addr()
	opts.FailoverWait = 10 * time.Second
	c, err := cluster.Dial(opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func load(t *testing.T, c *cluster.Client, prefix string, n int) map[string]string {
	t.Helper()
	expect := map[string]string{}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("%s%04d", prefix, i)
		v := fmt.Sprintf("val-%s-%04d", prefix, i)
		if err := c.Set([]byte(k), []byte(v)); err != nil {
			t.Fatalf("Set %s: %v", k, err)
		}
		expect[k] = v
	}
	return expect
}

func verify(t *testing.T, c *cluster.Client, expect map[string]string) {
	t.Helper()
	for k, v := range expect {
		got, err := c.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get %s: %v", k, err)
		}
		if string(got) != v {
			t.Fatalf("Get %s = %q, want %q", k, got, v)
		}
	}
}

// waitTopo polls f (with a write nudged at shard each round, keeping
// group commits flushing the shipper) until it accepts the topology.
func waitTopo(t *testing.T, sup *ctl.Supervisor, c *cluster.Client, shard int, d time.Duration, what string, f func(ts *ctl.ShardTopo) bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for round := 0; time.Now().Before(deadline); round++ {
		topo := sup.Topology()
		if ts := topo.Shard(shard); ts != nil && f(ts) {
			return
		}
		if c != nil {
			k := fmt.Sprintf("nudge-%d-%06d", shard, round)
			if c.ShardFor([]byte(k)) == shard {
				if err := c.Set([]byte(k), []byte("n")); err != nil {
					t.Logf("nudge Set %s: %v", k, err)
				}
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s; topology: %v", what, sup.Topology().Lines())
}

// TestSupervisorOrchestratedFailoverAndReprotect is the control plane's
// acceptance path: kill a primary mid-load; the supervisor (not the
// client) detects it, promotes the replica at epoch 2, publishes the
// new topology, then re-protects the shard by spawning a spare,
// attaching it over CmdReplAttach, and declaring protection when the
// spare catches up. No acknowledged write is lost, and the revenant
// ex-primary is fenced when it returns.
func TestSupervisorOrchestratedFailoverAndReprotect(t *testing.T) {
	h := startPairs(t, cluster.HarnessConfig{Shards: 2, Seed: 41})

	var spareMu sync.Mutex
	spares := map[string]bool{}
	sup := supervisorFor(t, h, func(cfg *ctl.Config) {
		cfg.SpawnSpare = func(shard int) (ctl.Node, error) {
			sp, err := h.StartSpare(shard)
			if err != nil {
				return ctl.Node{}, err
			}
			spareMu.Lock()
			spares[sp.Addr] = true
			spareMu.Unlock()
			return ctl.Node{Addr: sp.Addr, Link: h.ClientOptionsFor(sp)}, nil
		}
	})
	c := dialSupervised(t, h, sup)

	expect := load(t, c, "pre", 200)
	for s := 0; s < h.Shards(); s++ {
		waitTopo(t, sup, c, s, 5*time.Second, "initial protection", func(ts *ctl.ShardTopo) bool {
			return ts.Protected
		})
	}

	promotedAddr := h.Shard(0).Replica.Addr
	h.KillPrimary(0)

	// Writes keep succeeding throughout: ops routed at shard 0 block in
	// recover() until the supervisor publishes the promotion, then retry
	// against the promoted replica. Nothing surfaces to the caller.
	for k, v := range load(t, c, "post", 200) {
		expect[k] = v
	}
	waitTopo(t, sup, c, 0, 10*time.Second, "orchestrated failover", func(ts *ctl.ShardTopo) bool {
		return ts.Primary == promotedAddr && ts.Epoch == 2 && ts.Failovers == 1
	})
	if ep := c.Epoch(0); ep != 2 {
		t.Fatalf("client epoch for shard 0 = %d, want 2", ep)
	}

	// Re-protection without operator action: spare spawned, attached,
	// caught up, shard protected again.
	waitTopo(t, sup, c, 0, 30*time.Second, "re-protection", func(ts *ctl.ShardTopo) bool {
		return ts.Protected && ts.Replica != ""
	})
	ts := sup.Topology().Shard(0)
	spareMu.Lock()
	isSpare := spares[ts.Replica]
	spareMu.Unlock()
	if !isSpare {
		t.Fatalf("re-protection standby %s is not a spawned spare", ts.Replica)
	}

	// Zero acked-write loss across the whole episode.
	verify(t, c, expect)

	// The revenant ex-primary restarts shipping at epoch 1 and is fenced
	// by its own former replica on its first commit.
	sh, err := h.RestartPrimary(0)
	if err != nil {
		t.Fatalf("RestartPrimary: %v", err)
	}
	direct, err := client.Dial(sh.Addr, h.ClientOptionsFor(sh))
	if err != nil {
		t.Fatalf("dial revenant: %v", err)
	}
	defer direct.Close()
	if err := direct.Set([]byte("zombie"), []byte("w")); !errors.Is(err, client.ErrFenced) {
		t.Fatalf("write on revenant ex-primary: %v, want ErrFenced", err)
	}

	// Supervisor bookkeeping surfaced over its stats endpoint.
	var failovers string
	for _, l := range sup.StatsLines() {
		if strings.HasPrefix(l, "ctl_failovers=") {
			failovers = l
		}
	}
	if failovers != "ctl_failovers=1" {
		t.Fatalf("supervisor stats %v, want ctl_failovers=1", sup.StatsLines())
	}
}

// TestSupervisorFlakyProbesNeverPromote is the hysteresis property on
// the wire: a probe link that alternates hit/miss forever — on both
// nodes of the pair — never accumulates DownAfter consecutive misses,
// so the supervisor never promotes and the topology never churns.
func TestSupervisorFlakyProbesNeverPromote(t *testing.T) {
	h := startPairs(t, cluster.HarnessConfig{Shards: 1, Seed: 43})
	var mu sync.Mutex
	counts := map[string]int{}
	sup := supervisorFor(t, h, func(cfg *ctl.Config) {
		cfg.DropProbe = func(shard int, addr string) bool {
			mu.Lock()
			defer mu.Unlock()
			counts[addr]++
			return counts[addr]%2 == 0
		}
	})

	// ~80 probe rounds of sustained flapping.
	time.Sleep(400 * time.Millisecond)
	ts := sup.Topology().Shard(0)
	if ts == nil {
		t.Fatal("no topology for shard 0")
	}
	if ts.Failovers != 0 {
		t.Fatalf("flapping link caused %d failovers, want 0", ts.Failovers)
	}
	if ts.Primary != h.Shard(0).Addr {
		t.Fatalf("flapping link moved the primary to %s", ts.Primary)
	}
	mu.Lock()
	probed := counts[h.Shard(0).Addr]
	mu.Unlock()
	if probed < 20 {
		t.Fatalf("only %d probe attempts observed; probe loop not running?", probed)
	}
}

// TestNodeStatsOnWire checks satellite visibility: every data node
// answers CmdStats with its replication role, epoch, and watermark lag
// lines — the signals the supervisor's lag monitor (and an operator's
// CLI) read.
func TestNodeStatsOnWire(t *testing.T) {
	h := startPairs(t, cluster.HarnessConfig{Shards: 1, Seed: 47})
	s := h.Shard(0)

	direct, err := client.Dial(s.Addr, h.ClientOptionsFor(s))
	if err != nil {
		t.Fatal(err)
	}
	defer direct.Close()
	lines, err := direct.Stats()
	if err != nil {
		t.Fatal(err)
	}
	kv := map[string]string{}
	for _, l := range lines {
		if k, v, ok := strings.Cut(l, "="); ok {
			kv[k] = v
		}
	}
	if kv["repl_role"] != "primary" {
		t.Fatalf("primary repl_role = %q; stats %v", kv["repl_role"], lines)
	}
	for _, want := range []string{"repl_epoch", "repl_acked", "repl_assigned", "repl_lag", "repl_synced", "repl_fenced", "repl_bootstrapping"} {
		if _, ok := kv[want]; !ok {
			t.Fatalf("primary stats missing %s: %v", want, lines)
		}
	}

	rep, err := client.Dial(s.Replica.Addr, h.ClientOptionsFor(s.Replica))
	if err != nil {
		t.Fatal(err)
	}
	defer rep.Close()
	rlines, err := rep.Stats()
	if err != nil {
		t.Fatal(err)
	}
	rkv := map[string]string{}
	for _, l := range rlines {
		if k, v, ok := strings.Cut(l, "="); ok {
			rkv[k] = v
		}
	}
	if rkv["repl_role"] != "replica" {
		t.Fatalf("replica repl_role = %q; stats %v", rkv["repl_role"], rlines)
	}
	if _, ok := rkv["repl_watermark"]; !ok {
		t.Fatalf("replica stats missing repl_watermark: %v", rlines)
	}
}
