package ctl

import "testing"

// TestDetectorDownAfterConsecutiveMisses checks the basic down threshold:
// the verdict flips exactly on the DownAfter'th consecutive miss, not
// before.
func TestDetectorDownAfterConsecutiveMisses(t *testing.T) {
	d := Detector{DownAfter: 3, UpAfter: 2}
	for i := 0; i < 2; i++ {
		if changed := d.Observe(false); changed {
			t.Fatalf("verdict changed after %d misses, want %d", i+1, 3)
		}
		if d.Down() {
			t.Fatalf("down after %d misses, want %d", i+1, 3)
		}
	}
	if changed := d.Observe(false); !changed {
		t.Fatal("no verdict change on the DownAfter'th miss")
	}
	if !d.Down() {
		t.Fatal("not down after DownAfter consecutive misses")
	}
	// Further misses keep the verdict without re-reporting a change.
	if changed := d.Observe(false); changed {
		t.Fatal("verdict re-changed while already down")
	}
}

// TestDetectorHysteresisWindow checks that a down node needs UpAfter
// consecutive successes to be trusted again, and that a single
// intervening miss restarts the count.
func TestDetectorHysteresisWindow(t *testing.T) {
	d := Detector{DownAfter: 3, UpAfter: 2}
	for i := 0; i < 3; i++ {
		d.Observe(false)
	}
	if !d.Down() {
		t.Fatal("setup: not down")
	}
	if d.Observe(true); !d.Down() {
		t.Fatal("up after a single success, want UpAfter=2")
	}
	// A miss mid-recovery resets the streak.
	d.Observe(false)
	if d.Observe(true); !d.Down() {
		t.Fatal("up after interrupted recovery streak")
	}
	if changed := d.Observe(true); !changed {
		t.Fatal("no verdict change after UpAfter consecutive successes")
	}
	if d.Down() {
		t.Fatal("still down after sustained health")
	}
}

// TestDetectorFlappingNeverChangesVerdict is the no-promote-storm
// property: a link alternating hit/miss forever crosses neither
// threshold, in either direction.
func TestDetectorFlappingNeverChangesVerdict(t *testing.T) {
	// Starting up: flapping must never declare down.
	up := Detector{DownAfter: 3, UpAfter: 2}
	for i := 0; i < 1000; i++ {
		if up.Observe(i%2 == 0) {
			t.Fatalf("flapping flipped an up node's verdict at observation %d", i)
		}
	}
	if up.Down() {
		t.Fatal("flapping declared an up node down")
	}

	// Starting down: flapping must never declare up.
	down := Detector{DownAfter: 3, UpAfter: 2}
	for i := 0; i < 3; i++ {
		down.Observe(false)
	}
	for i := 0; i < 1000; i++ {
		if down.Observe(i%2 == 0) {
			t.Fatalf("flapping flipped a down node's verdict at observation %d", i)
		}
	}
	if !down.Down() {
		t.Fatal("flapping declared a down node up")
	}
}

// TestDetectorRecoveryCycle checks a full down/up/down cycle: after a
// recovery, the down threshold applies afresh (no residual miss count).
func TestDetectorRecoveryCycle(t *testing.T) {
	d := Detector{DownAfter: 2, UpAfter: 2}
	d.Observe(false)
	d.Observe(false)
	if !d.Down() {
		t.Fatal("setup: not down")
	}
	d.Observe(true)
	d.Observe(true)
	if d.Down() {
		t.Fatal("setup: not recovered")
	}
	if d.Observe(false); d.Down() {
		t.Fatal("down after one miss post-recovery, want a fresh DownAfter window")
	}
	if d.Observe(false); !d.Down() {
		t.Fatal("not down after a fresh DownAfter run of misses")
	}
}

// TestDetectorDefaultsAndReset checks the zero value picks up defaults
// (3 misses) and that Reset clears the verdict but keeps thresholds.
func TestDetectorDefaultsAndReset(t *testing.T) {
	var d Detector
	d.Observe(false)
	d.Observe(false)
	if d.Down() {
		t.Fatal("zero-value detector down before 3 misses")
	}
	d.Observe(false)
	if !d.Down() {
		t.Fatal("zero-value detector not down after 3 misses")
	}
	d.Reset()
	if d.Down() {
		t.Fatal("down survived Reset")
	}
	d.Observe(false)
	d.Observe(false)
	d.Observe(false)
	if !d.Down() {
		t.Fatal("thresholds lost across Reset")
	}
}
