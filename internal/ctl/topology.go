// Versioned cluster topology: the supervisor's published view of which
// node serves each shard. Encoded as text lines over CmdTopology (the
// response's Num carries the version) so any wire client can read it;
// clients apply a view only when its version advances past the one they
// hold, so stale supervisors or reordered fetches never roll a client
// back to a deposed primary.
package ctl

import (
	"fmt"
	"strconv"
	"strings"
)

// ShardTopo is one shard's entry in the published topology.
type ShardTopo struct {
	// Shard is the ring position.
	Shard int
	// Epoch is the shard's current fencing epoch — owned and advanced by
	// the supervisor (clients adopt it, they do not invent their own
	// except in fallback failover).
	Epoch uint64
	// Primary is the address of the node currently serving the shard.
	Primary string
	// Replica is the standby's address; empty while the shard runs
	// unprotected (its replica was promoted or died, and re-protection
	// has not caught up yet).
	Replica string
	// Protected reports that the standby's watermark has caught up with
	// the primary's assigned sequence — the shard would survive losing
	// its primary right now.
	Protected bool
	// LagAlarm reports replication lag above the supervisor's alarm
	// threshold on a protected shard.
	LagAlarm bool
	// Failovers counts the promotions the supervisor has orchestrated or
	// reconciled for this shard.
	Failovers int
}

// Topology is one consistent, versioned cluster view.
type Topology struct {
	Version uint64
	Shards  []ShardTopo
}

// Lines renders the per-shard topology lines (the CmdTopology payload).
func (t Topology) Lines() []string {
	out := make([]string, len(t.Shards))
	for i, s := range t.Shards {
		rep := s.Replica
		if rep == "" {
			rep = "-"
		}
		out[i] = fmt.Sprintf("shard=%d epoch=%d primary=%s replica=%s protected=%d alarm=%d failovers=%d",
			s.Shard, s.Epoch, s.Primary, rep, b2i(s.Protected), b2i(s.LagAlarm), s.Failovers)
	}
	return out
}

// ParseTopology decodes a CmdTopology response (version + lines) back
// into a Topology. Unknown fields are ignored so views stay forward
// compatible; a malformed line fails the whole parse — half a topology
// is worse than none.
func ParseTopology(version uint64, lines []string) (*Topology, error) {
	t := &Topology{Version: version}
	for _, line := range lines {
		var s ShardTopo
		seen := false
		for _, kv := range strings.Fields(line) {
			k, v, ok := strings.Cut(kv, "=")
			if !ok {
				return nil, fmt.Errorf("ctl: malformed topology field %q", kv)
			}
			var err error
			switch k {
			case "shard":
				s.Shard, err = strconv.Atoi(v)
				seen = true
			case "epoch":
				s.Epoch, err = strconv.ParseUint(v, 10, 64)
			case "primary":
				s.Primary = v
			case "replica":
				if v != "-" {
					s.Replica = v
				}
			case "protected":
				s.Protected = v == "1"
			case "alarm":
				s.LagAlarm = v == "1"
			case "failovers":
				s.Failovers, err = strconv.Atoi(v)
			}
			if err != nil {
				return nil, fmt.Errorf("ctl: malformed topology field %q: %v", kv, err)
			}
		}
		if !seen {
			return nil, fmt.Errorf("ctl: topology line without shard: %q", line)
		}
		t.Shards = append(t.Shards, s)
	}
	return t, nil
}

// Shard returns the entry for ring position shard, or nil.
func (t Topology) Shard(shard int) *ShardTopo {
	for i := range t.Shards {
		if t.Shards[i].Shard == shard {
			return &t.Shards[i]
		}
	}
	return nil
}

func b2i(v bool) int {
	if v {
		return 1
	}
	return 0
}
