// Package ctl is the cluster control plane (DESIGN.md §17): a supervisor
// that owns cluster topology and drives failover instead of the client.
// It probes every primary and replica with deadline-bounded health
// checks, detects failures with a consecutive-miss + hysteresis detector
// (a flaky link never triggers a promotion), owns the fencing-epoch
// counter, promotes replicas itself, re-protects failed-over shards by
// attaching spares, watches replication lag, and publishes a versioned
// topology over CmdTopology so every client converges on one view.
// Clients keep their one-shot client-side failover strictly as a
// fallback for when the supervisor is unreachable.
//
// The supervisor runs on the untrusted host — it never holds key
// material and a compromised one can at worst redirect reads to a stale
// fenced node; writes stay safe because fencing epochs are enforced
// inside the data nodes' enclaves, not here.
//
//ss:host(control plane; holds no secrets, enclaves enforce fencing)
package ctl

// Detector is a consecutive-miss + hysteresis failure detector for one
// probed node. A node is declared down only after DownAfter consecutive
// probe misses, and once down it is declared up again only after UpAfter
// consecutive successes — so a flapping link (alternating hit/miss)
// never crosses either threshold and never triggers a promotion, while a
// genuinely dead node is detected within DownAfter probe intervals.
//
// The zero value is usable (defaults applied on first Observe). Not safe
// for concurrent use; the supervisor's probe loop owns each instance.
type Detector struct {
	// DownAfter is how many consecutive misses declare the node down
	// (default 3).
	DownAfter int
	// UpAfter is how many consecutive successes an already-down node
	// needs before it is trusted again (default 2).
	UpAfter int

	misses int
	hits   int
	down   bool
}

func (d *Detector) defaults() {
	if d.DownAfter <= 0 {
		d.DownAfter = 3
	}
	if d.UpAfter <= 0 {
		d.UpAfter = 2
	}
}

// Observe feeds one probe outcome and reports whether the node's
// up/down verdict changed on this observation.
func (d *Detector) Observe(ok bool) (changed bool) {
	d.defaults()
	if !ok {
		d.hits = 0
		d.misses++
		if !d.down && d.misses >= d.DownAfter {
			d.down = true
			return true
		}
		return false
	}
	d.misses = 0
	if !d.down {
		return false
	}
	d.hits++
	if d.hits >= d.UpAfter {
		d.down = false
		d.hits = 0
		return true
	}
	return false
}

// Down reports the current verdict.
func (d *Detector) Down() bool { return d.down }

// Reset returns the detector to a fresh up state — used when the node
// behind it is replaced (a spare takes a dead replica's slot).
func (d *Detector) Reset() { *d = Detector{DownAfter: d.DownAfter, UpAfter: d.UpAfter} }
