// The cluster-wide chaos soak (DESIGN.md §17): a seeded adversarial
// schedule against a supervised cluster. Primaries and replicas of
// protected shards are killed round after round while concurrent
// clients write through supervisor-mediated recovery and every probe
// link drops packets; the supervisor must detect, promote, publish, and
// re-protect each time without operator action. Invariants asserted:
// zero acknowledged-write loss, bounded write blackout after every
// primary kill, no promotion storms (failovers bounded by kills), a
// fenced revenant primary rejected on return, and — after the
// supervisor itself dies — clients completing writes via the one-shot
// client-side fallback. The CI ctl-chaos-soak job runs this under
// -race. The schedule is fully seeded: kill choices and probe flake
// come from one PRNG, so a failure replays.
package ctl_test

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime"
	"sync"
	"testing"
	"time"

	"shieldstore/internal/client"
	"shieldstore/internal/cluster"
	"shieldstore/internal/ctl"
)

// leakCheck snapshots the goroutine count and, at cleanup time — after
// every harness, supervisor and client registered later has closed —
// polls until the count returns to baseline. A shipper, applier,
// supervisor loop or pooled connection left running fails the test with
// full stacks instead of silently accumulating across the suite.
func leakCheck(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(10 * time.Second)
		var n int
		for time.Now().Before(deadline) {
			n = runtime.NumGoroutine()
			if n <= base+2 {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak after teardown: %d running, baseline %d\n%s", n, base, buf)
	})
}

// ackLog records every acknowledged write across concurrent writers —
// the ground truth for the zero-loss check.
type ackLog struct {
	mu   sync.Mutex
	keys map[string]string
}

func (a *ackLog) record(k, v string) {
	a.mu.Lock()
	a.keys[k] = v
	a.mu.Unlock()
}

func (a *ackLog) snapshot() map[string]string {
	a.mu.Lock()
	defer a.mu.Unlock()
	out := make(map[string]string, len(a.keys))
	for k, v := range a.keys {
		out[k] = v
	}
	return out
}

func TestChaosSoak(t *testing.T) {
	leakCheck(t)

	const (
		seed       = 2026
		shards     = 3
		rounds     = 4
		writers    = 2
		flakePct   = 10 // % of probes dropped (both directions of hysteresis exercised)
		blackoutOK = 20 * time.Second
	)

	h := startPairs(t, cluster.HarnessConfig{Shards: shards, Seed: 53})

	// nodes maps every address the topology can name to the harness node
	// behind it, so the chaos actor can kill by published address.
	var nodeMu sync.Mutex
	nodes := map[string]*cluster.Shard{}
	for i := 0; i < h.Shards(); i++ {
		nodes[h.Shard(i).Addr] = h.Shard(i)
		nodes[h.Shard(i).Replica.Addr] = h.Shard(i).Replica
	}

	// One PRNG drives both chaos decisions and probe flake. The probe
	// loop calls DropProbe from parallel goroutines, so the rng is
	// mutex-guarded; the flake stream interleaves nondeterministically
	// with the kill stream, but every decision still derives from seed.
	rng := rand.New(rand.NewSource(seed))
	var rngMu sync.Mutex
	flake := func(int, string) bool {
		rngMu.Lock()
		defer rngMu.Unlock()
		return rng.Intn(100) < flakePct
	}
	pick := func(n int) int {
		rngMu.Lock()
		defer rngMu.Unlock()
		return rng.Intn(n)
	}

	sup := supervisorFor(t, h, func(cfg *ctl.Config) {
		cfg.ProbeInterval = 10 * time.Millisecond
		cfg.DownAfter = 5 // flaky links need a longer window than the default
		cfg.DropProbe = flake
		cfg.SpawnSpare = func(shard int) (ctl.Node, error) {
			sp, err := h.StartSpare(shard)
			if err != nil {
				return ctl.Node{}, err
			}
			nodeMu.Lock()
			nodes[sp.Addr] = sp
			nodeMu.Unlock()
			return ctl.Node{Addr: sp.Addr, Link: h.ClientOptionsFor(sp)}, nil
		}
	})
	c := dialSupervised(t, h, sup)

	// Concurrent writers hammer the whole ring for the entire soak. A
	// write that errors mid-failover is simply not recorded (the
	// at-least-once contract is the client's, not the soak's); every
	// write that IS acknowledged must survive everything below.
	acked := &ackLog{keys: map[string]string{}}
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for seq := 0; ; seq++ {
				select {
				case <-stop:
					return
				default:
				}
				k := fmt.Sprintf("c%d-%06d", w, seq)
				v := fmt.Sprintf("v%d-%06d", w, seq)
				if err := c.Set([]byte(k), []byte(v)); err == nil {
					acked.record(k, v)
				}
				time.Sleep(200 * time.Microsecond)
			}
		}(w)
	}
	stopWriters := func() {
		select {
		case <-stop:
		default:
			close(stop)
			wg.Wait()
		}
	}
	defer stopWriters()

	waitProtected := func(shard int, d time.Duration, what string) {
		waitTopo(t, sup, nil, shard, d, what, func(ts *ctl.ShardTopo) bool {
			return ts.Protected
		})
	}
	for s := 0; s < shards; s++ {
		waitProtected(s, 10*time.Second, "initial protection")
	}

	// probeWrite measures the shard's write blackout: time from now until
	// a write routed at shard is acknowledged again.
	probeWrite := func(shard int, tag string) time.Duration {
		t.Helper()
		start := time.Now()
		deadline := start.Add(blackoutOK)
		for i := 0; time.Now().Before(deadline); i++ {
			k := fmt.Sprintf("probe-%s-%06d", tag, i)
			if c.ShardFor([]byte(k)) != shard {
				continue
			}
			if err := c.Set([]byte(k), []byte("p")); err == nil {
				acked.record(k, "p")
				return time.Since(start)
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("shard %d: no acknowledged write within %v after %s", shard, blackoutOK, tag)
		return 0
	}

	// --- phase 1: revenant fencing under supervision ---
	// Kill shard 0's boot primary, let the supervisor fail over and
	// re-protect, then bring the dead node back: its first shipped commit
	// is rejected by its own former replica's higher epoch and the node
	// latches read-only — the revenant takes no writes, ever.
	bootReplica := h.Shard(0).Replica.Addr
	h.KillPrimary(0)
	primaryKills := 1
	if d := probeWrite(0, "revenant-kill"); d > blackoutOK {
		t.Fatalf("blackout %v", d)
	}
	waitTopo(t, sup, nil, 0, 10*time.Second, "failover off boot primary", func(ts *ctl.ShardTopo) bool {
		return ts.Primary == bootReplica
	})
	waitProtected(0, 30*time.Second, "re-protection after revenant kill")

	revenant, err := h.RestartPrimary(0)
	if err != nil {
		t.Fatalf("RestartPrimary: %v", err)
	}
	direct, err := client.Dial(revenant.Addr, h.ClientOptionsFor(revenant))
	if err != nil {
		t.Fatalf("dial revenant: %v", err)
	}
	if err := direct.Set([]byte("zombie"), []byte("w")); !errors.Is(err, client.ErrFenced) {
		t.Fatalf("write on revenant: %v, want ErrFenced", err)
	}
	direct.Close()

	// --- phase 2: seeded kill/restart chaos across the cluster ---
	for round := 0; round < rounds; round++ {
		shard := pick(shards)
		waitProtected(shard, 30*time.Second, fmt.Sprintf("protection before round %d", round))
		ts := sup.Topology().Shard(shard)
		victim := ts.Primary
		killPrimary := pick(2) == 0
		if !killPrimary {
			victim = ts.Replica
		}
		nodeMu.Lock()
		n := nodes[victim]
		nodeMu.Unlock()
		if n == nil {
			t.Fatalf("round %d: topology names unknown node %s", round, victim)
		}
		t.Logf("chaos round %d: killing shard %d %s (%s)", round, shard,
			map[bool]string{true: "primary", false: "replica"}[killPrimary], victim)
		h.Kill(n)
		if killPrimary {
			primaryKills++
			d := probeWrite(shard, fmt.Sprintf("round-%d", round))
			t.Logf("chaos round %d: write blackout %v", round, d)
			waitTopo(t, sup, nil, shard, 30*time.Second, "failover", func(ts *ctl.ShardTopo) bool {
				return ts.Primary != victim
			})
		}
		waitProtected(shard, 30*time.Second, fmt.Sprintf("re-protection after round %d", round))
	}

	// Settle: every shard protected, writers still running.
	for s := 0; s < shards; s++ {
		waitProtected(s, 30*time.Second, "final protection")
	}
	stopWriters()

	// --- invariants ---
	// No promotion storms: the flaky links may buy the supervisor at most
	// a couple of spurious (but safe: protected-standby-only) failovers
	// on top of the real kills.
	totalFailovers := 0
	for _, ts := range sup.Topology().Shards {
		totalFailovers += ts.Failovers
	}
	if totalFailovers > primaryKills+2 {
		t.Fatalf("%d failovers for %d primary kills — promotion storm", totalFailovers, primaryKills)
	}

	// Zero acknowledged-write loss across every kill, promotion and
	// bootstrap: the full ack log reads back exactly.
	final := acked.snapshot()
	t.Logf("soak wrote %d acknowledged keys across %d failovers", len(final), totalFailovers)
	if len(final) < 100 {
		t.Fatalf("only %d acknowledged writes — writers starved, soak proved nothing", len(final))
	}
	for k, v := range final {
		got, err := c.Get([]byte(k))
		if err != nil {
			t.Fatalf("acked key %s lost: %v", k, err)
		}
		if string(got) != v {
			t.Fatalf("acked key %s = %q, want %q", k, got, v)
		}
	}

	// --- phase 3: fallback failover with a dead supervisor ---
	// Converge the client on the final topology, kill the control plane,
	// then kill a primary. recover() finds the supervisor unreachable and
	// falls back to the one-shot client-side promotion of the protected
	// standby it learned from the last published view.
	if err := c.Resync(); err != nil {
		t.Fatalf("Resync: %v", err)
	}
	fallbackShard := pick(shards)
	ts := sup.Topology().Shard(fallbackShard)
	sup.Close()

	nodeMu.Lock()
	n := nodes[ts.Primary]
	nodeMu.Unlock()
	if n == nil {
		t.Fatalf("fallback: topology names unknown node %s", ts.Primary)
	}
	h.Kill(n)

	done := 0
	for i := 0; done < 20; i++ {
		k := fmt.Sprintf("fb-%06d", i)
		if c.ShardFor([]byte(k)) != fallbackShard {
			continue
		}
		if err := c.Set([]byte(k), []byte("fb")); err != nil {
			t.Fatalf("fallback write %s: %v", k, err)
		}
		final[k] = "fb"
		done++
	}
	if !c.Demoted(fallbackShard) {
		t.Fatal("fallback shard not demoted — client-side failover never ran")
	}
	for k, v := range final {
		got, err := c.Get([]byte(k))
		if err != nil {
			t.Fatalf("post-fallback: acked key %s lost: %v", k, err)
		}
		if string(got) != v {
			t.Fatalf("post-fallback: acked key %s = %q, want %q", k, got, v)
		}
	}
}
