package sim

import (
	"math"
	"sync"
	"testing"
	"testing/quick"
)

func TestDefaultCostModelAnchors(t *testing.T) {
	c := DefaultCostModel()

	// ~100 ns DRAM access at 4 GHz.
	if got := c.Nanos(c.DRAMAccess); math.Abs(got-100) > 10 {
		t.Errorf("DRAM access = %.1f ns, want ~100 ns", got)
	}
	// EPC-resident read multiplier from the paper: 5.7x.
	if c.EPCReadMult < 5 || c.EPCReadMult > 7 {
		t.Errorf("EPCReadMult = %v, want ~5.7", c.EPCReadMult)
	}
	// Page fault read: effective in-context cost, tens of microseconds
	// (the paper's microbenchmark tail is 57 us; its KV numbers imply
	// ~25-35 us — see the cost-table comment).
	if got := c.Nanos(c.PageFaultRead) / 1000; got < 20 || got > 60 {
		t.Errorf("page fault read = %.1f us, want 20-60 us", got)
	}
	if c.PageFaultWrite <= c.PageFaultRead {
		t.Error("page fault write must cost more than read (dirty eviction)")
	}
	// Enclave crossing ~8000 cycles.
	if c.EnclaveCrossing != 8000 {
		t.Errorf("EnclaveCrossing = %d, want 8000", c.EnclaveCrossing)
	}
	// HotCalls are at least 10x cheaper than a full crossing.
	if c.HotCall*10 > c.EnclaveCrossing {
		t.Errorf("HotCall = %d not ~10x cheaper than crossing %d", c.HotCall, c.EnclaveCrossing)
	}
	// Effective EPC below the 128 MB reserved region.
	if c.EPCBytes <= 0 || c.EPCBytes >= 128<<20 {
		t.Errorf("EPCBytes = %d, want in (0, 128MB)", c.EPCBytes)
	}
}

func TestCostModelScale(t *testing.T) {
	c := DefaultCostModel()
	s := c.Scale(10)
	if s.EPCBytes != c.EPCBytes/10 {
		t.Errorf("Scale(10).EPCBytes = %d, want %d", s.EPCBytes, c.EPCBytes/10)
	}
	if s.PageFaultRead != c.PageFaultRead {
		t.Errorf("Scale must not change latencies")
	}
	// Scale(1) returns an identical copy, not the same pointer.
	one := c.Scale(1)
	if one == c {
		t.Error("Scale(1) returned the original pointer")
	}
	if one.EPCBytes != c.EPCBytes {
		t.Error("Scale(1) changed EPCBytes")
	}
	// Scaling never drops below a handful of pages.
	tiny := c.Scale(1 << 30)
	if tiny.EPCBytes < int64(4*c.PageSize) {
		t.Errorf("Scale floor violated: %d", tiny.EPCBytes)
	}
}

func TestCostHelpers(t *testing.T) {
	c := DefaultCostModel()
	if c.AES(0) != c.AESBlockSetup {
		t.Errorf("AES(0) = %d, want setup %d", c.AES(0), c.AESBlockSetup)
	}
	if c.AES(1000) <= c.AES(10) {
		t.Error("AES cost must grow with size")
	}
	if c.CMAC(64) <= c.CMACSetup {
		t.Error("CMAC cost must exceed setup for nonzero input")
	}
	if c.NIC(0) != c.NICPerMessage {
		t.Errorf("NIC(0) = %d, want per-message %d", c.NIC(0), c.NICPerMessage)
	}
	if c.Seconds(uint64(c.ClockHz)) != 1.0 {
		t.Errorf("Seconds(ClockHz) = %v, want 1.0", c.Seconds(uint64(c.ClockHz)))
	}
	if c.MemCopy(0) != 0 {
		t.Error("MemCopy(0) must be free")
	}
	if c.StorageWrite(100) <= c.StorageWriteSetup {
		t.Error("StorageWrite must include per-byte cost")
	}
	if c.Hash(16) <= c.HashSetup {
		t.Error("Hash must include per-byte cost")
	}
}

func TestMeterBasics(t *testing.T) {
	m := NewMeter(DefaultCostModel())
	m.Charge(100)
	m.Charge(50)
	if m.Cycles() != 150 {
		t.Fatalf("Cycles = %d, want 150", m.Cycles())
	}
	m.Count(CtrOCall)
	m.CountN(CtrDecrypt, 5)
	if m.Events(CtrOCall) != 1 || m.Events(CtrDecrypt) != 5 {
		t.Fatalf("events wrong: %v %v", m.Events(CtrOCall), m.Events(CtrDecrypt))
	}
	snap := m.Snapshot()
	m.Charge(10)
	m.Count(CtrOCall)
	d := m.Snapshot().Sub(snap)
	if d.Cycles != 10 || d.Events[CtrOCall] != 1 || d.Events[CtrDecrypt] != 0 {
		t.Fatalf("delta wrong: %+v", d)
	}
	m.Reset()
	if m.Cycles() != 0 || m.Events(CtrOCall) != 0 {
		t.Fatal("Reset did not clear state")
	}
}

func TestMeterAdd(t *testing.T) {
	c := DefaultCostModel()
	a, b := NewMeter(c), NewMeter(c)
	a.Count(CtrECall)
	b.CountN(CtrECall, 3)
	b.Charge(999)
	a.Add(b)
	if a.Events(CtrECall) != 4 {
		t.Errorf("Add: events = %d, want 4", a.Events(CtrECall))
	}
	if a.Cycles() != 0 {
		t.Errorf("Add must not merge clocks, got %d", a.Cycles())
	}
}

func TestCounterString(t *testing.T) {
	if CtrOCall.String() != "ocall" {
		t.Errorf("CtrOCall = %q", CtrOCall.String())
	}
	if Counter(-1).String() == "" || Counter(999).String() == "" {
		t.Error("out-of-range counters must still render")
	}
	seen := map[string]bool{}
	for i := Counter(0); i < numCounters; i++ {
		n := i.String()
		if seen[n] {
			t.Errorf("duplicate counter name %q", n)
		}
		seen[n] = true
	}
}

func TestStatsString(t *testing.T) {
	m := NewMeter(DefaultCostModel())
	m.Charge(42)
	m.Count(CtrCMAC)
	s := m.Snapshot().String()
	if s == "" {
		t.Fatal("empty stats string")
	}
}

func TestSharedClockSerializes(t *testing.T) {
	c := DefaultCostModel()
	var g SharedClock
	m1, m2 := NewMeter(c), NewMeter(c)

	g.Acquire(m1, 100)
	if m1.Cycles() != 100 {
		t.Fatalf("m1 = %d, want 100", m1.Cycles())
	}
	// m2 starts at time 0 but must queue behind m1's occupancy.
	g.Acquire(m2, 100)
	if m2.Cycles() != 200 {
		t.Fatalf("m2 = %d, want 200 (serialized)", m2.Cycles())
	}
	// A later thread starting after the clock does not queue.
	m3 := NewMeter(c)
	m3.Charge(10_000)
	g.Acquire(m3, 100)
	if m3.Cycles() != 10_100 {
		t.Fatalf("m3 = %d, want 10100", m3.Cycles())
	}
	g.Reset()
	if g.Now() != 0 {
		t.Fatal("Reset failed")
	}
}

func TestSharedClockConcurrent(t *testing.T) {
	c := DefaultCostModel()
	var g SharedClock
	const threads = 8
	const acquires = 500
	const hold = 7

	var wg sync.WaitGroup
	meters := make([]*Meter, threads)
	for i := range meters {
		meters[i] = NewMeter(c)
		wg.Add(1)
		go func(m *Meter) {
			defer wg.Done()
			for j := 0; j < acquires; j++ {
				g.Acquire(m, hold)
			}
		}(meters[i])
	}
	wg.Wait()

	// Total occupancy is fully serialized: end time equals total hold.
	want := uint64(threads * acquires * hold)
	if g.Now() != want {
		t.Fatalf("shared clock end = %d, want %d", g.Now(), want)
	}
	// Every meter ends no later than the shared end, and the max equals it.
	var maxC uint64
	for _, m := range meters {
		if m.Cycles() > g.Now() {
			t.Fatalf("meter beyond shared end")
		}
		if m.Cycles() > maxC {
			maxC = m.Cycles()
		}
	}
	if maxC != want {
		t.Fatalf("max meter = %d, want %d", maxC, want)
	}
}

func TestThroughput(t *testing.T) {
	c := DefaultCostModel()
	// 1000 ops in 1 virtual second = 1000 ops/s = 1 Kop/s.
	ops := Throughput(c, 1000, uint64(c.ClockHz))
	if math.Abs(ops-1000) > 1e-6 {
		t.Fatalf("Throughput = %v, want 1000", ops)
	}
	if KopsPerSec(ops) != 1.0 {
		t.Fatalf("KopsPerSec = %v", KopsPerSec(ops))
	}
	if Throughput(c, 10, 0) != 0 {
		t.Fatal("zero cycles must give zero throughput")
	}
}

// Property: the shared clock never runs backwards and always advances the
// acquiring meter by at least the hold time.
func TestSharedClockMonotoneProperty(t *testing.T) {
	c := DefaultCostModel()
	f := func(holds []uint16) bool {
		var g SharedClock
		m := NewMeter(c)
		prev := uint64(0)
		for _, h := range holds {
			before := m.Cycles()
			g.Acquire(m, uint64(h))
			if m.Cycles() < before+uint64(h) {
				return false
			}
			if g.Now() < prev {
				return false
			}
			prev = g.Now()
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

// Property: stats deltas are consistent with the operations performed.
func TestStatsDeltaProperty(t *testing.T) {
	c := DefaultCostModel()
	f := func(charges []uint8, ctrs []uint8) bool {
		m := NewMeter(c)
		base := m.Snapshot()
		var total uint64
		counts := map[Counter]uint64{}
		for _, ch := range charges {
			m.Charge(uint64(ch))
			total += uint64(ch)
		}
		for _, x := range ctrs {
			ctr := Counter(int(x) % int(numCounters))
			m.Count(ctr)
			counts[ctr]++
		}
		d := m.Snapshot().Sub(base)
		if d.Cycles != total {
			return false
		}
		for ctr, n := range counts {
			if d.Events[ctr] != n {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}
