// Package sim provides the virtual-time cost model that underpins the
// ShieldStore SGX simulator.
//
// Every component of the simulated system (memory regions, enclave
// transitions, cryptographic primitives, syscalls, the NIC) charges cycles
// to a Meter. Reported throughput numbers are derived from this virtual
// clock rather than from host wall time, which makes every experiment
// deterministic and independent of the machine the benchmarks run on.
//
// The cost table is calibrated against the measurements the paper itself
// reports: ~100 ns DRAM random access, a 5.7x multiplier for EPC-resident
// enclave reads, ~8,000 cycles per enclave crossing, and EPC page faults in
// the 57-68 us range (the 578x/685x latency blowups of Figure 2).
package sim

// CostModel holds the calibrated virtual cycle costs of every simulated
// hardware and software mechanism. All values are in CPU cycles at ClockHz
// unless stated otherwise.
type CostModel struct {
	// ClockHz converts cycles to seconds. The paper's i7-7700 runs around
	// 4 GHz under turbo.
	ClockHz float64

	// DRAMAccess is the cost of a random cacheline access that misses the
	// on-chip caches and hits plain DRAM (NoSGX, or unprotected memory
	// accessed from inside an enclave).
	DRAMAccess uint64

	// CacheAccess is the cost of an access served by on-chip caches. Used
	// for accesses that hit the same cacheline repeatedly within one
	// simulated operation.
	CacheAccess uint64

	// EPCReadMult / EPCWriteMult multiply DRAMAccess for EPC-resident
	// enclave accesses; they model the memory encryption engine (MEE) and
	// its integrity-tree walk.
	EPCReadMult  float64
	EPCWriteMult float64

	// PageFaultRead / PageFaultWrite are the full demand-paging penalties
	// for touching an enclave page that was evicted from the EPC: an
	// asynchronous enclave exit, kernel page management, eviction of a
	// victim page (re-encryption) and decryption + integrity verification
	// of the incoming page.
	PageFaultRead  uint64
	PageFaultWrite uint64

	// PageFaultSerialFraction is the share of a fault spent under the
	// kernel's machine-wide EPC management lock; the rest (EWB/ELDU page
	// crypto) proceeds per-thread. This is what limits — but does not
	// entirely remove — the baseline's multicore scaling in Figure 13.
	PageFaultSerialFraction float64

	// EnclaveCrossing is the cost of one EENTER/EEXIT pair (an ECALL or
	// an OCALL), about 8,000 cycles in the literature.
	EnclaveCrossing uint64

	// HotCall is the cost of a HotCalls-style exitless call: a cacheline
	// ping-pong between the enclave thread and an untrusted worker thread
	// spinning on shared memory.
	HotCall uint64

	// Syscall is the kernel entry/exit cost of a system call executed
	// outside the enclave (added on top of OCALL/HotCall when the enclave
	// needs OS services).
	Syscall uint64

	// EnclaveIOPerMessage is the per-message cost of moving request and
	// response buffers across the enclave boundary (bounds-checked copies
	// into enclave staging buffers, I/O buffer management) paid by
	// enclave-hosted servers on top of the raw syscall path.
	EnclaveIOPerMessage uint64

	// RequestOverhead is the fixed per-operation cost of request handling
	// inside the store server (queue pop, parse, dispatch, response
	// marshalling), independent of the storage engine.
	RequestOverhead uint64

	// AESBlockSetup and AESPerByte model AES-NI CTR encryption: a fixed
	// key/counter setup plus a per-byte streaming cost.
	AESBlockSetup uint64
	AESPerByte    float64

	// CMACSetup and CMACPerByte model AES-CMAC computation.
	CMACSetup   uint64
	CMACPerByte float64

	// HashPerByte models the keyed bucket hash (SipHash-like).
	HashSetup   uint64
	HashPerByte float64

	// RandPerByte models RDRAND-backed trusted randomness.
	RandPerByte float64

	// MemCopyPerByte models bulk copies between regions (streaming, not
	// random access).
	MemCopyPerByte float64

	// NICPerMessage and NICPerByte model the network path of one message
	// (driver + wire). Client and server each pay this once per message.
	NICPerMessage uint64
	NICPerByte    float64

	// LibOSSyscallMult multiplies Syscall for library-OS (Graphene) hosted
	// processes, which route syscalls through an in-enclave emulation
	// layer before exiting.
	LibOSSyscallMult float64

	// MonotonicCounterInc is the cost of incrementing the SGX platform
	// monotonic counter (non-volatile, extremely slow; tens of ms).
	MonotonicCounterInc uint64

	// StorageWritePerByte models writing a snapshot to persistent storage.
	StorageWritePerByte float64
	// StorageWriteSetup is the fixed cost of one storage write call.
	StorageWriteSetup uint64

	// DiskSeek is the fixed access latency of one random value-log I/O
	// (NVMe command submission + flash read latency, ~20 us).
	DiskSeek uint64
	// DiskReadPerByte / DiskWritePerByte model value-log streaming
	// bandwidth (~2 GB/s read, ~1.5 GB/s write on the modeled NVMe disk).
	DiskReadPerByte  float64
	DiskWritePerByte float64
	// DiskFsync is the cost of one fsync barrier on the value log
	// (~125 us: flush translation state and wait for durability).
	DiskFsync uint64

	// PageSize is the granularity of EPC paging (bytes).
	PageSize int

	// EPCBytes is the effective EPC capacity available to enclave data
	// after SGX metadata overheads (~90 MB of the 128 MB reserved region).
	EPCBytes int64
}

// DefaultCostModel returns the cost table calibrated against the paper's
// published measurements (see DESIGN.md section 5 for the anchor points).
func DefaultCostModel() *CostModel {
	return &CostModel{
		ClockHz: 4.0e9,

		DRAMAccess:  400, // ~100 ns
		CacheAccess: 30,

		EPCReadMult:  5.7,
		EPCWriteMult: 6.8,

		// Effective in-context fault costs. The pure-paging microbenchmark
		// of Figure 2 shows 57-68 us per touch, but that includes per-access
		// TLB/driver pathologies the paper's own KV throughput numbers do
		// not exhibit (its baseline Kop/s implies ~25-35 us per fault once
		// faults overlap with request processing); we calibrate to the KV
		// anchor, which slightly compresses Figure 2's tail.
		PageFaultRead:  80_000,  // ~20 us
		PageFaultWrite: 100_000, // ~25 us

		PageFaultSerialFraction: 0.6,

		EnclaveCrossing: 8_000,
		HotCall:         620,
		Syscall:         1_800,

		EnclaveIOPerMessage: 6_000,

		RequestOverhead: 3_800,

		AESBlockSetup: 220,
		AESPerByte:    1.3,

		CMACSetup:   180,
		CMACPerByte: 1.1,

		HashSetup:   60,
		HashPerByte: 0.4,

		RandPerByte: 18,

		MemCopyPerByte: 0.35,

		NICPerMessage: 1_200,
		NICPerByte:    0.9,

		LibOSSyscallMult: 2.4,

		MonotonicCounterInc: 240_000_000, // ~60 ms

		StorageWritePerByte: 8.0, // ~500 MB/s persistent storage
		StorageWriteSetup:   24_000,

		DiskSeek:         80_000,  // ~20 us NVMe random access
		DiskReadPerByte:  2.0,     // ~2 GB/s
		DiskWritePerByte: 2.7,     // ~1.5 GB/s
		DiskFsync:        500_000, // ~125 us durability barrier

		PageSize: 4096,
		EPCBytes: 90 << 20,
	}
}

// Scale returns a copy of the model with the EPC capacity scaled by 1/f.
// Scaling EPC and data-set sizes by the same factor preserves every
// working-set/EPC ratio, so shrunken CI-sized experiments reproduce the
// paper's crossover points.
func (c *CostModel) Scale(f int) *CostModel {
	if f <= 1 {
		cc := *c
		return &cc
	}
	cc := *c
	cc.EPCBytes = c.EPCBytes / int64(f)
	if cc.EPCBytes < int64(4*c.PageSize) {
		cc.EPCBytes = int64(4 * c.PageSize)
	}
	return &cc
}

// Seconds converts a cycle count to seconds under this model's clock.
func (c *CostModel) Seconds(cycles uint64) float64 {
	return float64(cycles) / c.ClockHz
}

// Nanos converts a cycle count to nanoseconds.
func (c *CostModel) Nanos(cycles uint64) float64 {
	return float64(cycles) / c.ClockHz * 1e9
}

// AES returns the cycle cost of an AES-CTR pass over n bytes.
func (c *CostModel) AES(n int) uint64 {
	return c.AESBlockSetup + uint64(float64(n)*c.AESPerByte)
}

// CMAC returns the cycle cost of an AES-CMAC pass over n bytes.
func (c *CostModel) CMAC(n int) uint64 {
	return c.CMACSetup + uint64(float64(n)*c.CMACPerByte)
}

// Hash returns the cycle cost of the keyed bucket hash over n bytes.
func (c *CostModel) Hash(n int) uint64 {
	return c.HashSetup + uint64(float64(n)*c.HashPerByte)
}

// MemCopy returns the streaming copy cost for n bytes.
func (c *CostModel) MemCopy(n int) uint64 {
	return uint64(float64(n) * c.MemCopyPerByte)
}

// NIC returns the network cost of one message of n bytes.
func (c *CostModel) NIC(n int) uint64 {
	return c.NICPerMessage + uint64(float64(n)*c.NICPerByte)
}

// StorageWrite returns the cost of persisting n bytes.
func (c *CostModel) StorageWrite(n int) uint64 {
	return c.StorageWriteSetup + uint64(float64(n)*c.StorageWritePerByte)
}

// DiskRead returns the cost of one random value-log read of n bytes.
func (c *CostModel) DiskRead(n int) uint64 {
	return c.DiskSeek + uint64(float64(n)*c.DiskReadPerByte)
}

// DiskWrite returns the cost of one value-log write of n bytes.
func (c *CostModel) DiskWrite(n int) uint64 {
	return c.DiskSeek + uint64(float64(n)*c.DiskWritePerByte)
}
