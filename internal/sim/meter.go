package sim

import (
	"fmt"
	"sort"
	"strings"
	"sync/atomic"
)

// Counter identifies one event class tracked by a Meter.
type Counter int

// Event counters. These back the per-experiment statistics the paper
// reports (OCALL counts in Figure 6, decryption counts in Figure 9, page
// faults behind Figures 2/3/13/15, ...).
const (
	CtrEPCFaultRead Counter = iota
	CtrEPCFaultWrite
	CtrECall
	CtrOCall
	CtrHotCall
	CtrSyscall
	CtrDecrypt
	CtrEncrypt
	CtrCMAC
	CtrBucketHash
	CtrCacheHit
	CtrCacheMiss
	CtrEntryVisited
	CtrNetMessage
	CtrSnapshot
	CtrMonotonicInc
	CtrRequest
	CtrDispatch
	CtrFaultInjected
	CtrIntegrityFail
	CtrQuarantine
	CtrScrub
	CtrRebuild
	CtrVLogSpill
	CtrVLogFault
	CtrVLogGCCopy
	CtrVLogSegmentsLive
	CtrReplShipped
	CtrReplApplied
	CtrReplFailover
	CtrSecretBuffersLive
	CtrSecretBytesLive
	CtrCtlProbe
	CtrCtlFailover
	CtrCtlLagAlarm
	numCounters
)

var counterNames = [numCounters]string{
	"epc_fault_read",
	"epc_fault_write",
	"ecall",
	"ocall",
	"hotcall",
	"syscall",
	"decrypt",
	"encrypt",
	"cmac",
	"bucket_hash",
	"cache_hit",
	"cache_miss",
	"entry_visited",
	"net_message",
	"snapshot",
	"monotonic_inc",
	"request",
	"dispatch",
	"fault_injected",
	"integrity_fail",
	"quarantine",
	"scrub",
	"rebuild",
	"vlog_spill",
	"vlog_fault",
	"vlog_gc_copy",
	"vlog_segments_live",
	"repl_shipped",
	"repl_applied",
	"repl_failover",
	"secret_buffers_live",
	"secret_bytes_live",
	"ctl_probe",
	"ctl_failover",
	"ctl_lag_alarm",
}

// String returns the counter's snake_case name.
func (c Counter) String() string {
	if c < 0 || c >= numCounters {
		return fmt.Sprintf("counter(%d)", int(c))
	}
	return counterNames[c]
}

// Meter is a per-thread virtual clock plus event counters. A Meter is the
// analogue of one hardware thread: operations executed "on" a meter advance
// its private cycle count. Meters are not safe for concurrent use; each
// simulated thread owns exactly one.
type Meter struct {
	cycles uint64
	events [numCounters]uint64
	model  *CostModel
}

// NewMeter returns a meter attached to the given cost model.
func NewMeter(model *CostModel) *Meter {
	return &Meter{model: model}
}

// Model returns the meter's cost model.
func (m *Meter) Model() *CostModel { return m.model }

// Charge advances the virtual clock by the given number of cycles.
func (m *Meter) Charge(cycles uint64) { m.cycles += cycles }

// Count increments an event counter without advancing the clock.
func (m *Meter) Count(c Counter) { m.events[c]++ }

// CountN adds n to an event counter.
func (m *Meter) CountN(c Counter, n uint64) { m.events[c] += n }

// SetCount overwrites an event counter; used for gauges (for example the
// live value-log segment count) where the latest value, not a running sum,
// is the meaningful figure per meter.
func (m *Meter) SetCount(c Counter, v uint64) { m.events[c] = v }

// Cycles returns the current virtual clock value.
func (m *Meter) Cycles() uint64 { return m.cycles }

// SetCycles overwrites the virtual clock; used by the paging serialization
// model, which may push a thread's clock forward to a globally ordered
// completion time.
func (m *Meter) SetCycles(v uint64) { m.cycles = v }

// Events returns the value of one event counter.
func (m *Meter) Events(c Counter) uint64 { return m.events[c] }

// Seconds returns the virtual elapsed time in seconds.
func (m *Meter) Seconds() float64 { return m.model.Seconds(m.cycles) }

// Reset zeroes the clock and all counters.
func (m *Meter) Reset() {
	m.cycles = 0
	m.events = [numCounters]uint64{}
}

// Snapshot captures the meter's current state.
func (m *Meter) Snapshot() Stats {
	s := Stats{Cycles: m.cycles}
	copy(s.Events[:], m.events[:])
	return s
}

// Add merges another meter's counters (not its clock) into this one.
// Used when aggregating per-thread event counts for reporting.
func (m *Meter) Add(other *Meter) {
	for i := range m.events {
		m.events[i] += other.events[i]
	}
}

// Stats is an immutable snapshot of a Meter.
type Stats struct {
	Cycles uint64
	Events [numCounters]uint64
}

// Sub returns the delta between two snapshots (s - earlier).
func (s Stats) Sub(earlier Stats) Stats {
	d := Stats{Cycles: s.Cycles - earlier.Cycles}
	for i := range s.Events {
		d.Events[i] = s.Events[i] - earlier.Events[i]
	}
	return d
}

// String renders the non-zero counters, sorted by name, for debugging.
func (s Stats) String() string {
	var parts []string
	for i, v := range s.Events {
		if v != 0 {
			parts = append(parts, fmt.Sprintf("%s=%d", Counter(i), v))
		}
	}
	sort.Strings(parts)
	return fmt.Sprintf("cycles=%d %s", s.Cycles, strings.Join(parts, " "))
}

// SharedClock models a resource whose use is serialized machine-wide, such
// as the kernel's EPC paging path: concurrent faulting threads queue behind
// one another. Acquire pushes the caller's virtual clock to at least the
// end of the previous holder's occupancy, occupies the resource for `hold`
// cycles, and returns the caller's new clock value.
//
// SharedClock is safe for concurrent use by multiple meters.
type SharedClock struct {
	end atomic.Uint64
}

// Acquire serializes `hold` cycles of work starting no earlier than the
// meter's current time, advancing the meter past contention and hold time.
func (g *SharedClock) Acquire(m *Meter, hold uint64) {
	for {
		cur := g.end.Load()
		start := m.cycles
		if cur > start {
			start = cur
		}
		end := start + hold
		if g.end.CompareAndSwap(cur, end) {
			m.cycles = end
			return
		}
	}
}

// Now returns the current end-of-occupancy time.
func (g *SharedClock) Now() uint64 { return g.end.Load() }

// Reset clears the shared clock.
func (g *SharedClock) Reset() { g.end.Store(0) }

// Throughput computes operations per second given total ops and the maximum
// per-thread virtual time (threads run in parallel, so the slowest thread
// defines completion).
func Throughput(model *CostModel, ops uint64, maxCycles uint64) float64 {
	if maxCycles == 0 {
		return 0
	}
	return float64(ops) / model.Seconds(maxCycles)
}

// KopsPerSec converts an ops/sec figure to the paper's Kop/s unit.
func KopsPerSec(opsPerSec float64) float64 { return opsPerSec / 1e3 }
