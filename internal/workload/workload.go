// Package workload generates the YCSB-style request streams of the
// paper's evaluation (§6.1, Tables 2 and 3): uniform and zipfian (0.99)
// key distributions, a "latest" distribution for RD95_L, read/update
// mixes from 50:50 to 100:0, read-modify-write, and the append mixes of
// Figure 12. Generators are deterministic given a seed.
package workload

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
)

// Kind is an operation type.
type Kind int

// Operation kinds.
const (
	Read Kind = iota
	Update
	Insert
	Append
	ReadModifyWrite
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	switch k {
	case Read:
		return "read"
	case Update:
		return "update"
	case Insert:
		return "insert"
	case Append:
		return "append"
	case ReadModifyWrite:
		return "rmw"
	default:
		return "op(?)"
	}
}

// Op is one generated request.
type Op struct {
	Kind Kind
	Key  uint64
}

// Distribution selects the key popularity model.
type Distribution int

// Key distributions from Table 2.
const (
	Uniform Distribution = iota
	Zipf99               // zipfian, theta = 0.99 (YCSB default)
	Zipf50               // zipfian, theta = 0.50 (Figure 12)
	Latest               // skewed toward recently inserted keys
)

// String implements fmt.Stringer.
func (d Distribution) String() string {
	switch d {
	case Uniform:
		return "uniform"
	case Zipf99:
		return "zipfian(0.99)"
	case Zipf50:
		return "zipfian(0.5)"
	case Latest:
		return "latest"
	default:
		return "dist(?)"
	}
}

// Spec describes one workload configuration.
type Spec struct {
	// Name is the paper's label (RD50_Z etc).
	Name string
	// ReadPct, AppendPct and RMWPct are percentages; the remainder is
	// Update (or Insert under the Latest distribution, matching YCSB D).
	ReadPct   int
	AppendPct int
	RMWPct    int
	// Dist is the key distribution.
	Dist Distribution
}

// Table2 reproduces the paper's workload table.
var Table2 = []Spec{
	{Name: "RD50_U", ReadPct: 50, Dist: Uniform},
	{Name: "RD95_U", ReadPct: 95, Dist: Uniform},
	{Name: "RD100_U", ReadPct: 100, Dist: Uniform},
	{Name: "RD50_Z", ReadPct: 50, Dist: Zipf99},
	{Name: "RD95_Z", ReadPct: 95, Dist: Zipf99},
	{Name: "RD100_Z", ReadPct: 100, Dist: Zipf99},
	{Name: "RD95_L", ReadPct: 95, Dist: Latest},
	{Name: "RMW50_Z", ReadPct: 50, RMWPct: 50, Dist: Zipf99},
}

// ByName returns the Table 2 spec with the given name.
func ByName(name string) (Spec, bool) {
	for _, s := range Table2 {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}

// AppendSpecs are the Figure 12 mixes (read : append).
var AppendSpecs = []Spec{
	{Name: "RD95AP5_Z99", ReadPct: 95, AppendPct: 5, Dist: Zipf99},
	{Name: "RD95AP5_Z50", ReadPct: 95, AppendPct: 5, Dist: Zipf50},
	{Name: "RD95AP5_U", ReadPct: 95, AppendPct: 5, Dist: Uniform},
	{Name: "RD50AP50_U", ReadPct: 50, AppendPct: 50, Dist: Uniform},
}

// DataSet is a key/value size configuration (Table 3).
type DataSet struct {
	Name    string
	KeySize int
	ValSize int
}

// Table3 reproduces the paper's data size table.
var Table3 = []DataSet{
	{Name: "Small", KeySize: 16, ValSize: 16},
	{Name: "Medium", KeySize: 16, ValSize: 128},
	{Name: "Large", KeySize: 16, ValSize: 512},
}

// FormatKey renders key id as the fixed-width 16-byte key the paper's
// data sets use.
func FormatKey(id uint64) []byte {
	return []byte(fmt.Sprintf("user%012d", id%1e12))
}

// MakeValue builds a deterministic value of the given size for key id.
func MakeValue(size int, id uint64) []byte {
	v := make([]byte, size)
	var seed [8]byte
	binary.LittleEndian.PutUint64(seed[:], id)
	for i := range v {
		v[i] = seed[i%8] ^ byte(i*131)
	}
	return v
}

// Gen produces a deterministic op stream for a Spec over n preloaded keys.
type Gen struct {
	spec Spec
	n    uint64 // current key-space size (grows under Latest inserts)
	rng  *rand.Rand
	zipf *zipfian
}

// NewGen creates a generator for spec over an initial key space of n keys.
func NewGen(spec Spec, n uint64, seed int64) *Gen {
	if n == 0 {
		panic("workload: empty key space")
	}
	g := &Gen{spec: spec, n: n, rng: rand.New(rand.NewSource(seed))}
	switch spec.Dist {
	case Zipf99:
		g.zipf = newZipfian(n, 0.99, g.rng)
	case Zipf50:
		g.zipf = newZipfian(n, 0.50, g.rng)
	case Latest:
		g.zipf = newZipfian(n, 0.99, g.rng)
	}
	return g
}

// KeySpace returns the current number of keys (grows under Latest).
func (g *Gen) KeySpace() uint64 { return g.n }

// Next returns the next operation.
func (g *Gen) Next() Op {
	p := g.rng.Intn(100)
	var kind Kind
	switch {
	case p < g.spec.ReadPct:
		kind = Read
	case p < g.spec.ReadPct+g.spec.AppendPct:
		kind = Append
	case p < g.spec.ReadPct+g.spec.AppendPct+g.spec.RMWPct:
		kind = ReadModifyWrite
	default:
		if g.spec.Dist == Latest {
			kind = Insert
		} else {
			kind = Update
		}
	}
	if kind == Insert {
		id := g.n
		g.n++
		g.zipf.grow(g.n)
		return Op{Kind: Insert, Key: id}
	}
	return Op{Kind: kind, Key: g.pick()}
}

// pick draws a key id under the spec's distribution.
func (g *Gen) pick() uint64 {
	switch g.spec.Dist {
	case Uniform:
		return uint64(g.rng.Int63n(int64(g.n)))
	case Latest:
		// Skew toward the most recently inserted keys.
		off := g.zipf.next()
		return g.n - 1 - off
	default:
		// Scrambled zipfian: hash the zipf rank so hot keys are spread
		// across the key space (YCSB's ScrambledZipfianGenerator).
		rank := g.zipf.next()
		return fnv64(rank) % g.n
	}
}

// zipfian is YCSB's bounded zipfian generator (Gray et al.).
type zipfian struct {
	n      uint64
	theta  float64
	alpha  float64
	zetan  float64
	zeta2  float64
	eta    float64
	rng    *rand.Rand
	grownN uint64 // lazily re-zeta when the space grows a lot
}

func newZipfian(n uint64, theta float64, rng *rand.Rand) *zipfian {
	z := &zipfian{n: n, theta: theta, rng: rng, grownN: n}
	z.zeta2 = zetaStatic(2, theta)
	z.zetan = zetaStatic(n, theta)
	z.alpha = 1.0 / (1.0 - theta)
	z.eta = z.etaFor(n)
	return z
}

func (z *zipfian) etaFor(n uint64) float64 {
	return (1 - math.Pow(2.0/float64(n), 1-z.theta)) / (1 - z.zeta2/z.zetan)
}

func zetaStatic(n uint64, theta float64) float64 {
	sum := 0.0
	for i := uint64(1); i <= n; i++ {
		sum += 1 / math.Pow(float64(i), theta)
	}
	return sum
}

// grow extends the key space; zetan is recomputed incrementally.
func (z *zipfian) grow(n uint64) {
	if n <= z.grownN {
		return
	}
	for i := z.grownN + 1; i <= n; i++ {
		z.zetan += 1 / math.Pow(float64(i), z.theta)
	}
	z.grownN = n
	z.n = n
	z.eta = z.etaFor(n)
}

// next draws a rank in [0, n).
func (z *zipfian) next() uint64 {
	u := z.rng.Float64()
	uz := u * z.zetan
	if uz < 1.0 {
		return 0
	}
	if uz < 1.0+math.Pow(0.5, z.theta) {
		return 1
	}
	return uint64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, z.alpha))
}

func fnv64(v uint64) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < 8; i++ {
		h ^= v & 0xff
		h *= 1099511628211
		v >>= 8
	}
	return h
}
