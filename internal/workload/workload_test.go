package workload

import (
	"math"
	"sort"
	"testing"
)

func TestTable2Complete(t *testing.T) {
	want := []string{"RD50_U", "RD95_U", "RD100_U", "RD50_Z", "RD95_Z", "RD100_Z", "RD95_L", "RMW50_Z"}
	if len(Table2) != len(want) {
		t.Fatalf("Table2 has %d specs, want %d", len(Table2), len(want))
	}
	for i, name := range want {
		if Table2[i].Name != name {
			t.Errorf("Table2[%d] = %s, want %s", i, Table2[i].Name, name)
		}
	}
	for _, name := range want {
		if _, ok := ByName(name); !ok {
			t.Errorf("ByName(%s) missing", name)
		}
	}
	if _, ok := ByName("nope"); ok {
		t.Error("ByName accepted unknown name")
	}
}

func TestTable3Sizes(t *testing.T) {
	want := map[string]int{"Small": 16, "Medium": 128, "Large": 512}
	for _, ds := range Table3 {
		if ds.KeySize != 16 {
			t.Errorf("%s key size = %d, want 16", ds.Name, ds.KeySize)
		}
		if ds.ValSize != want[ds.Name] {
			t.Errorf("%s val size = %d, want %d", ds.Name, ds.ValSize, want[ds.Name])
		}
	}
}

func TestFormatKey(t *testing.T) {
	k := FormatKey(42)
	if len(k) != 16 {
		t.Fatalf("key length = %d, want 16", len(k))
	}
	if string(k) != "user000000000042" {
		t.Fatalf("key = %q", k)
	}
	if string(FormatKey(1)) == string(FormatKey(2)) {
		t.Fatal("distinct ids must format distinctly")
	}
}

func TestMakeValueDeterministic(t *testing.T) {
	a, b := MakeValue(128, 7), MakeValue(128, 7)
	if string(a) != string(b) {
		t.Fatal("MakeValue not deterministic")
	}
	if len(a) != 128 {
		t.Fatalf("len = %d", len(a))
	}
	c := MakeValue(128, 8)
	if string(a) == string(c) {
		t.Fatal("different ids must differ")
	}
}

func TestMixRatios(t *testing.T) {
	for _, spec := range Table2 {
		g := NewGen(spec, 10_000, 1)
		counts := map[Kind]int{}
		const n = 50_000
		for i := 0; i < n; i++ {
			counts[g.Next().Kind]++
		}
		gotRead := 100 * counts[Read] / n
		if d := gotRead - spec.ReadPct; d < -2 || d > 2 {
			t.Errorf("%s: read%% = %d, want %d", spec.Name, gotRead, spec.ReadPct)
		}
		gotRMW := 100 * counts[ReadModifyWrite] / n
		if d := gotRMW - spec.RMWPct; d < -2 || d > 2 {
			t.Errorf("%s: rmw%% = %d, want %d", spec.Name, gotRMW, spec.RMWPct)
		}
		if spec.Dist == Latest {
			if counts[Update] != 0 {
				t.Errorf("%s: latest must insert, not update", spec.Name)
			}
		} else if counts[Insert] != 0 {
			t.Errorf("%s: unexpected inserts", spec.Name)
		}
	}
}

func TestDeterminism(t *testing.T) {
	g1 := NewGen(Table2[3], 1000, 42)
	g2 := NewGen(Table2[3], 1000, 42)
	for i := 0; i < 1000; i++ {
		a, b := g1.Next(), g2.Next()
		if a != b {
			t.Fatalf("op %d diverged: %+v vs %+v", i, a, b)
		}
	}
}

func TestKeysInRange(t *testing.T) {
	for _, spec := range Table2 {
		g := NewGen(spec, 5000, 3)
		for i := 0; i < 20_000; i++ {
			op := g.Next()
			if op.Key >= g.KeySpace() {
				t.Fatalf("%s: key %d out of range %d", spec.Name, op.Key, g.KeySpace())
			}
		}
	}
}

func TestZipfSkewness(t *testing.T) {
	// theta=0.99 must be much more skewed than uniform and than theta=0.5.
	top1Share := func(dist Distribution) float64 {
		spec := Spec{Name: "x", ReadPct: 100, Dist: dist}
		g := NewGen(spec, 10_000, 9)
		counts := map[uint64]int{}
		const n = 100_000
		for i := 0; i < n; i++ {
			counts[g.Next().Key]++
		}
		freqs := make([]int, 0, len(counts))
		for _, c := range counts {
			freqs = append(freqs, c)
		}
		sort.Sort(sort.Reverse(sort.IntSlice(freqs)))
		top := 0
		for i := 0; i < len(freqs) && i < 100; i++ { // top 1% of 10k keys
			top += freqs[i]
		}
		return float64(top) / n
	}
	u, z50, z99 := top1Share(Uniform), top1Share(Zipf50), top1Share(Zipf99)
	if !(z99 > z50 && z50 > u) {
		t.Fatalf("skew ordering broken: z99=%.3f z50=%.3f uniform=%.3f", z99, z50, u)
	}
	if z99 < 0.3 {
		t.Fatalf("zipf(0.99) top-1%% share = %.3f, want > 0.3", z99)
	}
	if u > 0.05 {
		t.Fatalf("uniform top-1%% share = %.3f, want ~0.01", u)
	}
}

func TestLatestPrefersRecentKeys(t *testing.T) {
	spec, _ := ByName("RD95_L")
	g := NewGen(spec, 10_000, 5)
	recent, total := 0, 0
	for i := 0; i < 50_000; i++ {
		op := g.Next()
		if op.Kind != Read {
			continue
		}
		total++
		if op.Key >= g.KeySpace()-g.KeySpace()/10 {
			recent++
		}
	}
	share := float64(recent) / float64(total)
	if share < 0.5 {
		t.Fatalf("latest: only %.2f of reads hit the newest 10%%", share)
	}
}

func TestLatestInsertsGrowKeySpace(t *testing.T) {
	spec, _ := ByName("RD95_L")
	g := NewGen(spec, 1000, 7)
	start := g.KeySpace()
	inserts := uint64(0)
	for i := 0; i < 10_000; i++ {
		if op := g.Next(); op.Kind == Insert {
			if op.Key != start+inserts {
				t.Fatalf("insert key %d, want %d", op.Key, start+inserts)
			}
			inserts++
		}
	}
	if g.KeySpace() != start+inserts {
		t.Fatalf("key space %d, want %d", g.KeySpace(), start+inserts)
	}
	if inserts == 0 {
		t.Fatal("no inserts generated")
	}
}

func TestZipfTheoreticalHead(t *testing.T) {
	// P(rank 0) for zipf(theta) over n keys is 1/zeta_n(theta); check the
	// generator's head probability against theory within noise.
	n := uint64(1000)
	z := newZipfian(n, 0.99, NewGen(Spec{ReadPct: 100, Dist: Uniform}, 1, 1).rng)
	const draws = 200_000
	zero := 0
	for i := 0; i < draws; i++ {
		if z.next() == 0 {
			zero++
		}
	}
	want := 1 / zetaStatic(n, 0.99)
	got := float64(zero) / draws
	if math.Abs(got-want)/want > 0.15 {
		t.Fatalf("head probability %.4f, theory %.4f", got, want)
	}
}

func TestEmptyKeySpacePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("must panic")
		}
	}()
	NewGen(Table2[0], 0, 1)
}

func TestStringers(t *testing.T) {
	for _, k := range []Kind{Read, Update, Insert, Append, ReadModifyWrite} {
		if k.String() == "op(?)" {
			t.Errorf("kind %d unnamed", k)
		}
	}
	for _, d := range []Distribution{Uniform, Zipf99, Zipf50, Latest} {
		if d.String() == "dist(?)" {
			t.Errorf("dist %d unnamed", d)
		}
	}
}

func TestAppendSpecs(t *testing.T) {
	if len(AppendSpecs) != 4 {
		t.Fatalf("AppendSpecs = %d entries, want 4 (Figure 12)", len(AppendSpecs))
	}
	for _, spec := range AppendSpecs {
		g := NewGen(spec, 1000, 2)
		counts := map[Kind]int{}
		const n = 20000
		for i := 0; i < n; i++ {
			counts[g.Next().Kind]++
		}
		gotAppend := 100 * counts[Append] / n
		if d := gotAppend - spec.AppendPct; d < -2 || d > 2 {
			t.Errorf("%s: append%% = %d, want %d", spec.Name, gotAppend, spec.AppendPct)
		}
		if counts[Insert] != 0 {
			t.Errorf("%s: unexpected inserts", spec.Name)
		}
	}
}

func TestZipfGrowIncremental(t *testing.T) {
	// Latest-distribution inserts grow the zipf support incrementally;
	// the incremental zeta must match a fresh computation.
	rng1 := NewGen(Spec{Name: "x", ReadPct: 100, Dist: Zipf99}, 1, 1).rng
	z := newZipfian(1000, 0.99, rng1)
	z.grow(1500)
	fresh := zetaStatic(1500, 0.99)
	if diff := z.zetan - fresh; diff > 1e-9 || diff < -1e-9 {
		t.Fatalf("incremental zeta %.12f != fresh %.12f", z.zetan, fresh)
	}
	// Shrinking grow is a no-op.
	before := z.zetan
	z.grow(1200)
	if z.zetan != before {
		t.Fatal("grow to smaller n changed state")
	}
}
