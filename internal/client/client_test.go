package client

import (
	"errors"
	"net"
	"testing"

	"shieldstore/internal/core"
	"shieldstore/internal/mem"
	"shieldstore/internal/proto"
	"shieldstore/internal/server"
	"shieldstore/internal/sgx"
)

func testServer(t *testing.T, secure bool) (*sgx.Enclave, string) {
	t.Helper()
	space := mem.NewSpace(mem.Config{EPCBytes: 16 << 20})
	e := sgx.New(sgx.Config{Space: space, Seed: 61, Measurement: [32]byte{0x42}})
	p := core.NewPartitioned(e, 2, core.Defaults(64))
	p.Start()
	t.Cleanup(p.Stop)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.Serve(ln, server.Config{
		Engine:  server.CoreEngine{P: p},
		Enclave: e,
		Secure:  secure,
		Logf:    t.Logf,
	})
	t.Cleanup(srv.Close)
	return e, ln.Addr().String()
}

func TestDialFailure(t *testing.T) {
	if _, err := Dial("127.0.0.1:1", Options{}); err == nil {
		t.Fatal("dial to closed port succeeded")
	}
}

func TestSecureRequiresVerifier(t *testing.T) {
	_, addr := testServer(t, true)
	if _, err := Dial(addr, Options{Secure: true}); err == nil {
		t.Fatal("secure dial without verifier accepted")
	}
}

func TestErrorMapping(t *testing.T) {
	e, addr := testServer(t, true)
	c, err := Dial(addr, Options{Verifier: e, Measurement: e.Measurement(), Secure: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if _, err := c.Get([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("missing key: %v", err)
	}
	if err := c.Delete([]byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete missing: %v", err)
	}
	// Incr on text -> generic server error.
	if err := c.Set([]byte("txt"), []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Incr([]byte("txt"), 1); !errors.Is(err, ErrServer) {
		t.Fatalf("incr on text: %v", err)
	}
}

func TestSequentialRequestsShareSession(t *testing.T) {
	e, addr := testServer(t, true)
	c, err := Dial(addr, Options{Verifier: e, Measurement: e.Measurement(), Secure: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	// Many requests over one channel exercise the nonce sequence.
	for i := 0; i < 200; i++ {
		if err := c.Set([]byte{byte(i)}, []byte{byte(i)}); err != nil {
			t.Fatalf("op %d: %v", i, err)
		}
	}
	for i := 0; i < 200; i++ {
		v, err := c.Get([]byte{byte(i)})
		if err != nil || len(v) != 1 || v[0] != byte(i) {
			t.Fatalf("get %d: %v %v", i, v, err)
		}
	}
}

func TestMITMDowngradeFails(t *testing.T) {
	// A plaintext client talking to a secure server cannot get valid
	// responses: its unencrypted frames fail the server's channel Open.
	e, addr := testServer(t, true)
	_ = e
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// The server expects a handshake hello; send a raw request instead.
	req := proto.EncodeRequest(&proto.Request{Cmd: proto.CmdGet, Key: []byte("k")})
	if err := proto.WriteFrame(conn, req); err != nil {
		t.Fatal(err)
	}
	// The server should reject the malformed handshake and close.
	if _, err := proto.ReadFrame(conn); err == nil {
		t.Fatal("server answered a non-handshake frame on a secure listener")
	}
}

func TestPlaintextClientAgainstPlaintextServer(t *testing.T) {
	_, addr := testServer(t, false)
	c, err := Dial(addr, Options{Secure: false})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.Append([]byte("a"), []byte("x")); err != nil {
		t.Fatal(err)
	}
	v, err := c.Get([]byte("a"))
	if err != nil || string(v) != "x" {
		t.Fatalf("%q %v", v, err)
	}
}

func TestMGet(t *testing.T) {
	e, addr := testServer(t, true)
	c, err := Dial(addr, Options{Verifier: e, Measurement: e.Measurement(), Secure: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 5; i++ {
		if err := c.Set([]byte{byte('a' + i)}, []byte{byte('A' + i)}); err != nil {
			t.Fatal(err)
		}
	}
	vals, err := c.MGet([]byte("a"), []byte("missing"), []byte("c"), []byte("e"))
	if err != nil {
		t.Fatal(err)
	}
	if len(vals) != 4 {
		t.Fatalf("got %d values", len(vals))
	}
	if string(vals[0]) != "A" || string(vals[2]) != "C" || string(vals[3]) != "E" {
		t.Fatalf("values wrong: %q", vals)
	}
	if vals[1] != nil {
		t.Fatalf("missing key returned %q, want nil", vals[1])
	}
	// Empty batch.
	vals, err = c.MGet()
	if err != nil || len(vals) != 0 {
		t.Fatalf("empty mget: %v %v", vals, err)
	}
	// Large batch in one round trip.
	keys := make([][]byte, 100)
	for i := range keys {
		keys[i] = []byte{byte('a' + i%5)}
	}
	vals, err = c.MGet(keys...)
	if err != nil || len(vals) != 100 {
		t.Fatalf("large mget: %d %v", len(vals), err)
	}
}
