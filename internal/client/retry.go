// Reconnection and bounded retry. The policy is deliberately narrow:
// transport failures (ErrConnection) are retried only for idempotent
// requests, and attempts are capped with exponential backoff — a dead
// server costs a bounded delay, not a hang, and a flapping one is ridden
// out. Server-reported errors (misses, integrity violations, quarantine)
// always surface immediately: retrying them would at best hide a fault
// the caller must know about. The one exception is StatusRebuilding —
// the server's explicit "not applied, partition healing, come back"
// signal — which is retried for every op kind, mutations included, since
// there is no applied-but-unacknowledged ambiguity to protect against.
package client

import (
	"errors"
	"fmt"
	"net"
	"time"

	"shieldstore/internal/proto"
)

// RetryPolicy bounds transparent reconnect/retry. The zero value
// disables it.
type RetryPolicy struct {
	// MaxAttempts is the total number of tries per request (first
	// attempt included). <= 1 disables retry.
	MaxAttempts int
	// Backoff is the delay before the first retry (default 1ms).
	Backoff time.Duration
	// MaxBackoff caps the exponential growth (default 100ms).
	MaxBackoff time.Duration
}

func (p RetryPolicy) enabled() bool { return p.MaxAttempts > 1 }

func (p RetryPolicy) initial() time.Duration {
	if p.Backoff > 0 {
		return p.Backoff
	}
	return time.Millisecond
}

func (p RetryPolicy) cap() time.Duration {
	if p.MaxBackoff > 0 {
		return p.MaxBackoff
	}
	return 100 * time.Millisecond
}

// Retries reports how many reconnect attempts this client has made.
func (c *Client) Retries() uint64 { return c.retries }

// do routes one request through the retry policy. A connection marked
// broken by an earlier failure is re-dialed before sending anything —
// that part is safe even for mutations, since nothing is in flight.
// Replaying the request after a mid-flight failure is reserved for
// idempotent ops.
func (c *Client) do(req *proto.Request, idempotent bool) (*proto.Response, error) {
	pol := c.opts.Retry
	if c.broken {
		if !pol.enabled() || c.addr == "" {
			return nil, fmt.Errorf("%w: connection is broken", ErrConnection)
		}
		if err := c.redial(pol); err != nil {
			return nil, err
		}
	}
	resp, err := c.roundTripOnce(req)
	if err == nil || !pol.enabled() {
		return resp, err
	}
	backoff := pol.initial()
	for attempt := 1; attempt < pol.MaxAttempts; attempt++ {
		if !c.retryable(err, idempotent) {
			return resp, err
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > pol.cap() {
			backoff = pol.cap()
		}
		if c.broken {
			if rerr := c.reconnectOnce(); rerr != nil {
				err = rerr
				continue
			}
		}
		resp, err = c.roundTripOnce(req)
		if err == nil {
			return resp, nil
		}
	}
	return nil, err
}

// retryable decides whether one more attempt may help. A rebuilding
// partition is always worth retrying — the server guarantees the op was
// not applied and the connection is intact, so even mutations replay
// safely. A transport failure is retried only when the request is
// idempotent and the client knows how to re-dial.
func (c *Client) retryable(err error, idempotent bool) bool {
	if errors.Is(err, ErrRebuilding) {
		return true
	}
	return c.broken && idempotent && c.addr != ""
}

// redial re-establishes a broken connection (with backoff) without
// sending any request — used before mutations, which must not replay.
func (c *Client) redial(pol RetryPolicy) error {
	backoff := pol.initial()
	var err error
	for attempt := 1; attempt < pol.MaxAttempts; attempt++ {
		if err = c.reconnectOnce(); err == nil {
			return nil
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > pol.cap() {
			backoff = pol.cap()
		}
	}
	if err == nil {
		err = fmt.Errorf("%w: connection is broken", ErrConnection)
	}
	return err
}

// reconnectOnce dials and re-handshakes a single time, replacing the
// client's connection and channel state on success.
func (c *Client) reconnectOnce() error {
	c.retries++
	c.conn.Close()
	conn, err := net.DialTimeout("tcp", c.addr, c.opts.Timeout)
	if err != nil {
		return fmt.Errorf("%w: %v", ErrConnection, err)
	}
	var ch *proto.Channel
	if c.opts.Secure {
		if c.opts.Timeout > 0 {
			conn.SetDeadline(time.Now().Add(c.opts.Timeout))
		}
		ch, err = proto.ClientHandshake(conn, c.opts.Verifier, c.opts.Measurement)
		if err != nil {
			conn.Close()
			// The handshake rides the same socket; its failure during a
			// flap is a transport-class event.
			return fmt.Errorf("%w: handshake: %v", ErrConnection, err)
		}
		if c.opts.Timeout > 0 {
			conn.SetDeadline(time.Time{})
		}
	}
	c.conn = conn
	c.ch = ch
	c.broken = false
	return nil
}
