package client

import (
	"errors"
	"net"
	"testing"
	"time"

	"shieldstore/internal/core"
	"shieldstore/internal/fault"
	"shieldstore/internal/mem"
	"shieldstore/internal/server"
	"shieldstore/internal/sgx"
)

// restartableServer can be stopped and brought back on the same address,
// keeping the engine (and its data) alive across the outage.
type restartableServer struct {
	t      *testing.T
	e      *sgx.Enclave
	p      *core.Partitioned
	secure bool
	addr   string
	srv    *server.Server
}

func newRestartable(t *testing.T, secure bool) *restartableServer {
	t.Helper()
	space := mem.NewSpace(mem.Config{EPCBytes: 16 << 20})
	e := sgx.New(sgx.Config{Space: space, Seed: 61, Measurement: [32]byte{0x42}})
	p := core.NewPartitioned(e, 2, core.Defaults(64))
	p.Start()
	t.Cleanup(p.Stop)
	rs := &restartableServer{t: t, e: e, p: p, secure: secure}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	rs.addr = ln.Addr().String()
	rs.serve(ln)
	t.Cleanup(func() { rs.stop() })
	return rs
}

func (rs *restartableServer) serve(ln net.Listener) {
	rs.srv = server.Serve(ln, server.Config{
		Engine:  server.CoreEngine{P: rs.p},
		Enclave: rs.e,
		Secure:  rs.secure,
		Logf:    rs.t.Logf,
		// stop() is called while clients are connected; the bounded
		// drain force-closes them instead of hanging Close.
		DrainTimeout: 50 * time.Millisecond,
	})
}

func (rs *restartableServer) stop() {
	if rs.srv != nil {
		rs.srv.Close()
		rs.srv = nil
	}
}

// restart rebinds the same address (retrying briefly — the kernel may
// lag releasing the port) and serves again.
func (rs *restartableServer) restart() {
	rs.t.Helper()
	var ln net.Listener
	var err error
	for i := 0; i < 100; i++ {
		if ln, err = net.Listen("tcp", rs.addr); err == nil {
			rs.serve(ln)
			return
		}
		time.Sleep(10 * time.Millisecond)
	}
	rs.t.Fatalf("rebind %s: %v", rs.addr, err)
}

func (rs *restartableServer) dial(pol RetryPolicy) *Client {
	rs.t.Helper()
	opts := Options{Retry: pol}
	if rs.secure {
		opts.Secure = true
		opts.Verifier = rs.e
		opts.Measurement = rs.e.Measurement()
	}
	c, err := Dial(rs.addr, opts)
	if err != nil {
		rs.t.Fatal(err)
	}
	rs.t.Cleanup(func() { c.Close() })
	return c
}

var testPolicy = RetryPolicy{MaxAttempts: 8, Backoff: time.Millisecond, MaxBackoff: 20 * time.Millisecond}

func TestIdempotentRetryAcrossRestart(t *testing.T) {
	for _, secure := range []bool{false, true} {
		t.Run(map[bool]string{false: "plain", true: "secure"}[secure], func(t *testing.T) {
			rs := newRestartable(t, secure)
			c := rs.dial(testPolicy)
			if err := c.Set([]byte("k"), []byte("v")); err != nil {
				t.Fatal(err)
			}
			rs.stop()
			rs.restart()
			// The old connection is dead; the Get must transparently
			// reconnect (re-handshaking when secure) and replay.
			got, err := c.Get([]byte("k"))
			if err != nil {
				t.Fatalf("get across restart: %v", err)
			}
			if string(got) != "v" {
				t.Fatalf("got %q", got)
			}
			if c.Retries() == 0 {
				t.Fatal("no reconnect recorded")
			}
		})
	}
}

func TestMutationReconnectsButNeverReplays(t *testing.T) {
	rs := newRestartable(t, false)
	c := rs.dial(testPolicy)
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	rs.stop()
	rs.restart()
	// The first mutation on the dead connection fails — it must NOT be
	// silently replayed, because the client cannot know whether it was
	// applied.
	err := c.Set([]byte("m"), []byte("1"))
	if !errors.Is(err, ErrConnection) {
		t.Fatalf("mutation on dead connection: %v, want ErrConnection", err)
	}
	// But the broken connection is re-established before the *next*
	// mutation, which the caller knowingly re-issues.
	if err := c.Set([]byte("m"), []byte("1")); err != nil {
		t.Fatalf("re-issued mutation: %v", err)
	}
	got, err := c.Get([]byte("m"))
	if err != nil || string(got) != "1" {
		t.Fatalf("get after re-issue: %q/%v", got, err)
	}
}

func TestRetryDisabledFailsFast(t *testing.T) {
	rs := newRestartable(t, false)
	c := rs.dial(RetryPolicy{})
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	rs.stop()
	rs.restart()
	if _, err := c.Get([]byte("k")); !errors.Is(err, ErrConnection) {
		t.Fatalf("get without retry policy: %v, want ErrConnection", err)
	}
	// Still broken: no policy means no transparent recovery, ever.
	if err := c.Ping(); !errors.Is(err, ErrConnection) {
		t.Fatalf("second op without retry policy: %v, want ErrConnection", err)
	}
}

func TestFlappingListenerRiddenOut(t *testing.T) {
	// The server is up but its accept path drops the first connections
	// (deterministically, via the fault plane): backoff + reconnect must
	// ride the flap out without surfacing an error.
	for _, secure := range []bool{false, true} {
		t.Run(map[bool]string{false: "plain", true: "secure"}[secure], func(t *testing.T) {
			space := mem.NewSpace(mem.Config{EPCBytes: 16 << 20})
			e := sgx.New(sgx.Config{Space: space, Seed: 61, Measurement: [32]byte{0x42}})
			p := core.NewPartitioned(e, 2, core.Defaults(64))
			p.Start()
			t.Cleanup(p.Stop)
			ln, err := net.Listen("tcp", "127.0.0.1:0")
			if err != nil {
				t.Fatal(err)
			}
			plane := fault.New(11)
			srv := server.Serve(fault.WrapListener(ln, plane), server.Config{
				Engine:       server.CoreEngine{P: p},
				Enclave:      e,
				Secure:       secure,
				Logf:         t.Logf,
				DrainTimeout: 50 * time.Millisecond,
			})
			t.Cleanup(srv.Close)

			opts := Options{Retry: testPolicy}
			if secure {
				opts.Secure = true
				opts.Verifier = e
				opts.Measurement = e.Measurement()
			}
			// Arm AFTER the client's initial dial would complicate secure
			// handshakes; instead arm first and let Dial itself land in the
			// flap window for the plain case, where the handshake-free Dial
			// succeeds and the first request eats the drop.
			plane.Arm(fault.PointAccept, fault.Spec{Count: 2})
			var c *Client
			if secure {
				// The secure Dial handshakes eagerly, so the flap hits it
				// before NewClient returns; ride it with a dial loop like a
				// CLI would.
				var derr error
				for i := 0; i < 8; i++ {
					if c, derr = Dial(ln.Addr().String(), opts); derr == nil {
						break
					}
					time.Sleep(2 * time.Millisecond)
				}
				if derr != nil {
					t.Fatal(derr)
				}
			} else {
				if c, err = Dial(ln.Addr().String(), opts); err != nil {
					t.Fatal(err)
				}
			}
			t.Cleanup(func() { c.Close() })
			// Ping is idempotent: it eats the remaining drops via retry.
			// Only then mutate, on a connection known to be healthy.
			if err := c.Ping(); err != nil {
				t.Fatal(err)
			}
			if err := c.Set([]byte("f"), []byte("1")); err != nil {
				t.Fatal(err)
			}
			if got, err := c.Get([]byte("f")); err != nil || string(got) != "1" {
				t.Fatalf("get through flap: %q/%v", got, err)
			}
			if plane.Fired(fault.PointAccept) != 2 {
				t.Fatalf("accept point fired %d times, want 2", plane.Fired(fault.PointAccept))
			}
		})
	}
}
