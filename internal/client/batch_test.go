package client

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"shieldstore/internal/proto"
)

func dialTest(t *testing.T) *Client {
	t.Helper()
	e, addr := testServer(t, true)
	c, err := Dial(addr, Options{Verifier: e, Measurement: e.Measurement(), Secure: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func TestBatchMixedRoundTrip(t *testing.T) {
	c := dialTest(t)
	rs, err := c.Batch(
		SetOp([]byte("a"), []byte("1")),
		GetOp([]byte("a")),
		AppendOp([]byte("a"), []byte("2")),
		GetOp([]byte("a")),
		IncrOp([]byte("n"), 7),
		GetOp([]byte("missing")),
		DelOp([]byte("a")),
		GetOp([]byte("a")),
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 8 {
		t.Fatalf("got %d results", len(rs))
	}
	for _, i := range []int{0, 1, 2, 3, 4, 6} {
		if rs[i].Err != nil {
			t.Fatalf("op %d: %v", i, rs[i].Err)
		}
	}
	if string(rs[1].Value) != "1" || string(rs[3].Value) != "12" {
		t.Fatalf("get values = %q, %q", rs[1].Value, rs[3].Value)
	}
	if rs[4].Num != 7 {
		t.Fatalf("incr = %d, want 7", rs[4].Num)
	}
	// Per-op isolation: the two misses fail alone.
	if !errors.Is(rs[5].Err, ErrNotFound) || !errors.Is(rs[7].Err, ErrNotFound) {
		t.Fatalf("miss errs = %v, %v, want ErrNotFound", rs[5].Err, rs[7].Err)
	}
}

func TestBatchEmptyAndOversized(t *testing.T) {
	c := dialTest(t)
	rs, err := c.Batch()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != 0 {
		t.Fatalf("empty batch: %d results", len(rs))
	}
	// One past the op limit is rejected client-side before any frame is
	// written.
	big := make([]Op, proto.MaxBatchOps+1)
	for i := range big {
		big[i] = GetOp([]byte("k"))
	}
	if _, err := c.Batch(big...); !errors.Is(err, proto.ErrBatchTooLarge) {
		t.Fatalf("oversized batch: err = %v, want ErrBatchTooLarge", err)
	}
	// The connection is still usable afterwards.
	if err := c.Ping(); err != nil {
		t.Fatalf("ping after rejected batch: %v", err)
	}
}

func TestMSet(t *testing.T) {
	c := dialTest(t)
	var keys, vals [][]byte
	for i := 0; i < 20; i++ {
		keys = append(keys, []byte(fmt.Sprintf("k%02d", i)))
		vals = append(vals, []byte(fmt.Sprintf("v%02d", i)))
	}
	if err := c.MSet(keys, vals); err != nil {
		t.Fatal(err)
	}
	got, err := c.MGet(keys...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if !bytes.Equal(got[i], vals[i]) {
			t.Fatalf("MGet[%d] = %q, want %q", i, got[i], vals[i])
		}
	}
	if err := c.MSet(keys[:2], vals[:1]); err == nil {
		t.Fatal("mismatched MSet lengths accepted")
	}
}

func TestPipelineFlush(t *testing.T) {
	c := dialTest(t)
	p := c.Pipeline()
	const n = 50
	for i := 0; i < n; i++ {
		p.Set([]byte(fmt.Sprintf("p%02d", i)), []byte(fmt.Sprintf("v%02d", i)))
	}
	p.Get([]byte("p07"))
	p.Incr([]byte("cnt"), 3)
	p.Get([]byte("nope"))
	if p.Len() != n+3 {
		t.Fatalf("Len = %d", p.Len())
	}
	rs, err := p.Flush()
	if err != nil {
		t.Fatal(err)
	}
	if len(rs) != n+3 {
		t.Fatalf("got %d results", len(rs))
	}
	for i := 0; i < n; i++ {
		if rs[i].Err != nil {
			t.Fatalf("set %d: %v", i, rs[i].Err)
		}
	}
	if string(rs[n].Value) != "v07" {
		t.Fatalf("pipelined get = %q", rs[n].Value)
	}
	if rs[n+1].Num != 3 {
		t.Fatalf("pipelined incr = %d", rs[n+1].Num)
	}
	if !errors.Is(rs[n+2].Err, ErrNotFound) {
		t.Fatalf("pipelined miss: %v", rs[n+2].Err)
	}

	// The pipeline resets and the plain API still works on the same
	// channel (nonces stayed in sync).
	if p.Len() != 0 {
		t.Fatalf("Len after flush = %d", p.Len())
	}
	v, err := c.Get([]byte("p00"))
	if err != nil || string(v) != "v00" {
		t.Fatalf("get after pipeline: %q, %v", v, err)
	}
	if rs, err := p.Flush(); err != nil || rs != nil {
		t.Fatalf("empty flush: %v, %v", rs, err)
	}
}
