// Client-side batching: a Batch call packs N heterogeneous operations
// into one CmdBatch frame (one network round trip, one server-side
// request overhead), and a Pipeline queues ordinary requests and flushes
// them back-to-back so the wire carries many frames per round trip.
package client

import (
	"bytes"

	"shieldstore/internal/proto"
)

// Op is one operation of a client batch. Use the Get/Set/Del/Append/Incr
// constructors rather than filling the wire struct by hand.
type Op = proto.BatchOp

// GetOp builds a batch Get.
func GetOp(key []byte) Op { return Op{Cmd: proto.CmdGet, Key: key} }

// SetOp builds a batch Set.
func SetOp(key, value []byte) Op { return Op{Cmd: proto.CmdSet, Key: key, Value: value} }

// DelOp builds a batch Delete.
func DelOp(key []byte) Op { return Op{Cmd: proto.CmdDelete, Key: key} }

// AppendOp builds a batch Append.
func AppendOp(key, suffix []byte) Op { return Op{Cmd: proto.CmdAppend, Key: key, Value: suffix} }

// IncrOp builds a batch Incr.
func IncrOp(key []byte, delta int64) Op { return Op{Cmd: proto.CmdIncr, Key: key, Delta: delta} }

// Result is one per-op outcome of a Batch. Err isolates that op's failure
// (ErrNotFound, ErrIntegrity, ErrServer); the other ops of the batch are
// unaffected.
type Result struct {
	Value []byte
	Num   int64
	Err   error
}

// Batch executes ops in one round trip and returns one result per op, in
// submission order. The call itself only fails on transport or framing
// errors; per-op failures land in the individual results.
func (c *Client) Batch(ops ...Op) ([]Result, error) {
	payload, err := proto.EncodeBatch(ops)
	if err != nil {
		return nil, err
	}
	resp, err := c.roundTrip(&proto.Request{Cmd: proto.CmdBatch, Value: payload})
	if err != nil {
		return nil, err
	}
	wire, err := proto.DecodeBatchResults(resp.Value)
	if err != nil {
		return nil, err
	}
	if len(wire) != len(ops) {
		return nil, proto.ErrBadMessage
	}
	out := make([]Result, len(wire))
	for i := range wire {
		out[i] = Result{Value: wire[i].Value, Num: wire[i].Num, Err: statusErr(wire[i].Status)}
	}
	return out, nil
}

// MSet stores keys[i] = values[i] for all i in one round trip. The first
// per-op failure (if any) is returned.
func (c *Client) MSet(keys, values [][]byte) error {
	if len(keys) != len(values) {
		return proto.ErrBadMessage
	}
	ops := make([]Op, len(keys))
	for i := range keys {
		ops[i] = SetOp(keys[i], values[i])
	}
	rs, err := c.Batch(ops...)
	if err != nil {
		return err
	}
	for i := range rs {
		if rs[i].Err != nil {
			return rs[i].Err
		}
	}
	return nil
}

// statusErr maps a wire status to the client error vocabulary (nil on OK).
func statusErr(status uint8) error {
	switch status {
	case proto.StatusOK:
		return nil
	case proto.StatusNotFound:
		return ErrNotFound
	case proto.StatusIntegrityViolation:
		return ErrIntegrity
	case proto.StatusRebuilding:
		// Per-op rebuilding inside a batch: the envelope status is OK, so
		// the connection-level retry never sees it — callers (and the
		// cluster scatter-gather layer) re-issue the affected ops.
		return ErrRebuilding
	default:
		return ErrServer
	}
}

// Pipeline queues ordinary single-op requests and sends them back-to-back
// on Flush, overlapping N requests on the wire instead of paying one
// round-trip latency each. Frames are sealed at queue time (the channel
// nonce sequence is the queue order), so a Pipeline must not interleave
// with other calls on the same Client until flushed. Not concurrency-safe.
type Pipeline struct {
	c   *Client
	buf bytes.Buffer
	n   int

	// Reused per-frame scratch (encode + seal at queue time, frame read
	// at flush time).
	enc    []byte
	sealed []byte
	frame  []byte
}

// Pipeline starts an empty pipeline on this connection.
func (c *Client) Pipeline() *Pipeline { return &Pipeline{c: c} }

// Len returns the number of queued requests.
func (p *Pipeline) Len() int { return p.n }

// Get queues a get.
func (p *Pipeline) Get(key []byte) { p.push(&proto.Request{Cmd: proto.CmdGet, Key: key}) }

// Set queues a set.
func (p *Pipeline) Set(key, value []byte) {
	p.push(&proto.Request{Cmd: proto.CmdSet, Key: key, Value: value})
}

// Delete queues a delete.
func (p *Pipeline) Delete(key []byte) { p.push(&proto.Request{Cmd: proto.CmdDelete, Key: key}) }

// Append queues an append.
func (p *Pipeline) Append(key, suffix []byte) {
	p.push(&proto.Request{Cmd: proto.CmdAppend, Key: key, Value: suffix})
}

// Incr queues an increment.
func (p *Pipeline) Incr(key []byte, delta int64) {
	p.push(&proto.Request{Cmd: proto.CmdIncr, Key: key, Delta: delta})
}

func (p *Pipeline) push(req *proto.Request) {
	p.enc = proto.AppendRequest(p.enc[:0], req)
	wire := p.enc
	if p.c.ch != nil {
		p.sealed = p.c.ch.SealTo(p.sealed[:0], p.enc)
		wire = p.sealed
	}
	// Buffered WriteFrame cannot fail.
	_ = proto.WriteFrame(&p.buf, wire)
	p.n++
}

// Flush writes every queued frame in one burst, then reads the replies in
// order. Results follow queue order; per-op failures are isolated in the
// individual results. The pipeline is reset and reusable afterwards.
func (p *Pipeline) Flush() ([]Result, error) {
	n := p.n
	if n == 0 {
		return nil, nil
	}
	if _, err := p.c.conn.Write(p.buf.Bytes()); err != nil {
		return nil, err
	}
	p.buf.Reset()
	p.n = 0
	out := make([]Result, n)
	for i := 0; i < n; i++ {
		frame, err := proto.ReadFrameInto(p.c.conn, p.frame[:0])
		if err != nil {
			return nil, err
		}
		p.frame = frame
		if p.c.ch != nil {
			frame, err = p.c.ch.OpenInPlace(frame)
			if err != nil {
				return nil, err
			}
		}
		resp, err := proto.DecodeResponse(frame)
		if err != nil {
			return nil, err
		}
		out[i] = Result{Value: resp.Value, Num: resp.Num, Err: statusErr(resp.Status)}
	}
	return out, nil
}
