// Package client implements the remote ShieldStore client: it dials the
// server, remote-attests the enclave, establishes the encrypted session
// of §3.2, and issues get/set/delete/append/incr requests.
//
//ss:host(the client is the remote, untrusted peer; it crosses no enclave boundary)
package client

import (
	"errors"
	"fmt"
	"net"
	"time"

	"shieldstore/internal/proto"
)

// Errors surfaced to callers.
var (
	// ErrNotFound mirrors the server-side missing-key status.
	ErrNotFound = errors.New("shieldstore client: key not found")
	// ErrIntegrity reports a server-side integrity violation.
	ErrIntegrity = errors.New("shieldstore client: server reported integrity violation")
	// ErrRebuilding reports a partition that is being rebuilt after an
	// integrity failure: the operation was NOT applied and is safe to
	// retry — for any op, not just idempotent ones — after a short
	// backoff. With Options.Retry enabled the client does this itself.
	ErrRebuilding = errors.New("shieldstore client: partition rebuilding, retry")
	// ErrUnhealable reports a partition whose self-heal was refused (its
	// op journal is incomplete): the condition does not clear on its own —
	// an operator restore or a replica failover must intervene. Never
	// retried against the same node.
	ErrUnhealable = errors.New("shieldstore client: partition unhealable, failover required")
	// ErrFenced reports a node that has been fenced out by a newer
	// replication epoch (a replica was promoted in its place): the write
	// was retracted and must be re-routed to the current primary.
	ErrFenced = errors.New("shieldstore client: node fenced by newer replication epoch")
	// ErrServer reports any other server-side failure.
	ErrServer = errors.New("shieldstore client: server error")
	// ErrConnection wraps transport failures (dial, read, write). Only
	// errors of this class are ever retried.
	ErrConnection = errors.New("shieldstore client: connection failure")
)

// Options configures a client connection.
type Options struct {
	// Verifier validates the server's attestation quote (the simulated
	// attestation service); required when Secure is true.
	Verifier proto.QuoteVerifier
	// Measurement is the expected enclave identity.
	Measurement [32]byte
	// Secure enables attestation + channel encryption (the default
	// deployment; disable only for the §6.4 plaintext ablation).
	Secure bool
	// Retry enables transparent reconnection and bounded retry of
	// idempotent requests (Get, MGet, Ping, Stats) after transport
	// failures. Mutations are never retried over a transport failure — a
	// write whose response was lost may have been applied, and replaying
	// it silently would be wrong — but a broken connection is still
	// re-established before the next mutation is sent. A server-reported
	// StatusRebuilding is different: the op was definitively not applied,
	// so ALL ops (mutations included) are retried with backoff while a
	// partition heals.
	Retry RetryPolicy
	// Timeout, when set, deadline-bounds every dial, handshake and
	// request/response round trip on this connection. A probe client (the
	// control plane's failure detector) sets it so a wedged or
	// half-partitioned node costs a bounded wait, never a hang; an
	// expired deadline surfaces as ErrConnection. 0 means no deadline.
	Timeout time.Duration
}

// Client is one connection to a ShieldStore server. A Client is not safe
// for concurrent use; open one connection per goroutine.
type Client struct {
	conn net.Conn
	ch   *proto.Channel

	addr    string // reconnect target ("" when wrapping a raw conn)
	opts    Options
	broken  bool   // the connection (or its channel state) is unusable
	retries uint64 // reconnect attempts performed (tests, stats)

	// Reused request/response scratch (encode, seal, frame read).
	enc    []byte
	sealed []byte
	frame  []byte
}

// Dial connects and (when Secure) attests + establishes the session.
// The address is remembered: with Options.Retry enabled the client can
// re-dial after a transport failure.
func Dial(addr string, opts Options) (*Client, error) {
	conn, err := net.DialTimeout("tcp", addr, opts.Timeout)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrConnection, err)
	}
	c, err := NewClient(conn, opts)
	if err != nil {
		return nil, err
	}
	c.addr = addr
	return c, nil
}

// NewClient wraps an existing connection (tests, in-memory pipes).
func NewClient(conn net.Conn, opts Options) (*Client, error) {
	c := &Client{conn: conn, opts: opts}
	if opts.Secure {
		if opts.Verifier == nil {
			conn.Close()
			return nil, fmt.Errorf("shieldstore client: Secure requires a Verifier")
		}
		if opts.Timeout > 0 {
			conn.SetDeadline(time.Now().Add(opts.Timeout))
		}
		ch, err := proto.ClientHandshake(conn, opts.Verifier, opts.Measurement)
		if err != nil {
			conn.Close()
			return nil, err
		}
		if opts.Timeout > 0 {
			conn.SetDeadline(time.Time{})
		}
		c.ch = ch
	}
	return c, nil
}

// Close terminates the connection.
func (c *Client) Close() error { return c.conn.Close() }

// roundTrip sends one non-idempotent request: a broken connection is
// re-established first, but the request itself is never replayed.
func (c *Client) roundTrip(req *proto.Request) (*proto.Response, error) {
	return c.do(req, false)
}

// roundTripIdem sends a request that is safe to replay after a
// transport failure.
func (c *Client) roundTripIdem(req *proto.Request) (*proto.Response, error) {
	return c.do(req, true)
}

// exchange sends one request on the current connection and decodes the
// reply WITHOUT interpreting its status — the raw transport round trip.
// Encode, seal and frame buffers are reused across calls (DecodeResponse
// copies the value out before the scratch is recycled). Transport
// failures come back wrapped in ErrConnection and poison the connection;
// channel/protocol failures poison it too (the stream or nonce sequence
// is unrecoverable) but are never retried.
func (c *Client) exchange(req *proto.Request) (*proto.Response, error) {
	if c.opts.Timeout > 0 {
		// One deadline spans the whole round trip: a node that accepts the
		// request and never answers is as failed as one that refuses it.
		c.conn.SetDeadline(time.Now().Add(c.opts.Timeout))
		defer c.conn.SetDeadline(time.Time{})
	}
	c.enc = proto.AppendRequest(c.enc[:0], req)
	wire := c.enc
	if c.ch != nil {
		c.sealed = c.ch.SealTo(c.sealed[:0], c.enc)
		wire = c.sealed
	}
	if err := proto.WriteFrame(c.conn, wire); err != nil {
		c.broken = true
		return nil, fmt.Errorf("%w: %v", ErrConnection, err)
	}
	frame, err := proto.ReadFrameInto(c.conn, c.frame[:0])
	if err != nil {
		c.broken = true
		return nil, fmt.Errorf("%w: %v", ErrConnection, err)
	}
	c.frame = frame
	if c.ch != nil {
		frame, err = c.ch.OpenInPlace(frame)
		if err != nil {
			c.broken = true
			return nil, err
		}
	}
	resp, err := proto.DecodeResponse(frame)
	if err != nil {
		c.broken = true
		return nil, err
	}
	return resp, nil
}

// roundTripOnce is exchange plus the status-to-error mapping every
// ordinary command shares.
func (c *Client) roundTripOnce(req *proto.Request) (*proto.Response, error) {
	resp, err := c.exchange(req)
	if err != nil {
		return nil, err
	}
	switch resp.Status {
	case proto.StatusOK:
		return resp, nil
	case proto.StatusNotFound:
		return nil, ErrNotFound
	case proto.StatusIntegrityViolation:
		return nil, ErrIntegrity
	case proto.StatusRebuilding:
		// The connection itself is fine (not poisoned): the op simply
		// arrived while its partition was healing and was not applied.
		return nil, ErrRebuilding
	case proto.StatusUnhealable:
		return nil, ErrUnhealable
	case proto.StatusFenced:
		return nil, ErrFenced
	default:
		return nil, ErrServer
	}
}

// Get fetches a value.
func (c *Client) Get(key []byte) ([]byte, error) {
	resp, err := c.roundTripIdem(&proto.Request{Cmd: proto.CmdGet, Key: key})
	if err != nil {
		return nil, err
	}
	return resp.Value, nil
}

// Set stores a value.
func (c *Client) Set(key, value []byte) error {
	_, err := c.roundTrip(&proto.Request{Cmd: proto.CmdSet, Key: key, Value: value})
	return err
}

// Delete removes a key.
func (c *Client) Delete(key []byte) error {
	_, err := c.roundTrip(&proto.Request{Cmd: proto.CmdDelete, Key: key})
	return err
}

// Append appends to a value server-side.
func (c *Client) Append(key, suffix []byte) error {
	_, err := c.roundTrip(&proto.Request{Cmd: proto.CmdAppend, Key: key, Value: suffix})
	return err
}

// Incr adds delta to a numeric value server-side and returns the result.
func (c *Client) Incr(key []byte, delta int64) (int64, error) {
	resp, err := c.roundTrip(&proto.Request{Cmd: proto.CmdIncr, Key: key, Delta: delta})
	if err != nil {
		return 0, err
	}
	return resp.Num, nil
}

// MGet fetches several keys in one round trip. The result has one slot
// per requested key; missing keys are nil.
func (c *Client) MGet(keys ...[]byte) ([][]byte, error) {
	resp, err := c.roundTripIdem(&proto.Request{Cmd: proto.CmdMGet, Value: proto.EncodeList(keys)})
	if err != nil {
		return nil, err
	}
	vals, err := proto.DecodeList(resp.Value)
	if err != nil {
		return nil, err
	}
	if len(vals) != len(keys) {
		return nil, proto.ErrBadMessage
	}
	return vals, nil
}

// Stats fetches the server's "name=value" statistics lines.
func (c *Client) Stats() ([]string, error) {
	resp, err := c.roundTripIdem(&proto.Request{Cmd: proto.CmdStats})
	if err != nil {
		return nil, err
	}
	items, err := proto.DecodeList(resp.Value)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(items))
	for i, it := range items {
		out[i] = string(it)
	}
	return out, nil
}

// Health fetches the server's per-partition health lines
// ("partN=state scrub=i/total passes=k", optionally "journal=lost").
func (c *Client) Health() ([]string, error) {
	resp, err := c.roundTripIdem(&proto.Request{Cmd: proto.CmdHealth})
	if err != nil {
		return nil, err
	}
	items, err := proto.DecodeList(resp.Value)
	if err != nil {
		return nil, err
	}
	out := make([]string, len(items))
	for i, it := range items {
		out[i] = string(it)
	}
	return out, nil
}

// Ping checks liveness.
func (c *Client) Ping() error {
	_, err := c.roundTripIdem(&proto.Request{Cmd: proto.CmdPing})
	return err
}

// Replicate ships one replication payload (a run of sealed journal
// frames, see internal/repl) and returns the RAW response status plus
// the replica's acked watermark. Statuses are returned uninterpreted —
// the shipper's resync protocol distinguishes gap/fenced/error itself —
// and nothing is ever retried here. Transport failures wrap
// ErrConnection as usual.
func (c *Client) Replicate(payload []byte) (status uint8, watermark uint64, err error) {
	resp, err := c.exchange(&proto.Request{Cmd: proto.CmdReplicate, Value: payload})
	if err != nil {
		return 0, 0, err
	}
	return resp.Status, uint64(resp.Num), nil
}

// ReplAttach asks a node to (re)target its replication stream at addr —
// the control plane's re-protection call after a failover leaves a shard
// unprotected. The node bootstraps the new replica through its snapshot
// path; progress is observable via the repl_* stats lines. Not retried.
func (c *Client) ReplAttach(addr string) error {
	resp, err := c.exchange(&proto.Request{Cmd: proto.CmdReplAttach, Key: []byte(addr)})
	if err != nil {
		return err
	}
	if resp.Status != proto.StatusOK {
		return fmt.Errorf("%w: attach replica %s refused (status %d)", ErrServer, addr, resp.Status)
	}
	return nil
}

// Topology fetches a control-plane supervisor's cluster view: the
// topology version plus one line per shard (internal/ctl formats and
// parses the lines). Idempotent.
func (c *Client) Topology() (version uint64, lines []string, err error) {
	resp, err := c.roundTripIdem(&proto.Request{Cmd: proto.CmdTopology})
	if err != nil {
		return 0, nil, err
	}
	items, err := proto.DecodeList(resp.Value)
	if err != nil {
		return 0, nil, err
	}
	out := make([]string, len(items))
	for i, it := range items {
		out[i] = string(it)
	}
	return uint64(resp.Num), out, nil
}

// Promote asks a replica to adopt fencing epoch `epoch` and start
// accepting writes (the failover/cutover step). Returns the node's
// resulting epoch. Not retried: the caller (cluster failover) handles
// its own races via epoch comparison.
func (c *Client) Promote(epoch uint64) (uint64, error) {
	resp, err := c.exchange(&proto.Request{Cmd: proto.CmdPromote, Delta: int64(epoch)})
	if err != nil {
		return 0, err
	}
	if resp.Status != proto.StatusOK {
		return uint64(resp.Num), fmt.Errorf("%w: promote to epoch %d refused (epoch %d)", ErrServer, epoch, resp.Num)
	}
	return uint64(resp.Num), nil
}
