// Ring tests: determinism across routers, key balance, consistent-hash
// movement on shard addition, and — the property the two-level design
// depends on — decorrelation between the public ring hash and the
// enclaves' secret partition hash.
package cluster_test

import (
	"fmt"
	"testing"

	"shieldstore/internal/cluster"
	"shieldstore/internal/core"
	"shieldstore/internal/mem"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
	"shieldstore/internal/workload"
)

func testKeys(n int) [][]byte {
	keys := make([][]byte, n)
	for i := range keys {
		keys[i] = workload.FormatKey(uint64(i))
	}
	return keys
}

// TestRingDeterminism: every router with the same (shards, vnodes, seed)
// must agree on every key; a different seed must yield a different map.
func TestRingDeterminism(t *testing.T) {
	a := cluster.NewRing(5, 64, 7)
	b := cluster.NewRing(5, 64, 7)
	other := cluster.NewRing(5, 64, 8)
	moved := 0
	for _, k := range testKeys(2000) {
		if a.Shard(k) != b.Shard(k) {
			t.Fatalf("same-seed rings disagree on %q", k)
		}
		if a.Shard(k) != other.Shard(k) {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("changing the ring seed moved no keys at all")
	}
}

// TestRingBalance: with 64 vnodes per shard no shard's key share may
// stray far from 1/N.
func TestRingBalance(t *testing.T) {
	for _, shards := range []int{2, 4, 8} {
		r := cluster.NewRing(shards, cluster.DefaultVNodes, 42)
		counts := make([]int, shards)
		keys := testKeys(40000)
		for _, k := range keys {
			counts[r.Shard(k)]++
		}
		mean := float64(len(keys)) / float64(shards)
		for s, c := range counts {
			ratio := float64(c) / mean
			if ratio < 0.60 || ratio > 1.45 {
				t.Fatalf("shards=%d: shard %d holds %.2fx the mean (counts %v)",
					shards, s, ratio, counts)
			}
		}
		t.Logf("shards=%d counts=%v", shards, counts)
	}
}

// TestRingConsistency: adding shard N to an N-shard ring may only move
// keys TO the new shard (the defining consistent-hashing property), and
// only roughly a 1/(N+1) share of them.
func TestRingConsistency(t *testing.T) {
	before := cluster.NewRing(4, cluster.DefaultVNodes, 42)
	after := cluster.NewRing(5, cluster.DefaultVNodes, 42)
	keys := testKeys(20000)
	moved := 0
	for _, k := range keys {
		was, is := before.Shard(k), after.Shard(k)
		if was == is {
			continue
		}
		if is != 4 {
			t.Fatalf("key %q moved %d -> %d; adding a shard may only move keys to it", k, was, is)
		}
		moved++
	}
	frac := float64(moved) / float64(len(keys))
	if frac < 0.10 || frac > 0.35 {
		t.Fatalf("adding 1 of 5 shards moved %.1f%% of keys, want ~20%%", frac*100)
	}
	t.Logf("moved %.1f%% of keys to the new shard", frac*100)
}

// TestRingPartitionDecorrelation proves the two-level routing property
// the ring's independent hash key buys (satellite: routing-key
// decorrelation). Shard selection (public ring hash) and in-shard
// partition selection (the enclave's secret SipHash via
// Partitioned.Route) must be independent: the keys landing on one shard
// must still spread across ALL of that shard's partitions. The contrast
// case shows what correlated routing (shard = h mod S, partition =
// h mod P from the SAME hash) does when S == P: every key of shard 0
// collapses onto partition 0, idling the other P-1 worker threads.
func TestRingPartitionDecorrelation(t *testing.T) {
	const S, P = 4, 4
	space := mem.NewSpace(mem.Config{EPCBytes: 8 << 20})
	enclave := sgx.New(sgx.Config{Space: space, Seed: 99})
	p := core.NewPartitioned(enclave, P, core.Defaults(1<<10))
	m := sim.NewMeter(enclave.Model())
	ring := cluster.NewRing(S, cluster.DefaultVNodes, 0)

	ringCounts := make([]int, P)       // partitions of ring-routed shard-0 keys
	correlatedCounts := make([]int, P) // partitions of mod-routed "shard-0" keys
	for _, k := range testKeys(20000) {
		part := p.Route(m, k) // secret-keyed hash mod P
		if ring.Shard(k) == 0 {
			ringCounts[part]++
		}
		// Correlated scheme: shard from the same secret hash, mod S. With
		// S == P the shard index IS the partition index.
		if part%S == 0 {
			correlatedCounts[part]++
		}
	}

	total := 0
	for _, c := range ringCounts {
		total += c
	}
	mean := float64(total) / float64(P)
	for part, c := range ringCounts {
		ratio := float64(c) / mean
		if ratio < 0.7 || ratio > 1.3 {
			t.Fatalf("ring-routed shard-0 keys skewed on partition %d: %.2fx mean (counts %v)",
				part, ratio, ringCounts)
		}
	}

	used := 0
	for _, c := range correlatedCounts {
		if c > 0 {
			used++
		}
	}
	if used != 1 {
		t.Fatalf("correlated routing should collapse shard-0 keys onto exactly 1 partition, used %d (%v)",
			used, correlatedCounts)
	}
	t.Logf("ring-routed shard-0 keys across partitions: %v; correlated: %v",
		ringCounts, correlatedCounts)
}

// TestRingSingleShard: the 1-shard fast path still owns every key.
func TestRingSingleShard(t *testing.T) {
	r := cluster.NewRing(1, cluster.DefaultVNodes, 3)
	for _, k := range testKeys(100) {
		if got := r.Shard(k); got != 0 {
			t.Fatalf("1-shard ring routed %q to %d", k, got)
		}
	}
	if r.Shards() != 1 || r.VNodes() != cluster.DefaultVNodes {
		t.Fatalf("accessors: %d shards, %d vnodes", r.Shards(), r.VNodes())
	}
}

func ExampleRing() {
	r := cluster.NewRing(4, 64, 0)
	fmt.Println(r.Shards())
	// Output: 4
}
