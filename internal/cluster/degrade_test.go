// Cluster degradation under partial failure (run under -race): the host
// corrupts one partition of one shard; that shard's scrubber detects it,
// quarantines the partition and rebuilds it from snapshot+journal state.
// While the rebuild window is held open the cluster client must keep
// every other shard (and the victim shard's sibling partitions) serving,
// and its scatter-gather retry must re-issue ONLY the rebuilding ops —
// to the affected shard alone. Afterwards the full dataset reads back
// intact through the cluster.
package cluster_test

import (
	"bytes"
	"errors"
	"fmt"
	"testing"
	"time"

	"shieldstore/internal/client"
	"shieldstore/internal/cluster"
	"shieldstore/internal/core"
	"shieldstore/internal/fault"
	"shieldstore/internal/sim"
)

func TestClusterDegradedShardScatterGather(t *testing.T) {
	type swap struct{ shard, part int }
	entered := make(chan swap, 1)
	release := make(chan struct{})
	retryPol := client.RetryPolicy{
		MaxAttempts: 500, Backoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond,
	}
	h, err := cluster.StartHarness(cluster.HarnessConfig{
		Shards: 3, Partitions: 2, Buckets: 1 << 10,
		Secure: true, Seed: 11, Conns: 3,
		SelfHeal: true, Dir: t.TempDir(),
		Retry:        retryPol, // per-connection: single-key ops ride out rebuilds
		ClusterRetry: retryPol, // scatter-gather: re-issue rebuilding ops only
		BeforeSwap: func(shard, part int) {
			select {
			case entered <- swap{shard, part}:
				<-release
			default:
			}
		},
		Logf: t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	released := false
	defer func() {
		if !released {
			close(release) // never park the healer past the test
		}
	}()

	cc, err := cluster.Dial(h.Options())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cc.Close() })

	// Preload through the scatter-gather path.
	const n = 240
	keys := make([][]byte, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("dk%03d", i))
		vals[i] = []byte(fmt.Sprintf("dv%03d", i))
	}
	for at := 0; at < n; at += 48 {
		if err := cc.MSet(keys[at:at+48], vals[at:at+48]); err != nil {
			t.Fatalf("preload MSet: %v", err)
		}
	}

	// Pick the victim: the (shard, partition) owning keys[0]; classify
	// every key as victim-partition, sibling-partition (same shard), or
	// other-shard.
	vs := cc.ShardFor(keys[0])
	route := sim.NewMeter(h.Shard(vs).Enclave.Model())
	vp := h.Shard(vs).Pool.Route(route, keys[0])
	var victimIdx, healthyIdx []int
	var siblingKey, otherShardKey []byte
	for i, k := range keys {
		if cc.ShardFor(k) == vs {
			if h.Shard(vs).Pool.Route(route, k) == vp {
				victimIdx = append(victimIdx, i)
				continue
			}
			siblingKey = k
		} else {
			otherShardKey = k
		}
		healthyIdx = append(healthyIdx, i)
	}
	if len(victimIdx) < 2 || siblingKey == nil || otherShardKey == nil {
		t.Fatalf("dataset spread too thin: %d victim keys", len(victimIdx))
	}

	// A raw, non-retrying connection to the victim shard observes the
	// honest status codes.
	rawOpts := h.ClientOptions(vs)
	rawOpts.Retry = client.RetryPolicy{}
	raw, err := client.Dial(h.Addrs()[vs], rawOpts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { raw.Close() })

	// The host corrupts the victim partition. No client op touches that
	// partition from here until the scrubber has quarantined it.
	plane := fault.New(33)
	plane.Arm(fault.PointEntryFlip, fault.Spec{Count: -1})
	h.Shard(vs).Pool.RunCtl(vp, func(st *core.WorkerState) { st.Store.SetFaultPlane(plane) })

	var got swap
	select {
	case got = <-entered:
	case <-time.After(10 * time.Second):
		t.Fatal("scrubber never triggered a rebuild")
	}
	if got.shard != vs || got.part != vp {
		t.Fatalf("rebuild hit shard %d part %d, armed shard %d part %d",
			got.shard, got.part, vs, vp)
	}

	// Authoritatively mid-rebuild. Raw probes see the truth:
	if _, err := raw.Get(keys[victimIdx[0]]); !errors.Is(err, client.ErrRebuilding) {
		t.Fatalf("raw Get on rebuilding partition: %v, want ErrRebuilding", err)
	}
	if v, err := raw.Get(siblingKey); err != nil || !bytes.Equal(v, value(keys, vals, siblingKey)) {
		t.Fatalf("sibling partition Get during rebuild: %q, %v", v, err)
	}
	if lines, err := cc.Health(); err != nil {
		t.Fatalf("cluster health: %v", err)
	} else if want := fmt.Sprintf("shard%d/part%d=rebuilding", vs, vp); !hasPrefixed(lines, want) {
		t.Fatalf("cluster health missing %q: %v", want, lines)
	}

	// Fire a scatter-gather over the FULL dataset. The ops on the
	// rebuilding partition park in the cluster retry loop; everything
	// else must come back immediately.
	allDone := make(chan []client.Result, 1)
	go func() {
		ops := make([]client.Op, n)
		for i, k := range keys {
			ops[i] = client.GetOp(k)
		}
		allDone <- cc.Batch(ops...)
	}()

	// While that batch is parked: a healthy-keys-only batch completes,
	// proving the other shards and the sibling partition still serve —
	// and that the parked batch is not holding them hostage.
	hOps := make([]client.Op, len(healthyIdx))
	for j, i := range healthyIdx {
		hOps[j] = client.GetOp(keys[i])
	}
	for j, r := range cc.Batch(hOps...) {
		if r.Err != nil || !bytes.Equal(r.Value, vals[healthyIdx[j]]) {
			t.Fatalf("healthy batch op %d during degradation: %q, %v", j, r.Value, r.Err)
		}
	}
	// Single-key ops to healthy shards also sail through.
	if v, err := cc.Get(otherShardKey); err != nil || !bytes.Equal(v, value(keys, vals, otherShardKey)) {
		t.Fatalf("other-shard Get during degradation: %q, %v", v, err)
	}
	// The rebuild window is still held: nothing above waited on it.
	if r := h.Shard(vs).Healer.Rebuilds(); r != 0 {
		t.Fatalf("rebuild completed early (%d), degraded-mode probes proved nothing", r)
	}

	released = true
	close(release)

	rs := <-allDone
	for i, r := range rs {
		if r.Err != nil || !bytes.Equal(r.Value, vals[i]) {
			t.Fatalf("full batch op %d after retry: %q, %v", i, r.Value, r.Err)
		}
	}

	waitUntil(t, 10*time.Second, "partition re-admission", func() bool {
		return h.Shard(vs).Healer.Rebuilds() == 1 &&
			len(h.Shard(vs).Pool.QuarantinedParts()) == 0
	})

	// Full dataset intact through the cluster, and the healed partition
	// accepts writes again.
	got2, err := cc.MGet(keys...)
	if err != nil {
		t.Fatalf("post-heal MGet: %v", err)
	}
	for i := range got2 {
		if !bytes.Equal(got2[i], vals[i]) {
			t.Fatalf("post-heal MGet[%d] = %q, want %q", i, got2[i], vals[i])
		}
	}
	if err := cc.Set(keys[victimIdx[0]], []byte("post-heal")); err != nil {
		t.Fatalf("write to healed partition: %v", err)
	}

	// The detection really came from the victim shard's scrubber.
	var scrubbed uint64
	h.Shard(vs).Pool.RunCtl(vp, func(st *core.WorkerState) {
		scrubbed = st.Meter.Events(sim.CtrScrub)
	})
	if scrubbed == 0 {
		t.Fatal("detection did not come from the scrubber (CtrScrub = 0)")
	}
}

func value(keys, vals [][]byte, k []byte) []byte {
	for i := range keys {
		if bytes.Equal(keys[i], k) {
			return vals[i]
		}
	}
	return nil
}

func waitUntil(t *testing.T, d time.Duration, what string, f func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if f() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}
