// Supervisor integration (DESIGN.md §17): when Options.Supervisor names
// a ctl.Supervisor topology endpoint, the cluster client stops deciding
// failovers itself. On a failover-class error it asks the supervisor for
// the current topology and repoints the shard's slot at whatever the
// supervisor published — the supervisor owns the fencing epoch and the
// promote decision, so every client converges on the same active node
// instead of racing their own promotions. The client-side one-shot
// failover (failover.go) remains strictly as a fallback for when the
// supervisor is unreachable: degraded-mode availability beats waiting
// forever for a dead control plane.
package cluster

import (
	"time"

	"shieldstore/internal/client"
	"shieldstore/internal/ctl"
)

// supResult classifies one supervisor-mediated recovery attempt.
type supResult int

const (
	// supApplied: the topology repointed this shard's slot — retry.
	supApplied supResult = iota
	// supUnreachable: the supervisor cannot be reached — the client is on
	// its own; fall back to client-side failover.
	supUnreachable
	// supNoChange: the supervisor answered but published no new view for
	// this shard within FailoverWait — surface the original error rather
	// than promote behind the supervisor's back.
	supNoChange
)

// recover is the data path's failover entry point: supervisor-mediated
// when configured, client-decided otherwise. Returns true when the
// caller should retry against the slot's (possibly new) active pool.
func (c *Client) recover(shard int) bool {
	if c.opts.Supervisor == "" {
		return c.failover(shard)
	}
	switch c.superFailover(shard) {
	case supApplied:
		return true
	case supUnreachable:
		return c.failover(shard)
	default:
		return false
	}
}

// superFailover polls the supervisor's topology until it repoints this
// shard away from the node the client just failed against, the wait
// budget runs out, or the supervisor proves unreachable.
func (c *Client) superFailover(shard int) supResult {
	sl := c.slots[shard]
	sl.mu.Lock()
	startAddr, startEpoch := sl.primaryAddr, sl.epoch
	sl.mu.Unlock()
	deadline := time.Now().Add(c.opts.FailoverWait)
	for {
		topo, err := c.fetchTopology()
		if err != nil {
			return supUnreachable
		}
		if ts := topo.Shard(shard); ts != nil && c.applyTopo(shard, ts) {
			return supApplied
		}
		// A concurrent caller may have applied a newer view meanwhile —
		// that counts as recovery for us too.
		sl.mu.Lock()
		moved := sl.primaryAddr != startAddr || sl.epoch > startEpoch
		sl.mu.Unlock()
		if moved {
			return supApplied
		}
		if time.Now().After(deadline) {
			return supNoChange
		}
		time.Sleep(c.opts.TopologyPoll)
	}
}

// applyTopo folds one published shard view into the slot. Returns true
// when the slot's active pool changed (the caller should retry). An
// entry that still names the node we hold only refreshes the epoch —
// the supervisor has not (yet) moved the shard.
func (c *Client) applyTopo(shard int, ts *ctl.ShardTopo) bool {
	sl := c.slots[shard]
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if ts.Primary == sl.primaryAddr {
		if ts.Epoch > sl.epoch {
			sl.epoch = ts.Epoch
		}
		c.refreshStandbyLocked(sl, ts)
		return false
	}
	var np *pool
	if sl.replica != nil && ts.Primary == sl.replicaAddr {
		// The supervisor promoted the standby we already hold connections
		// to: swap it in without redialing.
		np = sl.replica
		sl.replica = nil
		sl.replicaAddr = ""
	} else {
		// A node we have never met (a re-protection spare that got
		// promoted). Same-shard nodes share an attestation identity, so
		// the pair's replica options (or the primary's, for unreplicated
		// specs) verify it.
		copts := sl.spec.Client
		if sl.spec.ReplicaAddr != "" {
			copts = sl.spec.ReplicaClient
		}
		p, err := newPool(ShardSpec{Addr: ts.Primary, Client: copts}, c.opts.Conns)
		if err != nil {
			return false // unreachable view; keep what we have
		}
		np = p
	}
	sl.retired = append(sl.retired, sl.primary)
	sl.primary = np
	sl.primaryAddr = ts.Primary
	if ts.Epoch > sl.epoch {
		sl.epoch = ts.Epoch
	}
	// The slot's client-side one-shot is spent until a protected standby
	// re-arms it below.
	sl.demoted = true
	c.refreshStandbyLocked(sl, ts)
	return true
}

// refreshStandbyLocked installs the published standby as the slot's
// fallback target — but only when the supervisor says the shard is
// protected: the client-side fallback must never promote an unsynced
// spare (its watermark is behind the acked writes). Installing a fresh
// standby re-arms the slot's one-shot client-side failover.
func (c *Client) refreshStandbyLocked(sl *shardSlot, ts *ctl.ShardTopo) {
	if ts.Replica == "" || !ts.Protected || ts.Replica == sl.replicaAddr {
		return
	}
	copts := sl.spec.Client
	if sl.spec.ReplicaAddr != "" {
		copts = sl.spec.ReplicaClient
	}
	rp, err := newPool(ShardSpec{Addr: ts.Replica, Client: copts}, c.opts.Conns)
	if err != nil {
		return
	}
	if sl.replica != nil {
		sl.retired = append(sl.retired, sl.replica)
	}
	sl.replica = rp
	sl.replicaAddr = ts.Replica
	sl.demoted = false
}

// Resync fetches the supervisor's current topology and folds every
// shard's entry into the client's slots — the proactive variant of the
// on-error recovery path, for clients that want to converge on the
// published view without waiting to trip over a dead node.
func (c *Client) Resync() error {
	topo, err := c.fetchTopology()
	if err != nil {
		return err
	}
	for s := range c.slots {
		if ts := topo.Shard(s); ts != nil {
			c.applyTopo(s, ts)
		}
	}
	return nil
}

// Topology fetches the supervisor's current cluster view (requires
// Options.Supervisor).
func (c *Client) Topology() (*ctl.Topology, error) {
	return c.fetchTopology()
}

// fetchTopology runs one CmdTopology round trip on the cached supervisor
// connection, redialing once on failure.
func (c *Client) fetchTopology() (*ctl.Topology, error) {
	c.supMu.Lock()
	defer c.supMu.Unlock()
	var lastErr error
	for attempt := 0; attempt < 2; attempt++ {
		if c.supConn == nil {
			conn, err := client.Dial(c.opts.Supervisor, c.supervisorOptions())
			if err != nil {
				return nil, err
			}
			c.supConn = conn
		}
		ver, lines, err := c.supConn.Topology()
		if err == nil {
			return ctl.ParseTopology(ver, lines)
		}
		lastErr = err
		c.supConn.Close()
		c.supConn = nil
	}
	return nil, lastErr
}

// supervisorOptions derives the supervisor dial options: plaintext
// unless configured otherwise (the topology holds no secrets), always
// deadline-bounded — a hung supervisor must cost a bounded wait, then
// the client falls back to deciding for itself.
func (c *Client) supervisorOptions() client.Options {
	copts := c.opts.SupervisorClient
	if copts.Timeout <= 0 {
		copts.Timeout = 250 * time.Millisecond
	}
	return copts
}
