// Cluster client tests: single-key routing, scatter-gather reassembly
// and per-op isolation, cluster-wide stats/health, dial fail-fast, and a
// concurrent stress run (the CI smoke job runs this under -race).
package cluster_test

import (
	"bytes"
	"errors"
	"fmt"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"shieldstore/internal/client"
	"shieldstore/internal/cluster"
)

// leakCheck snapshots the goroutine count and, at cleanup time — after
// the harness and client registered below have closed — polls until the
// count returns to baseline. Failover and kill/restart tests churn
// through shippers, appliers, healers and pools; a teardown that forgets
// one (the Applier.Close class of bug) fails here with full stacks
// instead of leaking silently across the suite.
func leakCheck(t *testing.T) {
	t.Helper()
	base := runtime.NumGoroutine()
	t.Cleanup(func() {
		deadline := time.Now().Add(10 * time.Second)
		var n int
		for time.Now().Before(deadline) {
			n = runtime.NumGoroutine()
			if n <= base+2 {
				return
			}
			time.Sleep(20 * time.Millisecond)
		}
		buf := make([]byte, 1<<20)
		buf = buf[:runtime.Stack(buf, true)]
		t.Errorf("goroutine leak after teardown: %d running, baseline %d\n%s", n, base, buf)
	})
}

// startCluster boots a secure in-process harness plus a cluster client.
func startCluster(t *testing.T, cfg cluster.HarnessConfig) (*cluster.Harness, *cluster.Client) {
	t.Helper()
	leakCheck(t)
	if cfg.Buckets == 0 {
		cfg.Buckets = 1 << 10
	}
	if cfg.Partitions == 0 {
		cfg.Partitions = 2
	}
	cfg.Secure = true
	cfg.Logf = t.Logf
	h, err := cluster.StartHarness(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(h.Close)
	c, err := cluster.Dial(h.Options())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return h, c
}

func TestClusterBasicOps(t *testing.T) {
	_, c := startCluster(t, cluster.HarnessConfig{Shards: 4, Seed: 5})

	shardsUsed := map[int]bool{}
	for i := 0; i < 64; i++ {
		k := []byte(fmt.Sprintf("bk%03d", i))
		v := []byte(fmt.Sprintf("bv%03d", i))
		if err := c.Set(k, v); err != nil {
			t.Fatalf("Set %s: %v", k, err)
		}
		shardsUsed[c.ShardFor(k)] = true
	}
	if len(shardsUsed) < 2 {
		t.Fatalf("64 keys used %d of 4 shards", len(shardsUsed))
	}
	for i := 0; i < 64; i++ {
		k := []byte(fmt.Sprintf("bk%03d", i))
		v, err := c.Get(k)
		if err != nil || !bytes.Equal(v, []byte(fmt.Sprintf("bv%03d", i))) {
			t.Fatalf("Get %s = %q, %v", k, v, err)
		}
	}
	if _, err := c.Get([]byte("absent")); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("Get absent: %v, want ErrNotFound", err)
	}
	if err := c.Append([]byte("bk000"), []byte("+tail")); err != nil {
		t.Fatalf("Append: %v", err)
	}
	if v, _ := c.Get([]byte("bk000")); string(v) != "bv000+tail" {
		t.Fatalf("after Append: %q", v)
	}
	if err := c.Set([]byte("ctr"), []byte("10")); err != nil {
		t.Fatal(err)
	}
	if n, err := c.Incr([]byte("ctr"), 5); err != nil || n != 15 {
		t.Fatalf("Incr = %d, %v", n, err)
	}
	if err := c.Delete([]byte("bk001")); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := c.Get([]byte("bk001")); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("Get deleted: %v", err)
	}
}

func TestClusterScatterGather(t *testing.T) {
	_, c := startCluster(t, cluster.HarnessConfig{Shards: 4, Seed: 6})

	const n = 200
	keys := make([][]byte, n)
	vals := make([][]byte, n)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("sg%04d", i))
		vals[i] = []byte(fmt.Sprintf("sv%04d", i))
	}
	// One MSet spanning every shard.
	if err := c.MSet(keys, vals); err != nil {
		t.Fatalf("MSet: %v", err)
	}
	// One MGet spanning every shard: submission order must survive the
	// per-shard fan-out and reassembly.
	got, err := c.MGet(keys...)
	if err != nil {
		t.Fatalf("MGet: %v", err)
	}
	for i := range got {
		if !bytes.Equal(got[i], vals[i]) {
			t.Fatalf("MGet[%d] = %q, want %q", i, got[i], vals[i])
		}
	}
	// Missing keys come back nil, present ones non-nil.
	got, err = c.MGet([]byte("sg0000"), []byte("nope"), []byte("sg0001"))
	if err != nil {
		t.Fatalf("MGet with miss: %v", err)
	}
	if got[0] == nil || got[1] != nil || got[2] == nil {
		t.Fatalf("MGet miss handling: %q", got)
	}

	// Mixed batch with per-op isolation: the miss taints only its slot.
	rs := c.Batch(
		client.GetOp([]byte("sg0002")),
		client.GetOp([]byte("missing-key")),
		client.SetOp([]byte("sg-new"), []byte("fresh")),
		client.IncrOp([]byte("sg-ctr"), 3),
	)
	if rs[0].Err != nil || string(rs[0].Value) != "sv0002" {
		t.Fatalf("batch get: %q, %v", rs[0].Value, rs[0].Err)
	}
	if !errors.Is(rs[1].Err, client.ErrNotFound) {
		t.Fatalf("batch miss: %v", rs[1].Err)
	}
	if rs[2].Err != nil || rs[3].Err != nil || rs[3].Num != 3 {
		t.Fatalf("batch set/incr: %v, %v, %d", rs[2].Err, rs[3].Err, rs[3].Num)
	}
	if len(c.Batch()) != 0 {
		t.Fatal("empty batch should return an empty result set")
	}
}

func TestClusterStatsHealthPing(t *testing.T) {
	_, c := startCluster(t, cluster.HarnessConfig{Shards: 3, Seed: 7})
	if err := c.Ping(); err != nil {
		t.Fatalf("Ping: %v", err)
	}
	stats, err := c.Stats()
	if err != nil {
		t.Fatalf("Stats: %v", err)
	}
	health, err := c.Health()
	if err != nil {
		t.Fatalf("Health: %v", err)
	}
	for s := 0; s < 3; s++ {
		prefix := fmt.Sprintf("shard%d/", s)
		if !hasPrefixed(stats, prefix) {
			t.Fatalf("stats missing %s lines: %v", prefix, stats)
		}
		if !hasPrefixed(health, prefix+"part0=healthy") {
			t.Fatalf("health missing %spart0=healthy: %v", prefix, health)
		}
	}
	if c.Shards() != 3 {
		t.Fatalf("Shards() = %d", c.Shards())
	}
}

func hasPrefixed(lines []string, prefix string) bool {
	for _, l := range lines {
		if strings.HasPrefix(l, prefix) {
			return true
		}
	}
	return false
}

// TestClusterDialFailFast: a cluster with an unreachable shard must fail
// Dial rather than silently misroute that shard's key range.
func TestClusterDialFailFast(t *testing.T) {
	h, _ := startCluster(t, cluster.HarnessConfig{Shards: 3, Seed: 8})
	h.Shard(1).Server.Close()
	if _, err := cluster.Dial(h.Options()); err == nil {
		t.Fatal("Dial succeeded with shard 1 down")
	} else if !strings.Contains(err.Error(), "shard 1") {
		t.Fatalf("error should name the dead shard: %v", err)
	}
}

// TestClusterStress is the CI smoke job's workhorse: concurrent workers
// mixing scatter-gather batches and single-key ops across a 4-shard
// secure cluster, then a full readback. Run it with -race.
func TestClusterStress(t *testing.T) {
	_, c := startCluster(t, cluster.HarnessConfig{
		Shards: 4, Seed: 9, Conns: 4, Partitions: 2,
	})
	const workers = 8
	const rounds = 30
	var wg sync.WaitGroup
	errCh := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				var ops []client.Op
				for i := 0; i < 16; i++ {
					k := []byte(fmt.Sprintf("st-%d-%03d", w, (r*16+i)%64))
					ops = append(ops, client.SetOp(k, []byte(fmt.Sprintf("val-%d", w))),
						client.GetOp(k))
				}
				for i, res := range c.Batch(ops...) {
					if res.Err != nil {
						errCh <- fmt.Errorf("worker %d round %d op %d: %w", w, r, i, res.Err)
						return
					}
				}
				k := []byte(fmt.Sprintf("st-single-%d", w))
				if err := c.Set(k, []byte("x")); err != nil {
					errCh <- err
					return
				}
				if _, err := c.Get(k); err != nil {
					errCh <- err
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	// Readback: the last writer of each key wrote its own id; the value
	// must be one of the workers' (no torn or cross-keyed values).
	for w := 0; w < workers; w++ {
		for i := 0; i < 64; i++ {
			k := []byte(fmt.Sprintf("st-%d-%03d", w, i))
			v, err := c.Get(k)
			if err != nil || string(v) != fmt.Sprintf("val-%d", w) {
				t.Fatalf("readback %s = %q, %v", k, v, err)
			}
		}
	}
}
