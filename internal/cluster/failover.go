// Automatic primary/replica failover (DESIGN.md §15). Every ring
// position is a slot holding the shard's active pool (the primary), its
// standby pool (the replica, when the deployment runs pairs), and the
// slot's fencing epoch. An operation that fails with a failover-class
// error — connection loss, integrity quarantine, an unhealable
// partition, a fenced node, or sustained rebuilding — promotes the
// replica (CmdPromote with epoch+1, sealed replica-side before it acks),
// swaps it in as the active pool, and retries exactly once. The epoch
// bump is the fence: a dead primary that comes back keeps shipping at
// the old epoch, gets StatusFenced from its own former replica, and
// stops accepting writes.
package cluster

import (
	"errors"
	"sync"

	"shieldstore/internal/client"
)

// shardSlot is one ring position's connection state.
type shardSlot struct {
	mu          sync.Mutex
	primary     *pool // active pool (all traffic)
	replica     *pool // standby pool (nil without a replica)
	primaryAddr string
	replicaAddr string
	spec        ShardSpec // boot-time spec (dial options for new nodes)
	epoch       uint64
	demoted     bool    // a failover already promoted the replica
	retired     []*pool // swapped-out pools, closed at Client.Close
}

// active returns the slot's current traffic target.
func (sl *shardSlot) active() *pool {
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.primary
}

// slot returns shard's slot.
func (c *Client) slot(shard int) *shardSlot { return c.slots[shard] }

// Epoch reports a shard slot's current fencing epoch (1 until the first
// failover or cutover).
func (c *Client) Epoch(shard int) uint64 {
	sl := c.slots[shard]
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.epoch
}

// Demoted reports whether shard's original primary has been failed away
// from.
func (c *Client) Demoted(shard int) bool {
	sl := c.slots[shard]
	sl.mu.Lock()
	defer sl.mu.Unlock()
	return sl.demoted
}

// failoverClass reports whether err justifies abandoning the shard's
// active node for its replica: the node is unreachable, has detected
// tampering it cannot heal, has been fenced, or has been stuck
// rebuilding past the retry budget. ErrRebuilding only reaches this
// classifier after the connection-level (single ops) or cluster-level
// (batches) retry policy is exhausted — transient heals never fail over.
func failoverClass(err error) bool {
	return errors.Is(err, client.ErrConnection) ||
		errors.Is(err, client.ErrIntegrity) ||
		errors.Is(err, client.ErrUnhealable) ||
		errors.Is(err, client.ErrFenced) ||
		errors.Is(err, client.ErrRebuilding)
}

// failover promotes shard's replica and makes it the active pool.
// Returns true when the caller should retry its operation: either this
// call performed the promotion, or a concurrent one already had (the
// slot is serialized on its mutex, so exactly one goroutine promotes; the
// rest observe demoted and just retry against the new active pool).
func (c *Client) failover(shard int) bool {
	sl := c.slots[shard]
	sl.mu.Lock()
	defer sl.mu.Unlock()
	if sl.demoted {
		return true // already failed over; retry on the new active
	}
	if sl.replica == nil {
		return false
	}
	conn, err := sl.replica.get()
	if err != nil {
		return false // replica unreachable too: surface the original error
	}
	newEpoch := sl.epoch + 1
	ep, perr := conn.Promote(newEpoch)
	sl.replica.put(conn, perr)
	if perr != nil || ep != newEpoch {
		return false
	}
	sl.retired = append(sl.retired, sl.primary)
	sl.primary = sl.replica
	sl.primaryAddr = sl.replicaAddr
	sl.replica = nil
	sl.replicaAddr = ""
	sl.epoch = newEpoch
	sl.demoted = true
	return true
}

// Cutover atomically repoints shard's ring position at a replacement
// node — the final step of a live migration, after the shard's shipper
// was retargeted (repl.Shipper.MigrateTo) and reports Synced. The
// replacement is dialed, promoted past the slot's epoch (fencing the old
// primary out), and swapped in; the old pools are retired. spec may name
// a fresh replica pair for the new primary.
func (c *Client) Cutover(shard int, spec ShardSpec) error {
	if shard < 0 || shard >= len(c.slots) {
		return ErrNoShards
	}
	np, err := newPool(spec, c.opts.Conns)
	if err != nil {
		return err
	}
	var rp *pool
	if spec.ReplicaAddr != "" {
		rp, err = newPool(ShardSpec{Addr: spec.ReplicaAddr, Client: spec.ReplicaClient}, c.opts.Conns)
		if err != nil {
			np.close()
			return err
		}
	}
	sl := c.slots[shard]
	sl.mu.Lock()
	defer sl.mu.Unlock()
	conn, err := np.get()
	if err != nil {
		np.close()
		if rp != nil {
			rp.close()
		}
		return err
	}
	newEpoch := sl.epoch + 1
	ep, perr := conn.Promote(newEpoch)
	np.put(conn, perr)
	if perr != nil || ep != newEpoch {
		np.close()
		if rp != nil {
			rp.close()
		}
		if perr != nil {
			return perr
		}
		return errors.New("shieldstore cluster: cutover promote raced to a higher epoch")
	}
	sl.retired = append(sl.retired, sl.primary)
	if sl.replica != nil {
		sl.retired = append(sl.retired, sl.replica)
	}
	sl.primary = np
	sl.replica = rp
	sl.primaryAddr = spec.Addr
	sl.replicaAddr = spec.ReplicaAddr
	sl.spec = spec
	sl.epoch = newEpoch
	sl.demoted = false
	return nil
}

// try1 runs op once against shard's active pool.
func (c *Client) try1(shard int, op func(conn *client.Client) error) error {
	p := c.slot(shard).active()
	conn, err := p.get()
	if err != nil {
		return err
	}
	err = op(conn)
	p.put(conn, err)
	return err
}

// exec1 is the single-key data path: try the active node, recover on a
// failover-class error (supervisor-mediated when one is configured,
// client-side promotion otherwise), retry exactly once on the new
// active node.
func (c *Client) exec1(key []byte, op func(conn *client.Client) error) error {
	shard := c.ring.Shard(key)
	err := c.try1(shard, op)
	if err == nil || !failoverClass(err) {
		return err
	}
	if !c.recover(shard) {
		return err
	}
	return c.try1(shard, op)
}
