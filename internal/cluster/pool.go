// Per-shard connection pools. Each shard gets a fixed-size pool of
// single-connection clients (client.Client is not concurrency-safe);
// borrowing blocks until a connection is free, so the pool size is also
// the per-shard concurrency bound. A connection retired after a transport
// failure is replaced by a fresh dial on the next borrow, keeping the
// pool at its configured size without a background repair loop.
package cluster

import (
	"errors"

	"shieldstore/internal/client"
)

// pool is one shard's connection set. The free channel holds either live
// connections or nil placeholders; a placeholder is a license to dial a
// replacement, so the live-connection + placeholder count is invariant.
type pool struct {
	addr  string
	copts client.Options
	free  chan *client.Client
}

// newPool dials n connections eagerly so a dead shard fails Dial rather
// than the first operation.
func newPool(spec ShardSpec, n int) (*pool, error) {
	p := &pool{addr: spec.Addr, copts: spec.Client, free: make(chan *client.Client, n)}
	for i := 0; i < n; i++ {
		conn, err := client.Dial(spec.Addr, spec.Client)
		if err != nil {
			p.close()
			return nil, err
		}
		p.free <- conn
	}
	return p, nil
}

// get borrows a connection, dialing a replacement when it pulls a
// placeholder left by a retired one. A failed replacement dial returns
// the placeholder so the pool never shrinks.
func (p *pool) get() (*client.Client, error) {
	conn := <-p.free
	if conn != nil {
		return conn, nil
	}
	conn, err := client.Dial(p.addr, p.copts)
	if err != nil {
		p.free <- nil
		return nil, err
	}
	return conn, nil
}

// put returns a borrowed connection. err is the outcome of the last
// operation on it: a transport-class failure retires the connection (the
// channel/nonce state is unrecoverable unless the client's own retry
// already re-dialed it) and leaves a placeholder for get to replace.
func (p *pool) put(conn *client.Client, err error) {
	if err != nil && errors.Is(err, client.ErrConnection) {
		conn.Close()
		p.free <- nil
		return
	}
	p.free <- conn
}

// close drains the pool and closes every live connection. Concurrent
// borrowers must have finished.
func (p *pool) close() error {
	var first error
	for {
		select {
		case conn := <-p.free:
			if conn == nil {
				continue
			}
			if err := conn.Close(); err != nil && first == nil {
				first = err
			}
		default:
			return first
		}
	}
}
