// Per-shard connection pools. Each shard gets a fixed-size pool of
// single-connection clients (client.Client is not concurrency-safe);
// borrowing blocks until a connection is free, so the pool size is also
// the per-shard concurrency bound. A connection retired after a transport
// failure is replaced by a fresh dial on the next borrow, keeping the
// pool at its configured size without a background repair loop.
//
// Replacement dials are paced: while a shard is down, every borrow of a
// placeholder would otherwise eat a full TCP connect timeout. Instead the
// pool tracks a capped, jittered exponential backoff window — borrows
// inside the window fail fast with ErrConnection (which is exactly what
// lets the cluster layer fail over to the replica instead of stalling) —
// and recovery is probed half-open: one borrower dials, the rest fail
// fast until that probe settles.
package cluster

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"shieldstore/internal/client"
)

// Replacement-dial backoff bounds.
const (
	dialBackoffBase = 5 * time.Millisecond
	dialBackoffMax  = time.Second
)

// pool is one shard's connection set. The free channel holds either live
// connections or nil placeholders; a placeholder is a license to dial a
// replacement, so the live-connection + placeholder count is invariant.
type pool struct {
	addr  string
	copts client.Options
	free  chan *client.Client

	// Replacement-dial pacing (mu guards the backoff state only; the data
	// path touches nothing but the free channel).
	mu        sync.Mutex
	downUntil time.Time
	backoff   time.Duration
	probing   bool
	rng       *rand.Rand

	dials atomic.Uint64 // replacement dials attempted (tests, monitoring)
}

// newPool dials n connections eagerly so a dead shard fails Dial rather
// than the first operation.
func newPool(spec ShardSpec, n int) (*pool, error) {
	p := &pool{
		addr:  spec.Addr,
		copts: spec.Client,
		free:  make(chan *client.Client, n),
		rng:   rand.New(rand.NewSource(int64(len(spec.Addr)) + 1)),
	}
	for i := 0; i < n; i++ {
		conn, err := client.Dial(spec.Addr, spec.Client)
		if err != nil {
			p.close()
			return nil, err
		}
		p.free <- conn
	}
	return p, nil
}

// get borrows a connection, dialing a replacement when it pulls a
// placeholder left by a retired one. A failed replacement dial returns
// the placeholder so the pool never shrinks. Inside a backoff window —
// or while another borrower's half-open probe is in flight — the borrow
// fails fast instead of dialing.
func (p *pool) get() (*client.Client, error) {
	conn := <-p.free
	if conn != nil {
		return conn, nil
	}
	p.mu.Lock()
	if p.probing || time.Now().Before(p.downUntil) {
		p.mu.Unlock()
		p.free <- nil
		return nil, fmt.Errorf("%w: %s down, backing off", client.ErrConnection, p.addr)
	}
	p.probing = true
	p.mu.Unlock()

	p.dials.Add(1)
	conn, err := client.Dial(p.addr, p.copts)

	p.mu.Lock()
	p.probing = false
	if err != nil {
		if p.backoff == 0 {
			p.backoff = dialBackoffBase
		} else if p.backoff < dialBackoffMax {
			p.backoff *= 2
			if p.backoff > dialBackoffMax {
				p.backoff = dialBackoffMax
			}
		}
		// ±25% jitter so a fleet of routers doesn't re-dial in lockstep.
		jitter := time.Duration(float64(p.backoff) * 0.25 * (2*p.rng.Float64() - 1))
		p.downUntil = time.Now().Add(p.backoff + jitter)
		p.mu.Unlock()
		p.free <- nil
		return nil, err
	}
	p.backoff = 0
	p.downUntil = time.Time{}
	p.mu.Unlock()
	return conn, nil
}

// Dials reports how many replacement dials this pool has attempted —
// the backoff's effectiveness is the gap between borrows and dials.
func (p *pool) Dials() uint64 { return p.dials.Load() }

// put returns a borrowed connection. err is the outcome of the last
// operation on it: a transport-class failure retires the connection (the
// channel/nonce state is unrecoverable unless the client's own retry
// already re-dialed it) and leaves a placeholder for get to replace.
func (p *pool) put(conn *client.Client, err error) {
	if err != nil && errors.Is(err, client.ErrConnection) {
		conn.Close()
		p.free <- nil
		return
	}
	p.free <- conn
}

// close drains the pool and closes every live connection. Concurrent
// borrowers must have finished.
func (p *pool) close() error {
	var first error
	for {
		select {
		case conn := <-p.free:
			if conn == nil {
				continue
			}
			if err := conn.Close(); err != nil && first == nil {
				first = err
			}
		default:
			return first
		}
	}
}
