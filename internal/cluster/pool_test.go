// Connection-pool backoff: while a shard is down, borrows of a retired
// connection's placeholder must fail fast inside the backoff window
// instead of each eating a dial timeout, at most one half-open probe
// dials at a time, and the pool recovers on its own once the shard is
// back. Internal package: the test drives pool/get/put directly.
package cluster

import (
	"errors"
	"fmt"
	"net"
	"testing"
	"time"

	"shieldstore/internal/client"
)

// startPoolListener returns a bare TCP listener: client.Dial without
// Secure does no wire traffic at connect time, so accepting is optional.
func startPoolListener(t *testing.T) net.Listener {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	return ln
}

func TestPoolBackoffFailsFastWhileDown(t *testing.T) {
	ln := startPoolListener(t)
	addr := ln.Addr().String()
	p, err := newPool(ShardSpec{Addr: addr}, 2)
	if err != nil {
		t.Fatal(err)
	}
	defer p.close()

	// Retire both connections (transport-class failure) and take the shard
	// down: every borrow now pulls a placeholder.
	for i := 0; i < 2; i++ {
		conn, err := p.get()
		if err != nil {
			t.Fatalf("borrow %d: %v", i, err)
		}
		p.put(conn, fmt.Errorf("%w: injected", client.ErrConnection))
	}
	ln.Close()

	// Hammer the dead pool. The first borrow dials and arms the backoff;
	// the rest must fail fast inside the window — ErrConnection-classed so
	// the failover layer can demote — with dials far below borrows.
	const borrows = 50
	for i := 0; i < borrows; i++ {
		if _, err := p.get(); !errors.Is(err, client.ErrConnection) {
			t.Fatalf("borrow %d on dead shard: %v, want ErrConnection", i, err)
		}
	}
	if d := p.Dials(); d >= borrows/2 {
		t.Fatalf("pool dialed %d times for %d borrows; backoff not limiting dials", d, borrows)
	}

	// The shard comes back. After the (capped, jittered) window expires a
	// single half-open probe re-dials and the pool self-heals.
	ln2, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("relisten on %s: %v", addr, err)
	}
	defer ln2.Close()
	deadline := time.Now().Add(5 * time.Second)
	for {
		conn, err := p.get()
		if err == nil {
			p.put(conn, nil)
			break
		}
		if !errors.Is(err, client.ErrConnection) {
			t.Fatalf("recovery borrow: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("pool never recovered after the shard came back")
		}
		time.Sleep(5 * time.Millisecond)
	}
	// Recovery resets the backoff: the next placeholder borrow dials
	// immediately instead of waiting out a stale window.
	conn, err := p.get()
	if err != nil {
		t.Fatalf("post-recovery borrow: %v", err)
	}
	p.put(conn, fmt.Errorf("%w: injected again", client.ErrConnection))
	conn, err = p.get()
	if err != nil {
		t.Fatalf("replacement dial after reset backoff: %v", err)
	}
	p.put(conn, nil)
}
