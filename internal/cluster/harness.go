// The cluster harness: launches N in-process shieldstore shard servers —
// each its own simulated enclave, partitioned worker pool, optional
// self-healing plane, and pipelined TCP front-end — for tests,
// benchmarks, and the shieldstore-ycsb -selfhost-shards mode. A harness
// shard is exactly what one shieldstore-server process would run; only
// the process boundary is elided.
package cluster

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"shieldstore/internal/client"
	"shieldstore/internal/core"
	"shieldstore/internal/mem"
	"shieldstore/internal/persist"
	"shieldstore/internal/server"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
)

// HarnessConfig sizes an in-process cluster.
type HarnessConfig struct {
	// Shards is the shard (enclave process) count; default 4.
	Shards int
	// Partitions is the per-shard worker partition count; default 4.
	Partitions int
	// Buckets is the per-shard hash bucket count; default 1<<12.
	Buckets int
	// MACHashes is the per-shard MAC hash count; default Buckets/2.
	MACHashes int
	// CacheBytes is the per-shard in-enclave plaintext cache budget.
	CacheBytes int64
	// EPCBytes overrides each shard enclave's simulated EPC (0 = 32 MB).
	EPCBytes int64
	// Secure enables attestation + channel encryption per shard.
	Secure bool
	// Seed derives per-shard enclave key material (shard i uses Seed+i+1).
	Seed uint64
	// SelfHeal attaches a quarantine latch, background scrubber and
	// persist.Healer to every shard (requires Dir).
	SelfHeal bool
	// ScrubSets bounds the per-wakeup scrub increment (default 2).
	ScrubSets int
	// Dir roots the healers' snapshot+journal state (required by SelfHeal).
	Dir string
	// VNodes, Conns, RingSeed and the retry policies feed Options().
	VNodes   int
	Conns    int
	RingSeed uint64
	// Retry is the per-connection policy (single-key ops, reconnects).
	Retry client.RetryPolicy
	// ClusterRetry is the scatter-gather per-op rebuilding policy.
	ClusterRetry client.RetryPolicy
	// PipelineDepth bounds per-connection in-flight requests server-side.
	PipelineDepth int
	// BeforeSwap, when set, runs inside each shard healer's rebuild window
	// just before the rebuilt partition is swapped back in (tests use it to
	// hold a shard authoritatively mid-rebuild).
	BeforeSwap func(shard, part int)
	// Logf sinks server/healer logs (default: discard).
	Logf func(format string, args ...any)
}

func (c HarnessConfig) withDefaults() HarnessConfig {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Partitions <= 0 {
		c.Partitions = 4
	}
	if c.Buckets <= 0 {
		c.Buckets = 1 << 12
	}
	if c.MACHashes <= 0 {
		c.MACHashes = max(1, c.Buckets/2)
	}
	if c.EPCBytes <= 0 {
		c.EPCBytes = 32 << 20
	}
	if c.ScrubSets <= 0 {
		c.ScrubSets = 2
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// HarnessMeasurement is the enclave code identity harness shards report.
func HarnessMeasurement() [32]byte {
	var m [32]byte
	copy(m[:], "shieldstore-cluster-shard-v1")
	return m
}

// Shard is one running in-process shard server.
type Shard struct {
	Enclave *sgx.Enclave
	Pool    *core.Partitioned
	Healer  *persist.Healer // nil unless SelfHeal
	Server  *server.Server
	Addr    string
}

// Harness is a running in-process cluster.
type Harness struct {
	cfg    HarnessConfig
	shards []*Shard
}

// StartHarness builds and starts every shard. On error, shards already
// started are torn down.
func StartHarness(cfg HarnessConfig) (*Harness, error) {
	cfg = cfg.withDefaults()
	if cfg.SelfHeal && cfg.Dir == "" {
		return nil, fmt.Errorf("cluster harness: SelfHeal requires Dir")
	}
	h := &Harness{cfg: cfg}
	for i := 0; i < cfg.Shards; i++ {
		sh, err := h.startShard(i)
		if err != nil {
			h.Close()
			return nil, fmt.Errorf("cluster harness: shard %d: %w", i, err)
		}
		h.shards = append(h.shards, sh)
	}
	return h, nil
}

// startShard boots one shard: enclave, partitioned pool, healer, server.
func (h *Harness) startShard(i int) (*Shard, error) {
	cfg := h.cfg
	space := mem.NewSpace(mem.Config{EPCBytes: cfg.EPCBytes})
	enclave := sgx.New(sgx.Config{
		Space:       space,
		Seed:        cfg.Seed + uint64(i) + 1, // each shard is its own enclave identity
		Measurement: HarnessMeasurement(),
	})

	opts := core.Defaults(cfg.Buckets)
	opts.MACHashes = cfg.MACHashes
	opts.CacheBytes = cfg.CacheBytes
	opts.Quarantine = cfg.SelfHeal
	p := core.NewPartitioned(enclave, cfg.Partitions, opts)

	var healer *persist.Healer
	if cfg.SelfHeal {
		p.EnableScrub(cfg.ScrubSets)
		dir := filepath.Join(cfg.Dir, fmt.Sprintf("shard-%02d", i))
		if err := os.MkdirAll(dir, 0o700); err != nil {
			return nil, err
		}
		hopts := persist.HealerOptions{Logf: cfg.Logf}
		if cfg.BeforeSwap != nil {
			hopts.BeforeSwap = func(part int) { cfg.BeforeSwap(i, part) }
		}
		var err error
		healer, err = persist.NewHealer(p, dir, hopts)
		if err != nil {
			return nil, err
		}
	}
	p.Start()
	if healer != nil {
		healer.Start()
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		if healer != nil {
			healer.Close()
		}
		p.Stop()
		return nil, err
	}
	srv := server.Serve(ln, server.Config{
		Engine:        server.CoreEngine{P: p},
		Enclave:       enclave,
		HotCalls:      true,
		Secure:        cfg.Secure,
		Logf:          cfg.Logf,
		PipelineDepth: cfg.PipelineDepth,
		DrainTimeout:  time.Second,
		Stats: func() []string {
			st := p.AggregateStats()
			return []string{
				fmt.Sprintf("keys=%d", p.Keys()),
				fmt.Sprintf("virtual_seconds=%.6f", enclave.Model().Seconds(st.Cycles)),
				fmt.Sprintf("decryptions=%d", st.Events[sim.CtrDecrypt]),
			}
		},
		Health: func() []string { return core.FormatHealth(p.Health()) },
	})
	return &Shard{Enclave: enclave, Pool: p, Healer: healer, Server: srv, Addr: srv.Addr().String()}, nil
}

// Shard returns shard i.
func (h *Harness) Shard(i int) *Shard { return h.shards[i] }

// Shards returns the running shard count.
func (h *Harness) Shards() int { return len(h.shards) }

// Addrs returns every shard's listen address in shard order.
func (h *Harness) Addrs() []string {
	out := make([]string, len(h.shards))
	for i, s := range h.shards {
		out[i] = s.Addr
	}
	return out
}

// ClientOptions builds the per-shard connection options: when Secure,
// shard i's own enclave plays its attestation service (the simulation's
// stand-in for IAS, as in the single-node tests).
func (h *Harness) ClientOptions(i int) client.Options {
	copts := client.Options{Secure: h.cfg.Secure, Retry: h.cfg.Retry}
	if h.cfg.Secure {
		copts.Verifier = h.shards[i].Enclave
		copts.Measurement = HarnessMeasurement()
	}
	return copts
}

// Options assembles the cluster client configuration for this harness.
func (h *Harness) Options() Options {
	specs := make([]ShardSpec, len(h.shards))
	for i, s := range h.shards {
		specs[i] = ShardSpec{Addr: s.Addr, Client: h.ClientOptions(i)}
	}
	return Options{
		Shards:   specs,
		VNodes:   h.cfg.VNodes,
		Conns:    h.cfg.Conns,
		RingSeed: h.cfg.RingSeed,
		Retry:    h.cfg.ClusterRetry,
	}
}

// Close tears every shard down: front-end first, then healer, then the
// worker pool (the healer drives RunCtl against the live pool, so order
// matters).
func (h *Harness) Close() {
	for _, s := range h.shards {
		s.Server.Close()
		if s.Healer != nil {
			s.Healer.Close()
		}
		s.Pool.Stop()
	}
	h.shards = nil
}
