// The cluster harness: launches N in-process shieldstore shard servers —
// each its own simulated enclave, partitioned worker pool, optional
// self-healing plane, and pipelined TCP front-end — for tests,
// benchmarks, and the shieldstore-ycsb -selfhost-shards mode. A harness
// shard is exactly what one shieldstore-server process would run; only
// the process boundary is elided.
package cluster

import (
	"fmt"
	"net"
	"os"
	"path/filepath"
	"time"

	"shieldstore/internal/client"
	"shieldstore/internal/core"
	"shieldstore/internal/fault"
	"shieldstore/internal/mem"
	"shieldstore/internal/persist"
	"shieldstore/internal/repl"
	"shieldstore/internal/server"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
)

// HarnessConfig sizes an in-process cluster.
type HarnessConfig struct {
	// Shards is the shard (enclave process) count; default 4.
	Shards int
	// Partitions is the per-shard worker partition count; default 4.
	Partitions int
	// Buckets is the per-shard hash bucket count; default 1<<12.
	Buckets int
	// MACHashes is the per-shard MAC hash count; default Buckets/2.
	MACHashes int
	// CacheBytes is the per-shard in-enclave plaintext cache budget.
	CacheBytes int64
	// EPCBytes overrides each shard enclave's simulated EPC (0 = 32 MB).
	EPCBytes int64
	// Secure enables attestation + channel encryption per shard.
	Secure bool
	// Seed derives per-shard enclave key material (shard i uses Seed+i+1).
	Seed uint64
	// SelfHeal attaches a quarantine latch, background scrubber and
	// persist.Healer to every shard (requires Dir).
	SelfHeal bool
	// ScrubSets bounds the per-wakeup scrub increment (default 2).
	ScrubSets int
	// Dir roots the healers' snapshot+journal state (required by SelfHeal).
	Dir string
	// VNodes, Conns, RingSeed and the retry policies feed Options().
	VNodes   int
	Conns    int
	RingSeed uint64
	// Retry is the per-connection policy (single-key ops, reconnects).
	Retry client.RetryPolicy
	// ClusterRetry is the scatter-gather per-op rebuilding policy.
	ClusterRetry client.RetryPolicy
	// PipelineDepth bounds per-connection in-flight requests server-side.
	PipelineDepth int
	// Replicas stands every shard up as a primary/replica pair: the replica
	// runs the same engine under a repl.Applier (read-only until promoted),
	// and the primary's journals are teed through a repl.Shipper so every
	// acknowledged mutation is also acknowledged by the replica (DESIGN.md
	// §15). Options() then carries the replica endpoints so the cluster
	// client can fail over.
	Replicas bool
	// ReplFaults, when set, arms the flaky-replication-link injection
	// points (fault.PointReplDrop/Dup/Reorder) on every shard's shipper.
	ReplFaults *fault.Plane
	// BeforeSwap, when set, runs inside each shard healer's rebuild window
	// just before the rebuilt partition is swapped back in (tests use it to
	// hold a shard authoritatively mid-rebuild).
	BeforeSwap func(shard, part int)
	// Logf sinks server/healer logs (default: discard).
	Logf func(format string, args ...any)
}

func (c HarnessConfig) withDefaults() HarnessConfig {
	if c.Shards <= 0 {
		c.Shards = 4
	}
	if c.Partitions <= 0 {
		c.Partitions = 4
	}
	if c.Buckets <= 0 {
		c.Buckets = 1 << 12
	}
	if c.MACHashes <= 0 {
		c.MACHashes = max(1, c.Buckets/2)
	}
	if c.EPCBytes <= 0 {
		c.EPCBytes = 32 << 20
	}
	if c.ScrubSets <= 0 {
		c.ScrubSets = 2
	}
	if c.Logf == nil {
		c.Logf = func(string, ...any) {}
	}
	return c
}

// HarnessMeasurement is the enclave code identity harness shards report.
func HarnessMeasurement() [32]byte {
	var m [32]byte
	copy(m[:], "shieldstore-cluster-shard-v1")
	return m
}

// Shard is one running in-process shard server. In Replicas mode it is
// the primary of a pair: Shipper streams its journal to Replica, whose
// Applier replays it.
type Shard struct {
	Enclave *sgx.Enclave
	Pool    *core.Partitioned
	Healer  *persist.Healer // nil unless SelfHeal
	Server  *server.Server
	Addr    string
	Node    *repl.Node    // replication role manager (always set)
	Shipper *repl.Shipper // nil unless Replicas (primary role)
	Applier *repl.Applier // nil unless this node is replica-role
	Replica *Shard        // nil unless Replicas (the standby node)
	killed  bool          // torn down by Kill/KillPrimary; skip at Close
}

// close tears one node down in dependency order: front-end, healer,
// replication engines (the shipper drives RunCtl, the applier holds a
// chain key), then the worker pool.
func (s *Shard) close() {
	s.Server.Close()
	if s.Healer != nil {
		s.Healer.Close()
	}
	if s.Node != nil {
		s.Node.Close() // shipper (boot-time or attached later) then applier
	} else {
		if s.Shipper != nil {
			s.Shipper.Close()
		}
		if s.Applier != nil {
			s.Applier.Close()
		}
	}
	s.Pool.Stop()
}

// Harness is a running in-process cluster.
type Harness struct {
	cfg    HarnessConfig
	shards []*Shard
	spares []*Shard // StartSpare nodes (migration targets)
}

// StartHarness builds and starts every shard. On error, shards already
// started are torn down.
func StartHarness(cfg HarnessConfig) (*Harness, error) {
	cfg = cfg.withDefaults()
	if cfg.SelfHeal && cfg.Dir == "" {
		return nil, fmt.Errorf("cluster harness: SelfHeal requires Dir")
	}
	h := &Harness{cfg: cfg}
	for i := 0; i < cfg.Shards; i++ {
		sh, err := h.startShard(i)
		if err != nil {
			h.Close()
			return nil, fmt.Errorf("cluster harness: shard %d: %w", i, err)
		}
		h.shards = append(h.shards, sh)
	}
	return h, nil
}

// startShard boots one shard. In Replicas mode the replica node comes up
// first (the primary's shipper needs its address), then the primary.
func (h *Harness) startShard(i int) (*Shard, error) {
	if !h.cfg.Replicas {
		return h.startPrimary(i, nil)
	}
	rep, err := h.startReplica(i, "replica")
	if err != nil {
		return nil, err
	}
	sh, err := h.startPrimary(i, rep)
	if err != nil {
		rep.close()
		return nil, err
	}
	sh.Replica = rep
	return sh, nil
}

// newEnclave builds shard i's simulated enclave. Primary and replica of a
// pair share the Seed: sealing and CMAC keys must match or no shipped
// frame would unseal or chain-verify on the replica.
func (h *Harness) newEnclave(i int) *sgx.Enclave {
	space := mem.NewSpace(mem.Config{EPCBytes: h.cfg.EPCBytes})
	return sgx.New(sgx.Config{
		Space:       space,
		Seed:        h.cfg.Seed + uint64(i) + 1, // each shard pair is its own enclave identity
		Measurement: HarnessMeasurement(),
	})
}

// newPool builds shard i's partitioned engine.
func (h *Harness) newPool(enclave *sgx.Enclave) *core.Partitioned {
	opts := core.Defaults(h.cfg.Buckets)
	opts.MACHashes = h.cfg.MACHashes
	opts.CacheBytes = h.cfg.CacheBytes
	opts.Quarantine = h.cfg.SelfHeal
	return core.NewPartitioned(enclave, h.cfg.Partitions, opts)
}

// serverConfig is the shared front-end configuration for any harness node.
func (h *Harness) serverConfig(enclave *sgx.Enclave, p *core.Partitioned) server.Config {
	cfg := h.cfg
	return server.Config{
		Engine:        server.CoreEngine{P: p},
		Enclave:       enclave,
		HotCalls:      true,
		Secure:        cfg.Secure,
		Logf:          cfg.Logf,
		PipelineDepth: cfg.PipelineDepth,
		DrainTimeout:  time.Second,
		Stats: func() []string {
			st := p.AggregateStats()
			return []string{
				fmt.Sprintf("keys=%d", p.Keys()),
				fmt.Sprintf("virtual_seconds=%.6f", enclave.Model().Seconds(st.Cycles)),
				fmt.Sprintf("decryptions=%d", st.Events[sim.CtrDecrypt]),
			}
		},
		Health: func() []string { return core.FormatHealth(p.Health()) },
	}
}

// linkFor builds the CmdReplAttach dial hook for a node with this
// enclave identity: same-shard peers (replica, spares) share the
// enclave seed, so the node's own enclave verifies any peer's quote.
func (h *Harness) linkFor(enclave *sgx.Enclave) func(string) client.Options {
	return func(string) client.Options {
		copts := client.Options{Secure: h.cfg.Secure, Retry: h.cfg.Retry}
		if h.cfg.Secure {
			copts.Verifier = enclave
			copts.Measurement = HarnessMeasurement()
		}
		return copts
	}
}

// wireNode hangs a shard's replication role manager off its server
// config: writability, CmdReplAttach, and the repl_* stats lines.
func wireNode(scfg *server.Config, node *repl.Node) {
	scfg.Writable = node.Writable
	scfg.Attach = node.Attach
	base := scfg.Stats
	scfg.Stats = func() []string { return append(base(), node.StatsLines()...) }
}

// startReplica boots shard i's standby node: same enclave identity as the
// primary, a repl.Applier wired into the server's Replicate/Promote
// hooks, and Writable gated on promotion. No healer — a replica that
// loses state simply re-syncs from the primary's bootstrap stream.
func (h *Harness) startReplica(i int, suffix string) (*Shard, error) {
	cfg := h.cfg
	enclave := h.newEnclave(i)
	p := h.newPool(enclave)
	aopts := repl.ApplierOptions{Logf: cfg.Logf}
	if cfg.Dir != "" {
		dir := filepath.Join(cfg.Dir, fmt.Sprintf("shard-%02d-%s", i, suffix))
		if err := os.MkdirAll(dir, 0o700); err != nil {
			return nil, err
		}
		aopts.Dir = dir
	}
	applier, err := repl.NewApplier(p, aopts)
	if err != nil {
		return nil, err
	}
	p.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		p.Stop()
		return nil, err
	}
	node := repl.NewNode(p, nil, applier, repl.NodeOptions{
		Link:   h.linkFor(enclave),
		Faults: cfg.ReplFaults,
		Logf:   cfg.Logf,
	})
	scfg := h.serverConfig(enclave, p)
	scfg.Replicate = applier.Apply
	scfg.Promote = applier.Promote
	wireNode(&scfg, node)
	srv := server.Serve(ln, scfg)
	return &Shard{Enclave: enclave, Pool: p, Server: srv, Addr: srv.Addr().String(), Node: node, Applier: applier}, nil
}

// startPrimary boots shard i's serving node: enclave, partitioned pool,
// optional healer, optional replication shipper (rep != nil), server.
func (h *Harness) startPrimary(i int, rep *Shard) (*Shard, error) {
	cfg := h.cfg
	enclave := h.newEnclave(i)
	p := h.newPool(enclave)

	var shipper *repl.Shipper
	if rep != nil {
		shipper = repl.NewShipper(p, repl.ShipperOptions{
			Addr:   rep.Addr,
			Link:   h.ClientOptionsFor(rep),
			Faults: cfg.ReplFaults,
			Logf:   cfg.Logf,
		})
		if !cfg.SelfHeal {
			// No healer to tee through: wire the shipper as each
			// partition's journal directly (replication without local WAL).
			for j := 0; j < p.Parts(); j++ {
				p.SetJournal(j, shipper.Tee(j, nil))
			}
		}
	}

	var healer *persist.Healer
	if cfg.SelfHeal {
		p.EnableScrub(cfg.ScrubSets)
		dir := filepath.Join(cfg.Dir, fmt.Sprintf("shard-%02d", i))
		if err := os.MkdirAll(dir, 0o700); err != nil {
			return nil, err
		}
		hopts := persist.HealerOptions{Logf: cfg.Logf}
		if cfg.BeforeSwap != nil {
			hopts.BeforeSwap = func(part int) { cfg.BeforeSwap(i, part) }
		}
		if shipper != nil {
			hopts.WrapJournal = func(part int, j core.Journal) core.Journal {
				return shipper.Tee(part, j)
			}
		}
		var err error
		healer, err = persist.NewHealer(p, dir, hopts)
		if err != nil {
			return nil, err
		}
	}
	p.Start()
	if shipper != nil {
		shipper.Start()
	}
	if healer != nil {
		healer.Start()
	}

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		if healer != nil {
			healer.Close()
		}
		if shipper != nil {
			shipper.Close()
		}
		p.Stop()
		return nil, err
	}
	// A primary fenced out by its promoted replica must stop taking
	// writes — reads stay up (they may be stale; the client has moved).
	// Node.Writable enforces exactly that through the shipper.
	node := repl.NewNode(p, shipper, nil, repl.NodeOptions{
		Link:   h.linkFor(enclave),
		Faults: cfg.ReplFaults,
		Logf:   cfg.Logf,
	})
	scfg := h.serverConfig(enclave, p)
	wireNode(&scfg, node)
	srv := server.Serve(ln, scfg)
	return &Shard{Enclave: enclave, Pool: p, Healer: healer, Server: srv, Addr: srv.Addr().String(), Node: node, Shipper: shipper}, nil
}

// Shard returns shard i.
func (h *Harness) Shard(i int) *Shard { return h.shards[i] }

// Shards returns the running shard count.
func (h *Harness) Shards() int { return len(h.shards) }

// Addrs returns every shard's listen address in shard order.
func (h *Harness) Addrs() []string {
	out := make([]string, len(h.shards))
	for i, s := range h.shards {
		out[i] = s.Addr
	}
	return out
}

// ClientOptions builds the per-shard connection options: when Secure,
// shard i's own enclave plays its attestation service (the simulation's
// stand-in for IAS, as in the single-node tests).
func (h *Harness) ClientOptions(i int) client.Options {
	return h.ClientOptionsFor(h.shards[i])
}

// ClientOptionsFor builds connection options for an arbitrary harness
// node (a replica, a spare) — same attestation scheme as ClientOptions.
func (h *Harness) ClientOptionsFor(s *Shard) client.Options {
	copts := client.Options{Secure: h.cfg.Secure, Retry: h.cfg.Retry}
	if h.cfg.Secure {
		copts.Verifier = s.Enclave
		copts.Measurement = HarnessMeasurement()
	}
	return copts
}

// Options assembles the cluster client configuration for this harness.
// In Replicas mode each spec carries its replica endpoint so the client
// can fail over.
func (h *Harness) Options() Options {
	specs := make([]ShardSpec, len(h.shards))
	for i, s := range h.shards {
		specs[i] = ShardSpec{Addr: s.Addr, Client: h.ClientOptions(i)}
		if s.Replica != nil {
			specs[i].ReplicaAddr = s.Replica.Addr
			specs[i].ReplicaClient = h.ClientOptionsFor(s.Replica)
		}
	}
	return Options{
		Shards:   specs,
		VNodes:   h.cfg.VNodes,
		Conns:    h.cfg.Conns,
		RingSeed: h.cfg.RingSeed,
		Retry:    h.cfg.ClusterRetry,
	}
}

// Kill tears down an arbitrary harness node by pointer — a primary, a
// replica, or a spare — marking it so Close skips it. The chaos tests'
// crash switch for supervisor-managed topologies, where the boot-time
// pairing no longer describes who serves what.
func (h *Harness) Kill(s *Shard) {
	if s == nil || s.killed {
		return
	}
	s.killed = true
	s.close()
}

// KillPrimary tears down shard i's primary node — server, healer,
// shipper, worker pool — leaving its replica serving. The failover tests'
// crash switch.
func (h *Harness) KillPrimary(i int) {
	s := h.shards[i]
	if s.killed {
		return
	}
	rep := s.Replica
	s.Replica = nil // keep the standby out of the primary's teardown
	h.Kill(s)
	s.Replica = rep
}

// KillReplica tears down shard i's boot-time standby, leaving the
// primary serving unprotected until a spare is attached.
func (h *Harness) KillReplica(i int) {
	h.Kill(h.shards[i].Replica)
}

// RestartPrimary brings shard i's killed primary back on a fresh
// listener, still shipping to the original replica. If that replica was
// promoted meanwhile, the restarted node's first shipped commit comes
// back StatusFenced and the node latches read-only — the fencing path the
// failover tests exercise. With SelfHeal the node restores its data from
// its snapshot+journal dir; otherwise it restarts empty.
func (h *Harness) RestartPrimary(i int) (*Shard, error) {
	old := h.shards[i]
	if !old.killed {
		return nil, fmt.Errorf("cluster harness: shard %d primary still running", i)
	}
	sh, err := h.startPrimary(i, old.Replica)
	if err != nil {
		return nil, err
	}
	sh.Replica = old.Replica
	h.shards[i] = sh
	return sh, nil
}

// StartSpare boots an empty replica-role node sharing shard i's enclave
// identity — the target of a live migration (repl.Shipper.MigrateTo +
// Client.Cutover). The spare is owned by the harness and closed with it.
func (h *Harness) StartSpare(i int) (*Shard, error) {
	sp, err := h.startReplica(i, fmt.Sprintf("spare-%02d", len(h.spares)))
	if err != nil {
		return nil, err
	}
	h.spares = append(h.spares, sp)
	return sp, nil
}

// Close tears every node down: front-end first, then healer and shipper,
// then the worker pool (healer and shipper drive RunCtl against the live
// pool, so order matters). Replicas close after their primaries.
func (h *Harness) Close() {
	for _, s := range h.shards {
		if !s.killed {
			s.close()
		}
		if s.Replica != nil && !s.Replica.killed {
			s.Replica.close()
		}
	}
	for _, sp := range h.spares {
		if !sp.killed {
			sp.close()
		}
	}
	h.shards, h.spares = nil, nil
}
