// Package cluster implements the multi-enclave sharded deployment: a
// client-side shard map over N independent shieldstore-server processes
// (each its own simulated enclave), consistent-hash key routing, per-shard
// connection pools, and parallel scatter-gather execution for multi-key
// operations.
//
// The routing tier is deliberately UNTRUSTED. ShieldStore's security
// argument never depended on where a request is routed: every entry
// carries its own MAC, every bucket set is covered by an in-enclave MAC
// hash, and each shard's Merkle/freshness state lives inside that shard's
// enclave. A malicious router can misdirect, drop or replay requests —
// exactly what a malicious host OS could already do — and the worst
// outcome is a miss or a detected integrity violation, never silent
// corruption. Routing therefore needs no attestation of its own; only the
// per-shard session channels are attested, end-to-end between the client
// and each shard enclave.
//
//ss:host(the cluster router/client is the remote, untrusted peer; it crosses no enclave boundary — per-shard enclaves protect themselves end-to-end)
package cluster

import (
	"encoding/binary"
	"sort"

	"shieldstore/internal/siphash"
)

// Ring hash key tweaks. The ring's SipHash key is derived from these
// public constants plus an optional deployment seed — deliberately NOT
// from the enclaves' secret bucket-index key. Shard routing runs on the
// untrusted client/router tier, which never holds enclave key material;
// and the two hash functions MUST be independent anyway: if shard
// selection and in-shard partition selection used the same hash value
// (mod S, then mod P), the keys landing on one shard would collapse onto
// a correlated subset of that shard's partitions, idling the rest (see
// TestRingPartitionDecorrelation).
const (
	ringSalt0 = 0x73686c645f72696e // "shld_rin"
	ringSalt1 = 0x675f76312e303030 // "g_v1.000"
)

// DefaultVNodes is the default virtual-node count per shard. 64 points
// per shard keeps the peak/mean key imbalance around 15-20% at 8 shards
// while the ring stays small enough that lookup is a cheap binary search.
const DefaultVNodes = 64

// Ring is a consistent-hash shard map: each shard owns VNodes points on a
// 64-bit hash circle, and a key belongs to the shard owning the first
// point at or after the key's hash (wrapping). Consistent hashing means a
// later PR can add or drain one shard by moving only ~1/N of the key
// space — plain mod-N routing would reshuffle almost every key.
//
// A Ring is immutable after construction and safe for concurrent use.
type Ring struct {
	hash   *siphash.Hash
	points []ringPoint // sorted by point hash
	shards int
	vnodes int
}

type ringPoint struct {
	h     uint64
	shard int
}

// NewRing builds the shard map for `shards` shards with `vnodes` virtual
// nodes each (DefaultVNodes when <= 0). The seed perturbs the ring's
// public hash key so distinct deployments can use distinct maps; all
// routers of one cluster must agree on (shards, vnodes, seed).
func NewRing(shards, vnodes int, seed uint64) *Ring {
	if shards <= 0 {
		shards = 1
	}
	if vnodes <= 0 {
		vnodes = DefaultVNodes
	}
	var key [siphash.KeySize]byte
	binary.LittleEndian.PutUint64(key[0:8], seed^ringSalt0)
	binary.LittleEndian.PutUint64(key[8:16], seed^ringSalt1)
	h := siphash.New(key[:])

	r := &Ring{hash: h, shards: shards, vnodes: vnodes}
	r.points = make([]ringPoint, 0, shards*vnodes)
	var label [12]byte // "vn" || shard || vnode
	label[0], label[1] = 'v', 'n'
	for s := 0; s < shards; s++ {
		binary.LittleEndian.PutUint32(label[2:6], uint32(s))
		for v := 0; v < vnodes; v++ {
			binary.LittleEndian.PutUint32(label[6:10], uint32(v))
			r.points = append(r.points, ringPoint{h: h.Sum64(label[:]), shard: s})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].h != r.points[j].h {
			return r.points[i].h < r.points[j].h
		}
		// Hash ties (vanishingly rare on a 64-bit circle) resolve by shard
		// index so every router agrees on the winner.
		return r.points[i].shard < r.points[j].shard
	})
	return r
}

// Shards returns the shard count.
func (r *Ring) Shards() int { return r.shards }

// VNodes returns the virtual-node count per shard.
func (r *Ring) VNodes() int { return r.vnodes }

// Shard returns the shard owning key: the owner of the first ring point
// at or after the key's hash, wrapping past the top of the circle.
func (r *Ring) Shard(key []byte) int {
	if r.shards == 1 {
		return 0
	}
	h := r.hash.Sum64(key)
	pts := r.points
	i := sort.Search(len(pts), func(i int) bool { return pts[i].h >= h })
	if i == len(pts) {
		i = 0
	}
	return pts[i].shard
}
