// The cluster client: mirrors the single-node client.Client API over N
// shards. Single-key operations route to the owning shard through that
// shard's connection pool; MGet/MSet/Batch group operations by shard,
// fan the per-shard sub-batches out concurrently, and reassemble results
// in submission order with per-op error isolation; Stats and Health
// aggregate cluster-wide.
package cluster

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"shieldstore/internal/client"
	"shieldstore/internal/proto"
)

// ErrNoShards reports an Options with an empty shard list.
var ErrNoShards = errors.New("shieldstore cluster: no shards configured")

// ShardSpec names one shard endpoint and how to connect to it. Each shard
// is its own enclave with its own attestation identity, so the client
// options (verifier, measurement, retry policy) are per shard.
type ShardSpec struct {
	Addr   string
	Client client.Options
	// ReplicaAddr, when non-empty, names this shard's standby replica:
	// the node its primary ships its journal to (internal/repl). The
	// cluster client dials it alongside the primary and fails over to it
	// — promote, fence, swap, retry once — when the primary dies or
	// becomes unserviceable (see failover.go).
	ReplicaAddr string
	// ReplicaClient are the dial options for the replica endpoint (its
	// enclave has its own attestation identity).
	ReplicaClient client.Options
}

// Options configures a cluster client.
type Options struct {
	// Shards lists the shard endpoints in ring order. All clients of one
	// cluster must use the same list order, VNodes and RingSeed.
	Shards []ShardSpec
	// VNodes is the virtual-node count per shard (DefaultVNodes when 0).
	VNodes int
	// Conns sizes each shard's connection pool (default 2). Scatter-gather
	// uses one connection per involved shard per call, so concurrent
	// multi-key callers want Conns >= their concurrency.
	Conns int
	// RingSeed perturbs the ring hash key (must match across routers).
	RingSeed uint64
	// Retry bounds the scatter-gather path's per-op rebuilding retries:
	// ops that come back ErrRebuilding inside an otherwise-successful
	// batch are re-issued to the affected shard alone, with backoff, while
	// every other shard's results stand. (Single-key operations ride the
	// per-connection client.Options.Retry instead.) The zero value
	// disables the re-issue and surfaces ErrRebuilding per op.
	Retry client.RetryPolicy
	// Supervisor, when non-empty, names a ctl.Supervisor topology
	// endpoint. Failovers then become supervisor-mediated: on a
	// failover-class error the client polls CmdTopology and repoints the
	// shard at whatever the supervisor published, instead of promoting a
	// replica itself. Client-side promotion remains strictly as fallback
	// for an unreachable supervisor (see ctlplane.go).
	Supervisor string
	// SupervisorClient are dial options for the supervisor endpoint.
	// The zero value is right for a stock supervisor: plaintext (the
	// topology holds no secrets), with a default 250ms deadline.
	SupervisorClient client.Options
	// FailoverWait bounds how long a failing operation waits for the
	// supervisor to publish a new topology before giving up (default 2s —
	// comfortably past the supervisor's detection + promotion time).
	FailoverWait time.Duration
	// TopologyPoll is the re-fetch interval while waiting (default 10ms).
	TopologyPoll time.Duration
}

func (o Options) withDefaults() Options {
	if o.VNodes <= 0 {
		o.VNodes = DefaultVNodes
	}
	if o.Conns <= 0 {
		o.Conns = 2
	}
	if o.FailoverWait <= 0 {
		o.FailoverWait = 2 * time.Second
	}
	if o.TopologyPoll <= 0 {
		o.TopologyPoll = 10 * time.Millisecond
	}
	return o
}

// Client is a cluster-wide client handle. Unlike the single-connection
// client.Client, a cluster Client IS safe for concurrent use: every
// operation borrows a connection from the owning shard's pool and returns
// it before the call completes.
type Client struct {
	opts  Options
	ring  *Ring
	slots []*shardSlot

	supMu   sync.Mutex     // guards the cached supervisor connection
	supConn *client.Client // lazily dialed; nil until first topology fetch
}

// Dial connects Conns connections to every shard (and to every
// configured replica) and builds the shard map. Any shard that cannot be
// reached fails the whole call (a cluster with a missing shard would
// silently misroute that shard's key range); a missing replica fails it
// too — a pair that starts life degraded is a misconfiguration, not a
// failover.
func Dial(opts Options) (*Client, error) {
	opts = opts.withDefaults()
	if len(opts.Shards) == 0 {
		return nil, ErrNoShards
	}
	c := &Client{
		opts: opts,
		ring: NewRing(len(opts.Shards), opts.VNodes, opts.RingSeed),
	}
	for i, spec := range opts.Shards {
		p, err := newPool(spec, opts.Conns)
		if err != nil {
			c.Close()
			return nil, fmt.Errorf("shieldstore cluster: shard %d (%s): %w", i, spec.Addr, err)
		}
		sl := &shardSlot{primary: p, epoch: 1, spec: spec, primaryAddr: spec.Addr, replicaAddr: spec.ReplicaAddr}
		if spec.ReplicaAddr != "" {
			rp, err := newPool(ShardSpec{Addr: spec.ReplicaAddr, Client: spec.ReplicaClient}, opts.Conns)
			if err != nil {
				p.close()
				c.Close()
				return nil, fmt.Errorf("shieldstore cluster: shard %d replica (%s): %w", i, spec.ReplicaAddr, err)
			}
			sl.replica = rp
		}
		c.slots = append(c.slots, sl)
	}
	return c, nil
}

// Close releases every pooled connection, including standby replicas and
// pools retired by failovers and cutovers.
func (c *Client) Close() error {
	var first error
	c.supMu.Lock()
	if c.supConn != nil {
		c.supConn.Close()
		c.supConn = nil
	}
	c.supMu.Unlock()
	for _, sl := range c.slots {
		sl.mu.Lock()
		pools := append([]*pool{sl.primary, sl.replica}, sl.retired...)
		sl.retired = nil
		sl.mu.Unlock()
		for _, p := range pools {
			if p == nil {
				continue
			}
			if err := p.close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// Shards returns the shard count.
func (c *Client) Shards() int { return c.ring.Shards() }

// ShardFor returns the shard index owning key.
func (c *Client) ShardFor(key []byte) int { return c.ring.Shard(key) }

// --- single-key operations: route to the owning shard ---
//
// Every operation rides exec1 (failover.go): try the shard's active
// node, and on a failover-class error promote the replica and retry
// exactly once. NOTE the at-least-once caveat this buys: a mutation
// whose response was lost to the primary's death MAY have been applied
// (and replicated) before the crash — the failover retry then applies it
// again. Idempotent mutations (Set, Delete) are unaffected; Append/Incr
// callers who cannot tolerate a rare duplicate during a failover window
// must deduplicate at the application layer.

// Get fetches a value from the owning shard.
func (c *Client) Get(key []byte) ([]byte, error) {
	var v []byte
	err := c.exec1(key, func(conn *client.Client) error {
		var e error
		v, e = conn.Get(key)
		return e
	})
	if err != nil {
		return nil, err
	}
	return v, nil
}

// Set stores a value on the owning shard.
func (c *Client) Set(key, value []byte) error {
	return c.exec1(key, func(conn *client.Client) error { return conn.Set(key, value) })
}

// Delete removes a key from the owning shard.
func (c *Client) Delete(key []byte) error {
	return c.exec1(key, func(conn *client.Client) error { return conn.Delete(key) })
}

// Append appends to a value server-side on the owning shard.
func (c *Client) Append(key, suffix []byte) error {
	return c.exec1(key, func(conn *client.Client) error { return conn.Append(key, suffix) })
}

// Incr adds delta to a numeric value on the owning shard.
func (c *Client) Incr(key []byte, delta int64) (int64, error) {
	var n int64
	err := c.exec1(key, func(conn *client.Client) error {
		var e error
		n, e = conn.Incr(key, delta)
		return e
	})
	if err != nil {
		return 0, err
	}
	return n, nil
}

// --- scatter-gather operations ---

// Batch groups ops by owning shard, fans the per-shard sub-batches out
// concurrently (one CmdBatch round trip per involved shard), and
// reassembles the results in submission order. Errors are isolated per
// op: a miss, an integrity violation, or even a whole shard being
// unreachable taints only that shard's ops — the other shards' results
// stand. The call itself never fails.
func (c *Client) Batch(ops ...client.Op) []client.Result {
	out := make([]client.Result, len(ops))
	if len(ops) == 0 {
		return out
	}
	idxs := c.group(ops)
	var wg sync.WaitGroup
	for shard, list := range idxs {
		if len(list) == 0 {
			continue
		}
		wg.Add(1)
		go func(shard int, list []int) {
			defer wg.Done()
			sub := make([]client.Op, len(list))
			for j, i := range list {
				sub[j] = ops[i]
			}
			rs := c.execShard(shard, sub)
			for j, i := range list {
				out[i] = rs[j]
			}
		}(shard, list)
	}
	wg.Wait()
	return out
}

// group buckets op indices by owning shard.
func (c *Client) group(ops []client.Op) [][]int {
	idxs := make([][]int, len(c.slots))
	for i := range ops {
		s := c.ring.Shard(ops[i].Key)
		idxs[s] = append(idxs[s], i)
	}
	return idxs
}

// execShard runs one shard's sub-batch with rebuilding retries, then —
// if ops still carry failover-class errors (the node is gone, fenced,
// unhealable, or stuck rebuilding past the retry budget) — promotes the
// replica and re-issues exactly those ops once against it. Same
// at-least-once caveat as the single-key path.
func (c *Client) execShard(shard int, ops []client.Op) []client.Result {
	rs := c.execShardRetry(shard, ops)
	var retry []int
	for i := range rs {
		if rs[i].Err != nil && failoverClass(rs[i].Err) {
			retry = append(retry, i)
		}
	}
	if len(retry) == 0 || !c.recover(shard) {
		return rs
	}
	sub := make([]client.Op, len(retry))
	for j, i := range retry {
		sub[j] = ops[i]
	}
	again := c.execShardRetry(shard, sub)
	for j, i := range retry {
		rs[i] = again[j]
	}
	return rs
}

// execShardRetry runs one shard's sub-batch, then re-issues any ops that
// came back ErrRebuilding — to this shard only — under Options.Retry. A
// rebuilding partition guarantees the op was NOT applied, so mutations
// replay safely; meanwhile every other shard's fan-out goroutine has long
// since returned its results.
func (c *Client) execShardRetry(shard int, ops []client.Op) []client.Result {
	rs := c.batchOnce(shard, ops)
	pol := c.opts.Retry
	if pol.MaxAttempts <= 1 {
		return rs
	}
	backoff := pol.Backoff
	if backoff <= 0 {
		backoff = time.Millisecond
	}
	maxBackoff := pol.MaxBackoff
	if maxBackoff <= 0 {
		maxBackoff = 100 * time.Millisecond
	}
	for attempt := 1; attempt < pol.MaxAttempts; attempt++ {
		var retry []int
		for i := range rs {
			if errors.Is(rs[i].Err, client.ErrRebuilding) {
				retry = append(retry, i)
			}
		}
		if len(retry) == 0 {
			return rs
		}
		time.Sleep(backoff)
		if backoff *= 2; backoff > maxBackoff {
			backoff = maxBackoff
		}
		sub := make([]client.Op, len(retry))
		for j, i := range retry {
			sub[j] = ops[i]
		}
		again := c.batchOnce(shard, sub)
		for j, i := range retry {
			rs[i] = again[j]
		}
	}
	return rs
}

// batchOnce executes one CmdBatch round trip against a shard. A failure
// of the round trip itself (pool exhausted by dial failures, transport or
// framing error) is folded into every op's result — per-op isolation at
// the shard boundary.
func (c *Client) batchOnce(shard int, ops []client.Op) []client.Result {
	p := c.slot(shard).active()
	conn, err := p.get()
	if err == nil {
		var rs []client.Result
		rs, err = conn.Batch(ops...)
		p.put(conn, err)
		if err == nil {
			return rs
		}
	}
	rs := make([]client.Result, len(ops))
	for i := range rs {
		rs[i].Err = err
	}
	return rs
}

// MGet fetches several keys in at most one round trip per involved shard.
// The result has one slot per requested key, in submission order; missing
// keys are nil. The first error other than a miss fails the call (the
// single-node MGet contract); callers needing per-op isolation use Batch.
func (c *Client) MGet(keys ...[]byte) ([][]byte, error) {
	ops := make([]client.Op, len(keys))
	for i, k := range keys {
		ops[i] = client.GetOp(k)
	}
	rs := c.Batch(ops...)
	vals := make([][]byte, len(keys))
	for i := range rs {
		switch {
		case rs[i].Err == nil:
			vals[i] = rs[i].Value
			if vals[i] == nil {
				vals[i] = []byte{}
			}
		case errors.Is(rs[i].Err, client.ErrNotFound):
			vals[i] = nil
		default:
			return nil, rs[i].Err
		}
	}
	return vals, nil
}

// MSet stores keys[i] = values[i] for all i, one round trip per involved
// shard, and returns the first per-op failure, if any.
func (c *Client) MSet(keys, values [][]byte) error {
	if len(keys) != len(values) {
		return proto.ErrBadMessage
	}
	ops := make([]client.Op, len(keys))
	for i := range keys {
		ops[i] = client.SetOp(keys[i], values[i])
	}
	for _, r := range c.Batch(ops...) {
		if r.Err != nil {
			return r.Err
		}
	}
	return nil
}

// --- cluster-wide control plane ---

// Stats fetches every shard's statistics lines concurrently, each
// prefixed "shardN/", in shard order.
func (c *Client) Stats() ([]string, error) {
	return c.gatherLines(func(conn *client.Client) ([]string, error) { return conn.Stats() })
}

// Health fetches every shard's per-partition health lines concurrently,
// each prefixed "shardN/" ("shard2/part1=rebuilding ..."), in shard
// order. One unreachable shard fails the probe — cluster health must
// never silently omit a shard.
func (c *Client) Health() ([]string, error) {
	return c.gatherLines(func(conn *client.Client) ([]string, error) { return conn.Health() })
}

// Ping checks liveness of every shard concurrently.
func (c *Client) Ping() error {
	_, err := c.gatherLines(func(conn *client.Client) ([]string, error) {
		return nil, conn.Ping()
	})
	return err
}

// gatherLines fans a per-shard probe out to all shards and concatenates
// the prefixed results in shard order. A probe that fails with a
// failover-class error rides the same promote-and-retry-once path as the
// data plane — the control plane should see the cluster the data plane
// serves from.
func (c *Client) gatherLines(probe func(*client.Client) ([]string, error)) ([]string, error) {
	perShard := make([][]string, len(c.slots))
	errs := make([]error, len(c.slots))
	var wg sync.WaitGroup
	for s := range c.slots {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			var lines []string
			err := c.try1(s, func(conn *client.Client) error {
				var e error
				lines, e = probe(conn)
				return e
			})
			if err != nil && failoverClass(err) && c.recover(s) {
				err = c.try1(s, func(conn *client.Client) error {
					var e error
					lines, e = probe(conn)
					return e
				})
			}
			if err != nil {
				errs[s] = err
				return
			}
			prefixed := make([]string, len(lines))
			for i, l := range lines {
				prefixed[i] = fmt.Sprintf("shard%d/%s", s, l)
			}
			perShard[s] = prefixed
		}(s)
	}
	wg.Wait()
	var out []string
	for s := range perShard {
		if errs[s] != nil {
			return nil, fmt.Errorf("shieldstore cluster: shard %d: %w", s, errs[s])
		}
		out = append(out, perShard[s]...)
	}
	return out, nil
}
