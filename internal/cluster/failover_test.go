// Automatic failover and live migration (DESIGN.md §15), end to end over
// real wires: a primary killed mid-load fails over to its replica with
// zero acknowledged writes lost and at most one client-visible retry; the
// fenced old primary is rejected when it returns; a live migration
// (Shipper.MigrateTo + Client.Cutover) repoints a ring slot at a fresh
// node holding the full dataset; and an unhealable partition — quarantine
// plus a lost op journal — surfaces ErrUnhealable and drives the same
// failover. The CI failover-soak job runs this file under -race.
package cluster_test

import (
	"errors"
	"fmt"
	"testing"
	"time"

	"shieldstore/internal/client"
	"shieldstore/internal/cluster"
	"shieldstore/internal/core"
	"shieldstore/internal/fault"
	"shieldstore/internal/sim"
)

// loadCluster writes n keys through the cluster client and returns the
// expected dataset. Every returned key was acknowledged, so replication's
// group-commit contract says the replica holds it too.
func loadCluster(t *testing.T, c *cluster.Client, prefix string, n int) map[string]string {
	t.Helper()
	expect := map[string]string{}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("%s%04d", prefix, i)
		v := fmt.Sprintf("val-%s-%04d", prefix, i)
		if err := c.Set([]byte(k), []byte(v)); err != nil {
			t.Fatalf("Set %s: %v", k, err)
		}
		expect[k] = v
	}
	return expect
}

func verifyCluster(t *testing.T, c *cluster.Client, expect map[string]string) {
	t.Helper()
	for k, v := range expect {
		got, err := c.Get([]byte(k))
		if err != nil {
			t.Fatalf("Get %s: %v", k, err)
		}
		if string(got) != v {
			t.Fatalf("Get %s = %q, want %q", k, got, v)
		}
	}
}

// waitFailover polls f until true. nudge (optional) runs each round —
// the shipper flushes inside group commits, so sync waits drip writes to
// keep commits coming.
func waitFailover(t *testing.T, d time.Duration, what string, f func() bool, nudge func(round int)) {
	t.Helper()
	deadline := time.Now().Add(d)
	for round := 0; time.Now().Before(deadline); round++ {
		if f() {
			return
		}
		if nudge != nil {
			nudge(round)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// syncNudge writes throwaway keys routed at shard so that shard's group
// commit keeps flushing the shipper.
func syncNudge(t *testing.T, c *cluster.Client, shard int) func(int) {
	return func(round int) {
		k := fmt.Sprintf("nudge-%d-%06d", shard, round)
		if c.ShardFor([]byte(k)) != shard {
			return
		}
		if err := c.Set([]byte(k), []byte("n")); err != nil {
			t.Fatalf("nudge Set %s: %v", k, err)
		}
	}
}

// TestFailoverKillPrimary is the acceptance scenario: kill a primary
// mid-load. Writes keep succeeding (the client demotes to the replica
// after at most one internal retry — no error reaches the caller), no
// acknowledged write is lost, and when the dead primary comes back it is
// fenced: its first shipped commit is rejected by its own former replica
// and mutations fail with ErrFenced while reads stay up.
func TestFailoverKillPrimary(t *testing.T) {
	h, c := startCluster(t, cluster.HarnessConfig{Shards: 2, Replicas: true, Seed: 11})

	expect := loadCluster(t, c, "pre", 300)
	for i := 0; i < h.Shards(); i++ {
		s := h.Shard(i)
		waitFailover(t, 5*time.Second, "replication sync", s.Shipper.Synced, syncNudge(t, c, i))
	}

	h.KillPrimary(0)

	// Every post-kill write must be acknowledged: ops routed at shard 0 hit
	// ErrConnection once internally, promote the replica (epoch 2), and
	// succeed on the single retry. Nothing failover-class may surface.
	for k, v := range loadCluster(t, c, "post", 300) {
		expect[k] = v
	}
	if !c.Demoted(0) {
		t.Fatal("shard 0 not demoted after primary kill")
	}
	if ep := c.Epoch(0); ep != 2 {
		t.Fatalf("shard 0 epoch = %d, want 2", ep)
	}
	if c.Demoted(1) {
		t.Fatal("healthy shard 1 demoted")
	}

	// Zero acknowledged writes lost: the pre-kill set was replicated before
	// the crash, the post-kill set was written to the promoted replica.
	verifyCluster(t, c, expect)
	keys := make([][]byte, 0, 8)
	want := make([]string, 0, 8)
	for k, v := range expect {
		if len(keys) == 8 {
			break
		}
		keys = append(keys, []byte(k))
		want = append(want, v)
	}
	got, err := c.MGet(keys...)
	if err != nil {
		t.Fatalf("MGet after failover: %v", err)
	}
	for i := range keys {
		if string(got[i]) != want[i] {
			t.Fatalf("MGet %s = %q, want %q", keys[i], got[i], want[i])
		}
	}

	// The dead primary returns, still believing it owns epoch 1. Its first
	// shipped commit comes back StatusFenced from the promoted replica, the
	// mutation is retracted, and the client sees ErrFenced. Reads still
	// serve (the node restarted empty — no SelfHeal — so they miss, but
	// they are not fenced).
	sh, err := h.RestartPrimary(0)
	if err != nil {
		t.Fatalf("RestartPrimary: %v", err)
	}
	direct, err := client.Dial(sh.Addr, h.ClientOptionsFor(sh))
	if err != nil {
		t.Fatalf("dial restarted primary: %v", err)
	}
	defer direct.Close()
	if err := direct.Set([]byte("zombie"), []byte("w")); !errors.Is(err, client.ErrFenced) {
		t.Fatalf("write on fenced ex-primary: %v, want ErrFenced", err)
	}
	if !sh.Shipper.Fenced() {
		t.Fatal("restarted primary's shipper not latched fenced")
	}
	if _, err := direct.Get([]byte("pre0000")); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("read on fenced ex-primary: %v, want ErrNotFound (reads stay up)", err)
	}

	// The cluster keeps writing to the promoted replica, undisturbed by the
	// zombie's return.
	if err := c.Set([]byte("pre0000"), []byte("rewrite")); err != nil {
		t.Fatalf("Set after zombie return: %v", err)
	}
	if v, _ := c.Get([]byte("pre0000")); string(v) != "rewrite" {
		t.Fatalf("after zombie return: %q", v)
	}
}

// TestMigrateShardCutover is a live shard migration: retarget the
// shipper at an empty spare (snapshot bootstrap + catch-up under load),
// wait for Synced, then atomically cut the ring slot over. The migrated
// shard serves the full dataset and accepts writes; the epoch bump fences
// the old primary out.
func TestMigrateShardCutover(t *testing.T) {
	h, c := startCluster(t, cluster.HarnessConfig{Shards: 2, Replicas: true, Seed: 23})

	expect := loadCluster(t, c, "mig", 200)

	spare, err := h.StartSpare(0)
	if err != nil {
		t.Fatalf("StartSpare: %v", err)
	}
	old := h.Shard(0)
	old.Shipper.MigrateTo(spare.Addr, h.ClientOptionsFor(spare))

	// Writes keep flowing while the snapshot streams.
	for k, v := range loadCluster(t, c, "during", 100) {
		expect[k] = v
	}
	waitFailover(t, 10*time.Second, "migration sync", old.Shipper.Synced, syncNudge(t, c, 0))

	if err := c.Cutover(0, cluster.ShardSpec{Addr: spare.Addr, Client: h.ClientOptionsFor(spare)}); err != nil {
		t.Fatalf("Cutover: %v", err)
	}
	if ep := c.Epoch(0); ep != 2 {
		t.Fatalf("post-cutover epoch = %d, want 2", ep)
	}

	// Full dataset on the migrated topology, and the new node takes writes.
	verifyCluster(t, c, expect)
	for k, v := range loadCluster(t, c, "after", 100) {
		expect[k] = v
	}
	verifyCluster(t, c, expect)

	// The old primary's next shipped commit is fenced by its own migration
	// target: a write routed to it directly must be rejected.
	direct, err := client.Dial(old.Addr, h.ClientOptionsFor(old))
	if err != nil {
		t.Fatalf("dial old primary: %v", err)
	}
	defer direct.Close()
	if err := direct.Set([]byte("stale"), []byte("w")); !errors.Is(err, client.ErrFenced) {
		t.Fatalf("write on migrated-away primary: %v, want ErrFenced", err)
	}
}

// TestFailoverOnUnhealablePartition drives the unhealable path end to
// end: a partition loses its op journal (LogOp failure → detach +
// JournalLost), then gets corrupted; the healer refuses the rebuild —
// the journal can no longer replay every acknowledged mutation — so the
// partition surfaces StatusUnhealable/ErrUnhealable, which is a
// failover-class error: the cluster client promotes the replica, where
// the full dataset (shipped frame-first, before the journal died) lives.
func TestFailoverOnUnhealablePartition(t *testing.T) {
	h, c := startCluster(t, cluster.HarnessConfig{
		Shards:   2,
		Replicas: true,
		SelfHeal: true,
		Dir:      t.TempDir(),
		Seed:     31,
	})

	expect := loadCluster(t, c, "u", 200)
	pool0 := h.Shard(0).Pool
	m := sim.NewMeter(pool0.Enclave().Model())

	// Break partition 0's journal: the wrapper forwards to the real
	// journal chain first (shipper tee + WAL — the frame still ships), then
	// reports failure, so the worker detaches it and flags JournalLost.
	pool0.RunCtl(0, func(st *core.WorkerState) {
		st.Journal = failingJournal{inner: st.Journal}
	})

	// One write aimed at shard 0, partition 0 springs the trap. It is
	// acknowledged AND replicated — the frame was enqueued before the
	// journal reported failure.
	killKey := ""
	for i := 0; killKey == ""; i++ {
		k := fmt.Sprintf("kill-%04d", i)
		if c.ShardFor([]byte(k)) == 0 && pool0.Route(m, []byte(k)) == 0 {
			killKey = k
		}
	}
	if err := c.Set([]byte(killKey), []byte("last-acked")); err != nil {
		t.Fatalf("Set %s: %v", killKey, err)
	}
	expect[killKey] = "last-acked"
	waitFailover(t, 5*time.Second, "journal-lost flag", func() bool {
		return pool0.Health()[0].JournalLost
	}, nil)
	// Flush the buffered kill frame: commits on shard 0's healthy
	// partitions drain the shared shipper buffer.
	for i, sent := 0, 0; sent < 4; i++ {
		k := fmt.Sprintf("flush-%04d", i)
		if c.ShardFor([]byte(k)) != 0 || pool0.Route(m, []byte(k)) == 0 {
			continue
		}
		if err := c.Set([]byte(k), []byte("f")); err != nil {
			t.Fatalf("Set %s: %v", k, err)
		}
		expect[k] = "f"
		sent++
	}
	waitFailover(t, 5*time.Second, "replication sync", h.Shard(0).Shipper.Synced, syncNudge(t, c, 0))

	// Now corrupt the journal-less partition. The scrubber quarantines it,
	// the healer refuses the rebuild (ErrJournalIncomplete), and the
	// partition goes terminally unhealable.
	plane := fault.New(99)
	plane.Arm(fault.PointEntryFlip, fault.Spec{Count: -1})
	pool0.RunCtl(0, func(st *core.WorkerState) { st.Store.SetFaultPlane(plane) })
	waitFailover(t, 10*time.Second, "unhealable state", func() bool {
		return pool0.Health()[0].State == core.PartUnhealable
	}, nil)

	// A direct (non-failover) client sees the terminal error class.
	direct, err := client.Dial(h.Shard(0).Addr, h.ClientOptionsFor(h.Shard(0)))
	if err != nil {
		t.Fatalf("dial shard 0 primary: %v", err)
	}
	defer direct.Close()
	if _, err := direct.Get([]byte(killKey)); !errors.Is(err, client.ErrUnhealable) {
		t.Fatalf("direct Get on unhealable partition: %v, want ErrUnhealable", err)
	}

	// The cluster client fails over on that same error class and serves the
	// key from the replica — including the write whose journal append died.
	if v, err := c.Get([]byte(killKey)); err != nil || string(v) != "last-acked" {
		t.Fatalf("cluster Get %s = %q, %v", killKey, v, err)
	}
	if !c.Demoted(0) {
		t.Fatal("shard 0 not demoted after unhealable partition")
	}
	verifyCluster(t, c, expect)
	if err := c.Set([]byte(killKey), []byte("post-failover")); err != nil {
		t.Fatalf("Set after failover: %v", err)
	}
	if v, _ := c.Get([]byte(killKey)); string(v) != "post-failover" {
		t.Fatalf("post-failover read: %q", v)
	}
}

// failingJournal forwards every LogOp to the wrapped journal chain and
// then reports failure — the worker sees a dead journal while the inner
// tee has already shipped the frame.
type failingJournal struct{ inner core.Journal }

func (j failingJournal) LogOp(m *sim.Meter, kind core.BatchKind, key, value []byte, delta int64) error {
	if j.inner != nil {
		j.inner.LogOp(m, kind, key, value, delta)
	}
	return errors.New("injected journal failure")
}
