// Package sgx models the Intel SGX enclave runtime that ShieldStore's
// trusted component runs on: enclave transitions (ECALL/OCALL), exitless
// HotCalls, trusted randomness (sgx_read_rand), data sealing
// (sgx_seal_data), platform monotonic counters, and a remote-attestation
// stub for establishing client session keys.
//
// Cryptographic operations are executed for real (AES-GCM sealing, AES-CTR
// DRBG, HMAC-SHA256 quotes) so tamper- and replay-detection are genuinely
// testable; their execution costs are charged to the caller's sim.Meter,
// and transition costs follow the ~8,000-cycle crossing measurements the
// paper cites (§2.2).
//
//ss:trusted
package sgx

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/hmac"
	"crypto/sha256"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"sort"
	"sync"

	"shieldstore/internal/mem"
	"shieldstore/internal/secret"
	"shieldstore/internal/sim"
)

// Errors returned by sealing and attestation.
var (
	ErrSealCorrupt    = errors.New("sgx: sealed blob failed authentication")
	ErrQuoteInvalid   = errors.New("sgx: quote verification failed")
	ErrCounterWrongID = errors.New("sgx: unknown monotonic counter")
)

// Config parameterizes a simulated enclave.
type Config struct {
	// Space is the machine memory the enclave lives in.
	Space *mem.Space
	// Seed derives all platform keys and the DRBG state, making runs
	// reproducible. A zero seed is replaced by a fixed default.
	Seed uint64
	// Measurement identifies the enclave code identity (MRENCLAVE); it is
	// bound into quotes and sealed blobs.
	Measurement [32]byte
	// CounterPath, when set, backs the platform monotonic counters with a
	// file (the non-volatile platform storage real SGX counters live in),
	// so they survive enclave restarts. Empty means in-memory only.
	CounterPath string
}

// Enclave is one simulated SGX enclave.
type Enclave struct {
	space *mem.Space
	model *sim.CostModel

	sealAEAD cipher.AEAD
	// attestKey is the platform attestation MAC key.
	//ss:secret
	attestKey   [32]byte
	measurement [32]byte
	// keySeed is the fused platform key-derivation seed — the root of
	// every derived subsystem key. Guarded and wiped on Teardown.
	//ss:secret
	keySeed *secret.Buffer

	mu          sync.Mutex
	drbg        cipher.Stream
	sealSeq     uint64
	counters    map[uint32]uint64
	counterPath string
}

// New creates an enclave on the given memory space.
func New(cfg Config) *Enclave {
	if cfg.Space == nil {
		panic("sgx: nil Space")
	}
	seed := cfg.Seed
	if seed == 0 {
		seed = 0x5348494c44 // "SHILD"
	}
	e := &Enclave{
		space:       cfg.Space,
		model:       cfg.Space.Model(),
		measurement: cfg.Measurement,
		counters:    map[uint32]uint64{},
		counterPath: cfg.CounterPath,
	}
	e.loadCounters()

	// Derive platform keys from the seed: the real hardware derives the
	// sealing key from the fused device key + MRENCLAVE/MRSIGNER. The
	// seed moves into a guarded buffer immediately (From wipes the stack
	// copy) and every derived intermediate is wiped once its schedule is
	// expanded.
	var seedBytes [16]byte
	binary.LittleEndian.PutUint64(seedBytes[:8], seed)
	copy(seedBytes[8:], cfg.Measurement[:8])
	e.keySeed = secret.From(seedBytes[:])
	sealKey := derive(e.keySeed.Bytes(), "seal")
	defer secret.WipeBytes(sealKey[:])
	block, err := aes.NewCipher(sealKey[:16])
	if err != nil {
		panic(err)
	}
	e.sealAEAD, err = cipher.NewGCM(block)
	if err != nil {
		panic(err)
	}
	e.attestKey = derive(e.keySeed.Bytes(), "attest")

	// DRBG: AES-CTR keystream over a derived key, the standard CTR_DRBG
	// construction in miniature.
	rk := derive(e.keySeed.Bytes(), "drbg")
	defer secret.WipeBytes(rk[:])
	rb, err := aes.NewCipher(rk[:16])
	if err != nil {
		panic(err)
	}
	e.drbg = cipher.NewCTR(rb, make([]byte, aes.BlockSize))
	return e
}

// derive expands one labeled subsystem key from the platform seed.
//
//ss:secret — returns raw key material; callers own the wipe.
func derive(seed []byte, label string) [32]byte {
	h := hmac.New(sha256.New, seed)
	h.Write([]byte(label))
	var out [32]byte
	copy(out[:], h.Sum(nil))
	return out
}

// DeriveKey derives a labeled subsystem key from the enclave's platform
// key material (sgx_get_key with a caller-chosen KEYID). Distinct labels
// yield independent keys; the same enclave identity + seed always derives
// the same key, which is what lets a restarted enclave reopen state it
// sealed earlier (the value log, for instance).
//
// The key arrives in a guarded buffer: the caller owns it and must Wipe
// it when the subsystem releases the key (shieldvet's keylife checker
// enforces this).
//
//ss:secret — returns guarded key material; callers own the wipe.
func (e *Enclave) DeriveKey(label string) *secret.Buffer {
	k := derive(e.keySeed.Bytes(), label)
	return secret.From(k[:])
}

// Teardown destroys the enclave's key material at enclave destruction:
// the platform seed, the attestation key, and the DRBG state are wiped
// or dropped. Sealing, randomness and key derivation are unusable
// afterwards — use-after-teardown fails loudly rather than running on
// zeroed keys. The AES key schedules expanded inside crypto stdlib
// state cannot be zeroed from Go; dropping the references is the
// portable equivalent of sgx_destroy_enclave's EPC scrub (DESIGN.md
// §16). Returns ErrCanary if the seed's guard frame was corrupted.
func (e *Enclave) Teardown() error {
	e.mu.Lock()
	defer e.mu.Unlock()
	var err error
	if e.keySeed != nil {
		err = e.keySeed.Wipe()
	}
	secret.WipeBytes(e.attestKey[:])
	e.drbg = nil
	e.sealAEAD = nil
	return err
}

// Space returns the memory space the enclave runs in.
func (e *Enclave) Space() *mem.Space { return e.space }

// Model returns the cost model.
func (e *Enclave) Model() *sim.CostModel { return e.model }

// Measurement returns the enclave's code identity.
func (e *Enclave) Measurement() [32]byte { return e.measurement }

// ECall charges one host→enclave transition.
//
//ss:charges
func (e *Enclave) ECall(m *sim.Meter) {
	m.Charge(e.model.EnclaveCrossing)
	m.Count(sim.CtrECall)
}

// OCall charges one enclave→host transition (and the way back).
//
//ss:charges
func (e *Enclave) OCall(m *sim.Meter) {
	m.Charge(e.model.EnclaveCrossing)
	m.Count(sim.CtrOCall)
}

// HotCall charges one exitless call: the enclave thread hands the request
// to an untrusted worker spinning on shared memory (HotCalls, ISCA'17).
//
//ss:charges
func (e *Enclave) HotCall(m *sim.Meter) {
	m.Charge(e.model.HotCall)
	m.Count(sim.CtrHotCall)
}

// Syscall models the enclave requesting an OS service. With hotcalls=false
// it pays a full OCALL; with hotcalls=true it pays the exitless handoff.
// Either way the kernel work itself is charged.
//
//ss:charges
func (e *Enclave) Syscall(m *sim.Meter, hotcalls bool) {
	if hotcalls {
		e.HotCall(m)
	} else {
		e.OCall(m)
	}
	m.Charge(e.model.Syscall)
	m.Count(sim.CtrSyscall)
}

// SbrkUntrusted models the enclave obtaining a chunk of unprotected memory
// from the host allocator: one OCALL plus an mmap/sbrk syscall. It returns
// the chunk's base address. This is the primitive both the naive outside
// allocator and the optimized extra heap allocator (§5.1) are built on.
//
//ss:ocall
func (e *Enclave) SbrkUntrusted(m *sim.Meter, n int) mem.Addr {
	e.OCall(m)
	m.Charge(e.model.Syscall)
	m.Count(sim.CtrSyscall)
	return e.space.Alloc(mem.Untrusted, n)
}

// AllocTrusted reserves enclave memory (no transition needed; the in-enclave
// heap lives in EPC-backed memory).
func (e *Enclave) AllocTrusted(m *sim.Meter, n int) mem.Addr {
	m.Charge(e.model.CacheAccess) // allocator bookkeeping
	return e.space.Alloc(mem.Enclave, n)
}

// ReadRand fills buf with DRBG output (sgx_read_rand), charging RDRAND cost.
func (e *Enclave) ReadRand(m *sim.Meter, buf []byte) {
	e.mu.Lock()
	for i := range buf {
		buf[i] = 0
	}
	e.drbg.XORKeyStream(buf, buf)
	e.mu.Unlock()
	if m != nil {
		m.Charge(uint64(float64(len(buf)) * e.model.RandPerByte))
	}
}

// sealOverhead = nonce (12) + GCM tag (16) + sequence (8).
const sealNonceSize = 12

// Seal encrypts and authenticates data under the enclave's sealing key
// (sgx_seal_data). The blob binds the enclave measurement as AAD, so a blob
// sealed by different code cannot be unsealed here.
func (e *Enclave) Seal(m *sim.Meter, data []byte) []byte {
	e.mu.Lock()
	e.sealSeq++
	seq := e.sealSeq
	e.mu.Unlock()

	var nonce [sealNonceSize]byte
	binary.LittleEndian.PutUint64(nonce[:8], seq)
	e.ReadRand(m, nonce[8:])

	out := make([]byte, sealNonceSize, sealNonceSize+len(data)+16)
	copy(out, nonce[:])
	out = e.sealAEAD.Seal(out, nonce[:], data, e.measurement[:])
	if m != nil {
		m.Charge(e.model.AES(len(data)) + e.model.CMAC(len(data)))
	}
	return out
}

// Unseal authenticates and decrypts a sealed blob.
func (e *Enclave) Unseal(m *sim.Meter, blob []byte) ([]byte, error) {
	if len(blob) < sealNonceSize+16 {
		return nil, ErrSealCorrupt
	}
	nonce, ct := blob[:sealNonceSize], blob[sealNonceSize:]
	pt, err := e.sealAEAD.Open(nil, nonce, ct, e.measurement[:])
	if err != nil {
		return nil, ErrSealCorrupt
	}
	if m != nil {
		m.Charge(e.model.AES(len(pt)) + e.model.CMAC(len(pt)))
	}
	return pt, nil
}

// CreateMonotonicCounter allocates a platform monotonic counter and returns
// its id. Real SGX counters live in non-volatile platform storage; with
// CounterPath configured they survive enclave restarts. Creating a counter
// whose id already exists in platform storage resumes it.
func (e *Enclave) CreateMonotonicCounter() uint32 {
	e.mu.Lock()
	defer e.mu.Unlock()
	id := uint32(len(e.counters) + 1)
	if _, ok := e.counters[id]; !ok {
		e.counters[id] = 0
		e.saveCounters()
	}
	return id
}

// EnsureMonotonicCounter registers a caller-chosen counter id in platform
// storage (no-op when it already exists) and returns its current value.
// Callers that must reattach to the same counter across enclave restarts
// (snapshot rollback protection) use this with a stable id.
func (e *Enclave) EnsureMonotonicCounter(id uint32) uint64 {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.counters[id]
	if !ok {
		e.counters[id] = 0
		e.saveCounters()
	}
	return v
}

// counter NVRAM format: repeated (id uint32, value uint64) little-endian.
//
//ss:host(platform NVRAM read at enclave creation, outside the measured window)
func (e *Enclave) loadCounters() {
	if e.counterPath == "" {
		return
	}
	data, err := os.ReadFile(e.counterPath)
	if err != nil {
		return
	}
	for off := 0; off+12 <= len(data); off += 12 {
		id := binary.LittleEndian.Uint32(data[off:])
		v := binary.LittleEndian.Uint64(data[off+4:])
		e.counters[id] = v
	}
}

// saveCounters is called with mu held. The NVRAM write cost is the
// ~60 ms MonotonicCounterInc charge paid by IncrementMonotonicCounter;
// Create/Ensure run at enclave setup, outside the measured window.
//
//ss:host(NVRAM write cost is subsumed by the MonotonicCounterInc charge)
func (e *Enclave) saveCounters() {
	if e.counterPath == "" {
		return
	}
	ids := make([]uint32, 0, len(e.counters))
	for id := range e.counters {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	buf := make([]byte, 0, 12*len(ids))
	var tmp [12]byte
	for _, id := range ids {
		binary.LittleEndian.PutUint32(tmp[:], id)
		binary.LittleEndian.PutUint64(tmp[4:], e.counters[id])
		buf = append(buf, tmp[:]...)
	}
	_ = os.WriteFile(e.counterPath, buf, 0o600)
}

// IncrementMonotonicCounter bumps a counter, charging the (very large)
// non-volatile write cost the paper's §7 discussion is about.
func (e *Enclave) IncrementMonotonicCounter(m *sim.Meter, id uint32) (uint64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.counters[id]
	if !ok {
		return 0, ErrCounterWrongID
	}
	v++
	e.counters[id] = v
	e.saveCounters()
	if m != nil {
		m.Charge(e.model.MonotonicCounterInc)
		m.Count(sim.CtrMonotonicInc)
	}
	return v, nil
}

// ReadMonotonicCounter returns a counter's current value.
func (e *Enclave) ReadMonotonicCounter(id uint32) (uint64, error) {
	e.mu.Lock()
	defer e.mu.Unlock()
	v, ok := e.counters[id]
	if !ok {
		return 0, ErrCounterWrongID
	}
	return v, nil
}

// Quote produces a remote-attestation quote over reportData: a MAC by the
// simulated platform attestation key binding the enclave measurement. In
// real deployments this is an EPID/DCAP signature checked by Intel's
// attestation service; the shared-key MAC stands in for that trust root.
func (e *Enclave) Quote(reportData []byte) []byte {
	h := hmac.New(sha256.New, e.attestKey[:])
	h.Write(e.measurement[:])
	h.Write(reportData)
	quote := make([]byte, 0, 32+32+len(reportData))
	quote = append(quote, e.measurement[:]...)
	quote = h.Sum(quote)
	quote = append(quote, reportData...)
	return quote
}

// VerifyQuote plays the attestation service: it checks the quote's MAC and
// that the embedded measurement matches the expected enclave identity,
// returning the report data.
func (e *Enclave) VerifyQuote(quote []byte, expectMeasurement [32]byte) ([]byte, error) {
	if len(quote) < 64 {
		return nil, ErrQuoteInvalid
	}
	var meas [32]byte
	copy(meas[:], quote[:32])
	tag := quote[32:64]
	reportData := quote[64:]
	if meas != expectMeasurement {
		return nil, fmt.Errorf("%w: measurement mismatch", ErrQuoteInvalid)
	}
	h := hmac.New(sha256.New, e.attestKey[:])
	h.Write(meas[:])
	h.Write(reportData)
	if !hmac.Equal(h.Sum(nil), tag) {
		return nil, ErrQuoteInvalid
	}
	return reportData, nil
}
