package sgx

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"
	"testing/quick"

	"shieldstore/internal/mem"
	"shieldstore/internal/sim"
)

func newEnclave() *Enclave {
	space := mem.NewSpace(mem.Config{EPCBytes: 1 << 20})
	return New(Config{Space: space, Seed: 1})
}

func TestTransitionsChargeAndCount(t *testing.T) {
	e := newEnclave()
	c := e.Model()
	m := sim.NewMeter(c)

	e.ECall(m)
	if m.Events(sim.CtrECall) != 1 || m.Cycles() != c.EnclaveCrossing {
		t.Fatalf("ECall: cycles=%d events=%d", m.Cycles(), m.Events(sim.CtrECall))
	}
	m.Reset()
	e.OCall(m)
	if m.Events(sim.CtrOCall) != 1 || m.Cycles() != c.EnclaveCrossing {
		t.Fatalf("OCall wrong")
	}
	m.Reset()
	e.HotCall(m)
	if m.Events(sim.CtrHotCall) != 1 || m.Cycles() != c.HotCall {
		t.Fatalf("HotCall wrong")
	}
}

func TestSyscallPaths(t *testing.T) {
	e := newEnclave()
	c := e.Model()

	slow := sim.NewMeter(c)
	e.Syscall(slow, false)
	fast := sim.NewMeter(c)
	e.Syscall(fast, true)

	if slow.Cycles() != c.EnclaveCrossing+c.Syscall {
		t.Errorf("OCALL syscall = %d", slow.Cycles())
	}
	if fast.Cycles() != c.HotCall+c.Syscall {
		t.Errorf("HotCall syscall = %d", fast.Cycles())
	}
	if fast.Cycles() >= slow.Cycles() {
		t.Error("HotCalls must be cheaper than OCALLs")
	}
}

func TestSbrkUntrusted(t *testing.T) {
	e := newEnclave()
	m := sim.NewMeter(e.Model())
	a := e.SbrkUntrusted(m, 1<<20)
	if mem.RegionOf(a) != mem.Untrusted {
		t.Fatal("sbrk returned non-untrusted memory")
	}
	if m.Events(sim.CtrOCall) != 1 || m.Events(sim.CtrSyscall) != 1 {
		t.Fatalf("sbrk must cost one OCALL + one syscall, got %d/%d",
			m.Events(sim.CtrOCall), m.Events(sim.CtrSyscall))
	}
}

func TestAllocTrusted(t *testing.T) {
	e := newEnclave()
	m := sim.NewMeter(e.Model())
	a := e.AllocTrusted(m, 64)
	if mem.RegionOf(a) != mem.Enclave {
		t.Fatal("trusted alloc not in enclave region")
	}
	if m.Events(sim.CtrOCall) != 0 {
		t.Fatal("trusted alloc must not exit the enclave")
	}
}

func TestReadRandDeterministicPerSeed(t *testing.T) {
	e1 := New(Config{Space: mem.NewSpace(mem.Config{EPCBytes: 1 << 20}), Seed: 7})
	e2 := New(Config{Space: mem.NewSpace(mem.Config{EPCBytes: 1 << 20}), Seed: 7})
	e3 := New(Config{Space: mem.NewSpace(mem.Config{EPCBytes: 1 << 20}), Seed: 8})

	a, b, c := make([]byte, 32), make([]byte, 32), make([]byte, 32)
	e1.ReadRand(nil, a)
	e2.ReadRand(nil, b)
	e3.ReadRand(nil, c)
	if !bytes.Equal(a, b) {
		t.Error("same seed must give same DRBG stream")
	}
	if bytes.Equal(a, c) {
		t.Error("different seeds must give different streams")
	}
	// Stream advances.
	d := make([]byte, 32)
	e1.ReadRand(nil, d)
	if bytes.Equal(a, d) {
		t.Error("DRBG repeated output")
	}
	var zero [32]byte
	if bytes.Equal(a, zero[:]) {
		t.Error("DRBG produced zeros")
	}
}

func TestSealUnsealRoundTrip(t *testing.T) {
	e := newEnclave()
	m := sim.NewMeter(e.Model())
	secret := []byte("MAC hashes + master keys")
	blob := e.Seal(m, secret)
	if bytes.Contains(blob, secret) {
		t.Fatal("sealed blob leaks plaintext")
	}
	got, err := e.Unseal(m, blob)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, secret) {
		t.Fatal("round trip mismatch")
	}
}

func TestUnsealRejectsTampering(t *testing.T) {
	e := newEnclave()
	blob := e.Seal(nil, []byte("metadata"))
	for i := 0; i < len(blob); i += 3 {
		bad := append([]byte(nil), blob...)
		bad[i] ^= 0x40
		if _, err := e.Unseal(nil, bad); err == nil {
			t.Fatalf("tampered blob at byte %d accepted", i)
		}
	}
	if _, err := e.Unseal(nil, blob[:10]); !errors.Is(err, ErrSealCorrupt) {
		t.Fatal("truncated blob accepted")
	}
}

func TestSealBindsMeasurement(t *testing.T) {
	space := mem.NewSpace(mem.Config{EPCBytes: 1 << 20})
	good := New(Config{Space: space, Seed: 5, Measurement: [32]byte{1}})
	evil := New(Config{Space: space, Seed: 5, Measurement: [32]byte{2}})
	blob := good.Seal(nil, []byte("secret"))
	if _, err := evil.Unseal(nil, blob); err == nil {
		t.Fatal("enclave with different measurement unsealed the blob")
	}
}

func TestSealNoncesUnique(t *testing.T) {
	e := newEnclave()
	a := e.Seal(nil, []byte("x"))
	b := e.Seal(nil, []byte("x"))
	if bytes.Equal(a, b) {
		t.Fatal("two seals of identical plaintext produced identical blobs")
	}
}

func TestMonotonicCounter(t *testing.T) {
	e := newEnclave()
	m := sim.NewMeter(e.Model())
	id := e.CreateMonotonicCounter()

	v, err := e.ReadMonotonicCounter(id)
	if err != nil || v != 0 {
		t.Fatalf("fresh counter = %d, %v", v, err)
	}
	for want := uint64(1); want <= 3; want++ {
		v, err = e.IncrementMonotonicCounter(m, id)
		if err != nil || v != want {
			t.Fatalf("increment -> %d, %v; want %d", v, err, want)
		}
	}
	if m.Events(sim.CtrMonotonicInc) != 3 {
		t.Fatal("increments not counted")
	}
	// Increments are expensive — that is the §7 point.
	if m.Cycles() < 3*e.Model().MonotonicCounterInc {
		t.Fatal("monotonic increments must be slow")
	}
	if _, err := e.IncrementMonotonicCounter(m, 999); !errors.Is(err, ErrCounterWrongID) {
		t.Fatal("unknown counter id accepted")
	}
	if _, err := e.ReadMonotonicCounter(999); !errors.Is(err, ErrCounterWrongID) {
		t.Fatal("unknown counter id accepted by read")
	}
}

func TestQuoteVerify(t *testing.T) {
	e := newEnclave()
	report := []byte("client-nonce||server-pubkey")
	quote := e.Quote(report)

	got, err := e.VerifyQuote(quote, e.Measurement())
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, report) {
		t.Fatal("report data mismatch")
	}

	// Wrong expected measurement fails.
	var wrong [32]byte
	wrong[0] = 0xFF
	if _, err := e.VerifyQuote(quote, wrong); err == nil {
		t.Fatal("quote accepted for wrong measurement")
	}
	// Tampered report data fails.
	bad := append([]byte(nil), quote...)
	bad[len(bad)-1] ^= 1
	if _, err := e.VerifyQuote(bad, e.Measurement()); err == nil {
		t.Fatal("tampered quote accepted")
	}
	// Truncated quote fails.
	if _, err := e.VerifyQuote(quote[:32], e.Measurement()); err == nil {
		t.Fatal("truncated quote accepted")
	}
}

// Property: seal/unseal round-trips arbitrary payloads.
func TestSealProperty(t *testing.T) {
	e := newEnclave()
	f := func(data []byte) bool {
		got, err := e.Unseal(nil, e.Seal(nil, data))
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMonotonicCounterSurvivesRestart(t *testing.T) {
	path := filepath.Join(t.TempDir(), "nvram.bin")
	space := mem.NewSpace(mem.Config{EPCBytes: 1 << 20})
	e1 := New(Config{Space: space, Seed: 1, CounterPath: path})
	const id = 0xC0FFEE
	if v := e1.EnsureMonotonicCounter(id); v != 0 {
		t.Fatalf("fresh counter = %d", v)
	}
	for i := 0; i < 3; i++ {
		if _, err := e1.IncrementMonotonicCounter(nil, id); err != nil {
			t.Fatal(err)
		}
	}
	// "Restart": fresh enclave instance, same platform storage.
	e2 := New(Config{Space: space, Seed: 1, CounterPath: path})
	if v := e2.EnsureMonotonicCounter(id); v != 3 {
		t.Fatalf("counter after restart = %d, want 3", v)
	}
	v, err := e2.ReadMonotonicCounter(id)
	if err != nil || v != 3 {
		t.Fatalf("counter after restart = %d, %v; want 3", v, err)
	}
}
