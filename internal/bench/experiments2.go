package bench

import (
	"fmt"

	"shieldstore/internal/baseline"
	"shieldstore/internal/core"
	"shieldstore/internal/sim"
	"shieldstore/internal/workload"
)

// system identifies one of the compared key-value stores.
type system int

const (
	sysMemcachedGraphene system = iota
	sysBaseline
	sysShieldBase
	sysShieldOpt
	sysInsecureMemcached
	sysInsecureBaseline
)

func (s system) String() string {
	switch s {
	case sysMemcachedGraphene:
		return "Memcached+graphene"
	case sysBaseline:
		return "Baseline"
	case sysShieldBase:
		return "ShieldBase"
	case sysShieldOpt:
		return "ShieldOpt"
	case sysInsecureMemcached:
		return "Insecure Memcached"
	case sysInsecureBaseline:
		return "Insecure Baseline"
	default:
		return "?"
	}
}

// sysRunner executes workloads against one built-and-preloaded system.
type sysRunner struct {
	sys system
	run func(spec workload.Spec, ops int, nc netCost) (float64, sim.Stats)
}

// buildSystem constructs and preloads one system on a fresh machine.
func buildSystem(cfg Config, sys system, threads, nKeys, valSize int) sysRunner {
	m := cfg.newMachine()
	switch sys {
	case sysShieldBase, sysShieldOpt:
		mods := []shieldVariant{}
		if sys == sysShieldBase {
			mods = append(mods, shieldBase)
		}
		p := buildShield(m, threads, cfg.buckets(), cfg.macHashes(), mods...)
		if err := preloadShield(p, nKeys, valSize); err != nil {
			panic(err)
		}
		return sysRunner{sys: sys, run: func(spec workload.Spec, ops int, nc netCost) (float64, sim.Stats) {
			return runShield(cfg, p, spec, nKeys, valSize, ops, nc)
		}}
	default:
		variant := map[system]baseline.Variant{
			sysMemcachedGraphene: baseline.MemcachedGraphene,
			sysBaseline:          baseline.NaiveSGX,
			sysInsecureMemcached: baseline.MemcachedInsecure,
			sysInsecureBaseline:  baseline.Insecure,
		}[sys]
		s := buildBaseline(m, variant, cfg.buckets())
		if err := preloadBaseline(s, m, nKeys, valSize); err != nil {
			panic(err)
		}
		return sysRunner{sys: sys, run: func(spec workload.Spec, ops int, nc netCost) (float64, sim.Stats) {
			return runBaseline(cfg, m, s, spec, nKeys, valSize, ops, threads, nc)
		}}
	}
}

// avgOverWorkloads runs every Table 2 workload and averages Kop/s.
func (r sysRunner) avgOverWorkloads(ops int, nc netCost) float64 {
	per := max(500, ops/len(workload.Table2))
	total := 0.0
	for _, spec := range workload.Table2 {
		kops, _ := r.run(spec, per, nc)
		total += kops
	}
	return total / float64(len(workload.Table2))
}

// Fig10 reproduces Figure 10: overall throughput normalized to the
// baseline, across data sizes and 1/4 threads.
func Fig10(cfg Config) Result {
	cfg = cfg.Defaults()
	res := Result{
		ID:    "fig10",
		Title: "Overall performance normalized to Baseline (avg over Table 2 workloads)",
		Header: []string{"threads", "dataset", "Memcached+graphene", "Baseline",
			"ShieldBase", "ShieldOpt"},
		Notes: []string{
			"paper: ShieldBase 7-10x / ShieldOpt 8-11x at 1 thread;",
			"       21-26x / 24-30x at 4 threads; memcached+graphene ~Baseline",
		},
	}
	systems := []system{sysMemcachedGraphene, sysBaseline, sysShieldBase, sysShieldOpt}
	for _, threads := range []int{1, 4} {
		for _, ds := range workload.Table3 {
			vals := map[system]float64{}
			for _, sys := range systems {
				r := buildSystem(cfg, sys, threads, cfg.keys(), ds.ValSize)
				vals[sys] = r.avgOverWorkloads(cfg.Ops, netCost{})
			}
			base := vals[sysBaseline]
			row := []string{fmt.Sprintf("%d", threads), ds.Name}
			for _, sys := range systems {
				row = append(row, f2s(vals[sys]/base))
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

// Fig11 reproduces Figure 11: per-workload throughput with the large
// data set (1 thread).
func Fig11(cfg Config) Result {
	cfg = cfg.Defaults()
	ds := workload.Table3[2] // large
	res := Result{
		ID:    "fig11",
		Title: "Throughput per workload, large data set, 1 thread (Kop/s)",
		Header: []string{"workload", "Memcached+graphene", "Baseline",
			"ShieldBase", "ShieldOpt", "opt/base"},
		Notes: []string{
			"paper: ~7.3x on RD50, rising to ~11x on RD95/RD100",
		},
	}
	systems := []system{sysMemcachedGraphene, sysBaseline, sysShieldBase, sysShieldOpt}
	runners := make([]sysRunner, len(systems))
	for i, sys := range systems {
		runners[i] = buildSystem(cfg, sys, 1, cfg.keys(), ds.ValSize)
	}
	for _, spec := range workload.Table2 {
		row := []string{spec.Name}
		var baseV, optV float64
		for i, r := range runners {
			kops, _ := r.run(spec, cfg.Ops, netCost{})
			row = append(row, f1(kops))
			if systems[i] == sysBaseline {
				baseV = kops
			}
			if systems[i] == sysShieldOpt {
				optV = kops
			}
		}
		row = append(row, f1(optV/baseV))
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Fig12 reproduces Figure 12: append-operation throughput across mixes
// and distributions.
func Fig12(cfg Config) Result {
	cfg = cfg.Defaults()
	ds := workload.Table3[2] // large
	res := Result{
		ID:    "fig12",
		Title: "Append operations (Kop/s, 1 thread)",
		Header: []string{"mix", "Memcached+graphene", "Baseline",
			"ShieldBase", "ShieldOpt", "opt/base"},
		Notes: []string{
			"paper: 1.7-16x over baseline; smaller gap under zipfian",
			"(appends grow hot values, so crypto on large values dominates)",
		},
	}
	systems := []system{sysMemcachedGraphene, sysBaseline, sysShieldBase, sysShieldOpt}
	for _, spec := range workload.AppendSpecs {
		row := []string{spec.Name}
		var baseV, optV float64
		for _, sys := range systems {
			// Fresh preload per mix: append mutates value sizes.
			r := buildSystem(cfg, sys, 1, cfg.keys(), ds.ValSize)
			kops, _ := r.run(spec, cfg.Ops, netCost{})
			row = append(row, f1(kops))
			if sys == sysBaseline {
				baseV = kops
			}
			if sys == sysShieldOpt {
				optV = kops
			}
		}
		row = append(row, f1(optV/baseV))
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Fig13 reproduces Figure 13: thread scalability of the three systems
// (large data set, per workload).
func Fig13(cfg Config) Result {
	cfg = cfg.Defaults()
	ds := workload.Table3[2]
	res := Result{
		ID:     "fig13",
		Title:  "Scalability from 1 to 4 threads, large data set (Kop/s)",
		Header: []string{"system", "workload", "1thr", "2thr", "3thr", "4thr", "4/1"},
		Notes: []string{
			"paper: ShieldOpt scales ~linearly (330 -> 1250 Kop/s);",
			"       Baseline and Memcached+graphene gain nothing past 2 threads",
		},
	}
	specs := []string{"RD50_Z", "RD95_Z", "RD100_Z", "RD95_U"}
	for _, sys := range []system{sysMemcachedGraphene, sysBaseline, sysShieldOpt} {
		for _, name := range specs {
			spec, _ := workload.ByName(name)
			row := []string{sys.String(), name}
			var first, last float64
			for threads := 1; threads <= 4; threads++ {
				r := buildSystem(cfg, sys, threads, cfg.keys(), ds.ValSize)
				kops, _ := r.run(spec, cfg.Ops, netCost{})
				if threads == 1 {
					first = kops
				}
				last = kops
				row = append(row, f1(kops))
			}
			row = append(row, f2s(last/first))
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

// Fig14 reproduces Figure 14: the cumulative effect of the §5
// optimizations under four bucket/key-count configurations (chain lengths
// 1.25 to 40).
func Fig14(cfg Config) Result {
	cfg = cfg.Defaults()
	ds := workload.Table3[2] // large
	res := Result{
		ID:     "fig14",
		Title:  "Effect of optimizations (Kop/s, large values, 1 thread)",
		Header: []string{"buckets", "entries", "workload", "ShieldBase", "+KeyOPT", "+HeapAlloc", "+MACBucket"},
		Notes: []string{
			"paper: negligible gains at chain 1.25; KeyOPT and MACBucket",
			"       dominate as chains grow (up to 40)",
		},
	}
	type variantSet struct {
		name string
		mods []shieldVariant
	}
	variants := []variantSet{
		{"ShieldBase", []shieldVariant{shieldBase}},
		{"+KeyOPT", []shieldVariant{shieldBase, withKeyHint}},
		{"+HeapAlloc", []shieldVariant{shieldBase, withKeyHint, withExtraHeap}},
		{"+MACBucket", []shieldVariant{shieldBase, withKeyHint, withExtraHeap, withMACBucket}},
	}
	configs := []struct {
		bucketsM float64
		entriesM float64
	}{
		{8, 10}, {8, 40}, {1, 10}, {1, 40},
	}
	specs := []string{"RD50_Z", "RD95_Z", "RD100_Z"}
	for _, cc := range configs {
		buckets := max(64, int(cc.bucketsM*1e6)/cfg.Scale)
		entries := max(128, int(cc.entriesM*1e6)/cfg.Scale)
		// One build+preload per variant, reused across the 3 workloads.
		kops := map[string]map[string]float64{}
		for _, v := range variants {
			m := cfg.newMachine()
			p := buildShield(m, 1, buckets, max(32, buckets/2), v.mods...)
			if err := preloadShield(p, entries, ds.ValSize); err != nil {
				panic(err)
			}
			kops[v.name] = map[string]float64{}
			for _, name := range specs {
				spec, _ := workload.ByName(name)
				k, _ := runShield(cfg, p, spec, entries, ds.ValSize, cfg.Ops/2, netCost{})
				kops[v.name][name] = k
			}
		}
		for _, name := range specs {
			row := []string{
				fmt.Sprintf("%gM", cc.bucketsM),
				fmt.Sprintf("%gM", cc.entriesM),
				name,
			}
			for _, v := range variants {
				row = append(row, f1(kops[v.name][name]))
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

// Fig15 reproduces Figure 15: the MAC-hash count trade-off — more
// in-enclave hashes shrink bucket sets (faster verification) until the
// array itself overflows the EPC.
func Fig15(cfg Config) Result {
	cfg = cfg.Defaults()
	spec, _ := workload.ByName("RD95_Z")
	res := Result{
		ID:     "fig15",
		Title:  "Throughput vs number of MAC hashes (8M buckets)",
		Header: []string{"mac_hashes", "epc_footprint", "Small", "Medium", "Large"},
		Notes: []string{
			"paper: rising 1M->4M (+5-14%), collapsing at 8M (128MB > EPC)",
		},
	}
	buckets := max(64, 8_000_000/cfg.Scale)
	for _, hashesM := range []int{1, 2, 4, 8} {
		hashes := max(32, hashesM*1_000_000/cfg.Scale)
		if hashes > buckets {
			hashes = buckets
		}
		row := []string{
			fmt.Sprintf("%dM", hashesM),
			fmtBytes(int64(hashes) * 16),
		}
		for _, ds := range workload.Table3 {
			m := cfg.newMachine()
			p := buildShield(m, 1, buckets, hashes)
			if err := preloadShield(p, cfg.keys(), ds.ValSize); err != nil {
				panic(err)
			}
			kops, _ := runShield(cfg, p, spec, cfg.keys(), ds.ValSize, cfg.Ops/2, netCost{})
			row = append(row, f1(kops))
		}
		res.Rows = append(res.Rows, row)
	}
	return res
}

var _ = core.Defaults // keep core import for shieldVariant mods
