package bench

import (
	"fmt"
	"shieldstore/internal/sim"
	"strconv"
	"strings"
	"testing"

	"shieldstore/internal/workload"
)

// quick returns a configuration small enough for unit tests while keeping
// every working-set/EPC ratio.
func quick() Config {
	return Config{Scale: 500, Ops: 6000, Seed: 42}.Defaults()
}

// cell parses a numeric table cell.
func cell(t *testing.T, r Result, row, col int) float64 {
	t.Helper()
	if row >= len(r.Rows) || col >= len(r.Rows[row]) {
		t.Fatalf("%s: no cell (%d,%d)", r.ID, row, col)
	}
	s := strings.TrimSuffix(r.Rows[row][col], "%")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("%s: cell (%d,%d) = %q not numeric", r.ID, row, col, r.Rows[row][col])
	}
	return v
}

func colIndex(t *testing.T, r Result, name string) int {
	t.Helper()
	for i, h := range r.Header {
		if h == name {
			return i
		}
	}
	t.Fatalf("%s: no column %q in %v", r.ID, name, r.Header)
	return -1
}

func TestConfigDefaults(t *testing.T) {
	cfg := Config{}.Defaults()
	if cfg.Scale != 200 || cfg.Ops != 20000 || cfg.Seed != 42 {
		t.Fatalf("defaults: %+v", cfg)
	}
	if cfg.keys() != paperKeys/200 {
		t.Fatalf("keys = %d", cfg.keys())
	}
	if cfg.epcBytes() != paperEPC/200 {
		t.Fatalf("epc = %d", cfg.epcBytes())
	}
	// Floors hold at absurd scales.
	tiny := Config{Scale: 1 << 30}.Defaults()
	if tiny.keys() < 256 || tiny.buckets() < 64 || tiny.epcBytes() < 64<<10 {
		t.Fatal("scale floors violated")
	}
}

func TestResultFormat(t *testing.T) {
	r := Result{
		ID: "x", Title: "t",
		Header: []string{"a", "bbbb"},
		Rows:   [][]string{{"1", "2"}},
		Notes:  []string{"n"},
	}
	out := r.Format()
	for _, want := range []string{"=== x: t ===", "a", "bbbb", "note: n"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"table1", "fig2", "fig3", "fig6", "fig9", "fig10", "fig11",
		"fig12", "fig13", "fig14", "fig15", "fig16", "fig17", "fig18", "fig19",
		"batch", "dispatch", "cluster", "vlog", "failover", "ctl"}
	if len(All) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(All), len(want))
	}
	for i, id := range want {
		if All[i].ID != id {
			t.Errorf("All[%d] = %s, want %s", i, All[i].ID, id)
		}
		if _, ok := ByID(id); !ok {
			t.Errorf("ByID(%s) missing", id)
		}
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID accepted unknown id")
	}
}

func TestRunShieldDeterministic(t *testing.T) {
	cfg := quick()
	run := func() (float64, uint64) {
		m := cfg.newMachine()
		p := buildShield(m, 4, cfg.buckets(), cfg.macHashes())
		if err := preloadShield(p, cfg.keys(), 16); err != nil {
			t.Fatal(err)
		}
		spec, _ := workload.ByName("RD95_Z")
		kops, stats := runShield(cfg, p, spec, cfg.keys(), 16, 2000, netCost{})
		return kops, stats.Cycles
	}
	k1, c1 := run()
	k2, c2 := run()
	if k1 != k2 || c1 != c2 {
		t.Fatalf("runs diverged: %v/%v vs %v/%v", k1, c1, k2, c2)
	}
}

// --- shape assertions: the paper's qualitative results must hold ---

func TestShapeTable1(t *testing.T) {
	r := Table1(quick())
	mem1, base1 := cell(t, r, 0, 1), cell(t, r, 0, 2)
	mem4, base4 := cell(t, r, 1, 1), cell(t, r, 1, 2)
	// memcached and baseline within 15% of each other.
	if ratio := mem1 / base1; ratio < 0.85 || ratio > 1.15 {
		t.Errorf("1-thread memcached/baseline = %.2f, want ~1", ratio)
	}
	// Both scale with threads.
	if mem4 < 2*mem1 || base4 < 2*base1 {
		t.Errorf("no thread scaling: %v->%v / %v->%v", mem1, mem4, base1, base4)
	}
}

func TestShapeFig2(t *testing.T) {
	r := Fig2(quick())
	rdN := colIndex(t, r, "rd_nosgx")
	rdE := colIndex(t, r, "rd_enclave")
	rdU := colIndex(t, r, "rd_unprot")
	first, last := 0, len(r.Rows)-1
	// Below EPC: enclave ~5.7x NoSGX.
	ratio := cell(t, r, first, rdE) / cell(t, r, first, rdN)
	if ratio < 4 || ratio > 8 {
		t.Errorf("below-EPC enclave ratio = %.1f, want ~5.7", ratio)
	}
	// At 4GB: enclave orders of magnitude worse.
	ratio = cell(t, r, last, rdE) / cell(t, r, last, rdN)
	if ratio < 50 {
		t.Errorf("4GB enclave ratio = %.1f, want >>50", ratio)
	}
	// Unprotected flat at NoSGX level everywhere.
	for i := range r.Rows {
		if u := cell(t, r, i, rdU) / cell(t, r, i, rdN); u > 1.5 {
			t.Errorf("row %d: unprotected %.1fx NoSGX", i, u)
		}
	}
}

func TestShapeFig3(t *testing.T) {
	r := Fig3(quick())
	sd := colIndex(t, r, "slowdown")
	// Slowdown grows with DB size and exceeds 20x at the largest.
	firstSlow := cell(t, r, 0, sd)
	lastSlow := cell(t, r, len(r.Rows)-1, sd)
	if lastSlow < 20 {
		t.Errorf("4GB slowdown = %.1f, want >20 (paper 134x)", lastSlow)
	}
	if lastSlow < 3*firstSlow {
		t.Errorf("slowdown must grow: %.1f -> %.1f", firstSlow, lastSlow)
	}
}

func TestShapeFig6(t *testing.T) {
	r := Fig6(quick())
	oc := colIndex(t, r, "ocalls")
	prev := cell(t, r, 0, oc)
	for i := 1; i < len(r.Rows); i++ {
		cur := cell(t, r, i, oc)
		if cur >= prev {
			t.Errorf("OCALLs not decreasing: row %d %v >= %v", i, cur, prev)
		}
		prev = cur
	}
	if first, last := cell(t, r, 0, oc), prev; first < 8*last {
		t.Errorf("32x chunk growth cut OCALLs only %.1fx", first/last)
	}
}

func TestShapeFig9(t *testing.T) {
	r := Fig9(quick())
	red := colIndex(t, r, "reduction")
	at1M := cell(t, r, 0, red)
	at8M := cell(t, r, 1, red)
	if at1M < 2 {
		t.Errorf("1M-bucket hint reduction = %.1f, want >2", at1M)
	}
	if at8M >= at1M {
		t.Errorf("reduction should shrink with more buckets: %.1f vs %.1f", at8M, at1M)
	}
}

func TestShapeFig10(t *testing.T) {
	r := Fig10(quick())
	base := colIndex(t, r, "Baseline")
	opt := colIndex(t, r, "ShieldOpt")
	sbase := colIndex(t, r, "ShieldBase")
	mg := colIndex(t, r, "Memcached+graphene")
	for i := range r.Rows {
		threads := r.Rows[i][0]
		optX := cell(t, r, i, opt)
		sbX := cell(t, r, i, sbase)
		if cell(t, r, i, base) != 1.00 {
			t.Errorf("row %d: baseline not normalized", i)
		}
		if m := cell(t, r, i, mg); m < 0.5 || m > 1.6 {
			t.Errorf("row %d: memcached+graphene = %.2f, want ~baseline", i, m)
		}
		if optX < sbX {
			t.Errorf("row %d: ShieldOpt (%.1fx) below ShieldBase (%.1fx)", i, optX, sbX)
		}
		switch threads {
		case "1":
			if optX < 5 || optX > 25 {
				t.Errorf("1-thread ShieldOpt = %.1fx, paper 8-11x", optX)
			}
		case "4":
			if optX < 15 || optX > 60 {
				t.Errorf("4-thread ShieldOpt = %.1fx, paper 24-30x", optX)
			}
		}
	}
}

func TestShapeFig13(t *testing.T) {
	r := Fig13(quick())
	scaling := colIndex(t, r, "4/1")
	for i := range r.Rows {
		sys := r.Rows[i][0]
		s := cell(t, r, i, scaling)
		switch sys {
		case "ShieldOpt":
			if s < 2.2 {
				t.Errorf("ShieldOpt %s scales only %.2fx", r.Rows[i][1], s)
			}
		default: // Baseline, Memcached+graphene
			if s > 1.8 {
				t.Errorf("%s %s scales %.2fx, should be paging-bound <1.8x", sys, r.Rows[i][1], s)
			}
		}
	}
}

func TestShapeFig15(t *testing.T) {
	r := Fig15(quick())
	for _, ds := range []string{"Small", "Medium", "Large"} {
		c := colIndex(t, r, ds)
		at1M := cell(t, r, 0, c)
		at4M := cell(t, r, 2, c)
		at8M := cell(t, r, 3, c)
		if at4M <= at1M {
			t.Errorf("%s: 4M hashes (%.1f) not faster than 1M (%.1f)", ds, at4M, at1M)
		}
		if at8M >= at4M {
			t.Errorf("%s: 8M hashes (%.1f) should collapse below 4M (%.1f) — EPC overflow", ds, at8M, at4M)
		}
	}
}

func TestShapeFig16(t *testing.T) {
	r := Fig16(quick())
	ratio := colIndex(t, r, "shield/eleos")
	at16 := cell(t, r, 0, ratio)
	at4096 := cell(t, r, len(r.Rows)-1, ratio)
	if at16 < 2 {
		t.Errorf("16B shield/eleos = %.1f, want >2 (paper 40x)", at16)
	}
	if at4096 >= at16 {
		t.Errorf("advantage must shrink with value size: %.1f -> %.1f", at16, at4096)
	}
}

func TestShapeFig17(t *testing.T) {
	r := Fig17(quick())
	el := colIndex(t, r, "Eleos")
	opt := colIndex(t, r, "ShieldOpt")
	// Eleos fails beyond the (scaled) 2GB pool.
	lastRow := len(r.Rows) - 1
	if r.Rows[lastRow][el] != "fail" {
		t.Errorf("Eleos at 8GB = %q, want fail", r.Rows[lastRow][el])
	}
	// ShieldOpt flat: min/max within 25%.
	minV, maxV := 1e18, 0.0
	for i := range r.Rows {
		v := cell(t, r, i, opt)
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if maxV/minV > 1.25 {
		t.Errorf("ShieldOpt not flat across WS: %.1f..%.1f", minV, maxV)
	}
}

func TestShapeFig18(t *testing.T) {
	r := Fig18(quick())
	bhc := colIndex(t, r, "Baseline+HotCalls")
	ohc := colIndex(t, r, "ShieldOpt+HotCalls")
	o := colIndex(t, r, "ShieldOpt")
	ib := colIndex(t, r, "Insec.Baseline")
	for i := range r.Rows {
		shield := cell(t, r, i, ohc)
		baseline := cell(t, r, i, bhc)
		if ratio := shield / baseline; ratio < 3 {
			t.Errorf("row %d: ShieldOpt+HC/Baseline+HC = %.1f, want >3 (paper 4.9-10.7)", i, ratio)
		}
		// HotCalls help.
		if shield <= cell(t, r, i, o) {
			t.Errorf("row %d: HotCalls did not help", i)
		}
		// Insecure is faster, but within ~2-5x (paper 3.0/3.9).
		if gap := cell(t, r, i, ib) / shield; gap < 1.5 || gap > 6 {
			t.Errorf("row %d: insecure/shield = %.1f, paper ~3-4", i, gap)
		}
	}
}

func TestShapeFig19(t *testing.T) {
	r := Fig19(quick())
	nl := colIndex(t, r, "naive_loss")
	ol := colIndex(t, r, "opt_loss")
	for i := range r.Rows {
		naive := cell(t, r, i, nl)
		opt := cell(t, r, i, ol)
		if opt >= naive {
			t.Errorf("row %d: optimized loss (%.1f%%) not below naive (%.1f%%)", i, opt, naive)
		}
		if opt > 12 {
			t.Errorf("row %d: optimized loss %.1f%%, paper 2-6.5%%", i, opt)
		}
	}
	// Naive loss grows with data size: compare small vs large RD50_Z rows.
	if small, large := cell(t, r, 0, nl), cell(t, r, 6, nl); large <= small {
		t.Errorf("naive loss should grow with size: %.1f%% -> %.1f%%", small, large)
	}
}

func TestShapeFig11(t *testing.T) {
	r := Fig11(quick())
	ratio := colIndex(t, r, "opt/base")
	byName := map[string]float64{}
	for i := range r.Rows {
		byName[r.Rows[i][0]] = cell(t, r, i, ratio)
	}
	// Improvement rises with read share (paper: 7.3x RD50 -> 11x RD100).
	if byName["RD100_Z"] <= byName["RD50_Z"] {
		t.Errorf("zipf improvement should rise with reads: RD50 %.1f vs RD100 %.1f",
			byName["RD50_Z"], byName["RD100_Z"])
	}
	for wl, x := range byName {
		if x < 4 || x > 40 {
			t.Errorf("%s: opt/base = %.1f, paper 7.3-11x", wl, x)
		}
	}
}

func TestShapeFig12(t *testing.T) {
	r := Fig12(quick())
	ratio := colIndex(t, r, "opt/base")
	var z99, uni float64
	for i := range r.Rows {
		x := cell(t, r, i, ratio)
		if x < 1.5 {
			t.Errorf("%s: append improvement %.1f, paper 1.7-16x", r.Rows[i][0], x)
		}
		switch r.Rows[i][0] {
		case "RD95AP5_Z99":
			z99 = x
		case "RD95AP5_U":
			uni = x
		}
	}
	// Paper: smaller gap under zipfian (hot values grow, crypto dominates).
	if z99 >= uni {
		t.Errorf("zipfian append gap (%.1f) should be below uniform (%.1f)", z99, uni)
	}
}

func TestShapeFig14(t *testing.T) {
	r := Fig14(quick())
	base := colIndex(t, r, "ShieldBase")
	full := colIndex(t, r, "+MACBucket")
	// Optimizations are cumulative: the full stack never loses to bare
	// ShieldBase, and at the longest chains (1M buckets / 40M keys) the
	// gain is large.
	var shortGain, longGain float64
	for i := range r.Rows {
		g := cell(t, r, i, full) / cell(t, r, i, base)
		if g < 0.95 {
			t.Errorf("row %d: optimizations lost ground (%.2fx)", i, g)
		}
		if r.Rows[i][0] == "8M" && r.Rows[i][1] == "10M" {
			shortGain = g
		}
		if r.Rows[i][0] == "1M" && r.Rows[i][1] == "40M" {
			longGain = g
		}
	}
	if longGain < 2*shortGain {
		t.Errorf("long-chain gain (%.1fx) should dwarf short-chain gain (%.1fx)", longGain, shortGain)
	}
}

func TestShapeBatch(t *testing.T) {
	r := BatchExp(quick())
	sp := colIndex(t, r, "speedup")
	var z32, z128, u32 float64
	for i := range r.Rows {
		dist, batch := r.Rows[i][0], r.Rows[i][1]
		s := cell(t, r, i, sp)
		if batch == "1" && s != 1.00 {
			t.Errorf("%s batch=1 speedup = %.2f, want 1.00", dist, s)
		}
		if batch != "1" && s <= 1.0 {
			t.Errorf("%s batch=%s: batching slower than per-op (%.2fx)", dist, batch, s)
		}
		switch {
		case dist == "zipf99" && batch == "32":
			z32 = s
		case dist == "zipf99" && batch == "128":
			z128 = s
		case dist == "uniform" && batch == "32":
			u32 = s
		}
	}
	// The acceptance bar: batch=32 zipfian sets at least 1.5x over the
	// per-op loop.
	if z32 < 1.5 {
		t.Errorf("zipf99 batch=32 speedup = %.2f, want >= 1.5", z32)
	}
	// Skew concentrates batches on hot sets, so zipfian beats uniform, and
	// bigger batches amortize more.
	if z32 <= u32 {
		t.Errorf("zipf99 batch=32 (%.2fx) should beat uniform (%.2fx)", z32, u32)
	}
	if z128 <= z32 {
		t.Errorf("speedup should grow with batch: 32 -> %.2fx, 128 -> %.2fx", z32, z128)
	}
}

func TestNetCostPaths(t *testing.T) {
	cfg := quick()
	m := cfg.newMachine()
	cost := func(nc netCost) uint64 {
		meter := sim.NewMeter(m.model)
		nc.charge(m.enclave, meter)
		return meter.Cycles()
	}
	nosgx := cost(netFor(64, false, true, false, false))
	hot := cost(netFor(64, true, false, false, true))
	ocall := cost(netFor(64, false, false, false, true))
	libos := cost(netFor(64, false, false, true, false))
	if !(nosgx < hot && hot < ocall) {
		t.Errorf("ordering broken: nosgx=%d hot=%d ocall=%d", nosgx, hot, ocall)
	}
	if libos <= ocall {
		t.Errorf("libOS path (%d) should cost more than plain OCALL path (%d)", libos, ocall)
	}
	if cost(netCost{}) != 0 {
		t.Error("disabled netCost charged cycles")
	}
}

// TestClusterExpScalesAndIsDeterministic: the shard-scaling sweep must
// show genuine scale-out even at a tiny test configuration (the
// committed BENCH_cluster.json is produced at default scale, where the
// acceptance bar is 3x at 4 shards), emit its metrics under stable
// names, and — like every virtual-time experiment — be bit-reproducible.
func TestClusterExpScalesAndIsDeterministic(t *testing.T) {
	cfg := Config{Scale: 2000, Ops: 3000, Seed: 42}
	res := ClusterExp(cfg)
	if res.ID != "cluster" || len(res.Rows) != 2*len(clusterShardSweep) {
		t.Fatalf("unexpected shape: id=%s rows=%d", res.ID, len(res.Rows))
	}
	for _, wl := range []string{"RD100_Z", "RD95_Z"} {
		for _, shards := range clusterShardSweep {
			for _, metric := range []string{"kops", "speedup", "p50_us", "p99_us"} {
				key := fmt.Sprintf("%s/shards=%d/%s", wl, shards, metric)
				if v, ok := res.Metrics[key]; !ok || v <= 0 {
					t.Fatalf("metric %s missing or non-positive (%v)", key, v)
				}
			}
		}
	}
	if sp := res.Metrics["RD100_Z/shards=4/speedup"]; sp < 1.8 {
		t.Fatalf("4-shard zipfian get speedup = %.2f, want >= 1.8 at test scale", sp)
	}
	if res.Metrics["RD100_Z/shards=8/kops"] <= res.Metrics["RD100_Z/shards=2/kops"] {
		t.Fatal("8 shards should out-serve 2 shards")
	}
	again := ClusterExp(cfg)
	for k, v := range res.Metrics {
		if again.Metrics[k] != v {
			t.Fatalf("non-deterministic metric %s: %v vs %v", k, v, again.Metrics[k])
		}
	}
}
