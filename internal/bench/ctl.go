// The control-plane experiment (DESIGN.md §17): what supervisor-
// orchestrated failover costs relative to PR-8-style client-decided
// failover, on the real wire. Client-decided failover reacts on the
// first failed op (one connection error, one promote, one retry);
// orchestrated failover must first *detect* the death — DownAfter
// consecutive probe misses — before promoting, so its blackout carries
// the detection window but buys convergence (every client moves to one
// published view, no promote races) and automatic re-protection. The
// experiment reports both blackouts plus the time from kill to the
// shard being protected again behind a freshly attached spare. As in
// the failover experiment, integrity is asserted, not sampled: every
// acknowledged write is read back after each disruption.
package bench

import (
	"fmt"
	"time"

	"shieldstore/internal/cluster"
	"shieldstore/internal/ctl"
)

// CtlExp generates the orchestrated-failover timing table (the -run ctl
// experiment; CI's ctl-chaos-soak job emits BENCH_ctl.json from it).
func CtlExp(cfg Config) Result {
	cfg = cfg.Defaults()
	ops := max(500, cfg.Ops/10)
	res := Result{
		ID:     "ctl",
		Title:  "Control plane: orchestrated vs client-decided failover (real wire)",
		Header: []string{"scenario", "ops", "wall_ms", "Kop/s", "detail"},
		Notes: []string{
			"wall-clock over loopback TCP with secure channels; orchestrated",
			"blackout includes the supervisor's detection window (DownAfter",
			"consecutive probe misses) before promote + topology publish",
		},
		Metrics: map[string]float64{},
	}

	clientDecidedBlackout(cfg, &res, ops)
	orchestratedFailover(cfg, &res, ops)
	return res
}

// clientDecidedBlackout is the PR-8 baseline: no supervisor, the client
// promotes on the first failover-class error.
func clientDecidedBlackout(cfg Config, res *Result, ops int) {
	h := harnessFor(cfg, true)
	defer h.Close()
	c := dialCluster(h)
	defer c.Close()
	loadOps(c, "b", ops)

	probe := probeKeyFor(c, 0)
	h.KillPrimary(0)
	start := time.Now()
	if err := c.Set([]byte(probe), []byte("post")); err != nil {
		panic(fmt.Sprintf("bench ctl: client-decided post-kill write: %v", err))
	}
	blackout := time.Since(start)
	verifyOps(c, "b", ops)
	res.Rows = append(res.Rows, []string{
		"failover/client-decided", "1", f1(blackout.Seconds() * 1e3), "-",
		"promote on first error + retry (no supervisor)",
	})
	res.Metrics["client_decided_blackout_ms"] = blackout.Seconds() * 1e3
}

// orchestratedFailover runs the same kill under a supervisor: blackout
// is kill -> first write acknowledged via the supervisor-published
// topology; re-protection is kill -> shard protected again behind an
// attached spare that caught up.
func orchestratedFailover(cfg Config, res *Result, ops int) {
	h := harnessFor(cfg, true)
	defer h.Close()

	scfg := ctl.Config{
		ProbeInterval: 10 * time.Millisecond,
		DownAfter:     3,
		UpAfter:       2,
		SpawnSpare: func(shard int) (ctl.Node, error) {
			sp, err := h.StartSpare(shard)
			if err != nil {
				return ctl.Node{}, err
			}
			return ctl.Node{Addr: sp.Addr, Link: h.ClientOptionsFor(sp)}, nil
		},
	}
	for i := 0; i < h.Shards(); i++ {
		s := h.Shard(i)
		sc := ctl.ShardConfig{Primary: ctl.Node{Addr: s.Addr, Link: h.ClientOptionsFor(s)}}
		if s.Replica != nil {
			sc.Replica = ctl.Node{Addr: s.Replica.Addr, Link: h.ClientOptionsFor(s.Replica)}
		}
		scfg.Shards = append(scfg.Shards, sc)
	}
	sup, err := ctl.Start(scfg)
	if err != nil {
		panic(fmt.Sprintf("bench ctl: supervisor: %v", err))
	}
	defer sup.Close()

	opts := h.Options()
	opts.Supervisor = sup.Addr()
	opts.FailoverWait = 30 * time.Second
	c, err := cluster.Dial(opts)
	if err != nil {
		panic(fmt.Sprintf("bench ctl: dial: %v", err))
	}
	defer c.Close()
	loadOps(c, "o", ops)

	probe := probeKeyFor(c, 0)
	h.KillPrimary(0)
	kill := time.Now()
	if err := c.Set([]byte(probe), []byte("post")); err != nil {
		panic(fmt.Sprintf("bench ctl: orchestrated post-kill write: %v", err))
	}
	blackout := time.Since(kill)
	verifyOps(c, "o", ops)

	// Re-protection: spare spawned, attached, caught up — no operator.
	deadline := time.Now().Add(60 * time.Second)
	for i := 0; ; i++ {
		ts := sup.Topology().Shard(0)
		if ts != nil && ts.Protected && ts.Failovers > 0 {
			break
		}
		if time.Now().After(deadline) {
			panic("bench ctl: shard never re-protected")
		}
		// The spare's catch-up flushes inside group commits: drip writes.
		k := fmt.Sprintf("drip-%06d", i)
		if c.ShardFor([]byte(k)) == 0 {
			if err := c.Set([]byte(k), []byte("d")); err != nil {
				panic(fmt.Sprintf("bench ctl: drip write: %v", err))
			}
		}
		time.Sleep(time.Millisecond)
	}
	reprotect := time.Since(kill)

	res.Rows = append(res.Rows, []string{
		"failover/orchestrated", "1", f1(blackout.Seconds() * 1e3), "-",
		"probe-detect + promote + topology publish + client converge",
	})
	res.Rows = append(res.Rows, []string{
		"reprotect/auto", fmt.Sprintf("%d", ops), f1(reprotect.Seconds() * 1e3), "-",
		"kill -> spare spawned, attached, caught up, protected again",
	})
	res.Metrics["orchestrated_blackout_ms"] = blackout.Seconds() * 1e3
	res.Metrics["reprotect_ms"] = reprotect.Seconds() * 1e3
}

// probeKeyFor finds a key routed at shard — the blackout probe.
func probeKeyFor(c *cluster.Client, shard int) string {
	for i := 0; ; i++ {
		k := fmt.Sprintf("probe-%04d", i)
		if c.ShardFor([]byte(k)) == shard {
			return k
		}
	}
}
