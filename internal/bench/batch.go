// The batch-amortization experiment: not a paper figure, but the
// measurement behind this repo's batched execution pipeline (DESIGN.md,
// "Batch amortization"). It sweeps batch size under uniform and zipfian
// 100%-set streams and compares metered cycles per operation against the
// per-op loop.
package bench

import (
	"fmt"

	"shieldstore/internal/core"
	"shieldstore/internal/workload"
)

// BatchExp regenerates the batch-size sweep: per-op loop vs ApplyBatch at
// batch = 1/8/32/128 under uniform and zipfian (theta 0.99) set streams.
func BatchExp(cfg Config) Result {
	cfg = cfg.Defaults()
	res := Result{
		ID:     "batch",
		Title:  "batched execution amortization (100% set, 128B values, 512-key hot working set)",
		Header: []string{"dist", "batch", "per-op cyc/op", "batched cyc/op", "speedup"},
		Notes: []string{
			"one request overhead and one MAC-hash recompute per touched bucket set per batch",
			"zipfian batches concentrate on hot sets, so amortization grows with skew",
		},
	}
	const valSize = 128
	// Batching pays off on hot working sets, where a batch revisits bucket
	// sets: cap the keyspace so a 32-op zipfian batch actually collides.
	// Bucket count and MAC-hash ratio keep the paper's proportions
	// (1.25 keys/bucket, MACHashes = Buckets/2).
	nKeys := min(cfg.keys(), 512)
	buckets := max(64, nKeys*8/10)
	macHashes := max(32, buckets/2)
	ops := cfg.Ops

	for _, d := range []struct {
		name string
		dist workload.Distribution
	}{
		{"uniform", workload.Uniform},
		{"zipf99", workload.Zipf99},
	} {
		spec := workload.Spec{Name: "SET100", ReadPct: 0, Dist: d.dist}
		perOp := runBatchStream(cfg, spec, nKeys, buckets, macHashes, valSize, ops, 1)
		for _, batch := range []int{1, 8, 32, 128} {
			cyc := perOp
			if batch > 1 {
				cyc = runBatchStream(cfg, spec, nKeys, buckets, macHashes, valSize, ops, batch)
			}
			res.Rows = append(res.Rows, []string{
				d.name,
				fmt.Sprintf("%d", batch),
				f1(perOp),
				f1(cyc),
				f2s(perOp / cyc),
			})
		}
	}
	return res
}

// runBatchStream replays a set stream on a fresh single-partition machine,
// grouped into batches of the given size (1 = the plain per-op loop), and
// returns metered cycles per operation.
func runBatchStream(cfg Config, spec workload.Spec, nKeys, buckets, macHashes, valSize, ops, batch int) float64 {
	m := cfg.newMachine()
	p := buildShield(m, 1, buckets, macHashes)
	if err := preloadShield(p, nKeys, valSize); err != nil {
		panic(err)
	}
	gen := workload.NewGen(spec, uint64(nKeys), cfg.Seed)
	s, meter := p.Part(0), p.Meter(0)

	if batch <= 1 {
		for i := 0; i < ops; i++ {
			op := gen.Next()
			_ = s.Set(meter, workload.FormatKey(op.Key), workload.MakeValue(valSize, op.Key))
		}
		return float64(meter.Cycles()) / float64(ops)
	}

	buf := make([]core.BatchOp, 0, batch)
	flush := func() {
		if len(buf) == 0 {
			return
		}
		for _, r := range s.ApplyBatch(meter, buf) {
			if r.Err != nil {
				panic(r.Err)
			}
		}
		buf = buf[:0]
	}
	for i := 0; i < ops; i++ {
		op := gen.Next()
		buf = append(buf, core.BatchOp{
			Kind:  core.BatchSet,
			Key:   workload.FormatKey(op.Key),
			Value: workload.MakeValue(valSize, op.Key),
		})
		if len(buf) == batch {
			flush()
		}
	}
	flush()
	return float64(meter.Cycles()) / float64(ops)
}
