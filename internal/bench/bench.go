// Package bench regenerates every table and figure of the paper's
// evaluation (§6). Each experiment builds the systems involved on a
// fresh simulated machine, preloads the (scaled) data set, replays the
// YCSB-style workloads, and reports throughput and event counts derived
// from the virtual-cycle model.
//
// Scaling: the paper's data sets (10M keys, up to 5.2 GB) and the 90 MB
// effective EPC are divided by Config.Scale together, preserving every
// working-set/EPC ratio, so scaled runs land on the same crossover points.
// Scale=1 reproduces paper-sized runs.
//
//ss:host(experiment harness; drives the simulator from outside the measured machine)
//ss:seals(harness probes write synthetic, non-secret payloads into scratch regions)
package bench

import (
	"fmt"
	"strings"

	"shieldstore/internal/baseline"
	"shieldstore/internal/core"
	"shieldstore/internal/eleos"
	"shieldstore/internal/mem"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
	"shieldstore/internal/workload"
)

// Paper-scale constants (§6.1).
const (
	paperKeys      = 10_000_000
	paperBuckets   = 8_000_000
	paperMACHashes = 4_000_000
	paperEPC       = int64(90) << 20
)

// Config controls experiment scale.
type Config struct {
	// Scale divides key counts, bucket counts and the EPC together.
	// Default 200 (50k keys, ~460 KB EPC): seconds-fast with the paper's
	// shapes intact. Scale 1 is the full paper configuration.
	Scale int
	// Ops is the measured operation count per data point (default 20000).
	Ops int
	// Seed drives workload generation and enclave key material.
	Seed int64
}

// Defaults fills zero fields.
func (c Config) Defaults() Config {
	if c.Scale <= 0 {
		c.Scale = 200
	}
	if c.Ops <= 0 {
		c.Ops = 20_000
	}
	if c.Seed == 0 {
		c.Seed = 42
	}
	return c
}

// keys/buckets/macHashes return paper constants divided by scale.
func (c Config) keys() int      { return max(256, paperKeys/c.Scale) }
func (c Config) buckets() int   { return max(64, paperBuckets/c.Scale) }
func (c Config) macHashes() int { return max(32, paperMACHashes/c.Scale) }
func (c Config) epcBytes() int64 {
	e := paperEPC / int64(c.Scale)
	if e < 64<<10 {
		e = 64 << 10
	}
	return e
}

// Result is one regenerated table or figure. The json tags shape the
// machine-readable output of shieldstore-bench -json.
type Result struct {
	ID     string     `json:"id"`
	Title  string     `json:"title"`
	Header []string   `json:"header"`
	Rows   [][]string `json:"rows"`
	Notes  []string   `json:"notes,omitempty"`
	// Metrics carries key figures (throughputs, speedups, percentiles)
	// under stable names so scripts need not parse the formatted rows.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Format renders the result as an aligned text table.
func (r Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: %s ===\n", r.ID, r.Title)
	widths := make([]int, len(r.Header))
	for i, h := range r.Header {
		widths[i] = len(h)
	}
	for _, row := range r.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], cell)
		}
		b.WriteByte('\n')
	}
	line(r.Header)
	for _, row := range r.Rows {
		line(row)
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// machine bundles one simulated host.
type machine struct {
	space   *mem.Space
	enclave *sgx.Enclave
	model   *sim.CostModel
}

// newMachine builds a host with the scaled EPC.
func (c Config) newMachine() *machine {
	model := sim.DefaultCostModel()
	model.EPCBytes = c.epcBytes()
	space := mem.NewSpace(mem.Config{Model: model})
	enclave := sgx.New(sgx.Config{Space: space, Seed: uint64(c.Seed)})
	return &machine{space: space, enclave: enclave, model: model}
}

// newMachineEPC overrides the EPC (Figure 2/3 sweeps).
func (c Config) newMachineEPC(epc int64) *machine {
	model := sim.DefaultCostModel()
	model.EPCBytes = epc
	space := mem.NewSpace(mem.Config{Model: model})
	enclave := sgx.New(sgx.Config{Space: space, Seed: uint64(c.Seed)})
	return &machine{space: space, enclave: enclave, model: model}
}

// --- ShieldStore driver ---

// shieldVariant tweaks core options for ablations.
type shieldVariant func(*core.Options)

// buildShield creates a partitioned ShieldStore on the machine.
func buildShield(m *machine, threads, buckets, macHashes int, mods ...shieldVariant) *core.Partitioned {
	opts := core.Defaults(buckets)
	opts.MACHashes = macHashes
	for _, mod := range mods {
		mod(&opts)
	}
	return core.NewPartitioned(m.enclave, threads, opts)
}

var (
	shieldBase = func(o *core.Options) {
		o.KeyHint = false
		o.MACBucket = false
		o.ExtraHeap = false
	}
	withKeyHint   = func(o *core.Options) { o.KeyHint = true }
	withExtraHeap = func(o *core.Options) { o.ExtraHeap = true }
	withMACBucket = func(o *core.Options) { o.MACBucket = true }
)

// preloadShield inserts n keys with valSize-byte values.
func preloadShield(p *core.Partitioned, n, valSize int) error {
	loader := sim.NewMeter(p.Part(0).Enclave().Model())
	for id := 0; id < n; id++ {
		key := workload.FormatKey(uint64(id))
		part := p.Route(loader, key)
		if err := p.Part(part).Set(loader, key, workload.MakeValue(valSize, uint64(id))); err != nil {
			return err
		}
	}
	p.ResetMeters()
	p.Part(0).Enclave().Space().ResetPagingClock()
	return nil
}

// netCost describes the synthetic per-operation network path used by the
// networked experiments (Figures 18, 19, Table 1): the server receives
// one request and sends one response per op.
type netCost struct {
	enabled  bool
	hotcalls bool // exitless socket calls
	noSGX    bool // insecure host (no boundary crossing)
	libOS    bool // Graphene syscall multiplier
	secure   bool // session channel crypto
	reqSize  int
	respSize int
}

// charge applies the network path cost to the serving thread's meter.
func (nc netCost) charge(e *sgx.Enclave, m *sim.Meter) {
	if !nc.enabled {
		return
	}
	model := e.Model()
	for _, n := range []int{nc.reqSize, nc.respSize} {
		switch {
		case nc.noSGX:
			m.Charge(model.Syscall)
			m.Count(sim.CtrSyscall)
		case nc.libOS:
			m.Charge(uint64(float64(model.Syscall) * model.LibOSSyscallMult))
			e.Syscall(m, false)
			m.Charge(model.EnclaveIOPerMessage + model.MemCopy(n))
		default:
			e.Syscall(m, nc.hotcalls)
			// Enclave-hosted server: stage the message across the boundary.
			m.Charge(model.EnclaveIOPerMessage + model.MemCopy(n))
		}
		m.Charge(model.NIC(n))
		m.Count(sim.CtrNetMessage)
		if nc.secure {
			m.Charge(model.AES(n) + model.CMAC(n))
		}
	}
}

// runShield replays ops against a partitioned ShieldStore, returning
// Kop/s and the aggregated stats. Ops are pre-routed to partitions and
// executed in parallel, one goroutine per partition (the paper's §5.3
// threading).
func runShield(cfg Config, p *core.Partitioned, spec workload.Spec, nKeys, valSize, ops int, nc netCost) (float64, sim.Stats) {
	gen := workload.NewGen(spec, uint64(nKeys), cfg.Seed)
	routeM := sim.NewMeter(p.Part(0).Enclave().Model())
	queues := make([][]workload.Op, p.Parts())
	for i := 0; i < ops; i++ {
		op := gen.Next()
		part := p.Route(routeM, workload.FormatKey(op.Key))
		queues[part] = append(queues[part], op)
	}
	p.ResetMeters()
	p.Part(0).Enclave().Space().ResetPagingClock()

	// Discrete-event execution: always advance the partition with the
	// smallest virtual clock, so shared timelines (the machine-wide EPC
	// paging path) observe arrivals in virtual-time order. This also makes
	// every run bit-deterministic.
	next := make([]int, p.Parts())
	for {
		t := -1
		for i := 0; i < p.Parts(); i++ {
			if next[i] >= len(queues[i]) {
				continue
			}
			if t < 0 || p.Meter(i).Cycles() < p.Meter(t).Cycles() {
				t = i
			}
		}
		if t < 0 {
			break
		}
		op := queues[t][next[t]]
		next[t]++
		s, m := p.Part(t), p.Meter(t)
		nc.charge(s.Enclave(), m)
		execShield(s, m, op, valSize)
	}
	stats := p.AggregateStats()
	model := p.Part(0).Enclave().Model()
	return sim.KopsPerSec(sim.Throughput(model, uint64(ops), p.MaxCycles())), stats
}

func execShield(s *core.Store, m *sim.Meter, op workload.Op, valSize int) {
	key := workload.FormatKey(op.Key)
	switch op.Kind {
	case workload.Read:
		_, _ = s.Get(m, key)
	case workload.Update, workload.Insert:
		_ = s.Set(m, key, workload.MakeValue(valSize, op.Key))
	case workload.Append:
		_ = s.Append(m, key, []byte("-app8byte"))
	case workload.ReadModifyWrite:
		if v, err := s.Get(m, key); err == nil {
			for i := range v {
				v[i] ^= 0x5A
			}
			_ = s.Set(m, key, v)
		} else {
			_ = s.Set(m, key, workload.MakeValue(valSize, op.Key))
		}
	}
}

// --- baseline driver ---

// buildBaseline creates one of the comparison stores.
func buildBaseline(m *machine, variant baseline.Variant, buckets int) *baseline.Store {
	return baseline.New(m.enclave, baseline.Options{Buckets: buckets, Variant: variant})
}

// preloadBaseline inserts n keys.
func preloadBaseline(s *baseline.Store, m *machine, n, valSize int) error {
	loader := sim.NewMeter(m.model)
	for id := 0; id < n; id++ {
		if err := s.Set(loader, workload.FormatKey(uint64(id)), workload.MakeValue(valSize, uint64(id))); err != nil {
			return err
		}
	}
	return nil
}

// runBaseline replays ops against a shared baseline store with the given
// thread count. Threads contend on the store's global lock and (for
// enclave variants) the machine-wide paging path; because those shared
// clocks require virtual-time-ordered arrivals, the threads are driven by
// a deterministic discrete-event loop that always advances the thread with
// the smallest virtual clock.
func runBaseline(cfg Config, m *machine, s *baseline.Store, spec workload.Spec, nKeys, valSize, ops, threads int, nc netCost) (float64, sim.Stats) {
	gen := workload.NewGen(spec, uint64(nKeys), cfg.Seed)
	queues := make([][]workload.Op, threads)
	for i := 0; i < ops; i++ {
		queues[i%threads] = append(queues[i%threads], gen.Next())
	}
	// Measurement meters restart at zero: rewind the shared timelines the
	// preload advanced.
	s.ResetClock()
	m.space.ResetPagingClock()

	meters := make([]*sim.Meter, threads)
	next := make([]int, threads)
	for t := range meters {
		meters[t] = sim.NewMeter(m.model)
	}
	for remaining := ops; remaining > 0; remaining-- {
		// Advance the thread with the smallest virtual clock that still
		// has work (discrete-event order).
		t := -1
		for i := range meters {
			if next[i] >= len(queues[i]) {
				continue
			}
			if t < 0 || meters[i].Cycles() < meters[t].Cycles() {
				t = i
			}
		}
		if t < 0 {
			break
		}
		op := queues[t][next[t]]
		next[t]++
		nc.charge(m.enclave, meters[t])
		execBaseline(s, meters[t], op, valSize)
	}

	agg := sim.NewMeter(m.model)
	var maxC uint64
	for _, mt := range meters {
		agg.Add(mt)
		if mt.Cycles() > maxC {
			maxC = mt.Cycles()
		}
	}
	stats := agg.Snapshot()
	stats.Cycles = maxC
	return sim.KopsPerSec(sim.Throughput(m.model, uint64(ops), maxC)), stats
}

func execBaseline(s *baseline.Store, m *sim.Meter, op workload.Op, valSize int) {
	key := workload.FormatKey(op.Key)
	switch op.Kind {
	case workload.Read:
		_, _ = s.Get(m, key)
	case workload.Update, workload.Insert:
		_ = s.Set(m, key, workload.MakeValue(valSize, op.Key))
	case workload.Append:
		_ = s.Append(m, key, []byte("-app8byte"))
	case workload.ReadModifyWrite:
		if v, err := s.Get(m, key); err == nil {
			_ = s.Set(m, key, v)
		} else {
			_ = s.Set(m, key, workload.MakeValue(valSize, op.Key))
		}
	}
}

// --- eleos driver ---

// runEleos replays a 100% get stream against an Eleos KV (single thread,
// as in §6.3) and returns Kop/s. Returns ok=false when the data set does
// not fit the pool (the paper's >2 GB failures in Figure 17).
func runEleos(cfg Config, m *machine, pageSize int, poolBytes, cacheBytes int64, buckets, nKeys, valSize, ops int) (float64, bool) {
	kv, err := eleos.NewKV(m.enclave, eleos.PagerConfig{
		PageSize:   pageSize,
		CacheBytes: cacheBytes,
		PoolBytes:  poolBytes,
	}, buckets)
	if err != nil {
		return 0, false
	}
	loader := sim.NewMeter(m.model)
	for id := 0; id < nKeys; id++ {
		if err := kv.Set(loader, workload.FormatKey(uint64(id)), workload.MakeValue(valSize, uint64(id))); err != nil {
			return 0, false // pool exhausted mid-load
		}
	}
	spec := workload.Spec{Name: "GET100_U", ReadPct: 100, Dist: workload.Uniform}
	gen := workload.NewGen(spec, uint64(nKeys), cfg.Seed)
	meter := sim.NewMeter(m.model)
	for i := 0; i < ops; i++ {
		op := gen.Next()
		if _, err := kv.Get(meter, workload.FormatKey(op.Key)); err != nil {
			return 0, false
		}
	}
	return sim.KopsPerSec(sim.Throughput(m.model, uint64(ops), meter.Cycles())), true
}

// --- formatting helpers ---

func f1(v float64) string  { return fmt.Sprintf("%.1f", v) }
func f2s(v float64) string { return fmt.Sprintf("%.2f", v) }

func fmtBytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.1fGB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.0fMB", float64(n)/(1<<20))
	default:
		return fmt.Sprintf("%.0fKB", float64(n)/(1<<10))
	}
}
