package bench

import (
	"fmt"
	"os"

	"shieldstore/internal/core"
	"shieldstore/internal/persist"
	"shieldstore/internal/sim"
	"shieldstore/internal/workload"
)

// eleosPool returns the scaled memsys5 pool ceiling (2 GB at paper scale),
// with a little slack so the boundary data set still fits.
func (c Config) eleosPool() int64 {
	return (2<<30)/int64(c.Scale) + (2<<30)/int64(c.Scale)/8
}

// Fig16 reproduces Figure 16: ShieldStore vs Eleos across value sizes at
// a fixed 500 MB working set (100% gets, 1 thread).
func Fig16(cfg Config) Result {
	cfg = cfg.Defaults()
	res := Result{
		ID:     "fig16",
		Title:  "ShieldStore vs Eleos across value sizes (500MB working set, 100% get)",
		Header: []string{"value", "Eleos", "ShieldOpt", "shield/eleos"},
		Notes: []string{
			"paper: ShieldStore 40x at 16B, 7x at 512B; parity at 1KB-4KB",
			"(page-granularity crypto dominates Eleos for small values)",
		},
	}
	wsBytes := (500 << 20) / cfg.Scale
	getSpec := workload.Spec{Name: "GET100_U", ReadPct: 100, Dist: workload.Uniform}

	for _, valSize := range []int{16, 512, 1024, 4096} {
		entryBytes := 16 + valSize + 16
		nKeys := max(128, wsBytes/entryBytes)
		ops := cfg.Ops / 2

		// Eleos: 4 KB default paging granularity, EPC-sized page cache.
		mE := cfg.newMachine()
		cache := mE.model.EPCBytes * 7 / 10
		eleosKops, ok := runEleos(cfg, mE, 4096, cfg.eleosPool(), cache,
			max(64, cfg.buckets()), nKeys, valSize, ops)
		eleosStr := f1(eleosKops)
		if !ok {
			eleosStr = "fail"
		}

		mS := cfg.newMachine()
		p := buildShield(mS, 1, cfg.buckets(), cfg.macHashes())
		if err := preloadShield(p, nKeys, valSize); err != nil {
			panic(err)
		}
		shieldKops, _ := runShield(cfg, p, getSpec, nKeys, valSize, ops, netCost{})

		ratio := "-"
		if ok && eleosKops > 0 {
			ratio = f1(shieldKops / eleosKops)
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%dB", valSize), eleosStr, f1(shieldKops), ratio,
		})
	}
	return res
}

// Fig17 reproduces Figure 17: ShieldStore vs Eleos across working-set
// sizes at 4 KB values, including the ShieldOpt+cache configuration and
// Eleos's >2 GB failure.
func Fig17(cfg Config) Result {
	cfg = cfg.Defaults()
	res := Result{
		ID:     "fig17",
		Title:  "ShieldStore vs Eleos across working sets (4KB values, 100% get)",
		Header: []string{"ws", "Eleos", "ShieldOpt", "ShieldOpt+cache"},
		Notes: []string{
			"paper: Eleos wins inside EPC, dies past 2GB (memsys5 pools);",
			"       ShieldOpt flat to 8GB; +cache matches Eleos at small WS",
		},
	}
	const valSize = 4096
	entryBytes := 16 + valSize + 16
	getSpec := workload.Spec{Name: "GET100_U", ReadPct: 100, Dist: workload.Uniform}

	for _, wsMB := range []int{32, 64, 128, 256, 512, 1024, 2048, 4096, 8192} {
		wsBytes := (wsMB << 20) / cfg.Scale
		nKeys := max(64, wsBytes/entryBytes)
		ops := cfg.Ops / 3
		buckets := max(64, nKeys) // sized table, chains ~1

		mE := cfg.newMachine()
		cache := mE.model.EPCBytes * 7 / 10
		eleosKops, ok := runEleos(cfg, mE, 4096, cfg.eleosPool(), cache,
			buckets, nKeys, valSize, ops)
		eleosStr := f1(eleosKops)
		if !ok {
			eleosStr = "fail"
		}

		run := func(cacheBytes int64) float64 {
			m := cfg.newMachine()
			p := buildShield(m, 1, buckets, max(32, buckets/2), func(o *core.Options) {
				o.CacheBytes = cacheBytes
			})
			if err := preloadShield(p, nKeys, valSize); err != nil {
				panic(err)
			}
			kops, _ := runShield(cfg, p, getSpec, nKeys, valSize, ops, netCost{})
			return kops
		}
		plain := run(0)
		// +cache: spend the EPC left after MAC hashes on plaintext entries.
		macBytes := int64(max(32, buckets/2)) * 16
		budget := cfg.epcBytes() - macBytes
		if budget < 0 {
			budget = 0
		}
		cached := run(budget * 8 / 10)

		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%dMB", wsMB), eleosStr, f1(plain), f1(cached),
		})
	}
	return res
}

// Fig18 reproduces Figure 18: the networked evaluation across six system
// configurations, 1 and 4 threads, three data sizes. Per-operation
// network costs (socket syscalls through the enclave boundary, NIC, and
// session-channel crypto) are charged to the serving threads.
func Fig18(cfg Config) Result {
	cfg = cfg.Defaults()
	res := Result{
		ID:    "fig18",
		Title: "Networked evaluation (Kop/s, avg over Table 2 workloads)",
		Header: []string{"threads", "dataset", "Memcached+graphene", "Baseline+HotCalls",
			"ShieldOpt", "ShieldOpt+HotCalls", "Insec.Memcached", "Insec.Baseline"},
		Notes: []string{
			"paper: ShieldOpt+HotCalls 4.9-6.4x (1thr) / 9.2-10.7x (4thr) over",
			"       Baseline+HotCalls; 3.0x/3.9x slower than Insecure Baseline",
		},
	}
	type netSys struct {
		sys system
		nc  func(valSize int) netCost
	}
	configs := []netSys{
		{sysMemcachedGraphene, func(v int) netCost { return netFor(v, false, false, true, false) }},
		{sysBaseline, func(v int) netCost { return netFor(v, true, false, false, true) }},
		{sysShieldOpt, func(v int) netCost { return netFor(v, false, false, false, true) }},
		{sysShieldOpt, func(v int) netCost { return netFor(v, true, false, false, true) }},
		{sysInsecureMemcached, func(v int) netCost { return netFor(v, false, true, false, false) }},
		{sysInsecureBaseline, func(v int) netCost { return netFor(v, false, true, false, false) }},
	}
	for _, threads := range []int{1, 4} {
		for _, ds := range workload.Table3 {
			row := []string{fmt.Sprintf("%d", threads), ds.Name}
			for _, c := range configs {
				r := buildSystem(cfg, c.sys, threads, cfg.keys(), ds.ValSize)
				kops := r.avgOverWorkloads(cfg.Ops, c.nc(ds.ValSize))
				row = append(row, f1(kops))
			}
			res.Rows = append(res.Rows, row)
		}
	}
	return res
}

// Fig19 reproduces Figure 19: throughput under periodic snapshots
// (60-second period at paper scale, scaled with everything else).
//
// The steady-state math combines three measured quantities per cell: the
// normal-operation rate, the rate while a snapshot is draining (temp
// table in effect), and the snapshot's blocking + background costs, over
// the configured period.
func Fig19(cfg Config) Result {
	cfg = cfg.Defaults()
	res := Result{
		ID:     "fig19",
		Title:  "Persistence: none vs naive vs optimized snapshots (Kop/s, networked, 1 thread)",
		Header: []string{"dataset", "workload", "none", "naive", "optimized", "naive_loss", "opt_loss"},
		Notes: []string{
			"paper: naive loses up to 25% (large); optimized 2.1/2.6/6.5%",
		},
	}
	// Snapshot period: 60 s at paper scale.
	periodCycles := uint64(60.0 / float64(cfg.Scale) * sim.DefaultCostModel().ClockHz)
	specs := []string{"RD50_Z", "RD95_Z", "RD100_Z"}

	for _, ds := range workload.Table3 {
		for _, name := range specs {
			spec, _ := workload.ByName(name)
			nc := netFor(ds.ValSize, true, false, false, true)

			// Build one persistent store per mode.
			rate := map[persist.Mode]float64{}     // ops per cycle, normal
			blockC := map[persist.Mode]uint64{}    // blocking cycles per snapshot
			childC := map[persist.Mode]uint64{}    // background cycles per snapshot
			snapRate := map[persist.Mode]float64{} // ops per cycle during drain
			for _, mode := range []persist.Mode{persist.Naive, persist.Optimized} {
				dir, err := os.MkdirTemp("", "ssbench")
				if err != nil {
					panic(err)
				}
				defer os.RemoveAll(dir)

				m := cfg.newMachine()
				// The snapshot period scales 1/Scale with the data; the
				// monotonic-counter increment is fixed hardware cost, so
				// it must scale with the period to preserve the paper's
				// counter-to-period ratio (~0.1%).
				m.model.MonotonicCounterInc = max(1, m.model.MonotonicCounterInc/uint64(cfg.Scale))
				opts := core.Defaults(cfg.buckets())
				opts.MACHashes = cfg.macHashes()
				s := core.New(m.enclave, nil, opts)
				ps := persist.New(s, dir, mode)
				meter := sim.NewMeter(m.model)
				for id := 0; id < cfg.keys(); id++ {
					if err := ps.Set(meter, workload.FormatKey(uint64(id)), workload.MakeValue(ds.ValSize, uint64(id))); err != nil {
						panic(err)
					}
				}

				// Normal rate.
				meter.Reset()
				ops := cfg.Ops / 3
				replayPersist(cfg, ps, meter, spec, ds.ValSize, ops, nc, m)
				rate[mode] = float64(ops) / float64(meter.Cycles())

				// Snapshot costs.
				meter.Reset()
				if err := ps.Snapshot(meter); err != nil {
					panic(err)
				}
				blockC[mode] = meter.Cycles()
				childC[mode] = ps.ChildCycles()

				// Rate during drain (optimized only; naive has no window).
				snapRate[mode] = rate[mode]
				if mode == persist.Optimized && ps.InSnapshot() {
					start := meter.Cycles()
					replayPersist(cfg, ps, meter, spec, ds.ValSize, ops/2, nc, m)
					snapRate[mode] = float64(ops/2) / float64(meter.Cycles()-start)
					ps.Drain(meter)
				}
			}

			// Steady-state throughput over one period.
			sustained := func(mode persist.Mode) float64 {
				block := float64(blockC[mode])
				period := float64(periodCycles)
				if block >= period {
					block = period
				}
				var opsPerPeriod float64
				if mode == persist.Naive {
					opsPerPeriod = (period - block) * rate[mode]
				} else {
					drain := float64(childC[mode])
					if block+drain > period {
						drain = period - block
					}
					normal := period - block - drain
					opsPerPeriod = drain*snapRate[mode] + normal*rate[mode]
				}
				model := sim.DefaultCostModel()
				return sim.KopsPerSec(opsPerPeriod / (period / model.ClockHz))
			}
			noneKops := sim.KopsPerSec(rate[persist.Naive] * sim.DefaultCostModel().ClockHz)
			naiveKops := sustained(persist.Naive)
			optKops := sustained(persist.Optimized)
			res.Rows = append(res.Rows, []string{
				ds.Name, name, f1(noneKops), f1(naiveKops), f1(optKops),
				fmt.Sprintf("%.1f%%", 100*(1-naiveKops/noneKops)),
				fmt.Sprintf("%.1f%%", 100*(1-optKops/noneKops)),
			})
		}
	}
	return res
}

// replayPersist drives a persistent store with one workload.
func replayPersist(cfg Config, ps *persist.Store, m *sim.Meter, spec workload.Spec, valSize, ops int, nc netCost, mach *machine) {
	gen := workload.NewGen(spec, uint64(cfg.keys()), cfg.Seed)
	for i := 0; i < ops; i++ {
		op := gen.Next()
		nc.charge(mach.enclave, m)
		key := workload.FormatKey(op.Key)
		switch op.Kind {
		case workload.Read:
			_, _ = ps.Get(m, key)
		case workload.Update, workload.Insert:
			_ = ps.Set(m, key, workload.MakeValue(valSize, op.Key))
		case workload.Append:
			_ = ps.Append(m, key, []byte("-app8byte"))
		case workload.ReadModifyWrite:
			if v, err := ps.Get(m, key); err == nil {
				_ = ps.Set(m, key, v)
			}
		}
	}
}

// Experiment couples an id with its runner.
type Experiment struct {
	ID    string
	Title string
	Run   func(Config) Result
}

// All lists every regenerable table and figure in paper order.
var All = []Experiment{
	{"table1", "memcached vs baseline without SGX", Table1},
	{"fig2", "memory latency vs working set", Fig2},
	{"fig3", "naive SGX KV collapse", Fig3},
	{"fig6", "extra heap allocator chunk sweep", Fig6},
	{"fig9", "key hint decryption counts", Fig9},
	{"fig10", "overall normalized throughput", Fig10},
	{"fig11", "per-workload throughput (large)", Fig11},
	{"fig12", "append operations", Fig12},
	{"fig13", "multicore scalability", Fig13},
	{"fig14", "optimization breakdown", Fig14},
	{"fig15", "MAC hash count trade-off", Fig15},
	{"fig16", "vs Eleos: value sizes", Fig16},
	{"fig17", "vs Eleos: working sets", Fig17},
	{"fig18", "networked evaluation", Fig18},
	{"fig19", "snapshot persistence", Fig19},
	{"batch", "batched execution amortization", BatchExp},
	{"dispatch", "exitless dispatch amortization", DispatchExp},
	{"cluster", "sharded cluster shard-scaling sweep", ClusterExp},
	{"vlog", "tiered value-log working-set/budget sweep", VLogExp},
	{"failover", "replication overhead, failover blackout, live migration", FailoverExp},
	{"ctl", "orchestrated vs client-decided failover, auto re-protection", CtlExp},
}

// ByID finds an experiment.
func ByID(id string) (Experiment, bool) {
	for _, e := range All {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}
