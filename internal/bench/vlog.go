// The tiered-storage experiment (DESIGN.md §14): sweeps the working-set
// to memory-budget ratio and the spill threshold to map where the
// encrypted value log keeps a data set serving once it no longer fits
// the in-memory value budget. Not a paper figure — the paper keeps every
// value in (untrusted) memory; this measures the repo's disk tier.
package bench

import (
	"fmt"
	"os"

	"shieldstore/internal/core"
	"shieldstore/internal/sim"
	"shieldstore/internal/vlog"
	"shieldstore/internal/workload"
)

// VLogExp regenerates the tiered-storage sweep: RD100 read streams
// (zipfian and uniform) across working-set/memory-budget ratios 1x-64x
// against an all-in-memory baseline, plus a spill-threshold sweep over a
// mixed-value-size update stream at the 16x point.
func VLogExp(cfg Config) Result {
	cfg = cfg.Defaults()
	res := Result{
		ID:     "vlog",
		Title:  "tiered value-log: working-set/memory-budget sweep (256B values, RD100)",
		Header: []string{"dist", "ws/budget", "spill", "Kop/s", "rel", "spills", "faults", "segs"},
		Notes: []string{
			"rel = throughput vs the all-in-memory baseline (no value log)",
			"hot tier: EPC plaintext cache (WS/4, capped at EPC/2) promotes faulted values on read",
			"disk costs: NVMe seek + bandwidth model, DESIGN.md §14 calibration",
		},
		Metrics: map[string]float64{},
	}

	const valSize = 256
	nKeys := min(cfg.keys(), 4096)
	workingSet := int64(nKeys) * valSize
	// Hot tier: the EPC plaintext cache holds the zipfian head. A quarter
	// of the working set (bounded by half the EPC) mirrors a deployment
	// that sizes the enclave cache to the hot set, not the data set.
	cacheBytes := min(workingSet/4, cfg.epcBytes()/2)
	ops := cfg.Ops

	for _, d := range []struct {
		name string
		dist workload.Distribution
	}{
		{"zipf99", workload.Zipf99},
		{"uniform", workload.Uniform},
	} {
		spec := workload.Spec{Name: "RD100", ReadPct: 100, Dist: d.dist}

		// All-in-memory baseline: same store and cache, no value log.
		base := runVLogPoint(cfg, spec, nKeys, valSize, ops, vlogPoint{cacheBytes: cacheBytes})
		res.Metrics[fmt.Sprintf("RD100_%s/baseline/kops", distTag(d.name))] = base.kops
		res.Rows = append(res.Rows, []string{d.name, "inline", "-", f1(base.kops), "1.00", "0", "0", "0"})

		for _, ratio := range []int{1, 4, 16, 64} {
			pt := vlogPoint{
				cacheBytes: cacheBytes,
				memBudget:  workingSet / int64(ratio),
				spill:      core.DefaultSpillThreshold,
				tiered:     true,
			}
			r := runVLogPoint(cfg, spec, nKeys, valSize, ops, pt)
			rel := r.kops / base.kops
			tag := fmt.Sprintf("RD100_%s/ratio=%d", distTag(d.name), ratio)
			res.Metrics[tag+"/kops"] = r.kops
			res.Metrics[tag+"/rel"] = rel
			res.Rows = append(res.Rows, []string{
				d.name, fmt.Sprintf("%dx", ratio), fmt.Sprintf("%d", pt.spill),
				f1(r.kops), f2s(rel),
				fmt.Sprintf("%d", r.spills), fmt.Sprintf("%d", r.faults),
				fmt.Sprintf("%d", r.segs),
			})
		}
	}

	// Spill-threshold sweep at the 16x point: mixed value sizes
	// (64/128/256B), 50% updates, zipfian. A higher threshold keeps the
	// small values inline and spills only the large tail.
	mixSpec := workload.Spec{Name: "RD50", ReadPct: 50, Dist: workload.Zipf99}
	mixWS := int64(0)
	for id := 0; id < nKeys; id++ {
		mixWS += int64(mixedValSize(uint64(id)))
	}
	for _, spill := range []int{64, 128, 256} {
		pt := vlogPoint{
			cacheBytes: cacheBytes,
			memBudget:  mixWS / 16,
			spill:      spill,
			tiered:     true,
			mixed:      true,
		}
		r := runVLogPoint(cfg, mixSpec, nKeys, valSize, ops, pt)
		tag := fmt.Sprintf("RD50_Z/ratio=16/spill=%d", spill)
		res.Metrics[tag+"/kops"] = r.kops
		res.Rows = append(res.Rows, []string{
			"zipf99(mix)", "16x", fmt.Sprintf("%d", spill),
			f1(r.kops), "-",
			fmt.Sprintf("%d", r.spills), fmt.Sprintf("%d", r.faults),
			fmt.Sprintf("%d", r.segs),
		})
	}
	return res
}

// distTag maps a display name to the workload-table suffix.
func distTag(name string) string {
	if name == "uniform" {
		return "U"
	}
	return "Z"
}

// mixedValSize assigns each key one of three value sizes (64/128/256B)
// for the spill-threshold sweep.
func mixedValSize(id uint64) int { return 64 << (id % 3) }

// vlogPoint is one measured configuration.
type vlogPoint struct {
	cacheBytes int64
	memBudget  int64
	spill      int
	tiered     bool // attach a value log
	mixed      bool // mixed value sizes (threshold sweep)
}

type vlogRun struct {
	kops   float64
	spills uint64
	faults uint64
	segs   uint64
}

// runVLogPoint builds a fresh single-partition store (optionally with a
// value log in a temp directory), preloads it, replays the spec, and
// reports throughput plus tier counters.
func runVLogPoint(cfg Config, spec workload.Spec, nKeys, valSize, ops int, pt vlogPoint) vlogRun {
	m := cfg.newMachine()
	p := buildShield(m, 1, cfg.buckets(), cfg.macHashes(), func(o *core.Options) {
		o.CacheBytes = pt.cacheBytes
		o.MemBudget = pt.memBudget
		if pt.spill > 0 {
			o.SpillThreshold = pt.spill
		}
	})
	s, meter := p.Part(0), p.Meter(0)
	var dir string
	if pt.tiered {
		var err error
		dir, err = os.MkdirTemp("", "ssvlog")
		if err != nil {
			panic(err)
		}
		defer os.RemoveAll(dir)
		l, err := vlog.New(m.enclave, dir, vlog.Options{})
		if err != nil {
			panic(err)
		}
		defer l.Close()
		s.AttachVLog(l)
	}

	sizeFor := func(id uint64) int {
		if pt.mixed {
			return mixedValSize(id)
		}
		return valSize
	}
	loader := sim.NewMeter(m.enclave.Model())
	for id := 0; id < nKeys; id++ {
		key := workload.FormatKey(uint64(id))
		if err := s.Set(loader, key, workload.MakeValue(sizeFor(uint64(id)), uint64(id))); err != nil {
			panic(err)
		}
	}
	p.ResetMeters()
	m.space.ResetPagingClock()

	gen := workload.NewGen(spec, uint64(nKeys), cfg.Seed)
	for i := 0; i < ops; i++ {
		op := gen.Next()
		key := workload.FormatKey(op.Key)
		switch op.Kind {
		case workload.Read:
			_, _ = s.Get(meter, key)
		default:
			_ = s.Set(meter, key, workload.MakeValue(sizeFor(op.Key), op.Key))
		}
	}
	// The measured window ends before GC: throughput reflects the
	// serving stream; the drain below exercises the GC path and settles
	// the live-segment gauge (update streams leave dead records behind).
	kops := sim.KopsPerSec(sim.Throughput(m.model, uint64(ops), meter.Cycles()))
	if pt.tiered {
		for {
			copied, err := s.VLogMaintain(meter, 0)
			if err != nil {
				panic(err)
			}
			if copied == 0 {
				if _, more := s.VLog().PickVictim(); !more {
					break
				}
			}
		}
	}
	segs := uint64(0)
	if pt.tiered {
		segs = uint64(s.VLog().SegmentsLive())
	}
	return vlogRun{
		kops: kops,
		// Preload spills land on the loader meter (reset doesn't touch it);
		// the serving stream adds update-driven spills on top.
		spills: loader.Events(sim.CtrVLogSpill) + meter.Events(sim.CtrVLogSpill),
		faults: meter.Events(sim.CtrVLogFault),
		segs:   segs,
	}
}
