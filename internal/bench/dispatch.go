// The exitless-dispatch experiment: not a paper figure, but the
// measurement behind this repo's pooled call slots and batched partition
// queues (DESIGN.md §9, "Exitless dispatch"). A pipelined client keeps
// several independent single-op requests in flight; the partition worker
// drains its queue and executes the drained calls as one combined batch,
// paying one request-dispatch overhead per drain instead of per op. This
// experiment replays that drain schedule deterministically — grouping a
// mixed get/set stream into drains of fixed depth, exactly the combined
// execution runDrain performs — and reports metered cycles per op plus
// the request/dispatch counter ratio the amortization produces.
package bench

import (
	"fmt"

	"shieldstore/internal/core"
	"shieldstore/internal/sim"
	"shieldstore/internal/workload"
)

// DispatchExp regenerates the drain-depth sweep: per-op dispatch vs
// drained batches of 4/16/64 in-flight requests under uniform and
// zipfian 95%-get streams.
func DispatchExp(cfg Config) Result {
	cfg = cfg.Defaults()
	res := Result{
		ID:     "dispatch",
		Title:  "exitless dispatch amortization (95% get, 128B values, 512-key hot working set)",
		Header: []string{"dist", "depth", "cyc/op", "requests", "dispatches", "speedup"},
		Notes: []string{
			"depth = in-flight requests drained per worker wakeup (pipelined clients)",
			"one request overhead per drain; requests counts CtrRequest, dispatches CtrDispatch",
		},
	}
	const valSize = 128
	// Same hot working set as the batch experiment, so drained requests
	// revisit bucket sets and the per-set verification amortizes too.
	nKeys := min(cfg.keys(), 512)
	buckets := max(64, nKeys*8/10)
	macHashes := max(32, buckets/2)
	ops := cfg.Ops

	for _, d := range []struct {
		name string
		dist workload.Distribution
	}{
		{"uniform", workload.Uniform},
		{"zipf99", workload.Zipf99},
	} {
		spec := workload.Spec{Name: "RD95", ReadPct: 95, Dist: d.dist}
		var base float64
		for _, depth := range []int{1, 4, 16, 64} {
			cyc, reqs, disp := runDispatchStream(cfg, spec, nKeys, buckets, macHashes, valSize, ops, depth)
			if depth == 1 {
				base = cyc
			}
			res.Rows = append(res.Rows, []string{
				d.name,
				fmt.Sprintf("%d", depth),
				f1(cyc),
				fmt.Sprintf("%d", reqs),
				fmt.Sprintf("%d", disp),
				f2s(base / cyc),
			})
		}
	}
	return res
}

// runDispatchStream replays a mixed stream on a fresh single-partition
// machine with the worker's drain execution at a fixed depth: depth 1 is
// the synchronous per-op path (one request overhead each); depth > 1
// executes each group of in-flight ops as one combined batch, exactly
// what the partition worker does when it drains its queue. Returns
// metered cycles per op and the CtrRequest/CtrDispatch event counts.
func runDispatchStream(cfg Config, spec workload.Spec, nKeys, buckets, macHashes, valSize, ops, depth int) (float64, uint64, uint64) {
	m := cfg.newMachine()
	p := buildShield(m, 1, buckets, macHashes)
	if err := preloadShield(p, nKeys, valSize); err != nil {
		panic(err)
	}
	gen := workload.NewGen(spec, uint64(nKeys), cfg.Seed)
	s, meter := p.Part(0), p.Meter(0)

	if depth <= 1 {
		for i := 0; i < ops; i++ {
			op := gen.Next()
			meter.Count(sim.CtrDispatch)
			key := workload.FormatKey(op.Key)
			switch op.Kind {
			case workload.Read:
				_, _ = s.Get(meter, key)
			default:
				_ = s.Set(meter, key, workload.MakeValue(valSize, op.Key))
			}
		}
		return float64(meter.Cycles()) / float64(ops), meter.Events(sim.CtrRequest), meter.Events(sim.CtrDispatch)
	}

	buf := make([]core.BatchOp, 0, depth)
	flush := func() {
		if len(buf) == 0 {
			return
		}
		meter.Count(sim.CtrDispatch)
		for _, r := range s.ApplyBatch(meter, buf) {
			if r.Err != nil && r.Err != core.ErrNotFound {
				panic(r.Err)
			}
		}
		buf = buf[:0]
	}
	for i := 0; i < ops; i++ {
		op := gen.Next()
		key := workload.FormatKey(op.Key)
		switch op.Kind {
		case workload.Read:
			buf = append(buf, core.BatchOp{Kind: core.BatchGet, Key: key})
		default:
			buf = append(buf, core.BatchOp{
				Kind:  core.BatchSet,
				Key:   key,
				Value: workload.MakeValue(valSize, op.Key),
			})
		}
		if len(buf) == depth {
			flush()
		}
	}
	flush()
	return float64(meter.Cycles()) / float64(ops), meter.Events(sim.CtrRequest), meter.Events(sim.CtrDispatch)
}
