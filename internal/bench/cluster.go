// The cluster experiment: aggregate throughput of the multi-enclave
// sharded deployment as shards are added. Each shard is a whole machine
// of its own — its own enclave, EPC and paging clock, sized exactly like
// the single-node experiments — so the sweep measures the scale-out
// model: fixed total key space, growing total capacity. Keys route to
// shards over the cluster package's consistent-hash ring (public key)
// and within a shard to partitions over the enclave's secret hash, the
// two-level scheme whose independence TestRingPartitionDecorrelation
// proves.
//
// Methodology: fixed virtual duration, saturated offered load — the
// standard cluster measurement. Every deployment size serves its
// ring-routed share of a saturating zipfian stream for the same virtual
// duration (the time the 1-shard deployment needs for Config.Ops), and
// aggregate throughput is the completed-op count over that duration.
// A fixed-total-work makespan would instead be bounded by the hottest
// partition's zipfian share and could never show the near-linear scaling
// a saturated cluster actually delivers.
package bench

import (
	"fmt"

	"shieldstore/internal/cluster"
	"shieldstore/internal/core"
	"shieldstore/internal/histo"
	"shieldstore/internal/mem"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
	"shieldstore/internal/workload"
)

// clusterShardSweep is the shard counts the experiment visits.
var clusterShardSweep = []int{1, 2, 4, 8}

// ClusterExp generates the shard-scaling table (the -run cluster
// experiment). Per-shard configuration matches the networked single-node
// evaluation: 4 partition workers, HotCalls dispatch, secure session
// channels.
func ClusterExp(cfg Config) Result {
	cfg = cfg.Defaults()
	const valSize = 128
	const parts = 4
	nc := netFor(valSize, true, false, false, true)
	res := Result{
		ID:     "cluster",
		Title:  "Sharded cluster: aggregate throughput vs shard count (networked, zipfian)",
		Header: []string{"workload", "shards", "Kop/s", "per-shard", "speedup", "p50us", "p99us"},
		Notes: []string{
			"each shard is a full machine (own enclave+EPC); ring-routed keys;",
			"fixed virtual duration, saturated load; speedup is vs 1 shard",
		},
		Metrics: map[string]float64{},
	}
	for _, wname := range []string{"RD100_Z", "RD95_Z"} {
		spec, ok := workload.ByName(wname)
		if !ok {
			panic("unknown workload " + wname)
		}
		// Calibrate the shared horizon: the virtual time the 1-shard
		// deployment needs to fully serve Config.Ops.
		c1 := newSimCluster(cfg, 1, parts, valSize)
		_, horizon, _ := c1.serve(cfg, spec, cfg.Ops, 0, valSize, nc)

		var base float64
		for _, shards := range clusterShardSweep {
			sc := newSimCluster(cfg, shards, parts, valSize)
			// Oversupply the stream so every partition stays busy through
			// the horizon (saturated offered load).
			completed, _, lat := sc.serve(cfg, spec, 4*shards*cfg.Ops, horizon, valSize, nc)
			model := sc.pools[0].Part(0).Enclave().Model()
			kops := float64(completed) / model.Seconds(horizon) / 1e3
			if shards == 1 {
				base = kops
			}
			speedup := kops / base
			toUs := func(c uint64) float64 { return model.Seconds(c) * 1e6 }
			p50, p99 := toUs(lat.Quantile(0.50)), toUs(lat.Quantile(0.99))
			res.Rows = append(res.Rows, []string{
				wname, fmt.Sprintf("%d", shards), f1(kops),
				f1(kops / float64(shards)), f2s(speedup), f1(p50), f1(p99),
			})
			prefix := fmt.Sprintf("%s/shards=%d/", wname, shards)
			res.Metrics[prefix+"kops"] = kops
			res.Metrics[prefix+"speedup"] = speedup
			res.Metrics[prefix+"p50_us"] = p50
			res.Metrics[prefix+"p99_us"] = p99
		}
	}
	return res
}

// simCluster is an S-shard cluster of simulated machines with the full
// key space preloaded over the ring.
type simCluster struct {
	ring  *cluster.Ring
	pools []*core.Partitioned
	nKeys int
}

// newSimCluster builds the shard machines and preloads: the ring picks
// each key's shard, the shard's secret hash its partition.
func newSimCluster(cfg Config, shards, parts, valSize int) *simCluster {
	sc := &simCluster{
		ring:  cluster.NewRing(shards, cluster.DefaultVNodes, uint64(cfg.Seed)),
		nKeys: cfg.keys(),
	}
	for s := 0; s < shards; s++ {
		model := sim.DefaultCostModel()
		model.EPCBytes = cfg.epcBytes()
		space := mem.NewSpace(mem.Config{Model: model})
		enclave := sgx.New(sgx.Config{
			Space: space,
			// Each shard enclave has its own identity and secret hash keys.
			Seed: uint64(cfg.Seed) + uint64(s)*7919 + 1,
		})
		opts := core.Defaults(cfg.buckets())
		opts.MACHashes = cfg.macHashes()
		sc.pools = append(sc.pools, core.NewPartitioned(enclave, parts, opts))
	}
	for s, p := range sc.pools {
		loader := sim.NewMeter(p.Part(0).Enclave().Model())
		for id := 0; id < sc.nKeys; id++ {
			key := workload.FormatKey(uint64(id))
			if sc.ring.Shard(key) != s {
				continue
			}
			part := p.Route(loader, key)
			if err := p.Part(part).Set(loader, key, workload.MakeValue(valSize, uint64(id))); err != nil {
				panic(err)
			}
		}
		p.ResetMeters()
		p.Part(0).Enclave().Space().ResetPagingClock()
	}
	return sc
}

// serve routes a totalOps-long stream over the cluster and runs every
// shard's discrete-event loop. With horizon == 0 every routed op is
// served (fixed total work) and the returned cycle count is the
// cluster's makespan; with horizon > 0 each partition serves until its
// virtual clock would pass the horizon (fixed duration) and the count of
// completed ops is returned. Ring lookups run on the untrusted client
// tier, off the measured serving path; the secret partition hash is
// charged to a scratch meter exactly as runShield's router is.
func (sc *simCluster) serve(cfg Config, spec workload.Spec, totalOps int, horizon uint64, valSize int, nc netCost) (completed int, maxCycles uint64, lat *histo.Histogram) {
	shards := len(sc.pools)
	parts := sc.pools[0].Parts()
	queues := make([][][]workload.Op, shards)
	routeMs := make([]*sim.Meter, shards)
	for s := range queues {
		queues[s] = make([][]workload.Op, parts)
		routeMs[s] = sim.NewMeter(sc.pools[s].Part(0).Enclave().Model())
	}
	gen := workload.NewGen(spec, uint64(sc.nKeys), cfg.Seed)
	for i := 0; i < totalOps; i++ {
		op := gen.Next()
		key := workload.FormatKey(op.Key)
		s := sc.ring.Shard(key)
		part := sc.pools[s].Route(routeMs[s], key)
		queues[s][part] = append(queues[s][part], op)
	}

	lat = &histo.Histogram{}
	for s, p := range sc.pools {
		next := make([]int, parts)
		for {
			// Advance the partition with the smallest virtual clock that
			// still has work and has not crossed the horizon.
			t := -1
			for i := 0; i < parts; i++ {
				if next[i] >= len(queues[s][i]) {
					continue
				}
				if horizon > 0 && p.Meter(i).Cycles() >= horizon {
					continue
				}
				if t < 0 || p.Meter(i).Cycles() < p.Meter(t).Cycles() {
					t = i
				}
			}
			if t < 0 {
				break
			}
			op := queues[s][t][next[t]]
			next[t]++
			st, m := p.Part(t), p.Meter(t)
			before := m.Cycles()
			nc.charge(st.Enclave(), m)
			execShield(st, m, op, valSize)
			if horizon == 0 || m.Cycles() <= horizon {
				completed++
				lat.Record(m.Cycles() - before)
			}
		}
		if c := p.MaxCycles(); c > maxCycles {
			maxCycles = c
		}
	}
	return completed, maxCycles, lat
}
