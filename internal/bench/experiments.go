package bench

import (
	"fmt"
	"math/rand"

	"shieldstore/internal/baseline"
	"shieldstore/internal/core"
	"shieldstore/internal/mem"
	"shieldstore/internal/sim"
	"shieldstore/internal/workload"
)

// netFor builds the standard networked-evaluation cost for a data set.
func netFor(valSize int, hotcalls, noSGX, libOS, secure bool) netCost {
	return netCost{
		enabled:  true,
		hotcalls: hotcalls,
		noSGX:    noSGX,
		libOS:    libOS,
		secure:   secure,
		reqSize:  17 + 16 + valSize, // request header + key + value
		respSize: 13 + valSize,      // response header + value
	}
}

// Table1 reproduces Table 1: insecure memcached vs the insecure baseline
// under the networked setup with 512 B values — validating that the
// baseline engine is a fair memcached stand-in.
func Table1(cfg Config) Result {
	cfg = cfg.Defaults()
	spec, _ := workload.ByName("RD95_Z")
	nKeys := cfg.keys()
	const valSize = 512

	res := Result{
		ID:     "table1",
		Title:  "Throughput for key-value stores w/o SGX: memcached vs baseline (Kop/s)",
		Header: []string{"threads", "memcached", "baseline", "ratio"},
		Notes: []string{
			"paper: 1 thr 313.5 vs 311.6; 4 thr 876.6 vs 845.8 (within ~4%)",
		},
	}
	for _, threads := range []int{1, 4} {
		row := []string{fmt.Sprintf("%d", threads)}
		var vals []float64
		for _, variant := range []baseline.Variant{baseline.MemcachedInsecure, baseline.Insecure} {
			m := cfg.newMachine()
			s := buildBaseline(m, variant, cfg.buckets())
			if err := preloadBaseline(s, m, nKeys, valSize); err != nil {
				panic(err)
			}
			nc := netFor(valSize, false, true, false, false)
			kops, _ := runBaseline(cfg, m, s, spec, nKeys, valSize, cfg.Ops, threads, nc)
			vals = append(vals, kops)
			row = append(row, f1(kops))
		}
		row = append(row, f2s(vals[0]/vals[1]))
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Fig2 reproduces Figure 2: random memory access latency versus working
// set size for NoSGX, SGX enclave memory, and unprotected memory accessed
// from an enclave.
func Fig2(cfg Config) Result {
	cfg = cfg.Defaults()
	res := Result{
		ID:    "fig2",
		Title: "Memory access latencies w/ and w/o SGX (ns/access)",
		Header: []string{"ws", "rd_nosgx", "rd_enclave", "rd_unprot",
			"wr_nosgx", "wr_enclave", "wr_unprot"},
		Notes: []string{
			"paper: enclave ~5.7x below EPC; 578x (read) / 685x (write) at 4GB",
		},
	}
	// Paper sweep: 16MB..4096MB, scaled.
	sizesMB := []int{16, 32, 48, 64, 96, 128, 256, 512, 1024, 2048, 4096}
	epc := cfg.epcBytes()

	for _, szMB := range sizesMB {
		ws := int(int64(szMB) << 20 / int64(cfg.Scale))
		model := sim.DefaultCostModel()
		if ws < 8*model.PageSize {
			ws = 8 * model.PageSize
		}
		m := cfg.newMachineEPC(epc)
		row := []string{fmt.Sprintf("%dMB", szMB)}
		for _, write := range []bool{false, true} {
			// NoSGX == untrusted without an enclave, same cost path as
			// unprotected-from-enclave in the model; measure both anyway.
			row = append(row,
				f1(memLatency(m, mem.Untrusted, ws, write, cfg.Seed)),
				f1(memLatency(m, mem.Enclave, ws, write, cfg.Seed)),
				f1(memLatency(m, mem.Untrusted, ws, write, cfg.Seed+1)),
			)
		}
		// Reorder: we appended rd triple then wr triple already in order.
		res.Rows = append(res.Rows, row)
	}
	return res
}

// memLatency measures steady-state random page-touch latency in ns.
func memLatency(m *machine, region mem.Region, ws int, write bool, seed int64) float64 {
	base := m.space.Alloc(region, ws)
	if region == mem.Enclave {
		m.space.ResetEPC()
	}
	pages := max(1, ws/m.model.PageSize)
	// Warm the working set once (steady state, as in the paper).
	warm := sim.NewMeter(m.model)
	buf := make([]byte, 8)
	for p := 0; p < pages; p++ {
		m.space.Read(warm, base+mem.Addr(p*m.model.PageSize), buf)
	}
	rng := rand.New(rand.NewSource(seed))
	meter := sim.NewMeter(m.model)
	const accesses = 4000
	for i := 0; i < accesses; i++ {
		a := base + mem.Addr(rng.Intn(pages)*m.model.PageSize)
		if write {
			m.space.Write(meter, a, buf)
		} else {
			m.space.Read(meter, a, buf)
		}
	}
	return m.model.Nanos(meter.Cycles()) / accesses
}

// Fig3 reproduces Figure 3: the naive SGX key-value store collapsing as
// the database outgrows the EPC, versus the same store without SGX.
func Fig3(cfg Config) Result {
	cfg = cfg.Defaults()
	spec, _ := workload.ByName("RD50_U")
	const valSize = 512
	entryBytes := 16 + valSize + 16 // key + value + header

	res := Result{
		ID:     "fig3",
		Title:  "Baseline performance w/ and w/o SGX (Kop/s)",
		Header: []string{"db_size", "NoSGX", "Baseline", "slowdown"},
		Notes: []string{
			"paper: parity below 64MB (within ~60%), 134x slower at 4GB",
		},
	}
	sizesMB := []int{16, 32, 48, 64, 96, 128, 256, 512, 1024, 2048, 4096}
	for _, szMB := range sizesMB {
		bytes := int64(szMB) << 20 / int64(cfg.Scale)
		nKeys := max(64, int(bytes/int64(entryBytes)))
		ops := cfg.Ops / 4
		row := []string{fmt.Sprintf("%dMB", szMB)}
		var vals []float64
		for _, variant := range []baseline.Variant{baseline.Insecure, baseline.NaiveSGX} {
			m := cfg.newMachine()
			s := buildBaseline(m, variant, max(64, nKeys)) // ~1 entry/bucket like a sized table
			if err := preloadBaseline(s, m, nKeys, valSize); err != nil {
				panic(err)
			}
			kops, _ := runBaseline(cfg, m, s, spec, nKeys, valSize, ops, 1, netCost{})
			vals = append(vals, kops)
			row = append(row, f1(kops))
		}
		row = append(row, f1(vals[0]/vals[1]))
		res.Rows = append(res.Rows, row)
	}
	return res
}

// Fig6 reproduces Figure 6: the extra heap allocator's OCALL count and
// throughput versus sbrk chunk granularity (RD50_Z, small data set).
func Fig6(cfg Config) Result {
	cfg = cfg.Defaults()
	spec, _ := workload.ByName("RD50_Z")
	ds := workload.Table3[0] // small
	nKeys := cfg.keys()

	res := Result{
		ID:     "fig6",
		Title:  "OCALLs and throughput vs allocation granularity (RD50_Z, small)",
		Header: []string{"chunk", "ocalls", "kops"},
		Notes: []string{
			"paper: OCALLs collapse as the chunk grows; 16MB chosen as default",
		},
	}
	for _, chunkMB := range []int{1, 2, 4, 8, 16, 32} {
		chunk := max(4096, chunkMB<<20/cfg.Scale)
		m := cfg.newMachine()
		p := buildShield(m, 1, cfg.buckets(), cfg.macHashes(), func(o *core.Options) {
			o.HeapChunk = chunk
		})
		// OCALLs are incurred by entry and MAC-bucket allocation, so count
		// them across table construction plus the steady-state run (the
		// update-heavy phase alone updates in place and allocates little).
		loader := sim.NewMeter(m.model)
		for id := 0; id < nKeys; id++ {
			key := workload.FormatKey(uint64(id))
			part := p.Route(loader, key)
			if err := p.Part(part).Set(loader, key, workload.MakeValue(ds.ValSize, uint64(id))); err != nil {
				panic(err)
			}
		}
		ocalls := loader.Events(sim.CtrOCall)
		kops, stats := runShield(cfg, p, spec, nKeys, ds.ValSize, cfg.Ops, netCost{})
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%dMB", chunkMB),
			fmt.Sprintf("%d", ocalls+stats.Events[sim.CtrOCall]),
			f1(kops),
		})
	}
	return res
}

// Fig9 reproduces Figure 9: decryptions needed to find the matching entry
// with and without the 1-byte key hint, on 1M and 8M buckets.
func Fig9(cfg Config) Result {
	cfg = cfg.Defaults()
	spec, _ := workload.ByName("RD95_Z")
	ds := workload.Table3[0] // small
	nKeys := cfg.keys()

	res := Result{
		ID:     "fig9",
		Title:  "Decryptions to find the matching entry w/ and w/o key hint",
		Header: []string{"buckets", "w/o_hint", "w/_hint", "reduction"},
		Notes: []string{
			"paper: large reduction at 1M buckets (chains ~10); smaller at 8M (chains ~1.25)",
		},
	}
	for _, bucketsM := range []int{1, 8} {
		buckets := max(64, bucketsM*1_000_000/cfg.Scale)
		var vals []uint64
		for _, hint := range []bool{false, true} {
			m := cfg.newMachine()
			p := buildShield(m, 1, buckets, max(32, buckets/2), func(o *core.Options) {
				o.KeyHint = hint
			})
			if err := preloadShield(p, nKeys, ds.ValSize); err != nil {
				panic(err)
			}
			_, stats := runShield(cfg, p, spec, nKeys, ds.ValSize, cfg.Ops, netCost{})
			vals = append(vals, stats.Events[sim.CtrDecrypt])
		}
		res.Rows = append(res.Rows, []string{
			fmt.Sprintf("%dM", bucketsM),
			fmt.Sprintf("%d", vals[0]),
			fmt.Sprintf("%d", vals[1]),
			f1(float64(vals[0]) / float64(max(1, vals[1]))),
		})
	}
	return res
}
