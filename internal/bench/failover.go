// The failover experiment (DESIGN.md §15): replication's cost and its
// payoff, measured on the real wire. Unlike the virtual-time experiments
// this one runs the actual cluster harness — TCP servers, secure session
// channels, journal-shipping shippers — and reports wall-clock figures:
// the group-commit replication tax on acknowledged writes, the client's
// blackout window when a primary dies (kill to first re-acknowledged
// write on the promoted replica), and the time to live-migrate a loaded
// shard onto an empty node. Data integrity is asserted, not sampled:
// every acknowledged write is read back after each disruption, and a
// lost key panics the experiment rather than skewing a number.
package bench

import (
	"fmt"
	"time"

	"shieldstore/internal/cluster"
)

// FailoverExp generates the replication/failover timing table (the -run
// failover experiment; CI's failover-soak job emits BENCH_failover.json
// from it).
func FailoverExp(cfg Config) Result {
	cfg = cfg.Defaults()
	// Real-wire round trips: a fraction of the virtual-time op budget
	// keeps the soak job fast while still exercising thousands of commits.
	ops := max(500, cfg.Ops/10)
	res := Result{
		ID:     "failover",
		Title:  "Replication: write overhead, failover blackout, live migration (real wire)",
		Header: []string{"scenario", "ops", "wall_ms", "Kop/s", "detail"},
		Notes: []string{
			"wall-clock over loopback TCP with secure channels; replication is",
			"group-commit synchronous (client ack implies replica ack);",
			"blackout is kill -> first re-acked write on the promoted replica",
		},
		Metrics: map[string]float64{},
	}

	// Write throughput with and without a replica in the commit path.
	soloKops := replicatedWrites(cfg, res.Metrics, &res, "writes/solo", false, ops)
	replKops := replicatedWrites(cfg, res.Metrics, &res, "writes/replicated", true, ops)
	overhead := (soloKops - replKops) / soloKops * 100
	res.Metrics["replication_overhead_pct"] = overhead
	res.Notes = append(res.Notes,
		fmt.Sprintf("replication overhead on acked writes: %.1f%%", overhead))

	failoverBlackout(cfg, &res, ops)
	liveMigration(cfg, &res, ops)
	return res
}

// harnessFor stands up the experiment's cluster: 2 shards, 2 partitions,
// secure channels, optionally primary/replica pairs.
func harnessFor(cfg Config, replicas bool) *cluster.Harness {
	h, err := cluster.StartHarness(cluster.HarnessConfig{
		Shards:     2,
		Partitions: 2,
		Buckets:    1 << 10,
		Secure:     true,
		Seed:       uint64(cfg.Seed),
		Replicas:   replicas,
	})
	if err != nil {
		panic(err)
	}
	return h
}

func dialCluster(h *cluster.Harness) *cluster.Client {
	c, err := cluster.Dial(h.Options())
	if err != nil {
		panic(err)
	}
	return c
}

// loadOps writes n keys and returns the elapsed wall time. Every write is
// acknowledged or the experiment dies.
func loadOps(c *cluster.Client, prefix string, n int) time.Duration {
	start := time.Now()
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("%s%06d", prefix, i))
		if err := c.Set(k, []byte(fmt.Sprintf("val-%06d", i))); err != nil {
			panic(fmt.Sprintf("bench failover: Set %s: %v", k, err))
		}
	}
	return time.Since(start)
}

// verifyOps reads back n keys written by loadOps and panics on any loss.
func verifyOps(c *cluster.Client, prefix string, n int) {
	for i := 0; i < n; i++ {
		k := []byte(fmt.Sprintf("%s%06d", prefix, i))
		v, err := c.Get(k)
		if err != nil || string(v) != fmt.Sprintf("val-%06d", i) {
			panic(fmt.Sprintf("bench failover: acked write %s lost: %q, %v", k, v, err))
		}
	}
}

func replicatedWrites(cfg Config, metrics map[string]float64, res *Result, scenario string, replicas bool, ops int) float64 {
	h := harnessFor(cfg, replicas)
	defer h.Close()
	c := dialCluster(h)
	defer c.Close()
	wall := loadOps(c, "w", ops)
	verifyOps(c, "w", ops)
	kops := float64(ops) / wall.Seconds() / 1e3
	res.Rows = append(res.Rows, []string{
		scenario, fmt.Sprintf("%d", ops), f1(wall.Seconds() * 1e3), f1(kops), "acked writes",
	})
	metrics[scenario+"/kops"] = kops
	return kops
}

// failoverBlackout loads a replicated cluster, kills shard 0's primary,
// and measures the blackout: kill to the first write acknowledged by the
// promoted replica. Then the full pre-kill dataset is verified — the
// zero-acked-writes-lost claim, checked on every run.
func failoverBlackout(cfg Config, res *Result, ops int) {
	h := harnessFor(cfg, true)
	defer h.Close()
	c := dialCluster(h)
	defer c.Close()
	loadOps(c, "f", ops)

	// A post-kill key routed at the killed shard measures the blackout.
	probe := ""
	for i := 0; probe == ""; i++ {
		k := fmt.Sprintf("probe-%04d", i)
		if c.ShardFor([]byte(k)) == 0 {
			probe = k
		}
	}
	h.KillPrimary(0)
	start := time.Now()
	if err := c.Set([]byte(probe), []byte("post")); err != nil {
		panic(fmt.Sprintf("bench failover: post-kill write failed: %v", err))
	}
	blackout := time.Since(start)
	if !c.Demoted(0) {
		panic("bench failover: shard 0 not demoted after kill")
	}
	verifyOps(c, "f", ops)
	res.Rows = append(res.Rows, []string{
		"failover/blackout", "1", f1(blackout.Seconds() * 1e3), "-",
		fmt.Sprintf("promote+retry; %d acked keys verified intact", ops),
	})
	res.Metrics["failover_blackout_ms"] = blackout.Seconds() * 1e3
}

// liveMigration loads a replicated shard, retargets its stream at an
// empty spare, waits for sync, cuts the ring slot over, and verifies the
// dataset on the migrated topology.
func liveMigration(cfg Config, res *Result, ops int) {
	h := harnessFor(cfg, true)
	defer h.Close()
	c := dialCluster(h)
	defer c.Close()
	loadOps(c, "m", ops)

	spare, err := h.StartSpare(0)
	if err != nil {
		panic(err)
	}
	start := time.Now()
	h.Shard(0).Shipper.MigrateTo(spare.Addr, h.ClientOptionsFor(spare))
	deadline := time.Now().Add(30 * time.Second)
	for i := 0; !h.Shard(0).Shipper.Synced(); i++ {
		if time.Now().After(deadline) {
			panic("bench failover: migration never synced")
		}
		// The shipper flushes inside group commits: drip writes at shard 0.
		k := fmt.Sprintf("drip-%06d", i)
		if c.ShardFor([]byte(k)) == 0 {
			if err := c.Set([]byte(k), []byte("d")); err != nil {
				panic(fmt.Sprintf("bench failover: drip write: %v", err))
			}
		}
		time.Sleep(time.Millisecond)
	}
	syncMS := time.Since(start).Seconds() * 1e3
	if err := c.Cutover(0, cluster.ShardSpec{Addr: spare.Addr, Client: h.ClientOptionsFor(spare)}); err != nil {
		panic(fmt.Sprintf("bench failover: cutover: %v", err))
	}
	cutoverMS := time.Since(start).Seconds()*1e3 - syncMS
	verifyOps(c, "m", ops)
	res.Rows = append(res.Rows, []string{
		"migration/bootstrap", fmt.Sprintf("%d", ops), f1(syncMS), "-",
		"snapshot + catch-up to empty spare under drip load",
	})
	res.Rows = append(res.Rows, []string{
		"migration/cutover", "1", f1(cutoverMS), "-",
		"promote past epoch + ring swap; dataset verified on new node",
	})
	res.Metrics["migration_sync_ms"] = syncMS
	res.Metrics["migration_cutover_ms"] = cutoverMS
}
