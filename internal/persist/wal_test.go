package persist

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"shieldstore/internal/core"
	"shieldstore/internal/mem"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
)

// walEnclave builds an enclave with file-backed counters so "restarts"
// (new store, same dir) keep platform state.
func walEnclave(dir string) *sgx.Enclave {
	space := mem.NewSpace(mem.Config{EPCBytes: 16 << 20})
	return sgx.New(sgx.Config{Space: space, Seed: 51, CounterPath: filepath.Join(dir, "nvram.bin")})
}

func newWAL(t testing.TB, dir string, batch int) (*WAL, *sim.Meter) {
	t.Helper()
	e := walEnclave(dir)
	s := core.New(e, nil, core.Defaults(64))
	w, err := NewWAL(s, dir, batch)
	if err != nil {
		t.Fatal(err)
	}
	return w, sim.NewMeter(e.Model())
}

func TestWALCrashRecovery(t *testing.T) {
	dir := t.TempDir()
	w, m := newWAL(t, dir, 8)
	for i := 0; i < 50; i++ {
		if err := w.Set(m, []byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Delete(m, []byte("k10")); err != nil {
		t.Fatal(err)
	}
	if err := w.Append(m, []byte("k11"), []byte("+tail")); err != nil {
		t.Fatal(err)
	}
	w.Close() // crash: no snapshot, no Pin

	// Recovery: fresh empty store (the "last snapshot" is empty here),
	// same cipher via same-seed enclave? The WAL is physically logged and
	// self-contained, so an empty store suffices.
	e2 := walEnclave(dir)
	s2 := core.New(e2, nil, core.Defaults(64))
	m2 := sim.NewMeter(e2.Model())
	w2, err := ReplayWAL(s2, dir, 8, m2)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()

	if _, err := w2.Get(m2, []byte("k10")); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("replayed delete lost: %v", err)
	}
	v, err := w2.Get(m2, []byte("k11"))
	if err != nil || string(v) != "v11+tail" {
		t.Fatalf("replayed append: %q %v", v, err)
	}
	v, err = w2.Get(m2, []byte("k49"))
	if err != nil || string(v) != "v49" {
		t.Fatalf("replayed set: %q %v", v, err)
	}
	if s2.Keys() != 49 {
		t.Fatalf("keys = %d, want 49", s2.Keys())
	}
	if err := s2.VerifyAll(m2); err != nil {
		t.Fatal(err)
	}
	// The recovered WAL continues appending from the right sequence.
	if err := w2.Set(m2, []byte("new"), []byte("after")); err != nil {
		t.Fatal(err)
	}
}

func TestWALEmptyDirRecovers(t *testing.T) {
	dir := t.TempDir()
	e := walEnclave(dir)
	s := core.New(e, nil, core.Defaults(64))
	m := sim.NewMeter(e.Model())
	w, err := ReplayWAL(s, dir, 8, m)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	if s.Keys() != 0 || w.Seq() != 0 {
		t.Fatal("empty replay should yield empty state")
	}
}

func TestWALTamperDetected(t *testing.T) {
	dir := t.TempDir()
	w, m := newWAL(t, dir, 8)
	for i := 0; i < 10; i++ {
		if err := w.Set(m, []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	path := filepath.Join(dir, walFile)
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0x40
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}

	e2 := walEnclave(dir)
	s2 := core.New(e2, nil, core.Defaults(64))
	if _, err := ReplayWAL(s2, dir, 8, sim.NewMeter(e2.Model())); !errors.Is(err, ErrLogCorrupt) {
		t.Fatalf("tampered log: %v", err)
	}
}

func TestWALTruncationDetected(t *testing.T) {
	// Dropping whole trailing records past a pinned batch is a rollback.
	dir := t.TempDir()
	w, m := newWAL(t, dir, 4)
	for i := 0; i < 20; i++ { // 5 full batches -> 5 counter pins
		if err := w.Set(m, []byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	w.Close()

	// Keep only the first ~quarter of the log (cut at a frame boundary).
	path := filepath.Join(dir, walFile)
	data, _ := os.ReadFile(path)
	off, records := 0, 0
	for off < len(data) && records < 5 {
		n := int(uint32(data[off]) | uint32(data[off+1])<<8 | uint32(data[off+2])<<16 | uint32(data[off+3])<<24)
		off += 4 + n
		records++
	}
	if err := os.WriteFile(path, data[:off], 0o600); err != nil {
		t.Fatal(err)
	}

	e2 := walEnclave(dir)
	s2 := core.New(e2, nil, core.Defaults(64))
	if _, err := ReplayWAL(s2, dir, 4, sim.NewMeter(e2.Model())); !errors.Is(err, ErrRollback) {
		t.Fatalf("rolled-back log: %v", err)
	}
}

func TestWALPinShrinksWindow(t *testing.T) {
	dir := t.TempDir()
	w, m := newWAL(t, dir, 1000) // huge batch: nothing pinned implicitly
	for i := 0; i < 5; i++ {
		if err := w.Set(m, []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Pin(m); err != nil { // clean shutdown
		t.Fatal(err)
	}
	w.Close()

	// Rolling back to an empty log is now detected even though no batch
	// boundary was ever crossed.
	if err := os.WriteFile(filepath.Join(dir, walFile), nil, 0o600); err != nil {
		t.Fatal(err)
	}
	e2 := walEnclave(dir)
	s2 := core.New(e2, nil, core.Defaults(64))
	if _, err := ReplayWAL(s2, dir, 1000, sim.NewMeter(e2.Model())); !errors.Is(err, ErrRollback) {
		t.Fatalf("post-Pin rollback: %v", err)
	}
}

func TestWALBatchingAmortizesCounter(t *testing.T) {
	dir := t.TempDir()
	w, m := newWAL(t, dir, 16)
	for i := 0; i < 64; i++ {
		if err := w.Set(m, []byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// 64 records at batch 16 -> exactly 4 increments, not 64.
	if got := m.Events(sim.CtrMonotonicInc); got != 4 {
		t.Fatalf("counter increments = %d, want 4", got)
	}
	w.Close()
}

func TestWALLogIsSealed(t *testing.T) {
	dir := t.TempDir()
	w, m := newWAL(t, dir, 8)
	secret := []byte("wal-plaintext-secret")
	key := []byte("wal-secret-keyname")
	if err := w.Set(m, key, secret); err != nil {
		t.Fatal(err)
	}
	w.Close()
	data, _ := os.ReadFile(filepath.Join(dir, walFile))
	if bytes.Contains(data, secret) || bytes.Contains(data, key) {
		t.Fatal("WAL leaks plaintext")
	}
}

func TestWALSnapshotPlusLog(t *testing.T) {
	// The intended deployment: snapshot + WAL tail. Restore the snapshot,
	// then replay only the post-snapshot log.
	dir := t.TempDir()
	e := walEnclave(dir)
	s := core.New(e, nil, core.Defaults(64))
	ps := New(s, dir, Naive)
	m := sim.NewMeter(e.Model())
	for i := 0; i < 30; i++ {
		if err := ps.Set(m, []byte(fmt.Sprintf("k%02d", i)), []byte("base")); err != nil {
			t.Fatal(err)
		}
	}
	if err := ps.Snapshot(m); err != nil {
		t.Fatal(err)
	}
	// Post-snapshot tail goes to a fresh WAL.
	w, err := NewWAL(s, dir, 8)
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Set(m, []byte("k00"), []byte("tail-update")); err != nil {
		t.Fatal(err)
	}
	if err := w.Set(m, []byte("k99"), []byte("tail-insert")); err != nil {
		t.Fatal(err)
	}
	if err := w.Pin(m); err != nil {
		t.Fatal(err)
	}
	w.Close()

	// Crash + recover: snapshot, then WAL replay on top.
	e2 := walEnclave(dir)
	m2 := sim.NewMeter(e2.Model())
	restored, err := Restore(e2, dir, CounterIDFor(dir), m2)
	if err != nil {
		t.Fatal(err)
	}
	w2, err := ReplayWAL(restored, dir, 8, m2)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	v, err := restored.Get(m2, []byte("k00"))
	if err != nil || string(v) != "tail-update" {
		t.Fatalf("tail update lost: %q %v", v, err)
	}
	v, err = restored.Get(m2, []byte("k99"))
	if err != nil || string(v) != "tail-insert" {
		t.Fatalf("tail insert lost: %q %v", v, err)
	}
	if err := restored.VerifyAll(m2); err != nil {
		t.Fatal(err)
	}
}
