// Write-ahead-log persistence: the §7 alternative to snapshots.
//
// The paper notes that snapshot persistence loses every update since the
// last snapshot, and that the fine-grained alternative — "to store a log
// entry for each operation" — founders on the cost of SGX monotonic
// counters if every record is pinned individually. This file implements
// that alternative with the mitigation the paper points to (ROTE/LCM-style
// amortization): sealed log records carry a dense sequence number, and the
// platform counter is only bumped once per batch, bounding both the replay
// window and the counter cost.
//
// Guarantees:
//   - every acknowledged mutation survives a crash (replay from the last
//     snapshot + log);
//   - a tampered, truncated or reordered log fails recovery (sealing +
//     dense sequence numbers);
//   - rolling the whole log back past the last counter-pinned batch is
//     detected via the platform monotonic counter. Records after the last
//     pin but before a crash are protected by sealing but not by the
//     counter — exactly the bounded window the batch size buys.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"shieldstore/internal/core"
	"shieldstore/internal/fault"
	"shieldstore/internal/sim"
)

// ErrLogCorrupt reports an unreadable, tampered or non-contiguous log.
var ErrLogCorrupt = errors.New("persist: write-ahead log corrupt")

const walFile = "wal.bin"

// log record ops. walSet/walDelete are the original log-then-apply record
// kinds; walAppend/walIncr exist for the journal path (LogOp), which logs
// the operation as executed instead of materializing the resulting value.
const (
	walSet byte = iota + 1
	walDelete
	walAppend
	walIncr // value payload: 8-byte little-endian delta
)

// WAL wraps a core.Store with per-operation durability. Like the
// underlying store it is single-owner.
type WAL struct {
	main    *core.Store
	dir     string
	counter uint32

	f   *os.File
	seq uint64 // next record sequence number

	// batchEvery controls how many records share one monotonic-counter
	// increment (the ROTE-style amortization).
	batchEvery uint64
	pinnedSeq  uint64 // highest sequence covered by the platform counter

	faults *fault.Plane // optional crash-injection plane (tests)
}

// SetFaultPlane attaches a fault-injection plane (nil detaches).
func (w *WAL) SetFaultPlane(p *fault.Plane) { w.faults = p }

// NewWAL creates a write-ahead-logged store writing into dir. batchEvery
// bounds the rollback-unprotected tail (default 64).
//
//ss:host(log open at store construction, outside the measured window)
func NewWAL(store *core.Store, dir string, batchEvery int) (*WAL, error) {
	if batchEvery <= 0 {
		batchEvery = 64
	}
	id := CounterIDFor(dir + "/wal")
	store.Enclave().EnsureMonotonicCounter(id)
	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return nil, err
	}
	return &WAL{
		main:       store,
		dir:        dir,
		counter:    id,
		f:          f,
		batchEvery: uint64(batchEvery),
	}, nil
}

// Main exposes the wrapped store.
func (w *WAL) Main() *core.Store { return w.main }

// Seq returns the next record sequence number (tests).
func (w *WAL) Seq() uint64 { return w.seq }

// Close flushes and releases the log file. The Sync matters: records are
// written with write(2) only, and a close that drops them in the page
// cache would let a machine crash eat acknowledged, even counter-pinned,
// operations.
//
//ss:host(shutdown path, outside the measured window)
func (w *WAL) Close() error {
	if err := w.f.Sync(); err != nil {
		w.f.Close()
		return err
	}
	return w.f.Close()
}

// append seals and writes one log record, bumping the platform counter at
// batch boundaries. Each acknowledged record costs one enclave exit: the
// enclave cannot issue the write(2) itself, so the sealed bytes leave via
// an OCALL before the storage write is charged.
//
//ss:ocall
func (w *WAL) append(m *sim.Meter, op byte, key, val []byte) error {
	rec := make([]byte, 0, 17+len(key)+len(val))
	var hdr [17]byte
	binary.LittleEndian.PutUint64(hdr[0:], w.seq)
	hdr[8] = op
	binary.LittleEndian.PutUint32(hdr[9:], uint32(len(key)))
	binary.LittleEndian.PutUint32(hdr[13:], uint32(len(val)))
	rec = append(rec, hdr[:]...)
	rec = append(rec, key...)
	rec = append(rec, val...)

	sealed := w.main.Enclave().Seal(m, rec)
	var frame [4]byte
	binary.LittleEndian.PutUint32(frame[:], uint32(len(sealed)))
	if w.faults.Hit(fault.PointWALTear) {
		// Crash mid-append: a deterministic prefix of frame+record reaches
		// the file, the rest never does. The sequence number is NOT
		// advanced — the operation was never acknowledged, so recovery must
		// treat the tail as garbage, not as a lost record.
		torn := append(append([]byte(nil), frame[:]...), sealed...)
		w.f.Write(torn[:w.faults.Pick(len(torn))])
		return fault.ErrInjected
	}
	if _, err := w.f.Write(frame[:]); err != nil {
		return err
	}
	if _, err := w.f.Write(sealed); err != nil {
		return err
	}
	w.main.Enclave().Syscall(m, false)
	m.Charge(w.main.Enclave().Model().StorageWrite(len(sealed) + 4))

	w.seq++
	if w.seq-w.pinnedSeq >= w.batchEvery {
		if _, err := w.main.Enclave().IncrementMonotonicCounter(m, w.counter); err != nil {
			return err
		}
		w.pinnedSeq = w.seq
	}
	return nil
}

// Set logs then applies a set.
func (w *WAL) Set(m *sim.Meter, key, value []byte) error {
	if err := w.append(m, walSet, key, value); err != nil {
		return err
	}
	return w.main.Set(m, key, value)
}

// Delete logs then applies a delete.
func (w *WAL) Delete(m *sim.Meter, key []byte) error {
	// Apply-first would lose the tombstone on crash between the two
	// steps; log-first means replay may delete an absent key, which is
	// idempotent.
	if err := w.append(m, walDelete, key, nil); err != nil {
		return err
	}
	return w.main.Delete(m, key)
}

// Append logs the resulting value (physical logging keeps replay simple
// and idempotent).
func (w *WAL) Append(m *sim.Meter, key, suffix []byte) error {
	old, err := w.main.Get(m, key)
	if err != nil && !errors.Is(err, core.ErrNotFound) {
		return err
	}
	nv := append(append([]byte{}, old...), suffix...)
	return w.Set(m, key, nv)
}

// Get reads through to the store.
func (w *WAL) Get(m *sim.Meter, key []byte) ([]byte, error) {
	return w.main.Get(m, key)
}

// LogOp implements core.Journal: a partition worker calls it once per
// successfully applied mutation, in apply order, so replaying the log
// over the partition's last snapshot reproduces its state. Unlike
// Set/Delete above (log-then-apply wrappers), the op is already applied
// when logged; the worker acknowledges the client only after journaling,
// so a crash between apply and log loses only unacknowledged work.
//
//ss:ocall
func (w *WAL) LogOp(m *sim.Meter, kind core.BatchKind, key, value []byte, delta int64) error {
	switch kind {
	case core.BatchSet:
		return w.append(m, walSet, key, value)
	case core.BatchDelete:
		return w.append(m, walDelete, key, nil)
	case core.BatchAppend:
		return w.append(m, walAppend, key, value)
	case core.BatchIncr:
		var d [8]byte
		binary.LittleEndian.PutUint64(d[:], uint64(delta))
		return w.append(m, walIncr, key, d[:])
	default:
		return fmt.Errorf("persist: cannot journal op kind %d", kind)
	}
}

// Pin forces a counter increment covering every record so far (clean
// shutdown: shrinks the unprotected tail to zero).
func (w *WAL) Pin(m *sim.Meter) error {
	if w.pinnedSeq == w.seq {
		return nil
	}
	if _, err := w.main.Enclave().IncrementMonotonicCounter(m, w.counter); err != nil {
		return err
	}
	w.pinnedSeq = w.seq
	return nil
}

// ReplayWAL rebuilds state by applying the log in dir to the given store
// (typically freshly restored from the last snapshot, or empty). It
// verifies sealing, sequence density, and — when strict — that the log
// covers at least the batches pinned by the platform counter (rollback
// defense). It returns a WAL positioned to continue appending. Reading
// the log back is an enclave exit, charged up front.
//
//ss:ocall
//ss:attacker — the log file is host-controlled input.
func ReplayWAL(store *core.Store, dir string, batchEvery int, m *sim.Meter) (*WAL, error) {
	if batchEvery <= 0 {
		batchEvery = 64
	}
	id := CounterIDFor(dir + "/wal")
	pinned := store.Enclave().EnsureMonotonicCounter(id)

	store.Enclave().Syscall(m, false)
	data, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, err
	}
	seq := uint64(0)
	off := 0
	for off < len(data) {
		if off+4 > len(data) {
			return nil, fmt.Errorf("%w: truncated frame header", ErrLogCorrupt)
		}
		n := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4
		if n <= 0 || off+n > len(data) {
			return nil, fmt.Errorf("%w: truncated record", ErrLogCorrupt)
		}
		rec, err := store.Enclave().Unseal(m, data[off:off+n])
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrLogCorrupt, err)
		}
		off += n
		if len(rec) < 17 {
			return nil, fmt.Errorf("%w: short record", ErrLogCorrupt)
		}
		gotSeq := binary.LittleEndian.Uint64(rec[0:])
		if gotSeq != seq {
			return nil, fmt.Errorf("%w: sequence %d, want %d (reordered or dropped)", ErrLogCorrupt, gotSeq, seq)
		}
		op := rec[8]
		kl := int(binary.LittleEndian.Uint32(rec[9:]))
		vl := int(binary.LittleEndian.Uint32(rec[13:]))
		if 17+kl+vl != len(rec) {
			return nil, fmt.Errorf("%w: bad lengths", ErrLogCorrupt)
		}
		key := rec[17 : 17+kl]
		val := rec[17+kl:]
		switch op {
		case walSet:
			if err := store.Set(m, key, val); err != nil {
				return nil, err
			}
		case walDelete:
			if err := store.Delete(m, key); err != nil && !errors.Is(err, core.ErrNotFound) {
				return nil, err
			}
		case walAppend:
			if err := store.Append(m, key, val); err != nil {
				return nil, err
			}
		case walIncr:
			if vl != 8 {
				return nil, fmt.Errorf("%w: incr payload must be 8 bytes, got %d", ErrLogCorrupt, vl)
			}
			if _, err := store.Incr(m, key, int64(binary.LittleEndian.Uint64(val))); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("%w: unknown op %d", ErrLogCorrupt, op)
		}
		seq++
	}

	// Rollback defense: the platform counter moved once per full batch
	// (plus explicit pins). A log shorter than the pinned history was
	// rolled back.
	minSeq := pinned * uint64(batchEvery)
	if pinned > 0 && seq < minSeqRequired(pinned, uint64(batchEvery)) {
		return nil, fmt.Errorf("%w: log has %d records but platform counter pins >= %d",
			ErrRollback, seq, minSeqRequired(pinned, uint64(batchEvery)))
	}
	_ = minSeq

	f, err := os.OpenFile(filepath.Join(dir, walFile), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return nil, err
	}
	return &WAL{
		main:       store,
		dir:        dir,
		counter:    id,
		f:          f,
		seq:        seq,
		batchEvery: uint64(batchEvery),
		pinnedSeq:  seq,
	}, nil
}

// minSeqRequired is conservative: `pins` increments imply at least
// (pins-1) full batches plus one record (the final pin may be an explicit
// shutdown Pin covering a partial batch).
func minSeqRequired(pins, batch uint64) uint64 {
	if pins == 0 {
		return 0
	}
	return (pins-1)*batch + 1
}
