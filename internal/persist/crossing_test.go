package persist

import (
	"fmt"
	"testing"

	"shieldstore/internal/core"

	"shieldstore/internal/sim"
)

// These tests pin the boundary-cost accounting that shieldvet's
// boundarycost checker surfaced: every host file I/O on the persistence
// paths is an enclave exit and must charge a modeled syscall crossing,
// not just the storage bandwidth term. Before the fix, WAL appends and
// snapshot/restore file operations were free OCALLs — the simulated
// persistence overhead (Figure-style numbers derived from these meters)
// was silently optimistic.

// TestWALAppendChargesCrossing: each durable append is one exit.
func TestWALAppendChargesCrossing(t *testing.T) {
	dir := t.TempDir()
	// batchEvery is large so no monotonic-counter increment contributes
	// extra syscalls inside the measured window.
	w, m := newWAL(t, dir, 1<<20)
	// Warm up: the store's first write SbrkUntrusteds an arena chunk from
	// the host, a legitimate crossing that would otherwise pollute the
	// per-append count.
	if err := w.Set(m, []byte("warmup"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	base := m.Snapshot()
	for i := 0; i < 3; i++ {
		if err := w.Set(m, []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	d := m.Snapshot().Sub(base)
	if got := d.Events[sim.CtrSyscall]; got != 3 {
		t.Fatalf("3 WAL appends charged %d syscall crossings, want 3", got)
	}
	if got := d.Events[sim.CtrOCall]; got < 3 {
		t.Fatalf("3 WAL appends charged %d OCALLs, want >= 3", got)
	}
}

// TestSnapshotChargesCrossing: persisting the sealed metadata (and, for
// the data stream, the modeled write-out) exits the enclave.
func TestSnapshotChargesCrossing(t *testing.T) {
	p, m := setup(t, Naive)
	fill(t, p, m, 16)
	base := m.Snapshot()
	if err := p.Snapshot(m); err != nil {
		t.Fatal(err)
	}
	p.Drain(m)
	d := m.Snapshot().Sub(base)
	if got := d.Events[sim.CtrSyscall]; got < 1 {
		t.Fatalf("snapshot charged %d syscall crossings, want >= 1", got)
	}
}

// TestRestoreChargesCrossing: reading the two snapshot files back is two
// exits before a single byte is verified.
func TestRestoreChargesCrossing(t *testing.T) {
	p, m := setup(t, Naive)
	fill(t, p, m, 16)
	if err := p.Snapshot(m); err != nil {
		t.Fatal(err)
	}
	p.Drain(m)

	m2 := sim.NewMeter(p.enclave.Model())
	if _, err := Restore(p.enclave, p.dir, p.counter, m2); err != nil {
		t.Fatal(err)
	}
	if got := m2.Events(sim.CtrSyscall); got < 2 {
		t.Fatalf("restore charged %d syscall crossings, want >= 2 (meta + data reads)", got)
	}
}

// TestReplayWALChargesCrossing: reading the log back on restart is an
// exit even when the log turns out to be empty.
func TestReplayWALChargesCrossing(t *testing.T) {
	dir := t.TempDir()
	w, m := newWAL(t, dir, 8)
	if err := w.Set(m, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	e := walEnclave(dir)
	s := core.New(e, nil, core.Defaults(64))
	m2 := sim.NewMeter(e.Model())
	if _, err := ReplayWAL(s, dir, 8, m2); err != nil {
		t.Fatal(err)
	}
	if got := m2.Events(sim.CtrSyscall); got < 1 {
		t.Fatalf("replay charged %d syscall crossings, want >= 1", got)
	}
}

// TestRecoverWALChargesCrossing: torn-tail recovery reads the log too.
func TestRecoverWALChargesCrossing(t *testing.T) {
	dir := t.TempDir()
	w, m := newWAL(t, dir, 8)
	if err := w.Set(m, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	e := walEnclave(dir)
	s := core.New(e, nil, core.Defaults(64))
	m2 := sim.NewMeter(e.Model())
	if _, _, err := RecoverWAL(s, dir, 8, m2); err != nil {
		t.Fatal(err)
	}
	if got := m2.Events(sim.CtrSyscall); got < 1 {
		t.Fatalf("recovery charged %d syscall crossings, want >= 1", got)
	}
}
