// Crash-consistent WAL recovery: replay-to-last-valid-prefix.
//
// ReplayWAL treats any malformed byte as fatal — correct for an intact
// log, but a *crash mid-append* legitimately leaves a torn frame at the
// tail (see WAL.append's tear injection point). RecoverWAL distinguishes
// the two: sealed records are replayed while they parse, authenticate
// and stay sequence-dense; the first invalid byte ends the valid prefix
// and everything after it is discarded (and truncated off the file), with
// the discard reported. Security is unchanged — an attacker "tearing" the
// log deliberately can only shorten it, and a prefix shorter than the
// platform counter's pinned history still fails with ErrRollback exactly
// as in ReplayWAL.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"shieldstore/internal/core"
	"shieldstore/internal/sim"
)

// RecoveryReport summarizes a crash recovery.
type RecoveryReport struct {
	// Applied is the number of log records replayed into the store.
	Applied uint64
	// DiscardedBytes is the size of the invalid tail truncated off the
	// log (0 for a clean log).
	DiscardedBytes int
	// TailErr is what was wrong with the discarded tail (nil when the
	// log was clean).
	TailErr error
}

// String renders the report for logs.
func (r *RecoveryReport) String() string {
	if r.TailErr == nil {
		return fmt.Sprintf("recovered: %d records, clean tail", r.Applied)
	}
	return fmt.Sprintf("recovered: %d records, %d tail bytes discarded (%v)",
		r.Applied, r.DiscardedBytes, r.TailErr)
}

// RecoverWAL rebuilds state from the log in dir, tolerating a torn tail:
// the longest valid record prefix is replayed into store, the rest is
// truncated off the file. The rollback defense is preserved — a prefix
// shorter than the platform counter's pinned history returns ErrRollback.
// On success the returned WAL continues appending after the last valid
// record. Reading the log back is an enclave exit, charged up front.
//
//ss:ocall
//ss:attacker — a torn or tampered log is host-controlled input.
func RecoverWAL(store *core.Store, dir string, batchEvery int, m *sim.Meter) (*WAL, *RecoveryReport, error) {
	if batchEvery <= 0 {
		batchEvery = 64
	}
	id := CounterIDFor(dir + "/wal")
	pinned := store.Enclave().EnsureMonotonicCounter(id)

	path := filepath.Join(dir, walFile)
	store.Enclave().Syscall(m, false)
	data, err := os.ReadFile(path)
	if err != nil && !errors.Is(err, os.ErrNotExist) {
		return nil, nil, err
	}

	rep := &RecoveryReport{}
	seq := uint64(0)
	off := 0   // scan position
	valid := 0 // end of the last fully applied record
	for off < len(data) {
		rec, next, terr := parseSealedRecord(store, m, data, off, seq)
		if terr != nil {
			rep.TailErr = terr
			break
		}
		// Apply before advancing: a store-level failure here is real
		// (tampered memory, not a torn log) and aborts recovery.
		if err := applyRecord(store, m, rec); err != nil {
			return nil, nil, err
		}
		off = next
		valid = next
		seq++
	}
	rep.Applied = seq
	rep.DiscardedBytes = len(data) - valid

	// Rollback defense, identical to ReplayWAL: the valid prefix must
	// still cover the batches the platform counter pinned. A host that
	// "tears" away acknowledged, pinned records is rolling back.
	if pinned > 0 && seq < minSeqRequired(pinned, uint64(batchEvery)) {
		return nil, nil, fmt.Errorf("%w: log has %d valid records but platform counter pins >= %d",
			ErrRollback, seq, minSeqRequired(pinned, uint64(batchEvery)))
	}

	// Make the repair durable: the discarded tail must not resurrect on
	// the next recovery.
	if rep.DiscardedBytes > 0 {
		if err := os.Truncate(path, int64(valid)); err != nil {
			return nil, nil, err
		}
	}

	f, err := os.OpenFile(path, os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o600)
	if err != nil {
		return nil, nil, err
	}
	return &WAL{
		main:       store,
		dir:        dir,
		counter:    id,
		f:          f,
		seq:        seq,
		batchEvery: uint64(batchEvery),
		pinnedSeq:  seq,
	}, rep, nil
}

// parseSealedRecord reads, unseals and validates the record at off,
// returning the plaintext record and the offset past it. Any defect —
// short frame, bad seal, wrong sequence, inconsistent lengths — comes
// back as a typed ErrLogCorrupt describing the tail.
func parseSealedRecord(store *core.Store, m *sim.Meter, data []byte, off int, wantSeq uint64) (rec []byte, next int, err error) {
	if off+4 > len(data) {
		return nil, 0, fmt.Errorf("%w: truncated frame header", ErrLogCorrupt)
	}
	n := int(binary.LittleEndian.Uint32(data[off:]))
	off += 4
	if n <= 0 || off+n > len(data) {
		return nil, 0, fmt.Errorf("%w: truncated record", ErrLogCorrupt)
	}
	rec, uerr := store.Enclave().Unseal(m, data[off:off+n])
	if uerr != nil {
		return nil, 0, fmt.Errorf("%w: %v", ErrLogCorrupt, uerr)
	}
	if len(rec) < 17 {
		return nil, 0, fmt.Errorf("%w: short record", ErrLogCorrupt)
	}
	gotSeq := binary.LittleEndian.Uint64(rec[0:])
	if gotSeq != wantSeq {
		return nil, 0, fmt.Errorf("%w: sequence %d, want %d (reordered or dropped)", ErrLogCorrupt, gotSeq, wantSeq)
	}
	kl := int(binary.LittleEndian.Uint32(rec[9:]))
	vl := int(binary.LittleEndian.Uint32(rec[13:]))
	if 17+kl+vl != len(rec) {
		return nil, 0, fmt.Errorf("%w: bad lengths", ErrLogCorrupt)
	}
	switch op := rec[8]; op {
	case walSet, walDelete, walAppend:
	case walIncr:
		if vl != 8 {
			return nil, 0, fmt.Errorf("%w: incr payload must be 8 bytes, got %d", ErrLogCorrupt, vl)
		}
	default:
		return nil, 0, fmt.Errorf("%w: unknown op %d", ErrLogCorrupt, op)
	}
	return rec, off + n, nil
}

// applyRecord replays one validated plaintext record into the store.
//
//ss:nopanic-ok(record lengths are validated by parseSealedRecord before apply)
func applyRecord(store *core.Store, m *sim.Meter, rec []byte) error {
	kl := int(binary.LittleEndian.Uint32(rec[9:]))
	key := rec[17 : 17+kl]
	val := rec[17+kl:]
	switch rec[8] {
	case walDelete:
		if err := store.Delete(m, key); err != nil && !errors.Is(err, core.ErrNotFound) {
			return err
		}
		return nil
	case walAppend:
		return store.Append(m, key, val)
	case walIncr:
		_, err := store.Incr(m, key, int64(binary.LittleEndian.Uint64(val)))
		return err
	default:
		return store.Set(m, key, val)
	}
}
