package persist

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"shieldstore/internal/core"
	"shieldstore/internal/mem"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
)

func newEnclave() *sgx.Enclave {
	space := mem.NewSpace(mem.Config{EPCBytes: 16 << 20})
	return sgx.New(sgx.Config{Space: space, Seed: 41})
}

func setup(t *testing.T, mode Mode) (*Store, *sim.Meter) {
	t.Helper()
	e := newEnclave()
	s := core.New(e, nil, core.Defaults(32))
	p := New(s, t.TempDir(), mode)
	return p, sim.NewMeter(e.Model())
}

func fill(t *testing.T, p *Store, m *sim.Meter, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		if err := p.Set(m, []byte(fmt.Sprintf("k%04d", i)), []byte(fmt.Sprintf("v%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSnapshotRestoreRoundTrip(t *testing.T) {
	for _, mode := range []Mode{Naive, Optimized} {
		t.Run(mode.String(), func(t *testing.T) {
			p, m := setup(t, mode)
			fill(t, p, m, 100)
			if err := p.Snapshot(m); err != nil {
				t.Fatal(err)
			}
			p.Drain(m)

			m2 := sim.NewMeter(p.enclave.Model())
			restored, err := Restore(p.enclave, p.dir, p.counter, m2)
			if err != nil {
				t.Fatal(err)
			}
			if restored.Keys() != 100 {
				t.Fatalf("restored keys = %d", restored.Keys())
			}
			for i := 0; i < 100; i++ {
				got, err := restored.Get(m2, []byte(fmt.Sprintf("k%04d", i)))
				if err != nil {
					t.Fatal(err)
				}
				if string(got) != fmt.Sprintf("v%04d", i) {
					t.Fatalf("key %d = %q", i, got)
				}
			}
		})
	}
}

func TestSnapshotDataIsEncrypted(t *testing.T) {
	p, m := setup(t, Naive)
	secret := []byte("super-secret-value-bytes")
	if err := p.Set(m, []byte("secretkey0000001"), secret); err != nil {
		t.Fatal(err)
	}
	if err := p.Snapshot(m); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(filepath.Join(p.dir, dataFile))
	if err != nil {
		t.Fatal(err)
	}
	if bytes.Contains(data, secret) || bytes.Contains(data, []byte("secretkey0000001")) {
		t.Fatal("snapshot leaks plaintext")
	}
	meta, err := os.ReadFile(filepath.Join(p.dir, metaFile))
	if err != nil {
		t.Fatal(err)
	}
	keys := p.main.Cipher().ExportKeys()
	if bytes.Contains(meta, keys.Data[:]) {
		t.Fatal("sealed metadata leaks the data key")
	}
}

func TestRollbackDetected(t *testing.T) {
	p, m := setup(t, Naive)
	fill(t, p, m, 20)
	if err := p.Snapshot(m); err != nil {
		t.Fatal(err)
	}
	// Save the old snapshot, take a new one, restore the old (rollback).
	oldMeta, _ := os.ReadFile(filepath.Join(p.dir, metaFile))
	oldData, _ := os.ReadFile(filepath.Join(p.dir, dataFile))
	if err := p.Set(m, []byte("k0000"), []byte("vNEW")); err != nil {
		t.Fatal(err)
	}
	if err := p.Snapshot(m); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(p.dir, metaFile), oldMeta, 0o600); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(p.dir, dataFile), oldData, 0o600); err != nil {
		t.Fatal(err)
	}
	_, err := Restore(p.enclave, p.dir, p.counter, m)
	if !errors.Is(err, ErrRollback) {
		t.Fatalf("rollback not detected: %v", err)
	}
}

func TestTamperedSnapshotDetected(t *testing.T) {
	p, m := setup(t, Naive)
	fill(t, p, m, 20)
	if err := p.Snapshot(m); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(p.dir, dataFile)
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0x80
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(p.enclave, p.dir, p.counter, m); err == nil {
		t.Fatal("tampered snapshot restored")
	}
	// Tampered metadata too.
	p2, m2 := setup(t, Naive)
	fill(t, p2, m2, 5)
	if err := p2.Snapshot(m2); err != nil {
		t.Fatal(err)
	}
	mpath := filepath.Join(p2.dir, metaFile)
	meta, _ := os.ReadFile(mpath)
	meta[10] ^= 1
	if err := os.WriteFile(mpath, meta, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(p2.enclave, p2.dir, p2.counter, m2); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("tampered metadata: %v", err)
	}
}

func TestOptimizedServesDuringSnapshot(t *testing.T) {
	p, m := setup(t, Optimized)
	fill(t, p, m, 50)
	if err := p.Snapshot(m); err != nil {
		t.Fatal(err)
	}
	if !p.InSnapshot() {
		t.Fatal("optimized snapshot should leave a draining child")
	}
	// Reads and writes work against the temp table.
	got, err := p.Get(m, []byte("k0001"))
	if err != nil || string(got) != "v0001" {
		t.Fatalf("read during snapshot: %q %v", got, err)
	}
	if err := p.Set(m, []byte("k0001"), []byte("vXXXX")); err != nil {
		t.Fatal(err)
	}
	if err := p.Set(m, []byte("newkey"), []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	if err := p.Delete(m, []byte("k0002")); err != nil {
		t.Fatal(err)
	}
	// All visible through the wrapper mid-snapshot.
	got, _ = p.Get(m, []byte("k0001"))
	if string(got) != "vXXXX" {
		t.Fatalf("update invisible during snapshot: %q", got)
	}
	if _, err := p.Get(m, []byte("k0002")); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("tombstone invisible: %v", err)
	}
	got, _ = p.Get(m, []byte("newkey"))
	if string(got) != "fresh" {
		t.Fatalf("insert invisible during snapshot: %q", got)
	}

	// Drain and check everything merged into main.
	p.Drain(m)
	if p.InSnapshot() {
		t.Fatal("Drain left snapshot open")
	}
	got, err = p.main.Get(m, []byte("k0001"))
	if err != nil || string(got) != "vXXXX" {
		t.Fatalf("merge lost update: %q %v", got, err)
	}
	if _, err := p.main.Get(m, []byte("k0002")); !errors.Is(err, core.ErrNotFound) {
		t.Fatal("merge lost delete")
	}
	got, err = p.main.Get(m, []byte("newkey"))
	if err != nil || string(got) != "fresh" {
		t.Fatalf("merge lost insert: %q %v", got, err)
	}
	mm := sim.NewMeter(p.enclave.Model())
	if err := p.main.VerifyAll(mm); err != nil {
		t.Fatal(err)
	}
}

func TestSnapshotCapturesPreForkState(t *testing.T) {
	// Writes during the snapshot window must NOT appear in the snapshot
	// (the child sees the fork-time copy), but survive in memory.
	p, m := setup(t, Optimized)
	fill(t, p, m, 30)
	if err := p.Snapshot(m); err != nil {
		t.Fatal(err)
	}
	if err := p.Set(m, []byte("k0000"), []byte("post-fork!")); err != nil {
		t.Fatal(err)
	}
	p.Drain(m)

	m2 := sim.NewMeter(p.enclave.Model())
	restored, err := Restore(p.enclave, p.dir, p.counter, m2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Get(m2, []byte("k0000"))
	if err != nil || string(got) != "v0000" {
		t.Fatalf("snapshot should hold pre-fork value: %q %v", got, err)
	}
	// The live store holds the post-fork value.
	live, err := p.Get(m, []byte("k0000"))
	if err != nil || string(live) != "post-fork!" {
		t.Fatalf("live store lost post-fork write: %q %v", live, err)
	}
}

func TestNaiveBlocksLongerThanOptimized(t *testing.T) {
	// §6.5: the naive mode charges the serving thread the whole stream;
	// optimized charges only sealing.
	blockCost := func(mode Mode) uint64 {
		p, m := setup(t, mode)
		fill(t, p, m, 300)
		before := m.Cycles()
		if err := p.Snapshot(m); err != nil {
			t.Fatal(err)
		}
		return m.Cycles() - before
	}
	naive := blockCost(Naive)
	opt := blockCost(Optimized)
	if opt >= naive {
		t.Fatalf("optimized blocking (%d) not cheaper than naive (%d)", opt, naive)
	}
}

func TestAppendDuringSnapshot(t *testing.T) {
	p, m := setup(t, Optimized)
	fill(t, p, m, 10)
	if err := p.Snapshot(m); err != nil {
		t.Fatal(err)
	}
	if err := p.Append(m, []byte("k0003"), []byte("+tail")); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Get(m, []byte("k0003"))
	if string(got) != "v0003+tail" {
		t.Fatalf("append during snapshot: %q", got)
	}
	p.Drain(m)
	got, _ = p.main.Get(m, []byte("k0003"))
	if string(got) != "v0003+tail" {
		t.Fatalf("append lost in merge: %q", got)
	}
}

func TestBackToBackSnapshots(t *testing.T) {
	p, m := setup(t, Optimized)
	fill(t, p, m, 20)
	if err := p.Snapshot(m); err != nil {
		t.Fatal(err)
	}
	if err := p.Set(m, []byte("mid"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	// Second snapshot while the first is draining: must finish the first.
	if err := p.Snapshot(m); err != nil {
		t.Fatal(err)
	}
	p.Drain(m)
	m2 := sim.NewMeter(p.enclave.Model())
	restored, err := Restore(p.enclave, p.dir, p.counter, m2)
	if err != nil {
		t.Fatal(err)
	}
	got, err := restored.Get(m2, []byte("mid"))
	if err != nil || string(got) != "1" {
		t.Fatalf("second snapshot missing merged write: %q %v", got, err)
	}
}

func TestMonotonicCounterChargesSnapshot(t *testing.T) {
	p, m := setup(t, Optimized)
	fill(t, p, m, 5)
	before := m.Events(sim.CtrMonotonicInc)
	if err := p.Snapshot(m); err != nil {
		t.Fatal(err)
	}
	if m.Events(sim.CtrMonotonicInc) != before+1 {
		t.Fatal("snapshot must bump the monotonic counter")
	}
}

func TestSnapshotPreservesFeatureFlags(t *testing.T) {
	e := newEnclave()
	opts := core.Defaults(32)
	opts.RangeIndex = true
	s := core.New(e, nil, opts)
	p := New(s, t.TempDir(), Naive)
	m := sim.NewMeter(e.Model())
	for i := 0; i < 20; i++ {
		if err := p.Set(m, []byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Snapshot(m); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(e, p.dir, p.counter, m)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Options().RangeIndex {
		t.Fatal("RangeIndex flag lost through snapshot")
	}
	kvs, err := restored.Range(m, []byte("k05"), []byte("k10"), 0)
	if err != nil || len(kvs) != 5 {
		t.Fatalf("restored range: %d, %v", len(kvs), err)
	}
}

func TestSnapshotRestoreMerkleMode(t *testing.T) {
	e := newEnclave()
	opts := core.Defaults(32)
	opts.MerkleTree = true
	s := core.New(e, nil, opts)
	p := New(s, t.TempDir(), Naive)
	m := sim.NewMeter(e.Model())
	for i := 0; i < 30; i++ {
		if err := p.Set(m, []byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Snapshot(m); err != nil {
		t.Fatal(err)
	}
	restored, err := Restore(e, p.dir, p.counter, m)
	if err != nil {
		t.Fatal(err)
	}
	if !restored.Options().MerkleTree {
		t.Fatal("MerkleTree flag lost through snapshot")
	}
	got, err := restored.Get(m, []byte("k07"))
	if err != nil || string(got) != "v" {
		t.Fatalf("restored merkle store: %q %v", got, err)
	}
	// Tampered data under Merkle restore is detected via root mismatch.
	p2dir := t.TempDir()
	s2 := core.New(e, nil, opts)
	p2 := New(s2, p2dir, Naive)
	for i := 0; i < 10; i++ {
		if err := p2.Set(m, []byte(fmt.Sprintf("x%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := p2.Snapshot(m); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(p2dir, dataFile)
	data, _ := os.ReadFile(path)
	data[len(data)-3] ^= 0x20
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	if _, err := Restore(e, p2dir, p2.counter, m); err == nil {
		t.Fatal("tampered merkle snapshot restored")
	}
}
