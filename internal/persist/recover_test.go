package persist

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"testing"

	"shieldstore/internal/core"
	"shieldstore/internal/fault"
	"shieldstore/internal/sim"
)

// sealedLog builds a multi-record log (sets + one delete) in dir and
// returns its bytes, the record boundary offsets (boundary[k] = end of
// record k-1; boundary[0] = 0), and the expected store contents after
// each prefix of k records.
func sealedLog(t *testing.T, dir string) (data []byte, boundaries []int, want []map[string]string) {
	t.Helper()
	w, m := newWAL(t, dir, 100) // no counter pins: every prefix is legal
	steps := []struct {
		op       byte
		key, val string
	}{
		{walSet, "alpha", "1"},
		{walSet, "beta", "a-much-longer-value-padding-padding"},
		{walSet, "gamma", ""},
		{walDelete, "alpha", ""},
		{walSet, "alpha", "2"},
		{walSet, "delta", "dd"},
	}
	state := map[string]string{}
	want = append(want, map[string]string{})
	for _, st := range steps {
		if st.op == walDelete {
			if err := w.Delete(m, []byte(st.key)); err != nil {
				t.Fatal(err)
			}
			delete(state, st.key)
		} else {
			if err := w.Set(m, []byte(st.key), []byte(st.val)); err != nil {
				t.Fatal(err)
			}
			state[st.key] = st.val
		}
		snap := make(map[string]string, len(state))
		for k, v := range state {
			snap[k] = v
		}
		want = append(want, snap)
	}
	w.Close()

	data, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	boundaries = []int{0}
	for off := 0; off < len(data); {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4 + n
		boundaries = append(boundaries, off)
	}
	if boundaries[len(boundaries)-1] != len(data) {
		t.Fatalf("frame parse mismatch: %v vs %d bytes", boundaries, len(data))
	}
	if len(boundaries) != len(steps)+1 {
		t.Fatalf("got %d records, want %d", len(boundaries)-1, len(steps))
	}
	return data, boundaries, want
}

// recordsIn returns how many complete records fit in a prefix of length n.
func recordsIn(boundaries []int, n int) int {
	k := 0
	for k+1 < len(boundaries) && boundaries[k+1] <= n {
		k++
	}
	return k
}

func TestWALTornWriteSweep(t *testing.T) {
	src := t.TempDir()
	data, boundaries, want := sealedLog(t, src)

	for cut := 0; cut <= len(data); cut++ {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, walFile), data[:cut], 0o600); err != nil {
			t.Fatal(err)
		}
		e := walEnclave(dir)
		s := core.New(e, nil, core.Defaults(64))
		m := sim.NewMeter(e.Model())
		w, rep, err := RecoverWAL(s, dir, 100, m)
		if err != nil {
			t.Fatalf("cut=%d: recovery failed: %v", cut, err)
		}
		k := recordsIn(boundaries, cut)
		if rep.Applied != uint64(k) {
			t.Fatalf("cut=%d: applied %d records, want %d", cut, rep.Applied, k)
		}
		if wantDisc := cut - boundaries[k]; rep.DiscardedBytes != wantDisc {
			t.Fatalf("cut=%d: discarded %d bytes, want %d", cut, rep.DiscardedBytes, wantDisc)
		}
		if (rep.TailErr == nil) != (cut == boundaries[k]) {
			t.Fatalf("cut=%d: TailErr=%v at boundary=%v", cut, rep.TailErr, cut == boundaries[k])
		}
		// No phantom records, no lost prefix: contents must equal the
		// state after exactly k records.
		exp := want[k]
		if s.Keys() != len(exp) {
			t.Fatalf("cut=%d: %d keys, want %d", cut, s.Keys(), len(exp))
		}
		for kk, vv := range exp {
			got, err := s.Get(m, []byte(kk))
			if err != nil || !bytes.Equal(got, []byte(vv)) {
				t.Fatalf("cut=%d: key %q = %q/%v, want %q", cut, kk, got, err, vv)
			}
		}
		// The repair is durable: the file now ends at the last valid record.
		onDisk, err := os.ReadFile(filepath.Join(dir, walFile))
		if err != nil {
			t.Fatal(err)
		}
		if len(onDisk) != boundaries[k] {
			t.Fatalf("cut=%d: file is %d bytes after repair, want %d", cut, len(onDisk), boundaries[k])
		}
		// And the recovered WAL keeps working.
		if err := w.Set(m, []byte("post"), []byte("recovery")); err != nil {
			t.Fatalf("cut=%d: append after recovery: %v", cut, err)
		}
		w.Close()
	}
}

func TestRecoverWALRollbackDetected(t *testing.T) {
	dir := t.TempDir()
	w, m := newWAL(t, dir, 2) // a pin every 2 records
	for i := 0; i < 6; i++ {
		if err := w.Set(m, []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	w.Close() // 3 pins: recovery needs >= (3-1)*2+1 = 5 records

	data, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		t.Fatal(err)
	}
	boundaries := []int{0}
	for off := 0; off < len(data); {
		n := int(binary.LittleEndian.Uint32(data[off:]))
		off += 4 + n
		boundaries = append(boundaries, off)
	}
	// Roll the log back to 3 records — fewer than the counter pinned.
	if err := os.WriteFile(filepath.Join(dir, walFile), data[:boundaries[3]], 0o600); err != nil {
		t.Fatal(err)
	}
	e := walEnclave(dir)
	s := core.New(e, nil, core.Defaults(64))
	if _, _, err := RecoverWAL(s, dir, 2, sim.NewMeter(e.Model())); !errors.Is(err, ErrRollback) {
		t.Fatalf("rolled-back log: %v, want ErrRollback", err)
	}
	// A torn tail within the unpinned window recovers fine: 5 records
	// satisfy the pin bound.
	if err := os.WriteFile(filepath.Join(dir, walFile), data[:boundaries[5]+3], 0o600); err != nil {
		t.Fatal(err)
	}
	e2 := walEnclave(dir)
	s2 := core.New(e2, nil, core.Defaults(64))
	_, rep, err := RecoverWAL(s2, dir, 2, sim.NewMeter(e2.Model()))
	if err != nil {
		t.Fatalf("tear in unpinned window: %v", err)
	}
	if rep.Applied != 5 || rep.TailErr == nil {
		t.Fatalf("report = %+v, want 5 applied with torn tail", rep)
	}
}

func TestWALTearInjection(t *testing.T) {
	dir := t.TempDir()
	w, m := newWAL(t, dir, 100)
	for i := 0; i < 4; i++ {
		if err := w.Set(m, []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	p := fault.New(21)
	w.SetFaultPlane(p)
	p.Arm(fault.PointWALTear, fault.Spec{})
	err := w.Set(m, []byte("torn"), []byte("never-acked"))
	if !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("torn append: %v, want ErrInjected", err)
	}
	if w.Seq() != 4 {
		t.Fatalf("seq advanced to %d on a torn append", w.Seq())
	}
	w.Close() // crash

	e := walEnclave(dir)
	s := core.New(e, nil, core.Defaults(64))
	m2 := sim.NewMeter(e.Model())
	w2, rep, err := RecoverWAL(s, dir, 100, m2)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rep.Applied != 4 {
		t.Fatalf("recovered %d records, want 4", rep.Applied)
	}
	if _, err := s.Get(m2, []byte("torn")); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("unacknowledged record resurrected: %v", err)
	}
	if _, err := s.Get(m2, []byte("k3")); err != nil {
		t.Fatalf("acknowledged record lost: %v", err)
	}
}

func TestSnapshotTearInjection(t *testing.T) {
	dir := t.TempDir()
	e := walEnclave(dir)
	s := core.New(e, nil, core.Defaults(64))
	m := sim.NewMeter(e.Model())
	ps := New(s, dir, Naive)
	for i := 0; i < 20; i++ {
		if err := ps.Set(m, []byte(fmt.Sprintf("k%02d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if err := ps.Snapshot(m); err != nil {
		t.Fatal(err)
	}
	p := fault.New(33)
	ps.SetFaultPlane(p)
	p.Arm(fault.PointSnapshotTear, fault.Spec{Skip: 0})
	if err := ps.Snapshot(m); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("torn snapshot: %v, want ErrInjected", err)
	}
	// The torn pair (fresh sealed meta + truncated data) must fail
	// restore with a typed error — never restore silently wrong state.
	e2 := walEnclave(dir)
	if _, err := Restore(e2, dir, CounterIDFor(dir), sim.NewMeter(e2.Model())); err == nil {
		t.Fatal("torn snapshot restored cleanly")
	}
}

func FuzzWALRecover(f *testing.F) {
	// Seed with a real log, a torn prefix of it, and junk.
	dir := f.TempDir()
	w, m := newWAL(f, dir, 100)
	for i := 0; i < 3; i++ {
		if err := w.Set(m, []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			f.Fatal(err)
		}
	}
	w.Close()
	valid, err := os.ReadFile(filepath.Join(dir, walFile))
	if err != nil {
		f.Fatal(err)
	}
	f.Add(valid)
	f.Add(valid[:len(valid)/2])
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 2, 3})

	f.Fuzz(func(t *testing.T, log []byte) {
		fdir := t.TempDir()
		if err := os.WriteFile(filepath.Join(fdir, walFile), log, 0o600); err != nil {
			t.Skip()
		}
		e := walEnclave(fdir)
		s := core.New(e, nil, core.Defaults(16))
		fm := sim.NewMeter(e.Model())
		w, rep, err := RecoverWAL(s, fdir, 100, fm)
		if err != nil {
			// Typed failure only; arbitrary bytes can't roll back a zero
			// counter, so corruption is the only legal rejection here.
			if !errors.Is(err, ErrLogCorrupt) && !errors.Is(err, ErrRollback) {
				t.Fatalf("untyped recovery error: %v", err)
			}
			return
		}
		defer w.Close()
		if rep.Applied > 0 && s.Keys() == 0 && rep.Applied > uint64(s.Keys()) {
			// Deletes can legally leave zero keys; just sanity-check the
			// store still verifies.
			_ = rep
		}
		if err := s.VerifyAll(fm); err != nil {
			t.Fatalf("recovered store fails verification: %v", err)
		}
	})
}
