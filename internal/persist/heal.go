// Self-healing orchestration (DESIGN.md §12): online rebuild of a
// quarantined partition from its last sealed snapshot plus an op journal,
// while sibling partitions keep serving.
//
// The Healer owns one durability lane per partition: a snapshot directory
// and a sequence of journal epochs. Every mutation the worker pool
// acknowledges is first logged (core.Journal → WAL.LogOp), so when a
// partition's quarantine latch trips — a client op or the background
// scrubber detected host tampering — the healer can restore a fresh store
// from snapshot + journal replay, fully re-verify it, and swap it into
// the pool via RunCtl. Clients only ever observe the retryable
// StatusRebuilding during the window (EnableSelfHeal flips latch trips
// straight to the rebuilding state).
package persist

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"

	"shieldstore/internal/core"
	"shieldstore/internal/sim"
	"shieldstore/internal/vlog"
)

// ErrJournalIncomplete reports a rebuild refused because the partition's
// op journal was detached after a write failure: replaying it would
// silently drop acknowledged mutations.
var ErrJournalIncomplete = errors.New("persist: rebuild refused, op journal incomplete (journal=lost)")

// HealerOptions tunes the self-healing plane.
type HealerOptions struct {
	// BatchEvery is the journals' monotonic-counter amortization (see
	// NewWAL); 0 means the WAL default.
	BatchEvery int
	// BeforeSwap, when set, runs after a replacement store has been fully
	// rebuilt and verified but before it is swapped into the pool — a test
	// hook for holding the rebuilding window open.
	BeforeSwap func(part int)
	// WrapJournal, when set, wraps every journal the healer attaches to a
	// partition — at construction, after a checkpoint rotation, and after
	// a rebuild. The replication shipper uses it to tee each partition's
	// op stream (repl.Shipper.Tee) without the healer knowing about
	// replication.
	WrapJournal func(part int, j core.Journal) core.Journal
	// Logf, when set, receives rebuild failures from the background
	// drainer (which has no caller to return them to).
	Logf func(format string, args ...any)
}

// Healer attaches snapshot+journal durability to every partition of a
// pool and rebuilds quarantined partitions online. Create it BEFORE
// Partitioned.Start (the journals must be in place when the workers
// spawn, or pre-Start loads would be missing from the log), and Close it
// before Partitioned.Stop (a RunCtl against a stopped pool hangs).
type Healer struct {
	p          *core.Partitioned
	dir        string
	batchEvery int
	opts       HealerOptions

	// mu serializes rebuilds and checkpoints (the control plane; the data
	// path never takes it).
	mu     sync.Mutex
	wals   []*WAL
	epochs []int
	meter  *sim.Meter // healer-owned meter: rebuild cost is not request cost

	rebuilds atomic.Uint64

	started bool
	quit    chan struct{}
	done    chan struct{}
}

// NewHealer wires a healer under dir: per-partition snapshot and
// journal-epoch directories are created, epoch-0 journals are attached to
// every partition, and the pool is switched to self-heal mode (quarantine
// trips degrade to the retryable rebuilding state). Must run before
// p.Start.
//
//ss:host(healer construction, outside the measured window)
func NewHealer(p *core.Partitioned, dir string, opts HealerOptions) (*Healer, error) {
	h := &Healer{
		p:          p,
		dir:        dir,
		batchEvery: opts.BatchEvery,
		opts:       opts,
		wals:       make([]*WAL, p.Parts()),
		epochs:     make([]int, p.Parts()),
		meter:      sim.NewMeter(p.Enclave().Model()),
	}
	for i := 0; i < p.Parts(); i++ {
		if err := os.MkdirAll(h.snapDir(i), 0o700); err != nil {
			return nil, err
		}
		jd := h.journalDir(i, 0)
		if err := os.MkdirAll(jd, 0o700); err != nil {
			return nil, err
		}
		w, err := NewWAL(p.Part(i), jd, h.batchEvery)
		if err != nil {
			return nil, err
		}
		h.wals[i] = w
		p.SetJournal(i, h.wrap(i, w))
	}
	p.EnableSelfHeal()
	return h, nil
}

// wrap applies the WrapJournal hook (identity when unset).
func (h *Healer) wrap(i int, j core.Journal) core.Journal {
	if h.opts.WrapJournal == nil {
		return j
	}
	return h.opts.WrapJournal(i, j)
}

func (h *Healer) partDir(i int) string { return filepath.Join(h.dir, fmt.Sprintf("part-%d", i)) }
func (h *Healer) snapDir(i int) string { return filepath.Join(h.partDir(i), "snap") }
func (h *Healer) journalDir(i, ep int) string {
	return filepath.Join(h.partDir(i), fmt.Sprintf("journal-%03d", ep))
}

// Rebuilds reports how many partitions have been rebuilt and re-admitted.
func (h *Healer) Rebuilds() uint64 { return h.rebuilds.Load() }

// Meter exposes the healer's own meter (rebuild costs accrue here, not to
// any request thread).
func (h *Healer) Meter() *sim.Meter { return h.meter }

// Start launches the background drainer: every quarantine event from the
// pool triggers a Rebuild of that partition. Call after p.Start.
func (h *Healer) Start() {
	if h.started {
		return
	}
	h.started = true
	h.quit = make(chan struct{})
	h.done = make(chan struct{})
	go h.run()
}

func (h *Healer) run() {
	defer close(h.done)
	for {
		select {
		case <-h.quit:
			return
		case i := <-h.p.QuarantineEvents():
			if err := h.Rebuild(i); err != nil && h.opts.Logf != nil {
				h.opts.Logf("heal: partition %d rebuild failed: %v", i, err)
			}
		}
	}
}

// Close stops the drainer, detaches the journals from the (still running)
// pool, and closes them. Call before Partitioned.Stop.
//
//ss:host(shutdown path, outside the measured window)
func (h *Healer) Close() error {
	if h.started {
		close(h.quit)
		<-h.done
		h.started = false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	var first error
	for i, w := range h.wals {
		if h.p.Started() {
			h.p.RunCtl(i, func(st *core.WorkerState) { st.Journal = nil })
		}
		if w == nil {
			continue
		}
		if err := w.Close(); err != nil && first == nil {
			first = err
		}
		h.wals[i] = nil
	}
	return first
}

// Rebuild restores partition i from its last snapshot plus journal
// replay, verifies the result in full, and swaps it into the pool. The
// old (tampered) store is abandoned to the host heap. Requests against
// the partition fail with the retryable core.ErrRebuilding for the
// duration; siblings are untouched. A spurious wake (the partition is not
// quarantined) is a no-op.
func (h *Healer) Rebuild(i int) error {
	h.mu.Lock()
	defer h.mu.Unlock()

	// Phase 1, on the worker: confirm the latch, refuse an incomplete
	// journal, flag the rebuild, and detach the journal so no record lands
	// after the replay cutoff.
	quarantined, lost := false, false
	h.p.RunCtl(i, func(st *core.WorkerState) {
		quarantined = st.Store.Quarantined()
		lost = st.Store.JournalLost()
		if !quarantined || lost {
			return
		}
		st.Store.MarkRebuilding()
		st.Journal = nil
	})
	if !quarantined {
		return nil
	}
	if lost {
		// Refused, and nobody will retry: drop the partition out of the
		// rebuilding state so guard() surfaces the terminal ErrUnhealable
		// (the journal-lost flag is already set) instead of advertising a
		// rebuild that is never coming.
		h.failRebuild(i)
		return ErrJournalIncomplete
	}
	// Sync + close the journal: RecoverWAL must see every acked record.
	if w := h.wals[i]; w != nil {
		h.wals[i] = nil
		if err := w.Close(); err != nil {
			h.failRebuild(i)
			return err
		}
	}

	oldOpts := h.p.Part(i).Options()
	ns, w, err := h.restore(i, oldOpts)
	if err != nil {
		h.failRebuild(i)
		return err
	}
	h.meter.Count(sim.CtrRebuild)

	if h.opts.BeforeSwap != nil {
		h.opts.BeforeSwap(i)
	}

	// Phase 3, on the worker: swap the healed store and its journal in.
	// The quarantined store's latch dies with it — the replacement was
	// verified clean moments ago.
	h.p.RunCtl(i, func(st *core.WorkerState) {
		if ol := st.Store.VLog(); ol != nil && ol != ns.VLog() {
			ol.Close() // release the dead instance's segment file handles
		}
		st.Store = ns
		st.Journal = h.wrap(i, w)
		h.p.InstallPart(i, ns)
	})
	h.wals[i] = w
	h.rebuilds.Add(1)
	return nil
}

// failRebuild drops the partition back to plain quarantine (terminal,
// operator-visible) after a failed rebuild attempt.
func (h *Healer) failRebuild(i int) {
	h.p.RunCtl(i, func(st *core.WorkerState) { st.Store.ClearRebuilding() })
}

// restore builds the replacement store: last sealed snapshot (or a fresh
// empty store when none was ever taken — epoch 0 journals log from
// birth), then journal replay to the last valid record, then a full §4.3
// audit. The Quarantine policy is re-armed only after the audit, so a
// verification failure surfaces as an error instead of latching the
// half-built replacement.
//
//ss:host(snapshot existence probe; the reads themselves charge via Restore/RecoverWAL)
func (h *Healer) restore(i int, oldOpts core.Options) (*core.Store, *WAL, error) {
	snap := h.snapDir(i)
	// Carry the dead store's runtime wiring: the cache budget (the cache
	// itself is rebuilt from scratch — carrying its admission-sampling
	// state across a rebuild would leave the replacement in bypass mode,
	// calibrated to traffic that no longer exists) and the value-log
	// directory, whose records survive the rebuild on untrusted disk.
	ro := RestoreOpts{CacheBytes: oldOpts.CacheBytes}
	if ol := h.p.Part(i).VLog(); ol != nil {
		ro.VLogDir = ol.Dir()
	}
	var ns *core.Store
	if _, err := os.Stat(filepath.Join(snap, metaFile)); err == nil {
		s, rerr := RestoreWith(h.p.Enclave(), snap, CounterIDFor(snap), h.meter, ro)
		if rerr != nil {
			return nil, nil, fmt.Errorf("persist: rebuild: snapshot restore: %w", rerr)
		}
		ns = s
	} else {
		fresh := oldOpts
		fresh.Quarantine = false
		ns = core.New(h.p.Enclave(), h.p.Cipher(), fresh)
		ns.ConfigureCache(oldOpts.CacheBytes)
		if ro.VLogDir != "" {
			// No snapshot was ever sealed, so no manifest vouches for any
			// segment: journal replay regenerates every spilled value into
			// a wiped log.
			nl, lerr := vlog.New(h.p.Enclave(), ro.VLogDir, ro.VLog)
			if lerr != nil {
				return nil, nil, fmt.Errorf("persist: rebuild: reopen value log: %w", lerr)
			}
			if lerr := nl.LoadManifest(nil); lerr != nil {
				return nil, nil, fmt.Errorf("persist: rebuild: reset value log: %w", lerr)
			}
			ns.AttachVLog(nl)
		}
	}
	w, _, err := RecoverWAL(ns, h.journalDir(i, h.epochs[i]), h.batchEvery, h.meter)
	if err != nil {
		return nil, nil, fmt.Errorf("persist: rebuild: journal replay: %w", err)
	}
	if err := ns.VerifyAll(h.meter); err != nil {
		w.Close()
		return nil, nil, fmt.Errorf("persist: rebuild: rebuilt store failed verification: %w", err)
	}
	if oldOpts.Quarantine {
		ns.EnableQuarantine()
	}
	return ns, w, nil
}

// Checkpoint seals a fresh snapshot of partition i and rotates its
// journal to a new epoch (a fresh directory, hence a fresh platform
// counter — an empty post-checkpoint journal is not a rollback). Runs on
// the partition's worker, so it is exactly the Naive snapshot pause the
// paper describes, scoped to one partition. A quarantined partition
// cannot checkpoint (never seal tampered state).
//
//ss:host(journal-epoch directory setup; snapshot and WAL writes charge their own crossings)
func (h *Healer) Checkpoint(i int) error {
	h.mu.Lock()
	defer h.mu.Unlock()
	var err error
	h.p.RunCtl(i, func(st *core.WorkerState) {
		if st.Store.Quarantined() {
			err = core.ErrQuarantined
			return
		}
		if serr := New(st.Store, h.snapDir(i), Naive).Snapshot(st.Meter); serr != nil {
			err = serr
			return
		}
		st.Journal = nil
		if old := h.wals[i]; old != nil {
			h.wals[i] = nil
			if cerr := old.Close(); cerr != nil {
				err = cerr
				return
			}
		}
		h.epochs[i]++
		jd := h.journalDir(i, h.epochs[i])
		if merr := os.MkdirAll(jd, 0o700); merr != nil {
			err = merr
			return
		}
		w, werr := NewWAL(st.Store, jd, h.batchEvery)
		if werr != nil {
			err = werr
			return
		}
		h.wals[i] = w
		st.Journal = h.wrap(i, w)
		// The new journal is complete from this instant (the snapshot
		// covers everything before it): a previously lost journal is whole
		// again.
		st.Store.ClearJournalLost()
	})
	return err
}
