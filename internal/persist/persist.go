// Package persist implements ShieldStore's snapshot persistence (§4.4,
// Algorithm 1, evaluated in §6.5).
//
// A snapshot has two parts. The *data* file holds the untrusted hash
// table's entries exactly as they sit in memory — already encrypted and
// MACed, so no re-encryption is needed (the design's key persistence
// advantage). The *metadata* file holds everything that lives inside the
// enclave — cipher keys, the MAC hash array, the configuration and a
// snapshot version — sealed with the enclave sealing key. The version is
// bound to an SGX monotonic counter, so restoring a stale (rolled-back)
// snapshot is detected.
//
// Two snapshot modes mirror the paper:
//
//   - Naive: request processing blocks for the entire snapshot write.
//   - Optimized (Algorithm 1): only metadata sealing blocks; the entry
//     stream is written by a forked child (a background virtual-time
//     track here), while the parent serves requests against a temporary
//     table that is merged back when the child finishes.
package persist

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"

	"shieldstore/internal/core"
	"shieldstore/internal/entry"
	"shieldstore/internal/fault"
	"shieldstore/internal/secret"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
	"shieldstore/internal/vlog"
)

// Errors.
var (
	// ErrRollback reports a snapshot whose sealed version does not match
	// the platform monotonic counter — a rollback/replay of old state.
	ErrRollback = errors.New("persist: snapshot version mismatch (rollback attack?)")
	// ErrCorrupt reports an unreadable snapshot.
	ErrCorrupt = errors.New("persist: snapshot corrupt")
)

// Mode selects the §6.5 persistence flavor.
type Mode int

// Snapshot modes.
const (
	// Naive blocks request processing for the whole snapshot.
	Naive Mode = iota
	// Optimized implements Algorithm 1 (fork + temporary table).
	Optimized
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	if m == Optimized {
		return "optimized"
	}
	return "naive"
}

const (
	metaFile = "snapshot.meta"
	dataFile = "snapshot.data"
)

// Store wraps a core.Store with snapshot persistence. Like the underlying
// store it is single-owner (one partition, one thread).
type Store struct {
	main    *core.Store
	enclave *sgx.Enclave
	model   *sim.CostModel
	dir     string
	mode    Mode
	counter uint32

	// Snapshot-in-progress state (Algorithm 1).
	temp       *core.Store
	tombstones map[string]bool
	childEnd   uint64 // virtual completion time of the forked writer
	childCost  uint64 // cycles the last child spent (reporting)

	faults *fault.Plane // optional crash-injection plane (tests)
}

// SetFaultPlane attaches a fault-injection plane (nil detaches).
func (p *Store) SetFaultPlane(pl *fault.Plane) { p.faults = pl }

// New wraps store with persistence writing into dir. The rollback-defense
// monotonic counter id is derived from dir, so a restarted enclave
// reattaches to the same platform counter.
func New(store *core.Store, dir string, mode Mode) *Store {
	id := CounterIDFor(dir)
	store.Enclave().EnsureMonotonicCounter(id)
	return &Store{
		main:    store,
		enclave: store.Enclave(),
		model:   store.Enclave().Model(),
		dir:     dir,
		mode:    mode,
		counter: id,
	}
}

// CounterIDFor maps a snapshot directory to its platform counter id
// (FNV-32a over the path).
func CounterIDFor(dir string) uint32 {
	h := uint32(2166136261)
	for i := 0; i < len(dir); i++ {
		h ^= uint32(dir[i])
		h *= 16777619
	}
	if h == 0 {
		h = 1
	}
	return h
}

// Main exposes the wrapped store.
func (p *Store) Main() *core.Store { return p.main }

// Mode returns the configured snapshot mode.
func (p *Store) Mode() Mode { return p.mode }

// ChildCycles reports the background writer cost of the last snapshot.
func (p *Store) ChildCycles() uint64 { return p.childCost }

// InSnapshot reports whether an optimized snapshot is still draining.
func (p *Store) InSnapshot() bool { return p.temp != nil }

// Snapshot writes a snapshot. The caller's meter m advances by the
// *blocking* portion only; in Optimized mode the entry stream runs on a
// background virtual track that finishes at m.Cycles()+childCost.
//
// Both file writes are enclave exits: the metadata write pays an OCALL on
// the blocking track, and the entry stream pays one on whichever track
// performs it (the serving thread in Naive mode, the forked child in
// Optimized mode).
//
//ss:ocall
func (p *Store) Snapshot(m *sim.Meter) error {
	if p.main.Quarantined() {
		// Never seal tampered state — and never burn the monotonic counter
		// for it: bumping the version would make the last good snapshot
		// unrestorable (rollback check) while this one can't be written.
		return fmt.Errorf("persist: snapshot refused: %w", core.ErrQuarantined)
	}
	if p.temp != nil {
		// Previous snapshot still draining: finish it first.
		p.finishSnapshot(m)
	}
	m.Count(sim.CtrSnapshot)

	// The sealed metadata captures the value-log manifest (extents,
	// versions), so every record it vouches for must be durable first.
	if l := p.main.VLog(); l != nil {
		if err := l.Sync(m); err != nil {
			return err
		}
	}

	// Step 1 (blocking): bump the monotonic counter and seal metadata.
	version, err := p.enclave.IncrementMonotonicCounter(m, p.counter)
	if err != nil {
		return err
	}
	meta := p.encodeMeta(version)
	sealed := p.enclave.Seal(m, meta)
	secret.WipeBytes(meta) // plaintext metadata embeds the cipher keys
	if err := os.WriteFile(filepath.Join(p.dir, metaFile), sealed, 0o600); err != nil {
		return err
	}
	p.enclave.Syscall(m, false)
	m.Charge(p.model.StorageWrite(len(sealed)))

	// Step 2: stream the (already encrypted) entries. The bytes are
	// captured now — the paper's fork gives the child a copy-on-write
	// view of exactly this moment.
	data, totalBytes, err := p.encodeData()
	if err != nil {
		return err
	}
	if p.faults.Hit(fault.PointSnapshotTear) {
		// Crash mid-stream: the sealed metadata (new version) is already
		// durable but the data file is a torn prefix. Restore must reject
		// the pair — the version check passes but the data fails
		// verification — and the previous snapshot stays usable only if
		// the operator kept it; this models the paper's single-directory
		// layout honestly.
		os.WriteFile(filepath.Join(p.dir, dataFile), data[:p.faults.Pick(len(data))], 0o600)
		return fault.ErrInjected
	}
	if err := os.WriteFile(filepath.Join(p.dir, dataFile), data, 0o600); err != nil {
		return err
	}
	// The new snapshot's manifest no longer references retired segments;
	// their deferred deletion is now safe (the previous snapshot needed
	// them, this one does not).
	if l := p.main.VLog(); l != nil {
		l.PurgeRetired(m)
	}
	streamCost := p.model.EnclaveCrossing + p.model.Syscall +
		p.model.MemCopy(totalBytes) + p.model.StorageWrite(totalBytes)

	if p.mode == Naive {
		// Blocking: the serving thread eats the whole write.
		m.Charge(streamCost)
		return nil
	}

	// Optimized: the child runs in background virtual time; the parent
	// switches writes to a temporary table until the child finishes.
	p.childCost = streamCost
	p.childEnd = m.Cycles() + streamCost
	tempOpts := p.main.Options()
	tempOpts.Buckets = max(16, tempOpts.Buckets/8)
	tempOpts.MACHashes = tempOpts.Buckets
	p.temp = core.New(p.enclave, p.main.Cipher(), tempOpts)
	p.tombstones = map[string]bool{}
	return nil
}

// finishSnapshot merges the temporary table back into the main table
// (Algorithm 1 line 11) once the child is done.
func (p *Store) finishSnapshot(m *sim.Meter) {
	if m.Cycles() < p.childEnd {
		m.SetCycles(p.childEnd) // parent waits for the child
	}
	temp := p.temp
	p.temp = nil
	for key := range p.tombstones {
		_ = p.main.Delete(m, []byte(key))
	}
	_ = temp.ForEachDecrypt(m, func(k, v []byte) error {
		return p.main.Set(m, k, v)
	})
	p.tombstones = nil
}

// maybeFinish completes a draining snapshot whose child has finished by
// the caller's current virtual time.
func (p *Store) maybeFinish(m *sim.Meter) {
	if p.temp != nil && m.Cycles() >= p.childEnd {
		p.finishSnapshot(m)
	}
}

// Get reads through the temporary table during snapshots.
func (p *Store) Get(m *sim.Meter, key []byte) ([]byte, error) {
	p.maybeFinish(m)
	if p.temp != nil {
		if p.tombstones[string(key)] {
			return nil, core.ErrNotFound
		}
		if v, err := p.temp.Get(m, key); err == nil {
			return v, nil
		} else if !errors.Is(err, core.ErrNotFound) {
			return nil, err
		}
	}
	return p.main.Get(m, key)
}

// Set writes to the temporary table during snapshots.
func (p *Store) Set(m *sim.Meter, key, value []byte) error {
	p.maybeFinish(m)
	if p.temp != nil {
		delete(p.tombstones, string(key))
		return p.temp.Set(m, key, value)
	}
	return p.main.Set(m, key, value)
}

// Append implements read-modify-write through the snapshot window.
func (p *Store) Append(m *sim.Meter, key, suffix []byte) error {
	p.maybeFinish(m)
	if p.temp == nil {
		return p.main.Append(m, key, suffix)
	}
	old, err := p.Get(m, key)
	if err != nil && !errors.Is(err, core.ErrNotFound) {
		return err
	}
	return p.Set(m, key, append(append([]byte{}, old...), suffix...))
}

// Delete removes a key, tombstoning it during snapshots.
func (p *Store) Delete(m *sim.Meter, key []byte) error {
	p.maybeFinish(m)
	if p.temp == nil {
		return p.main.Delete(m, key)
	}
	if _, err := p.Get(m, key); err != nil {
		return err
	}
	_ = p.temp.Delete(m, key) // may or may not exist in temp
	p.tombstones[string(key)] = true
	return nil
}

// Drain forces completion of any in-progress snapshot (shutdown).
func (p *Store) Drain(m *sim.Meter) {
	if p.temp != nil {
		p.finishSnapshot(m)
	}
}

// encodeMeta serializes enclave-side state: version, options, key count,
// cipher keys, MAC hashes.
//
// The returned plaintext embeds the cipher keys; the caller must wipe it
// once sealed.
//
//ss:seals — the designated path for key material into the sealed metadata blob.
//ss:secret — the returned buffer carries raw key material.
func (p *Store) encodeMeta(version uint64) []byte {
	opts := p.main.Options()
	keys := p.main.Cipher().ExportKeys()
	defer keys.Wipe()
	hashes := p.main.ExportMACHashes()

	buf := make([]byte, 0, 64+len(hashes))
	var tmp [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	put(version)
	put(uint64(opts.Buckets))
	put(uint64(opts.MACHashes))
	put(uint64(opts.MACBucketCap))
	flags := uint64(0)
	if opts.KeyHint {
		flags |= 1
	}
	if opts.MACBucket {
		flags |= 2
	}
	if opts.ExtraHeap {
		flags |= 4
	}
	if opts.RangeIndex {
		flags |= 8
	}
	if opts.MerkleTree {
		flags |= 16
	}
	var manifest []byte
	if l := p.main.VLog(); l != nil {
		flags |= 32
		manifest = l.Manifest()
	}
	put(flags)
	put(uint64(p.main.Keys()))
	buf = append(buf, keys.Data[:]...)
	buf = append(buf, keys.MAC[:]...)
	buf = append(buf, keys.Bucket[:]...)
	buf = append(buf, keys.Hint[:]...)
	put(uint64(len(hashes)))
	buf = append(buf, hashes...)
	if flags&32 != 0 {
		// Tiering section: spill configuration plus the value-log
		// manifest. Sealing the manifest is what gives the on-disk log
		// rollback protection across restarts — the manifest inherits
		// the snapshot's monotonic-counter binding.
		put(uint64(opts.SpillThreshold))
		put(uint64(opts.MemBudget))
		put(uint64(len(manifest)))
		buf = append(buf, manifest...)
	}
	return buf
}

// decodeMeta parses the sealed metadata.
type metaBlob struct {
	version  uint64
	opts     core.Options
	keys     entry.Keys
	keyN     int
	hashes   []byte
	manifest []byte // value-log freshness state (nil: snapshot has no log)
}

//ss:seals — the designated path for key material out of the sealed metadata blob.
func decodeMeta(buf []byte) (*metaBlob, error) {
	if len(buf) < 48+64+8 {
		return nil, ErrCorrupt
	}
	get := func(off int) uint64 { return binary.LittleEndian.Uint64(buf[off:]) }
	mb := &metaBlob{version: get(0)}
	mb.opts.Buckets = int(get(8))
	mb.opts.MACHashes = int(get(16))
	mb.opts.MACBucketCap = int(get(24))
	flags := get(32)
	mb.opts.KeyHint = flags&1 != 0
	mb.opts.MACBucket = flags&2 != 0
	mb.opts.ExtraHeap = flags&4 != 0
	mb.opts.RangeIndex = flags&8 != 0
	mb.opts.MerkleTree = flags&16 != 0
	mb.keyN = int(get(40))
	// Validate before the options reach core.New, whose bounds panics are
	// constructor contracts, not attacker-input handlers. A blob that
	// unseals but decodes to impossible options is corrupt metadata.
	if mb.opts.Buckets <= 0 || mb.opts.MACHashes <= 0 || mb.opts.MACBucketCap < 0 || mb.keyN < 0 {
		return nil, ErrCorrupt
	}
	off := 48
	copy(mb.keys.Data[:], buf[off:])
	copy(mb.keys.MAC[:], buf[off+16:])
	copy(mb.keys.Bucket[:], buf[off+32:])
	copy(mb.keys.Hint[:], buf[off+48:])
	off += 64
	hlen := int(get(off))
	off += 8
	if hlen < 0 || off+hlen > len(buf) {
		return nil, ErrCorrupt
	}
	mb.hashes = append([]byte(nil), buf[off:off+hlen]...)
	off += hlen
	if flags&32 != 0 {
		if off+24 > len(buf) {
			return nil, ErrCorrupt
		}
		mb.opts.SpillThreshold = int(get(off))
		mb.opts.MemBudget = int64(get(off + 8))
		mlen := int(get(off + 16))
		off += 24
		if mlen < 0 || off+mlen != len(buf) {
			return nil, ErrCorrupt
		}
		if mb.opts.SpillThreshold <= 0 || mb.opts.MemBudget < 0 {
			return nil, ErrCorrupt
		}
		mb.manifest = append([]byte(nil), buf[off:off+mlen]...)
	} else if off != len(buf) {
		return nil, ErrCorrupt
	}
	return mb, nil
}

// encodeData serializes every bucket's raw entries:
// repeat { bucket u32, nEntries u32, repeat { len u32, bytes } }.
func (p *Store) encodeData() ([]byte, int, error) {
	var out []byte
	total := 0
	var tmp [4]byte
	err := p.main.ForEachBucketRaw(func(b int, entries [][]byte) error {
		binary.LittleEndian.PutUint32(tmp[:], uint32(b))
		out = append(out, tmp[:]...)
		binary.LittleEndian.PutUint32(tmp[:], uint32(len(entries)))
		out = append(out, tmp[:]...)
		for _, raw := range entries {
			binary.LittleEndian.PutUint32(tmp[:], uint32(len(raw)))
			out = append(out, tmp[:]...)
			out = append(out, raw...)
			total += len(raw)
		}
		return nil
	})
	return out, total, err
}

// RestoreOpts carries restore-time configuration the sealed metadata
// cannot (or should not) persist.
type RestoreOpts struct {
	// VLogDir is the value-log directory. Required when the snapshot's
	// sealed manifest references a log; ignored otherwise.
	VLogDir string
	// VLog tunes the reopened log (segment sizing); zero = defaults.
	VLog vlog.Options
	// CacheBytes is the EPC plaintext-cache budget for the restored
	// store. The cache is rebuilt from scratch — its contents and its
	// admission-sampling state belong to the dead instance's traffic.
	CacheBytes int64
}

// Restore loads the latest snapshot from dir into a fresh store on the
// given enclave, verifying integrity and rollback protection. The
// counterID must be the same platform counter the snapshots used. It
// fails when the snapshot references a value log — use RestoreWith and
// supply the log directory.
func Restore(e *sgx.Enclave, dir string, counterID uint32, m *sim.Meter) (*core.Store, error) {
	return RestoreWith(e, dir, counterID, m, RestoreOpts{})
}

// RestoreWith loads the latest snapshot from dir into a fresh store on
// the given enclave, verifying integrity and rollback protection, and —
// when the sealed metadata carries a value-log manifest — reopens the
// log under ro.VLogDir with the manifest's freshness state, so spilled
// pointers stay valid across the restart. Each file read is an enclave
// exit, charged before the host hands bytes back.
//
//ss:ocall
//ss:attacker — the snapshot files are host-controlled input.
func RestoreWith(e *sgx.Enclave, dir string, counterID uint32, m *sim.Meter, ro RestoreOpts) (*core.Store, error) {
	e.Syscall(m, false)
	sealed, err := os.ReadFile(filepath.Join(dir, metaFile))
	if err != nil {
		return nil, err
	}
	meta, err := e.Unseal(m, sealed)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	mb, err := decodeMeta(meta)
	secret.WipeBytes(meta) // decodeMeta copies what it keeps; the plaintext embeds keys
	if err != nil {
		return nil, err
	}
	defer mb.keys.Wipe() // the rebuilt cipher holds its own copy
	// Rollback defense: sealed version must match the platform counter.
	cur, err := e.ReadMonotonicCounter(counterID)
	if err != nil {
		return nil, err
	}
	if mb.version != cur {
		return nil, fmt.Errorf("%w: sealed v%d, platform v%d", ErrRollback, mb.version, cur)
	}

	e.Syscall(m, false)
	data, err := os.ReadFile(filepath.Join(dir, dataFile))
	if err != nil {
		return nil, err
	}
	opts := mb.opts
	opts.CacheBytes = ro.CacheBytes
	s := core.New(e, entry.NewCipherFromKeys(e, mb.keys), opts)
	if mb.manifest != nil {
		if ro.VLogDir == "" {
			return nil, fmt.Errorf("%w: snapshot references a value log; RestoreOpts.VLogDir required", ErrCorrupt)
		}
		l, lerr := vlog.New(e, ro.VLogDir, ro.VLog)
		if lerr != nil {
			return nil, fmt.Errorf("persist: reopen value log: %w", lerr)
		}
		if lerr := l.LoadManifest(mb.manifest); lerr != nil {
			return nil, fmt.Errorf("%w: value-log manifest: %w", ErrCorrupt, lerr)
		}
		s.AttachVLog(l)
	}
	if err := restoreData(s, m, data); err != nil {
		return nil, err
	}
	if err := s.ImportMACHashes(m, mb.hashes); err != nil {
		return nil, err
	}
	if err := s.VerifyAll(m); err != nil {
		return nil, fmt.Errorf("restored snapshot failed verification: %w", err)
	}
	if s.Keys() != mb.keyN {
		return nil, fmt.Errorf("%w: key count %d != sealed %d", ErrCorrupt, s.Keys(), mb.keyN)
	}
	return s, nil
}

func restoreData(s *core.Store, m *sim.Meter, data []byte) error {
	off := 0
	u32 := func() (uint32, bool) {
		if off+4 > len(data) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(data[off:])
		off += 4
		return v, true
	}
	for off < len(data) {
		b, ok := u32()
		if !ok {
			return ErrCorrupt
		}
		n, ok := u32()
		if !ok {
			return ErrCorrupt
		}
		entries := make([][]byte, 0, n)
		for i := uint32(0); i < n; i++ {
			l, ok := u32()
			if !ok || off+int(l) > len(data) {
				return ErrCorrupt
			}
			entries = append(entries, data[off:off+int(l)])
			off += int(l)
		}
		if int(b) >= s.Options().Buckets {
			return ErrCorrupt
		}
		if err := s.RestoreBucket(m, int(b), entries); err != nil {
			return err
		}
	}
	return nil
}
