// Quarantine racing the persistence plane: a partition that detects
// tampering mid-snapshot (or right before one) must never seal the
// corrupt state, and must not burn the monotonic counter for a snapshot
// it refuses — that would strand the last good snapshot behind the
// rollback check.
package persist

import (
	"errors"
	"fmt"
	"testing"

	"shieldstore/internal/core"
	"shieldstore/internal/fault"
	"shieldstore/internal/sim"
)

// setupQ builds a persist.Store whose main partition has the quarantine
// policy armed, as a self-healing deployment would run it.
func setupQ(t *testing.T, mode Mode) (*Store, *sim.Meter) {
	t.Helper()
	e := newEnclave()
	opts := core.Defaults(32)
	opts.Quarantine = true
	s := core.New(e, nil, opts)
	p := New(s, t.TempDir(), mode)
	return p, sim.NewMeter(e.Model())
}

// tripLatch tampers the main store via the fault plane and reads until
// the corruption is detected and the latch trips.
func tripLatch(t *testing.T, p *Store, m *sim.Meter, n int) {
	t.Helper()
	plane := fault.New(7)
	plane.Arm(fault.PointEntryFlip, fault.Spec{Count: -1})
	p.Main().SetFaultPlane(plane)
	var derr error
	for i := 0; i < n && derr == nil; i++ {
		_, derr = p.Get(m, []byte(fmt.Sprintf("k%04d", i)))
	}
	if derr == nil {
		t.Fatal("injected corruption never detected")
	}
	if !errors.Is(derr, core.ErrIntegrity) && !errors.Is(derr, core.ErrCorruptPointer) {
		t.Fatalf("detection is untyped: %v", derr)
	}
	if !p.Main().Quarantined() {
		t.Fatal("detection did not trip the quarantine latch")
	}
}

func TestQuarantineDuringInFlightSnapshot(t *testing.T) {
	p, m := setupQ(t, Optimized)
	fill(t, p, m, 60)
	if err := p.Snapshot(m); err != nil {
		t.Fatal(err)
	}
	if !p.InSnapshot() {
		t.Fatal("optimized snapshot should leave a draining child")
	}

	// The host strikes while the snapshot child is still draining.
	tripLatch(t, p, m, 60)
	if !p.InSnapshot() {
		t.Fatal("latch was meant to trip inside the snapshot window")
	}

	// A new snapshot must refuse up front: before touching the draining
	// child, before the counter increment, before any file write.
	if err := p.Snapshot(m); !errors.Is(err, core.ErrQuarantined) {
		t.Fatalf("snapshot of quarantined store: %v, want ErrQuarantined", err)
	}
	if !p.InSnapshot() {
		t.Fatal("refused snapshot must not force-finish the in-flight one")
	}
	if got := m.Events(sim.CtrSnapshot); got != 1 {
		t.Fatalf("CtrSnapshot = %d after refusal, want 1 (the clean one)", got)
	}

	// The in-flight snapshot captured pre-fault bytes at fork time and its
	// counter version is current: it must still restore, in full.
	m2 := sim.NewMeter(p.enclave.Model())
	restored, err := Restore(p.enclave, p.dir, p.counter, m2)
	if err != nil {
		t.Fatalf("pre-fault snapshot no longer restores: %v", err)
	}
	if restored.Keys() != 60 {
		t.Fatalf("restored keys = %d, want 60", restored.Keys())
	}
	for i := 0; i < 60; i++ {
		got, err := restored.Get(m2, []byte(fmt.Sprintf("k%04d", i)))
		if err != nil || string(got) != fmt.Sprintf("v%04d", i) {
			t.Fatalf("restored key %d = %q, %v", i, got, err)
		}
	}

	// Shutdown drains without panicking; the merge into the quarantined
	// main is refused op by op, never served as clean state.
	p.Drain(m)
	if p.InSnapshot() {
		t.Fatal("Drain left the snapshot open")
	}
	if !p.Main().Quarantined() {
		t.Fatal("Drain must not clear the latch")
	}
}

func TestQuarantineRefusesNextSnapshot(t *testing.T) {
	// Naive mode: latch first, snapshot second. The refusal must leave
	// the previous snapshot restorable (counter untouched).
	p, m := setupQ(t, Naive)
	fill(t, p, m, 40)
	if err := p.Snapshot(m); err != nil {
		t.Fatal(err)
	}

	tripLatch(t, p, m, 40)
	if err := p.Snapshot(m); !errors.Is(err, core.ErrQuarantined) {
		t.Fatalf("snapshot of quarantined store: %v, want ErrQuarantined", err)
	}

	m2 := sim.NewMeter(p.enclave.Model())
	restored, err := Restore(p.enclave, p.dir, p.counter, m2)
	if err != nil {
		t.Fatalf("last good snapshot no longer restores: %v", err)
	}
	if restored.Keys() != 40 {
		t.Fatalf("restored keys = %d, want 40", restored.Keys())
	}
}
