// Tiered-storage persistence tests: the snapshot carries the value-log
// manifest, crash recovery restores a spilled dataset byte-identically,
// and healer rebuilds preserve the cache budget and value-log wiring.
package persist

import (
	"bytes"
	"fmt"
	"testing"

	"shieldstore/internal/core"
	"shieldstore/internal/fault"
	"shieldstore/internal/sim"
	"shieldstore/internal/vlog"
)

// tieredSetup builds a persist.Store over a core store whose value log
// lives in its own temp dir, with the budget pinned so every eligible
// value spills.
func tieredSetup(t *testing.T, mode Mode) (*Store, *sim.Meter) {
	t.Helper()
	e := newEnclave()
	opts := core.Defaults(32)
	opts.SpillThreshold = 32
	opts.MemBudget = 1
	s := core.New(e, nil, opts)
	l, err := vlog.New(e, t.TempDir(), vlog.Options{SegmentBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	s.AttachVLog(l)
	return New(s, t.TempDir(), mode), sim.NewMeter(e.Model())
}

// tieredValue straddles the spill threshold: ids divisible by 3 stay
// inline, the rest spill.
func tieredValue(i int) []byte {
	if i%3 == 0 {
		return []byte(fmt.Sprintf("v%04d", i))
	}
	return bytes.Repeat([]byte{byte(i + 1)}, 64+i%100)
}

// TestVLogCrashRecoveryByteIdentical is the acceptance check: snapshot a
// spilled dataset, restore into a fresh enclave-side state over the same
// untrusted log directory, and read every value back byte-identical —
// with the restored store actually faulting the disk tier.
func TestVLogCrashRecoveryByteIdentical(t *testing.T) {
	for _, mode := range []Mode{Naive, Optimized} {
		t.Run(mode.String(), func(t *testing.T) {
			p, m := tieredSetup(t, mode)
			const n = 120
			for i := 0; i < n; i++ {
				if err := p.Set(m, []byte(fmt.Sprintf("k%04d", i)), tieredValue(i)); err != nil {
					t.Fatal(err)
				}
			}
			if p.main.VLog().SpilledBytes() == 0 {
				t.Fatal("precondition: nothing spilled")
			}
			if err := p.Snapshot(m); err != nil {
				t.Fatal(err)
			}
			p.Drain(m)

			// "Crash": all enclave state is lost; only dir (sealed
			// snapshot) and the untrusted log directory survive.
			m2 := sim.NewMeter(p.enclave.Model())
			restored, err := RestoreWith(p.enclave, p.dir, p.counter, m2, RestoreOpts{
				VLogDir: p.main.VLog().Dir(),
				VLog:    vlog.Options{SegmentBytes: 1 << 12},
			})
			if err != nil {
				t.Fatalf("RestoreWith: %v", err)
			}
			if restored.Keys() != n {
				t.Fatalf("restored keys = %d, want %d", restored.Keys(), n)
			}
			if restored.VLog() == nil {
				t.Fatal("restored store has no value log")
			}
			for i := 0; i < n; i++ {
				got, err := restored.Get(m2, []byte(fmt.Sprintf("k%04d", i)))
				if err != nil {
					t.Fatalf("Get(%d): %v", i, err)
				}
				if want := tieredValue(i); !bytes.Equal(got, want) {
					t.Fatalf("Get(%d) = %q, want %q", i, got, want)
				}
			}
			if m2.Events(sim.CtrVLogFault) == 0 {
				t.Fatal("restored reads never faulted the value log")
			}
			if err := restored.VerifyAll(m2); err != nil {
				t.Fatalf("restored VerifyAll: %v", err)
			}
		})
	}
}

// TestVLogRestoreWithoutDirRefused: a snapshot that carries a manifest
// cannot be restored without telling Restore where the log lives —
// silently dropping spilled values is not an option.
func TestVLogRestoreWithoutDirRefused(t *testing.T) {
	p, m := tieredSetup(t, Naive)
	for i := 0; i < 40; i++ {
		if err := p.Set(m, []byte(fmt.Sprintf("k%04d", i)), tieredValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Snapshot(m); err != nil {
		t.Fatal(err)
	}
	m2 := sim.NewMeter(p.enclave.Model())
	if _, err := Restore(p.enclave, p.dir, p.counter, m2); err == nil {
		t.Fatal("Restore without VLogDir accepted a manifest-bearing snapshot")
	}
}

// TestVLogSnapshotPurgesRetired: GC-retired segments survive on disk
// until the next durable snapshot, then are purged — the deferred
// retirement that keeps the previous snapshot's pointers valid.
func TestVLogSnapshotPurgesRetired(t *testing.T) {
	p, m := tieredSetup(t, Naive)
	const n = 60
	for i := 0; i < n; i++ {
		if err := p.Set(m, []byte(fmt.Sprintf("k%04d", i)), bytes.Repeat([]byte{byte(i + 1)}, 150)); err != nil {
			t.Fatal(err)
		}
	}
	// Overwrite everything: the old records are all dead.
	for i := 0; i < n; i++ {
		if err := p.Set(m, []byte(fmt.Sprintf("k%04d", i)), bytes.Repeat([]byte{0xF0 ^ byte(i)}, 150)); err != nil {
			t.Fatal(err)
		}
	}
	l := p.main.VLog()
	for {
		copied, err := p.main.VLogMaintain(m, 0)
		if err != nil {
			t.Fatal(err)
		}
		if copied == 0 {
			if _, more := l.PickVictim(); !more {
				break
			}
		}
	}
	if l.PendingRetired() == 0 {
		t.Fatal("GC retired nothing")
	}
	if err := p.Snapshot(m); err != nil {
		t.Fatal(err)
	}
	if l.PendingRetired() != 0 {
		t.Fatalf("retired segments not purged after snapshot: %d pending", l.PendingRetired())
	}
	for i := 0; i < n; i++ {
		got, err := p.Get(m, []byte(fmt.Sprintf("k%04d", i)))
		if err != nil || !bytes.Equal(got, bytes.Repeat([]byte{0xF0 ^ byte(i)}, 150)) {
			t.Fatalf("post-purge Get(%d): %v", i, err)
		}
	}
}

// TestRebuildRestoresCacheAndVLog pins the healer satellites: a rebuilt
// partition comes back with (a) a fresh EPC cache at the dead store's
// budget — not nil, not carrying stale admission state — and (b) its
// value log re-wired over the surviving directory, with every spilled
// value regenerated by journal replay.
func TestRebuildRestoresCacheAndVLog(t *testing.T) {
	e := newEnclave()
	opts := core.Defaults(64)
	opts.Quarantine = true
	opts.CacheBytes = 64 << 10
	opts.SpillThreshold = 32
	opts.MemBudget = 2 // 1 per partition: every eligible value spills
	p := core.NewPartitioned(e, 2, opts)
	for i := 0; i < p.Parts(); i++ {
		l, err := vlog.New(e, t.TempDir(), vlog.Options{SegmentBytes: 1 << 12})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		p.Part(i).AttachVLog(l)
	}
	h, err := NewHealer(p, t.TempDir(), HealerOptions{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	t.Cleanup(p.Stop)
	t.Cleanup(func() { h.Close() })

	m := sim.NewMeter(e.Model())
	const n = 80
	for i := 0; i < n; i++ {
		if err := p.Set(m, []byte(fmt.Sprintf("k%04d", i)), tieredValue(i)); err != nil {
			t.Fatal(err)
		}
	}
	perPartCache := opts.CacheBytes / int64(p.Parts())
	if got := p.Part(0).CacheBudget(); got != perPartCache {
		t.Fatalf("pre-rebuild CacheBudget = %d, want %d", got, perPartCache)
	}

	// The host corrupts partition 0; reads trip the latch.
	plane := fault.New(9)
	plane.Arm(fault.PointEntryFlip, fault.Spec{Count: -1})
	p.RunCtl(0, func(st *core.WorkerState) { st.Store.SetFaultPlane(plane) })
	var derr error
	for i := 0; i < n && derr == nil; i++ {
		key := []byte(fmt.Sprintf("k%04d", i))
		if p.Route(m, key) != 0 {
			continue
		}
		_, derr = p.Get(m, key)
	}
	if derr == nil || !p.Part(0).Quarantined() {
		t.Fatalf("latch never tripped: %v", derr)
	}
	oldVLogDir := p.Part(0).VLog().Dir()

	if err := h.Rebuild(0); err != nil {
		t.Fatalf("Rebuild: %v", err)
	}
	ns := p.Part(0)
	if ns.Quarantined() {
		t.Fatal("rebuilt partition still quarantined")
	}
	if got := ns.CacheBudget(); got != perPartCache {
		t.Fatalf("rebuilt CacheBudget = %d, want %d (cache budget lost across rebuild)", got, perPartCache)
	}
	if ns.VLog() == nil || ns.VLog().Dir() != oldVLogDir {
		t.Fatal("rebuilt partition lost its value-log wiring")
	}
	if ns.VLog().SpilledBytes() == 0 {
		t.Fatal("journal replay regenerated no spilled values")
	}
	for i := 0; i < n; i++ {
		got, err := p.Get(m, []byte(fmt.Sprintf("k%04d", i)))
		if err != nil {
			t.Fatalf("post-rebuild Get(%d): %v", i, err)
		}
		if want := tieredValue(i); !bytes.Equal(got, want) {
			t.Fatalf("post-rebuild Get(%d) = %q, want %q", i, got, want)
		}
	}
	if err := ns.VerifyAll(h.Meter()); err != nil {
		t.Fatalf("rebuilt store failed verification: %v", err)
	}
}
