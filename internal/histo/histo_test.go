package histo

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	var h Histogram
	if h.Count() != 0 || h.Mean() != 0 || h.Quantile(0.5) != 0 {
		t.Fatal("empty histogram not zero")
	}
	if h.String() != "histo{empty}" {
		t.Fatalf("String = %q", h.String())
	}
}

func TestExactStats(t *testing.T) {
	var h Histogram
	for _, v := range []uint64{10, 20, 30} {
		h.Record(v)
	}
	if h.Count() != 3 || h.Min() != 10 || h.Max() != 30 {
		t.Fatalf("count/min/max wrong: %d %d %d", h.Count(), h.Min(), h.Max())
	}
	if h.Mean() != 20 {
		t.Fatalf("mean = %v", h.Mean())
	}
}

func TestQuantileAccuracy(t *testing.T) {
	var h Histogram
	rng := rand.New(rand.NewSource(3))
	samples := make([]uint64, 0, 20000)
	for i := 0; i < 20000; i++ {
		v := uint64(rng.ExpFloat64() * 10000)
		samples = append(samples, v)
		h.Record(v)
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	for _, q := range []float64{0.5, 0.9, 0.99} {
		exact := samples[int(q*float64(len(samples)))-1]
		got := h.Quantile(q)
		// Log-bucket error bound ~19%, plus rank slack.
		if float64(got) < float64(exact)*0.75 || float64(got) > float64(exact)*1.35 {
			t.Errorf("q=%.2f: got %d, exact %d", q, got, exact)
		}
	}
	if h.Quantile(0) != h.Min() || h.Quantile(1) != h.Max() {
		t.Error("extreme quantiles must be exact min/max")
	}
}

func TestBucketBoundsConsistent(t *testing.T) {
	for _, v := range []uint64{0, 1, 2, 3, 4, 5, 7, 8, 100, 1023, 1024, 1 << 20, 1 << 40} {
		idx := bucketOf(v)
		if u := bucketUpper(idx); v > u {
			t.Errorf("value %d above its bucket upper %d (idx %d)", v, u, idx)
		}
		if idx > 0 && idx < numBuckets-1 {
			if prev := bucketUpper(idx - 1); v <= prev {
				t.Errorf("value %d not above previous bucket upper %d", v, prev)
			}
		}
	}
}

func TestMerge(t *testing.T) {
	var a, b, all Histogram
	for i := uint64(1); i <= 100; i++ {
		all.Record(i)
		if i%2 == 0 {
			a.Record(i)
		} else {
			b.Record(i)
		}
	}
	a.Merge(&b)
	if a.Count() != all.Count() || a.Min() != all.Min() || a.Max() != all.Max() {
		t.Fatal("merge lost samples")
	}
	if a.Quantile(0.5) != all.Quantile(0.5) {
		t.Fatal("merged quantile differs")
	}
	// Merging empty is a no-op.
	var empty Histogram
	before := a.Count()
	a.Merge(&empty)
	if a.Count() != before {
		t.Fatal("empty merge changed count")
	}
}

func TestReset(t *testing.T) {
	var h Histogram
	h.Record(42)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("reset incomplete")
	}
}

// Property: quantile is monotone in q and bounded by [min, max].
func TestQuantileMonotoneProperty(t *testing.T) {
	f := func(vals []uint32) bool {
		if len(vals) == 0 {
			return true
		}
		var h Histogram
		for _, v := range vals {
			h.Record(uint64(v))
		}
		prev := uint64(0)
		for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
			cur := h.Quantile(q)
			if cur < prev || cur < h.Min() || cur > h.Max() {
				return false
			}
			prev = cur
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
