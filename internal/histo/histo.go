// Package histo provides a small log-bucketed histogram for latency
// distributions. The store records each operation's virtual-cycle latency
// into one; the networked load generator records wall-clock latencies.
// Recording is allocation-free and O(1); quantiles are approximate with
// ~19% worst-case relative error (power-of-two buckets with four
// sub-buckets per octave).
package histo

import (
	"fmt"
	"math"
	"math/bits"
	"strings"
)

// subBuckets per power of two; 4 gives <= 2^(1/4)-1 ~ 19% bucket width.
const subBuckets = 4

// numBuckets covers values up to 2^60.
const numBuckets = 60 * subBuckets

// Histogram accumulates non-negative integer samples (cycles, ns, ...).
// It is not safe for concurrent use; Merge combines per-thread instances.
type Histogram struct {
	buckets [numBuckets]uint64
	count   uint64
	sum     uint64
	min     uint64
	max     uint64
}

// bucketOf maps a value to its bucket index.
func bucketOf(v uint64) int {
	if v < 2 {
		return int(v)
	}
	exp := 63 - bits.LeadingZeros64(v)
	// Position within the octave, in quarters.
	frac := (v - 1<<exp) * subBuckets >> exp
	idx := exp*subBuckets + int(frac)
	if idx >= numBuckets {
		return numBuckets - 1
	}
	return idx
}

// bucketUpper returns the (inclusive) upper bound of a bucket. For small
// octaves the sub-bucket width rounds down to zero, so the bound is
// clamped to the bucket's own lower edge.
func bucketUpper(idx int) uint64 {
	if idx < 2 {
		return uint64(idx)
	}
	exp := idx / subBuckets
	frac := uint64(idx % subBuckets)
	lower := 1<<exp + frac<<exp/subBuckets
	upper := 1<<exp + (frac+1)<<exp/subBuckets
	if upper > lower {
		upper--
	}
	if upper < lower {
		upper = lower
	}
	return uint64(upper)
}

// Record adds one sample.
func (h *Histogram) Record(v uint64) {
	h.buckets[bucketOf(v)]++
	h.count++
	h.sum += v
	if h.count == 1 || v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of samples.
func (h *Histogram) Count() uint64 { return h.count }

// Mean returns the exact arithmetic mean.
func (h *Histogram) Mean() float64 {
	if h.count == 0 {
		return 0
	}
	return float64(h.sum) / float64(h.count)
}

// Min and Max are exact.
func (h *Histogram) Min() uint64 { return h.min }

// Max returns the largest recorded sample.
func (h *Histogram) Max() uint64 { return h.max }

// Quantile returns an upper bound for the q-quantile (0 < q <= 1),
// accurate to the bucket width. Quantile(0.5) is the median estimate.
func (h *Histogram) Quantile(q float64) uint64 {
	if h.count == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	rank := uint64(math.Ceil(q * float64(h.count)))
	var seen uint64
	for i := 0; i < numBuckets; i++ {
		seen += h.buckets[i]
		if seen >= rank {
			u := bucketUpper(i)
			if u > h.max {
				return h.max
			}
			return u
		}
	}
	return h.max
}

// Merge adds another histogram's samples into h.
func (h *Histogram) Merge(o *Histogram) {
	if o.count == 0 {
		return
	}
	for i := range h.buckets {
		h.buckets[i] += o.buckets[i]
	}
	if h.count == 0 || o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
	h.count += o.count
	h.sum += o.sum
}

// Reset clears all samples.
func (h *Histogram) Reset() { *h = Histogram{} }

// String renders a compact summary.
func (h *Histogram) String() string {
	if h.count == 0 {
		return "histo{empty}"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "histo{n=%d mean=%.0f p50=%d p99=%d max=%d}",
		h.count, h.Mean(), h.Quantile(0.5), h.Quantile(0.99), h.max)
	return b.String()
}
