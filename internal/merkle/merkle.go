// Package merkle implements the integrity design ShieldStore's §4.3
// *rejects*: a full binary Merkle tree over per-bucket MACs with only the
// root inside the enclave.
//
// The paper argues that for millions of buckets the tree becomes
// excessively tall — every verification walks log2(n) levels of keyed
// hashing and every update rewrites a root path — and chooses flattened
// in-enclave MAC hashes instead. This package exists so that choice can
// be validated: core.Options.MerkleTree switches the store's integrity
// backend to this tree, and BenchmarkAblationIntegrity compares the two.
//
// Layout: a perfect binary tree over nextPow2(leaves) leaves, stored as a
// flat array of 16-byte nodes in *untrusted* memory (1-indexed heap
// order: node i has children 2i and 2i+1). Only the 16-byte root lives
// in enclave memory. Unwritten nodes read as the all-zero value and are
// interpreted as that level's "empty" default, whose digests are
// precomputed at construction — so an empty tree needs no initialization
// writes, and a host writing zeros into a node merely resets it to a
// default that cannot match real content.
package merkle

import (
	"crypto/subtle"
	"errors"

	"shieldstore/internal/cmac"
	"shieldstore/internal/mem"
	"shieldstore/internal/sim"
)

// ErrIntegrity reports a path that does not authenticate against the
// in-enclave root.
var ErrIntegrity = errors.New("merkle: path verification failed")

// Digest is one tree node value.
type Digest = [16]byte

// Tree is a Merkle tree over fixed-position 16-byte leaves.
type Tree struct {
	space  *mem.Space
	model  *sim.CostModel
	mac    *cmac.CMAC
	leaves int // configured leaf count
	cap    int // power-of-two leaf capacity
	levels int // tree height (cap leaves -> levels = log2(cap)+1)

	nodes mem.Addr // untrusted: 2*cap nodes x 16 B, heap order, [1..2cap)
	root  mem.Addr // enclave: 16 B

	// defaults[l] is the digest of an all-empty subtree whose leaves sit
	// l levels below (defaults[0] = empty leaf = zero).
	defaults []Digest
}

// New builds a tree with the given leaf count. The CMAC key must be
// enclave-held (the caller owns key management).
//
//ss:enclave-write — installs the empty root in enclave memory.
//ss:nopanic-ok(leaf count is the validated bucket count; level loops are bounded by the tree height)
func New(space *mem.Space, mac *cmac.CMAC, leaves int) *Tree {
	if leaves <= 0 {
		panic("merkle: leaves must be positive")
	}
	capLeaves := 1
	levels := 1
	for capLeaves < leaves {
		capLeaves *= 2
		levels++
	}
	t := &Tree{
		space:  space,
		model:  space.Model(),
		mac:    mac,
		leaves: leaves,
		cap:    capLeaves,
		levels: levels,
		nodes:  space.Alloc(mem.Untrusted, 2*capLeaves*16),
		root:   space.Alloc(mem.Enclave, 16),
	}
	// Empty-subtree digests, bottom up. The zero digest doubles as the
	// "unwritten node" sentinel.
	t.defaults = make([]Digest, levels)
	for l := 1; l < levels; l++ {
		t.defaults[l] = t.combine(nil, t.defaults[l-1], t.defaults[l-1])
	}
	// Install the empty root in enclave memory.
	rootDefault := t.defaults[levels-1]
	setup := sim.NewMeter(t.model)
	t.space.Write(setup, t.root, rootDefault[:])
	return t
}

// Leaves returns the configured leaf count.
func (t *Tree) Leaves() int { return t.leaves }

// Levels returns the tree height (the §4.3 complaint).
func (t *Tree) Levels() int { return t.levels }

// combine hashes two children with a domain-separation prefix.
func (t *Tree) combine(m *sim.Meter, l, r Digest) Digest {
	var buf [33]byte
	buf[0] = 0x4E // 'N'ode: distinguishes from leaf content MACs
	copy(buf[1:17], l[:])
	copy(buf[17:33], r[:])
	if m != nil {
		m.Charge(t.model.CMAC(len(buf)))
		m.Count(sim.CtrCMAC)
	}
	return t.mac.Tag(buf[:])
}

// nodeAddr returns the untrusted address of heap node i.
func (t *Tree) nodeAddr(i int) mem.Addr { return t.nodes + mem.Addr(i*16) }

// readNode loads a node, substituting the level default for unwritten
// (all-zero) slots. depth counts levels below this node's children... the
// level parameter is the height of the subtree under the node.
func (t *Tree) readNode(m *sim.Meter, i, level int) Digest {
	var d Digest
	t.space.Read(m, t.nodeAddr(i), d[:])
	if d == (Digest{}) {
		return t.defaults[level]
	}
	return d
}

// VerifyLeaf authenticates leaf i's digest against the enclave root by
// recomputing the root from the sibling path.
func (t *Tree) VerifyLeaf(m *sim.Meter, i int, leaf Digest) error {
	if i < 0 || i >= t.leaves {
		return ErrIntegrity
	}
	cur := leaf
	idx := t.cap + i
	for level := 0; idx > 1; level++ {
		sib := t.readNode(m, idx^1, level)
		if idx&1 == 0 {
			cur = t.combine(m, cur, sib)
		} else {
			cur = t.combine(m, sib, cur)
		}
		idx >>= 1
	}
	var want Digest
	t.space.Read(m, t.root, want[:])
	if subtle.ConstantTimeCompare(cur[:], want[:]) != 1 {
		return ErrIntegrity
	}
	return nil
}

// UpdateLeaf installs a new digest for leaf i, rewriting its root path in
// untrusted memory and the root in the enclave.
//
//ss:seals — tree nodes are keyed digests; only the root write targets enclave memory.
//ss:nopanic-ok(leaf index is the enclave-computed MAC-hash index, never untrusted bytes)
func (t *Tree) UpdateLeaf(m *sim.Meter, i int, leaf Digest) {
	if i < 0 || i >= t.leaves {
		panic("merkle: leaf out of range")
	}
	idx := t.cap + i
	cur := leaf
	t.space.Write(m, t.nodeAddr(idx), cur[:])
	for level := 0; idx > 1; level++ {
		sib := t.readNode(m, idx^1, level)
		if idx&1 == 0 {
			cur = t.combine(m, cur, sib)
		} else {
			cur = t.combine(m, sib, cur)
		}
		idx >>= 1
		t.space.Write(m, t.nodeAddr(idx), cur[:])
	}
	t.space.Write(m, t.root, cur[:])
}

// LeafDigest reads leaf i's stored digest (tests).
func (t *Tree) LeafDigest(m *sim.Meter, i int) Digest {
	return t.readNode(m, t.cap+i, 0)
}

// TamperNode overwrites an internal node or leaf in untrusted memory
// (tests: host attack).
//
//ss:seals — test-only host attack on untrusted nodes.
func (t *Tree) TamperNode(i int, d Digest) {
	t.space.Tamper(t.nodeAddr(i), d[:])
}

// Cap returns the power-of-two capacity (tests).
func (t *Tree) Cap() int { return t.cap }

// RootPeek returns the enclave root without cost accounting (sealing).
func (t *Tree) RootPeek() Digest {
	var d Digest
	t.space.Peek(t.root, d[:])
	return d
}
