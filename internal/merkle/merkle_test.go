package merkle

import (
	"errors"
	"math/rand"
	"testing"

	"shieldstore/internal/cmac"
	"shieldstore/internal/mem"
	"shieldstore/internal/sim"
)

func newTree(t *testing.T, leaves int) (*Tree, *sim.Meter) {
	t.Helper()
	space := mem.NewSpace(mem.Config{EPCBytes: 1 << 20})
	mac, err := cmac.New([]byte("0123456789abcdef"))
	if err != nil {
		t.Fatal(err)
	}
	return New(space, mac, leaves), sim.NewMeter(space.Model())
}

func digest(b byte) Digest {
	var d Digest
	for i := range d {
		d[i] = b
	}
	return d
}

func TestEmptyTreeVerifies(t *testing.T) {
	tr, m := newTree(t, 100)
	for _, i := range []int{0, 1, 50, 99} {
		if err := tr.VerifyLeaf(m, i, Digest{}); err != nil {
			t.Fatalf("empty leaf %d: %v", i, err)
		}
	}
	// Non-empty digest against an empty tree fails.
	if err := tr.VerifyLeaf(m, 3, digest(1)); !errors.Is(err, ErrIntegrity) {
		t.Fatal("forged leaf accepted by empty tree")
	}
}

func TestUpdateThenVerify(t *testing.T) {
	tr, m := newTree(t, 37) // non-power-of-two
	if tr.Cap() != 64 || tr.Levels() != 7 {
		t.Fatalf("cap=%d levels=%d", tr.Cap(), tr.Levels())
	}
	for i := 0; i < 37; i++ {
		tr.UpdateLeaf(m, i, digest(byte(i+1)))
	}
	for i := 0; i < 37; i++ {
		if err := tr.VerifyLeaf(m, i, digest(byte(i+1))); err != nil {
			t.Fatalf("leaf %d: %v", i, err)
		}
		if err := tr.VerifyLeaf(m, i, digest(byte(i+2))); !errors.Is(err, ErrIntegrity) {
			t.Fatalf("leaf %d accepted wrong digest", i)
		}
	}
}

func TestUpdateIsolated(t *testing.T) {
	// Updating one leaf must not break any other leaf's proof.
	tr, m := newTree(t, 16)
	for i := 0; i < 16; i++ {
		tr.UpdateLeaf(m, i, digest(byte(i+1)))
	}
	tr.UpdateLeaf(m, 5, digest(0xEE))
	for i := 0; i < 16; i++ {
		want := digest(byte(i + 1))
		if i == 5 {
			want = digest(0xEE)
		}
		if err := tr.VerifyLeaf(m, i, want); err != nil {
			t.Fatalf("leaf %d after neighbor update: %v", i, err)
		}
	}
}

func TestTamperedPathDetected(t *testing.T) {
	tr, m := newTree(t, 8)
	for i := 0; i < 8; i++ {
		tr.UpdateLeaf(m, i, digest(byte(i+1)))
	}
	// Verification recomputes a leaf's ancestors from the leaf digest and
	// reads only *siblings*, so tampering node 5 (which covers leaves
	// 2-3) is detected by the leaves that use it as a sibling: 0 and 1.
	tr.TamperNode(5, digest(0xAA))
	for _, leaf := range []int{0, 1} {
		if err := tr.VerifyLeaf(m, leaf, digest(byte(leaf+1))); !errors.Is(err, ErrIntegrity) {
			t.Fatalf("leaf %d: tampered sibling node went undetected", leaf)
		}
	}
	// Leaves 2-3 recompute over the tampered ancestor and still verify —
	// their proofs never read node 5.
	for _, leaf := range []int{2, 3, 6} {
		if err := tr.VerifyLeaf(m, leaf, digest(byte(leaf+1))); err != nil {
			t.Fatalf("leaf %d broken by non-sibling tamper: %v", leaf, err)
		}
	}
}

func TestZeroingNodeIsDetected(t *testing.T) {
	// A host zeroing a node resets it to the level default, which cannot
	// match real content.
	tr, m := newTree(t, 8)
	for i := 0; i < 8; i++ {
		tr.UpdateLeaf(m, i, digest(byte(i+1)))
	}
	// Zero leaf 5's slot: verification of leaf 4 reads it as a sibling
	// and substitutes the empty default, which cannot match the root.
	tr.TamperNode(tr.Cap()+5, Digest{})
	if err := tr.VerifyLeaf(m, 4, digest(5)); !errors.Is(err, ErrIntegrity) {
		t.Fatal("zeroed sibling went undetected")
	}
}

func TestReplayOldLeafDetected(t *testing.T) {
	tr, m := newTree(t, 8)
	tr.UpdateLeaf(m, 3, digest(0x11))
	old := tr.LeafDigest(m, 3)
	// Snapshot the old path nodes.
	var oldPath []Digest
	idx := tr.Cap() + 3
	for i := idx; i >= 1; i /= 2 {
		var d Digest
		tr.space.Peek(tr.nodeAddr(i), d[:])
		oldPath = append(oldPath, d)
	}
	tr.UpdateLeaf(m, 3, digest(0x22))
	// Replay the old leaf and its whole untrusted path.
	j := 0
	for i := idx; i >= 1; i /= 2 {
		tr.TamperNode(i, oldPath[j])
		j++
	}
	// The enclave root was updated, so the replay fails.
	if err := tr.VerifyLeaf(m, 3, old); !errors.Is(err, ErrIntegrity) {
		t.Fatal("full-path replay went undetected: root not authoritative")
	}
}

func TestOutOfRange(t *testing.T) {
	tr, m := newTree(t, 4)
	if err := tr.VerifyLeaf(m, -1, Digest{}); err == nil {
		t.Fatal("negative leaf accepted")
	}
	if err := tr.VerifyLeaf(m, 4, Digest{}); err == nil {
		t.Fatal("out-of-range leaf accepted")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("UpdateLeaf out of range must panic")
		}
	}()
	tr.UpdateLeaf(m, 4, Digest{})
}

func TestCostScalesWithHeight(t *testing.T) {
	// The §4.3 complaint: taller trees cost more per verification.
	costFor := func(leaves int) uint64 {
		tr, m := newTree(t, leaves)
		tr.UpdateLeaf(m, 0, digest(1))
		m.Reset()
		if err := tr.VerifyLeaf(m, 0, digest(1)); err != nil {
			t.Fatal(err)
		}
		return m.Cycles()
	}
	small := costFor(8)       // 4 levels
	large := costFor(1 << 16) // 17 levels
	if large <= small {
		t.Fatalf("verification cost must grow with height: %d vs %d", small, large)
	}
	if ratio := float64(large) / float64(small); ratio < 2 {
		t.Fatalf("height scaling too weak: %.1fx", ratio)
	}
}

func TestRandomizedAgainstShadow(t *testing.T) {
	tr, m := newTree(t, 64)
	shadow := map[int]Digest{}
	rng := rand.New(rand.NewSource(9))
	for step := 0; step < 2000; step++ {
		i := rng.Intn(64)
		if rng.Intn(2) == 0 {
			var d Digest
			rng.Read(d[:])
			tr.UpdateLeaf(m, i, d)
			shadow[i] = d
		} else {
			want := shadow[i] // zero Digest when never written
			if err := tr.VerifyLeaf(m, i, want); err != nil {
				t.Fatalf("step %d: leaf %d: %v", step, i, err)
			}
		}
	}
}
