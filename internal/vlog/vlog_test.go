package vlog

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"testing"

	"shieldstore/internal/fault"
	"shieldstore/internal/mem"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
)

func testEnclave() *sgx.Enclave {
	space := mem.NewSpace(mem.Config{EPCBytes: 8 << 20})
	return sgx.New(sgx.Config{Space: space, Seed: 11})
}

func testLog(t *testing.T, opts Options) (*Log, *sim.Meter) {
	t.Helper()
	e := testEnclave()
	l, err := New(e, t.TempDir(), opts)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	t.Cleanup(func() { l.Close() })
	return l, sim.NewMeter(e.Model())
}

func TestAppendReadRoundTrip(t *testing.T) {
	l, m := testLog(t, Options{SegmentBytes: 256})
	type rec struct {
		p        Ptr
		key, val []byte
	}
	var recs []rec
	for i := 0; i < 40; i++ {
		key := []byte(fmt.Sprintf("key-%03d", i))
		val := bytes.Repeat([]byte{byte(i)}, 10+i*3)
		p, err := l.Append(m, key, val)
		if err != nil {
			t.Fatalf("Append(%d): %v", i, err)
		}
		recs = append(recs, rec{p, key, val})
	}
	if l.SegmentsLive() < 2 {
		t.Fatalf("SegmentsLive = %d, want a rolled log", l.SegmentsLive())
	}
	for i, r := range recs {
		key, val, err := l.Read(m, r.p)
		if err != nil {
			t.Fatalf("Read(%d): %v", i, err)
		}
		if !bytes.Equal(key, r.key) || !bytes.Equal(val, r.val) {
			t.Fatalf("Read(%d) = %q/%q, want %q/%q", i, key, val, r.key, r.val)
		}
		if err := l.Verify(m, r.p); err != nil {
			t.Fatalf("Verify(%d): %v", i, err)
		}
	}
}

func TestPtrEncodeDecode(t *testing.T) {
	p := Ptr{Seg: 7, Off: 12345, Len: 99, Version: 3}
	var b [PtrSize]byte
	p.Encode(b[:])
	got, err := DecodePtr(b[:])
	if err != nil || got != p {
		t.Fatalf("DecodePtr = %+v, %v; want %+v", got, err, p)
	}
	if _, err := DecodePtr(b[:PtrSize-1]); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("short pointer: err = %v, want ErrCorrupt", err)
	}
}

// TestRollbackSubstitutionDetected is the freshness argument end to end:
// a host that swaps a retired segment incarnation back under a recycled
// ID serves bytes MAC'd under the old version, and every read of the new
// incarnation's pointers fails as ErrIntegrity — as does every read
// through a pointer into the old incarnation.
func TestRollbackSubstitutionDetected(t *testing.T) {
	l, m := testLog(t, Options{SegmentBytes: 1 << 20})
	key, val := []byte("victim-key"), bytes.Repeat([]byte{0xAB}, 100)
	pOld, err := l.Append(m, key, val)
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(m); err != nil {
		t.Fatal(err)
	}
	// Host saves the v1 incarnation of segment 0.
	saved, err := os.ReadFile(l.segPath(pOld.Seg))
	if err != nil {
		t.Fatal(err)
	}

	// GC retires segment 0; after the "snapshot" its file is purged and
	// the ID becomes recyclable.
	l.Retire(m, pOld.Seg)
	l.PurgeRetired(m)
	if _, err := os.Stat(l.segPath(pOld.Seg)); !os.IsNotExist(err) {
		t.Fatalf("retired segment file still present: %v", err)
	}

	// The recycled incarnation: same ID, bumped version, same-shape record.
	pNew, err := l.Append(m, key, bytes.Repeat([]byte{0xCD}, 100))
	if err != nil {
		t.Fatal(err)
	}
	if pNew.Seg != pOld.Seg {
		t.Fatalf("ID not recycled: new seg %d, old %d", pNew.Seg, pOld.Seg)
	}
	if pNew.Version == pOld.Version {
		t.Fatalf("version not bumped on recycle: %d", pNew.Version)
	}

	// A stale pointer into the old incarnation is already invalid.
	if _, _, err := l.Read(m, pOld); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("stale-version read: err = %v, want ErrIntegrity", err)
	}

	// The substitution attack: old file bytes under the new ID.
	if err := os.WriteFile(l.segPath(pNew.Seg), saved, 0o600); err != nil {
		t.Fatal(err)
	}
	// Drop the cached handle so the read sees the substituted file.
	if f, ok := l.files[pNew.Seg]; ok {
		f.Close()
		delete(l.files, pNew.Seg)
	}
	if _, _, err := l.Read(m, pNew); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("substituted read: err = %v, want ErrIntegrity", err)
	}
	if err := l.Scan(m, pNew.Seg, func(Ptr, []byte, []byte) error { return nil }); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("substituted scan: err = %v, want ErrIntegrity", err)
	}
}

// TestTruncationDetected rolls the segment file back to a shorter state;
// reads inside the trusted extent must fail as integrity violations, not
// succeed or report a plain I/O error.
func TestTruncationDetected(t *testing.T) {
	l, m := testLog(t, Options{})
	p1, err := l.Append(m, []byte("a"), bytes.Repeat([]byte{1}, 64))
	if err != nil {
		t.Fatal(err)
	}
	p2, err := l.Append(m, []byte("b"), bytes.Repeat([]byte{2}, 64))
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Sync(m); err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(l.segPath(p2.Seg), int64(p2.Off)); err != nil {
		t.Fatal(err)
	}
	if _, _, err := l.Read(m, p2); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("truncated read: err = %v, want ErrIntegrity", err)
	}
	// The surviving prefix still authenticates.
	if _, _, err := l.Read(m, p1); err != nil {
		t.Fatalf("prefix read after truncation: %v", err)
	}
	// An out-of-extent pointer is rejected before any I/O.
	bogus := Ptr{Seg: p1.Seg, Off: p2.Off + p2.Len, Len: 64, Version: p1.Version}
	if _, _, err := l.Read(m, bogus); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("out-of-extent read: err = %v, want ErrIntegrity", err)
	}
}

func TestMarkDeadAndVictim(t *testing.T) {
	l, m := testLog(t, Options{SegmentBytes: 256, GCDeadFraction: 0.5})
	var ptrs []Ptr
	for i := 0; i < 30; i++ {
		p, err := l.Append(m, []byte(fmt.Sprintf("k%02d", i)), bytes.Repeat([]byte{byte(i)}, 40))
		if err != nil {
			t.Fatal(err)
		}
		ptrs = append(ptrs, p)
	}
	if _, ok := l.PickVictim(); ok {
		t.Fatal("victim before any dead bytes")
	}
	// Kill every record of the first sealed segment.
	seg0 := ptrs[0].Seg
	for _, p := range ptrs {
		if p.Seg == seg0 {
			l.MarkDead(m, p)
		}
	}
	v, ok := l.PickVictim()
	if !ok || v != seg0 {
		t.Fatalf("PickVictim = %d,%v; want %d,true", v, ok, seg0)
	}
	if l.DeadBytes() == 0 {
		t.Fatal("DeadBytes = 0 after MarkDead")
	}
	// The tail is never a victim, even fully dead.
	tail := ptrs[len(ptrs)-1].Seg
	for _, p := range ptrs {
		if p.Seg == tail {
			l.MarkDead(m, p)
		}
	}
	if v, ok := l.PickVictim(); ok && v == tail {
		t.Fatal("tail selected as GC victim")
	}
}

// TestManifestRoundTrip seals the freshness state, reopens the log in a
// fresh instance (same enclave seed), and checks every pointer still
// authenticates — plus that unvouched segment files are wiped on load.
func TestManifestRoundTrip(t *testing.T) {
	e := testEnclave()
	dir := t.TempDir()
	l, err := New(e, dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMeter(e.Model())
	type rec struct {
		p        Ptr
		key, val []byte
	}
	var recs []rec
	for i := 0; i < 20; i++ {
		key := []byte(fmt.Sprintf("key-%03d", i))
		val := bytes.Repeat([]byte{byte(i + 1)}, 30+i)
		p, err := l.Append(m, key, val)
		if err != nil {
			t.Fatal(err)
		}
		recs = append(recs, rec{p, key, val})
	}
	l.MarkDead(m, recs[3].p)
	if err := l.Sync(m); err != nil {
		t.Fatal(err)
	}
	man := l.Manifest()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// A stale leftover the manifest does not vouch for.
	stale := l.segPath(99)
	if err := os.WriteFile(stale, []byte("garbage"), 0o600); err != nil {
		t.Fatal(err)
	}

	l2, err := New(e, dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if err := l2.LoadManifest(man); err != nil {
		t.Fatalf("LoadManifest: %v", err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("unvouched segment survived LoadManifest: %v", err)
	}
	if got := l2.DeadBytes(); got != int64(recs[3].p.Len) {
		t.Fatalf("DeadBytes = %d, want %d", got, recs[3].p.Len)
	}
	for i, r := range recs {
		key, val, err := l2.Read(m, r.p)
		if err != nil {
			t.Fatalf("Read(%d) after reload: %v", i, err)
		}
		if !bytes.Equal(key, r.key) || !bytes.Equal(val, r.val) {
			t.Fatalf("Read(%d) after reload: wrong bytes", i)
		}
	}
	// Appends continue where the manifest left off.
	p, err := l2.Append(m, []byte("post"), []byte("reload"))
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := l2.Read(m, p); err != nil {
		t.Fatalf("post-reload append read: %v", err)
	}
}

func TestLoadManifestEmptyWipes(t *testing.T) {
	e := testEnclave()
	dir := t.TempDir()
	l, err := New(e, dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	stale := l.segPath(0)
	if err := os.WriteFile(stale, []byte("pre-crash leftovers"), 0o600); err != nil {
		t.Fatal(err)
	}
	if err := l.LoadManifest(nil); err != nil {
		t.Fatalf("LoadManifest(nil): %v", err)
	}
	if _, err := os.Stat(stale); !os.IsNotExist(err) {
		t.Fatalf("stale segment survived empty-manifest load: %v", err)
	}
}

// TestLoadManifestCorrupt mangles sealed manifest bytes every way the
// decoder branches: all must be rejected as ErrCorrupt, never accepted or
// panicked on. (The manifest is sealed, so corruption here means a bug in
// persist — but the decoder still refuses garbage outright.)
func TestLoadManifestCorrupt(t *testing.T) {
	e := testEnclave()
	dir := t.TempDir()
	l, err := New(e, dir, Options{SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMeter(e.Model())
	for i := 0; i < 10; i++ {
		if _, err := l.Append(m, []byte{byte(i)}, bytes.Repeat([]byte{1}, 50)); err != nil {
			t.Fatal(err)
		}
	}
	man := l.Manifest()
	l.Close()

	fresh := func() *Log {
		nl, err := New(e, t.TempDir(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { nl.Close() })
		return nl
	}
	// Truncations at every boundary.
	for n := 0; n < len(man); n++ {
		if n == 0 {
			continue // empty = deliberate wipe-to-fresh
		}
		if err := fresh().LoadManifest(man[:n]); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("truncated manifest (%d bytes) accepted: %v", n, err)
		}
	}
	// Trailing garbage.
	if err := fresh().LoadManifest(append(append([]byte{}, man...), 0)); !errors.Is(err, ErrCorrupt) {
		t.Fatal("manifest with trailing garbage accepted")
	}
	// A tail ID that is not live.
	bad := append([]byte{}, man...)
	bad[len(bad)-4], bad[len(bad)-3], bad[len(bad)-2], bad[len(bad)-1] = 0x77, 0, 0, 0
	if err := fresh().LoadManifest(bad); !errors.Is(err, ErrCorrupt) {
		t.Fatal("manifest with non-live tail accepted")
	}
	// Loading into a dirty log is refused.
	dirty, err := New(e, t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer dirty.Close()
	if _, err := dirty.Append(m, []byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	if err := dirty.LoadManifest(man); !errors.Is(err, ErrCorrupt) {
		t.Fatal("LoadManifest on a dirty log accepted")
	}
}

// TestTornAppendSweep drives the PointVLogTear injection across many
// deterministic seeds: each torn append leaves a garbage prefix on disk,
// the trusted extent never advances, and the retried append overwrites
// the tear and round-trips — with every earlier record intact.
func TestTornAppendSweep(t *testing.T) {
	for seed := uint64(0); seed < 12; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			l, m := testLog(t, Options{SegmentBytes: 1 << 12})
			plane := fault.New(seed)
			l.SetFaultPlane(plane)

			type rec struct {
				p        Ptr
				key, val []byte
			}
			var recs []rec
			for i := 0; i < 5; i++ {
				key := []byte(fmt.Sprintf("pre-%d", i))
				val := bytes.Repeat([]byte{byte(seed), byte(i)}, 30)
				p, err := l.Append(m, key, val)
				if err != nil {
					t.Fatal(err)
				}
				recs = append(recs, rec{p, key, val})
			}
			extentBefore := l.segs[l.tail].extent

			plane.Arm(fault.PointVLogTear, fault.Spec{})
			key, val := []byte("torn"), bytes.Repeat([]byte{0xEE}, 100)
			if _, err := l.Append(m, key, val); !errors.Is(err, fault.ErrInjected) {
				t.Fatalf("torn append: err = %v, want ErrInjected", err)
			}
			if got := l.segs[l.tail].extent; got != extentBefore {
				t.Fatalf("extent advanced across a torn append: %d -> %d", extentBefore, got)
			}

			// Retry overwrites the torn prefix.
			p, err := l.Append(m, key, val)
			if err != nil {
				t.Fatalf("retry append: %v", err)
			}
			gk, gv, err := l.Read(m, p)
			if err != nil || !bytes.Equal(gk, key) || !bytes.Equal(gv, val) {
				t.Fatalf("retry read: %q/%q, %v", gk, gv, err)
			}
			for i, r := range recs {
				gk, gv, err := l.Read(m, r.p)
				if err != nil || !bytes.Equal(gk, r.key) || !bytes.Equal(gv, r.val) {
					t.Fatalf("pre-tear record %d damaged: %v", i, err)
				}
			}
			// A full segment scan walks over the overwritten tear cleanly.
			n := 0
			if err := l.Scan(m, p.Seg, func(Ptr, []byte, []byte) error { n++; return nil }); err != nil {
				t.Fatalf("scan after tear: %v", err)
			}
			if n != len(recs)+1 {
				t.Fatalf("scan saw %d records, want %d", n, len(recs)+1)
			}
		})
	}
}

// FuzzVLogSegmentDecode feeds attacker-shaped bytes through the sealed-
// record decode path: the host rewrites the record region (and may
// truncate the file); Read must return the original bytes or an error
// under ErrCorrupt — never wrong data, never a panic.
func FuzzVLogSegmentDecode(f *testing.F) {
	f.Add([]byte{}, uint16(0))
	f.Add([]byte{0x00}, uint16(1))
	f.Add(bytes.Repeat([]byte{0xFF}, 64), uint16(200))
	f.Add([]byte{0x08, 0, 0, 0, 0xFF, 0xFF, 0xFF, 0x7F}, uint16(0))
	f.Fuzz(func(t *testing.T, data []byte, truncTo uint16) {
		if len(data) > 4096 {
			return
		}
		e := testEnclave()
		l, err := New(e, t.TempDir(), Options{})
		if err != nil {
			t.Fatal(err)
		}
		defer l.Close()
		m := sim.NewMeter(e.Model())
		key, val := []byte("fuzz-key"), bytes.Repeat([]byte{0x5A}, 120)
		p, err := l.Append(m, key, val)
		if err != nil {
			t.Fatal(err)
		}
		if err := l.Sync(m); err != nil {
			t.Fatal(err)
		}

		// Host attack: splice fuzz bytes over the record, maybe shorten
		// the file.
		path := l.segPath(p.Seg)
		if len(data) > 0 {
			hf, err := os.OpenFile(path, os.O_RDWR, 0o600)
			if err != nil {
				t.Fatal(err)
			}
			_, werr := hf.WriteAt(data, int64(p.Off))
			hf.Close()
			if werr != nil {
				t.Fatal(werr)
			}
		}
		if int64(truncTo) < int64(p.Off+p.Len) {
			if err := os.Truncate(path, int64(truncTo)); err != nil {
				t.Fatal(err)
			}
		}

		gk, gv, err := l.Read(m, p)
		if err == nil {
			if !bytes.Equal(gk, key) || !bytes.Equal(gv, val) {
				t.Fatalf("decode accepted wrong data: %q/%q", gk, gv)
			}
			return
		}
		if !errors.Is(err, ErrCorrupt) {
			t.Fatalf("decode error outside the taxonomy: %v", err)
		}
		// The scan path must hold the same line.
		if err := l.Scan(m, p.Seg, func(_ Ptr, k, v []byte) error {
			if !bytes.Equal(k, key) || !bytes.Equal(v, val) {
				t.Fatalf("scan accepted wrong data")
			}
			return nil
		}); err != nil && !errors.Is(err, ErrCorrupt) {
			t.Fatalf("scan error outside the taxonomy: %v", err)
		}
	})
}
