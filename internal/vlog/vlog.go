// Package vlog implements the untrusted tier of the tiered hybrid
// storage layout (TwinStore-style): an append-only, segmented value log
// on untrusted disk. Large cold values are sealed per record under a log
// key derived from the enclave seed (AES-CTR + CMAC) and referenced from
// the in-memory hash table by a 16-byte pointer; the enclave keeps only
// small freshness state per segment — version, byte extent and record
// counts — so a rolled-back, truncated or substituted segment file is
// detected on read even though none of the log bytes are trusted.
//
// Freshness argument. Segments are append-only: bytes at a given
// (segment, version, offset) are written exactly once, and every record
// MAC binds that triple. Truncation is caught by the enclave-resident
// extent (a read past the physical file is a short read, and a read
// inside the extent of a shorter, older file fails outright). Segment
// IDs are recycled only after garbage collection retires the old
// incarnation, and recycling always bumps the version — so a host that
// swaps a retired incarnation back in produces records MAC'd under the
// old version, which fail authentication against the enclave's current
// per-segment state: ErrIntegrity.
//
// Crash consistency. The manifest (segment versions + extents + the
// version floor for every ID ever used) is serialized by Manifest and
// sealed into persist snapshots; retired segments stay on disk until
// PurgeRetired runs after the next durable snapshot, so a restored
// snapshot's pointers never dangle.
package vlog

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"

	"shieldstore/internal/cmac"
	"shieldstore/internal/fault"
	"shieldstore/internal/secret"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
)

// Errors returned by log reads. ErrIntegrity wraps ErrCorrupt, so
// errors.Is(err, ErrCorrupt) holds for every failed decode while
// errors.Is(err, ErrIntegrity) identifies freshness/authentication
// violations specifically.
var (
	// ErrCorrupt reports a sealed record that failed structural
	// validation: torn, truncated, or length-inconsistent bytes.
	ErrCorrupt = errors.New("vlog: corrupt sealed record")
	// ErrIntegrity reports an authentication or freshness violation — a
	// MAC mismatch, an unknown or version-mismatched segment, or an
	// out-of-extent offset: the signature of a tampered, replayed, or
	// rolled-back segment.
	ErrIntegrity = fmt.Errorf("%w: integrity violation (rolled-back or tampered segment)", ErrCorrupt)
)

// Ptr locates one sealed record in the log. Pointers are stored inside
// MAC-protected hash-table entries, so their fields arrive authenticated;
// Version makes them self-invalidating when the segment is recycled.
type Ptr struct {
	Seg     uint32
	Off     uint32
	Len     uint32 // full sealed record length, including the header
	Version uint32
}

// PtrSize is the encoded pointer size.
const PtrSize = 16

// Encode serializes the pointer into b (little-endian, PtrSize bytes).
func (p Ptr) Encode(b []byte) {
	binary.LittleEndian.PutUint32(b[0:], p.Seg)
	binary.LittleEndian.PutUint32(b[4:], p.Off)
	binary.LittleEndian.PutUint32(b[8:], p.Len)
	binary.LittleEndian.PutUint32(b[12:], p.Version)
}

// DecodePtr parses a pointer encoded by Encode.
func DecodePtr(b []byte) (Ptr, error) {
	if len(b) != PtrSize {
		return Ptr{}, ErrCorrupt
	}
	return Ptr{
		Seg:     binary.LittleEndian.Uint32(b[0:]),
		Off:     binary.LittleEndian.Uint32(b[4:]),
		Len:     binary.LittleEndian.Uint32(b[8:]),
		Version: binary.LittleEndian.Uint32(b[12:]),
	}, nil
}

// Sealed record layout: keyLen u32 | valLen u32 | IV 16 | MAC 16 |
// ct(key || value). The MAC covers (seg, version, offset, keyLen,
// valLen, IV, ciphertext), binding the record to its log position.
const recordOverhead = 4 + 4 + ivSize + macSize

const (
	ivSize  = 16
	macSize = 16
)

// Options configures a Log.
type Options struct {
	// SegmentBytes is the fixed segment size (default 1 MiB). Records
	// larger than a segment get a private oversized segment.
	SegmentBytes int
	// GCDeadFraction is the dead-byte fraction above which a sealed
	// segment becomes a GC victim (default 0.5).
	GCDeadFraction float64
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 1 << 20
	}
	if o.GCDeadFraction <= 0 {
		o.GCDeadFraction = 0.5
	}
	return o
}

// segState is the enclave-resident freshness state of one live segment.
type segState struct {
	ver      uint32
	extent   uint32 // authenticated byte extent
	records  uint32 // records appended
	deadRecs uint32 // records overwritten or deleted
	dead     uint32 // bytes belonging to dead records
}

// Log is one partition's value log. Not safe for concurrent use: like
// the Store that owns it, a Log belongs to exactly one partition worker.
type Log struct {
	enclave *sgx.Enclave
	dir     string
	opts    Options

	block cipher.Block
	mac   *cmac.CMAC
	// dataKey/macKey are the guarded derived log keys; held so Close can
	// release them instead of leaving key bytes reachable for the
	// process lifetime.
	//ss:secret
	dataKey *secret.Buffer
	//ss:secret
	macKey *secret.Buffer

	segs     map[uint32]*segState // live segments
	vers     map[uint32]uint32    // version floor for every ID ever used
	files    map[uint32]*os.File
	tail     uint32
	haveTail bool
	nextID   uint32
	freeIDs  []uint32
	pending  []uint32 // retired segments awaiting post-snapshot purge

	faults *fault.Plane
}

// New opens (or creates) a value log in dir, deriving the log keys from
// the enclave's platform key material so a restarted enclave can reopen
// records it sealed earlier.
//
//ss:host(log directory setup at open time, outside the measured window)
//ss:nopanic-ok(16-byte derived keys cannot fail the AES/CMAC constructors)
func New(e *sgx.Enclave, dir string, opts Options) (*Log, error) {
	if err := os.MkdirAll(dir, 0o700); err != nil {
		return nil, err
	}
	dataKey := e.DeriveKey("vlog-data")
	macKey := e.DeriveKey("vlog-mac")
	block, err := aes.NewCipher(dataKey.Bytes()[:16])
	if err != nil {
		panic(err)
	}
	mc, err := cmac.New(macKey.Bytes()[:16])
	if err != nil {
		panic(err)
	}
	return &Log{
		enclave: e,
		dir:     dir,
		opts:    opts.withDefaults(),
		block:   block,
		mac:     mc,
		dataKey: dataKey,
		macKey:  macKey,
		segs:    map[uint32]*segState{},
		vers:    map[uint32]uint32{},
		files:   map[uint32]*os.File{},
	}, nil
}

// SetFaultPlane arms crash injection for tests.
func (l *Log) SetFaultPlane(p *fault.Plane) { l.faults = p }

// Dir returns the log directory.
func (l *Log) Dir() string { return l.dir }

func (l *Log) segPath(id uint32) string {
	return filepath.Join(l.dir, fmt.Sprintf("seg-%06d.vlog", id))
}

//ss:host(lazy file-handle open; the I/O itself is charged by the callers)
func (l *Log) file(id uint32) (*os.File, error) {
	if f, ok := l.files[id]; ok {
		return f, nil
	}
	f, err := os.OpenFile(l.segPath(id), os.O_RDWR|os.O_CREATE, 0o600)
	if err != nil {
		return nil, err
	}
	l.files[id] = f
	return f, nil
}

// allocSegment opens a fresh tail segment, recycling a retired ID (with
// a bumped version) when one is free.
//
//ss:host(segment open/truncate; Append charges the crossing and the write)
func (l *Log) allocSegment() (uint32, error) {
	var id uint32
	if n := len(l.freeIDs); n > 0 {
		id = l.freeIDs[n-1]
		l.freeIDs = l.freeIDs[:n-1]
	} else {
		id = l.nextID
		l.nextID++
	}
	ver := l.vers[id] + 1
	l.vers[id] = ver
	f, err := os.OpenFile(l.segPath(id), os.O_RDWR|os.O_CREATE|os.O_TRUNC, 0o600)
	if err != nil {
		return 0, err
	}
	l.files[id] = f
	l.segs[id] = &segState{ver: ver}
	l.tail = id
	l.haveTail = true
	return id, nil
}

// recordMAC computes the position-binding record MAC.
func (l *Log) recordMAC(seg, ver, off uint32, hdr, ct []byte) [macSize]byte {
	buf := make([]byte, 0, 12+len(hdr)+len(ct))
	var pos [12]byte
	binary.LittleEndian.PutUint32(pos[0:], seg)
	binary.LittleEndian.PutUint32(pos[4:], ver)
	binary.LittleEndian.PutUint32(pos[8:], off)
	buf = append(buf, pos[:]...)
	buf = append(buf, hdr...)
	buf = append(buf, ct...)
	return l.mac.Tag(buf)
}

// Append seals key||value into the log and returns its pointer. One
// value-log write is one host syscall plus the modeled disk write; when
// the record does not fit the tail segment, the tail is fsync-sealed and
// a fresh segment opened first.
//
//ss:ocall
func (l *Log) Append(m *sim.Meter, key, val []byte) (Ptr, error) {
	need := recordOverhead + len(key) + len(val)
	if !l.haveTail || int(l.segs[l.tail].extent)+need > l.segBytesFor(need) {
		if l.haveTail {
			if err := l.Sync(m); err != nil {
				return Ptr{}, err
			}
		}
		if _, err := l.allocSegment(); err != nil {
			return Ptr{}, err
		}
	}
	st := l.segs[l.tail]
	off := st.extent

	// Seal the record: fresh random IV (append offsets can be re-written
	// after a torn append, so position-derived IVs would reuse keystream).
	rec := make([]byte, need)
	binary.LittleEndian.PutUint32(rec[0:], uint32(len(key)))
	binary.LittleEndian.PutUint32(rec[4:], uint32(len(val)))
	iv := rec[8 : 8+ivSize]
	l.enclave.ReadRand(m, iv[:8])
	ct := rec[recordOverhead:]
	stream := cipher.NewCTR(l.block, iv)
	stream.XORKeyStream(ct[:len(key)], key)
	stream.XORKeyStream(ct[len(key):], val)
	tag := l.recordMAC(l.tail, st.ver, off, rec[:8+ivSize], ct)
	copy(rec[8+ivSize:recordOverhead], tag[:])
	model := l.enclave.Model()
	if m != nil {
		m.Charge(model.AES(len(ct)) + model.CMAC(need))
		m.Count(sim.CtrEncrypt)
		m.Count(sim.CtrCMAC)
	}

	f, err := l.file(l.tail)
	if err != nil {
		return Ptr{}, err
	}
	if l.faults.Hit(fault.PointVLogTear) {
		// Crash mid-append: a deterministic prefix reaches the segment
		// file, the rest never does. The trusted extent is NOT advanced —
		// the record was never acknowledged, so the torn tail is garbage
		// that the next append simply overwrites.
		f.WriteAt(rec[:l.faults.Pick(len(rec))], int64(off))
		return Ptr{}, fault.ErrInjected
	}
	if _, err := f.WriteAt(rec, int64(off)); err != nil {
		return Ptr{}, err
	}
	l.enclave.Syscall(m, false)
	if m != nil {
		m.Charge(model.DiskWrite(need))
		m.SetCount(sim.CtrVLogSegmentsLive, uint64(len(l.segs)))
	}

	st.extent += uint32(need)
	st.records++
	return Ptr{Seg: l.tail, Off: off, Len: uint32(need), Version: st.ver}, nil
}

// segBytesFor returns the capacity budget used when deciding whether a
// record still fits the tail: oversized records get a private segment.
func (l *Log) segBytesFor(need int) int {
	if need > l.opts.SegmentBytes {
		return need
	}
	return l.opts.SegmentBytes
}

// Read fetches and opens the record at p, validating it against the
// enclave's freshness state before trusting a single byte: unknown
// segment, stale version, or an offset beyond the trusted extent is an
// integrity violation, not an I/O error.
//
//ss:ocall
//ss:authn(key — the returned record key is authenticated material; callers must compare it in constant time)
func (l *Log) Read(m *sim.Meter, p Ptr) (key, val []byte, err error) {
	st, ok := l.segs[p.Seg]
	if !ok || st.ver != p.Version {
		return nil, nil, ErrIntegrity
	}
	if p.Len < recordOverhead || p.Off > st.extent || p.Off+p.Len > st.extent || p.Off+p.Len < p.Off {
		return nil, nil, ErrIntegrity
	}
	f, err := l.file(p.Seg)
	if err != nil {
		return nil, nil, err
	}
	buf := make([]byte, p.Len)
	n, err := f.ReadAt(buf, int64(p.Off))
	l.enclave.Syscall(m, false)
	if m != nil {
		m.Charge(l.enclave.Model().DiskRead(int(p.Len)))
	}
	if err != nil || n != int(p.Len) {
		// The enclave vouched for this extent; a short read means the
		// host rolled the file back.
		return nil, nil, ErrIntegrity
	}
	return l.openRecord(m, p.Seg, st.ver, p.Off, buf)
}

// openRecord authenticates and decrypts one sealed record. It is the
// decode path fuzzed by FuzzVLogSegmentDecode and must never panic on
// attacker-shaped bytes.
//
//ss:attacker(buf is untrusted disk bytes)
func (l *Log) openRecord(m *sim.Meter, seg, ver, off uint32, buf []byte) (key, val []byte, err error) {
	if len(buf) < recordOverhead {
		return nil, nil, ErrCorrupt
	}
	keyLen := binary.LittleEndian.Uint32(buf[0:])
	valLen := binary.LittleEndian.Uint32(buf[4:])
	if uint64(keyLen)+uint64(valLen) != uint64(len(buf)-recordOverhead) {
		return nil, nil, ErrCorrupt
	}
	iv := buf[8 : 8+ivSize]
	tag := buf[8+ivSize : recordOverhead]
	ct := buf[recordOverhead:]
	want := l.recordMAC(seg, ver, off, buf[:8+ivSize], ct)
	if m != nil {
		m.Charge(l.enclave.Model().CMAC(len(buf)))
		m.Count(sim.CtrCMAC)
	}
	if subtle.ConstantTimeCompare(want[:], tag) != 1 {
		return nil, nil, ErrIntegrity
	}
	pt := make([]byte, len(ct))
	stream := cipher.NewCTR(l.block, iv)
	stream.XORKeyStream(pt, ct)
	if m != nil {
		m.Charge(l.enclave.Model().AES(len(ct)))
		m.Count(sim.CtrDecrypt)
	}
	return pt[:keyLen], pt[keyLen:], nil
}

// MarkDead records that the pointed record's entry was overwritten or
// deleted; its bytes become garbage for the collector. Pure enclave
// bookkeeping — no I/O, no charge.
func (l *Log) MarkDead(m *sim.Meter, p Ptr) {
	st, ok := l.segs[p.Seg]
	if !ok || st.ver != p.Version {
		return
	}
	st.dead += p.Len
	st.deadRecs++
	if m != nil {
		m.SetCount(sim.CtrVLogSegmentsLive, uint64(len(l.segs)))
	}
}

// PickVictim selects the sealed segment with the highest dead fraction
// above the GC threshold (the tail is never a victim).
func (l *Log) PickVictim() (uint32, bool) {
	best, bestFrac := uint32(0), l.opts.GCDeadFraction
	found := false
	// Deterministic iteration: victim choice must not depend on map order.
	ids := make([]uint32, 0, len(l.segs))
	for id := range l.segs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		st := l.segs[id]
		if (l.haveTail && id == l.tail) || st.extent == 0 {
			continue
		}
		frac := float64(st.dead) / float64(st.extent)
		if frac >= bestFrac {
			best, bestFrac, found = id, frac, true
		}
	}
	return best, found
}

// Scan sequentially reads a whole segment and invokes fn for every
// sealed record in it (one streaming disk read, record MACs verified
// individually). fn receives the record's own pointer plus the decrypted
// key and value; returning an error aborts the scan.
//
//ss:ocall
func (l *Log) Scan(m *sim.Meter, seg uint32, fn func(p Ptr, key, val []byte) error) error {
	st, ok := l.segs[seg]
	if !ok {
		return ErrIntegrity
	}
	f, err := l.file(seg)
	if err != nil {
		return err
	}
	buf := make([]byte, st.extent)
	n, err := f.ReadAt(buf, 0)
	l.enclave.Syscall(m, false)
	if m != nil {
		m.Charge(l.enclave.Model().DiskRead(int(st.extent)))
	}
	if err != nil || n != int(st.extent) {
		return ErrIntegrity
	}
	for off := uint32(0); off < st.extent; {
		if int(off)+recordOverhead > len(buf) {
			return ErrCorrupt
		}
		keyLen := binary.LittleEndian.Uint32(buf[off:])
		valLen := binary.LittleEndian.Uint32(buf[off+4:])
		recLen := uint64(recordOverhead) + uint64(keyLen) + uint64(valLen)
		if recLen > uint64(st.extent-off) {
			return ErrCorrupt
		}
		p := Ptr{Seg: seg, Off: off, Len: uint32(recLen), Version: st.ver}
		key, val, err := l.openRecord(m, seg, st.ver, off, buf[off:off+uint32(recLen)])
		if err != nil {
			return err
		}
		if err := fn(p, key, val); err != nil {
			return err
		}
		off += uint32(recLen)
	}
	return nil
}

// Verify re-reads and authenticates the record at p without returning
// plaintext — the scrubber's in-place audit of spilled values.
//
//ss:ocall
func (l *Log) Verify(m *sim.Meter, p Ptr) error {
	_, _, err := l.Read(m, p)
	return err
}

// Retire removes a drained segment from the live set. Its file stays on
// disk (and its version floor stays recorded) until PurgeRetired runs
// after the next durable snapshot, so pointers in the previous snapshot
// never dangle across a crash.
func (l *Log) Retire(m *sim.Meter, seg uint32) {
	if _, ok := l.segs[seg]; !ok {
		return
	}
	delete(l.segs, seg)
	if l.haveTail && seg == l.tail {
		l.haveTail = false
	}
	l.pending = append(l.pending, seg)
	if m != nil {
		m.SetCount(sim.CtrVLogSegmentsLive, uint64(len(l.segs)))
	}
}

// PurgeRetired deletes retired segment files and recycles their IDs.
// Callers must invoke it only after a snapshot that no longer references
// the retired segments is durable.
//
//ss:ocall
func (l *Log) PurgeRetired(m *sim.Meter) {
	for _, id := range l.pending {
		if f, ok := l.files[id]; ok {
			f.Close()
			delete(l.files, id)
		}
		os.Remove(l.segPath(id))
		l.enclave.Syscall(m, false)
		l.freeIDs = append(l.freeIDs, id)
	}
	sort.Slice(l.freeIDs, func(i, j int) bool { return l.freeIDs[i] < l.freeIDs[j] })
	l.pending = l.pending[:0]
}

// Sync fsyncs the tail segment (a durability barrier before sealing the
// manifest into a snapshot).
//
//ss:ocall
func (l *Log) Sync(m *sim.Meter) error {
	if !l.haveTail {
		return nil
	}
	f, err := l.file(l.tail)
	if err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	l.enclave.Syscall(m, false)
	if m != nil {
		m.Charge(l.enclave.Model().DiskFsync)
	}
	return nil
}

// SegmentsLive returns the live segment count (the vlog_segments_live
// gauge's source of truth).
func (l *Log) SegmentsLive() int { return len(l.segs) }

// PendingRetired returns how many retired segments await purge.
func (l *Log) PendingRetired() int { return len(l.pending) }

// SpilledBytes returns the live (non-dead) sealed bytes on disk.
func (l *Log) SpilledBytes() int64 {
	var n int64
	for _, st := range l.segs {
		n += int64(st.extent) - int64(st.dead)
	}
	return n
}

// DeadBytes returns the collectible garbage bytes across live segments.
func (l *Log) DeadBytes() int64 {
	var n int64
	for _, st := range l.segs {
		n += int64(st.dead)
	}
	return n
}

// Close releases all file handles and wipes the derived log keys: a
// closed log's key material is no longer reachable in process memory
// (the expanded AES/CMAC schedules are dropped with it). A canary
// failure on either key buffer surfaces as the returned error.
//
//ss:host(teardown outside the measured window)
func (l *Log) Close() error {
	var first error
	for id, f := range l.files {
		if err := f.Close(); err != nil && first == nil {
			first = err
		}
		delete(l.files, id)
	}
	for _, kb := range []*secret.Buffer{l.dataKey, l.macKey} {
		if kb == nil {
			continue
		}
		if err := kb.Wipe(); err != nil && first == nil {
			first = err
		}
	}
	l.block, l.mac = nil, nil
	return first
}
