package vlog

import (
	"encoding/binary"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Manifest serializes the enclave-resident freshness state: every live
// segment's {id, version, extent, records, dead bytes, dead records},
// the version floor of every ID ever used, and the allocator cursor.
// The caller (persist) seals these bytes into the snapshot metadata, so
// they inherit the snapshot's rollback protection.
func (l *Log) Manifest() []byte {
	liveIDs := make([]uint32, 0, len(l.segs))
	for id := range l.segs {
		liveIDs = append(liveIDs, id)
	}
	sort.Slice(liveIDs, func(i, j int) bool { return liveIDs[i] < liveIDs[j] })
	verIDs := make([]uint32, 0, len(l.vers))
	for id := range l.vers {
		verIDs = append(verIDs, id)
	}
	sort.Slice(verIDs, func(i, j int) bool { return verIDs[i] < verIDs[j] })

	buf := make([]byte, 0, 16+24*len(liveIDs)+8*len(verIDs))
	var tmp [4]byte
	u32 := func(v uint32) {
		binary.LittleEndian.PutUint32(tmp[:], v)
		buf = append(buf, tmp[:]...)
	}
	u32(uint32(len(liveIDs)))
	for _, id := range liveIDs {
		st := l.segs[id]
		u32(id)
		u32(st.ver)
		u32(st.extent)
		u32(st.records)
		u32(st.deadRecs)
		u32(st.dead)
	}
	u32(uint32(len(verIDs)))
	for _, id := range verIDs {
		u32(id)
		u32(l.vers[id])
	}
	u32(l.nextID)
	tail := uint32(0xffffffff)
	if l.haveTail {
		tail = l.tail
	}
	u32(tail)
	return buf
}

// LoadManifest restores the freshness state from sealed manifest bytes
// and reconciles the log directory against it: segment files the
// manifest does not vouch for (retired-but-unpurged leftovers, or
// post-crash garbage newer than the snapshot) are deleted, and IDs below
// the allocator cursor that are not live become recyclable. Must be
// called on a freshly opened Log, before any appends.
//
//ss:host(recovery-time reconciliation, outside the measured window)
func (l *Log) LoadManifest(data []byte) error {
	if l.haveTail || len(l.segs) != 0 {
		return ErrCorrupt
	}
	if len(data) == 0 {
		// Empty manifest: start from scratch, deleting whatever stale
		// segment files a previous instance left in the directory.
		l.removeUnlisted()
		return nil
	}
	off := 0
	u32 := func() (uint32, bool) {
		if off+4 > len(data) {
			return 0, false
		}
		v := binary.LittleEndian.Uint32(data[off:])
		off += 4
		return v, true
	}
	nLive, ok := u32()
	if !ok || uint64(nLive) > uint64(len(data))/24 {
		return ErrCorrupt
	}
	segs := make(map[uint32]*segState, nLive)
	for i := uint32(0); i < nLive; i++ {
		var f [6]uint32
		for j := range f {
			v, ok := u32()
			if !ok {
				return ErrCorrupt
			}
			f[j] = v
		}
		segs[f[0]] = &segState{ver: f[1], extent: f[2], records: f[3], deadRecs: f[4], dead: f[5]}
	}
	nVers, ok := u32()
	if !ok || uint64(nVers) > uint64(len(data))/8 {
		return ErrCorrupt
	}
	vers := make(map[uint32]uint32, nVers)
	for i := uint32(0); i < nVers; i++ {
		id, ok1 := u32()
		v, ok2 := u32()
		if !ok1 || !ok2 {
			return ErrCorrupt
		}
		vers[id] = v
	}
	nextID, ok := u32()
	if !ok {
		return ErrCorrupt
	}
	tail, ok := u32()
	if !ok || off != len(data) {
		return ErrCorrupt
	}
	if tail != 0xffffffff {
		if _, live := segs[tail]; !live {
			return ErrCorrupt
		}
	}
	for id := range segs {
		if _, known := vers[id]; !known {
			return ErrCorrupt
		}
	}

	l.segs = segs
	l.vers = vers
	l.nextID = nextID
	l.haveTail = tail != 0xffffffff
	l.tail = tail
	l.pending = nil
	l.freeIDs = nil
	for id := uint32(0); id < nextID; id++ {
		if _, live := segs[id]; !live {
			l.freeIDs = append(l.freeIDs, id)
		}
	}
	l.removeUnlisted()
	return nil
}

// removeUnlisted deletes segment files the manifest does not list as
// live — they are either pre-crash retirees the purge never reached or
// post-snapshot garbage; both would otherwise shadow recycled IDs.
//
//ss:host(recovery-time cleanup, outside the measured window)
func (l *Log) removeUnlisted() {
	ents, err := os.ReadDir(l.dir)
	if err != nil {
		return
	}
	for _, ent := range ents {
		name := ent.Name()
		if !strings.HasPrefix(name, "seg-") || !strings.HasSuffix(name, ".vlog") {
			continue
		}
		idStr := strings.TrimSuffix(strings.TrimPrefix(name, "seg-"), ".vlog")
		id64, err := strconv.ParseUint(idStr, 10, 32)
		if err != nil {
			continue
		}
		if _, live := l.segs[uint32(id64)]; !live {
			os.Remove(filepath.Join(l.dir, name))
		}
	}
}
