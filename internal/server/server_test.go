package server

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"

	"shieldstore/internal/baseline"
	"shieldstore/internal/client"
	"shieldstore/internal/core"
	"shieldstore/internal/mem"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
)

func newEnclave() *sgx.Enclave {
	space := mem.NewSpace(mem.Config{EPCBytes: 16 << 20})
	return sgx.New(sgx.Config{Space: space, Seed: 31, Measurement: [32]byte{0xAB}})
}

// startServer spins up a TCP server on loopback with the given config.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	cfg.Logf = t.Logf
	s := Serve(ln, cfg)
	t.Cleanup(s.Close)
	return s, ln.Addr().String()
}

func coreServer(t *testing.T, e *sgx.Enclave, secure, hotcalls bool) (*Server, string, *core.Partitioned) {
	t.Helper()
	p := core.NewPartitioned(e, 2, core.Defaults(64))
	p.Start()
	t.Cleanup(p.Stop)
	s, addr := startServer(t, Config{
		Engine:   CoreEngine{p},
		Enclave:  e,
		Secure:   secure,
		HotCalls: hotcalls,
	})
	return s, addr, p
}

func TestSecureEndToEnd(t *testing.T) {
	e := newEnclave()
	_, addr, _ := coreServer(t, e, true, true)

	c, err := client.Dial(addr, client.Options{
		Verifier:    e,
		Measurement: e.Measurement(),
		Secure:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if err := c.Set([]byte("hello"), []byte("world")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get([]byte("hello"))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != "world" {
		t.Fatalf("got %q", got)
	}
	if err := c.Append([]byte("hello"), []byte("!")); err != nil {
		t.Fatal(err)
	}
	got, _ = c.Get([]byte("hello"))
	if string(got) != "world!" {
		t.Fatalf("append: %q", got)
	}
	n, err := c.Incr([]byte("ctr"), 7)
	if err != nil || n != 7 {
		t.Fatalf("incr: %d, %v", n, err)
	}
	if err := c.Delete([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Get([]byte("hello")); !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("deleted key: %v", err)
	}
}

func TestPlaintextMode(t *testing.T) {
	e := newEnclave()
	_, addr, _ := coreServer(t, e, false, false)
	c, err := client.Dial(addr, client.Options{Secure: false})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get([]byte("k"))
	if err != nil || string(got) != "v" {
		t.Fatalf("plaintext round trip: %q, %v", got, err)
	}
}

func TestWrongMeasurementRejected(t *testing.T) {
	e := newEnclave()
	_, addr, _ := coreServer(t, e, true, false)
	_, err := client.Dial(addr, client.Options{
		Verifier:    e,
		Measurement: [32]byte{0xFF},
		Secure:      true,
	})
	if err == nil {
		t.Fatal("client accepted wrong enclave measurement")
	}
}

func TestBaselineEngine(t *testing.T) {
	e := newEnclave()
	bs := baseline.New(e, baseline.Options{Buckets: 32, Variant: baseline.NaiveSGX})
	_, addr := startServer(t, Config{Engine: BaselineEngine{bs}, Enclave: e, Secure: true})

	c, err := client.Dial(addr, client.Options{Verifier: e, Measurement: e.Measurement(), Secure: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set([]byte("a"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	got, err := c.Get([]byte("a"))
	if err != nil || string(got) != "1" {
		t.Fatalf("baseline engine: %q, %v", got, err)
	}
	if _, err := c.Incr([]byte("a"), 1); !errors.Is(err, client.ErrServer) {
		t.Fatalf("baseline incr should be unsupported: %v", err)
	}
}

func TestConcurrentClients(t *testing.T) {
	e := newEnclave()
	_, addr, p := coreServer(t, e, true, true)

	const clients = 6
	const opsPer = 60
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(id int) {
			defer wg.Done()
			c, err := client.Dial(addr, client.Options{Verifier: e, Measurement: e.Measurement(), Secure: true})
			if err != nil {
				errs <- err
				return
			}
			defer c.Close()
			for j := 0; j < opsPer; j++ {
				k := []byte(fmt.Sprintf("c%d-%03d", id, j))
				if err := c.Set(k, []byte("v")); err != nil {
					errs <- err
					return
				}
				got, err := c.Get(k)
				if err != nil || !bytes.Equal(got, []byte("v")) {
					errs <- fmt.Errorf("get %s: %q %v", k, got, err)
					return
				}
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if p.Keys() != clients*opsPer {
		t.Fatalf("Keys = %d, want %d", p.Keys(), clients*opsPer)
	}
}

func TestHotCallsCheaperThanOCalls(t *testing.T) {
	statsFor := func(hotcalls bool) sim.Stats {
		e := newEnclave()
		s, addr, _ := coreServer(t, e, true, hotcalls)
		c, err := client.Dial(addr, client.Options{Verifier: e, Measurement: e.Measurement(), Secure: true})
		if err != nil {
			t.Fatal(err)
		}
		defer c.Close()
		for i := 0; i < 50; i++ {
			if err := c.Set([]byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
				t.Fatal(err)
			}
		}
		return s.NetworkStats()
	}
	hot := statsFor(true)
	cold := statsFor(false)
	if hot.Events[sim.CtrHotCall] == 0 || hot.Events[sim.CtrOCall] != 0 {
		t.Fatalf("hotcalls config not using hotcalls: %+v", hot.Events)
	}
	if cold.Events[sim.CtrOCall] == 0 || cold.Events[sim.CtrHotCall] != 0 {
		t.Fatalf("ocall config not using ocalls: %+v", cold.Events)
	}
	if hot.Cycles >= cold.Cycles {
		t.Fatalf("hotcalls front-end not cheaper: %d >= %d", hot.Cycles, cold.Cycles)
	}
}

func TestMalformedRequestHandled(t *testing.T) {
	e := newEnclave()
	_, addr, _ := coreServer(t, e, false, false)
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// A 3-byte garbage frame must produce StatusError, not kill the conn.
	if _, err := conn.Write([]byte{3, 0, 0, 0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	var hdr [4]byte
	if _, err := readFull(conn, hdr[:]); err != nil {
		t.Fatal(err)
	}
	n := int(hdr[0]) | int(hdr[1])<<8 | int(hdr[2])<<16 | int(hdr[3])<<24
	buf := make([]byte, n)
	if _, err := readFull(conn, buf); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 2 { // proto.StatusError
		t.Fatalf("status = %d, want StatusError", buf[0])
	}
}

func readFull(c net.Conn, b []byte) (int, error) {
	total := 0
	for total < len(b) {
		n, err := c.Read(b[total:])
		total += n
		if err != nil {
			return total, err
		}
	}
	return total, nil
}

func TestNoSGXServerPath(t *testing.T) {
	// Insecure-engine servers (the NoSGX rows of Figure 18) skip enclave
	// boundary costs: no OCALLs or HotCalls in the front-end meters.
	e := newEnclave()
	bs := baseline.New(e, baseline.Options{Buckets: 16, Variant: baseline.Insecure})
	s, addr := startServer(t, Config{Engine: BaselineEngine{bs}, Enclave: e, NoSGX: true})

	c, err := client.Dial(addr, client.Options{Secure: false})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	for i := 0; i < 20; i++ {
		if err := c.Set([]byte{byte(i)}, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	st := s.NetworkStats()
	if st.Events[sim.CtrOCall] != 0 || st.Events[sim.CtrHotCall] != 0 {
		t.Fatalf("NoSGX server crossed the boundary: %d/%d",
			st.Events[sim.CtrOCall], st.Events[sim.CtrHotCall])
	}
	if st.Events[sim.CtrSyscall] == 0 {
		t.Fatal("NoSGX server made no syscalls?")
	}
}

func TestServerSurvivesClientDisconnects(t *testing.T) {
	e := newEnclave()
	_, addr, p := coreServer(t, e, true, true)
	// Abruptly drop several connections mid-handshake and mid-session.
	for i := 0; i < 5; i++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		conn.Close() // before handshake
	}
	for i := 0; i < 3; i++ {
		c, err := client.Dial(addr, client.Options{Verifier: e, Measurement: e.Measurement(), Secure: true})
		if err != nil {
			t.Fatal(err)
		}
		if err := c.Set([]byte("x"), []byte("y")); err != nil {
			t.Fatal(err)
		}
		c.Close() // mid-session
	}
	// Server still healthy.
	c, err := client.Dial(addr, client.Options{Verifier: e, Measurement: e.Measurement(), Secure: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Ping(); err != nil {
		t.Fatal(err)
	}
	if p.Keys() != 1 {
		t.Fatalf("Keys = %d", p.Keys())
	}
}

func TestIntegrityViolationSurfacesOverNetwork(t *testing.T) {
	// A host-tampered entry must surface to the remote client as an
	// integrity status, not a generic failure or silent wrong data.
	e := newEnclave()
	p := core.NewPartitioned(e, 1, core.Defaults(8))
	p.Start()
	t.Cleanup(p.Stop)
	_, addr := startServer(t, Config{Engine: CoreEngine{p}, Enclave: e, Secure: true})

	c, err := client.Dial(addr, client.Options{Verifier: e, Measurement: e.Measurement(), Secure: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Set([]byte("victim"), []byte("payload")); err != nil {
		t.Fatal(err)
	}
	// Tamper: flip a byte somewhere in the untrusted region holding the
	// entry ciphertext. Find it by scanning for... simpler: corrupt via
	// the store's own test hook is internal; instead overwrite the whole
	// untrusted region tail where the entry was just written.
	space := e.Space()
	used := space.UsedBytes(mem.Untrusted)
	// The freshly written entry sits near the high-water mark; flip a
	// byte in the last 256 bytes.
	space.Tamper(mem.UntrustedBase+mem.Addr(used-100), []byte{0xFF})

	_, err = c.Get([]byte("victim"))
	if err == nil {
		// The flipped byte may have landed in allocator slack; accept
		// success only if the value is intact.
		v, _ := c.Get([]byte("victim"))
		if string(v) != "payload" {
			t.Fatal("silent corruption served to client")
		}
		t.Skip("tamper landed in slack space")
	}
	if !errors.Is(err, client.ErrIntegrity) && !errors.Is(err, client.ErrNotFound) {
		t.Fatalf("unexpected error class: %v", err)
	}
}

func TestBatchOverNetwork(t *testing.T) {
	// CmdBatch end to end against the native BatchEngine path.
	e := newEnclave()
	_, addr, p := coreServer(t, e, true, false)
	_ = p
	c, err := client.Dial(addr, client.Options{Verifier: e, Measurement: e.Measurement(), Secure: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var ops []client.Op
	for i := 0; i < 48; i++ {
		ops = append(ops, client.SetOp([]byte(fmt.Sprintf("b%03d", i)), bytes.Repeat([]byte{byte(i)}, 24)))
	}
	ops = append(ops, client.GetOp([]byte("b010")), client.GetOp([]byte("missing")))
	rs, err := c.Batch(ops...)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 48; i++ {
		if rs[i].Err != nil {
			t.Fatalf("set %d: %v", i, rs[i].Err)
		}
	}
	if !bytes.Equal(rs[48].Value, bytes.Repeat([]byte{10}, 24)) {
		t.Fatalf("batched get = %q", rs[48].Value)
	}
	if !errors.Is(rs[49].Err, client.ErrNotFound) {
		t.Fatalf("batched miss: %v", rs[49].Err)
	}
	if p.Keys() != 48 {
		t.Fatalf("Keys = %d", p.Keys())
	}
}

func TestBatchFallbackEngine(t *testing.T) {
	// BaselineEngine has no native batch support; the front-end's per-op
	// fallback must provide identical semantics.
	e := newEnclave()
	s := baseline.New(e, baseline.Options{Buckets: 64, Variant: baseline.Insecure})
	_, addr := startServer(t, Config{Engine: BaselineEngine{s}, Enclave: e, Secure: true})

	c, err := client.Dial(addr, client.Options{Verifier: e, Measurement: e.Measurement(), Secure: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	rs, err := c.Batch(
		client.SetOp([]byte("x"), []byte("1")),
		client.GetOp([]byte("x")),
		client.GetOp([]byte("missing")),
		client.IncrOp([]byte("x"), 1), // baseline: unsupported
	)
	if err != nil {
		t.Fatal(err)
	}
	if rs[0].Err != nil || string(rs[1].Value) != "1" {
		t.Fatalf("set/get: %v, %q", rs[0].Err, rs[1].Value)
	}
	if !errors.Is(rs[2].Err, client.ErrNotFound) {
		t.Fatalf("miss: %v", rs[2].Err)
	}
	if !errors.Is(rs[3].Err, client.ErrServer) {
		t.Fatalf("unsupported incr: %v", rs[3].Err)
	}
}

func TestMGetGroupedRoundTrips(t *testing.T) {
	// A 32-key MGet must reach the partitions in at most Parts() worker
	// round trips — i.e. one ApplyBatch (one RequestOverhead charge) per
	// involved partition, not one per key.
	e := newEnclave()
	p := core.NewPartitioned(e, 2, core.Defaults(64))
	p.Start()
	t.Cleanup(p.Stop)
	_, addr := startServer(t, Config{Engine: CoreEngine{p}, Enclave: e, Secure: true})

	c, err := client.Dial(addr, client.Options{Verifier: e, Measurement: e.Measurement(), Secure: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	var keys [][]byte
	for i := 0; i < 32; i++ {
		k := []byte(fmt.Sprintf("m%03d", i))
		keys = append(keys, k)
		if err := c.Set(k, []byte(fmt.Sprintf("v%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	beforeReq := uint64(0)
	for i := 0; i < p.Parts(); i++ {
		beforeReq += p.Meter(i).Events(sim.CtrRequest)
	}
	vals, err := c.MGet(keys...)
	if err != nil {
		t.Fatal(err)
	}
	for i := range keys {
		if string(vals[i]) != fmt.Sprintf("v%03d", i) {
			t.Fatalf("vals[%d] = %q", i, vals[i])
		}
	}
	afterReq := uint64(0)
	for i := 0; i < p.Parts(); i++ {
		afterReq += p.Meter(i).Events(sim.CtrRequest)
	}
	if got := afterReq - beforeReq; got > uint64(p.Parts()) {
		t.Fatalf("MGet charged %d engine requests, want <= %d", got, p.Parts())
	}
}
