// Package server implements ShieldStore's networked front-end (§6.4): a
// TCP server whose connection handlers run "inside" the enclave, paying an
// enclave-boundary crossing (a full OCALL, or an exitless HotCall when
// enabled) plus kernel and NIC costs for every receive and send, and
// encrypting every request/response on the attested session channel.
//
// The same front-end can serve either the ShieldStore engine or one of the
// baseline engines, which is how the paper compares "Baseline+HotCalls"
// against "ShieldOpt+HotCalls" under identical network conditions.
package server

import (
	"errors"
	"io"
	"log"
	"net"
	"sync"
	"time"

	"shieldstore/internal/baseline"
	"shieldstore/internal/core"
	"shieldstore/internal/proto"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
)

// Engine is the storage engine behind the front-end.
type Engine interface {
	Get(m *sim.Meter, key []byte) ([]byte, error)
	Set(m *sim.Meter, key, value []byte) error
	Delete(m *sim.Meter, key []byte) error
	Append(m *sim.Meter, key, suffix []byte) error
	Incr(m *sim.Meter, key []byte, delta int64) (int64, error)
}

// BatchEngine is an optional Engine extension: engines that can execute a
// heterogeneous batch natively (amortizing per-request and per-bucket-set
// costs) implement it; the front-end falls back to a per-op loop for the
// rest.
type BatchEngine interface {
	ExecBatch(m *sim.Meter, ops []core.BatchOp) []core.BatchResult
}

// AsyncEngine is an optional Engine extension: engines that can accept an
// operation and complete it later let the front-end's reader submit work
// and move on to decoding the next frame, so one connection's pipelined
// requests execute concurrently across partitions. The submitted
// key/value buffers must stay alive until the returned call is waited on.
type AsyncEngine interface {
	Submit(m *sim.Meter, kind core.BatchKind, key, value []byte, delta int64) *core.Call
	SubmitBatch(m *sim.Meter, ops []core.BatchOp) *core.BatchCall
}

// CoreEngine adapts core.Partitioned to Engine. The partitioned store's
// worker pool must be Started.
type CoreEngine struct{ P *core.Partitioned }

// ExecBatch implements BatchEngine: one worker round trip per involved
// partition, amortized integrity updates inside each.
func (e CoreEngine) ExecBatch(m *sim.Meter, ops []core.BatchOp) []core.BatchResult {
	return e.P.ExecBatch(m, ops)
}

// Submit implements AsyncEngine.
func (e CoreEngine) Submit(m *sim.Meter, kind core.BatchKind, key, value []byte, delta int64) *core.Call {
	return e.P.Submit(m, kind, key, value, delta)
}

// SubmitBatch implements AsyncEngine.
func (e CoreEngine) SubmitBatch(m *sim.Meter, ops []core.BatchOp) *core.BatchCall {
	return e.P.SubmitBatch(m, ops)
}

// Get implements Engine.
func (e CoreEngine) Get(m *sim.Meter, key []byte) ([]byte, error) { return e.P.Get(m, key) }

// Set implements Engine.
func (e CoreEngine) Set(m *sim.Meter, key, value []byte) error { return e.P.Set(m, key, value) }

// Delete implements Engine.
func (e CoreEngine) Delete(m *sim.Meter, key []byte) error { return e.P.Delete(m, key) }

// Append implements Engine.
func (e CoreEngine) Append(m *sim.Meter, key, suffix []byte) error { return e.P.Append(m, key, suffix) }

// Incr implements Engine.
func (e CoreEngine) Incr(m *sim.Meter, key []byte, delta int64) (int64, error) {
	return e.P.Incr(m, key, delta)
}

// BaselineEngine adapts baseline.Store to Engine.
type BaselineEngine struct{ S *baseline.Store }

// Get implements Engine.
func (e BaselineEngine) Get(m *sim.Meter, key []byte) ([]byte, error) { return e.S.Get(m, key) }

// Set implements Engine.
func (e BaselineEngine) Set(m *sim.Meter, key, value []byte) error { return e.S.Set(m, key, value) }

// Delete implements Engine.
func (e BaselineEngine) Delete(m *sim.Meter, key []byte) error { return e.S.Delete(m, key) }

// Append implements Engine.
func (e BaselineEngine) Append(m *sim.Meter, key, suffix []byte) error {
	return e.S.Append(m, key, suffix)
}

// Incr implements Engine (read-modify-write composition).
func (e BaselineEngine) Incr(m *sim.Meter, key []byte, delta int64) (int64, error) {
	return 0, errors.New("baseline: incr unsupported")
}

// Config parameterizes the front-end.
type Config struct {
	Engine  Engine
	Enclave *sgx.Enclave
	// HotCalls switches socket syscalls from full OCALLs to exitless
	// HotCalls (§6.4).
	HotCalls bool
	// Secure enables the attested encrypted channel; when false the §6.4
	// no-network-security ablation runs plaintext frames.
	Secure bool
	// Insecure engines (NoSGX rows) skip enclave boundary costs entirely.
	NoSGX bool
	// Logf sinks error logs (default log.Printf).
	Logf func(format string, args ...any)
	// Stats, when set, answers CmdStats with "name=value" lines.
	Stats func() []string
	// Health, when set, answers CmdHealth with per-partition health lines
	// (core.FormatHealth output: state, scrub progress, journal status).
	Health func() []string
	// Replicate, when set, answers CmdReplicate: it receives one payload
	// of replication frames and returns the acked watermark plus a wire
	// status (repl.Applier.Apply). Unset, the command is rejected — an
	// ordinary primary does not accept replication streams.
	Replicate func(m *sim.Meter, payload []byte) (watermark uint64, status uint8)
	// Promote, when set, answers CmdPromote: adopt the given fencing epoch
	// and start accepting writes (repl.Applier.Promote). Returns the
	// node's resulting epoch and a wire status.
	Promote func(epoch uint64) (resultEpoch uint64, status uint8)
	// Attach, when set, answers CmdReplAttach: (re)target this node's
	// replication stream at the given replica address and bootstrap it
	// (repl.Node.Attach) — the control plane's re-protection hook. Unset,
	// the command is rejected.
	Attach func(addr string) uint8
	// Writable, when set, gates every mutation command: when it reports
	// false the mutation is rejected with StatusFenced without touching
	// the engine. Replicas before promotion and fenced old primaries are
	// not writable; reads are always served.
	Writable func() bool
	// PipelineDepth bounds how many requests per connection may be in
	// flight between the reader and the in-order writer (default 32).
	PipelineDepth int
	// WriteBuffer sizes the per-connection coalescing write buffer in
	// bytes (default 32 KiB).
	WriteBuffer int

	// IdleTimeout bounds how long a connection may sit between requests
	// (waiting for the next frame header, or for the handshake) before
	// the server closes it. 0 means no limit.
	IdleTimeout time.Duration
	// ReadTimeout bounds reading one frame's payload once its header has
	// arrived, so a byte-dripping client cannot hold a reader goroutine
	// hostage. 0 means no limit.
	ReadTimeout time.Duration
	// WriteTimeout bounds each response write/flush; a client that stops
	// reading is disconnected rather than wedging the writer. 0 means no
	// limit.
	WriteTimeout time.Duration
	// MaxConns caps concurrent connections; accepts beyond the cap are
	// closed immediately, shielding established clients from a
	// connection flood. 0 means unlimited.
	MaxConns int
	// DrainTimeout bounds how long Close waits for in-flight connections
	// before force-closing them. 0 means wait indefinitely.
	DrainTimeout time.Duration
}

// Server is a running front-end.
type Server struct {
	cfg Config
	ln  net.Listener
	wg  sync.WaitGroup

	mu         sync.Mutex
	meters     []*sim.Meter // live connections (reader + writer meters)
	conns      map[net.Conn]struct{}
	retired    *sim.Meter // accumulated counters of closed connections
	retiredMax uint64     // slowest closed connection's cycles
	rejected   uint64     // accepts refused by the MaxConns cap
	closed     bool
}

// Serve starts accepting connections on ln. It returns immediately; Close
// shuts the server down.
//
//ss:host(listener setup on the real transport; per-frame crossings are charged in chargeNet)
func Serve(ln net.Listener, cfg Config) *Server {
	if cfg.Logf == nil {
		cfg.Logf = log.Printf
	}
	s := &Server{
		cfg:     cfg,
		ln:      ln,
		conns:   make(map[net.Conn]struct{}),
		retired: sim.NewMeter(cfg.Enclave.Model()),
	}
	s.wg.Add(1)
	go s.acceptLoop()
	return s
}

// Addr returns the listen address.
//
//ss:host(transport introspection, no enclave involvement)
func (s *Server) Addr() net.Addr { return s.ln.Addr() }

// Close stops accepting and waits for handlers to drain. With
// DrainTimeout set the wait is bounded: connections still alive when it
// expires are force-closed, so one wedged client cannot make shutdown
// hang.
//
//ss:host(shutdown path, outside the measured window)
func (s *Server) Close() {
	s.mu.Lock()
	s.closed = true
	s.mu.Unlock()
	s.ln.Close()
	if d := s.cfg.DrainTimeout; d > 0 {
		done := make(chan struct{})
		go func() { s.wg.Wait(); close(done) }()
		select {
		case <-done:
			return
		case <-time.After(d):
			s.mu.Lock()
			for c := range s.conns {
				c.Close()
			}
			s.mu.Unlock()
		}
	}
	s.wg.Wait()
}

// LiveConns reports how many connections are currently being served.
func (s *Server) LiveConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// Rejected reports how many accepts the MaxConns cap refused.
func (s *Server) Rejected() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.rejected
}

// NetworkStats aggregates the connection handlers' meters — live and
// retired — (front-end costs only; engine costs live in the engine's own
// meters).
func (s *Server) NetworkStats() sim.Stats {
	s.mu.Lock()
	defer s.mu.Unlock()
	agg := sim.NewMeter(s.cfg.Enclave.Model())
	agg.Add(s.retired)
	maxC := s.retiredMax
	for _, m := range s.meters {
		agg.Add(m)
		if m.Cycles() > maxC {
			maxC = m.Cycles()
		}
	}
	st := agg.Snapshot()
	st.Cycles = maxC
	return st
}

// addMeters registers a connection's meters while it is live.
func (s *Server) addMeters(ms ...*sim.Meter) {
	s.mu.Lock()
	s.meters = append(s.meters, ms...)
	s.mu.Unlock()
}

// retire folds a closed connection's meters into the retired-stats
// accumulator, so Server.meters only ever holds live connections instead
// of growing by one meter per connection forever.
func (s *Server) retire(ms ...*sim.Meter) {
	s.mu.Lock()
	for _, m := range ms {
		for i, x := range s.meters {
			if x == m {
				last := len(s.meters) - 1
				s.meters[i] = s.meters[last]
				s.meters[last] = nil
				s.meters = s.meters[:last]
				break
			}
		}
		s.retired.Add(m)
		if m.Cycles() > s.retiredMax {
			s.retiredMax = m.Cycles()
		}
	}
	s.mu.Unlock()
}

// acceptLoop runs on the untrusted front-end thread; accepting a socket
// involves no enclave work, which begins per frame inside handle.
//
//ss:host(untrusted accept thread; enclave costs start per frame in handle)
func (s *Server) acceptLoop() {
	defer s.wg.Done()
	backoff := time.Millisecond
	for {
		conn, err := s.ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed || isClosed(err) {
				return
			}
			// Transient failure (EMFILE, ECONNABORTED, ...): back off
			// briefly and keep accepting rather than killing the server.
			s.cfg.Logf("shieldstore server: accept: %v (retrying in %v)", err, backoff)
			time.Sleep(backoff)
			if backoff < 100*time.Millisecond {
				backoff *= 2
			}
			continue
		}
		backoff = time.Millisecond
		s.mu.Lock()
		if s.cfg.MaxConns > 0 && len(s.conns) >= s.cfg.MaxConns {
			// Over the cap: shed this connection instead of degrading the
			// ones already established.
			s.rejected++
			s.mu.Unlock()
			conn.Close()
			continue
		}
		s.conns[conn] = struct{}{}
		s.mu.Unlock()
		// One meter per direction: the reader and writer goroutines run
		// concurrently and sim.Meter is single-owner.
		rm := sim.NewMeter(s.cfg.Enclave.Model())
		wm := sim.NewMeter(s.cfg.Enclave.Model())
		s.addMeters(rm, wm)
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() {
				conn.Close()
				s.mu.Lock()
				delete(s.conns, conn)
				s.mu.Unlock()
			}()
			err := s.handle(conn, rm, wm)
			s.retire(rm, wm)
			if err != nil && !errors.Is(err, io.EOF) && !isClosed(err) {
				s.cfg.Logf("shieldstore server: conn: %v", err)
			}
		}()
	}
}

func isClosed(err error) bool {
	return errors.Is(err, net.ErrClosed)
}

// handle serves one connection: a reader goroutine (this one) decodes
// and submits requests, a writer goroutine resolves and responds in
// order. rm and wm meter the two directions separately.
//
//ss:attacker — every byte on the socket is adversary-controlled.
//ss:host(deadline management on the real socket; frame crossings are charged in connReader/connWriter)
func (s *Server) handle(conn net.Conn, rm, wm *sim.Meter) error {
	e := s.cfg.Enclave
	model := e.Model()

	var ch *proto.Channel
	if s.cfg.Secure {
		// The handshake runs under the idle deadline: a client that
		// connects and never completes it is shed like any idle one.
		if t := s.handshakeTimeout(); t > 0 {
			conn.SetDeadline(time.Now().Add(t))
		}
		var err error
		ch, err = proto.ServerHandshake(conn, e, drbg{e})
		if err != nil {
			return err
		}
		conn.SetDeadline(time.Time{}) // per-frame deadlines take over
		// Handshake: two messages + asymmetric crypto (modeled as a few
		// symmetric-op equivalents; session setup is off the hot path).
		s.chargeNet(rm, 48)
		s.chargeNet(rm, 96)
		rm.Charge(model.AES(2048))
	}

	depth := s.cfg.PipelineDepth
	if depth <= 0 {
		depth = defaultPipelineDepth
	}
	wq := make(chan *pending, depth)
	wdone := make(chan error, 1)
	go func() { wdone <- s.connWriter(conn, ch, wq, wm) }()

	rerr := s.connReader(conn, ch, wq, rm)
	close(wq)
	werr := <-wdone
	if werr != nil {
		// A write failure is the root cause; the reader's error is just
		// the closed-connection fallout.
		return werr
	}
	return rerr
}

// handshakeTimeout picks the deadline for session setup: the idle
// timeout when configured, else the read timeout.
func (s *Server) handshakeTimeout() time.Duration {
	if s.cfg.IdleTimeout > 0 {
		return s.cfg.IdleTimeout
	}
	return s.cfg.ReadTimeout
}

// chargeNet accounts one message's network path: kernel socket call
// (through the enclave boundary unless NoSGX) plus NIC/wire costs.
//
//ss:ocall
func (s *Server) chargeNet(m *sim.Meter, n int) {
	model := s.cfg.Enclave.Model()
	if s.cfg.NoSGX {
		m.Charge(model.Syscall)
		m.Count(sim.CtrSyscall)
	} else {
		s.cfg.Enclave.Syscall(m, s.cfg.HotCalls)
	}
	m.Charge(model.NIC(n))
	m.Count(sim.CtrNetMessage)
}

// execute dispatches a request to the engine. Engine costs accrue to the
// engine's own meters (partition workers); the front-end meter only pays
// marshalling here.
func (s *Server) execute(m *sim.Meter, req *proto.Request) *proto.Response {
	eng := s.cfg.Engine
	if isMutation(req.Cmd) && !s.writable() {
		return &proto.Response{Status: proto.StatusFenced}
	}
	switch req.Cmd {
	case proto.CmdPing:
		return &proto.Response{Status: proto.StatusOK}
	case proto.CmdReplicate:
		if s.cfg.Replicate == nil {
			// Not a replica: nobody wired an applier here.
			return &proto.Response{Status: proto.StatusError}
		}
		wm, st := s.cfg.Replicate(m, req.Value)
		return &proto.Response{Status: st, Num: int64(wm)}
	case proto.CmdPromote:
		if s.cfg.Promote == nil {
			return &proto.Response{Status: proto.StatusError}
		}
		ep, st := s.cfg.Promote(uint64(req.Delta))
		return &proto.Response{Status: st, Num: int64(ep)}
	case proto.CmdReplAttach:
		if s.cfg.Attach == nil {
			// Not a replicated deployment: no role manager wired here.
			return &proto.Response{Status: proto.StatusError}
		}
		return &proto.Response{Status: s.cfg.Attach(string(req.Key))}
	case proto.CmdStats:
		if s.cfg.Stats == nil {
			return &proto.Response{Status: proto.StatusOK, Value: proto.EncodeList(nil)}
		}
		lines := s.cfg.Stats()
		items := make([][]byte, len(lines))
		for i, l := range lines {
			items[i] = []byte(l)
		}
		return &proto.Response{Status: proto.StatusOK, Value: proto.EncodeList(items)}
	case proto.CmdHealth:
		if s.cfg.Health == nil {
			return &proto.Response{Status: proto.StatusOK, Value: proto.EncodeList(nil)}
		}
		lines := s.cfg.Health()
		items := make([][]byte, len(lines))
		for i, l := range lines {
			items[i] = []byte(l)
		}
		return &proto.Response{Status: proto.StatusOK, Value: proto.EncodeList(items)}
	case proto.CmdGet:
		val, err := eng.Get(m, req.Key)
		if err != nil {
			return errResponse(err)
		}
		return &proto.Response{Status: proto.StatusOK, Value: val}
	case proto.CmdSet:
		if err := eng.Set(m, req.Key, req.Value); err != nil {
			return errResponse(err)
		}
		return &proto.Response{Status: proto.StatusOK}
	case proto.CmdDelete:
		if err := eng.Delete(m, req.Key); err != nil {
			return errResponse(err)
		}
		return &proto.Response{Status: proto.StatusOK}
	case proto.CmdAppend:
		if err := eng.Append(m, req.Key, req.Value); err != nil {
			return errResponse(err)
		}
		return &proto.Response{Status: proto.StatusOK}
	case proto.CmdMGet:
		keys, err := proto.DecodeList(req.Value)
		if err != nil {
			return &proto.Response{Status: proto.StatusError}
		}
		// MGet rides the batch path: grouped per partition, so a 32-key
		// MGet costs at most Parts() worker round trips instead of 32.
		ops := make([]proto.BatchOp, len(keys))
		for i, k := range keys {
			ops[i] = proto.BatchOp{Cmd: proto.CmdGet, Key: k}
		}
		rs := s.runBatch(m, ops)
		vals := make([][]byte, len(keys))
		for i := range rs {
			switch rs[i].Status {
			case proto.StatusOK:
				vals[i] = rs[i].Value
				if vals[i] == nil {
					vals[i] = []byte{}
				}
			case proto.StatusNotFound:
				vals[i] = nil
			default:
				return &proto.Response{Status: rs[i].Status}
			}
		}
		return &proto.Response{Status: proto.StatusOK, Value: proto.EncodeList(vals)}
	case proto.CmdBatch:
		ops, err := proto.DecodeBatch(req.Value)
		if err != nil {
			return &proto.Response{Status: proto.StatusError}
		}
		return &proto.Response{
			Status: proto.StatusOK,
			Value:  proto.EncodeBatchResults(s.runBatch(m, ops)),
		}
	case proto.CmdIncr:
		n, err := eng.Incr(m, req.Key, req.Delta)
		if err != nil {
			return errResponse(err)
		}
		return &proto.Response{Status: proto.StatusOK, Num: n}
	default:
		return &proto.Response{Status: proto.StatusError}
	}
}

// runBatch executes a decoded batch: natively when the engine implements
// BatchEngine, via a per-op loop otherwise, and maps the results back to
// wire form. Per-op errors are isolated into per-op statuses — one miss
// never fails the rest of the batch.
func (s *Server) runBatch(m *sim.Meter, ops []proto.BatchOp) []proto.BatchResult {
	coreOps := make([]core.BatchOp, len(ops))
	hasMutation := false
	for i := range ops {
		coreOps[i] = core.BatchOp{
			Kind:  batchKind(ops[i].Cmd),
			Key:   ops[i].Key,
			Value: ops[i].Value,
			Delta: ops[i].Delta,
		}
		if coreOps[i].Kind != core.BatchGet {
			hasMutation = true
		}
	}
	if hasMutation && !s.writable() {
		return s.runFencedBatch(m, coreOps)
	}
	var rs []core.BatchResult
	if be, ok := s.cfg.Engine.(BatchEngine); ok {
		rs = be.ExecBatch(m, coreOps)
	} else {
		rs = fallbackBatch(m, s.cfg.Engine, coreOps)
	}
	out := make([]proto.BatchResult, len(rs))
	for i := range rs {
		out[i].Status = statusFor(rs[i].Err)
		if rs[i].Err != nil {
			continue
		}
		out[i].Num = rs[i].Num
		if coreOps[i].Kind == core.BatchGet {
			out[i].Value = rs[i].Val
			if out[i].Value == nil {
				out[i].Value = []byte{}
			}
		}
	}
	return out
}

// runFencedBatch serves a mixed batch on a non-writable node: the reads
// execute normally (a replica's whole point is serving them), every
// mutation comes back StatusFenced without touching the engine.
func (s *Server) runFencedBatch(m *sim.Meter, coreOps []core.BatchOp) []proto.BatchResult {
	out := make([]proto.BatchResult, len(coreOps))
	reads := make([]core.BatchOp, 0, len(coreOps))
	idx := make([]int, 0, len(coreOps))
	for i := range coreOps {
		if coreOps[i].Kind == core.BatchGet {
			reads = append(reads, coreOps[i])
			idx = append(idx, i)
		} else {
			out[i].Status = proto.StatusFenced
		}
	}
	if len(reads) == 0 {
		return out
	}
	var rs []core.BatchResult
	if be, ok := s.cfg.Engine.(BatchEngine); ok {
		rs = be.ExecBatch(m, reads)
	} else {
		rs = fallbackBatch(m, s.cfg.Engine, reads)
	}
	for j := range rs {
		i := idx[j]
		out[i].Status = statusFor(rs[j].Err)
		if rs[j].Err != nil {
			continue
		}
		out[i].Value = rs[j].Val
		if out[i].Value == nil {
			out[i].Value = []byte{}
		}
	}
	return out
}

// writable reports whether this node currently admits mutations (no
// Writable hook means an ordinary, always-writable server).
func (s *Server) writable() bool { return s.cfg.Writable == nil || s.cfg.Writable() }

// isMutation classifies the commands the Writable gate covers.
func isMutation(c proto.Command) bool {
	switch c {
	case proto.CmdSet, proto.CmdDelete, proto.CmdAppend, proto.CmdIncr:
		return true
	}
	return false
}

// batchKind maps a wire command to a core batch kind; unknown commands map
// to an invalid kind that the engine rejects per-op with ErrBadBatchOp.
func batchKind(c proto.Command) core.BatchKind {
	switch c {
	case proto.CmdGet:
		return core.BatchGet
	case proto.CmdSet:
		return core.BatchSet
	case proto.CmdDelete:
		return core.BatchDelete
	case proto.CmdAppend:
		return core.BatchAppend
	case proto.CmdIncr:
		return core.BatchIncr
	default:
		return core.BatchKind(0xFF)
	}
}

// fallbackBatch runs a batch op-by-op for engines without native batch
// support (baselines): same semantics, none of the amortization.
func fallbackBatch(m *sim.Meter, eng Engine, ops []core.BatchOp) []core.BatchResult {
	rs := make([]core.BatchResult, len(ops))
	for i := range ops {
		op := &ops[i]
		switch op.Kind {
		case core.BatchGet:
			rs[i].Val, rs[i].Err = eng.Get(m, op.Key)
		case core.BatchSet:
			rs[i].Err = eng.Set(m, op.Key, op.Value)
		case core.BatchDelete:
			rs[i].Err = eng.Delete(m, op.Key)
		case core.BatchAppend:
			rs[i].Err = eng.Append(m, op.Key, op.Value)
		case core.BatchIncr:
			rs[i].Num, rs[i].Err = eng.Incr(m, op.Key, op.Delta)
		default:
			rs[i].Err = core.ErrBadBatchOp
		}
	}
	return rs
}

// statusFor maps an engine error to a wire status.
func statusFor(err error) uint8 {
	switch {
	case err == nil:
		return proto.StatusOK
	case errors.Is(err, core.ErrNotFound), errors.Is(err, baseline.ErrNotFound):
		return proto.StatusNotFound
	case errors.Is(err, core.ErrRebuilding):
		// Before the terminal integrity mapping: a rebuilding partition is
		// quarantined too, but the client should retry, not give up.
		return proto.StatusRebuilding
	case errors.Is(err, core.ErrUnhealable):
		// Also quarantined, but nobody is coming: the client should fail
		// over, not retry.
		return proto.StatusUnhealable
	case errors.Is(err, core.ErrFenced):
		return proto.StatusFenced
	case errors.Is(err, core.ErrIntegrity), errors.Is(err, core.ErrCorruptPointer),
		errors.Is(err, core.ErrQuarantined):
		return proto.StatusIntegrityViolation
	default:
		return proto.StatusError
	}
}

func errResponse(err error) *proto.Response {
	return &proto.Response{Status: statusFor(err)}
}

// drbg adapts the enclave DRBG to io.Reader for handshake entropy.
type drbg struct{ e *sgx.Enclave }

func (d drbg) Read(p []byte) (int, error) {
	d.e.ReadRand(nil, p)
	return len(p), nil
}
