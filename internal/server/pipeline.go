// Pipelined connection handling: each connection is served by a
// decode/submit reader and an in-order writer goroutine joined by a
// bounded response queue. The reader decodes frames into pooled buffers
// and submits operations to the engine's partition workers without
// waiting, so a client's pipelined frames execute concurrently across
// partitions; the writer resolves each request in submission order,
// which keeps responses (and the channel's nonce sequence) ordered no
// matter how execution interleaved. Writes coalesce in a bufio.Writer
// that flushes when the queue runs dry, so a burst of responses shares
// one syscall. See DESIGN.md §9 "Exitless dispatch".
package server

import (
	"bufio"
	"net"
	"sync"
	"time"

	"shieldstore/internal/core"
	"shieldstore/internal/proto"
	"shieldstore/internal/sim"
)

// Defaults for Config.PipelineDepth and Config.WriteBuffer.
const (
	defaultPipelineDepth = 32
	defaultWriteBuffer   = 32 << 10
)

// pending is one request travelling from the reader to the writer.
// Exactly one of call, bcall, or resp is set. The frame buffer is held
// until the writer resolves the request: async submissions reference the
// frame's bytes (zero-copy key/value views), so it must not be recycled
// earlier.
type pending struct {
	fp    *[]byte         // pooled frame buffer backing the request views
	cmd   proto.Command   // decoded command (drives response mapping)
	call  *core.Call      // in-flight single op (async engines)
	bcall *core.BatchCall // in-flight batch / MGet (async engines)
	ops   []core.BatchOp  // batch ops (kinds drive result mapping)
	resp  proto.Response  // resolved response (sync path)
}

var pendingPool = sync.Pool{New: func() any { return new(pending) }}

// framePool recycles per-request frame buffers. Holding *[]byte keeps
// Put allocation-free; the pooled capacity grows to the workload's frame
// size.
var framePool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 4096)
		return &b
	},
}

// connReader reads, decrypts and decodes frames, hands each request to
// the engine (asynchronously when it supports it), and enqueues the
// in-flight slot on the bounded writer queue — the queue's capacity is
// the connection's pipeline depth, and enqueueing is the only place the
// reader blocks on the writer.
//
//ss:ecall
//ss:attacker — frames arrive from the adversary-controlled socket.
func (s *Server) connReader(conn net.Conn, ch *proto.Channel, wq chan<- *pending, m *sim.Meter) error {
	model := s.cfg.Enclave.Model()
	ae, _ := s.cfg.Engine.(AsyncEngine)
	var req proto.Request
	for {
		// Waiting for the next request runs under the idle deadline;
		// once a frame header arrives, the payload must follow within the
		// (typically much shorter) read deadline — a client dribbling one
		// byte at a time cannot pin this goroutine.
		if t := s.cfg.IdleTimeout; t > 0 {
			conn.SetReadDeadline(time.Now().Add(t))
		}
		n, err := proto.ReadFrameHeader(conn)
		if err != nil {
			return err
		}
		if t := s.cfg.ReadTimeout; t > 0 {
			conn.SetReadDeadline(time.Now().Add(t))
		}
		fp := framePool.Get().(*[]byte)
		frame, err := proto.ReadFramePayloadInto(conn, n, (*fp)[:0])
		if err != nil {
			framePool.Put(fp)
			return err
		}
		*fp = frame
		s.chargeNet(m, len(frame))
		payload := frame
		if ch != nil {
			payload, err = ch.OpenInPlace(frame)
			if err != nil {
				framePool.Put(fp)
				return err
			}
			m.Charge(model.AES(len(frame)) + model.CMAC(len(frame)))
		}
		pd := pendingPool.Get().(*pending)
		pd.fp = fp
		s.dispatch(pd, ae, m, payload, &req)
		wq <- pd
	}
}

// dispatch decodes one request payload into pd: submitted to an async
// engine when possible, executed synchronously otherwise (control
// commands, malformed frames, engines without async support).
func (s *Server) dispatch(pd *pending, ae AsyncEngine, m *sim.Meter, payload []byte, req *proto.Request) {
	if err := proto.DecodeRequestInto(req, payload); err != nil {
		pd.resp = proto.Response{Status: proto.StatusError}
		return
	}
	pd.cmd = req.Cmd
	if ae == nil {
		pd.resp = *s.execute(m, req)
		return
	}
	if isMutation(req.Cmd) && !s.writable() {
		pd.resp = proto.Response{Status: proto.StatusFenced}
		return
	}
	switch req.Cmd {
	case proto.CmdGet:
		pd.call = ae.Submit(m, core.BatchGet, req.Key, nil, 0)
	case proto.CmdSet:
		pd.call = ae.Submit(m, core.BatchSet, req.Key, req.Value, 0)
	case proto.CmdDelete:
		pd.call = ae.Submit(m, core.BatchDelete, req.Key, nil, 0)
	case proto.CmdAppend:
		pd.call = ae.Submit(m, core.BatchAppend, req.Key, req.Value, 0)
	case proto.CmdIncr:
		pd.call = ae.Submit(m, core.BatchIncr, req.Key, nil, req.Delta)
	case proto.CmdMGet:
		keys, err := proto.DecodeList(req.Value)
		if err != nil {
			pd.resp = proto.Response{Status: proto.StatusError}
			return
		}
		ops := make([]core.BatchOp, len(keys))
		for i, k := range keys {
			ops[i] = core.BatchOp{Kind: core.BatchGet, Key: k}
		}
		pd.ops = ops
		pd.bcall = ae.SubmitBatch(m, ops)
	case proto.CmdBatch:
		wireOps, err := proto.DecodeBatchView(req.Value)
		if err != nil {
			pd.resp = proto.Response{Status: proto.StatusError}
			return
		}
		ops := make([]core.BatchOp, len(wireOps))
		hasMutation := false
		for i := range wireOps {
			ops[i] = core.BatchOp{
				Kind:  batchKind(wireOps[i].Cmd),
				Key:   wireOps[i].Key,
				Value: wireOps[i].Value,
				Delta: wireOps[i].Delta,
			}
			if ops[i].Kind != core.BatchGet {
				hasMutation = true
			}
		}
		if hasMutation && !s.writable() {
			// Fence the mutations, serve the reads — the sync path does
			// the per-op split.
			pd.resp = *s.execute(m, req)
			return
		}
		pd.ops = ops
		pd.bcall = ae.SubmitBatch(m, ops)
	default:
		// Ping, Stats, unknown commands: no engine work to overlap.
		pd.resp = *s.execute(m, req)
	}
}

// writerScratch is the writer's reused encode state: response bytes,
// sealed frame, and the batch sub-payload buffers.
type writerScratch struct {
	enc    []byte
	sealed []byte
	sub    []byte
	prs    []proto.BatchResult
	vals   [][]byte
}

// connWriter resolves queued requests in submission order and writes
// their responses. After a write error it keeps draining the queue —
// every in-flight call must still be waited on — but stops writing and
// closes the connection so the reader unblocks.
//
//ss:ocall
func (s *Server) connWriter(conn net.Conn, ch *proto.Channel, wq <-chan *pending, m *sim.Meter) error {
	model := s.cfg.Enclave.Model()
	size := s.cfg.WriteBuffer
	if size <= 0 {
		size = defaultWriteBuffer
	}
	bw := bufio.NewWriterSize(conn, size)
	var sc writerScratch
	var werr error
	for pd := range wq {
		resp := s.resolvePending(pd, &sc)
		if werr == nil {
			out := proto.AppendResponse(sc.enc[:0], &resp)
			sc.enc = out
			wire := out
			if ch != nil {
				m.Charge(model.AES(len(out)) + model.CMAC(len(out)))
				sc.sealed = ch.SealTo(sc.sealed[:0], out)
				wire = sc.sealed
			}
			s.chargeNet(m, len(wire))
			if t := s.cfg.WriteTimeout; t > 0 {
				conn.SetWriteDeadline(time.Now().Add(t))
			}
			if err := proto.WriteFrame(bw, wire); err != nil {
				werr = err
			} else if len(wq) == 0 {
				// Queue ran dry: everything buffered shares this flush.
				werr = bw.Flush()
			}
			if werr != nil {
				conn.Close() // unblock the reader
			}
		}
		releasePending(pd)
	}
	if werr == nil {
		if t := s.cfg.WriteTimeout; t > 0 {
			conn.SetWriteDeadline(time.Now().Add(t))
		}
		werr = bw.Flush()
	}
	return werr
}

// resolvePending waits for pd's engine work when it was submitted
// asynchronously and builds the wire response. Values in the returned
// response may alias the writer's scratch; they are consumed (encoded)
// before the next pending resolves.
func (s *Server) resolvePending(pd *pending, sc *writerScratch) proto.Response {
	switch {
	case pd.call != nil:
		val, num, err := pd.call.Wait()
		pd.call = nil
		if err != nil {
			return proto.Response{Status: statusFor(err)}
		}
		resp := proto.Response{Status: proto.StatusOK}
		switch pd.cmd {
		case proto.CmdGet:
			resp.Value = val
		case proto.CmdIncr:
			resp.Num = num
		}
		return resp
	case pd.bcall != nil:
		rs := pd.bcall.Wait()
		pd.bcall = nil
		if pd.cmd == proto.CmdMGet {
			return s.mgetResponse(rs, sc)
		}
		return s.batchResponse(pd.ops, rs, sc)
	default:
		return pd.resp
	}
}

// mgetResponse maps per-key batch results to the MGet list payload:
// misses become nil entries, any other error fails the whole MGet (the
// seed's semantics).
func (s *Server) mgetResponse(rs []core.BatchResult, sc *writerScratch) proto.Response {
	sc.vals = sc.vals[:0]
	for i := range rs {
		switch statusFor(rs[i].Err) {
		case proto.StatusOK:
			v := rs[i].Val
			if v == nil {
				v = []byte{}
			}
			sc.vals = append(sc.vals, v)
		case proto.StatusNotFound:
			sc.vals = append(sc.vals, nil)
		default:
			return proto.Response{Status: statusFor(rs[i].Err)}
		}
	}
	sc.sub = proto.AppendList(sc.sub[:0], sc.vals)
	return proto.Response{Status: proto.StatusOK, Value: sc.sub}
}

// batchResponse maps core batch results to the wire result vector, with
// per-op statuses (one miss never fails the rest — same mapping as
// runBatch).
func (s *Server) batchResponse(ops []core.BatchOp, rs []core.BatchResult, sc *writerScratch) proto.Response {
	sc.prs = sc.prs[:0]
	for i := range rs {
		pr := proto.BatchResult{Status: statusFor(rs[i].Err)}
		if rs[i].Err == nil {
			pr.Num = rs[i].Num
			if ops[i].Kind == core.BatchGet {
				pr.Value = rs[i].Val
				if pr.Value == nil {
					pr.Value = []byte{}
				}
			}
		}
		sc.prs = append(sc.prs, pr)
	}
	sc.sub = proto.AppendBatchResults(sc.sub[:0], sc.prs)
	return proto.Response{Status: proto.StatusOK, Value: sc.sub}
}

// releasePending recycles the slot and its frame buffer. Only called
// after the request is fully resolved — nothing references the frame's
// bytes past this point.
func releasePending(pd *pending) {
	if pd.fp != nil {
		framePool.Put(pd.fp)
		pd.fp = nil
	}
	pd.call, pd.bcall = nil, nil
	pd.ops = nil
	pd.resp = proto.Response{}
	pd.cmd = 0
	pendingPool.Put(pd)
}
