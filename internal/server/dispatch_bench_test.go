// Wall-clock dispatch benchmarks: loadgen over a real loopback socket,
// synchronous (one in-flight request per connection) versus pipelined
// (64 frames on the wire per flush). These complement the virtual-time
// `-run dispatch` experiment in internal/bench: virtual cycles prove the
// accounting, these prove the Go hot path itself got faster.
//
// Run with:
//
//	go test ./internal/server -run='^$' -bench=Dispatch -benchmem
package server

import (
	"fmt"
	"net"
	"testing"

	"shieldstore/internal/client"
	"shieldstore/internal/core"
)

const (
	benchKeys     = 1024
	benchValSize  = 128
	pipelineDepth = 64
)

// benchServer starts a plaintext CoreEngine server (crypto off so the
// numbers isolate dispatch, framing and syscall costs) and one client.
func benchServer(b *testing.B) (*client.Client, func()) {
	b.Helper()
	e := newEnclave()
	p := core.NewPartitioned(e, 4, core.Defaults(4096))
	p.Start()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	s := Serve(ln, Config{Engine: CoreEngine{p}, Enclave: e, Secure: false, Logf: b.Logf})
	c, err := client.Dial(ln.Addr().String(), client.Options{Secure: false})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < benchKeys; i++ {
		if err := c.Set(benchKey(i), benchVal(i)); err != nil {
			b.Fatal(err)
		}
	}
	return c, func() {
		c.Close()
		s.Close()
		p.Stop()
	}
}

func benchKey(i int) []byte { return []byte(fmt.Sprintf("bench-key-%05d", i%benchKeys)) }

func benchVal(i int) []byte {
	v := make([]byte, benchValSize)
	for j := range v {
		v[j] = byte(i + j)
	}
	return v
}

// BenchmarkDispatchSyncGet is the seed-style strict request/response
// loop: every op pays a full loopback round trip.
func BenchmarkDispatchSyncGet(b *testing.B) {
	c, stop := benchServer(b)
	defer stop()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := c.Get(benchKey(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDispatchPipelinedGet keeps pipelineDepth frames in flight per
// flush: the server-side dispatch path (not the round trip) is the limit.
func BenchmarkDispatchPipelinedGet(b *testing.B) {
	c, stop := benchServer(b)
	defer stop()
	pl := c.Pipeline()
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := min(pipelineDepth, b.N-done)
		for i := 0; i < n; i++ {
			pl.Get(benchKey(done + i))
		}
		rs, err := pl.Flush()
		if err != nil {
			b.Fatal(err)
		}
		for i := range rs {
			if rs[i].Err != nil {
				b.Fatal(rs[i].Err)
			}
		}
		done += n
	}
}

// BenchmarkDispatchPipelinedMixed is the pipelined loop under a 50/50
// get/set mix, exercising both the read and mutation dispatch paths.
func BenchmarkDispatchPipelinedMixed(b *testing.B) {
	c, stop := benchServer(b)
	defer stop()
	pl := c.Pipeline()
	b.ReportAllocs()
	b.ResetTimer()
	for done := 0; done < b.N; {
		n := min(pipelineDepth, b.N-done)
		for i := 0; i < n; i++ {
			if (done+i)%2 == 0 {
				pl.Get(benchKey(done + i))
			} else {
				pl.Set(benchKey(done+i), benchVal(done+i))
			}
		}
		rs, err := pl.Flush()
		if err != nil {
			b.Fatal(err)
		}
		for i := range rs {
			if rs[i].Err != nil {
				b.Fatal(rs[i].Err)
			}
		}
		done += n
	}
}
