// Degradation tests for the front-end's self-protection knobs: stalled
// or flooding clients are shed on a deadline instead of pinning handler
// goroutines, and shutdown is bounded even with wedged connections.
package server

import (
	"encoding/binary"
	"net"
	"testing"
	"time"

	"shieldstore/internal/client"
	"shieldstore/internal/core"
	"shieldstore/internal/sgx"
)

func hardenedServer(t *testing.T, e *sgx.Enclave, mutate func(*Config)) (*Server, string) {
	t.Helper()
	p := core.NewPartitioned(e, 2, core.Defaults(64))
	p.Start()
	t.Cleanup(p.Stop)
	cfg := Config{Engine: CoreEngine{p}, Enclave: e}
	mutate(&cfg)
	return startServer(t, cfg)
}

// expectServerClose asserts the server ends the connection within the
// budget (any error counts — EOF or reset — but not a local timeout).
func expectServerClose(t *testing.T, conn net.Conn, budget time.Duration) {
	t.Helper()
	conn.SetReadDeadline(time.Now().Add(budget))
	var one [1]byte
	if _, err := conn.Read(one[:]); err == nil {
		t.Fatal("server sent data instead of closing")
	} else if ne, ok := err.(net.Error); ok && ne.Timeout() {
		t.Fatalf("server did not close a stalled connection within %v", budget)
	}
}

func TestIdleTimeoutClosesSilentConn(t *testing.T) {
	s, addr := hardenedServer(t, newEnclave(), func(c *Config) {
		c.IdleTimeout = 100 * time.Millisecond
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	expectServerClose(t, conn, 5*time.Second)
	deadline := time.Now().Add(5 * time.Second)
	for s.LiveConns() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("LiveConns = %d after idle close", s.LiveConns())
		}
		time.Sleep(5 * time.Millisecond)
	}
}

func TestReadTimeoutShedsDribblingClient(t *testing.T) {
	// A client that announces a frame and then stalls mid-payload is cut
	// off by the read deadline even though it is never "idle".
	_, addr := hardenedServer(t, newEnclave(), func(c *Config) {
		c.ReadTimeout = 100 * time.Millisecond
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var hdr [4]byte
	binary.LittleEndian.PutUint32(hdr[:], 128) // promise 128 bytes...
	if _, err := conn.Write(hdr[:]); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{0x01}); err != nil { // ...deliver one
		t.Fatal(err)
	}
	expectServerClose(t, conn, 5*time.Second)
}

func TestHandshakeUnderDeadline(t *testing.T) {
	// With Secure on, a client that connects and never handshakes is shed
	// by the same idle deadline.
	_, addr := hardenedServer(t, newEnclave(), func(c *Config) {
		c.Secure = true
		c.IdleTimeout = 100 * time.Millisecond
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	expectServerClose(t, conn, 5*time.Second)
}

func TestMaxConnsShedsExcess(t *testing.T) {
	e := newEnclave()
	s, addr := hardenedServer(t, e, func(c *Config) {
		c.MaxConns = 1
	})
	c1, err := client.Dial(addr, client.Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if err := c1.Ping(); err != nil {
		t.Fatal(err)
	}
	// The cap is in force: the next accept is closed immediately.
	c2, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	expectServerClose(t, c2, 5*time.Second)
	if s.Rejected() == 0 {
		t.Fatal("shed connection not counted in Rejected")
	}
	// The established client is unaffected by the flood.
	if err := c1.Set([]byte("k"), []byte("v")); err != nil {
		t.Fatalf("established client degraded: %v", err)
	}
}

func TestDrainTimeoutBoundsClose(t *testing.T) {
	// No idle timeout: the stalled connection would block Close forever
	// without the bounded drain.
	s, addr := hardenedServer(t, newEnclave(), func(c *Config) {
		c.DrainTimeout = 100 * time.Millisecond
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Make sure the server actually picked the connection up.
	deadline := time.Now().Add(5 * time.Second)
	for s.LiveConns() == 0 {
		if time.Now().After(deadline) {
			t.Fatal("connection never registered")
		}
		time.Sleep(2 * time.Millisecond)
	}
	start := time.Now()
	s.Close()
	if d := time.Since(start); d > 5*time.Second {
		t.Fatalf("Close took %v with a wedged connection", d)
	}
	if n := s.LiveConns(); n != 0 {
		t.Fatalf("%d connections survived the bounded drain", n)
	}
}
