package server

import (
	"fmt"
	"sync"
	"testing"

	"shieldstore/internal/client"
	"shieldstore/internal/core"
	"shieldstore/internal/sgx"
)

// TestPipelinedStress drives many concurrent pipelined connections with a
// mixed Get/Set/Batch/MGet load and asserts, per connection, that every
// submitted request gets exactly one reply and that replies arrive in
// submission order. Ordering is observed through a per-connection counter
// key: only its own connection increments it, so the Incr results seen in
// reply order must be exactly 1, 2, 3, ... — any reordering, duplication
// or loss in the reader/writer pipeline breaks the sequence. Run under
// -race this also exercises the reader, writer and partition-worker
// goroutines of every connection concurrently.
func TestPipelinedStress(t *testing.T) {
	const (
		conns  = 8
		rounds = 25
		depth  = 16
	)
	e := newEnclave()
	p := core.NewPartitioned(e, 4, core.Defaults(256))
	p.Start()
	t.Cleanup(p.Stop)
	_, addr := startServer(t, Config{
		Engine:        CoreEngine{p},
		Enclave:       e,
		Secure:        true,
		PipelineDepth: depth,
	})

	// Shared keys every connection reads and writes.
	shared := make([][]byte, 8)
	for i := range shared {
		shared[i] = fmt.Appendf(nil, "shared-%d", i)
	}

	var wg sync.WaitGroup
	errs := make(chan error, conns)
	for ci := 0; ci < conns; ci++ {
		wg.Add(1)
		go func(ci int) {
			defer wg.Done()
			if err := stressConn(e, addr, ci, rounds, depth, shared); err != nil {
				errs <- fmt.Errorf("conn %d: %w", ci, err)
			}
		}(ci)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// stressConn runs one connection's workload: pipelined bursts of
// Incr/Get/Set, interleaved with Batch and MGet round trips.
func stressConn(e *sgx.Enclave, addr string, ci, rounds, depth int, shared [][]byte) error {
	c, err := client.Dial(addr, client.Options{
		Verifier:    e,
		Measurement: [32]byte{0xAB},
		Secure:      true,
	})
	if err != nil {
		return err
	}
	defer c.Close()

	ctrKey := fmt.Appendf(nil, "ctr-%d", ci)
	ownKey := fmt.Appendf(nil, "own-%d", ci)
	want := int64(0) // expected next counter value, in reply order

	for r := 0; r < rounds; r++ {
		// Pipelined burst: every op is an Incr of the private counter or
		// a Get/Set of a shared key; remember which slots are Incrs.
		pl := c.Pipeline()
		incrSlot := make([]bool, 0, depth)
		for i := 0; i < depth; i++ {
			switch (r + i) % 4 {
			case 0, 1:
				pl.Incr(ctrKey, 1)
				incrSlot = append(incrSlot, true)
			case 2:
				pl.Get(shared[(ci+i)%len(shared)])
				incrSlot = append(incrSlot, false)
			default:
				pl.Set(shared[(ci+i)%len(shared)], fmt.Appendf(nil, "v-%d-%d", ci, r))
				incrSlot = append(incrSlot, false)
			}
		}
		rs, err := pl.Flush()
		if err != nil {
			return fmt.Errorf("round %d flush: %w", r, err)
		}
		if len(rs) != depth {
			return fmt.Errorf("round %d: %d replies for %d requests", r, len(rs), depth)
		}
		for i, res := range rs {
			if !incrSlot[i] {
				if res.Err != nil && res.Err != client.ErrNotFound {
					return fmt.Errorf("round %d slot %d: %w", r, i, res.Err)
				}
				continue
			}
			want++
			if res.Err != nil {
				return fmt.Errorf("round %d slot %d incr: %w", r, i, res.Err)
			}
			if res.Num != want {
				return fmt.Errorf("round %d slot %d: incr returned %d, want %d (reply misordered or lost)", r, i, res.Num, want)
			}
		}

		// Batch round trip: private set + get + incr; the incr extends the
		// same per-connection sequence.
		brs, err := c.Batch(
			client.SetOp(ownKey, fmt.Appendf(nil, "own-%d-%d", ci, r)),
			client.GetOp(ownKey),
			client.IncrOp(ctrKey, 1),
		)
		if err != nil {
			return fmt.Errorf("round %d batch: %w", r, err)
		}
		want++
		if brs[0].Err != nil || brs[1].Err != nil || brs[2].Err != nil {
			return fmt.Errorf("round %d batch results: %v %v %v", r, brs[0].Err, brs[1].Err, brs[2].Err)
		}
		if got := string(brs[1].Value); got != fmt.Sprintf("own-%d-%d", ci, r) {
			return fmt.Errorf("round %d batch get: %q", r, got)
		}
		if brs[2].Num != want {
			return fmt.Errorf("round %d batch incr: %d, want %d", r, brs[2].Num, want)
		}

		// MGet across shared keys plus the private key.
		keys := append([][]byte{ownKey}, shared...)
		vals, err := c.MGet(keys...)
		if err != nil {
			return fmt.Errorf("round %d mget: %w", r, err)
		}
		if len(vals) != len(keys) {
			return fmt.Errorf("round %d mget: %d values for %d keys", r, len(vals), len(keys))
		}
		if got := string(vals[0]); got != fmt.Sprintf("own-%d-%d", ci, r) {
			return fmt.Errorf("round %d mget own key: %q", r, got)
		}
	}
	return nil
}
