package entry

import (
	"bytes"
	"testing"
	"testing/quick"

	"shieldstore/internal/mem"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
)

func newCipher() (*Cipher, *sim.Meter) {
	space := mem.NewSpace(mem.Config{EPCBytes: 1 << 20})
	e := sgx.New(sgx.Config{Space: space, Seed: 3})
	m := sim.NewMeter(e.Model())
	return NewCipher(e, m), m
}

func TestHeaderRoundTrip(t *testing.T) {
	h := Header{
		Next:    mem.UntrustedBase + 0x1234,
		Slot:    99,
		KeyHint: 0xAB,
		Flags:   1,
		KeySize: 16,
		ValSize: 512,
	}
	for i := range h.IV {
		h.IV[i] = byte(i)
	}
	for i := range h.MAC {
		h.MAC[i] = byte(0xF0 + i)
	}
	buf := make([]byte, HeaderSize)
	h.Marshal(buf)
	got := ParseHeader(buf)
	if got != h {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, h)
	}
}

func TestHeaderSizes(t *testing.T) {
	h := Header{KeySize: 16, ValSize: 128}
	if h.CTLen() != 144 {
		t.Errorf("CTLen = %d", h.CTLen())
	}
	if h.TotalLen() != HeaderSize+144 {
		t.Errorf("TotalLen = %d", h.TotalLen())
	}
	if Size(16, 128) != h.TotalLen() {
		t.Errorf("Size disagrees with TotalLen")
	}
}

func TestBumpIVChangesKeystream(t *testing.T) {
	c, m := newCipher()
	var h Header
	c.NewIV(m, &h.IV)
	key, val := []byte("key0123456789abc"), bytes.Repeat([]byte{7}, 64)

	ct1 := make([]byte, len(key)+len(val))
	c.EncryptKV(m, &h.IV, key, val, ct1)

	before := h.IV
	h.BumpIV()
	if h.IV == before {
		t.Fatal("BumpIV did not change the IV")
	}
	ct2 := make([]byte, len(key)+len(val))
	c.EncryptKV(m, &h.IV, key, val, ct2)
	if bytes.Equal(ct1, ct2) {
		t.Fatal("same ciphertext after IV bump: keystream reuse")
	}
	// Low 8 bytes (block counter space) must be zeroed after a bump.
	for i := 8; i < IVSize; i++ {
		if h.IV[i] != 0 {
			t.Fatal("block counter space not reset")
		}
	}
}

func TestBumpIVNeverRepeats(t *testing.T) {
	var h Header
	seen := map[[IVSize]byte]bool{}
	for i := 0; i < 1000; i++ {
		if seen[h.IV] {
			t.Fatalf("IV repeated after %d bumps", i)
		}
		seen[h.IV] = true
		h.BumpIV()
	}
}

func TestEncryptDecryptRoundTrip(t *testing.T) {
	c, m := newCipher()
	var iv [IVSize]byte
	c.NewIV(m, &iv)
	key, val := []byte("user000000000001"), bytes.Repeat([]byte{0x5A}, 512)

	ct := make([]byte, len(key)+len(val))
	c.EncryptKV(m, &iv, key, val, ct)
	if bytes.Contains(ct, key) {
		t.Fatal("ciphertext leaks plaintext key")
	}
	pt := make([]byte, len(ct))
	c.DecryptKV(m, &iv, ct, pt)
	if !bytes.Equal(pt[:len(key)], key) || !bytes.Equal(pt[len(key):], val) {
		t.Fatal("decrypt mismatch")
	}
	if m.Events(sim.CtrDecrypt) != 1 {
		t.Fatalf("decrypt count = %d, want 1", m.Events(sim.CtrDecrypt))
	}
	if m.Events(sim.CtrEncrypt) != 1 {
		t.Fatalf("encrypt count = %d, want 1", m.Events(sim.CtrEncrypt))
	}
}

func TestEntryMACDetectsTampering(t *testing.T) {
	c, m := newCipher()
	h := Header{KeySize: 4, ValSize: 4, KeyHint: 0x33}
	c.NewIV(m, &h.IV)
	ct := []byte("AAAABBBB")
	tag := c.EntryMAC(m, &h, ct)

	if !c.VerifyEntryMAC(m, &h, ct, tag[:]) {
		t.Fatal("valid MAC rejected")
	}
	// Tampered ciphertext.
	bad := append([]byte(nil), ct...)
	bad[0] ^= 1
	if c.VerifyEntryMAC(m, &h, bad, tag[:]) {
		t.Fatal("tampered ciphertext accepted")
	}
	// Tampered key hint (a protected field per §4.2).
	h2 := h
	h2.KeyHint ^= 1
	if c.VerifyEntryMAC(m, &h2, ct, tag[:]) {
		t.Fatal("tampered key hint accepted")
	}
	// Tampered sizes.
	h3 := h
	h3.ValSize = 8
	if c.VerifyEntryMAC(m, &h3, ct, tag[:]) {
		t.Fatal("tampered size accepted")
	}
	// Tampered IV (replay of old counter).
	h4 := h
	h4.IV[0] ^= 1
	if c.VerifyEntryMAC(m, &h4, ct, tag[:]) {
		t.Fatal("tampered IV accepted")
	}
}

func TestSetMACOrderSensitive(t *testing.T) {
	c, m := newCipher()
	a := bytes.Repeat([]byte{1}, MACSize)
	b := bytes.Repeat([]byte{2}, MACSize)
	ab := c.SetMAC(m, append(append([]byte{}, a...), b...))
	ba := c.SetMAC(m, append(append([]byte{}, b...), a...))
	if ab == ba {
		t.Fatal("set MAC must be order sensitive (replay/reorder defense)")
	}
}

func TestBucketHashKeyed(t *testing.T) {
	space := mem.NewSpace(mem.Config{EPCBytes: 1 << 20})
	e1 := sgx.New(sgx.Config{Space: space, Seed: 1})
	e2 := sgx.New(sgx.Config{Space: space, Seed: 2})
	c1 := NewCipher(e1, nil)
	c2 := NewCipher(e2, nil)
	key := []byte("same-key")
	if c1.BucketHash(nil, key) == c2.BucketHash(nil, key) {
		t.Fatal("bucket hash identical under different secret keys")
	}
}

func TestKeyHintIndependentOfBucketHash(t *testing.T) {
	c, _ := newCipher()
	// The hint must not be a simple truncation of the bucket hash, or it
	// would leak bucket-correlated info beyond the documented 1 byte.
	diff := 0
	var kb [8]byte
	for i := 0; i < 64; i++ {
		kb[0] = byte(i)
		if byte(c.BucketHash(nil, kb[:])) != c.KeyHint(nil, kb[:]) {
			diff++
		}
	}
	if diff < 32 {
		t.Fatalf("key hint correlates with bucket hash (%d/64 differ)", diff)
	}
}

func TestCipherKeyExportRebuild(t *testing.T) {
	space := mem.NewSpace(mem.Config{EPCBytes: 1 << 20})
	e := sgx.New(sgx.Config{Space: space, Seed: 9})
	c1 := NewCipher(e, nil)
	c2 := NewCipherFromKeys(e, c1.ExportKeys())

	var iv [IVSize]byte
	c1.NewIV(nil, &iv)
	key, val := []byte("k"), []byte("v")
	ct := make([]byte, 2)
	c1.EncryptKV(nil, &iv, key, val, ct)
	pt := make([]byte, 2)
	c2.DecryptKV(nil, &iv, ct, pt)
	if string(pt) != "kv" {
		t.Fatal("rebuilt cipher cannot decrypt")
	}
	h := Header{KeySize: 1, ValSize: 1, IV: iv}
	if c1.EntryMAC(nil, &h, ct) != c2.EntryMAC(nil, &h, ct) {
		t.Fatal("rebuilt cipher MAC differs")
	}
}

// Property: encrypt/decrypt round-trips arbitrary key/value pairs.
func TestEncryptRoundTripProperty(t *testing.T) {
	c, m := newCipher()
	f := func(key, val []byte) bool {
		var iv [IVSize]byte
		c.NewIV(m, &iv)
		ct := make([]byte, len(key)+len(val))
		c.EncryptKV(m, &iv, key, val, ct)
		pt := make([]byte, len(ct))
		c.DecryptKV(m, &iv, ct, pt)
		return bytes.Equal(pt[:len(key)], key) && bytes.Equal(pt[len(key):], val)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: header marshal/parse round-trips arbitrary field values.
func TestHeaderRoundTripProperty(t *testing.T) {
	f := func(next uint64, slot uint32, hint, flags byte, ks, vs uint32, iv, mac [16]byte) bool {
		h := Header{
			Next: mem.Addr(next), Slot: slot, KeyHint: hint, Flags: flags,
			KeySize: ks, ValSize: vs, IV: iv, MAC: mac,
		}
		buf := make([]byte, HeaderSize)
		h.Marshal(buf)
		return ParseHeader(buf) == h
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
