// Package entry implements ShieldStore's encrypted data entry (Figure 5)
// and the enclave-held cipher suite that protects it.
//
// Each entry living in untrusted memory carries:
//
//	offset  size  field
//	     0     8  next        chain pointer (untrusted; sanitized on read)
//	     8     4  slot        index into the bucket's MAC bucket (§5.2)
//	    12     1  key hint    1-byte keyed hash of the plaintext key (§5.4)
//	    13     1  flags       reserved
//	    14     4  key size
//	    18     4  value size
//	    22    16  IV/counter  AES-CTR nonce, bumped on every update
//	    38    16  MAC         AES-CMAC over (ciphertext, sizes, hint, IV)
//	    54     -  ciphertext  Enc(key || value)
//
// The chain pointer, sizes, hint and IV are plaintext — the paper's point
// is that *pointers and allocator metadata need no confidentiality* as long
// as keys and values are encrypted and everything is integrity-checked.
//
//ss:trusted
package entry

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
	"encoding/binary"
	"sync"

	"shieldstore/internal/cmac"
	"shieldstore/internal/mem"
	"shieldstore/internal/secret"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
	"shieldstore/internal/siphash"
)

// Field offsets and sizes of the on-"disk" entry layout.
const (
	OffNext    = 0
	OffSlot    = 8
	OffHint    = 12
	OffFlags   = 13
	OffKeySize = 14
	OffValSize = 18
	OffIV      = 22
	OffMAC     = 38
	HeaderSize = 54

	// IVSize is the AES-CTR nonce size; MACSize the CMAC tag size.
	IVSize  = 16
	MACSize = 16
)

// Entry flag bits (the Flags header byte; MAC-authenticated so the host
// cannot flip them).
const (
	// FlagSpilled marks an entry whose value lives in the untrusted value
	// log: the entry ciphertext holds key||pointer instead of key||value.
	FlagSpilled byte = 0x1
)

// Header is the decoded fixed-size prefix of a data entry.
type Header struct {
	Next    mem.Addr
	Slot    uint32
	KeyHint byte
	Flags   byte
	KeySize uint32
	ValSize uint32
	IV      [IVSize]byte
	MAC     [MACSize]byte
}

// Size returns the full entry footprint for the given key/value lengths.
func Size(keyLen, valLen int) int { return HeaderSize + keyLen + valLen }

// CTLen returns the ciphertext length of an entry.
func (h *Header) CTLen() int { return int(h.KeySize) + int(h.ValSize) }

// TotalLen returns the entry's full footprint.
func (h *Header) TotalLen() int { return HeaderSize + h.CTLen() }

// ParseHeader decodes a header from a raw buffer of at least HeaderSize.
func ParseHeader(b []byte) Header {
	var h Header
	h.Next = mem.Addr(binary.LittleEndian.Uint64(b[OffNext:]))
	h.Slot = binary.LittleEndian.Uint32(b[OffSlot:])
	h.KeyHint = b[OffHint]
	h.Flags = b[OffFlags]
	h.KeySize = binary.LittleEndian.Uint32(b[OffKeySize:])
	h.ValSize = binary.LittleEndian.Uint32(b[OffValSize:])
	copy(h.IV[:], b[OffIV:OffIV+IVSize])
	copy(h.MAC[:], b[OffMAC:OffMAC+MACSize])
	return h
}

// Marshal encodes the header into b, which must hold HeaderSize bytes.
func (h *Header) Marshal(b []byte) {
	binary.LittleEndian.PutUint64(b[OffNext:], uint64(h.Next))
	binary.LittleEndian.PutUint32(b[OffSlot:], h.Slot)
	b[OffHint] = h.KeyHint
	b[OffFlags] = h.Flags
	binary.LittleEndian.PutUint32(b[OffKeySize:], h.KeySize)
	binary.LittleEndian.PutUint32(b[OffValSize:], h.ValSize)
	copy(b[OffIV:], h.IV[:])
	copy(b[OffMAC:], h.MAC[:])
}

// BumpIV advances the IV/counter for an in-place update. The upper eight
// bytes act as a per-entry message counter while the lower eight bytes are
// the CTR block counter space, so successive updates never reuse keystream.
func (h *Header) BumpIV() {
	hi := binary.BigEndian.Uint64(h.IV[:8])
	binary.BigEndian.PutUint64(h.IV[:8], hi+1)
	for i := 8; i < IVSize; i++ {
		h.IV[i] = 0
	}
}

// Cipher is the enclave-resident key material and crypto engine: the
// 128-bit global AES-CTR data key, the CMAC key, and two SipHash keys (one
// for the keyed bucket index, one for the 1-byte key hint). All four are
// generated inside the enclave and never leave it except via sealing.
type Cipher struct {
	block   cipher.Block
	mac     *cmac.CMAC
	keys    Keys
	enclave *sgx.Enclave
	model   *sim.CostModel
}

// Keys bundles the secret key material for sealing to disk. shieldvet
// treats it as //ss:trusted: code outside trusted packages may hold or
// move a Keys value but may only open its fields on an audited //ss:seals
// path — the mistake this catches is a debug/bench helper writing raw key
// bytes into untrusted memory or a log.
//
//ss:trusted
//ss:secret
type Keys struct {
	Data   [16]byte // AES-CTR data key
	MAC    [16]byte // AES-CMAC key
	Bucket [16]byte // SipHash key for the bucket index
	Hint   [16]byte // SipHash key for the 1-byte key hint
}

// Wipe zeroes the key material in place. Keys is a value type, so every
// copy made along a seal/recover path owns its own wipe.
//
//ss:wipes
func (k *Keys) Wipe() {
	secret.WipeBytes(k.Data[:])
	secret.WipeBytes(k.MAC[:])
	secret.WipeBytes(k.Bucket[:])
	secret.WipeBytes(k.Hint[:])
}

// NewCipher generates fresh key material via the enclave DRBG.
func NewCipher(e *sgx.Enclave, m *sim.Meter) *Cipher {
	var k Keys
	e.ReadRand(m, k.Data[:])
	e.ReadRand(m, k.MAC[:])
	e.ReadRand(m, k.Bucket[:])
	e.ReadRand(m, k.Hint[:])
	c := NewCipherFromKeys(e, k)
	k.Wipe() // the cipher holds its own copy
	return c
}

// NewCipherFromKeys rebuilds a cipher from sealed key material (recovery).
//
//ss:nopanic-ok(16-byte keys cannot fail the AES/CMAC constructors)
func NewCipherFromKeys(e *sgx.Enclave, k Keys) *Cipher {
	block, err := aes.NewCipher(k.Data[:])
	if err != nil {
		panic(err)
	}
	mc, err := cmac.New(k.MAC[:])
	if err != nil {
		panic(err)
	}
	return &Cipher{block: block, mac: mc, keys: k, enclave: e, model: e.Model()}
}

// ExportKeys returns the key material (for sealing only). The returned
// copy is the caller's to wipe once sealed.
//
//ss:secret — hands out raw key material; callers own the wipe.
func (c *Cipher) ExportKeys() Keys { return c.keys }

// Wipe destroys the cipher's key material: the Keys copy is zeroed and
// the AES/CMAC engines (which hold expanded schedules) are dropped.
// The cipher is unusable afterwards; only call on final store teardown.
//
//ss:wipes
func (c *Cipher) Wipe() {
	c.keys.Wipe()
	c.block = nil
	c.mac = nil
}

// MACEngine exposes the underlying CMAC instance (shared with auxiliary
// integrity structures such as the Merkle-tree backend).
func (c *Cipher) MACEngine() *cmac.CMAC { return c.mac }

// NewIV fills iv with a fresh random nonce (new entry creation, §4.2).
func (c *Cipher) NewIV(m *sim.Meter, iv *[IVSize]byte) {
	c.enclave.ReadRand(m, iv[:8])
	for i := 8; i < IVSize; i++ {
		iv[i] = 0
	}
}

// EncryptKV encrypts key||val under the data key with the given IV into
// dst (which must hold len(key)+len(val) bytes).
func (c *Cipher) EncryptKV(m *sim.Meter, iv *[IVSize]byte, key, val, dst []byte) {
	n := len(key) + len(val)
	stream := cipher.NewCTR(c.block, iv[:])
	stream.XORKeyStream(dst[:len(key)], key)
	stream.XORKeyStream(dst[len(key):n], val)
	if m != nil {
		m.Charge(c.model.AES(n))
		m.Count(sim.CtrEncrypt)
	}
}

// DecryptKV decrypts ciphertext into dst (same length) and counts one
// decryption — the unit of Figure 9.
func (c *Cipher) DecryptKV(m *sim.Meter, iv *[IVSize]byte, ct, dst []byte) {
	stream := cipher.NewCTR(c.block, iv[:])
	stream.XORKeyStream(dst, ct)
	if m != nil {
		m.Charge(c.model.AES(len(ct)))
		m.Count(sim.CtrDecrypt)
	}
}

// macInput assembles the authenticated fields: ciphertext, sizes, key
// hint, flags and IV — the set §4.2 lists, plus the Flags byte so the
// host cannot silently turn a spilled pointer entry into an inline one
// (or vice versa).
func macInput(h *Header, ct []byte, buf []byte) []byte {
	buf = buf[:0]
	buf = append(buf, ct...)
	var meta [10]byte
	binary.LittleEndian.PutUint32(meta[0:], h.KeySize)
	binary.LittleEndian.PutUint32(meta[4:], h.ValSize)
	meta[8] = h.KeyHint
	meta[9] = h.Flags
	buf = append(buf, meta[:]...)
	buf = append(buf, h.IV[:]...)
	return buf
}

// macInputPool recycles the MAC input staging buffer: EntryMAC runs once
// or twice on every store operation, and the assembled input never
// outlives the Tag call.
var macInputPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 256)
		return &b
	},
}

// EntryMAC computes the entry MAC over the header's authenticated fields
// and the ciphertext.
func (c *Cipher) EntryMAC(m *sim.Meter, h *Header, ct []byte) [MACSize]byte {
	bp := macInputPool.Get().(*[]byte)
	input := macInput(h, ct, (*bp)[:0])
	if m != nil {
		m.Charge(c.model.CMAC(len(input)))
		m.Count(sim.CtrCMAC)
	}
	tag := c.mac.Tag(input)
	*bp = input[:0]
	macInputPool.Put(bp)
	return tag
}

// VerifyEntryMAC checks an entry's MAC in constant time.
func (c *Cipher) VerifyEntryMAC(m *sim.Meter, h *Header, ct []byte, tag []byte) bool {
	want := c.EntryMAC(m, h, ct)
	return subtle.ConstantTimeCompare(want[:], tag) == 1
}

// SetMAC computes the bucket-set MAC hash: the CMAC over the concatenated
// entry MACs of every bucket in the set (§4.3). The caller assembles the
// MAC list in canonical order.
func (c *Cipher) SetMAC(m *sim.Meter, macs []byte) [MACSize]byte {
	if m != nil {
		m.Charge(c.model.CMAC(len(macs)))
		m.Count(sim.CtrCMAC)
	}
	return c.mac.Tag(macs)
}

// BucketHash returns the keyed 64-bit hash used for bucket selection and
// partitioning. Using a keyed hash keeps the per-bucket key distribution
// hidden from the host (§4.2).
func (c *Cipher) BucketHash(m *sim.Meter, key []byte) uint64 {
	if m != nil {
		m.Charge(c.model.Hash(len(key)))
		m.Count(sim.CtrBucketHash)
	}
	return sipSum(c.keys.Bucket, key)
}

// KeyHint returns the 1-byte hint stored in the entry (§5.4). It uses an
// independent key from the bucket hash so the pair leaks at most the
// documented one byte.
func (c *Cipher) KeyHint(m *sim.Meter, key []byte) byte {
	if m != nil {
		m.Charge(c.model.Hash(len(key)))
	}
	return byte(sipSum(c.keys.Hint, key))
}

// sipSum computes SipHash-2-4 under the given key.
func sipSum(key [16]byte, data []byte) uint64 {
	return siphash.New(key[:]).Sum64(data)
}
