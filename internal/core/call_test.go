package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"shieldstore/internal/sim"
)

// TestSubmitWaitRecycling exercises the pooled call-slot path directly:
// many sequential Submit/Wait cycles reuse a handful of slots, and the
// results must stay correct (a recycled slot leaking a previous op's
// value or error would show up immediately).
func TestSubmitWaitRecycling(t *testing.T) {
	e := testEnclave(8 << 20)
	p := NewPartitioned(e, 2, Defaults(32))
	p.Start()
	defer p.Stop()
	m := sim.NewMeter(e.Model())

	for i := 0; i < 500; i++ {
		key := []byte(fmt.Sprintf("k%03d", i%50))
		val := []byte(fmt.Sprintf("v%d", i))
		if _, _, err := p.Submit(m, BatchSet, key, val, 0).Wait(); err != nil {
			t.Fatalf("set %d: %v", i, err)
		}
		got, _, err := p.Submit(m, BatchGet, key, nil, 0).Wait()
		if err != nil {
			t.Fatalf("get %d: %v", i, err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("get %d: %q, want %q", i, got, val)
		}
	}
	// A miss through a recycled slot reports its own error, not a stale one.
	if _, _, err := p.Submit(m, BatchGet, []byte("absent"), nil, 0).Wait(); !errors.Is(err, ErrNotFound) {
		t.Fatalf("miss: %v", err)
	}
	if got, _, err := p.Submit(m, BatchGet, []byte("k001"), nil, 0).Wait(); err != nil || got == nil {
		t.Fatalf("after miss: %q, %v", got, err)
	}

	// Incr results travel through the pooled slot's num field.
	for want := int64(1); want <= 5; want++ {
		n, err := p.Incr(m, []byte("ctr"), 1)
		if err != nil || n != want {
			t.Fatalf("incr: %d, %v (want %d)", n, err, want)
		}
	}
}

// TestSubmitBatchScatter checks that a cross-partition SubmitBatch
// scatters results back to submission order.
func TestSubmitBatchScatter(t *testing.T) {
	e := testEnclave(8 << 20)
	p := NewPartitioned(e, 4, Defaults(64))
	p.Start()
	defer p.Stop()
	m := sim.NewMeter(e.Model())

	const n = 40
	ops := make([]BatchOp, 0, 2*n)
	for i := 0; i < n; i++ {
		ops = append(ops, BatchOp{
			Kind:  BatchSet,
			Key:   []byte(fmt.Sprintf("bk%03d", i)),
			Value: []byte(fmt.Sprintf("bv%03d", i)),
		})
	}
	for i := 0; i < n; i++ {
		ops = append(ops, BatchOp{Kind: BatchGet, Key: []byte(fmt.Sprintf("bk%03d", i))})
	}
	rs := p.SubmitBatch(m, ops).Wait()
	if len(rs) != 2*n {
		t.Fatalf("%d results for %d ops", len(rs), 2*n)
	}
	for i := 0; i < n; i++ {
		if rs[i].Err != nil {
			t.Fatalf("set %d: %v", i, rs[i].Err)
		}
		g := rs[n+i]
		if g.Err != nil || !bytes.Equal(g.Val, []byte(fmt.Sprintf("bv%03d", i))) {
			t.Fatalf("get %d: %q, %v", i, g.Val, g.Err)
		}
	}
}

// TestDrainAmortization submits a burst of independent single-op calls
// before waiting on any of them, so the partition workers can drain
// several queued calls per wakeup. Every drain of more than one call
// executes as a combined batch with ONE request overhead, so the total
// CtrRequest count must never exceed the op count, and the CtrDispatch
// count (one per drain) must not exceed CtrRequest. The exact split is
// scheduling-dependent; the invariants are not.
func TestDrainAmortization(t *testing.T) {
	e := testEnclave(8 << 20)
	p := NewPartitioned(e, 2, Defaults(32))
	p.Start()
	defer p.Stop()
	m := sim.NewMeter(e.Model())

	const ops = 400
	calls := make([]*Call, 0, ops)
	for i := 0; i < ops; i++ {
		calls = append(calls, p.Submit(m, BatchSet,
			[]byte(fmt.Sprintf("d%03d", i%40)),
			[]byte(fmt.Sprintf("x%d", i)), 0))
	}
	for i, c := range calls {
		if _, _, err := c.Wait(); err != nil {
			t.Fatalf("call %d: %v", i, err)
		}
	}

	var reqs, disp uint64
	for i := 0; i < p.Parts(); i++ {
		reqs += p.Meter(i).Events(sim.CtrRequest)
		disp += p.Meter(i).Events(sim.CtrDispatch)
	}
	if reqs > ops {
		t.Fatalf("%d request overheads for %d ops (drains must amortize, not inflate)", reqs, ops)
	}
	if disp == 0 || disp > reqs {
		t.Fatalf("dispatch count %d out of range (requests %d)", disp, reqs)
	}
}
