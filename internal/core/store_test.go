package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"shieldstore/internal/entry"
	"shieldstore/internal/mem"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
)

func testEnclave(epcBytes int64) *sgx.Enclave {
	space := mem.NewSpace(mem.Config{EPCBytes: epcBytes})
	return sgx.New(sgx.Config{Space: space, Seed: 11})
}

func newTestStore(opts Options) (*Store, *sim.Meter) {
	e := testEnclave(8 << 20)
	s := New(e, nil, opts)
	return s, sim.NewMeter(e.Model())
}

func allConfigs() map[string]Options {
	return map[string]Options{
		"ShieldOpt":   Defaults(64),
		"ShieldBase":  Base(64),
		"KeyHintOnly": {Buckets: 64, MACHashes: 64, KeyHint: true},
		"MACBktOnly":  {Buckets: 64, MACHashes: 64, MACBucket: true, MACBucketCap: 4},
		"MultiSet":    {Buckets: 64, MACHashes: 8, KeyHint: true, MACBucket: true, MACBucketCap: 4, ExtraHeap: true},
		"TinyMACCap":  {Buckets: 4, MACHashes: 2, KeyHint: true, MACBucket: true, MACBucketCap: 2, ExtraHeap: true},
		"MerkleTree":  {Buckets: 64, MACHashes: 64, KeyHint: true, MACBucket: true, MACBucketCap: 8, ExtraHeap: true, MerkleTree: true},
		"MerkleChain": {Buckets: 32, MACHashes: 32, MerkleTree: true},
	}
}

func TestSetGetAcrossConfigs(t *testing.T) {
	for name, opts := range allConfigs() {
		t.Run(name, func(t *testing.T) {
			s, m := newTestStore(opts)
			const n = 200
			for i := 0; i < n; i++ {
				key := []byte(fmt.Sprintf("key-%04d", i))
				val := []byte(fmt.Sprintf("value-%04d-%s", i, bytes.Repeat([]byte{byte(i)}, i%50)))
				if err := s.Set(m, key, val); err != nil {
					t.Fatalf("Set(%d): %v", i, err)
				}
			}
			if s.Keys() != n {
				t.Fatalf("Keys = %d, want %d", s.Keys(), n)
			}
			for i := 0; i < n; i++ {
				key := []byte(fmt.Sprintf("key-%04d", i))
				want := []byte(fmt.Sprintf("value-%04d-%s", i, bytes.Repeat([]byte{byte(i)}, i%50)))
				got, err := s.Get(m, key)
				if err != nil {
					t.Fatalf("Get(%d): %v", i, err)
				}
				if !bytes.Equal(got, want) {
					t.Fatalf("Get(%d) = %q, want %q", i, got, want)
				}
			}
		})
	}
}

func TestGetMissing(t *testing.T) {
	for name, opts := range allConfigs() {
		t.Run(name, func(t *testing.T) {
			s, m := newTestStore(opts)
			if _, err := s.Get(m, []byte("nope")); !errors.Is(err, ErrNotFound) {
				t.Fatalf("err = %v, want ErrNotFound", err)
			}
			// Populate and miss again.
			_ = s.Set(m, []byte("yes"), []byte("1"))
			if _, err := s.Get(m, []byte("nope")); !errors.Is(err, ErrNotFound) {
				t.Fatalf("err = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestUpdateSameSizeAndResize(t *testing.T) {
	for name, opts := range allConfigs() {
		t.Run(name, func(t *testing.T) {
			s, m := newTestStore(opts)
			key := []byte("k")
			must(t, s.Set(m, key, []byte("aaaa")))
			must(t, s.Set(m, key, []byte("bbbb"))) // in-place
			got, err := s.Get(m, key)
			must(t, err)
			if string(got) != "bbbb" {
				t.Fatalf("in-place update: got %q", got)
			}
			must(t, s.Set(m, key, []byte("cccccccccccc"))) // replace (bigger)
			got, err = s.Get(m, key)
			must(t, err)
			if string(got) != "cccccccccccc" {
				t.Fatalf("grow update: got %q", got)
			}
			must(t, s.Set(m, key, []byte("d"))) // replace (smaller)
			got, err = s.Get(m, key)
			must(t, err)
			if string(got) != "d" {
				t.Fatalf("shrink update: got %q", got)
			}
			if s.Keys() != 1 {
				t.Fatalf("Keys = %d after updates", s.Keys())
			}
		})
	}
}

func TestAppend(t *testing.T) {
	s, m := newTestStore(Defaults(16))
	key := []byte("log")
	must(t, s.Append(m, key, []byte("hello")))
	must(t, s.Append(m, key, []byte(" world")))
	got, err := s.Get(m, key)
	must(t, err)
	if string(got) != "hello world" {
		t.Fatalf("append: got %q", got)
	}
}

func TestIncr(t *testing.T) {
	s, m := newTestStore(Defaults(16))
	key := []byte("ctr")
	v, err := s.Incr(m, key, 5)
	must(t, err)
	if v != 5 {
		t.Fatalf("fresh incr = %d", v)
	}
	v, err = s.Incr(m, key, 7)
	must(t, err)
	if v != 12 {
		t.Fatalf("second incr = %d", v)
	}
	v, err = s.Incr(m, key, -20)
	must(t, err)
	if v != -8 {
		t.Fatalf("negative incr = %d", v)
	}
	must(t, s.Set(m, []byte("s"), []byte("notanumber")))
	if _, err := s.Incr(m, []byte("s"), 1); !errors.Is(err, ErrNotNumeric) {
		t.Fatalf("incr on text: %v", err)
	}
}

func TestDelete(t *testing.T) {
	for name, opts := range allConfigs() {
		t.Run(name, func(t *testing.T) {
			s, m := newTestStore(opts)
			keys := make([][]byte, 60)
			for i := range keys {
				keys[i] = []byte(fmt.Sprintf("del-%03d", i))
				must(t, s.Set(m, keys[i], []byte(fmt.Sprintf("v%d", i))))
			}
			// Delete every third key.
			for i := 0; i < len(keys); i += 3 {
				must(t, s.Delete(m, keys[i]))
			}
			for i := range keys {
				got, err := s.Get(m, keys[i])
				if i%3 == 0 {
					if !errors.Is(err, ErrNotFound) {
						t.Fatalf("deleted key %d still present (err=%v)", i, err)
					}
				} else {
					must(t, err)
					if string(got) != fmt.Sprintf("v%d", i) {
						t.Fatalf("survivor %d corrupted: %q", i, got)
					}
				}
			}
			if err := s.Delete(m, []byte("absent")); !errors.Is(err, ErrNotFound) {
				t.Fatalf("delete absent: %v", err)
			}
			if s.Keys() != 40 {
				t.Fatalf("Keys = %d, want 40", s.Keys())
			}
			must(t, s.VerifyAll(m))
		})
	}
}

func TestVerifyAllCleanStore(t *testing.T) {
	for name, opts := range allConfigs() {
		t.Run(name, func(t *testing.T) {
			s, m := newTestStore(opts)
			for i := 0; i < 100; i++ {
				must(t, s.Set(m, []byte(fmt.Sprintf("k%d", i)), []byte(fmt.Sprintf("v%d", i))))
			}
			must(t, s.VerifyAll(m))
		})
	}
}

// --- key hint behaviour (§5.4) ---

func TestKeyHintReducesDecryptions(t *testing.T) {
	// Force long chains: 4 buckets, 200 keys -> ~50 per chain.
	run := func(hint bool) uint64 {
		opts := Defaults(4)
		opts.KeyHint = hint
		s, m := newTestStore(opts)
		for i := 0; i < 200; i++ {
			must(t, s.Set(m, []byte(fmt.Sprintf("k%04d", i)), []byte("v")))
		}
		m.Reset()
		for i := 0; i < 200; i++ {
			_, err := s.Get(m, []byte(fmt.Sprintf("k%04d", i)))
			must(t, err)
		}
		return m.Events(sim.CtrDecrypt)
	}
	with, without := run(true), run(false)
	if without < 10*with {
		t.Fatalf("key hint should cut decryptions ~chain-length-fold: with=%d without=%d", with, without)
	}
	// With hints, decryptions per hit should be very close to 1.
	if with > 200*13/10 {
		t.Fatalf("with hints, %d decryptions for 200 gets (>1.3/op)", with)
	}
}

func TestKeyHintTamperFallsBackToFullSearch(t *testing.T) {
	// §5.4: corrupting hints is an availability attack; the two-step
	// search still finds entries. But note the hint is MACed, so the
	// tamper is *detected* as an integrity failure rather than a miss.
	s, m := newTestStore(Defaults(2))
	key := []byte("target")
	must(t, s.Set(m, key, []byte("payload")))

	// Find the entry in untrusted memory and corrupt its hint byte.
	b := s.bucketOf(m, key)
	head, err := s.readPtr(m, s.headAddr(b))
	must(t, err)
	var hdrBuf [entry.HeaderSize]byte
	s.space.Peek(head, hdrBuf[:])
	s.space.Tamper(head+entry.OffHint, []byte{hdrBuf[entry.OffHint] ^ 0xFF})

	// The two-step search locates the entry despite the wrong hint; the
	// MAC check then reports the tamper.
	if _, err := s.Get(m, key); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tampered hint: err = %v, want ErrIntegrity", err)
	}
}

// --- integrity attacks (§3.3, §4.3) ---

// tamperTarget inserts keys and returns the store, one victim key and the
// address of its entry.
func tamperSetup(t *testing.T, opts Options) (*Store, *sim.Meter, []byte, mem.Addr) {
	t.Helper()
	s, m := newTestStore(opts)
	for i := 0; i < 50; i++ {
		must(t, s.Set(m, []byte(fmt.Sprintf("k%03d", i)), bytes.Repeat([]byte{byte(i)}, 32)))
	}
	key := []byte("k025")
	b := s.bucketOf(m, key)
	res, err := s.search(m, b, key)
	must(t, err)
	if !res.found {
		t.Fatal("victim not found")
	}
	return s, m, key, res.addr
}

func TestTamperCiphertextDetected(t *testing.T) {
	for name, opts := range allConfigs() {
		t.Run(name, func(t *testing.T) {
			s, m, key, addr := tamperSetup(t, opts)
			s.space.Tamper(addr+entry.HeaderSize+4, []byte{0xFF})
			if _, err := s.Get(m, key); !errors.Is(err, ErrIntegrity) && !errors.Is(err, ErrNotFound) {
				// Corrupting ciphertext may garble the decrypted key (a
				// miss) — but then set verification must still flag it.
				t.Fatalf("tampered ciphertext: err = %v", err)
			}
			// Full verification always detects it.
			if err := s.VerifyAll(m); err == nil {
				t.Fatal("VerifyAll missed ciphertext tamper")
			}
		})
	}
}

func TestTamperMACFieldDetected(t *testing.T) {
	for name, opts := range allConfigs() {
		t.Run(name, func(t *testing.T) {
			s, m, key, addr := tamperSetup(t, opts)
			s.space.Tamper(addr+entry.OffMAC, []byte{0xEE, 0xBB})
			_, err := s.Get(m, key)
			if opts.MACBucket {
				// The sidecar MAC is authoritative on the found path, so
				// the entry is still served correctly...
				must(t, err)
				// ...but the full audit catches the stale field.
				if err := s.VerifyAll(m); !errors.Is(err, ErrIntegrity) {
					t.Fatalf("VerifyAll missed MAC field tamper: %v", err)
				}
			} else if !errors.Is(err, ErrIntegrity) {
				t.Fatalf("tampered MAC: err = %v, want ErrIntegrity", err)
			}
		})
	}
}

func TestTamperIVDetected(t *testing.T) {
	for name, opts := range allConfigs() {
		t.Run(name, func(t *testing.T) {
			s, m, key, addr := tamperSetup(t, opts)
			s.space.Tamper(addr+entry.OffIV, []byte{0x99})
			if _, err := s.Get(m, key); err == nil {
				t.Fatal("tampered IV went undetected")
			}
		})
	}
}

func TestUnlinkEntryDetected(t *testing.T) {
	// Host unlinks an entry from its chain (silent deletion). The set
	// hash covers all MACs, so the get must fail integrity rather than
	// report a clean miss.
	for _, macBucket := range []bool{true, false} {
		t.Run(fmt.Sprintf("macBucket=%v", macBucket), func(t *testing.T) {
			opts := Defaults(2)
			opts.MACBucket = macBucket
			s, m := newTestStore(opts)
			for i := 0; i < 20; i++ {
				must(t, s.Set(m, []byte(fmt.Sprintf("k%02d", i)), []byte("v")))
			}
			key := []byte("k07")
			b := s.bucketOf(m, key)
			res, err := s.search(m, b, key)
			must(t, err)
			// Rewire the predecessor pointer past the victim.
			var next [8]byte
			putLeU64t(next[:], uint64(res.hdr.Next))
			s.space.Tamper(res.prevLink, next[:])

			if _, err := s.Get(m, key); !errors.Is(err, ErrIntegrity) {
				t.Fatalf("silent unlink: err = %v, want ErrIntegrity", err)
			}
		})
	}
}

func TestReplayOldEntryDetected(t *testing.T) {
	// Host snapshots an entry (and its sidecar MAC), lets the enclave
	// update it, then restores the old bytes — the classic replay the
	// flattened Merkle scheme must stop.
	for name, opts := range allConfigs() {
		t.Run(name, func(t *testing.T) {
			s, m := newTestStore(opts)
			key := []byte("account")
			must(t, s.Set(m, key, []byte("balance=100")))

			b := s.bucketOf(m, key)
			res, err := s.search(m, b, key)
			must(t, err)
			old := make([]byte, res.hdr.TotalLen())
			s.space.Peek(res.addr, old)
			var oldSidecar []byte
			if opts.MACBucket {
				a, err := s.sidecarSlotAddr(m, b, int(res.hdr.Slot))
				must(t, err)
				oldSidecar = make([]byte, entry.MACSize)
				s.space.Peek(a, oldSidecar)
			}

			must(t, s.Set(m, key, []byte("balance=000"))) // same size: in place

			// Replay both the entry and (if present) the sidecar MAC.
			s.space.Tamper(res.addr, old)
			if opts.MACBucket {
				a, _ := s.sidecarSlotAddr(m, b, int(res.hdr.Slot))
				s.space.Tamper(a, oldSidecar)
			}

			if _, err := s.Get(m, key); !errors.Is(err, ErrIntegrity) {
				t.Fatalf("replay attack: err = %v, want ErrIntegrity", err)
			}
		})
	}
}

func TestCrossBucketSwapDetected(t *testing.T) {
	// Swapping two buckets' head pointers preserves each entry's own MAC
	// but changes the set composition — detected by the set hashes as
	// long as the buckets are covered by... the same slot? Use MACHashes
	// == Buckets so each bucket has its own hash.
	opts := Defaults(8)
	s, m := newTestStore(opts)
	for i := 0; i < 64; i++ {
		must(t, s.Set(m, []byte(fmt.Sprintf("k%02d", i)), []byte("v")))
	}
	var h0, h1 [8]byte
	s.space.Peek(s.headAddr(0), h0[:])
	s.space.Peek(s.headAddr(1), h1[:])
	s.space.Tamper(s.headAddr(0), h1[:])
	s.space.Tamper(s.headAddr(1), h0[:])
	if err := s.VerifyAll(m); err == nil {
		t.Fatal("bucket swap went undetected")
	}
}

func TestEnclaveAliasingPointerRejected(t *testing.T) {
	s, m := newTestStore(Defaults(2))
	must(t, s.Set(m, []byte("a"), []byte("1")))
	key := []byte("a")
	b := s.bucketOf(m, key)
	// Point the bucket head into the enclave range (§7 attack).
	var evil [8]byte
	putLeU64t(evil[:], uint64(mem.EnclaveBase+0x1000))
	s.space.Tamper(s.headAddr(b), evil[:])
	if _, err := s.Get(m, key); !errors.Is(err, ErrCorruptPointer) {
		t.Fatalf("enclave-aliasing pointer: err = %v, want ErrCorruptPointer", err)
	}
}

func TestConfidentialityOfUntrustedMemory(t *testing.T) {
	// Neither keys nor values may appear in plaintext anywhere in the
	// untrusted region.
	s, m := newTestStore(Defaults(8))
	secretKey := []byte("supersecretkey01")
	secretVal := []byte("topsecret-value-content-42")
	must(t, s.Set(m, secretKey, secretVal))

	used := s.space.UsedBytes(mem.Untrusted)
	dump := make([]byte, used)
	s.space.Peek(mem.UntrustedBase, dump)
	if bytes.Contains(dump, secretKey) {
		t.Fatal("plaintext key leaked to untrusted memory")
	}
	if bytes.Contains(dump, secretVal) {
		t.Fatal("plaintext value leaked to untrusted memory")
	}
}

// --- allocator integration ---

func TestExtraHeapVersusOutsideOCalls(t *testing.T) {
	run := func(extra bool) uint64 {
		opts := Defaults(16)
		opts.ExtraHeap = extra
		opts.HeapChunk = 1 << 20
		s, m := newTestStore(opts)
		for i := 0; i < 300; i++ {
			must(t, s.Set(m, []byte(fmt.Sprintf("k%03d", i)), []byte("valuevalue")))
		}
		return m.Events(sim.CtrOCall)
	}
	with, without := run(true), run(false)
	if with*10 > without {
		t.Fatalf("extra heap OCALLs (%d) should be <10%% of naive (%d)", with, without)
	}
}

// --- multi-bucket sets ---

func TestMultiBucketSetMaintenance(t *testing.T) {
	opts := Options{Buckets: 16, MACHashes: 4, KeyHint: true, MACBucket: true, MACBucketCap: 3, ExtraHeap: true}
	s, m := newTestStore(opts)
	rng := rand.New(rand.NewSource(5))
	live := map[string]string{}
	for i := 0; i < 500; i++ {
		k := fmt.Sprintf("k%03d", rng.Intn(120))
		switch rng.Intn(3) {
		case 0, 1:
			v := fmt.Sprintf("v%06d", i)
			must(t, s.Set(m, []byte(k), []byte(v)))
			live[k] = v
		case 2:
			err := s.Delete(m, []byte(k))
			if _, ok := live[k]; ok {
				must(t, err)
				delete(live, k)
			} else if !errors.Is(err, ErrNotFound) {
				t.Fatalf("delete absent: %v", err)
			}
		}
	}
	for k, v := range live {
		got, err := s.Get(m, []byte(k))
		must(t, err)
		if string(got) != v {
			t.Fatalf("key %s: got %q want %q", k, got, v)
		}
	}
	if s.Keys() != len(live) {
		t.Fatalf("Keys = %d, want %d", s.Keys(), len(live))
	}
	must(t, s.VerifyAll(m))
}

// --- model-based property test ---

func TestModelBasedRandomOps(t *testing.T) {
	for name, opts := range allConfigs() {
		t.Run(name, func(t *testing.T) {
			s, m := newTestStore(opts)
			ref := map[string][]byte{}
			rng := rand.New(rand.NewSource(99))
			for step := 0; step < 2000; step++ {
				k := fmt.Sprintf("key%02d", rng.Intn(40))
				switch rng.Intn(10) {
				case 0, 1, 2: // set
					v := make([]byte, rng.Intn(100))
					rng.Read(v)
					must(t, s.Set(m, []byte(k), v))
					ref[k] = v
				case 3: // delete
					err := s.Delete(m, []byte(k))
					if _, ok := ref[k]; ok {
						must(t, err)
						delete(ref, k)
					} else if !errors.Is(err, ErrNotFound) {
						t.Fatal(err)
					}
				case 4: // append
					suf := []byte("++")
					must(t, s.Append(m, []byte(k), suf))
					ref[k] = append(ref[k], suf...)
				default: // get
					got, err := s.Get(m, []byte(k))
					want, ok := ref[k]
					if !ok {
						if !errors.Is(err, ErrNotFound) {
							t.Fatalf("step %d: get absent %s: %v", step, k, err)
						}
						continue
					}
					must(t, err)
					if !bytes.Equal(got, want) {
						t.Fatalf("step %d: key %s mismatch", step, k)
					}
				}
				if s.Keys() != len(ref) {
					t.Fatalf("step %d: Keys=%d ref=%d", step, s.Keys(), len(ref))
				}
			}
			must(t, s.VerifyAll(m))
		})
	}
}

// --- persistence hooks ---

func TestExportRestoreRoundTrip(t *testing.T) {
	for name, opts := range allConfigs() {
		t.Run(name, func(t *testing.T) {
			s, m := newTestStore(opts)
			want := map[string]string{}
			for i := 0; i < 120; i++ {
				k, v := fmt.Sprintf("k%03d", i), fmt.Sprintf("val-%04d", i*7)
				must(t, s.Set(m, []byte(k), []byte(v)))
				want[k] = v
			}

			// Snapshot: raw buckets + MAC hashes + keys.
			type bucketDump struct {
				b       int
				entries [][]byte
			}
			var dumps []bucketDump
			must(t, s.ForEachBucketRaw(func(b int, entries [][]byte) error {
				cp := make([][]byte, len(entries))
				for i := range entries {
					cp[i] = append([]byte(nil), entries[i]...)
				}
				dumps = append(dumps, bucketDump{b, cp})
				return nil
			}))
			hashes := s.ExportMACHashes()
			keys := s.Cipher().ExportKeys()

			// Rebuild into a fresh store sharing the enclave.
			s2 := New(s.Enclave(), entry.NewCipherFromKeys(s.Enclave(), keys), opts)
			m2 := sim.NewMeter(s.Enclave().Model())
			for _, d := range dumps {
				must(t, s2.RestoreBucket(m2, d.b, d.entries))
			}
			must(t, s2.ImportMACHashes(m2, hashes))
			must(t, s2.VerifyAll(m2))

			if s2.Keys() != len(want) {
				t.Fatalf("restored Keys = %d, want %d", s2.Keys(), len(want))
			}
			for k, v := range want {
				got, err := s2.Get(m2, []byte(k))
				must(t, err)
				if string(got) != v {
					t.Fatalf("restored %s = %q, want %q", k, got, v)
				}
			}
		})
	}
}

func TestRestoreTamperedSnapshotDetected(t *testing.T) {
	opts := Defaults(8)
	s, m := newTestStore(opts)
	for i := 0; i < 40; i++ {
		must(t, s.Set(m, []byte(fmt.Sprintf("k%02d", i)), []byte("vvvv")))
	}
	var dumps [][][]byte
	var bIDs []int
	must(t, s.ForEachBucketRaw(func(b int, entries [][]byte) error {
		cp := make([][]byte, len(entries))
		for i := range entries {
			cp[i] = append([]byte(nil), entries[i]...)
		}
		dumps = append(dumps, cp)
		bIDs = append(bIDs, b)
		return nil
	}))
	hashes := s.ExportMACHashes()

	// Tamper one snapshot entry's ciphertext.
	dumps[0][0][entry.HeaderSize] ^= 0x55

	s2 := New(s.Enclave(), entry.NewCipherFromKeys(s.Enclave(), s.Cipher().ExportKeys()), opts)
	m2 := sim.NewMeter(s.Enclave().Model())
	for i := range dumps {
		must(t, s2.RestoreBucket(m2, bIDs[i], dumps[i]))
	}
	must(t, s2.ImportMACHashes(m2, hashes))
	if err := s2.VerifyAll(m2); err == nil {
		t.Fatal("tampered snapshot restored without detection")
	}
}

func TestForEachDecrypt(t *testing.T) {
	s, m := newTestStore(Defaults(8))
	want := map[string]string{"a": "1", "bb": "22", "ccc": "333"}
	for k, v := range want {
		must(t, s.Set(m, []byte(k), []byte(v)))
	}
	got := map[string]string{}
	must(t, s.ForEachDecrypt(m, func(k, v []byte) error {
		got[string(k)] = string(v)
		return nil
	}))
	if len(got) != len(want) {
		t.Fatalf("iterated %d pairs, want %d", len(got), len(want))
	}
	for k, v := range want {
		if got[k] != v {
			t.Fatalf("pair %s: %q != %q", k, got[k], v)
		}
	}
}

// --- options sanity ---

func TestOptionDefaultsAndClamps(t *testing.T) {
	e := testEnclave(8 << 20)
	s := New(e, nil, Options{Buckets: 8, MACHashes: 999}) // clamp to buckets
	if s.Options().MACHashes != 8 {
		t.Fatalf("MACHashes not clamped: %d", s.Options().MACHashes)
	}
	if s.Options().MACBucketCap != 30 {
		t.Fatalf("MACBucketCap default: %d", s.Options().MACBucketCap)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("zero buckets must panic")
		}
	}()
	New(e, nil, Options{})
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}

func putLeU64t(b []byte, v uint64) {
	for i := 0; i < 8; i++ {
		b[i] = byte(v >> (8 * i))
	}
}
