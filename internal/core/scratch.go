package core

import "sync"

// scratchPool recycles the transient []byte buffers of the crypto hot
// path — ciphertext staging in searches and mutations, entry
// serialization, integrity re-checks. These buffers never escape an
// operation, so pooling them removes the dominant per-op heap churn
// (store.go previously allocated fresh slices for each of them). The pool
// holds *[]byte to keep Put itself allocation-free.
var scratchPool = sync.Pool{
	New: func() any {
		b := make([]byte, 0, 1024)
		return &b
	},
}

// getScratch returns a pooled buffer resized to length n.
func getScratch(n int) *[]byte {
	p := scratchPool.Get().(*[]byte)
	if cap(*p) < n {
		*p = make([]byte, n)
	}
	*p = (*p)[:n]
	return p
}

// putScratch returns a buffer to the pool. The caller must not retain any
// slice of it.
func putScratch(p *[]byte) { scratchPool.Put(p) }

// growBytes extends b by n bytes (contents of the extension unspecified),
// reallocating at most geometrically so repeated growth amortizes.
func growBytes(b []byte, n int) []byte {
	need := len(b) + n
	if cap(b) < need {
		nb := make([]byte, need, max(need, 2*cap(b)))
		copy(nb, b)
		return nb
	}
	return b[:need]
}
