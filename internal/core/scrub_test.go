// Tests for the background integrity scrubber and the verify-first
// quarantine exit: cursor bookkeeping, proactive tamper detection
// through the same latch as client ops, and health reporting.
package core

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"shieldstore/internal/entry"
	"shieldstore/internal/sim"
)

func TestScrubSliceCursor(t *testing.T) {
	opts := Defaults(8) // 8 bucket sets per pass
	s, m, _, _, _ := fillStore(t, opts, 40)

	wrapped, err := s.ScrubSlice(m, 3)
	must(t, err)
	if wrapped {
		t.Fatal("3 of 8 sets should not complete a pass")
	}
	pos, total, passes := s.ScrubProgress()
	if pos != 3 || total != 8 || passes != 0 {
		t.Fatalf("after slice of 3: pos=%d total=%d passes=%d", pos, total, passes)
	}
	if got := m.Events(sim.CtrScrub); got != 3 {
		t.Fatalf("CtrScrub = %d, want 3", got)
	}

	// Finish the pass: the cursor wraps to 0 and the pass counter ticks.
	wrapped, err = s.ScrubSlice(m, 5)
	must(t, err)
	if !wrapped {
		t.Fatal("completing set 8/8 should report a wrapped pass")
	}
	pos, _, passes = s.ScrubProgress()
	if pos != 0 || passes != 1 {
		t.Fatalf("after full pass: pos=%d passes=%d", pos, passes)
	}

	// A slice larger than a full pass wraps mid-slice and keeps going.
	wrapped, err = s.ScrubSlice(m, 11)
	must(t, err)
	if !wrapped {
		t.Fatal("slice of 11 over 8 sets must wrap")
	}
	pos, _, passes = s.ScrubProgress()
	if pos != 3 || passes != 2 {
		t.Fatalf("after slice of 11: pos=%d passes=%d", pos, passes)
	}
}

func TestScrubDetectsTamperBeforeClientRead(t *testing.T) {
	// The scrubber must find host tampering without any client op
	// touching the damaged chain, and trip the exact same quarantine
	// latch an operational detection does.
	for name, opts := range allConfigs() {
		t.Run(name, func(t *testing.T) {
			opts.Quarantine = true
			s, m, key, _, addr := fillStore(t, opts, 40)
			s.space.Tamper(addr+entry.HeaderSize+1, []byte{0x5A})

			var serr error
			for i := 0; i < 2*s.opts.MACHashes && serr == nil; i++ {
				_, serr = s.ScrubSlice(m, 1)
			}
			if serr == nil {
				t.Fatal("scrubber completed two passes over tampered memory without detecting")
			}
			if !errors.Is(serr, ErrIntegrity) && !errors.Is(serr, ErrCorruptPointer) {
				t.Fatalf("scrub detection is untyped: %v", serr)
			}
			if !s.Quarantined() {
				t.Fatal("scrub detection did not trip the quarantine latch")
			}
			// The client never saw the corruption — its next op sees only
			// the quarantine refusal.
			if _, err := s.Get(m, key); !errors.Is(err, ErrQuarantined) {
				t.Fatalf("Get after scrub detection: %v, want ErrQuarantined", err)
			}
			// And the scrubber itself stands down on a quarantined store.
			if _, err := s.ScrubSlice(m, 1); !errors.Is(err, ErrQuarantined) {
				t.Fatalf("ScrubSlice on quarantined store: %v, want ErrQuarantined", err)
			}
			if st := s.Health().State; st != PartQuarantined {
				t.Fatalf("health state = %v, want quarantined", st)
			}
		})
	}
}

func TestScrubAdvancesPastCorruptSetWithoutLatch(t *testing.T) {
	// Without the Quarantine policy armed, detection must not wedge the
	// cursor on the bad set: the scrubber keeps covering the rest of the
	// table (re-flagging the damage once per pass).
	opts := Defaults(4)
	s, m, _, _, addr := fillStore(t, opts, 40)
	s.space.Tamper(addr+entry.HeaderSize+1, []byte{0x5A})

	detections := 0
	for i := 0; i < 3*s.opts.MACHashes; i++ {
		if _, err := s.ScrubSlice(m, 1); err != nil {
			detections++
		}
	}
	_, _, passes := s.ScrubProgress()
	if passes != 3 {
		t.Fatalf("passes = %d, want 3 (cursor wedged on the corrupt set?)", passes)
	}
	if detections != 3 {
		t.Fatalf("detections = %d, want one per pass", detections)
	}
}

func TestUnquarantineVerifiesFirst(t *testing.T) {
	// Unquarantine is verify-first: while the damage persists it refuses
	// and the latch stays; once the attacker restores the original bytes
	// a full verify passes and service resumes.
	opts := Defaults(8)
	opts.Quarantine = true
	s, m, key, _, addr := fillStore(t, opts, 40)

	tamperAt := addr + entry.HeaderSize + 1
	orig := make([]byte, 1)
	s.space.Peek(tamperAt, orig)
	s.space.Tamper(tamperAt, []byte{orig[0] ^ 0x5A})

	if _, err := s.Get(m, key); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("Get on tampered entry: %v, want ErrIntegrity", err)
	}
	if !s.Quarantined() {
		t.Fatal("detection did not latch")
	}
	if err := s.Unquarantine(m); err == nil {
		t.Fatal("Unquarantine passed while the tampered bytes persist")
	}
	if !s.Quarantined() {
		t.Fatal("failed Unquarantine must leave the latch set")
	}

	s.space.Tamper(tamperAt, orig)
	if err := s.Unquarantine(m); err != nil {
		t.Fatalf("Unquarantine after restore: %v", err)
	}
	if s.Quarantined() {
		t.Fatal("latch still set after verified Unquarantine")
	}
	if v, err := s.Get(m, key); err != nil || string(v) != "rv005" {
		t.Fatalf("Get after recovery: %q, %v", v, err)
	}
	if st := s.Health().State; st != PartHealthy {
		t.Fatalf("health state = %v, want healthy", st)
	}
}

func TestRebuildingStateAndGuard(t *testing.T) {
	opts := Defaults(4)
	opts.Quarantine = true
	s, m, key, _, addr := fillStore(t, opts, 30)
	s.space.Tamper(addr+entry.HeaderSize+1, []byte{0x5A})
	if _, err := s.Get(m, key); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tampered Get: %v", err)
	}

	s.MarkRebuilding()
	if st := s.Health().State; st != PartRebuilding {
		t.Fatalf("health state = %v, want rebuilding", st)
	}
	if _, err := s.Get(m, key); !errors.Is(err, ErrRebuilding) {
		t.Fatalf("Get during rebuild: %v, want ErrRebuilding", err)
	}

	s.ClearRebuilding()
	if st := s.Health().State; st != PartQuarantined {
		t.Fatalf("health state after ClearRebuilding = %v, want quarantined", st)
	}
	s.ForceUnquarantine()
	if st := s.Health().State; st != PartHealthy {
		t.Fatalf("health state after ForceUnquarantine = %v, want healthy", st)
	}
}

func TestFormatHealth(t *testing.T) {
	lines := FormatHealth([]PartHealth{
		{State: PartHealthy, ScrubPos: 3, ScrubTotal: 64, ScrubPasses: 7},
		{State: PartRebuilding, ScrubPos: 0, ScrubTotal: 64, ScrubPasses: 2, JournalLost: true},
	})
	want := []string{
		"part0=healthy scrub=3/64 passes=7",
		"part1=rebuilding scrub=0/64 passes=2 journal=lost",
	}
	if len(lines) != len(want) {
		t.Fatalf("FormatHealth lines = %v", lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("line %d = %q, want %q", i, lines[i], want[i])
		}
	}
}

func TestScrubHookFiresOncePerLatch(t *testing.T) {
	opts := Defaults(4)
	opts.Quarantine = true
	s, m, _, _, addr := fillStore(t, opts, 30)
	fired := 0
	s.SetQuarantineHook(func() { fired++ })
	s.space.Tamper(addr+entry.HeaderSize+1, []byte{0x5A})

	for i := 0; i < 3*s.opts.MACHashes; i++ {
		if _, err := s.ScrubSlice(m, 1); err != nil {
			break
		}
	}
	if fired != 1 {
		t.Fatalf("quarantine hook fired %d times, want 1", fired)
	}
	// Further refusals must not re-fire the hook.
	if _, err := s.ScrubSlice(m, 1); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("scrub on quarantined store: %v", err)
	}
	if fired != 1 {
		t.Fatalf("hook re-fired on refusal: %d", fired)
	}
}

func TestHealthStringsAreStable(t *testing.T) {
	// The CLI and CI greps key off these exact names.
	for st, want := range map[PartState]string{
		PartHealthy:     "healthy",
		PartQuarantined: "quarantined",
		PartRebuilding:  "rebuilding",
	} {
		if got := st.String(); got != want {
			t.Fatalf("%d.String() = %q, want %q", st, got, want)
		}
	}
	line := FormatHealth([]PartHealth{{State: PartHealthy, ScrubTotal: 1}})[0]
	if !strings.HasPrefix(line, fmt.Sprintf("part%d=", 0)) {
		t.Fatalf("unexpected health line shape: %q", line)
	}
}
