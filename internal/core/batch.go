// Batched operation execution with amortized bucket-set integrity
// updates.
//
// A single-op request pays the full §4.3 integrity protocol: gather the
// bucket set's MAC list, verify it against the in-enclave MAC hash,
// apply the op, recompute and store the hash. ApplyBatch groups a batch's
// ops by bucket set and runs that protocol once per *touched set* instead
// of once per op: one collection, one verification, N applications
// against the verified in-enclave view, one hash recompute. For skewed
// workloads — where most ops land in a few hot sets — the dominant
// CMAC-over-set cost is amortized N-fold with an unchanged guarantee
// (see DESIGN.md, "Batch amortization").
package core

import (
	"errors"

	"shieldstore/internal/sim"
)

// ErrBadBatchOp reports a batch operation kind the engine cannot execute.
var ErrBadBatchOp = errors.New("shieldstore: unsupported batch operation")

// BatchKind identifies one operation type inside a batch.
type BatchKind uint8

// Batch operation kinds.
const (
	BatchGet BatchKind = iota
	BatchSet
	BatchDelete
	BatchAppend
	BatchIncr
)

// BatchOp is one operation of a heterogeneous batch. Value holds the Set
// value or the Append suffix; Delta the Incr amount.
type BatchOp struct {
	Kind  BatchKind
	Key   []byte
	Value []byte
	Delta int64
}

// BatchResult is the per-op outcome. Errors are isolated per op: a miss
// or an integrity violation taints only the ops it actually affects, not
// the whole batch.
type BatchResult struct {
	Val []byte
	Num int64
	Err error
}

// batchPos ties an op's submission index to its resolved bucket.
type batchPos struct {
	idx    int
	bucket int
}

// setGroupID returns the integrity-group key of bucket b: with the
// flattened MAC hash array (§4.3) a whole bucket set {b' : b' ≡ b mod
// MACHashes} shares one hash slot; in Merkle mode every bucket is its own
// leaf.
func (s *Store) setGroupID(b int) int {
	if s.tree != nil {
		return b
	}
	return b % s.opts.MACHashes
}

// ApplyBatch executes ops against this partition, amortizing the fixed
// request overhead (charged once per batch — the batch *is* one request)
// and the per-set integrity work across the batch. Ops are applied
// grouped by bucket set in first-touch order; ops on the same key always
// share a set, so per-key ordering follows submission order. The returned
// slice has one result per op, in submission order.
//
//ss:attacker — batch ops arrive from the wire.
func (s *Store) ApplyBatch(m *sim.Meter, ops []BatchOp) []BatchResult {
	results := make([]BatchResult, len(ops))
	s.ApplyBatchInto(m, ops, results)
	return results
}

// ApplyBatchInto is ApplyBatch writing into a caller-provided results
// slice (len(results) must equal len(ops), zero-valued). Worker drains
// reuse one results buffer across wakeups through this entry point.
//
//ss:attacker — batch ops arrive from the wire.
func (s *Store) ApplyBatchInto(m *sim.Meter, ops []BatchOp, results []BatchResult) {
	if len(ops) == 0 {
		return
	}
	m.Charge(s.model.RequestOverhead)
	m.Count(sim.CtrRequest)

	// Resolve plaintext-cache hits up front — they need no integrity work
	// — and group the rest by bucket set, preserving submission order
	// within each group.
	groups := make(map[int][]batchPos)
	var order []int
	for i := range ops {
		op := &ops[i]
		b := s.bucketOf(m, op.Key)
		if op.Kind == BatchGet && s.cache != nil {
			if val, ok := s.cache.get(m, op.Key); ok {
				results[i] = BatchResult{Val: val}
				continue
			}
		}
		id := s.setGroupID(b)
		if _, seen := groups[id]; !seen {
			order = append(order, id)
		}
		groups[id] = append(groups[id], batchPos{idx: i, bucket: b})
	}
	for _, id := range order {
		if gerr := s.guard(); gerr != nil {
			// The partition isolated itself (either before this batch or
			// from an earlier group in it): fail the remaining groups fast,
			// with the retryable ErrRebuilding when a rebuild is in flight.
			for _, g := range groups[id] {
				results[g.idx].Err = gerr
			}
			continue
		}
		s.applySetGroup(m, groups[id], ops, results)
	}
}

// applySetGroup runs every op touching one bucket set: collect the set's
// MAC material once, verify it against the in-enclave MAC hash once,
// apply each op against the verified in-enclave view, and write the
// recomputed hash back once. Equivalent to the per-op protocol because
// the view is the enclave's authoritative copy between the initial
// verification and the final commit — no unverified untrusted state is
// ever trusted in between (the partition is single-owner, §5.3).
func (s *Store) applySetGroup(m *sim.Meter, group []batchPos, ops []BatchOp, results []BatchResult) {
	v, err := s.collectSet(m, group[0].bucket)
	if err == nil {
		err = s.verifySet(m, &v)
	}
	if err != nil {
		// The whole set failed authentication: every op that needed this
		// set is affected — and only those.
		s.noteErr(m, err)
		for _, g := range group {
			results[g.idx].Err = err
		}
		return
	}

	dirty := false
	var poisoned error
	for _, g := range group {
		r := &results[g.idx]
		if poisoned != nil {
			r.Err = poisoned
			continue
		}
		op := &ops[g.idx]
		switch op.Kind {
		case BatchGet:
			r.Val, r.Err = s.getInView(m, &v, g.bucket, op.Key)
		case BatchSet:
			val := op.Value
			r.Err = s.mutateInView(m, &v, g.bucket, op.Key, false, func(_ []byte, _ bool) ([]byte, error) {
				return val, nil
			})
			dirty = dirty || r.Err == nil
		case BatchDelete:
			r.Err = s.deleteInView(m, &v, g.bucket, op.Key)
			dirty = dirty || r.Err == nil
		case BatchAppend:
			r.Err = s.mutateInView(m, &v, g.bucket, op.Key, true, appendMutator(op.Value))
			dirty = dirty || r.Err == nil
		case BatchIncr:
			r.Err = s.mutateInView(m, &v, g.bucket, op.Key, true, incrMutator(op.Delta, &r.Num))
			dirty = dirty || r.Err == nil
		default:
			r.Err = ErrBadBatchOp
		}
		s.noteErr(m, r.Err)
		if errors.Is(r.Err, ErrCorruptPointer) {
			// A corrupt untrusted pointer can surface mid-mutation, so the
			// chain may be half-rewritten; applying further ops to this
			// set would compound the damage. Fail the rest of the group.
			poisoned = r.Err
		}
	}
	if dirty {
		s.writeSetHash(m, &v)
	}
}
