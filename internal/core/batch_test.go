package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"testing"

	"shieldstore/internal/sim"
)

func TestApplyBatchMixedCommands(t *testing.T) {
	for name, opts := range allConfigs() {
		t.Run(name, func(t *testing.T) {
			s, m := newTestStore(opts)
			must(t, s.Set(m, []byte("seed"), []byte("old")))
			must(t, s.Set(m, []byte("gone"), []byte("x")))

			rs := s.ApplyBatch(m, []BatchOp{
				{Kind: BatchSet, Key: []byte("a"), Value: []byte("1")},
				{Kind: BatchGet, Key: []byte("a")},
				{Kind: BatchAppend, Key: []byte("a"), Value: []byte("23")},
				{Kind: BatchGet, Key: []byte("a")},
				{Kind: BatchIncr, Key: []byte("ctr"), Delta: 5},
				{Kind: BatchIncr, Key: []byte("ctr"), Delta: -2},
				{Kind: BatchDelete, Key: []byte("gone")},
				{Kind: BatchGet, Key: []byte("gone")},
				{Kind: BatchGet, Key: []byte("seed")},
			})
			for i := range rs[:7] {
				must(t, rs[i].Err)
			}
			// Ops on the same key observe submission order.
			if string(rs[1].Val) != "1" {
				t.Fatalf("get after set = %q, want %q", rs[1].Val, "1")
			}
			if string(rs[3].Val) != "123" {
				t.Fatalf("get after append = %q, want %q", rs[3].Val, "123")
			}
			if rs[4].Num != 5 || rs[5].Num != 3 {
				t.Fatalf("incr results = %d, %d, want 5, 3", rs[4].Num, rs[5].Num)
			}
			if !errors.Is(rs[7].Err, ErrNotFound) {
				t.Fatalf("get after delete: err = %v, want ErrNotFound", rs[7].Err)
			}
			if string(rs[8].Val) != "old" {
				t.Fatalf("untouched key = %q, want %q", rs[8].Val, "old")
			}

			// The committed state is visible to single-op reads.
			v, err := s.Get(m, []byte("a"))
			must(t, err)
			if string(v) != "123" {
				t.Fatalf("post-batch Get = %q, want %q", v, "123")
			}
			if err := s.VerifyAll(m); err != nil {
				t.Fatalf("VerifyAll after batch: %v", err)
			}
		})
	}
}

func TestApplyBatchEmptyAndUnknownKind(t *testing.T) {
	s, m := newTestStore(Defaults(16))
	if rs := s.ApplyBatch(m, nil); len(rs) != 0 {
		t.Fatalf("empty batch returned %d results", len(rs))
	}
	rs := s.ApplyBatch(m, []BatchOp{
		{Kind: BatchKind(0xFF), Key: []byte("k")},
		{Kind: BatchSet, Key: []byte("k"), Value: []byte("v")},
	})
	if !errors.Is(rs[0].Err, ErrBadBatchOp) {
		t.Fatalf("unknown kind: err = %v, want ErrBadBatchOp", rs[0].Err)
	}
	// The bad op is isolated: the set beside it still lands.
	must(t, rs[1].Err)
	v, err := s.Get(m, []byte("k"))
	must(t, err)
	if string(v) != "v" {
		t.Fatalf("Get = %q, want %q", v, "v")
	}
}

func TestApplyBatchErrorIsolation(t *testing.T) {
	// One miss (and one bad Incr) must not fail the rest of the batch.
	for name, opts := range allConfigs() {
		t.Run(name, func(t *testing.T) {
			s, m := newTestStore(opts)
			must(t, s.Set(m, []byte("text"), []byte("not-a-number")))
			rs := s.ApplyBatch(m, []BatchOp{
				{Kind: BatchGet, Key: []byte("missing-1")},
				{Kind: BatchSet, Key: []byte("w"), Value: []byte("1")},
				{Kind: BatchIncr, Key: []byte("text"), Delta: 1},
				{Kind: BatchDelete, Key: []byte("missing-2")},
				{Kind: BatchGet, Key: []byte("w")},
			})
			if !errors.Is(rs[0].Err, ErrNotFound) {
				t.Fatalf("miss: err = %v, want ErrNotFound", rs[0].Err)
			}
			must(t, rs[1].Err)
			if !errors.Is(rs[2].Err, ErrNotNumeric) {
				t.Fatalf("incr on text: err = %v, want ErrNotNumeric", rs[2].Err)
			}
			if !errors.Is(rs[3].Err, ErrNotFound) {
				t.Fatalf("delete miss: err = %v, want ErrNotFound", rs[3].Err)
			}
			must(t, rs[4].Err)
			if string(rs[4].Val) != "1" {
				t.Fatalf("get w = %q, want %q", rs[4].Val, "1")
			}
		})
	}
}

// TestApplyBatchStateEquivalence drives identical random op streams
// through ApplyBatch on one store and the single-op API on another and
// requires bit-identical end state.
func TestApplyBatchStateEquivalence(t *testing.T) {
	for name, opts := range allConfigs() {
		t.Run(name, func(t *testing.T) {
			sb, mb := newTestStore(opts)
			ss, ms := newTestStore(opts)
			rng := rand.New(rand.NewSource(7))
			const rounds, batch, keySpace = 30, 16, 40

			for r := 0; r < rounds; r++ {
				ops := make([]BatchOp, batch)
				for i := range ops {
					key := []byte(fmt.Sprintf("k%02d", rng.Intn(keySpace)))
					switch rng.Intn(5) {
					case 0:
						ops[i] = BatchOp{Kind: BatchGet, Key: key}
					case 1:
						ops[i] = BatchOp{Kind: BatchSet, Key: key, Value: []byte(fmt.Sprintf("v%d", rng.Intn(1000)))}
					case 2:
						ops[i] = BatchOp{Kind: BatchDelete, Key: key}
					case 3:
						ops[i] = BatchOp{Kind: BatchAppend, Key: key, Value: []byte("+")}
					default:
						ops[i] = BatchOp{Kind: BatchIncr, Key: []byte(fmt.Sprintf("n%02d", rng.Intn(8))), Delta: int64(rng.Intn(9) - 4)}
					}
				}
				brs := sb.ApplyBatch(mb, ops)
				for i := range ops {
					op := &ops[i]
					var sr BatchResult
					switch op.Kind {
					case BatchGet:
						sr.Val, sr.Err = ss.Get(ms, op.Key)
					case BatchSet:
						sr.Err = ss.Set(ms, op.Key, op.Value)
					case BatchDelete:
						sr.Err = ss.Delete(ms, op.Key)
					case BatchAppend:
						sr.Err = ss.Append(ms, op.Key, op.Value)
					case BatchIncr:
						sr.Num, sr.Err = ss.Incr(ms, op.Key, op.Delta)
					}
					if !errors.Is(brs[i].Err, sr.Err) && !errors.Is(sr.Err, brs[i].Err) {
						t.Fatalf("round %d op %d: batch err %v, single err %v", r, i, brs[i].Err, sr.Err)
					}
					if !bytes.Equal(brs[i].Val, sr.Val) || brs[i].Num != sr.Num {
						t.Fatalf("round %d op %d: batch (%q,%d), single (%q,%d)",
							r, i, brs[i].Val, brs[i].Num, sr.Val, sr.Num)
					}
				}
			}
			if sb.Keys() != ss.Keys() {
				t.Fatalf("Keys: batch %d, single %d", sb.Keys(), ss.Keys())
			}
			if err := sb.VerifyAll(mb); err != nil {
				t.Fatalf("VerifyAll (batch store): %v", err)
			}
			err := ss.ForEachDecrypt(ms, func(k, v []byte) error {
				got, gerr := sb.Get(mb, k)
				if gerr != nil {
					return fmt.Errorf("batch store missing %q: %w", k, gerr)
				}
				if !bytes.Equal(got, v) {
					return fmt.Errorf("key %q: batch %q, single %q", k, got, v)
				}
				return nil
			})
			must(t, err)
		})
	}
}

// TestApplyBatchIntegrityIsolation tampers one bucket's sidecar MAC and
// checks that exactly the ops touching that bucket set report the
// violation while the rest of the batch proceeds. With the default
// MACHashes == Buckets a set is a single bucket, so "the set" is exactly
// the victim's bucket.
func TestApplyBatchIntegrityIsolation(t *testing.T) {
	opts := Defaults(64)
	s, m := newTestStore(opts)
	for i := 0; i < 50; i++ {
		must(t, s.Set(m, []byte(fmt.Sprintf("k%03d", i)), bytes.Repeat([]byte{byte(i)}, 16)))
	}
	victim := []byte("k025")
	vb := s.bucketOf(m, victim)
	res, err := s.search(m, vb, victim)
	must(t, err)
	addr, err := s.sidecarSlotAddr(m, vb, int(res.hdr.Slot))
	must(t, err)
	s.space.Tamper(addr, []byte{0xAA, 0xBB})

	// Build a batch over the victim plus keys from other buckets.
	ops := []BatchOp{{Kind: BatchGet, Key: victim}, {Kind: BatchSet, Key: victim, Value: []byte("z")}}
	var clean []int
	for i := 0; i < 50 && len(clean) < 6; i++ {
		key := []byte(fmt.Sprintf("k%03d", i))
		if s.setGroupID(s.bucketOf(m, key)) == s.setGroupID(vb) {
			continue
		}
		clean = append(clean, len(ops))
		ops = append(ops, BatchOp{Kind: BatchGet, Key: key})
	}
	if len(clean) == 0 {
		t.Fatal("no clean-bucket keys found")
	}

	rs := s.ApplyBatch(m, ops)
	for _, i := range []int{0, 1} {
		if !errors.Is(rs[i].Err, ErrIntegrity) {
			t.Fatalf("victim op %d: err = %v, want ErrIntegrity", i, rs[i].Err)
		}
	}
	for _, i := range clean {
		if rs[i].Err != nil {
			t.Fatalf("clean op %d: err = %v, want nil", i, rs[i].Err)
		}
	}
}

// TestApplyBatchAmortizesCycles checks the point of the tentpole: N ops
// landing in one bucket set cost fewer virtual cycles as one batch than as
// N single-op requests.
func TestApplyBatchAmortizesCycles(t *testing.T) {
	build := func() (*Store, *sim.Meter, []BatchOp) {
		opts := Defaults(4) // few buckets: ops share sets
		opts.MACHashes = 2
		s, m := newTestStore(opts)
		for i := 0; i < 32; i++ {
			must(t, s.Set(m, []byte(fmt.Sprintf("k%02d", i)), bytes.Repeat([]byte{1}, 32)))
		}
		m.Reset()
		ops := make([]BatchOp, 32)
		for i := range ops {
			ops[i] = BatchOp{Kind: BatchSet, Key: []byte(fmt.Sprintf("k%02d", i)), Value: bytes.Repeat([]byte{2}, 32)}
		}
		return s, m, ops
	}

	sb, mb, ops := build()
	sb.ApplyBatch(mb, ops)
	batched := mb.Cycles()

	ss, ms, _ := build()
	for i := range ops {
		must(t, ss.Set(ms, ops[i].Key, ops[i].Value))
	}
	single := ms.Cycles()

	if batched >= single {
		t.Fatalf("batched %d cycles >= single-op %d cycles", batched, single)
	}
	t.Logf("batch=32 same-set Sets: %d cycles batched vs %d single (%.2fx)",
		batched, single, float64(single)/float64(batched))
}
