// Allocation benchmarks for the worker-pool dispatch path: what one
// Get/Set through Partitioned costs beyond the raw Store operation.
//
// Run with:
//
//	go test ./internal/core -run='^$' -bench=Dispatch -benchmem
package core

import (
	"fmt"
	"testing"

	"shieldstore/internal/sim"
)

func benchPartitioned(b *testing.B) (*Partitioned, *sim.Meter) {
	b.Helper()
	e := testEnclave(64 << 20)
	p := NewPartitioned(e, 4, Defaults(4096))
	p.Start()
	b.Cleanup(p.Stop)
	m := sim.NewMeter(e.Model())
	for i := 0; i < 1024; i++ {
		if err := p.Set(m, dispatchKey(i), dispatchVal(i)); err != nil {
			b.Fatal(err)
		}
	}
	return p, m
}

func dispatchKey(i int) []byte { return []byte(fmt.Sprintf("dk-%05d", i%1024)) }

func dispatchVal(i int) []byte {
	v := make([]byte, 128)
	for j := range v {
		v[j] = byte(i + j)
	}
	return v
}

// BenchmarkDispatchGet measures one Get through the worker pool.
func BenchmarkDispatchGet(b *testing.B) {
	p, m := benchPartitioned(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Get(m, dispatchKey(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDispatchSet measures one Set through the worker pool.
func BenchmarkDispatchSet(b *testing.B) {
	p, m := benchPartitioned(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := p.Set(m, dispatchKey(i), dispatchVal(i)); err != nil {
			b.Fatal(err)
		}
	}
}
