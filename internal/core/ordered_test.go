package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sort"
	"testing"

	"shieldstore/internal/entry"
	"shieldstore/internal/sim"
)

func rangeStore(t *testing.T) (*Store, *sim.Meter) {
	t.Helper()
	opts := Defaults(64)
	opts.RangeIndex = true
	return newTestStore(opts)
}

func TestRangeBasic(t *testing.T) {
	s, m := rangeStore(t)
	for i := 0; i < 50; i++ {
		must(t, s.Set(m, []byte(fmt.Sprintf("key-%03d", i)), []byte(fmt.Sprintf("v%03d", i))))
	}
	kvs, err := s.Range(m, []byte("key-010"), []byte("key-020"), 0)
	must(t, err)
	if len(kvs) != 10 {
		t.Fatalf("range returned %d pairs, want 10", len(kvs))
	}
	for i, kv := range kvs {
		wantK := fmt.Sprintf("key-%03d", 10+i)
		if string(kv.Key) != wantK {
			t.Fatalf("pair %d: key %q, want %q (order broken)", i, kv.Key, wantK)
		}
		if string(kv.Value) != fmt.Sprintf("v%03d", 10+i) {
			t.Fatalf("pair %d: wrong value %q", i, kv.Value)
		}
	}
}

func TestRangeBounds(t *testing.T) {
	s, m := rangeStore(t)
	for _, k := range []string{"a", "b", "c", "d"} {
		must(t, s.Set(m, []byte(k), []byte("v")))
	}
	// Empty end = unbounded.
	kvs, err := s.Range(m, []byte("b"), nil, 0)
	must(t, err)
	if len(kvs) != 3 || string(kvs[0].Key) != "b" || string(kvs[2].Key) != "d" {
		t.Fatalf("unbounded range wrong: %d pairs", len(kvs))
	}
	// Limit.
	kvs, err = s.Range(m, nil, nil, 2)
	must(t, err)
	if len(kvs) != 2 || string(kvs[0].Key) != "a" || string(kvs[1].Key) != "b" {
		t.Fatalf("limited range wrong")
	}
	// Empty window.
	kvs, err = s.Range(m, []byte("x"), []byte("z"), 0)
	must(t, err)
	if len(kvs) != 0 {
		t.Fatalf("empty window returned %d pairs", len(kvs))
	}
}

func TestRangeDisabled(t *testing.T) {
	s, m := newTestStore(Defaults(16))
	if _, err := s.Range(m, nil, nil, 0); !errors.Is(err, ErrNoRangeIndex) {
		t.Fatalf("err = %v, want ErrNoRangeIndex", err)
	}
}

func TestRangeTracksMutations(t *testing.T) {
	s, m := rangeStore(t)
	must(t, s.Set(m, []byte("k1"), []byte("a")))
	must(t, s.Set(m, []byte("k2"), []byte("b")))
	must(t, s.Set(m, []byte("k3"), []byte("c")))
	must(t, s.Delete(m, []byte("k2")))
	must(t, s.Set(m, []byte("k1"), []byte("a2"))) // update must not duplicate

	kvs, err := s.Range(m, nil, nil, 0)
	must(t, err)
	if len(kvs) != 2 {
		t.Fatalf("%d pairs after delete+update, want 2", len(kvs))
	}
	if string(kvs[0].Key) != "k1" || string(kvs[0].Value) != "a2" {
		t.Fatalf("k1 wrong: %q=%q", kvs[0].Key, kvs[0].Value)
	}
	if string(kvs[1].Key) != "k3" {
		t.Fatalf("k3 missing")
	}
}

func TestRangeModelBased(t *testing.T) {
	s, m := rangeStore(t)
	ref := map[string][]byte{}
	rng := rand.New(rand.NewSource(31))
	for step := 0; step < 1500; step++ {
		k := fmt.Sprintf("key%03d", rng.Intn(150))
		switch rng.Intn(4) {
		case 0, 1:
			v := make([]byte, rng.Intn(40))
			rng.Read(v)
			must(t, s.Set(m, []byte(k), v))
			ref[k] = v
		case 2:
			err := s.Delete(m, []byte(k))
			if _, ok := ref[k]; ok {
				must(t, err)
				delete(ref, k)
			} else if !errors.Is(err, ErrNotFound) {
				t.Fatal(err)
			}
		case 3:
			lo := fmt.Sprintf("key%03d", rng.Intn(150))
			hi := fmt.Sprintf("key%03d", rng.Intn(150))
			if lo > hi {
				lo, hi = hi, lo
			}
			kvs, err := s.Range(m, []byte(lo), []byte(hi), 0)
			must(t, err)
			var want []string
			for k := range ref {
				if k >= lo && k < hi {
					want = append(want, k)
				}
			}
			sort.Strings(want)
			if len(kvs) != len(want) {
				t.Fatalf("step %d: range [%s,%s) -> %d pairs, want %d", step, lo, hi, len(kvs), len(want))
			}
			for i := range want {
				if string(kvs[i].Key) != want[i] || !bytes.Equal(kvs[i].Value, ref[want[i]]) {
					t.Fatalf("step %d: pair %d mismatch", step, i)
				}
			}
		}
	}
	must(t, s.VerifyAll(m))
}

func TestRangeValuesIntegrityVerified(t *testing.T) {
	// Range fetches go through Get, so tampering an entry surfaces as
	// ErrIntegrity from the range call.
	s, m := rangeStore(t)
	for i := 0; i < 10; i++ {
		must(t, s.Set(m, []byte(fmt.Sprintf("k%02d", i)), []byte("value")))
	}
	key := []byte("k05")
	b := s.bucketOf(m, key)
	res, err := s.search(m, b, key)
	must(t, err)
	s.space.Tamper(res.addr+entry.HeaderSize+2, []byte{0xFF})
	if _, err := s.Range(m, nil, nil, 0); err == nil {
		t.Fatal("range served tampered data")
	}
}

func TestRangeSurvivesRestore(t *testing.T) {
	opts := Defaults(16)
	opts.RangeIndex = true
	s, m := newTestStore(opts)
	for i := 0; i < 40; i++ {
		must(t, s.Set(m, []byte(fmt.Sprintf("k%02d", i)), []byte("v")))
	}
	var dumps [][][]byte
	var bIDs []int
	must(t, s.ForEachBucketRaw(func(b int, entries [][]byte) error {
		cp := make([][]byte, len(entries))
		for i := range entries {
			cp[i] = append([]byte(nil), entries[i]...)
		}
		dumps = append(dumps, cp)
		bIDs = append(bIDs, b)
		return nil
	}))
	s2 := New(s.Enclave(), entry.NewCipherFromKeys(s.Enclave(), s.Cipher().ExportKeys()), opts)
	m2 := sim.NewMeter(s.Enclave().Model())
	for i := range dumps {
		must(t, s2.RestoreBucket(m2, bIDs[i], dumps[i]))
	}
	must(t, s2.ImportMACHashes(m2, s.ExportMACHashes()))
	must(t, s2.VerifyAll(m2))

	kvs, err := s2.Range(m2, []byte("k10"), []byte("k15"), 0)
	must(t, err)
	if len(kvs) != 5 {
		t.Fatalf("restored range: %d pairs, want 5", len(kvs))
	}
}

func TestOrderedIndexChargesEnclaveCosts(t *testing.T) {
	s, m := rangeStore(t)
	for i := 0; i < 100; i++ {
		must(t, s.Set(m, []byte(fmt.Sprintf("k%03d", i)), []byte("v")))
	}
	before := m.Cycles()
	_, err := s.Range(m, nil, nil, 0)
	must(t, err)
	if m.Cycles() == before {
		t.Fatal("range scan charged nothing")
	}
	if s.ordered.Len() != 100 {
		t.Fatalf("index size %d", s.ordered.Len())
	}
}

func TestSkiplistLevelsBounded(t *testing.T) {
	ix := newOrderedIndex(testEnclave(4 << 20).Space())
	m := sim.NewMeter(ix.model)
	for i := 0; i < 5000; i++ {
		ix.insert(m, []byte(fmt.Sprintf("%06d", i)))
	}
	if ix.level < 2 || ix.level > skipMaxLevel {
		t.Fatalf("level = %d", ix.level)
	}
	if ix.Len() != 5000 {
		t.Fatalf("len = %d", ix.Len())
	}
	// Duplicate insert is a no-op.
	ix.insert(m, []byte("000000"))
	if ix.Len() != 5000 {
		t.Fatal("duplicate insert changed size")
	}
	// Remove absent is a no-op.
	ix.remove(m, []byte("zzz"))
	if ix.Len() != 5000 {
		t.Fatal("remove absent changed size")
	}
}
