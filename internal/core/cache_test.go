package core

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"shieldstore/internal/sim"
)

func cacheStore(budget int64) (*Store, *sim.Meter) {
	opts := Defaults(32)
	opts.CacheBytes = budget
	return newTestStore(opts)
}

func TestCacheHitSkipsDecryption(t *testing.T) {
	s, m := cacheStore(1 << 20)
	key, val := []byte("hot"), []byte("value-in-cache")
	must(t, s.Set(m, key, val))

	// First get fills the cache (one decrypt).
	got, err := s.Get(m, key)
	must(t, err)
	if !bytes.Equal(got, val) {
		t.Fatal("first get mismatch")
	}
	before := m.Events(sim.CtrDecrypt)
	for i := 0; i < 10; i++ {
		got, err = s.Get(m, key)
		must(t, err)
		if !bytes.Equal(got, val) {
			t.Fatal("cached get mismatch")
		}
	}
	if m.Events(sim.CtrDecrypt) != before {
		t.Fatalf("cache hits decrypted: %d -> %d", before, m.Events(sim.CtrDecrypt))
	}
	if m.Events(sim.CtrCacheHit) < 10 {
		t.Fatalf("cache hits = %d, want >= 10", m.Events(sim.CtrCacheHit))
	}
}

func TestCacheWriteThrough(t *testing.T) {
	s, m := cacheStore(1 << 20)
	key := []byte("k")
	must(t, s.Set(m, key, []byte("old")))
	_, err := s.Get(m, key) // warm cache
	must(t, err)
	must(t, s.Set(m, key, []byte("new")))
	got, err := s.Get(m, key)
	must(t, err)
	if string(got) != "new" {
		t.Fatalf("stale cache after update: %q", got)
	}
	// Size-changing update too.
	must(t, s.Set(m, key, []byte("much-longer-value")))
	got, err = s.Get(m, key)
	must(t, err)
	if string(got) != "much-longer-value" {
		t.Fatalf("stale cache after resize: %q", got)
	}
}

func TestCacheInvalidatedOnDelete(t *testing.T) {
	s, m := cacheStore(1 << 20)
	key := []byte("k")
	must(t, s.Set(m, key, []byte("v")))
	_, err := s.Get(m, key)
	must(t, err)
	must(t, s.Delete(m, key))
	if _, err := s.Get(m, key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key served from cache: %v", err)
	}
}

func TestCacheEvictionUnderBudget(t *testing.T) {
	// Budget for only a handful of 64+-byte slabs.
	s, m := cacheStore(1024)
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("k%02d", i))
		must(t, s.Set(m, k, bytes.Repeat([]byte{1}, 40)))
		_, err := s.Get(m, k)
		must(t, err)
	}
	if s.cache.used > 1024 {
		t.Fatalf("cache used %d > budget 1024", s.cache.used)
	}
	if s.cache.Len() == 0 {
		t.Fatal("cache empty despite budget")
	}
	// Everything still correct after churn.
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("k%02d", i))
		got, err := s.Get(m, k)
		must(t, err)
		if len(got) != 40 {
			t.Fatalf("key %d wrong length %d", i, len(got))
		}
	}
}

func TestCacheLRUOrder(t *testing.T) {
	// Two-slab budget (64-byte slabs): inserting a third evicts the LRU.
	s, m := cacheStore(128)
	for _, k := range []string{"a", "b"} {
		must(t, s.Set(m, []byte(k), bytes.Repeat([]byte{2}, 50)))
		_, err := s.Get(m, []byte(k))
		must(t, err)
	}
	// Touch "a" so "b" becomes LRU.
	_, err := s.Get(m, []byte("a"))
	must(t, err)
	must(t, s.Set(m, []byte("c"), bytes.Repeat([]byte{3}, 50)))
	_, err = s.Get(m, []byte("c")) // fills cache, evicting "b"
	must(t, err)

	base := m.Events(sim.CtrCacheMiss)
	_, err = s.Get(m, []byte("a"))
	must(t, err)
	if m.Events(sim.CtrCacheMiss) != base {
		t.Fatal("recently-used item was evicted")
	}
	_, err = s.Get(m, []byte("b"))
	must(t, err)
	if m.Events(sim.CtrCacheMiss) != base+1 {
		t.Fatal("LRU item was not evicted")
	}
}

func TestCacheOversizedValueBypasses(t *testing.T) {
	s, m := cacheStore(128)
	key := []byte("big")
	must(t, s.Set(m, key, bytes.Repeat([]byte{9}, 4096)))
	got, err := s.Get(m, key)
	must(t, err)
	if len(got) != 4096 {
		t.Fatal("big value corrupted")
	}
	if s.cache.Len() != 0 {
		t.Fatal("oversized value cached past budget")
	}
}

func TestSlabSize(t *testing.T) {
	cases := map[int]int{1: 64, 64: 64, 65: 128, 128: 128, 1000: 1024}
	for n, want := range cases {
		if got := slabSize(n); got != want {
			t.Errorf("slabSize(%d) = %d, want %d", n, got, want)
		}
	}
}

// TestCacheGrownItemSurvivesRealloc pins the self-eviction bug: growing a
// cached item into a larger slab class used to let the eviction loop pick
// the item itself, after which the caller relinked the removed item — a
// ghost in the LRU list with a freed slab whose accounting drift made
// put() spin forever. The grown item must either stay cached and correct,
// or be dropped cleanly when it outgrows the whole budget.
func TestCacheGrownItemSurvivesRealloc(t *testing.T) {
	s, m := cacheStore(1 << 10)
	// Fill with small items so the budget is tight.
	for i := 0; i < 8; i++ {
		key := []byte(fmt.Sprintf("pad-%d", i))
		must(t, s.Set(m, key, bytes.Repeat([]byte{1}, 64)))
		_, err := s.Get(m, key)
		must(t, err)
	}
	// Grow one cached item to most of the budget (write-through update
	// reallocates its slab and must evict only the others).
	key := []byte("pad-0")
	big := bytes.Repeat([]byte{2}, 700)
	must(t, s.Set(m, key, big))
	got, err := s.Get(m, key)
	must(t, err)
	if !bytes.Equal(got, big) {
		t.Fatalf("grown item wrong: %d bytes", len(got))
	}
	// Grow past the whole budget: the item is dropped from the cache but
	// the store stays correct and the cache stays usable.
	huge := bytes.Repeat([]byte{3}, 2048)
	must(t, s.Set(m, key, huge))
	got, err = s.Get(m, key)
	must(t, err)
	if !bytes.Equal(got, huge) {
		t.Fatalf("outgrown item wrong: %d bytes", len(got))
	}
	// The cache still admits and serves fresh traffic.
	for i := 0; i < 32; i++ {
		k := []byte(fmt.Sprintf("after-%d", i))
		must(t, s.Set(m, k, bytes.Repeat([]byte{4}, 64)))
		if _, err := s.Get(m, k); err != nil {
			t.Fatal(err)
		}
	}
	if s.cache.used < 0 || s.cache.used > s.cache.budget {
		t.Fatalf("cache accounting drifted: used=%d budget=%d", s.cache.used, s.cache.budget)
	}
}
