package core

import (
	"shieldstore/internal/mem"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
)

// epcCache is the optional plaintext cache of §6.3 ("ShieldOpt+cache"): it
// spends EPC memory left over after the MAC hashes on decrypted entries,
// so small working sets skip the decrypt+verify path entirely and match
// Eleos's in-EPC performance (Figure 17, left side).
//
// Cached values are stored in simulated *enclave* memory, so a cache
// budget that exceeds the remaining EPC simply pages — the cache cannot
// cheat the hardware model.
type epcCache struct {
	space  *mem.Space
	model  *sim.CostModel
	budget int64
	used   int64

	items map[string]*cacheItem
	head  *cacheItem // most recently used
	tail  *cacheItem // least recently used

	// free lists recycle enclave slabs by rounded size class.
	free map[int][]mem.Addr

	// Admission control: when the working set dwarfs the cache, filling
	// on every miss only burns enclave bandwidth. After the cache has
	// churned through its capacity a few times with a negligible hit
	// rate, admission drops to 1-in-16 sampling (staying adaptive in
	// case the working set shrinks).
	hits, misses, fills uint64
}

// admissionSampling reports whether the cache should only sample inserts.
func (c *epcCache) admissionSampling() bool {
	if c.fills < 4*uint64(len(c.items)+1) || c.fills < 256 {
		return false // still warming
	}
	return c.hits*20 < c.misses // observed hit rate below ~5%
}

type cacheItem struct {
	key        string
	val        []byte
	addr       mem.Addr // enclave slab backing this item
	slab       int      // rounded slab size
	prev, next *cacheItem
}

func newEPCCache(e *sgx.Enclave, budget int64) *epcCache {
	return &epcCache{
		space:  e.Space(),
		model:  e.Model(),
		budget: budget,
		items:  map[string]*cacheItem{},
		free:   map[int][]mem.Addr{},
	}
}

// slabSize rounds an item footprint to a power-of-two-ish class so freed
// slabs are reusable.
func slabSize(n int) int {
	c := 64
	for c < n {
		c *= 2
	}
	return c
}

// get returns the cached value, touching the backing enclave memory (which
// charges EPC-resident or fault costs through the hardware model).
func (c *epcCache) get(m *sim.Meter, key []byte) ([]byte, bool) {
	m.Charge(c.model.CacheAccess) // map probe
	it, ok := c.items[string(key)]
	if !ok {
		m.Count(sim.CtrCacheMiss)
		c.misses++
		return nil, false
	}
	m.Count(sim.CtrCacheHit)
	c.hits++
	buf := make([]byte, len(it.val))
	c.space.Read(m, it.addr, buf)
	c.moveToFront(it)
	return buf, true
}

// put inserts or refreshes a cache entry after a successful Get.
func (c *epcCache) put(m *sim.Meter, key, val []byte) {
	if it, ok := c.items[string(key)]; ok {
		if c.store(m, it, val) {
			c.moveToFront(it)
		}
		return
	}
	need := int64(slabSize(len(key) + len(val)))
	if need > c.budget {
		return // larger than the whole cache
	}
	c.fills++
	if c.admissionSampling() && c.fills%16 != 0 {
		return
	}
	for c.used+need > c.budget && c.tail != nil {
		c.evict(m)
	}
	it := &cacheItem{key: string(key)}
	c.items[it.key] = it
	c.allocSlab(m, it, len(key)+len(val))
	c.used += int64(it.slab)
	c.storeVal(m, it, val)
	c.pushFront(it)
}

// update refreshes the cached value after a mutation (write-through).
func (c *epcCache) update(m *sim.Meter, key, val []byte) {
	it, ok := c.items[string(key)]
	if !ok {
		return
	}
	if c.store(m, it, val) {
		c.moveToFront(it)
	}
}

// invalidate drops a key (delete path).
func (c *epcCache) invalidate(m *sim.Meter, key []byte) {
	it, ok := c.items[string(key)]
	if !ok {
		return
	}
	c.remove(it)
}

// store rewrites an item's value, reallocating its slab when it no longer
// fits, and reports whether the item is still cached. The eviction loop
// must never pick the item being stored: the caller still holds it and
// would relink a removed item, leaving a ghost in the LRU list with a
// freed slab. An item that outgrew the whole budget is dropped instead.
func (c *epcCache) store(m *sim.Meter, it *cacheItem, val []byte) bool {
	need := len(it.key) + len(val)
	if slabSize(need) != it.slab {
		c.freeSlab(it)
		c.used -= int64(it.slab)
		c.allocSlab(m, it, need)
		c.used += int64(it.slab)
		for c.used > c.budget {
			if c.tail == it {
				if c.head == it {
					c.remove(it)
					return false
				}
				c.moveToFront(it)
				continue
			}
			c.evict(m)
		}
	}
	c.storeVal(m, it, val)
	return true
}

//ss:enclave-write — cache slabs are EPC-resident.
func (c *epcCache) storeVal(m *sim.Meter, it *cacheItem, val []byte) {
	it.val = append(it.val[:0], val...)
	// Touch the enclave slab so residency and cost are modeled.
	c.space.Write(m, it.addr, val)
}

func (c *epcCache) allocSlab(m *sim.Meter, it *cacheItem, n int) {
	size := slabSize(n)
	if size == 0 {
		size = 64
	}
	if fl := c.free[size]; len(fl) > 0 {
		it.addr = fl[len(fl)-1]
		c.free[size] = fl[:len(fl)-1]
	} else {
		it.addr = c.space.Alloc(mem.Enclave, size)
	}
	it.slab = size
	m.Charge(c.model.CacheAccess)
}

func (c *epcCache) freeSlab(it *cacheItem) {
	c.free[it.slab] = append(c.free[it.slab], it.addr)
}

func (c *epcCache) evict(m *sim.Meter) {
	if c.tail == nil {
		return
	}
	c.remove(c.tail)
	m.Charge(c.model.CacheAccess)
}

func (c *epcCache) remove(it *cacheItem) {
	c.unlink(it)
	delete(c.items, it.key)
	c.freeSlab(it)
	c.used -= int64(it.slab)
}

// --- intrusive LRU list ---

func (c *epcCache) pushFront(it *cacheItem) {
	it.prev = nil
	it.next = c.head
	if c.head != nil {
		c.head.prev = it
	}
	c.head = it
	if c.tail == nil {
		c.tail = it
	}
}

func (c *epcCache) unlink(it *cacheItem) {
	if it.prev != nil {
		it.prev.next = it.next
	} else {
		c.head = it.next
	}
	if it.next != nil {
		it.next.prev = it.prev
	} else {
		c.tail = it.prev
	}
	it.prev, it.next = nil, nil
}

func (c *epcCache) moveToFront(it *cacheItem) {
	if c.head == it {
		return
	}
	c.unlink(it)
	c.pushFront(it)
}

// Len reports the number of cached items (tests).
func (c *epcCache) Len() int { return len(c.items) }
