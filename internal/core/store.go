// Package core implements the ShieldStore engine — the paper's primary
// contribution (§4, §5).
//
// The main chained hash table lives entirely in *untrusted* memory; every
// data entry is individually encrypted and MACed by enclave code
// (internal/entry). Only the secret keys and the flattened-Merkle array of
// bucket-set MAC hashes (§4.3) are kept in enclave memory. The package
// also implements the paper's optimizations: the extra heap allocator
// (§5.1, internal/alloc), MAC bucketing (§5.2), hash-partitioned
// multithreading (§5.3, partition.go) and the 1-byte key hint with its
// two-step fallback search (§5.4), plus the optional EPC plaintext cache
// used in the Eleos comparison (§6.3, cache.go).
package core

import (
	"crypto/subtle"
	"errors"
	"fmt"
	"strconv"
	"sync/atomic"

	"shieldstore/internal/alloc"
	"shieldstore/internal/entry"
	"shieldstore/internal/fault"
	"shieldstore/internal/mem"
	"shieldstore/internal/merkle"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
	"shieldstore/internal/vlog"
)

// Errors returned by store operations.
var (
	// ErrNotFound reports a missing key.
	ErrNotFound = errors.New("shieldstore: key not found")
	// ErrIntegrity reports that untrusted memory failed MAC verification:
	// an entry, a MAC bucket, or a whole bucket set was tampered with or
	// replayed.
	ErrIntegrity = errors.New("shieldstore: integrity verification failed")
	// ErrCorruptPointer reports an untrusted pointer aliasing the enclave
	// address range (§7 pointer sanitization).
	ErrCorruptPointer = errors.New("shieldstore: untrusted pointer aliases enclave memory")
	// ErrNotNumeric reports an Incr on a non-numeric value.
	ErrNotNumeric = errors.New("shieldstore: value is not numeric")
	// ErrNoRangeIndex reports a Range call on a store built without
	// Options.RangeIndex.
	ErrNoRangeIndex = errors.New("shieldstore: range index not enabled")
)

// Options configures a Store. The zero value is unusable; use Defaults.
type Options struct {
	// Buckets is the number of hash buckets.
	Buckets int
	// MACHashes is the number of in-enclave MAC hash slots; must not
	// exceed Buckets. Each slot covers the bucket set {b : b ≡ slot
	// (mod MACHashes)}.
	MACHashes int
	// MACBucketCap is the number of MACs per MAC-bucket node (§5.2).
	MACBucketCap int
	// KeyHint enables the 1-byte key hint (§5.4).
	KeyHint bool
	// MACBucket enables MAC bucketing (§5.2). When disabled, bucket-set
	// verification chases entry chain pointers to gather MACs.
	MACBucket bool
	// ExtraHeap enables the §5.1 in-enclave allocator for untrusted
	// memory; when false every entry allocation is an OCALL.
	ExtraHeap bool
	// HeapChunk is the extra heap's sbrk granularity (default 16 MB).
	HeapChunk int
	// CacheBytes enables the in-enclave plaintext cache with the given
	// capacity (0 = disabled).
	CacheBytes int64
	// RangeIndex enables ordered range queries via an enclave-resident
	// skiplist over plaintext keys (the §7 future-work extension). Costs
	// EPC proportional to the key set; see internal/core/ordered.go.
	RangeIndex bool
	// Quarantine makes the partition isolate itself after the first
	// detected integrity violation: subsequent operations fail fast with
	// ErrQuarantined while sibling partitions keep serving (DESIGN.md
	// §10). Off by default — corruption tests probe a tampered store
	// repeatedly.
	Quarantine bool
	// MerkleTree replaces the flattened in-enclave MAC hashes (§4.3) with
	// the full Merkle tree the paper rejects: one leaf per bucket,
	// internal nodes in untrusted memory, only the 16-byte root in the
	// enclave. Exists to validate the paper's design choice by ablation
	// (BenchmarkAblationIntegrity); slower per §4.3's argument.
	MerkleTree bool
	// SpillThreshold is the minimum value size (bytes) eligible for
	// spilling to an attached value log (default 64). Inert until
	// AttachVLog installs a log.
	SpillThreshold int
	// MemBudget caps the inline (in-memory) value bytes before spilling
	// engages: values at or above SpillThreshold stay inline until the
	// budget is pressed. 0 means no budget — spill purely by threshold.
	MemBudget int64
}

// Defaults returns the ShieldOpt configuration for a given bucket count:
// all optimizations on, MAC hashes equal to buckets (capped), cache off.
func Defaults(buckets int) Options {
	return Options{
		Buckets:        buckets,
		MACHashes:      buckets,
		MACBucketCap:   30,
		KeyHint:        true,
		MACBucket:      true,
		ExtraHeap:      true,
		HeapChunk:      alloc.DefaultChunk,
		SpillThreshold: DefaultSpillThreshold,
	}
}

// DefaultSpillThreshold is the default minimum value size for value-log
// spilling (Options.SpillThreshold).
const DefaultSpillThreshold = 64

// Base returns the ShieldBase configuration: fine-grained encryption and
// integrity only, none of the §5 optimizations.
func Base(buckets int) Options {
	return Options{
		Buckets:      buckets,
		MACHashes:    buckets,
		MACBucketCap: 30,
	}
}

// MAC bucket node layout (untrusted memory):
//
//	0   8  next node address
//	8   4  count (head node only: MACs in this hash bucket)
//	12  4  reserved
//	16  -  MACs (MACBucketCap x 16 B)
const (
	macNodeHdr = 16
)

// Store is one ShieldStore instance (one partition in multithreaded
// deployments). A Store is not safe for concurrent use: the paper's
// hash-key partitioning gives every thread exclusive ownership of its
// partition precisely so no synchronization is needed (§5.3).
type Store struct {
	space   *mem.Space
	enclave *sgx.Enclave
	cipher  *entry.Cipher
	model   *sim.CostModel
	opts    Options

	heads    mem.Addr // untrusted: Buckets x 8 B chain heads
	macHeads mem.Addr // untrusted: Buckets x 8 B MAC-bucket heads (if enabled)
	macHash  mem.Addr // enclave: MACHashes x 16 B bucket-set MAC hashes

	heap    alloc.Allocator
	cache   *epcCache
	ordered *orderedIndex // non-nil when Options.RangeIndex
	tree    *merkle.Tree  // non-nil when Options.MerkleTree

	// Tiered hybrid storage (DESIGN.md §14): cold values live in the
	// untrusted value log, referenced by FlagSpilled pointer entries.
	vlog           *vlog.Log
	inlineValBytes int64 // in-memory value bytes (spill-budget accounting)

	keys int // number of live entries

	faults      *fault.Plane // optional injection plane (tests/experiments)
	quarantined atomic.Bool  // isolation latch (Options.Quarantine)
	rebuilding  atomic.Bool  // quarantined but a rebuild is in flight (scrub.go)
	journalLost atomic.Bool  // an attached op journal failed a write (partition.go)

	// quarantineHook, when set, runs once on the latch transition inside
	// noteErr (owner goroutine). Set before serving, like faults.
	quarantineHook func()

	// Background scrub cursor (scrub.go): next bucket-set index to verify
	// and completed full passes. Atomics because health probes read them
	// from other goroutines while the owning worker advances them.
	scrubPos    atomic.Int64
	scrubPasses atomic.Uint64

	// Cached setView backings. The Store is single-owner (§5.3) and at
	// most one view is live at a time, so collectSet reuses these across
	// operations instead of reallocating the four slices per request.
	// Regrown backings are written back in collectSet and writeSetHash.
	viewMacs    []byte
	viewBuckets []int
	viewOffs    []int
	viewCnts    []int
}

// New creates a store inside the given enclave. When cipher is nil a fresh
// key set is generated.
//
//ss:nopanic-ok(constructor contract; recovery paths validate decoded options in decodeMeta before calling)
func New(e *sgx.Enclave, cipher *entry.Cipher, opts Options) *Store {
	if opts.Buckets <= 0 {
		panic("core: Buckets must be positive")
	}
	if opts.MACHashes <= 0 || opts.MACHashes > opts.Buckets {
		opts.MACHashes = opts.Buckets
	}
	if opts.MerkleTree {
		// One leaf per bucket: the tree provides per-bucket granularity.
		opts.MACHashes = opts.Buckets
	}
	if opts.MACBucketCap <= 0 {
		opts.MACBucketCap = 30
	}
	if opts.SpillThreshold <= 0 {
		opts.SpillThreshold = DefaultSpillThreshold
	}
	setup := sim.NewMeter(e.Model())
	if cipher == nil {
		cipher = entry.NewCipher(e, setup)
	}
	s := &Store{
		space:   e.Space(),
		enclave: e,
		cipher:  cipher,
		model:   e.Model(),
		opts:    opts,
	}
	s.heads = s.space.Alloc(mem.Untrusted, opts.Buckets*8)
	if opts.MACBucket {
		s.macHeads = s.space.Alloc(mem.Untrusted, opts.Buckets*8)
	}
	if opts.MerkleTree {
		s.tree = merkle.New(s.space, cipher.MACEngine(), opts.Buckets)
	} else {
		// The MAC hash array is the dominant EPC consumer (§4.3); its
		// size is what Figure 15 sweeps. Zero-filled = "empty set".
		s.macHash = s.space.Alloc(mem.Enclave, opts.MACHashes*entry.MACSize)
	}
	if opts.ExtraHeap {
		s.heap = alloc.NewExtraHeap(e, opts.HeapChunk)
	} else {
		s.heap = alloc.NewOutside(e)
	}
	if opts.CacheBytes > 0 {
		s.cache = newEPCCache(e, opts.CacheBytes)
	}
	if opts.RangeIndex {
		s.ordered = newOrderedIndex(e.Space())
	}
	return s
}

// Options returns the store's configuration.
func (s *Store) Options() Options { return s.opts }

// Cipher returns the store's key material holder (for sealing).
func (s *Store) Cipher() *entry.Cipher { return s.cipher }

// Enclave returns the enclave the store runs in.
func (s *Store) Enclave() *sgx.Enclave { return s.enclave }

// Keys returns the number of live keys.
func (s *Store) Keys() int { return s.keys }

// Heap returns the untrusted-memory allocator (for Figure 6 stats).
func (s *Store) Heap() alloc.Allocator { return s.heap }

// bucketOf maps a key to its bucket via the keyed hash. The upper hash
// bits are used so that partition routing (low bits, partition.go) stays
// independent.
func (s *Store) bucketOf(m *sim.Meter, key []byte) int {
	h := s.cipher.BucketHash(m, key)
	return int((h >> 16) % uint64(s.opts.Buckets))
}

// headAddr returns the address of bucket b's chain head pointer.
func (s *Store) headAddr(b int) mem.Addr { return s.heads + mem.Addr(b*8) }

// macHeadAddr returns the address of bucket b's MAC-bucket head pointer.
func (s *Store) macHeadAddr(b int) mem.Addr { return s.macHeads + mem.Addr(b*8) }

// macHashAddr returns the enclave address of MAC hash slot i.
func (s *Store) macHashAddr(i int) mem.Addr {
	return s.macHash + mem.Addr(i*entry.MACSize)
}

// readPtr loads and sanitizes an untrusted chain pointer: it must not
// alias the enclave range (§7) and must point into allocated untrusted
// memory — a wild pointer would fault the process (availability attack).
func (s *Store) readPtr(m *sim.Meter, a mem.Addr) (mem.Addr, error) {
	p := mem.Addr(s.space.ReadU64(m, a))
	if err := mem.CheckUntrusted(p); err != nil {
		return 0, ErrCorruptPointer
	}
	if p != 0 && !s.space.InAllocated(p, entry.HeaderSize) {
		return 0, ErrCorruptPointer
	}
	return p, nil
}

// checkSpan validates that an untrusted read of n bytes at a stays inside
// allocated memory (tampered size fields could otherwise walk off the
// heap).
func (s *Store) checkSpan(a mem.Addr, n int) error {
	if !s.space.InAllocated(a, n) {
		return ErrCorruptPointer
	}
	return nil
}

// lookup is the result of a chain search.
type lookup struct {
	bucket   int
	found    bool
	addr     mem.Addr // entry address
	prevLink mem.Addr // address of the pointer linking to this entry
	hdr      entry.Header
	val      []byte // decrypted value (valid when found)
	chainIdx int    // position from head (for chain-ordered MAC sets)
	chainLen int    // entries walked in the bucket (>= chainIdx+1)
}

// search walks bucket b's chain looking for key. With key hints enabled it
// first decrypts only hint-matching candidates; if that pass misses, the
// two-step fallback (§5.4) decrypts everything, which both serves inserts
// and defeats hint-corruption availability attacks.
func (s *Store) search(m *sim.Meter, b int, key []byte) (lookup, error) {
	hint := byte(0)
	if s.opts.KeyHint {
		hint = s.cipher.KeyHint(m, key)
	}
	res, err := s.walk(m, b, key, s.opts.KeyHint, hint)
	if err != nil || res.found || !s.opts.KeyHint {
		return res, err
	}
	// Two-step fallback: full decrypting search.
	return s.walk(m, b, key, false, 0)
}

// walk performs one pass over the chain. useHint limits decryption to
// hint-matching entries.
func (s *Store) walk(m *sim.Meter, b int, key []byte, useHint bool, hint byte) (lookup, error) {
	res := lookup{bucket: b}
	link := s.headAddr(b)
	cur, err := s.readPtr(m, link)
	if err != nil {
		return res, err
	}
	var hdrBuf [entry.HeaderSize]byte
	idx := 0
	for cur != 0 {
		m.Count(sim.CtrEntryVisited)
		s.space.Read(m, cur, hdrBuf[:])
		hdr := entry.ParseHeader(hdrBuf[:])
		if err := mem.CheckUntrusted(hdr.Next); err != nil {
			return res, ErrCorruptPointer
		}
		if hdr.Next != 0 && !s.space.InAllocated(hdr.Next, entry.HeaderSize) {
			return res, ErrCorruptPointer
		}
		// Sanity-bound sizes before trusting them for a read.
		if hdr.CTLen() > 64<<20 {
			return res, ErrIntegrity
		}
		if err := s.checkSpan(cur+entry.HeaderSize, hdr.CTLen()); err != nil {
			return res, err
		}
		tryDecrypt := !useHint || hdr.KeyHint == hint
		if tryDecrypt && int(hdr.KeySize) == len(key) {
			ctp := getScratch(hdr.CTLen())
			ct := *ctp
			s.space.Read(m, cur+entry.HeaderSize, ct)
			ptp := getScratch(len(ct))
			pt := *ptp
			s.cipher.DecryptKV(m, &hdr.IV, ct, pt)
			putScratch(ctp)
			if string(pt[:hdr.KeySize]) == string(key) {
				res.found = true
				res.addr = cur
				res.prevLink = link
				res.hdr = hdr
				// The value escapes to the caller, so this one plaintext
				// buffer is not returned to the pool.
				res.val = pt[hdr.KeySize:]
				res.chainIdx = idx
				res.chainLen = idx + 1
				return res, nil
			}
			putScratch(ptp)
		}
		link = cur + entry.OffNext
		cur = hdr.Next
		idx++
		if idx > s.keys {
			// No chain can hold more than every live entry: a longer walk
			// means the host spliced a cycle or grafted foreign nodes.
			return res, ErrIntegrity
		}
	}
	res.chainLen = idx
	return res, nil
}

// setView is the gathered MAC material of one bucket set, used both to
// verify the current in-enclave MAC hash and to splice in a mutation
// without a second collection pass.
type setView struct {
	macIdx  int
	macs    []byte // concatenated entry MACs, canonical order
	buckets []int  // buckets in the set, ascending
	offs    []int  // byte offset of each bucket's first MAC in macs
	cnts    []int  // entry count per bucket
}

// bucketOffset returns the offset and count of bucket b inside the view.
// ok is false when b is not covered by the view — a state only tampered
// metadata can produce, so callers surface it as ErrIntegrity.
func (v *setView) bucketOffset(b int) (off, cnt int, ok bool) {
	for i, bb := range v.buckets {
		if bb == b {
			return v.offs[i], v.cnts[i], true
		}
	}
	return 0, 0, false
}

// collectSet gathers the MACs of every bucket covered by b's MAC hash
// slot. With MAC bucketing the sidecar arrays are read (few sequential
// reads); without it, every entry chain is pointer-chased and each entry's
// MAC field read individually — the §5.2 overhead.
func (s *Store) collectSet(m *sim.Meter, b int) (setView, error) {
	v := setView{
		macs:    s.viewMacs[:0],
		buckets: s.viewBuckets[:0],
		offs:    s.viewOffs[:0],
		cnts:    s.viewCnts[:0],
	}
	err := s.collectSetInto(m, b, &v)
	// Write the (possibly regrown) backings back so the next collection
	// starts from the largest capacity seen.
	s.viewMacs, s.viewBuckets, s.viewOffs, s.viewCnts = v.macs, v.buckets, v.offs, v.cnts
	return v, err
}

func (s *Store) collectSetInto(m *sim.Meter, b int, v *setView) error {
	s.injectFaults(m, b)
	if s.tree != nil {
		// Merkle mode: every bucket is its own leaf.
		v.macIdx = b
		v.buckets = append(v.buckets, b)
		v.offs = append(v.offs, 0)
		var cnt int
		var err error
		if s.opts.MACBucket {
			v.macs, cnt, err = s.readMACBucket(m, b, v.macs)
		} else {
			v.macs, cnt, err = s.readChainMACs(m, b, v.macs)
		}
		if err != nil {
			return err
		}
		v.cnts = append(v.cnts, cnt)
		return nil
	}
	v.macIdx = b % s.opts.MACHashes
	for bb := v.macIdx; bb < s.opts.Buckets; bb += s.opts.MACHashes {
		v.buckets = append(v.buckets, bb)
		v.offs = append(v.offs, len(v.macs))
		var cnt int
		var err error
		if s.opts.MACBucket {
			v.macs, cnt, err = s.readMACBucket(m, bb, v.macs)
		} else {
			v.macs, cnt, err = s.readChainMACs(m, bb, v.macs)
		}
		if err != nil {
			return err
		}
		v.cnts = append(v.cnts, cnt)
	}
	return nil
}

// readMACBucket appends bucket bb's sidecar MACs (slot order) to dst.
func (s *Store) readMACBucket(m *sim.Meter, bb int, dst []byte) ([]byte, int, error) {
	node, err := s.readPtr(m, s.macHeadAddr(bb))
	if err != nil {
		return dst, 0, err
	}
	if node == 0 {
		return dst, 0, nil
	}
	var cntBuf [4]byte
	s.space.Read(m, node+8, cntBuf[:])
	cnt := int(leU32(cntBuf[:]))
	if cnt < 0 || cnt > 1<<24 {
		return dst, 0, ErrIntegrity
	}
	remaining := cnt
	for node != 0 && remaining > 0 {
		take := remaining
		if take > s.opts.MACBucketCap {
			take = s.opts.MACBucketCap
		}
		// Grow dst and read the node's MACs straight into the tail —
		// no per-node staging buffer. A tampered node pointer may land on
		// an allocation too small for a full MAC area.
		if err := s.checkSpan(node+macNodeHdr, take*entry.MACSize); err != nil {
			return dst, 0, err
		}
		off := len(dst)
		dst = growBytes(dst, take*entry.MACSize)
		s.space.Read(m, node+macNodeHdr, dst[off:])
		remaining -= take
		node, err = s.readPtr(m, node)
		if err != nil {
			return dst, 0, err
		}
	}
	if remaining > 0 {
		return dst, 0, ErrIntegrity // sidecar chain shorter than its count
	}
	return dst, cnt, nil
}

// readChainMACs appends bucket bb's entry MACs in chain order to dst by
// walking the data entries themselves.
func (s *Store) readChainMACs(m *sim.Meter, bb int, dst []byte) ([]byte, int, error) {
	cur, err := s.readPtr(m, s.headAddr(bb))
	if err != nil {
		return dst, 0, err
	}
	cnt := 0
	var macBuf [entry.MACSize]byte
	for cur != 0 {
		s.space.Read(m, cur+entry.OffMAC, macBuf[:])
		dst = append(dst, macBuf[:]...)
		cnt++
		cur, err = s.readPtr(m, cur+entry.OffNext)
		if err != nil {
			return dst, 0, err
		}
		if cnt > s.keys {
			return dst, 0, ErrIntegrity // cycle in tampered chain
		}
	}
	return dst, cnt, nil
}

// verifySet checks the collected MACs against the in-enclave MAC hash.
// The enclave-side read is a real enclave memory access, so large MAC hash
// arrays push into EPC paging exactly as Figure 15 shows.
func (s *Store) verifySet(m *sim.Meter, v *setView) error {
	if s.tree != nil {
		return s.verifyLeafMerkle(m, v)
	}
	var stored [entry.MACSize]byte
	s.space.Read(m, s.macHashAddr(v.macIdx), stored[:])
	if len(v.macs) == 0 {
		for _, x := range stored {
			if x != 0 {
				return ErrIntegrity
			}
		}
		return nil
	}
	want := s.cipher.SetMAC(m, v.macs)
	if subtle.ConstantTimeCompare(want[:], stored[:]) != 1 {
		return ErrIntegrity
	}
	return nil
}

// writeSetHash recomputes and stores the MAC hash for a (modified) view.
//
//ss:enclave-write — the MAC hash array is enclave-resident.
func (s *Store) writeSetHash(m *sim.Meter, v *setView) {
	var h [entry.MACSize]byte
	if len(v.macs) > 0 {
		h = s.cipher.SetMAC(m, v.macs)
	}
	// Mutations splice MACs in and out of the view; if that regrew the
	// backing, keep the larger one for the next collectSet.
	if cap(v.macs) > cap(s.viewMacs) {
		s.viewMacs = v.macs
	}
	if s.tree != nil {
		s.tree.UpdateLeaf(m, v.macIdx, h)
		return
	}
	s.space.Write(m, s.macHashAddr(v.macIdx), h[:])
}

// verifyLeafMerkle authenticates a bucket's MAC list through the Merkle
// tree path to the enclave root.
func (s *Store) verifyLeafMerkle(m *sim.Meter, v *setView) error {
	var leaf [entry.MACSize]byte
	if len(v.macs) > 0 {
		leaf = s.cipher.SetMAC(m, v.macs)
	}
	if err := s.tree.VerifyLeaf(m, v.macIdx, leaf); err != nil {
		return ErrIntegrity
	}
	return nil
}

// positionOf returns the byte offset of the entry's MAC inside the view:
// slot order under MAC bucketing, chain order otherwise.
func (s *Store) positionOf(v *setView, res *lookup) (int, error) {
	off, cnt, ok := v.bucketOffset(res.bucket)
	if !ok {
		return 0, ErrIntegrity
	}
	pos := res.chainIdx
	if s.opts.MACBucket {
		pos = int(res.hdr.Slot)
	}
	if pos < 0 || pos >= cnt {
		return 0, ErrIntegrity
	}
	return off + pos*entry.MACSize, nil
}

// verifyMissChain guards the not-found path under MAC bucketing. The set
// hash authenticates the *sidecar*, but a malicious host could unlink an
// entry from the data chain (or substitute a decoy) without touching the
// sidecar, turning a present key into a verified miss. Before reporting
// ErrNotFound, the chain is therefore cross-checked against the sidecar:
// every entry's slot must be unique and its MAC field must equal the
// sidecar MAC at that slot, and the chain length must match the sidecar
// count. (Without MAC bucketing the set hash is computed from the chain
// itself, so misses are self-verifying.)
//
//ss:nopanic-ok(slot is range-checked against the sidecar count before any MAC slicing)
func (s *Store) verifyMissChain(m *sim.Meter, v *setView, b int) error {
	if !s.opts.MACBucket {
		return nil
	}
	off, cnt, ok := v.bucketOffset(b)
	if !ok {
		return ErrIntegrity
	}
	seen := make([]bool, cnt)
	cur, err := s.readPtr(m, s.headAddr(b))
	if err != nil {
		return err
	}
	n := 0
	var hdrBuf [entry.HeaderSize]byte
	for cur != 0 {
		s.space.Read(m, cur, hdrBuf[:])
		hdr := entry.ParseHeader(hdrBuf[:])
		slot := int(hdr.Slot)
		if slot < 0 || slot >= cnt || seen[slot] {
			return ErrIntegrity
		}
		if subtle.ConstantTimeCompare(hdr.MAC[:], v.macs[off+slot*entry.MACSize:off+(slot+1)*entry.MACSize]) != 1 {
			return ErrIntegrity
		}
		seen[slot] = true
		n++
		if err := mem.CheckUntrusted(hdr.Next); err != nil {
			return ErrCorruptPointer
		}
		if hdr.Next != 0 && !s.space.InAllocated(hdr.Next, entry.HeaderSize) {
			return ErrCorruptPointer
		}
		cur = hdr.Next
		if n > cnt {
			return ErrIntegrity
		}
	}
	if n != cnt {
		return ErrIntegrity
	}
	return nil
}

// verifyEntry authenticates the found entry's content against the MAC
// covered by the set hash (the sidecar slot under MAC bucketing).
//
//ss:nopanic-ok(positionOf validates the slot before returning an offset)
func (s *Store) verifyEntry(m *sim.Meter, v *setView, res *lookup) error {
	p, err := s.positionOf(v, res)
	if err != nil {
		return err
	}
	authoritative := v.macs[p : p+entry.MACSize]
	// Reconstruct ciphertext from the decrypted plaintext we already hold
	// (cheaper than re-reading untrusted memory; the plaintext is in the
	// enclave). Encryption cost is not re-charged: this is the same pass.
	ctp := getScratch(res.hdr.CTLen())
	defer putScratch(ctp)
	ct := *ctp
	s.space.Peek(res.addr+entry.HeaderSize, ct)
	if !s.cipher.VerifyEntryMAC(m, &res.hdr, ct, authoritative) {
		return ErrIntegrity
	}
	return nil
}

// Get returns the value stored under key.
//
//ss:attacker — keys arrive from the wire; chains live in untrusted memory.
func (s *Store) Get(m *sim.Meter, key []byte) (val []byte, err error) {
	if err := s.guard(); err != nil {
		return nil, err
	}
	defer func() { s.noteErr(m, err) }()
	m.Charge(s.model.RequestOverhead)
	m.Count(sim.CtrRequest)
	b := s.bucketOf(m, key)

	if s.cache != nil {
		if val, ok := s.cache.get(m, key); ok {
			return val, nil
		}
	}

	v, err := s.collectSet(m, b)
	if err != nil {
		return nil, err
	}
	if err := s.verifySet(m, &v); err != nil {
		return nil, err
	}
	return s.getInView(m, &v, b, key)
}

// getInView serves a Get against an already collected and verified bucket
// set. Shared by the single-op path and ApplyBatch.
func (s *Store) getInView(m *sim.Meter, v *setView, b int, key []byte) ([]byte, error) {
	res, err := s.search(m, b, key)
	if err != nil {
		return nil, err
	}
	if !res.found {
		if err := s.verifyMiss(m, v, b); err != nil {
			return nil, err
		}
		return nil, ErrNotFound
	}
	if err := s.verifyEntry(m, v, &res); err != nil {
		return nil, err
	}
	val := res.val
	if res.hdr.Flags&entry.FlagSpilled != 0 {
		// Cold tier: fault the value back from the value log. The cache
		// put below promotes it, making the LRU cache the hot tier.
		_, val, err = s.faultSpilled(m, key, res.val)
		if err != nil {
			return nil, err
		}
	}
	if s.cache != nil {
		s.cache.put(m, key, val)
	}
	return val, nil
}

// verifyMiss authenticates a not-found result before it is *reported*.
// Structural cross-checking (verifyMissChain) alone leaves a phantom-miss
// gap: corrupting an entry's ciphertext garbles its decrypted key without
// touching the MACs the set hash covers, turning a present key into a
// structurally clean miss. Reported misses therefore also re-authenticate
// every entry's content against the verified MAC material. Insert misses
// skip this (mutateInView): nothing is reported to the client, and the
// corruption is still caught by the first read or scrub that touches the
// bucket — the lazy-detection tradeoff documented in DESIGN.md §10.
func (s *Store) verifyMiss(m *sim.Meter, v *setView, b int) error {
	if err := s.verifyMissChain(m, v, b); err != nil {
		return err
	}
	return s.verifyBucketEntries(m, v, b)
}

// Set stores value under key, inserting or updating in place.
//
//ss:attacker — keys/values arrive from the wire.
func (s *Store) Set(m *sim.Meter, key, value []byte) error {
	m.Charge(s.model.RequestOverhead)
	m.Count(sim.CtrRequest)
	return s.mutate(m, key, false, func(_ []byte, _ bool) ([]byte, error) {
		return value, nil
	})
}

// Append appends suffix to the existing value (server-side computation,
// §3.2/§6.2). A missing key is created with suffix as its value, matching
// Redis APPEND semantics.
//
//ss:attacker — keys/suffixes arrive from the wire.
func (s *Store) Append(m *sim.Meter, key, suffix []byte) error {
	m.Charge(s.model.RequestOverhead)
	m.Count(sim.CtrRequest)
	return s.mutate(m, key, true, appendMutator(suffix))
}

// appendMutator builds the Append value transform (shared with the batch
// path).
func appendMutator(suffix []byte) func(old []byte, found bool) ([]byte, error) {
	return func(old []byte, found bool) ([]byte, error) {
		if !found {
			return suffix, nil
		}
		nv := make([]byte, 0, len(old)+len(suffix))
		nv = append(nv, old...)
		nv = append(nv, suffix...)
		return nv, nil
	}
}

// Incr adds delta to a decimal-encoded value, creating it at delta when
// missing, and returns the new number.
//
//ss:attacker — keys arrive from the wire.
func (s *Store) Incr(m *sim.Meter, key []byte, delta int64) (int64, error) {
	m.Charge(s.model.RequestOverhead)
	m.Count(sim.CtrRequest)
	var out int64
	err := s.mutate(m, key, true, incrMutator(delta, &out))
	return out, err
}

// incrMutator builds the Incr value transform, writing the post-increment
// number to out (shared with the batch path).
func incrMutator(delta int64, out *int64) func(old []byte, found bool) ([]byte, error) {
	return func(old []byte, found bool) ([]byte, error) {
		cur := int64(0)
		if found {
			n, err := strconv.ParseInt(string(old), 10, 64)
			if err != nil {
				return nil, ErrNotNumeric
			}
			cur = n
		}
		*out = cur + delta
		return strconv.AppendInt(nil, *out, 10), nil
	}
}

// Delete removes key, returning ErrNotFound when absent.
//
//ss:attacker — keys arrive from the wire.
func (s *Store) Delete(m *sim.Meter, key []byte) (err error) {
	if err := s.guard(); err != nil {
		return err
	}
	defer func() { s.noteErr(m, err) }()
	m.Charge(s.model.RequestOverhead)
	m.Count(sim.CtrRequest)
	b := s.bucketOf(m, key)
	v, err := s.collectSet(m, b)
	if err != nil {
		return err
	}
	if err := s.verifySet(m, &v); err != nil {
		return err
	}
	if err := s.deleteInView(m, &v, b, key); err != nil {
		return err
	}
	s.writeSetHash(m, &v)
	return nil
}

// deleteInView removes key from an already verified bucket set, updating
// the view in place. The caller commits the view with writeSetHash;
// batches do so once per set after all of the set's deletions.
//
//ss:nopanic-ok(offsets derive from positionOf and the sidecar view's own materialized length)
func (s *Store) deleteInView(m *sim.Meter, v *setView, b int, key []byte) error {
	res, err := s.search(m, b, key)
	if err != nil {
		return err
	}
	if !res.found {
		if err := s.verifyMiss(m, v, b); err != nil {
			return err
		}
		return ErrNotFound
	}
	if err := s.verifyEntry(m, v, &res); err != nil {
		return err
	}

	// Unlink from the data chain.
	s.space.WriteU64(m, res.prevLink, uint64(res.hdr.Next))

	// Remove the MAC from the set view (and sidecar).
	p, err := s.positionOf(v, &res)
	if err != nil {
		return err
	}
	off, cnt, ok := v.bucketOffset(res.bucket)
	if !ok {
		return ErrIntegrity
	}
	if s.opts.MACBucket {
		last := off + (cnt-1)*entry.MACSize
		if p != last {
			// Move the last slot's MAC into the hole and repoint the
			// entry that owned it.
			copy(v.macs[p:p+entry.MACSize], v.macs[last:last+entry.MACSize])
			s.writeSidecarSlot(m, res.bucket, int(res.hdr.Slot), v.macs[p:p+entry.MACSize])
			if err := s.reslotEntry(m, res.bucket, uint32(cnt-1), res.hdr.Slot); err != nil {
				return err
			}
		}
		s.setSidecarCount(m, res.bucket, cnt-1)
		v.macs = spliceOut(v.macs, last)
	} else {
		v.macs = spliceOut(v.macs, p)
	}
	s.shiftCounts(v, res.bucket, -1)

	if s.cache != nil {
		s.cache.invalidate(m, key)
	}
	if s.ordered != nil {
		s.ordered.remove(m, key)
	}
	// Tier accounting: a spilled entry's log record becomes garbage.
	if res.hdr.Flags&entry.FlagSpilled != 0 {
		if p, derr := s.decodeSpilled(res.val); derr == nil {
			s.vlog.MarkDead(m, p)
		}
	} else {
		s.inlineValBytes -= int64(len(res.val))
	}
	s.heap.Free(m, res.addr, res.hdr.TotalLen())
	s.keys--
	return nil
}

// mutate implements set/append/incr: search, verify, then update in place,
// replace (size change), or insert at the chain head. needOld marks
// mutators that read the previous value (append/incr): only those fault a
// spilled old value back from the value log.
func (s *Store) mutate(m *sim.Meter, key []byte, needOld bool, f func(old []byte, found bool) ([]byte, error)) (err error) {
	if err := s.guard(); err != nil {
		return err
	}
	defer func() { s.noteErr(m, err) }()
	b := s.bucketOf(m, key)
	v, err := s.collectSet(m, b)
	if err != nil {
		return err
	}
	if err := s.verifySet(m, &v); err != nil {
		return err
	}
	if err := s.mutateInView(m, &v, b, key, needOld, f); err != nil {
		return err
	}
	s.writeSetHash(m, &v)
	return nil
}

// mutateInView applies one set/append/incr against an already verified
// bucket set, updating the view in place without committing it. The
// caller runs writeSetHash — once per op on the single-op path, once per
// touched set per batch in ApplyBatch (the amortization this layering
// exists for).
func (s *Store) mutateInView(m *sim.Meter, v *setView, b int, key []byte, needOld bool, f func(old []byte, found bool) ([]byte, error)) error {
	res, err := s.search(m, b, key)
	if err != nil {
		return err
	}
	if res.found {
		if err := s.verifyEntry(m, v, &res); err != nil {
			return err
		}
	} else if err := s.verifyMissChain(m, v, b); err != nil {
		return err
	}

	var oldVal []byte
	var oldPtr vlog.Ptr
	oldSpilled := res.found && res.hdr.Flags&entry.FlagSpilled != 0
	if res.found {
		oldVal = res.val
		if oldSpilled {
			if needOld {
				// Append/incr transform the previous value: fault it in.
				oldPtr, oldVal, err = s.faultSpilled(m, key, res.val)
			} else {
				oldPtr, err = s.decodeSpilled(res.val)
				oldVal = nil
			}
			if err != nil {
				return err
			}
		}
	}
	newVal, err := f(oldVal, res.found)
	if err != nil {
		return err
	}

	// Pick the stored representation: inline bytes, or a pointer to a
	// freshly appended value-log record.
	stored, flags := newVal, byte(0)
	if s.shouldSpill(newVal) {
		ptr, err := s.vlog.Append(m, key, newVal)
		if err != nil {
			return err
		}
		var pb [vlog.PtrSize]byte
		ptr.Encode(pb[:])
		stored, flags = pb[:], entry.FlagSpilled
		m.Count(sim.CtrVLogSpill)
	}

	if !res.found {
		err = s.insert(m, v, b, key, stored, flags)
	} else if len(stored) == len(res.val) && flags == res.hdr.Flags&entry.FlagSpilled {
		err = s.updateInPlace(m, v, &res, key, stored)
	} else {
		err = s.replace(m, v, &res, key, stored, flags)
	}
	if err != nil {
		return err
	}

	// Tier accounting: the old representation is garbage, the new one live.
	if oldSpilled {
		s.vlog.MarkDead(m, oldPtr)
	} else if res.found {
		s.inlineValBytes -= int64(len(res.val))
	}
	if flags&entry.FlagSpilled == 0 {
		s.inlineValBytes += int64(len(stored))
	}
	if s.cache != nil {
		s.cache.update(m, key, newVal)
	}
	return nil
}

// insert creates a new entry at the head of bucket b's chain. flags
// marks spilled (pointer-valued) entries; it is MAC-authenticated with
// the rest of the header.
func (s *Store) insert(m *sim.Meter, v *setView, b int, key, val []byte, flags byte) error {
	oldHead, err := s.readPtr(m, s.headAddr(b))
	if err != nil {
		return err
	}
	off, cnt, ok := v.bucketOffset(b)
	if !ok {
		return ErrIntegrity
	}

	hdr := entry.Header{
		Next:    oldHead,
		Slot:    uint32(cnt),
		Flags:   flags,
		KeySize: uint32(len(key)),
		ValSize: uint32(len(val)),
	}
	if s.opts.KeyHint {
		hdr.KeyHint = s.cipher.KeyHint(m, key)
	}
	s.cipher.NewIV(m, &hdr.IV)

	ctp := getScratch(len(key) + len(val))
	defer putScratch(ctp)
	ct := *ctp
	s.cipher.EncryptKV(m, &hdr.IV, key, val, ct)
	hdr.MAC = s.cipher.EntryMAC(m, &hdr, ct)

	addr := s.heap.Alloc(m, hdr.TotalLen())
	s.writeEntry(m, addr, &hdr, ct)
	s.space.WriteU64(m, s.headAddr(b), uint64(addr))

	if s.opts.MACBucket {
		if err := s.appendSidecar(m, b, cnt, hdr.MAC[:]); err != nil {
			return err
		}
		// Slot order: new MAC goes after the bucket's existing MACs.
		v.macs = spliceIn(v.macs, off+cnt*entry.MACSize, hdr.MAC[:])
	} else {
		// Chain order: new head goes first.
		v.macs = spliceIn(v.macs, off, hdr.MAC[:])
	}
	s.shiftCounts(v, b, +1)
	if s.ordered != nil {
		s.ordered.insert(m, key)
	}
	s.keys++
	return nil
}

// updateInPlace overwrites an entry whose value size is unchanged, bumping
// the IV/counter (§4.2).
//
//ss:nopanic-ok(positionOf validates the slot before returning an offset)
func (s *Store) updateInPlace(m *sim.Meter, v *setView, res *lookup, key, val []byte) error {
	hdr := res.hdr
	hdr.BumpIV()
	ctp := getScratch(hdr.CTLen())
	defer putScratch(ctp)
	ct := *ctp
	s.cipher.EncryptKV(m, &hdr.IV, key, val, ct)
	hdr.MAC = s.cipher.EntryMAC(m, &hdr, ct)

	s.writeEntry(m, res.addr, &hdr, ct)

	p, err := s.positionOf(v, res)
	if err != nil {
		return err
	}
	copy(v.macs[p:p+entry.MACSize], hdr.MAC[:])
	if s.opts.MACBucket {
		s.writeSidecarSlot(m, res.bucket, int(hdr.Slot), hdr.MAC[:])
	}
	return nil
}

// replace swaps an entry for a differently-sized one, keeping its chain
// position and sidecar slot.
//
//ss:nopanic-ok(positionOf validates the slot before returning an offset)
func (s *Store) replace(m *sim.Meter, v *setView, res *lookup, key, val []byte, flags byte) error {
	hdr := entry.Header{
		Next:    res.hdr.Next,
		Slot:    res.hdr.Slot,
		KeyHint: res.hdr.KeyHint,
		Flags:   flags,
		KeySize: uint32(len(key)),
		ValSize: uint32(len(val)),
	}
	s.cipher.NewIV(m, &hdr.IV)
	ctp := getScratch(hdr.CTLen())
	defer putScratch(ctp)
	ct := *ctp
	s.cipher.EncryptKV(m, &hdr.IV, key, val, ct)
	hdr.MAC = s.cipher.EntryMAC(m, &hdr, ct)

	addr := s.heap.Alloc(m, hdr.TotalLen())
	s.writeEntry(m, addr, &hdr, ct)
	s.space.WriteU64(m, res.prevLink, uint64(addr))
	s.heap.Free(m, res.addr, res.hdr.TotalLen())

	p, err := s.positionOf(v, res)
	if err != nil {
		return err
	}
	copy(v.macs[p:p+entry.MACSize], hdr.MAC[:])
	if s.opts.MACBucket {
		s.writeSidecarSlot(m, res.bucket, int(hdr.Slot), hdr.MAC[:])
	}
	return nil
}

// writeEntry serializes header+ciphertext into untrusted memory.
//
//ss:seals — writes header/IV/MAC/ciphertext; no plaintext leaves the enclave.
func (s *Store) writeEntry(m *sim.Meter, addr mem.Addr, hdr *entry.Header, ct []byte) {
	bp := getScratch(entry.HeaderSize + len(ct))
	defer putScratch(bp)
	buf := *bp
	hdr.Marshal(buf)
	copy(buf[entry.HeaderSize:], ct)
	s.space.Write(m, addr, buf)
}

// shiftCounts adjusts the per-bucket counts and subsequent offsets of a
// view after an insert (+1) or delete (-1) in bucket b.
func (s *Store) shiftCounts(v *setView, b int, delta int) {
	seen := false
	for i, bb := range v.buckets {
		if seen {
			v.offs[i] += delta * entry.MACSize
		}
		if bb == b {
			v.cnts[i] += delta
			seen = true
		}
	}
}

// --- MAC bucket (sidecar) maintenance ---

// sidecarNodeSize returns the byte size of one MAC bucket node.
func (s *Store) sidecarNodeSize() int {
	return macNodeHdr + s.opts.MACBucketCap*entry.MACSize
}

// sidecarSlotAddr locates slot idx of bucket b, returning 0 when the node
// chain is too short.
func (s *Store) sidecarSlotAddr(m *sim.Meter, b, idx int) (mem.Addr, error) {
	node, err := s.readPtr(m, s.macHeadAddr(b))
	if err != nil {
		return 0, err
	}
	for skip := idx / s.opts.MACBucketCap; skip > 0 && node != 0; skip-- {
		node, err = s.readPtr(m, node)
		if err != nil {
			return 0, err
		}
	}
	if node == 0 {
		return 0, nil
	}
	return node + mem.Addr(macNodeHdr+(idx%s.opts.MACBucketCap)*entry.MACSize), nil
}

// writeSidecarSlot overwrites one sidecar MAC.
//
//ss:seals — sidecar slots hold MAC tags, not secrets.
func (s *Store) writeSidecarSlot(m *sim.Meter, b, idx int, mac []byte) {
	a, err := s.sidecarSlotAddr(m, b, idx)
	if err != nil || a == 0 || s.checkSpan(a, len(mac)) != nil {
		return // corrupt sidecar surfaces as ErrIntegrity on next verify
	}
	s.space.Write(m, a, mac)
}

// appendSidecar adds a MAC at slot idx (== current count), growing the
// node chain when the tail node is full.
//
//ss:seals — sidecar nodes hold MAC tags and pointers, not secrets.
func (s *Store) appendSidecar(m *sim.Meter, b, idx int, mac []byte) error {
	head, err := s.readPtr(m, s.macHeadAddr(b))
	if err != nil {
		return err
	}
	if head == 0 {
		head = s.newSidecarNode(m)
		s.space.WriteU64(m, s.macHeadAddr(b), uint64(head))
	}
	// Walk to the node holding slot idx, extending as needed.
	node := head
	for skip := idx / s.opts.MACBucketCap; skip > 0; skip-- {
		next, err := s.readPtr(m, node)
		if err != nil {
			return err
		}
		if next == 0 {
			next = s.newSidecarNode(m)
			s.space.WriteU64(m, node, uint64(next))
		}
		node = next
	}
	slot := node + mem.Addr(macNodeHdr+(idx%s.opts.MACBucketCap)*entry.MACSize)
	if err := s.checkSpan(slot, len(mac)); err != nil {
		return err
	}
	s.space.Write(m, slot, mac)
	s.setSidecarCount(m, b, idx+1)
	return nil
}

// newSidecarNode allocates a zeroed MAC bucket node.
//
//ss:seals — fresh sidecar nodes carry zeroed MAC slots.
func (s *Store) newSidecarNode(m *sim.Meter) mem.Addr {
	a := s.heap.Alloc(m, s.sidecarNodeSize())
	zero := make([]byte, macNodeHdr)
	s.space.Write(m, a, zero)
	return a
}

// setSidecarCount stores bucket b's MAC count in its head node.
//
//ss:seals — sidecar counts are allocator metadata.
func (s *Store) setSidecarCount(m *sim.Meter, b, cnt int) {
	head, err := s.readPtr(m, s.macHeadAddr(b))
	if err != nil || head == 0 {
		return
	}
	var buf [4]byte
	putLeU32(buf[:], uint32(cnt))
	s.space.Write(m, head+8, buf[:])
}

// reslotEntry finds the entry in bucket b whose sidecar slot is `from` and
// rewrites it to `to` (delete compaction).
//
//ss:seals — moves MAC tags and rewrites a plaintext-free slot field.
func (s *Store) reslotEntry(m *sim.Meter, b int, from, to uint32) error {
	cur, err := s.readPtr(m, s.headAddr(b))
	if err != nil {
		return err
	}
	var hdrBuf [entry.HeaderSize]byte
	n := 0
	for cur != 0 {
		s.space.Read(m, cur, hdrBuf[:])
		hdr := entry.ParseHeader(hdrBuf[:])
		if hdr.Slot == from {
			var sb [4]byte
			putLeU32(sb[:], to)
			s.space.Write(m, cur+entry.OffSlot, sb[:])
			return nil
		}
		if err := mem.CheckUntrusted(hdr.Next); err != nil {
			return ErrCorruptPointer
		}
		if hdr.Next != 0 && !s.space.InAllocated(hdr.Next, entry.HeaderSize) {
			return ErrCorruptPointer
		}
		cur = hdr.Next
		if n++; n > s.keys {
			return ErrIntegrity // cycle spliced into tampered chain
		}
	}
	return ErrIntegrity
}

// --- maintenance / persistence hooks ---

// VerifyAll performs a full integrity audit: every bucket set's MAC list
// is checked against its in-enclave MAC hash, every entry's content is
// authenticated against its covered MAC, and under MAC bucketing the data
// chains are cross-checked against the sidecars. Used after snapshot
// restore and as a defense-in-depth scrub.
//
//ss:attacker — walks wholly host-controlled chains.
func (s *Store) VerifyAll(m *sim.Meter) (err error) {
	defer func() { s.noteErr(m, err) }()
	for idx := 0; idx < s.opts.MACHashes; idx++ {
		v, err := s.collectSet(m, idx)
		if err != nil {
			return err
		}
		if err := s.verifySet(m, &v); err != nil {
			return fmt.Errorf("%w (MAC hash slot %d)", err, idx)
		}
		for _, b := range v.buckets {
			if err := s.verifyBucketEntries(m, &v, b); err != nil {
				return fmt.Errorf("%w (bucket %d)", err, b)
			}
		}
	}
	return nil
}

// verifyBucketEntries authenticates every entry in bucket b against the
// collected (already set-hash-verified) MAC material.
//
//ss:nopanic-ok(pos is range-checked against the sidecar count before slicing)
func (s *Store) verifyBucketEntries(m *sim.Meter, v *setView, b int) error {
	off, cnt, ok := v.bucketOffset(b)
	if !ok {
		return ErrIntegrity
	}
	cur, err := s.readPtr(m, s.headAddr(b))
	if err != nil {
		return err
	}
	i := 0
	var hdrBuf [entry.HeaderSize]byte
	for cur != 0 {
		s.space.Read(m, cur, hdrBuf[:])
		hdr := entry.ParseHeader(hdrBuf[:])
		if hdr.CTLen() > 64<<20 {
			return ErrIntegrity
		}
		pos := i
		if s.opts.MACBucket {
			pos = int(hdr.Slot)
		}
		if pos < 0 || pos >= cnt || i >= cnt {
			return ErrIntegrity
		}
		if err := s.checkSpan(cur+entry.HeaderSize, hdr.CTLen()); err != nil {
			return err
		}
		authoritative := v.macs[off+pos*entry.MACSize : off+(pos+1)*entry.MACSize]
		ctp := getScratch(hdr.CTLen())
		ct := *ctp
		s.space.Read(m, cur+entry.HeaderSize, ct)
		ok := s.cipher.VerifyEntryMAC(m, &hdr, ct, authoritative)
		putScratch(ctp)
		if !ok {
			return ErrIntegrity
		}
		if s.opts.MACBucket && subtle.ConstantTimeCompare(hdr.MAC[:], authoritative) != 1 {
			return ErrIntegrity // stale entry MAC field vs sidecar
		}
		if err := mem.CheckUntrusted(hdr.Next); err != nil {
			return ErrCorruptPointer
		}
		if hdr.Next != 0 && !s.space.InAllocated(hdr.Next, entry.HeaderSize) {
			return ErrCorruptPointer
		}
		cur = hdr.Next
		i++
	}
	if i != cnt {
		return ErrIntegrity
	}
	return nil
}

// ForEachBucketRaw streams each non-empty bucket's raw encrypted entries
// (head-first) to f without charging access cost; the snapshot writer
// models its own streaming cost (§4.4: entries are written to storage
// as-is, already encrypted).
func (s *Store) ForEachBucketRaw(f func(bucket int, entries [][]byte) error) error {
	for b := 0; b < s.opts.Buckets; b++ {
		var head [8]byte
		s.space.Peek(s.headAddr(b), head[:])
		cur := mem.Addr(leU64(head[:]))
		var list [][]byte
		for cur != 0 {
			// Same pointer/size sanitization as the hot path: a snapshot
			// of tampered memory must fail typed, not fault or OOM.
			if err := mem.CheckUntrusted(cur); err != nil {
				return ErrCorruptPointer
			}
			if !s.space.InAllocated(cur, entry.HeaderSize) {
				return ErrCorruptPointer
			}
			var hdrBuf [entry.HeaderSize]byte
			s.space.Peek(cur, hdrBuf[:])
			hdr := entry.ParseHeader(hdrBuf[:])
			if hdr.CTLen() > 64<<20 || len(list) >= s.keys+1 {
				return ErrIntegrity
			}
			if err := s.checkSpan(cur, hdr.TotalLen()); err != nil {
				return err
			}
			raw := make([]byte, hdr.TotalLen())
			s.space.Peek(cur, raw)
			list = append(list, raw)
			cur = hdr.Next
		}
		if len(list) == 0 {
			continue
		}
		if err := f(b, list); err != nil {
			return err
		}
	}
	return nil
}

// ForEachDecrypt iterates every live key/value pair in plaintext (enclave
// internal; used to merge the temporary snapshot table back, Alg. 1).
// Spilled values are faulted back from the value log, so callers always
// observe logical values regardless of tier.
func (s *Store) ForEachDecrypt(m *sim.Meter, f func(key, val []byte) error) error {
	return s.ForEachBucketRaw(func(b int, entries [][]byte) error {
		for _, raw := range entries {
			hdr := entry.ParseHeader(raw)
			ct := raw[entry.HeaderSize:]
			pt := make([]byte, len(ct))
			s.cipher.DecryptKV(m, &hdr.IV, ct, pt)
			key, val := pt[:hdr.KeySize], pt[hdr.KeySize:]
			if hdr.Flags&entry.FlagSpilled != 0 {
				_, fv, err := s.faultSpilled(m, key, val)
				if err != nil {
					return err
				}
				val = fv
			}
			if err := f(key, val); err != nil {
				return err
			}
		}
		return nil
	})
}

// RestoreBucket rebuilds bucket b from raw entries (head-first order, as
// produced by ForEachBucketRaw), reconstructing the chain and the MAC
// sidecar. The caller must afterwards install the sealed MAC hashes and
// run VerifyAll to authenticate the restored state.
//
//ss:seals — snapshot bytes are already encrypted and MACed.
func (s *Store) RestoreBucket(m *sim.Meter, b int, entries [][]byte) error {
	// Insert in reverse so head-first order is reproduced exactly.
	for i := len(entries) - 1; i >= 0; i-- {
		raw := entries[i]
		if len(raw) < entry.HeaderSize {
			return ErrIntegrity
		}
		hdr := entry.ParseHeader(raw)
		if hdr.TotalLen() != len(raw) {
			return ErrIntegrity
		}
		oldHead, err := s.readPtr(m, s.headAddr(b))
		if err != nil {
			return err
		}
		addr := s.heap.Alloc(m, len(raw))
		// Rewrite the next pointer to the rebuilt chain.
		hdr.Next = oldHead
		buf := append([]byte(nil), raw...)
		hdr.Marshal(buf[:entry.HeaderSize])
		s.space.Write(m, addr, buf)
		s.space.WriteU64(m, s.headAddr(b), uint64(addr))
		if s.opts.MACBucket {
			if err := s.appendSidecarAt(m, b, int(hdr.Slot), hdr.MAC[:]); err != nil {
				return err
			}
		}
		if s.ordered != nil {
			// Rebuild the ordered index from the decrypted key.
			ct := raw[entry.HeaderSize:]
			pt := make([]byte, len(ct))
			s.cipher.DecryptKV(m, &hdr.IV, ct, pt)
			s.ordered.insert(m, pt[:hdr.KeySize])
		}
		if hdr.Flags&entry.FlagSpilled == 0 {
			s.inlineValBytes += int64(hdr.ValSize)
		}
		s.keys++
	}
	if s.opts.MACBucket && len(entries) > 0 {
		s.setSidecarCount(m, b, len(entries))
	}
	return nil
}

// appendSidecarAt writes a MAC at an explicit slot, growing nodes without
// touching the head count (RestoreBucket fixes the count at the end).
//
//ss:seals — rebuilds MAC sidecar nodes from snapshot tags.
func (s *Store) appendSidecarAt(m *sim.Meter, b, idx int, mac []byte) error {
	head, err := s.readPtr(m, s.macHeadAddr(b))
	if err != nil {
		return err
	}
	if head == 0 {
		head = s.newSidecarNode(m)
		s.space.WriteU64(m, s.macHeadAddr(b), uint64(head))
	}
	node := head
	for skip := idx / s.opts.MACBucketCap; skip > 0; skip-- {
		next, err := s.readPtr(m, node)
		if err != nil {
			return err
		}
		if next == 0 {
			next = s.newSidecarNode(m)
			s.space.WriteU64(m, node, uint64(next))
		}
		node = next
	}
	slot := node + mem.Addr(macNodeHdr+(idx%s.opts.MACBucketCap)*entry.MACSize)
	if err := s.checkSpan(slot, len(mac)); err != nil {
		return err
	}
	s.space.Write(m, slot, mac)
	return nil
}

// ExportMACHashes copies the in-enclave integrity roots for sealing: the
// MAC hash array, or the 16-byte Merkle root in MerkleTree mode.
func (s *Store) ExportMACHashes() []byte {
	if s.tree != nil {
		d := s.tree.RootPeek()
		return d[:]
	}
	out := make([]byte, s.opts.MACHashes*entry.MACSize)
	s.space.Peek(s.macHash, out)
	return out
}

// ImportMACHashes installs sealed integrity roots after restore. In
// MerkleTree mode the tree is rebuilt from the restored buckets and its
// recomputed root must equal the sealed one.
//
//ss:enclave-write — the MAC hash array is enclave-resident.
func (s *Store) ImportMACHashes(m *sim.Meter, data []byte) error {
	if s.tree != nil {
		if len(data) != entry.MACSize {
			return fmt.Errorf("shieldstore: sealed Merkle root size mismatch: %d", len(data))
		}
		for b := 0; b < s.opts.Buckets; b++ {
			v, err := s.collectSet(m, b)
			if err != nil {
				return err
			}
			if len(v.macs) == 0 {
				continue
			}
			s.writeSetHash(m, &v)
		}
		got := s.tree.RootPeek()
		if string(got[:]) != string(data) {
			return fmt.Errorf("%w: rebuilt Merkle root does not match sealed root", ErrIntegrity)
		}
		return nil
	}
	if len(data) != s.opts.MACHashes*entry.MACSize {
		return fmt.Errorf("shieldstore: MAC hash array size mismatch: %d != %d",
			len(data), s.opts.MACHashes*entry.MACSize)
	}
	s.space.Write(m, s.macHash, data)
	return nil
}

// --- small helpers ---

//ss:nopanic-ok(callers pass offsets validated by positionOf)
func spliceOut(b []byte, off int) []byte {
	return append(b[:off], b[off+entry.MACSize:]...)
}

//ss:nopanic-ok(callers pass offsets validated by positionOf)
func spliceIn(b []byte, off int, mac []byte) []byte {
	b = append(b, mac...) // grow
	copy(b[off+entry.MACSize:], b[off:])
	copy(b[off:], mac)
	return b
}

func leU32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func putLeU32(b []byte, v uint32) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
}

func leU64(b []byte) uint64 {
	return uint64(leU32(b)) | uint64(leU32(b[4:]))<<32
}
