package core

import (
	"bytes"
	"errors"
	"testing"

	"shieldstore/internal/mem"
)

// FuzzStoreOps drives the engine with arbitrary keys and values,
// asserting the store never serves wrong data and never breaks its own
// integrity invariants.
func FuzzStoreOps(f *testing.F) {
	f.Add([]byte("key"), []byte("value"), []byte("key2"))
	f.Add([]byte{}, []byte{}, []byte{0})
	f.Add([]byte{0xFF, 0x00}, bytes.Repeat([]byte{7}, 100), []byte("x"))
	f.Fuzz(func(t *testing.T, k1, v1, k2 []byte) {
		if len(k1) > 1024 || len(v1) > 4096 || len(k2) > 1024 {
			return
		}
		s, m := newTestStore(Defaults(8))
		if err := s.Set(m, k1, v1); err != nil {
			t.Fatalf("set: %v", err)
		}
		got, err := s.Get(m, k1)
		if err != nil || !bytes.Equal(got, v1) {
			t.Fatalf("get after set: %q %v", got, err)
		}
		// A different key must not alias.
		if !bytes.Equal(k1, k2) {
			if _, err := s.Get(m, k2); !errors.Is(err, ErrNotFound) {
				t.Fatalf("aliased lookup: %v", err)
			}
		}
		if err := s.Delete(m, k1); err != nil {
			t.Fatalf("delete: %v", err)
		}
		if _, err := s.Get(m, k1); !errors.Is(err, ErrNotFound) {
			t.Fatalf("zombie key: %v", err)
		}
		if err := s.VerifyAll(m); err != nil {
			t.Fatalf("audit: %v", err)
		}
	})
}

// FuzzTamper flips arbitrary bytes in untrusted memory and asserts the
// store either serves the correct value or reports an error — never wrong
// data. (The strongest property the design claims.)
func FuzzTamper(f *testing.F) {
	f.Add(uint32(100), byte(0x01))
	f.Add(uint32(5000), byte(0xFF))
	f.Fuzz(func(t *testing.T, offset uint32, flip byte) {
		if flip == 0 {
			return
		}
		s, m := newTestStore(Defaults(8))
		want := map[string][]byte{}
		for i := 0; i < 20; i++ {
			k := []byte{byte('a' + i)}
			v := bytes.Repeat([]byte{byte(i)}, 24)
			if err := s.Set(m, k, v); err != nil {
				t.Fatal(err)
			}
			want[string(k)] = v
		}
		// Flip one byte somewhere in the used untrusted region.
		space := s.Enclave().Space()
		used := space.UsedBytes(mem.Untrusted)
		a := mem.UntrustedBase + mem.Addr(uint64(offset)%uint64(used-64)+64)
		var b [1]byte
		space.Peek(a, b[:])
		space.Tamper(a, []byte{b[0] ^ flip})

		for k, v := range want {
			got, err := s.Get(m, []byte(k))
			if err == nil && !bytes.Equal(got, v) {
				t.Fatalf("silent corruption: key %q got %q want %q", k, got, v)
			}
		}
	})
}
