package core

import (
	"errors"
	"sync"

	"shieldstore/internal/entry"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
)

// Partitioned is the §5.3 multithreaded deployment: the key space is
// partitioned by the keyed hash, each partition is an independent Store
// owned by exactly one worker thread, and no synchronization is ever
// needed on the data path (Figure 8). All partitions share one enclave
// (and therefore one EPC) and one cipher key set.
type Partitioned struct {
	enclave *sgx.Enclave
	cipher  *entry.Cipher
	//ss:partitioned
	parts []*Store // one Store per worker; data-path code owns exactly one
	//ss:partitioned
	meters []*sim.Meter // one Meter per worker, same ownership rule
	//ss:partitioned
	workers []chan *Call // per-partition submission queues
	wg      sync.WaitGroup
	started bool
}

// NewPartitioned creates n partitions, splitting buckets, MAC hashes and
// cache budget evenly. Mirroring the paper, the partition count is fixed
// at creation (SGX cannot grow enclave threads dynamically).
//
//ss:xpart — constructor; workers do not exist yet.
func NewPartitioned(e *sgx.Enclave, n int, opts Options) *Partitioned {
	if n <= 0 {
		n = 1
	}
	setup := sim.NewMeter(e.Model())
	cipher := entry.NewCipher(e, setup)

	p := &Partitioned{enclave: e, cipher: cipher}
	per := opts
	per.Buckets = max(1, opts.Buckets/n)
	per.MACHashes = max(1, opts.MACHashes/n)
	per.CacheBytes = opts.CacheBytes / int64(n)
	for i := 0; i < n; i++ {
		p.parts = append(p.parts, New(e, cipher, per))
		p.meters = append(p.meters, sim.NewMeter(e.Model()))
	}
	return p
}

// Parts returns the number of partitions.
func (p *Partitioned) Parts() int { return len(p.parts) }

// Part returns partition i's store.
//
//ss:xpart — test/control accessor.
func (p *Partitioned) Part(i int) *Store { return p.parts[i] }

// Meter returns partition i's worker meter.
//
//ss:xpart — test/control accessor.
func (p *Partitioned) Meter(i int) *sim.Meter { return p.meters[i] }

// Cipher returns the shared key material.
func (p *Partitioned) Cipher() *entry.Cipher { return p.cipher }

// Route returns the partition owning key. It uses the low bits of the
// keyed hash; stores use the high bits for bucket selection, so the two
// mappings are independent.
func (p *Partitioned) Route(m *sim.Meter, key []byte) int {
	h := p.cipher.BucketHash(m, key)
	return int(h % uint64(len(p.parts)))
}

// Keys returns the total number of live keys across partitions.
//
//ss:xpart — control-plane aggregation; callers quiesce workers first.
func (p *Partitioned) Keys() int {
	total := 0
	for _, s := range p.parts {
		total += s.Keys()
	}
	return total
}

// MaxCycles returns the slowest worker's virtual time — the completion
// time of a parallel phase.
//
//ss:xpart — control-plane aggregation.
func (p *Partitioned) MaxCycles() uint64 {
	var maxC uint64
	for _, m := range p.meters {
		if m.Cycles() > maxC {
			maxC = m.Cycles()
		}
	}
	return maxC
}

// ResetMeters zeroes all worker meters (between benchmark phases).
//
//ss:xpart — control-plane reset between benchmark phases.
func (p *Partitioned) ResetMeters() {
	for _, m := range p.meters {
		m.Reset()
	}
}

// AggregateStats sums event counters across workers.
//
//ss:xpart — control-plane aggregation.
func (p *Partitioned) AggregateStats() sim.Stats {
	agg := sim.NewMeter(p.enclave.Model())
	for _, m := range p.meters {
		agg.Add(m)
	}
	s := agg.Snapshot()
	s.Cycles = p.MaxCycles()
	return s
}

// Start launches one worker goroutine per partition for the asynchronous
// (networked server) mode. Benchmarks drive partitions directly instead.
//
//ss:xpart — hands each worker exactly its own partition; the handoff this checker protects.
func (p *Partitioned) Start() {
	if p.started {
		return
	}
	p.started = true
	p.workers = make([]chan *Call, len(p.parts))
	for i := range p.parts {
		ch := make(chan *Call, 256)
		p.workers[i] = ch
		p.wg.Add(1)
		go p.worker(p.parts[i], p.meters[i], ch)
	}
}

// worker owns one partition. Each wakeup drains up to drainBatch pending
// calls from the queue and executes the whole drain at once; beyond one
// call, the drain is combined into a single ApplyBatch so the fixed
// request overhead and the per-set integrity work are paid once per drain
// instead of once per op.
func (p *Partitioned) worker(s *Store, m *sim.Meter, ch chan *Call) {
	defer p.wg.Done()
	calls := make([]*Call, 0, drainBatch)
	var ops []BatchOp
	var rs []BatchResult
	for {
		c, ok := <-ch
		if !ok {
			return
		}
		calls = append(calls[:0], c)
		open := true
	drain:
		for len(calls) < drainBatch {
			select {
			case c2, ok2 := <-ch:
				if !ok2 {
					open = false
					break drain
				}
				calls = append(calls, c2)
			default:
				break drain
			}
		}
		m.Count(sim.CtrDispatch)
		ops, rs = runDrain(s, m, calls, ops, rs)
		if !open {
			return
		}
	}
}

// Stop drains and joins the workers.
//
//ss:xpart — control-plane shutdown.
func (p *Partitioned) Stop() {
	if !p.started {
		return
	}
	for _, ch := range p.workers {
		close(ch)
	}
	p.wg.Wait()
	p.started = false
	p.workers = nil
}

// Get fetches key through the worker pool (Start must have been called).
func (p *Partitioned) Get(routeM *sim.Meter, key []byte) ([]byte, error) {
	val, _, err := p.Submit(routeM, BatchGet, key, nil, 0).Wait()
	return val, err
}

// Set stores key through the worker pool.
func (p *Partitioned) Set(routeM *sim.Meter, key, value []byte) error {
	_, _, err := p.Submit(routeM, BatchSet, key, value, 0).Wait()
	return err
}

// Append appends through the worker pool.
func (p *Partitioned) Append(routeM *sim.Meter, key, suffix []byte) error {
	_, _, err := p.Submit(routeM, BatchAppend, key, suffix, 0).Wait()
	return err
}

// Incr increments through the worker pool.
func (p *Partitioned) Incr(routeM *sim.Meter, key []byte, delta int64) (int64, error) {
	_, num, err := p.Submit(routeM, BatchIncr, key, nil, delta).Wait()
	return num, err
}

// Delete removes through the worker pool.
func (p *Partitioned) Delete(routeM *sim.Meter, key []byte) error {
	_, _, err := p.Submit(routeM, BatchDelete, key, nil, 0).Wait()
	return err
}

// ExecBatch routes a heterogeneous batch through the worker pool with one
// call slot per *involved partition* — not one channel round trip per
// key. Each partition executes its sub-batch via ApplyBatch (amortized
// integrity updates); the per-partition results are scattered back into
// submission order. Start must have been called.
func (p *Partitioned) ExecBatch(routeM *sim.Meter, ops []BatchOp) []BatchResult {
	return p.SubmitBatch(routeM, ops).Wait()
}

// GetMulti fetches keys with at most Parts() worker round trips. The
// result has one slot per key; missing keys are nil. Any error other than
// a miss fails the call.
func (p *Partitioned) GetMulti(routeM *sim.Meter, keys [][]byte) ([][]byte, error) {
	ops := make([]BatchOp, len(keys))
	for i, k := range keys {
		ops[i] = BatchOp{Kind: BatchGet, Key: k}
	}
	rs := p.ExecBatch(routeM, ops)
	vals := make([][]byte, len(keys))
	for i, r := range rs {
		switch {
		case r.Err == nil:
			vals[i] = r.Val
			if vals[i] == nil {
				vals[i] = []byte{}
			}
		case errors.Is(r.Err, ErrNotFound):
			vals[i] = nil
		default:
			return nil, r.Err
		}
	}
	return vals, nil
}

// Repartition rebuilds the store across a new partition count — the
// dynamic parallelism adjustment §5.3 leaves to future work (SGX1 cannot
// grow enclave *threads* at runtime, but the partition map itself can be
// rebuilt during a stop-the-world window, e.g. before spawning a
// different number of untrusted worker threads at the next restart).
//
// The rebuild decrypts every entry once and reinserts it under the new
// partition routing; the cost (charged to the supplied meter) is
// proportional to the data set, which is why the paper treats the thread
// count as fixed. The worker pool must be stopped.
//
//ss:xpart — rebuilds the partition set while workers are stopped.
func (p *Partitioned) Repartition(m *sim.Meter, n int) error {
	if p.started {
		return errors.New("core: stop the worker pool before repartitioning")
	}
	if n <= 0 {
		n = 1
	}
	if n == len(p.parts) {
		return nil
	}
	oldParts := p.parts

	// Build the new partition set with the same cipher and per-partition
	// shares of the original global configuration.
	opts := oldParts[0].Options()
	totalBuckets := opts.Buckets * len(oldParts)
	totalHashes := opts.MACHashes * len(oldParts)
	totalCache := opts.CacheBytes * int64(len(oldParts))
	per := opts
	per.Buckets = max(1, totalBuckets/n)
	per.MACHashes = max(1, totalHashes/n)
	per.CacheBytes = totalCache / int64(n)

	newParts := make([]*Store, n)
	newMeters := make([]*sim.Meter, n)
	for i := 0; i < n; i++ {
		newParts[i] = New(p.enclave, p.cipher, per)
		newMeters[i] = sim.NewMeter(p.enclave.Model())
	}
	// Re-route every pair. Decryption/re-encryption happens inside the
	// enclave; the old untrusted memory is abandoned to the host heap.
	route := func(key []byte) int {
		h := p.cipher.BucketHash(m, key)
		return int(h % uint64(n))
	}
	for _, s := range oldParts {
		err := s.ForEachDecrypt(m, func(k, v []byte) error {
			return newParts[route(k)].Set(m, k, v)
		})
		if err != nil {
			return err
		}
	}
	p.parts = newParts
	p.meters = newMeters
	return nil
}
