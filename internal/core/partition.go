package core

import (
	"errors"
	"sync"
	"sync/atomic"

	"shieldstore/internal/entry"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
)

// Partitioned is the §5.3 multithreaded deployment: the key space is
// partitioned by the keyed hash, each partition is an independent Store
// owned by exactly one worker thread, and no synchronization is ever
// needed on the data path (Figure 8). All partitions share one enclave
// (and therefore one EPC) and one cipher key set.
type Partitioned struct {
	enclave *sgx.Enclave
	cipher  *entry.Cipher
	//ss:partitioned
	parts []*Store // one Store per worker; data-path code owns exactly one
	//ss:partitioned
	meters []*sim.Meter // one Meter per worker, same ownership rule
	//ss:partitioned
	workers []chan *Call // per-partition submission queues
	//ss:partitioned
	ctls []chan ctlMsg // per-partition control queues (RunCtl)
	//ss:partitioned
	journals []Journal // per-partition op journals handed to workers at Start
	wg       sync.WaitGroup
	started  bool

	// partsMu guards parts against concurrent swap (InstallPart) vs the
	// control-plane readers; the data path never touches it (workers
	// receive their Store by handoff and by ctl message).
	partsMu sync.RWMutex

	// scrubSets bounds how many bucket sets a worker verifies per idle
	// wakeup (0 disables background scrubbing). Set before Start.
	scrubSets int

	// gcCopies bounds how many value-log records a worker relocates per
	// idle GC slice (0 disables background value-log GC). The GC rides
	// the same idle slots as the scrubber, after the scrub pass of a
	// quiet period completes. Set before Start.
	gcCopies int

	// events receives the index of a partition whose quarantine latch
	// just tripped (best-effort: the buffer bounds it). A healer drains
	// this to trigger rebuilds.
	events chan int

	// selfHeal marks quarantine transitions as immediately rebuilding, so
	// clients only ever observe the retryable degraded state — set by the
	// healer that guarantees a rebuild follows every latch trip.
	selfHeal atomic.Bool
}

// Journal is a per-partition durability hook: the worker logs every
// successfully applied mutation (never reads) through it, in apply
// order, before acknowledging the call. persist.WAL implements it. A
// LogOp failure detaches the journal and flags the partition's health
// (JournalLost) rather than failing the operation.
type Journal interface {
	LogOp(m *sim.Meter, kind BatchKind, key, value []byte, delta int64) error
}

// GroupJournal is a Journal with group commit: after a worker drain has
// logged all of its mutations, Commit is called exactly once — before any
// of the drain's calls are acknowledged — so the journal can flush the
// whole drain's records in one shot (the replication shipper uses this to
// ship one frame batch per drain and make "client ack implies replica
// ack" hold without a per-op network round trip). A Commit error fails
// every mutation of the drain: the ops were applied locally, but the node
// cannot vouch for them (e.g. it has been fenced out by a promoted
// replica).
type GroupJournal interface {
	Journal
	Commit(m *sim.Meter) error
}

// WorkerState is the mutable state a partition worker owns: its store,
// its meter, and its journal. Control functions submitted via RunCtl
// receive it by pointer and may swap the store or journal — that is how
// a rebuilt partition is re-admitted without stopping the pool.
type WorkerState struct {
	Store   *Store
	Meter   *sim.Meter
	Journal Journal
}

// ctlMsg is one control-plane request executed by the owning worker
// between drains; done is closed after fn returns.
type ctlMsg struct {
	fn   func(*WorkerState)
	done chan struct{}
}

// NewPartitioned creates n partitions, splitting buckets, MAC hashes and
// cache budget evenly. Mirroring the paper, the partition count is fixed
// at creation (SGX cannot grow enclave threads dynamically).
//
//ss:xpart — constructor; workers do not exist yet.
func NewPartitioned(e *sgx.Enclave, n int, opts Options) *Partitioned {
	if n <= 0 {
		n = 1
	}
	setup := sim.NewMeter(e.Model())
	cipher := entry.NewCipher(e, setup)

	p := &Partitioned{enclave: e, cipher: cipher, events: make(chan int, 4*n)}
	per := opts
	per.Buckets = max(1, opts.Buckets/n)
	per.MACHashes = max(1, opts.MACHashes/n)
	per.CacheBytes = opts.CacheBytes / int64(n)
	per.MemBudget = opts.MemBudget / int64(n)
	p.journals = make([]Journal, n)
	for i := 0; i < n; i++ {
		s := New(e, cipher, per)
		s.SetQuarantineHook(p.hookFor(i, s))
		p.parts = append(p.parts, s)
		p.meters = append(p.meters, sim.NewMeter(e.Model()))
	}
	return p
}

// hookFor builds the quarantine-transition hook for partition i: under
// self-heal the store is flagged rebuilding in the same instant the
// latch trips (so no request ever observes the terminal ErrQuarantined),
// and the healer is woken through the events channel. The send is
// non-blocking — the buffer is sized so a drop can only mean the same
// partition already has a wake pending.
func (p *Partitioned) hookFor(i int, s *Store) func() {
	return func() {
		if p.selfHeal.Load() {
			s.MarkRebuilding()
		}
		select {
		case p.events <- i:
		default:
		}
	}
}

// Enclave returns the shared enclave.
func (p *Partitioned) Enclave() *sgx.Enclave { return p.enclave }

// EnableScrub turns on background integrity scrubbing: each worker
// verifies up to sets bucket sets per idle wakeup, pausing whenever
// requests are pending and going fully idle after a clean pass with no
// intervening traffic. Call before Start.
func (p *Partitioned) EnableScrub(sets int) { p.scrubSets = sets }

// EnableVLogGC turns on background value-log garbage collection: each
// worker relocates up to copies live records out of mostly-dead segments
// per idle slice, after its scrub pass finishes, and parks once no
// segment qualifies for collection. Call before Start.
func (p *Partitioned) EnableVLogGC(copies int) { p.gcCopies = copies }

// SetJournal attaches partition i's op journal (handed to the worker at
// Start). Call before Start.
//
//ss:xpart — control-plane configuration before workers start.
func (p *Partitioned) SetJournal(i int, j Journal) { p.journals[i] = j }

// EnableSelfHeal marks future quarantine transitions as immediately
// rebuilding (requests degrade to the retryable ErrRebuilding instead of
// the terminal ErrQuarantined). Only a healer that guarantees a rebuild
// follows every latch trip should set this.
func (p *Partitioned) EnableSelfHeal() { p.selfHeal.Store(true) }

// QuarantineEvents exposes the latch-trip notifications (partition
// indices, best-effort). A healer drains this channel.
func (p *Partitioned) QuarantineEvents() <-chan int { return p.events }

// RunCtl executes fn on partition i's worker goroutine, between drains,
// and blocks until it has run. fn receives the worker's mutable state
// and may swap the store or journal; it must not block on the worker
// pool itself. Any control intervention also re-arms the background
// scrubber for a fresh pass. Start must have been called, and the pool
// must not be stopped while a RunCtl is in flight.
//
//ss:xpart — control-plane handoff into one worker's queue.
func (p *Partitioned) RunCtl(i int, fn func(*WorkerState)) {
	done := make(chan struct{})
	p.ctls[i] <- ctlMsg{fn: fn, done: done}
	<-done
}

// InstallPart publishes a replacement store for partition i to the
// control plane and attaches the partition's quarantine hook to it.
// Called from within a RunCtl function (worker goroutine) when a healer
// swaps a rebuilt store in; the worker's own reference is the
// WorkerState field, updated by the same control function.
//
//ss:xpart — the re-admission handoff; the worker owns the new store from here on.
func (p *Partitioned) InstallPart(i int, s *Store) {
	s.SetQuarantineHook(p.hookFor(i, s))
	p.partsMu.Lock()
	p.parts[i] = s
	p.partsMu.Unlock()
}

// Health snapshots every partition's health state. Safe for concurrent
// use.
//
//ss:xpart — control-plane health probe over all partitions.
func (p *Partitioned) Health() []PartHealth {
	p.partsMu.RLock()
	defer p.partsMu.RUnlock()
	out := make([]PartHealth, len(p.parts))
	for i, s := range p.parts {
		out[i] = s.Health()
	}
	return out
}

// Parts returns the number of partitions.
func (p *Partitioned) Parts() int { return len(p.parts) }

// Started reports whether the worker pool is running. Control-plane use
// only (same goroutine discipline as Start/Stop).
func (p *Partitioned) Started() bool { return p.started }

// Part returns partition i's store.
//
//ss:xpart — test/control accessor.
func (p *Partitioned) Part(i int) *Store {
	p.partsMu.RLock()
	defer p.partsMu.RUnlock()
	return p.parts[i]
}

// Meter returns partition i's worker meter.
//
//ss:xpart — test/control accessor.
func (p *Partitioned) Meter(i int) *sim.Meter { return p.meters[i] }

// Cipher returns the shared key material.
func (p *Partitioned) Cipher() *entry.Cipher { return p.cipher }

// Route returns the partition owning key. It uses the low bits of the
// keyed hash; stores use the high bits for bucket selection, so the two
// mappings are independent.
func (p *Partitioned) Route(m *sim.Meter, key []byte) int {
	h := p.cipher.BucketHash(m, key)
	return int(h % uint64(len(p.parts)))
}

// Keys returns the total number of live keys across partitions. On a
// running pool each partition's count is read on its own worker (via
// RunCtl, between drains) — stats probes race the data path otherwise.
// Direct-driven pools read inline; those callers quiesce workers first.
//
//ss:xpart — control-plane aggregation.
func (p *Partitioned) Keys() int {
	total := 0
	if p.started {
		for i := range p.parts {
			p.RunCtl(i, func(st *WorkerState) { total += st.Store.Keys() })
		}
		return total
	}
	p.partsMu.RLock()
	defer p.partsMu.RUnlock()
	for _, s := range p.parts {
		total += s.Keys()
	}
	return total
}

// MaxCycles returns the slowest worker's virtual time — the completion
// time of a parallel phase.
//
//ss:xpart — control-plane aggregation.
func (p *Partitioned) MaxCycles() uint64 {
	var maxC uint64
	for _, m := range p.meters {
		if m.Cycles() > maxC {
			maxC = m.Cycles()
		}
	}
	return maxC
}

// ResetMeters zeroes all worker meters (between benchmark phases).
//
//ss:xpart — control-plane reset between benchmark phases.
func (p *Partitioned) ResetMeters() {
	for _, m := range p.meters {
		m.Reset()
	}
}

// AggregateStats sums event counters across workers (Cycles is the max,
// the cluster-critical-path convention). Meters are single-threaded by
// design, and stats probes (the server's CmdStats hook, a supervisor's
// lag monitor) arrive concurrently with the data path — so on a running
// pool each worker's meter is snapshotted on its own goroutine via
// RunCtl, between drains. Direct-driven pools (benchmarks) read inline.
//
//ss:xpart — control-plane aggregation.
func (p *Partitioned) AggregateStats() sim.Stats {
	var s sim.Stats
	for i, m := range p.meters {
		var snap sim.Stats
		if p.started {
			p.RunCtl(i, func(*WorkerState) { snap = m.Snapshot() })
		} else {
			snap = m.Snapshot()
		}
		for c := range snap.Events {
			s.Events[c] += snap.Events[c]
		}
		if snap.Cycles > s.Cycles {
			s.Cycles = snap.Cycles
		}
	}
	return s
}

// Start launches one worker goroutine per partition for the asynchronous
// (networked server) mode. Benchmarks drive partitions directly instead.
//
//ss:xpart — hands each worker exactly its own partition; the handoff this checker protects.
func (p *Partitioned) Start() {
	if p.started {
		return
	}
	p.started = true
	p.workers = make([]chan *Call, len(p.parts))
	p.ctls = make([]chan ctlMsg, len(p.parts))
	for i := range p.parts {
		ch := make(chan *Call, 256)
		ctl := make(chan ctlMsg, 4)
		p.workers[i] = ch
		p.ctls[i] = ctl
		st := &WorkerState{Store: p.parts[i], Meter: p.meters[i], Journal: p.journals[i]}
		p.wg.Add(1)
		go p.worker(st, ch, ctl)
	}
}

// worker owns one partition. Each wakeup drains up to drainBatch pending
// calls from the queue and executes the whole drain at once; beyond one
// call, the drain is combined into a single ApplyBatch so the fixed
// request overhead and the per-set integrity work are paid once per drain
// instead of once per op.
//
// Between drains the worker runs the background scrubber: while requests
// are pending it never scrubs; when idle it verifies scrubSets bucket
// sets per wakeup, and after a full pass uninterrupted by traffic it
// parks until the next request or control message re-arms it (a quiesced
// store the host has no reason to re-touch stays verified; any activity
// restarts the audit).
func (p *Partitioned) worker(st *WorkerState, ch chan *Call, ctl chan ctlMsg) {
	defer p.wg.Done()
	calls := make([]*Call, 0, drainBatch)
	var ops []BatchOp
	var rs []BatchResult
	scrubDone := p.scrubSets <= 0
	gcDone := p.gcCopies <= 0 || st.Store.VLog() == nil
	cleanPass := true
	for {
		var c *Call
		var ok bool
		if (scrubDone && gcDone) || st.Store.Quarantined() {
			select {
			case c, ok = <-ch:
			case msg := <-ctl:
				msg.fn(st)
				close(msg.done)
				scrubDone = p.scrubSets <= 0
				gcDone = p.gcCopies <= 0 || st.Store.VLog() == nil
				cleanPass = true
				continue
			}
		} else {
			select {
			case c, ok = <-ch:
			case msg := <-ctl:
				msg.fn(st)
				close(msg.done)
				scrubDone = p.scrubSets <= 0
				gcDone = p.gcCopies <= 0 || st.Store.VLog() == nil
				cleanPass = true
				continue
			default:
				if !scrubDone {
					wrapped, err := st.Store.ScrubSlice(st.Meter, p.scrubSets)
					if err != nil {
						// Detection already latched/flagged via noteErr;
						// the next iteration parks on the quarantined
						// branch.
						continue
					}
					if wrapped {
						if cleanPass {
							scrubDone = true
						}
						cleanPass = true
					}
					continue
				}
				// Scrub pass clean and quiet: spend the idle slice on
				// value-log GC until no segment qualifies. A zero-copy
				// slice still makes progress (it retires an all-dead
				// victim), so park only when no victim remains.
				copied, err := st.Store.VLogMaintain(st.Meter, p.gcCopies)
				if err != nil {
					continue // latched via noteErr; parks when quarantined
				}
				if copied == 0 {
					if _, more := st.Store.VLog().PickVictim(); !more {
						gcDone = true
					}
				}
				continue
			}
		}
		if !ok {
			return
		}
		calls = append(calls[:0], c)
		open := true
	drain:
		for len(calls) < drainBatch {
			select {
			case c2, ok2 := <-ch:
				if !ok2 {
					open = false
					break drain
				}
				calls = append(calls, c2)
			default:
				break drain
			}
		}
		st.Meter.Count(sim.CtrDispatch)
		ops, rs = runDrain(st, calls, ops, rs)
		cleanPass = false
		scrubDone = p.scrubSets <= 0
		if !open {
			return
		}
	}
}

// Stop drains and joins the workers. Any healer driving RunCtl must be
// stopped first: a control message submitted after the workers exit is
// never executed.
//
//ss:xpart — control-plane shutdown.
func (p *Partitioned) Stop() {
	if !p.started {
		return
	}
	for _, ch := range p.workers {
		close(ch)
	}
	p.wg.Wait()
	p.started = false
	p.workers = nil
	p.ctls = nil
}

// Get fetches key through the worker pool (Start must have been called).
func (p *Partitioned) Get(routeM *sim.Meter, key []byte) ([]byte, error) {
	val, _, err := p.Submit(routeM, BatchGet, key, nil, 0).Wait()
	return val, err
}

// Set stores key through the worker pool.
func (p *Partitioned) Set(routeM *sim.Meter, key, value []byte) error {
	_, _, err := p.Submit(routeM, BatchSet, key, value, 0).Wait()
	return err
}

// Append appends through the worker pool.
func (p *Partitioned) Append(routeM *sim.Meter, key, suffix []byte) error {
	_, _, err := p.Submit(routeM, BatchAppend, key, suffix, 0).Wait()
	return err
}

// Incr increments through the worker pool.
func (p *Partitioned) Incr(routeM *sim.Meter, key []byte, delta int64) (int64, error) {
	_, num, err := p.Submit(routeM, BatchIncr, key, nil, delta).Wait()
	return num, err
}

// Delete removes through the worker pool.
func (p *Partitioned) Delete(routeM *sim.Meter, key []byte) error {
	_, _, err := p.Submit(routeM, BatchDelete, key, nil, 0).Wait()
	return err
}

// ExecBatch routes a heterogeneous batch through the worker pool with one
// call slot per *involved partition* — not one channel round trip per
// key. Each partition executes its sub-batch via ApplyBatch (amortized
// integrity updates); the per-partition results are scattered back into
// submission order. Start must have been called.
func (p *Partitioned) ExecBatch(routeM *sim.Meter, ops []BatchOp) []BatchResult {
	return p.SubmitBatch(routeM, ops).Wait()
}

// GetMulti fetches keys with at most Parts() worker round trips. The
// result has one slot per key; missing keys are nil. Any error other than
// a miss fails the call.
func (p *Partitioned) GetMulti(routeM *sim.Meter, keys [][]byte) ([][]byte, error) {
	ops := make([]BatchOp, len(keys))
	for i, k := range keys {
		ops[i] = BatchOp{Kind: BatchGet, Key: k}
	}
	rs := p.ExecBatch(routeM, ops)
	vals := make([][]byte, len(keys))
	for i, r := range rs {
		switch {
		case r.Err == nil:
			vals[i] = r.Val
			if vals[i] == nil {
				vals[i] = []byte{}
			}
		case errors.Is(r.Err, ErrNotFound):
			vals[i] = nil
		default:
			return nil, r.Err
		}
	}
	return vals, nil
}

// Repartition rebuilds the store across a new partition count — the
// dynamic parallelism adjustment §5.3 leaves to future work (SGX1 cannot
// grow enclave *threads* at runtime, but the partition map itself can be
// rebuilt during a stop-the-world window, e.g. before spawning a
// different number of untrusted worker threads at the next restart).
//
// The rebuild decrypts every entry once and reinserts it under the new
// partition routing; the cost (charged to the supplied meter) is
// proportional to the data set, which is why the paper treats the thread
// count as fixed. The worker pool must be stopped.
//
//ss:xpart — rebuilds the partition set while workers are stopped.
func (p *Partitioned) Repartition(m *sim.Meter, n int) error {
	if p.started {
		return errors.New("core: stop the worker pool before repartitioning")
	}
	if n <= 0 {
		n = 1
	}
	if n == len(p.parts) {
		return nil
	}
	oldParts := p.parts

	// Build the new partition set with the same cipher and per-partition
	// shares of the original global configuration.
	opts := oldParts[0].Options()
	totalBuckets := opts.Buckets * len(oldParts)
	totalHashes := opts.MACHashes * len(oldParts)
	totalCache := opts.CacheBytes * int64(len(oldParts))
	totalMem := opts.MemBudget * int64(len(oldParts))
	per := opts
	per.Buckets = max(1, totalBuckets/n)
	per.MACHashes = max(1, totalHashes/n)
	per.CacheBytes = totalCache / int64(n)
	per.MemBudget = totalMem / int64(n)

	newParts := make([]*Store, n)
	newMeters := make([]*sim.Meter, n)
	for i := 0; i < n; i++ {
		newParts[i] = New(p.enclave, p.cipher, per)
		newMeters[i] = sim.NewMeter(p.enclave.Model())
	}
	// Re-route every pair. Decryption/re-encryption happens inside the
	// enclave; the old untrusted memory is abandoned to the host heap.
	route := func(key []byte) int {
		h := p.cipher.BucketHash(m, key)
		return int(h % uint64(n))
	}
	for _, s := range oldParts {
		err := s.ForEachDecrypt(m, func(k, v []byte) error {
			return newParts[route(k)].Set(m, k, v)
		})
		if err != nil {
			return err
		}
	}
	for i, s := range newParts {
		s.SetQuarantineHook(p.hookFor(i, s))
	}
	p.partsMu.Lock()
	p.parts = newParts
	p.partsMu.Unlock()
	p.meters = newMeters
	// Journals do not survive a repartition: every entry moved partitions,
	// so the old per-partition logs no longer describe the new layout.
	p.journals = make([]Journal, n)
	return nil
}
