// Regression tests for the attacker-reachable panic audit and the
// graceful-degradation reactions: every host tampering below must land
// as a typed error (ErrIntegrity / ErrCorruptPointer / ErrQuarantined),
// never a panic, hang, or silently wrong answer.
package core

import (
	"errors"
	"fmt"
	"testing"

	"shieldstore/internal/entry"
	"shieldstore/internal/fault"
	"shieldstore/internal/mem"
	"shieldstore/internal/sim"
)

func TestBucketOffsetMissingIsTyped(t *testing.T) {
	v := setView{buckets: []int{3, 7}, offs: []int{0, 32}, cnts: []int{2, 2}}
	if _, _, ok := v.bucketOffset(5); ok {
		t.Fatal("bucket 5 should not resolve in the view")
	}
	s, m := newTestStore(Defaults(4))
	must(t, s.Set(m, []byte("a"), []byte("1")))
	res := lookup{bucket: 99}
	if _, err := s.positionOf(&v, &res); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("positionOf on foreign bucket: %v, want ErrIntegrity", err)
	}
}

// fillStore seeds n keys and returns one present key's bucket and chain
// address for tampering.
func fillStore(t *testing.T, opts Options, n int) (*Store, *sim.Meter, []byte, int, mem.Addr) {
	t.Helper()
	s, m := newTestStore(opts)
	for i := 0; i < n; i++ {
		must(t, s.Set(m, []byte(fmt.Sprintf("rk%03d", i)), []byte(fmt.Sprintf("rv%03d", i))))
	}
	key := []byte("rk005")
	b := s.bucketOf(m, key)
	res, err := s.search(m, b, key)
	must(t, err)
	if !res.found {
		t.Fatal("victim key missing")
	}
	return s, m, key, b, res.addr
}

func TestPhantomMissDetected(t *testing.T) {
	// Corrupting ciphertext garbles the decrypted key, so the chain walk
	// misses — but the miss must not be *reported*: the content
	// re-authentication on the report path has to flag it.
	for name, opts := range allConfigs() {
		t.Run(name, func(t *testing.T) {
			s, m, key, _, addr := fillStore(t, opts, 40)
			s.space.Tamper(addr+entry.HeaderSize+1, []byte{0x5A})
			if _, err := s.Get(m, key); !errors.Is(err, ErrIntegrity) {
				t.Fatalf("Get on ciphertext-corrupted key: %v, want ErrIntegrity", err)
			}
			if err := s.Delete(m, key); !errors.Is(err, ErrIntegrity) {
				t.Fatalf("Delete on ciphertext-corrupted key: %v, want ErrIntegrity", err)
			}
		})
	}
}

func TestChainCycleDetected(t *testing.T) {
	for _, macBucket := range []bool{true, false} {
		t.Run(fmt.Sprintf("macBucket=%v", macBucket), func(t *testing.T) {
			opts := Defaults(2)
			opts.MACBucket = macBucket
			s, m, key, _, addr := fillStore(t, opts, 30)
			// Self-loop: the entry's next pointer aims back at itself.
			var self [8]byte
			putLeU64t(self[:], uint64(addr))
			s.space.Tamper(addr+entry.OffNext, self[:])
			if _, err := s.Get(m, []byte("definitely-absent")); err == nil {
				t.Fatal("cyclic chain served a clean miss")
			}
			if _, err := s.Get(m, key); err == nil {
				// The victim may still be found before the cycle; the
				// mutated chain must fail the set verify instead.
				if err := s.VerifyAll(m); err == nil {
					t.Fatal("cyclic chain passed full verification")
				}
			}
		})
	}
}

func TestWildNextPointerTyped(t *testing.T) {
	// Point an entry's next pointer at unallocated untrusted memory: the
	// walk must fail typed instead of faulting past the heap.
	s, m, key, _, addr := fillStore(t, Defaults(2), 30)
	var wild [8]byte
	putLeU64t(wild[:], uint64(mem.UntrustedBase+(1<<40)))
	s.space.Tamper(addr+entry.OffNext, wild[:])
	if _, err := s.Get(m, key); err == nil {
		if _, err := s.Get(m, []byte("absent")); !errors.Is(err, ErrCorruptPointer) && !errors.Is(err, ErrIntegrity) {
			t.Fatalf("wild next pointer: %v", err)
		}
	}
	if err := s.VerifyAll(m); err == nil {
		t.Fatal("wild next pointer passed full verification")
	}
}

func TestSidecarShortAllocationTyped(t *testing.T) {
	// Repoint a MAC-bucket head at an allocation too small for the MAC
	// area: the sidecar read must be span-checked, not walk off the heap.
	s, m, key, b, _ := fillStore(t, Defaults(2), 30)
	small := s.space.Alloc(mem.Untrusted, entry.HeaderSize+2)
	var cnt [4]byte
	putLeU32(cnt[:], 5)
	s.space.Tamper(small+8, cnt[:])
	var ptr [8]byte
	putLeU64t(ptr[:], uint64(small))
	s.space.Tamper(s.macHeadAddr(b), ptr[:])
	if _, err := s.Get(m, key); !errors.Is(err, ErrCorruptPointer) && !errors.Is(err, ErrIntegrity) {
		t.Fatalf("short sidecar allocation: %v", err)
	}
}

func TestForEachBucketRawTamperTyped(t *testing.T) {
	s, m, _, b, addr := fillStore(t, Defaults(2), 30)
	_ = m
	// Oversized length fields must be rejected before allocation.
	var huge [4]byte
	putLeU32(huge[:], 1<<30)
	s.space.Tamper(addr+entry.OffKeySize, huge[:])
	err := s.ForEachBucketRaw(func(int, [][]byte) error { return nil })
	if !errors.Is(err, ErrIntegrity) && !errors.Is(err, ErrCorruptPointer) {
		t.Fatalf("oversized entry in snapshot walk: %v", err)
	}
	// And a wild head pointer must fail typed too.
	var wild [8]byte
	putLeU64t(wild[:], uint64(mem.UntrustedBase+(1<<40)))
	s.space.Tamper(s.headAddr(b), wild[:])
	err = s.ForEachBucketRaw(func(int, [][]byte) error { return nil })
	if !errors.Is(err, ErrCorruptPointer) {
		t.Fatalf("wild head in snapshot walk: %v, want ErrCorruptPointer", err)
	}
}

func TestQuarantineLatch(t *testing.T) {
	opts := Defaults(2)
	opts.Quarantine = true
	s, m, key, _, addr := fillStore(t, opts, 30)
	s.space.Tamper(addr+entry.OffMAC, []byte{0xAA, 0xBB})
	s.space.Tamper(addr+entry.HeaderSize, []byte{0xCC})

	if _, err := s.Get(m, key); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tampered get: %v, want ErrIntegrity", err)
	}
	if !s.Quarantined() {
		t.Fatal("integrity failure did not trip the quarantine latch")
	}
	// Every operation now fails fast with the typed isolation error —
	// including ops on keys the tampering never touched.
	if _, err := s.Get(m, []byte("rk001")); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("quarantined get: %v, want ErrQuarantined", err)
	}
	if err := s.Set(m, []byte("new"), []byte("x")); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("quarantined set: %v, want ErrQuarantined", err)
	}
	if err := s.Delete(m, []byte("rk001")); !errors.Is(err, ErrQuarantined) {
		t.Fatalf("quarantined delete: %v, want ErrQuarantined", err)
	}
	rs := s.ApplyBatch(m, []BatchOp{{Kind: BatchGet, Key: []byte("rk001")}})
	if !errors.Is(rs[0].Err, ErrQuarantined) {
		t.Fatalf("quarantined batch: %v, want ErrQuarantined", rs[0].Err)
	}
	if m.Events(sim.CtrQuarantine) != 1 {
		t.Fatalf("CtrQuarantine = %d, want 1 (latch transition only)", m.Events(sim.CtrQuarantine))
	}
	if m.Events(sim.CtrIntegrityFail) == 0 {
		t.Fatal("CtrIntegrityFail not counted")
	}
	// Unquarantine is verify-first: on a still-corrupt store it must
	// refuse and leave the latch set.
	if err := s.Unquarantine(m); err == nil {
		t.Fatal("Unquarantine cleared a still-corrupt store")
	}
	if !s.Quarantined() {
		t.Fatal("refused Unquarantine cleared the latch anyway")
	}
	// The operator override clears unconditionally.
	s.ForceUnquarantine()
	if s.Quarantined() {
		t.Fatal("ForceUnquarantine did not clear the latch")
	}
}

func TestInjectionPointsDetected(t *testing.T) {
	// Each armed corruption must surface as ErrIntegrity on the very
	// operation whose set collection it preceded (or, for entry flips that
	// garble a different key than the one fetched, on the full scrub).
	cases := []struct {
		point string
		opts  Options
	}{
		{fault.PointChainSplice, Defaults(2)},
		{fault.PointEntryFlip, Defaults(2)},
		{fault.PointMACSidecar, Defaults(2)},
		{fault.PointMerkleLeaf, func() Options {
			o := Defaults(8)
			o.MerkleTree = true
			return o
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.point, func(t *testing.T) {
			s, m, key, _, _ := fillStore(t, tc.opts, 30)
			p := fault.New(7)
			s.SetFaultPlane(p)
			p.Arm(tc.point, fault.Spec{})
			_, opErr := s.Get(m, key)
			if p.Fired(tc.point) != 1 {
				t.Fatalf("point fired %d times, want 1", p.Fired(tc.point))
			}
			if m.Events(sim.CtrFaultInjected) != 1 {
				t.Fatalf("CtrFaultInjected = %d, want 1", m.Events(sim.CtrFaultInjected))
			}
			if opErr == nil {
				// The flip may have hit a non-target key: the scrub must see it.
				if err := s.VerifyAll(m); !errors.Is(err, ErrIntegrity) && !errors.Is(err, ErrCorruptPointer) {
					t.Fatalf("injected %s went undetected: op=nil scrub=%v", tc.point, err)
				}
			} else if !errors.Is(opErr, ErrIntegrity) && !errors.Is(opErr, ErrCorruptPointer) {
				t.Fatalf("injected %s: op error %v is not integrity-typed", tc.point, opErr)
			}
			if m.Events(sim.CtrIntegrityFail) == 0 {
				t.Fatal("CtrIntegrityFail not counted for injected fault")
			}
		})
	}
}

func TestQuarantinedPartsIsolation(t *testing.T) {
	// One partition detects tampering and isolates itself; its siblings
	// keep serving. Driven synchronously (no worker pool) so the tamper
	// targets a deterministic partition.
	opts := Defaults(16)
	opts.Quarantine = true
	e := testEnclave(8 << 20)
	p := NewPartitioned(e, 4, opts)
	m := sim.NewMeter(e.Model())
	keys := make([][]byte, 64)
	for i := range keys {
		keys[i] = []byte(fmt.Sprintf("qk%03d", i))
		must(t, p.Part(p.Route(m, keys[i])).Set(m, keys[i], []byte("v")))
	}
	victim := keys[0]
	vp := p.Route(m, victim)
	vs := p.Part(vp)
	b := vs.bucketOf(m, victim)
	res, err := vs.search(m, b, victim)
	must(t, err)
	vs.space.Tamper(res.addr+entry.HeaderSize, []byte{0xEE})

	if _, err := vs.Get(m, victim); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tampered partition get: %v, want ErrIntegrity", err)
	}
	qp := p.QuarantinedParts()
	if len(qp) != 1 || qp[0] != vp {
		t.Fatalf("QuarantinedParts = %v, want [%d]", qp, vp)
	}
	served, failed := 0, 0
	for _, k := range keys {
		part := p.Route(m, k)
		_, err := p.Part(part).Get(m, k)
		switch {
		case part == vp:
			if !errors.Is(err, ErrQuarantined) {
				t.Fatalf("key %s on quarantined part: %v", k, err)
			}
			failed++
		case err != nil:
			t.Fatalf("key %s on healthy part %d: %v", k, part, err)
		default:
			served++
		}
	}
	if served == 0 || failed == 0 {
		t.Fatalf("served=%d failed=%d: test never exercised both sides", served, failed)
	}
}
