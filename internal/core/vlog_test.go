// Tiered-storage tests: the spill/fault path, core-level freshness
// detection, GC convergence, the scrubber's pointer audit, and the
// cache-rebuild admission pin.
package core

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"testing"

	"shieldstore/internal/sim"
	"shieldstore/internal/vlog"
)

// newTieredStore builds a store with a value log in a temp dir, a tiny
// memory budget (so eligible values spill), and an optional cache.
func newTieredStore(t *testing.T, cacheBytes int64) (*Store, *sim.Meter) {
	t.Helper()
	opts := Defaults(64)
	opts.CacheBytes = cacheBytes
	opts.SpillThreshold = 32
	opts.MemBudget = 1 // any eligible value exceeds the budget
	s, m := newTestStore(opts)
	l, err := vlog.New(s.enclave, t.TempDir(), vlog.Options{SegmentBytes: 1 << 12})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	s.AttachVLog(l)
	return s, m
}

func TestVLogSpillFaultRoundTrip(t *testing.T) {
	s, m := newTieredStore(t, 0)
	want := map[string][]byte{}
	for i := 0; i < 60; i++ {
		key := fmt.Sprintf("key-%03d", i)
		var val []byte
		if i%3 == 0 {
			val = []byte(fmt.Sprintf("small-%d", i)) // below threshold: inline
		} else {
			val = bytes.Repeat([]byte{byte(i)}, 64+i)
		}
		if err := s.Set(m, []byte(key), val); err != nil {
			t.Fatalf("Set(%d): %v", i, err)
		}
		want[key] = val
	}
	if got := m.Events(sim.CtrVLogSpill); got == 0 {
		t.Fatal("no spills recorded")
	}
	if s.VLog().SpilledBytes() == 0 {
		t.Fatal("SpilledBytes = 0 after spilling sets")
	}
	// Inline footprint only counts the small values.
	if s.InlineValueBytes() <= 0 || s.InlineValueBytes() > 60*16 {
		t.Fatalf("InlineValueBytes = %d, implausible", s.InlineValueBytes())
	}
	for key, val := range want {
		got, err := s.Get(m, []byte(key))
		if err != nil {
			t.Fatalf("Get(%s): %v", key, err)
		}
		if !bytes.Equal(got, val) {
			t.Fatalf("Get(%s) = %q, want %q", key, got, val)
		}
	}
	if got := m.Events(sim.CtrVLogFault); got == 0 {
		t.Fatal("no faults recorded on spilled reads")
	}
	if err := s.VerifyAll(m); err != nil {
		t.Fatalf("VerifyAll: %v", err)
	}
}

// TestVLogFaultPromotesToCache pins the hot-tier behavior: the first Get
// of a spilled value faults the log, the second is served from the EPC
// cache without touching disk.
func TestVLogFaultPromotesToCache(t *testing.T) {
	s, m := newTieredStore(t, 1<<16)
	key, val := []byte("hot-key"), bytes.Repeat([]byte{7}, 200)
	if err := s.Set(m, key, val); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(m, key); err != nil {
		t.Fatal(err)
	}
	faults := m.Events(sim.CtrVLogFault)
	if faults == 0 {
		t.Fatal("first read did not fault the value log")
	}
	got, err := s.Get(m, key)
	if err != nil || !bytes.Equal(got, val) {
		t.Fatalf("cached read: %q, %v", got, err)
	}
	if m.Events(sim.CtrVLogFault) != faults {
		t.Fatal("second read faulted despite the cache promotion")
	}
}

// TestVLogTamperGetErrIntegrity is the core-level freshness check: the
// host rewrites sealed log bytes under a spilled entry, and the next
// uncached Get must surface ErrIntegrity (and quarantine, when armed) —
// never plaintext.
func TestVLogTamperGetErrIntegrity(t *testing.T) {
	s, m := newTieredStore(t, 0)
	s.EnableQuarantine()
	key, val := []byte("victim"), bytes.Repeat([]byte{0xA5}, 128)
	if err := s.Set(m, key, val); err != nil {
		t.Fatal(err)
	}
	// Flip sealed bytes in every segment file.
	dir := s.VLog().Dir()
	ents, err := os.ReadDir(dir)
	if err != nil || len(ents) == 0 {
		t.Fatalf("no segment files: %v", err)
	}
	for _, ent := range ents {
		path := dir + "/" + ent.Name()
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i := range data {
			data[i] ^= 0x80
		}
		if err := os.WriteFile(path, data, 0o600); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Get(m, key); !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tampered read: err = %v, want ErrIntegrity", err)
	}
	if !s.Quarantined() {
		t.Fatal("vlog integrity violation did not trip the quarantine latch")
	}
}

// TestVLogScrubAuditsPointers: the scrubber's per-set audit must follow
// spilled pointers to disk, catching tampering no client read has
// touched yet.
func TestVLogScrubAuditsPointers(t *testing.T) {
	s, m := newTieredStore(t, 0)
	for i := 0; i < 30; i++ {
		if err := s.Set(m, []byte(fmt.Sprintf("k%02d", i)), bytes.Repeat([]byte{byte(i + 1)}, 100)); err != nil {
			t.Fatal(err)
		}
	}
	// Clean pass first.
	for done := false; !done; {
		wrapped, err := s.ScrubSlice(m, 16)
		if err != nil {
			t.Fatalf("clean scrub: %v", err)
		}
		done = wrapped
	}
	// Host rewrites one sealed byte (past the per-record header, inside
	// the ciphertext).
	dir := s.VLog().Dir()
	ents, _ := os.ReadDir(dir)
	path := dir + "/" + ents[0].Name()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0x01
	if err := os.WriteFile(path, data, 0o600); err != nil {
		t.Fatal(err)
	}
	var serr error
	for i := 0; i < 64 && serr == nil; i++ {
		_, serr = s.ScrubSlice(m, 16)
	}
	if !errors.Is(serr, ErrIntegrity) {
		t.Fatalf("scrub over tampered log: err = %v, want ErrIntegrity", serr)
	}
}

// TestVLogGCConvergence: overwrite most spilled values to shred the log,
// then drain GC with a tiny copy budget — it must converge (retire every
// victim) without losing a single live value.
func TestVLogGCConvergence(t *testing.T) {
	s, m := newTieredStore(t, 0)
	const n = 80
	want := map[string][]byte{}
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%03d", i)
		val := bytes.Repeat([]byte{byte(i + 1)}, 150)
		if err := s.Set(m, []byte(key), val); err != nil {
			t.Fatal(err)
		}
		want[key] = val
	}
	// Overwrite two-thirds (dead records), delete a few more.
	for i := 0; i < n; i++ {
		key := fmt.Sprintf("k%03d", i)
		switch i % 3 {
		case 0:
			val := bytes.Repeat([]byte{0xF0 ^ byte(i)}, 150)
			if err := s.Set(m, []byte(key), val); err != nil {
				t.Fatal(err)
			}
			want[key] = val
		case 1:
			if err := s.Delete(m, []byte(key)); err != nil {
				t.Fatal(err)
			}
			delete(want, key)
		}
	}
	if s.VLog().DeadBytes() == 0 {
		t.Fatal("no dead bytes after overwrites")
	}
	rounds := 0
	for {
		copied, err := s.VLogMaintain(m, 4) // tiny budget: forces many rounds
		if err != nil {
			t.Fatalf("VLogMaintain: %v", err)
		}
		if copied == 0 {
			if _, more := s.VLog().PickVictim(); !more {
				break
			}
		}
		if rounds++; rounds > 10_000 {
			t.Fatal("GC did not converge")
		}
	}
	if m.Events(sim.CtrVLogGCCopy) == 0 {
		t.Fatal("GC relocated nothing despite live records in victims")
	}
	if s.VLog().PendingRetired() == 0 {
		t.Fatal("GC retired no segments")
	}
	for key, val := range want {
		got, err := s.Get(m, []byte(key))
		if err != nil || !bytes.Equal(got, val) {
			t.Fatalf("post-GC Get(%s): %q, %v", key, got, err)
		}
	}
	if err := s.VerifyAll(m); err != nil {
		t.Fatalf("post-GC VerifyAll: %v", err)
	}
}

// TestConfigureCacheResetsAdmissionState pins the rebuild-path fix: a
// cache whose admission sampling has engaged (hit-starved, past warmup)
// must come back from ConfigureCache with virgin counters, not the dead
// store's bypass calibration.
func TestConfigureCacheResetsAdmissionState(t *testing.T) {
	opts := Defaults(64)
	opts.CacheBytes = 4 << 10
	s, m := newTestStore(opts)
	for i := 0; i < 400; i++ {
		key := []byte(fmt.Sprintf("k%04d", i))
		if err := s.Set(m, key, bytes.Repeat([]byte{1}, 64)); err != nil {
			t.Fatal(err)
		}
		if _, err := s.Get(m, key); err != nil { // each key read once: all misses
			t.Fatal(err)
		}
	}
	if !s.cache.admissionSampling() {
		t.Fatalf("precondition: admission sampling not engaged (fills=%d hits=%d misses=%d)",
			s.cache.fills, s.cache.hits, s.cache.misses)
	}
	s.ConfigureCache(opts.CacheBytes)
	if s.CacheBudget() != opts.CacheBytes {
		t.Fatalf("CacheBudget = %d, want %d", s.CacheBudget(), opts.CacheBytes)
	}
	c := s.cache
	if c.fills != 0 || c.hits != 0 || c.misses != 0 || len(c.items) != 0 {
		t.Fatalf("stale cache state after ConfigureCache: fills=%d hits=%d misses=%d items=%d",
			c.fills, c.hits, c.misses, len(c.items))
	}
	if c.admissionSampling() {
		t.Fatal("fresh cache starts in sampling bypass")
	}
	s.ConfigureCache(0)
	if s.cache != nil || s.CacheBudget() != 0 {
		t.Fatal("ConfigureCache(0) did not detach the cache")
	}
}

// TestVLogSoak is the fixed-seed spill/fault/GC loop the CI vlog-soak job
// runs under -race: a shadow map validates every read while mutations
// churn values across the inline/spilled boundary and GC compacts behind
// them.
func TestVLogSoak(t *testing.T) {
	s, m := newTieredStore(t, 8<<10)
	rng := rand.New(rand.NewSource(1337))
	shadow := map[string][]byte{}
	keyFor := func() string { return fmt.Sprintf("soak-%03d", rng.Intn(200)) }
	valFor := func() []byte {
		n := 8 << rng.Intn(6) // 8..256B: straddles the 32B threshold
		return bytes.Repeat([]byte{byte(rng.Intn(256))}, n)
	}
	for i := 0; i < 5000; i++ {
		key := keyFor()
		switch rng.Intn(10) {
		case 0:
			if err := s.Delete(m, []byte(key)); err != nil && !errors.Is(err, ErrNotFound) {
				t.Fatalf("op %d Delete(%s): %v", i, key, err)
			}
			delete(shadow, key)
		case 1, 2:
			suffix := valFor()
			if err := s.Append(m, []byte(key), suffix); err != nil {
				t.Fatalf("op %d Append(%s): %v", i, key, err)
			}
			shadow[key] = append(shadow[key], suffix...)
		case 3, 4, 5:
			val := valFor()
			if err := s.Set(m, []byte(key), val); err != nil {
				t.Fatalf("op %d Set(%s): %v", i, key, err)
			}
			shadow[key] = val
		default:
			got, err := s.Get(m, []byte(key))
			want, ok := shadow[key]
			if !ok {
				if !errors.Is(err, ErrNotFound) {
					t.Fatalf("op %d Get(%s) on absent key: %q, %v", i, key, got, err)
				}
				continue
			}
			if err != nil || !bytes.Equal(got, want) {
				t.Fatalf("op %d Get(%s) = %q, %v; want %q", i, key, got, err, want)
			}
		}
		if i%257 == 0 {
			if _, err := s.VLogMaintain(m, 32); err != nil {
				t.Fatalf("op %d VLogMaintain: %v", i, err)
			}
		}
	}
	if m.Events(sim.CtrVLogSpill) == 0 || m.Events(sim.CtrVLogFault) == 0 {
		t.Fatalf("soak never exercised the tier: spills=%d faults=%d",
			m.Events(sim.CtrVLogSpill), m.Events(sim.CtrVLogFault))
	}
	for key, want := range shadow {
		got, err := s.Get(m, []byte(key))
		if err != nil || !bytes.Equal(got, want) {
			t.Fatalf("final Get(%s) = %q, %v; want %q", key, got, err, want)
		}
	}
	if err := s.VerifyAll(m); err != nil {
		t.Fatalf("final VerifyAll: %v", err)
	}
}
