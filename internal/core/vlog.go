// Tiered hybrid storage glue (DESIGN.md §14): values above the spill
// threshold move to the untrusted value log once the in-memory budget is
// pressed; the chained entry then stores a sealed 16-byte pointer with
// FlagSpilled set. Gets fault the value back through the EPC cache
// (promote-on-read hot tier); GC copies live records out of mostly-dead
// segments during idle partition-worker slices.
package core

import (
	"crypto/subtle"
	"fmt"

	"shieldstore/internal/entry"
	"shieldstore/internal/sim"
	"shieldstore/internal/vlog"
)

// AttachVLog wires a value log into the store. Must be called before
// serving; a store without a log never spills.
func (s *Store) AttachVLog(l *vlog.Log) { s.vlog = l }

// VLog returns the attached value log (nil when tiering is disabled).
func (s *Store) VLog() *vlog.Log { return s.vlog }

// InlineValueBytes returns the in-memory value footprint the spill budget
// is charged against.
func (s *Store) InlineValueBytes() int64 { return s.inlineValBytes }

// ConfigureCache replaces the EPC plaintext cache with a fresh one of the
// given budget (0 disables it). Rebuild paths MUST use this rather than
// carrying the old cache across: the admission-sampling state (fills,
// hits, misses) is calibrated to the dead store's traffic and would keep
// a rebuilt cache in bypass mode long after the workload changed.
func (s *Store) ConfigureCache(budget int64) {
	s.opts.CacheBytes = budget
	if budget > 0 {
		s.cache = newEPCCache(s.enclave, budget)
	} else {
		s.cache = nil
	}
}

// CacheBudget returns the EPC plaintext cache's configured budget, or 0
// when no cache is attached — the observable restore/rebuild paths must
// preserve.
func (s *Store) CacheBudget() int64 {
	if s.cache == nil {
		return 0
	}
	return s.cache.budget
}

// shouldSpill decides whether a value being written goes to the value
// log: tiering attached, value at or above the threshold, and the
// in-memory budget (when set) would be exceeded by keeping it inline.
func (s *Store) shouldSpill(val []byte) bool {
	if s.vlog == nil || s.opts.SpillThreshold <= 0 || len(val) < s.opts.SpillThreshold {
		return false
	}
	return s.opts.MemBudget == 0 || s.inlineValBytes+int64(len(val)) > s.opts.MemBudget
}

// decodeSpilled unpacks the sealed pointer payload of a FlagSpilled
// entry. The payload was MAC-verified as part of the entry, so a decode
// failure means enclave-side state is inconsistent, not host tampering —
// but it is surfaced as ErrIntegrity all the same so the partition
// quarantines rather than serving garbage.
func (s *Store) decodeSpilled(ptrBytes []byte) (vlog.Ptr, error) {
	if s.vlog == nil {
		return vlog.Ptr{}, fmt.Errorf("%w: spilled entry but no value log attached", ErrIntegrity)
	}
	p, err := vlog.DecodePtr(ptrBytes)
	if err != nil {
		return vlog.Ptr{}, fmt.Errorf("%w: %w", ErrIntegrity, err)
	}
	return p, nil
}

// faultSpilled resolves a FlagSpilled entry's pointer payload to the
// logical value, reading and authenticating the sealed record from the
// untrusted log. The record's key must match the entry's key: the pointer
// is enclave-sealed, so a mismatch means the enclave's own freshness
// state disagrees with the record — treated as an integrity violation.
func (s *Store) faultSpilled(m *sim.Meter, key, ptrBytes []byte) (vlog.Ptr, []byte, error) {
	p, err := s.decodeSpilled(ptrBytes)
	if err != nil {
		return vlog.Ptr{}, nil, err
	}
	rkey, val, err := s.vlog.Read(m, p)
	if err != nil {
		return vlog.Ptr{}, nil, fmt.Errorf("%w: value log: %w", ErrIntegrity, err)
	}
	if subtle.ConstantTimeCompare(rkey, key) != 1 {
		return vlog.Ptr{}, nil, fmt.Errorf("%w: value log record key mismatch", ErrIntegrity)
	}
	m.Count(sim.CtrVLogFault)
	return p, val, nil
}

// VLogMaintain runs one garbage-collection slice: pick the deadest
// eligible segment, copy up to maxCopies live records forward to the log
// tail (rewriting their pointer entries in place), and retire the segment
// once fully drained. Returns the number of records copied. Designed to
// ride the idle partition-worker slots like ScrubSlice: a segment not
// drained within the budget is finished by later slices.
//
//ss:attacker — walks chains in untrusted memory and reads the untrusted log.
func (s *Store) VLogMaintain(m *sim.Meter, maxCopies int) (copied int, err error) {
	if s.vlog == nil {
		return 0, nil
	}
	if err := s.guard(); err != nil {
		return 0, err
	}
	defer func() { s.noteErr(m, err) }()

	seg, ok := s.vlog.PickVictim()
	if !ok {
		return 0, nil
	}
	type rec struct {
		p   vlog.Ptr
		key []byte
		val []byte
	}
	var recs []rec
	err = s.vlog.Scan(m, seg, func(p vlog.Ptr, key, val []byte) error {
		recs = append(recs, rec{p: p, key: append([]byte(nil), key...), val: append([]byte(nil), val...)})
		return nil
	})
	if err != nil {
		return 0, fmt.Errorf("%w: value log: %w", ErrIntegrity, err)
	}
	// The copy budget counts actual relocations, not records examined:
	// dead records cost one index probe each and must not starve the
	// slice, or a segment fronted by dead records would never drain.
	for _, r := range recs {
		if maxCopies > 0 && copied >= maxCopies {
			return copied, nil // budget hit: later slices finish the drain
		}
		moved, rerr := s.relocateSpilled(m, r.key, r.p, r.val)
		if rerr != nil {
			return copied, rerr
		}
		if moved {
			copied++
			m.Count(sim.CtrVLogGCCopy)
		}
	}
	// Full pass: every record is relocated or dead in the index — the
	// segment holds no live data and can be retired (deferred deletion;
	// the file goes away at the next PurgeRetired).
	s.vlog.Retire(m, seg)
	return copied, nil
}

// relocateSpilled moves one live log record to the tail: re-verify that
// the chained entry still points at oldPtr (it may have been overwritten
// or deleted since the scan), append the value at the tail, and rewrite
// the pointer payload in place. Reports whether a copy happened.
func (s *Store) relocateSpilled(m *sim.Meter, key []byte, oldPtr vlog.Ptr, val []byte) (bool, error) {
	b := s.bucketOf(m, key)
	v, err := s.collectSet(m, b)
	if err != nil {
		return false, err
	}
	if err := s.verifySet(m, &v); err != nil {
		return false, err
	}
	res, err := s.search(m, b, key)
	if err != nil {
		return false, err
	}
	if !res.found || res.hdr.Flags&entry.FlagSpilled == 0 {
		return false, nil // overwritten inline or deleted since the scan
	}
	if err := s.verifyEntry(m, &v, &res); err != nil {
		return false, err
	}
	cur, err := s.decodeSpilled(res.val)
	if err != nil {
		return false, err
	}
	if cur != oldPtr {
		return false, nil // already relocated or rewritten
	}
	newPtr, err := s.vlog.Append(m, key, val)
	if err != nil {
		return false, err
	}
	var pb [vlog.PtrSize]byte
	newPtr.Encode(pb[:])
	if err := s.updateInPlace(m, &v, &res, key, pb[:]); err != nil {
		return false, err
	}
	s.writeSetHash(m, &v)
	s.vlog.MarkDead(m, oldPtr)
	return true, nil
}

// auditSpilled extends the background scrubber's per-set audit to the
// cold tier: for every FlagSpilled entry in bucket b, decode its pointer
// and verify the sealed log record in place, so silent disk corruption or
// rollback is found by the scrub pass, not by the next unlucky Get.
func (s *Store) auditSpilled(m *sim.Meter, b int) error {
	link := s.headAddr(b)
	cur, err := s.readPtr(m, link)
	if err != nil {
		return err
	}
	hops := 0
	for cur != 0 {
		if hops++; hops > s.keys+1 {
			return ErrIntegrity
		}
		hb := getScratch(entry.HeaderSize)
		s.space.Peek(cur, *hb)
		hdr := entry.ParseHeader(*hb)
		putScratch(hb)
		if err := s.checkSpan(cur, hdr.TotalLen()); err != nil {
			return err
		}
		if hdr.Flags&entry.FlagSpilled != 0 {
			// Entry authenticity (header, ciphertext, flags) was already
			// established by verifyBucketEntries earlier in the scrub
			// pass; here we only chase the pointer into the log.
			ctp := getScratch(hdr.CTLen())
			ct := *ctp
			s.space.Peek(cur+entry.HeaderSize, ct)
			pt := make([]byte, len(ct))
			s.cipher.DecryptKV(m, &hdr.IV, ct, pt)
			putScratch(ctp)
			p, err := s.decodeSpilled(pt[hdr.KeySize:])
			if err != nil {
				return err
			}
			if err := s.vlog.Verify(m, p); err != nil {
				return fmt.Errorf("%w: value log: %w", ErrIntegrity, err)
			}
		}
		cur = hdr.Next
	}
	return nil
}
