// Background integrity scrubber (DESIGN.md §12): the incremental,
// resumable form of VerifyAll. A partition worker verifies a few bucket
// sets per idle wakeup — the same §4.3 audit the full scrub performs
// (set MAC list against the in-enclave hash, every entry against its
// covered MAC) — so host tampering is detected proactively, between
// requests, instead of on the first client op unlucky enough to touch
// the damaged set. Detections flow through the exact quarantine plumbing
// client-triggered ones do (noteErr → latch → hook).
package core

import (
	"fmt"

	"shieldstore/internal/sim"
)

// ScrubSlice verifies up to maxSets bucket sets starting at the store's
// scrub cursor, advancing (and wrapping) the cursor as it goes. It
// returns wrapped=true when a full pass over every set completed during
// this slice. Verification work is charged to m and counted per set as
// CtrScrub. On a detected violation the error is recorded via the same
// path as an operational failure (tripping the quarantine latch when
// armed) and the slice stops. A quarantined store is never scrubbed —
// the damage is already isolated.
//
//ss:attacker — walks wholly host-controlled chains, like VerifyAll.
func (s *Store) ScrubSlice(m *sim.Meter, maxSets int) (wrapped bool, err error) {
	if gerr := s.guard(); gerr != nil {
		return false, gerr
	}
	defer func() { s.noteErr(m, err) }()
	total := s.opts.MACHashes // == Buckets in Merkle mode (see New)
	pos := int(s.scrubPos.Load())
	if pos >= total {
		pos = 0
	}
	for i := 0; i < maxSets; i++ {
		idx := pos
		m.Count(sim.CtrScrub)
		serr := s.scrubSet(m, idx)
		// Advance even past a failing set: a store without the quarantine
		// latch armed must keep making progress rather than re-detect the
		// same corrupt set on every slice.
		pos++
		if pos >= total {
			pos = 0
			wrapped = true
			s.scrubPasses.Add(1)
		}
		s.scrubPos.Store(int64(pos))
		if serr != nil {
			err = serr
			return wrapped, err
		}
	}
	return wrapped, nil
}

// scrubSet audits one bucket set: collect its MAC material, verify the
// set hash, then authenticate every entry of every bucket in the set —
// the per-set body of VerifyAll.
func (s *Store) scrubSet(m *sim.Meter, idx int) error {
	v, err := s.collectSet(m, idx)
	if err != nil {
		return err
	}
	if err := s.verifySet(m, &v); err != nil {
		return fmt.Errorf("%w (MAC hash slot %d)", err, idx)
	}
	for _, b := range v.buckets {
		if err := s.verifyBucketEntries(m, &v, b); err != nil {
			return fmt.Errorf("%w (bucket %d)", err, b)
		}
	}
	if s.vlog != nil {
		// Cold-tier audit: chase every spilled entry's pointer and verify
		// the sealed log record in place (DESIGN.md §14).
		for _, b := range v.buckets {
			if err := s.auditSpilled(m, b); err != nil {
				return fmt.Errorf("%w (bucket %d, value log)", err, b)
			}
		}
	}
	return nil
}

// ScrubProgress reports the scrub cursor (next set index), the set count
// of a full pass, and how many full passes have completed. Safe to call
// from any goroutine.
func (s *Store) ScrubProgress() (pos, total int, passes uint64) {
	return int(s.scrubPos.Load()), s.opts.MACHashes, s.scrubPasses.Load()
}

// noteJournalLost flags that an attached operation journal failed a
// write and was detached: the partition keeps serving, but its rebuild
// source is incomplete and auto-heal must refuse to use it.
func (s *Store) noteJournalLost() { s.journalLost.Store(true) }

// JournalLost reports whether the partition's op journal was detached
// after a write failure. Safe to call from any goroutine.
func (s *Store) JournalLost() bool { return s.journalLost.Load() }

// ClearJournalLost resets the flag once a fresh, complete journal covers
// the store again (i.e. right after a successful checkpoint rotated in a
// new log).
func (s *Store) ClearJournalLost() { s.journalLost.Store(false) }

// PartState is a partition's health classification.
type PartState int

// Partition health states.
const (
	// PartHealthy serves traffic normally.
	PartHealthy PartState = iota
	// PartQuarantined detected tampering and refuses traffic until
	// verified or rebuilt (terminal without an operator or a healer).
	PartQuarantined
	// PartRebuilding is quarantined with a rebuild in flight: requests
	// fail with the retryable ErrRebuilding.
	PartRebuilding
	// PartUnhealable is quarantined with rebuild refused: the op journal
	// was detached after a write failure, so replaying it would silently
	// drop acknowledged mutations. Requests fail with ErrUnhealable; only
	// an operator restore or a replica failover resolves it.
	PartUnhealable
)

// String returns the state's wire/monitoring name.
func (st PartState) String() string {
	switch st {
	case PartQuarantined:
		return "quarantined"
	case PartRebuilding:
		return "rebuilding"
	case PartUnhealable:
		return "unhealable"
	default:
		return "healthy"
	}
}

// PartHealth is one partition's health snapshot.
type PartHealth struct {
	State       PartState
	ScrubPos    int    // next bucket-set index the scrubber will verify
	ScrubTotal  int    // sets per full pass
	ScrubPasses uint64 // completed full passes
	JournalLost bool   // op journal detached after a write failure
}

// Health snapshots this store's health. Safe to call from any goroutine
// (all inputs are atomics).
func (s *Store) Health() PartHealth {
	h := PartHealth{JournalLost: s.journalLost.Load()}
	h.ScrubPos, h.ScrubTotal, h.ScrubPasses = s.ScrubProgress()
	switch {
	case s.quarantined.Load() && s.rebuilding.Load():
		h.State = PartRebuilding
	case s.quarantined.Load() && h.JournalLost:
		h.State = PartUnhealable
	case s.quarantined.Load():
		h.State = PartQuarantined
	default:
		h.State = PartHealthy
	}
	return h
}

// FormatHealth renders per-partition health as "partN=state ..." lines —
// the payload of the server's CmdHealth response.
func FormatHealth(hs []PartHealth) []string {
	out := make([]string, len(hs))
	for i, h := range hs {
		line := fmt.Sprintf("part%d=%s scrub=%d/%d passes=%d",
			i, h.State, h.ScrubPos, h.ScrubTotal, h.ScrubPasses)
		if h.JournalLost {
			line += " journal=lost"
		}
		out[i] = line
	}
	return out
}
