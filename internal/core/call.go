// Pooled call slots for the worker pool — the runtime-level analogue of
// the paper's HotCalls front-end. The seed dispatch path allocated a
// closure plus a fresh `done` channel for every operation and woke the
// worker once per task; a Call is a reusable request slot (op kind,
// key/value refs, result slots, recycled completion channel) handed to
// the partition worker over a plain channel, and workers drain their
// queue in batches so one request-dispatch overhead covers a whole
// wakeup (see DESIGN.md §9 "Exitless dispatch").
package core

import (
	"sync"

	"shieldstore/internal/sim"
)

// drainBatch bounds how many pending calls a worker dequeues per wakeup.
const drainBatch = 64

// Call is one in-flight operation against a partition worker. Calls are
// pooled: Submit/SubmitBatch take one from the pool, the worker fills the
// result slots and signals done, and Wait recycles it. A Call must not be
// touched after Wait returns.
type Call struct {
	op      BatchKind
	isBatch bool
	key     []byte
	value   []byte
	delta   int64

	// Batch fields (isBatch): the per-partition sub-batch, the submission
	// index of each sub-op, and the BatchCall's shared results slice
	// (distinct partitions write disjoint slots).
	batch   []BatchOp
	scatter []int
	results []BatchResult

	// Single-op result slots.
	val []byte
	num int64
	err error

	// done is the recycled completion primitive: capacity 1, one send per
	// execution, one receive per Wait.
	done chan struct{}
}

var callPool = sync.Pool{
	New: func() any { return &Call{done: make(chan struct{}, 1)} },
}

func getCall() *Call { return callPool.Get().(*Call) }

// putCall clears the slot's references (so pooled calls don't pin request
// buffers) and returns it to the pool.
func putCall(c *Call) {
	c.key, c.value, c.val = nil, nil, nil
	c.err = nil
	c.results = nil
	clear(c.batch)
	c.batch = c.batch[:0]
	c.scatter = c.scatter[:0]
	callPool.Put(c)
}

// Submit enqueues one operation on key's partition worker and returns its
// call slot. kind is one of the Batch* op kinds; value holds the Set
// value or Append suffix, delta the Incr amount. The caller must keep key
// and value alive and unmodified until Wait returns. Start must have been
// called.
//
//ss:xpart — the dispatch plane routes into a partition's queue; the worker behind it owns the Store.
func (p *Partitioned) Submit(routeM *sim.Meter, kind BatchKind, key, value []byte, delta int64) *Call {
	c := getCall()
	c.op = kind
	c.isBatch = false
	c.key, c.value, c.delta = key, value, delta
	p.workers[p.Route(routeM, key)] <- c
	return c
}

// Wait blocks until the call completes, recycles the slot, and returns
// the result triple (value for Get, number for Incr, error).
func (c *Call) Wait() ([]byte, int64, error) {
	<-c.done
	val, num, err := c.val, c.num, c.err
	putCall(c)
	return val, num, err
}

// BatchCall tracks a heterogeneous batch in flight across partitions: one
// pooled Call per involved partition, all scattering into one shared
// results slice.
type BatchCall struct {
	results []BatchResult
	calls   []*Call
}

// SubmitBatch routes ops to their partition workers (one call slot per
// involved partition, as ExecBatch always did) without waiting. The
// caller must keep the ops' key/value buffers alive until Wait returns.
//
//ss:xpart — dispatch-plane routing across partition queues.
func (p *Partitioned) SubmitBatch(routeM *sim.Meter, ops []BatchOp) *BatchCall {
	bc := &BatchCall{results: make([]BatchResult, len(ops))}
	if len(ops) == 0 {
		return bc
	}
	calls := make([]*Call, len(p.parts))
	for i := range ops {
		part := p.Route(routeM, ops[i].Key)
		c := calls[part]
		if c == nil {
			c = getCall()
			c.isBatch = true
			c.results = bc.results
			calls[part] = c
		}
		c.batch = append(c.batch, ops[i])
		c.scatter = append(c.scatter, i)
	}
	for part, c := range calls {
		if c != nil {
			bc.calls = append(bc.calls, c)
			p.workers[part] <- c
		}
	}
	return bc
}

// Wait blocks until every partition's sub-batch completes and returns the
// results in submission order.
func (bc *BatchCall) Wait() []BatchResult {
	for _, c := range bc.calls {
		<-c.done
		putCall(c)
	}
	return bc.results
}

// exec runs a single-op call through the Store's per-op entry points,
// keeping the seed's per-op accounting for non-batched dispatch.
func (c *Call) exec(s *Store, m *sim.Meter) {
	switch c.op {
	case BatchGet:
		c.val, c.err = s.Get(m, c.key)
	case BatchSet:
		c.err = s.Set(m, c.key, c.value)
	case BatchDelete:
		c.err = s.Delete(m, c.key)
	case BatchAppend:
		c.err = s.Append(m, c.key, c.value)
	case BatchIncr:
		c.num, c.err = s.Incr(m, c.key, c.delta)
	default:
		c.err = ErrBadBatchOp
	}
}

// journalOp logs one successfully applied mutation through the worker's
// journal, in apply order, before the call is acknowledged. A journal
// write failure never fails the client operation — the in-memory store is
// intact — but the log is now incomplete: it is detached and the
// partition flagged (JournalLost) so health reports it and auto-heal
// refuses to rebuild from a log missing acknowledged writes.
func journalOp(st *WorkerState, kind BatchKind, key, value []byte, delta int64) {
	if st.Journal == nil {
		return
	}
	if err := st.Journal.LogOp(st.Meter, kind, key, value, delta); err != nil {
		st.Journal = nil
		st.Store.noteJournalLost()
	}
}

// commitJournal runs the group-commit barrier for one drain: after the
// drain's mutations were journaled (journaled true), a GroupJournal's
// Commit must complete before any call is acknowledged. The returned
// error, if any, retracts the drain's mutations — applied locally, but
// the journal (e.g. the replication stream) cannot vouch for them.
func commitJournal(st *WorkerState, journaled bool) error {
	if !journaled || st.Journal == nil {
		return nil
	}
	gj, ok := st.Journal.(GroupJournal)
	if !ok {
		return nil
	}
	return gj.Commit(st.Meter)
}

// runDrain executes one worker wakeup's worth of calls. A lone single-op
// call goes through the per-op Store path (identical accounting to the
// seed); everything else is combined into one ApplyBatch, so the whole
// drain pays one request overhead and shares set verifies — the same
// amortization ApplyBatch gives explicit batches, now applied to
// concurrent single-op traffic. ops and rs are worker-local scratch,
// returned so grown backings are kept.
func runDrain(st *WorkerState, calls []*Call, ops []BatchOp, rs []BatchResult) ([]BatchOp, []BatchResult) {
	s, m := st.Store, st.Meter
	if len(calls) == 1 && !calls[0].isBatch {
		c := calls[0]
		c.exec(s, m)
		if c.err == nil && c.op != BatchGet {
			journalOp(st, c.op, c.key, c.value, c.delta)
			if cerr := commitJournal(st, true); cerr != nil {
				c.err = cerr
			}
		}
		c.done <- struct{}{}
		return ops, rs
	}
	ops = ops[:0]
	for _, c := range calls {
		if c.isBatch {
			ops = append(ops, c.batch...)
		} else {
			ops = append(ops, BatchOp{Kind: c.op, Key: c.key, Value: c.value, Delta: c.delta})
		}
	}
	if cap(rs) < len(ops) {
		rs = make([]BatchResult, len(ops))
	} else {
		rs = rs[:len(ops)]
		clear(rs)
	}
	s.ApplyBatchInto(m, ops, rs)
	journaled := false
	for i := range ops {
		if rs[i].Err == nil && ops[i].Kind != BatchGet {
			journalOp(st, ops[i].Kind, ops[i].Key, ops[i].Value, ops[i].Delta)
			journaled = true
		}
	}
	if cerr := commitJournal(st, journaled); cerr != nil {
		for i := range ops {
			if rs[i].Err == nil && ops[i].Kind != BatchGet {
				rs[i].Err = cerr
			}
		}
	}
	pos := 0
	for _, c := range calls {
		if c.isBatch {
			for j := range c.batch {
				c.results[c.scatter[j]] = rs[pos+j]
			}
			pos += len(c.batch)
		} else {
			c.val, c.num, c.err = rs[pos].Val, rs[pos].Num, rs[pos].Err
			pos++
		}
		c.done <- struct{}{}
	}
	clear(ops) // drop request-buffer refs before the scratch idles
	return ops[:0], rs
}
