// Fault-plane threading and per-partition quarantine.
//
// Injection happens where the §4.3 protocol starts — just before a
// bucket set's MAC material is collected — so every armed corruption is
// in place for the very verification pass that must catch it. Reactions
// follow DESIGN.md §10: a detected ErrIntegrity/ErrCorruptPointer
// optionally trips the partition's quarantine latch (Options.Quarantine),
// after which the partition fails its own requests with ErrQuarantined
// while sibling partitions keep serving.
package core

import (
	"errors"
	"fmt"

	"shieldstore/internal/entry"
	"shieldstore/internal/fault"
	"shieldstore/internal/mem"
	"shieldstore/internal/sim"
)

// ErrQuarantined reports an operation rejected because this partition
// previously detected tampering and isolated itself (Options.Quarantine).
var ErrQuarantined = errors.New("shieldstore: partition quarantined after integrity failure")

// ErrRebuilding reports an operation rejected because this partition is
// quarantined but a rebuild from its last snapshot + journal is under
// way: the condition is transient and the request is safe to retry once
// the healed store is swapped back in (DESIGN.md §12).
var ErrRebuilding = errors.New("shieldstore: partition rebuilding after integrity failure")

// ErrUnhealable reports an operation rejected because this partition is
// quarantined AND its rebuild source is incomplete (the op journal was
// detached after a write failure): auto-heal has refused to rebuild, so
// unlike ErrRebuilding the condition does not resolve on its own — an
// operator restore, or a failover to a replica, must intervene
// (DESIGN.md §15).
var ErrUnhealable = errors.New("shieldstore: partition unhealable, op journal incomplete")

// ErrFenced reports a mutation rejected (or an acknowledged apply
// retracted) because this node has been fenced out by a newer replication
// epoch — a replica was promoted in its place and this node's writes no
// longer count (DESIGN.md §15). Clients must re-route to the current
// primary.
var ErrFenced = errors.New("shieldstore: node fenced by newer replication epoch")

// SetFaultPlane attaches a fault-injection plane (nil detaches). Test
// and experiment use only; the plane's points fire inside this store's
// operation paths.
func (s *Store) SetFaultPlane(p *fault.Plane) { s.faults = p }

// Quarantined reports whether the partition has isolated itself. Safe to
// call from any goroutine (health checks read it while the owning worker
// serves).
func (s *Store) Quarantined() bool { return s.quarantined.Load() }

// Unquarantine clears the latch only after the store re-verifies clean:
// a full VerifyAll audit must pass before traffic is re-admitted. When
// the store is still corrupt the latch stays set and the verification
// failure is returned — blindly re-admitting a tampered partition is the
// misuse this guard exists to stop. A latch that was never set is a
// no-op. Costs accrue to m (a full audit is not free).
func (s *Store) Unquarantine(m *sim.Meter) error {
	if !s.quarantined.Load() {
		return nil
	}
	if err := s.VerifyAll(m); err != nil {
		return fmt.Errorf("shieldstore: unquarantine refused, store still fails verification: %w", err)
	}
	s.rebuilding.Store(false)
	s.quarantined.Store(false)
	return nil
}

// ForceUnquarantine clears the latch without re-verifying anything —
// the raw operator override for state repaired out of band (e.g. after a
// manual restore). Prefer Unquarantine: force-clearing a still-corrupt
// partition re-admits traffic that will fail (and re-trip the latch) on
// the first op that touches the damage.
func (s *Store) ForceUnquarantine() {
	s.rebuilding.Store(false)
	s.quarantined.Store(false)
}

// MarkRebuilding flags a quarantined partition as under rebuild:
// guard() rejections switch from the terminal ErrQuarantined to the
// retryable ErrRebuilding while an orchestrator restores a fresh copy.
func (s *Store) MarkRebuilding() { s.rebuilding.Store(true) }

// ClearRebuilding drops the rebuild flag (a failed rebuild falls back to
// plain quarantine). The latch itself is untouched.
func (s *Store) ClearRebuilding() { s.rebuilding.Store(false) }

// Rebuilding reports whether a rebuild is in progress. Safe to call from
// any goroutine.
func (s *Store) Rebuilding() bool { return s.rebuilding.Load() }

// EnableQuarantine arms the isolation latch on a live store. Restored
// snapshots need this: the sealed metadata does not carry the Quarantine
// option (it is a deployment policy, not enclave state), so a rebuilt
// partition re-arms it before being swapped back into service.
func (s *Store) EnableQuarantine() { s.opts.Quarantine = true }

// SetQuarantineHook registers f to run once, on the goroutine that trips
// the latch, at the moment of the quarantine transition (nil clears).
// The partition dispatcher uses it to flag the rebuild state and wake
// the healer before the failing operation even returns. Must be set
// before the store serves traffic (same ownership rule as SetFaultPlane).
func (s *Store) SetQuarantineHook(f func()) { s.quarantineHook = f }

// guard rejects operations on a quarantined partition. Mid-rebuild the
// rejection is the retryable ErrRebuilding; with the op journal lost the
// rejection is ErrUnhealable (the healer refused a rebuild that would
// drop acknowledged writes, so nobody is coming); otherwise the terminal
// ErrQuarantined.
func (s *Store) guard() error {
	if s.quarantined.Load() {
		if s.rebuilding.Load() {
			return ErrRebuilding
		}
		if s.journalLost.Load() {
			return ErrUnhealable
		}
		return ErrQuarantined
	}
	return nil
}

// noteErr records an operation's outcome: integrity-class failures bump
// CtrIntegrityFail and, when Options.Quarantine is set, trip the latch
// (CtrQuarantine counts the transition, not repeat detections).
func (s *Store) noteErr(m *sim.Meter, err error) {
	if err == nil {
		return
	}
	if errors.Is(err, ErrIntegrity) || errors.Is(err, ErrCorruptPointer) {
		m.Count(sim.CtrIntegrityFail)
		if s.opts.Quarantine && s.quarantined.CompareAndSwap(false, true) {
			m.Count(sim.CtrQuarantine)
			if s.quarantineHook != nil {
				s.quarantineHook()
			}
		}
	}
}

// injectFaults fires any armed untrusted-memory corruptions against
// bucket b. Called at the top of set collection: the damage is in place
// before the MAC material is gathered, exactly as a host attacking
// between requests would leave it. Corruption uses Peek/Tamper (host
// actions cost the enclave nothing and never touch its meters).
//
//ss:seals — emulates host corruption via Tamper; writes no enclave secrets.
func (s *Store) injectFaults(m *sim.Meter, b int) {
	p := s.faults
	if p == nil {
		return
	}
	if p.Hit(fault.PointChainSplice) {
		var zero [8]byte
		s.space.Tamper(s.headAddr(b), zero[:])
		m.Count(sim.CtrFaultInjected)
	}
	if p.Hit(fault.PointEntryFlip) {
		s.injectEntryFlip(p, b)
		m.Count(sim.CtrFaultInjected)
	}
	if p.Hit(fault.PointMACSidecar) {
		s.injectSidecarCorrupt(p, b)
		m.Count(sim.CtrFaultInjected)
	}
	if p.Hit(fault.PointMerkleLeaf) {
		s.injectMerkleTamper(p, b)
		m.Count(sim.CtrFaultInjected)
	}
}

// flipByte XORs one deterministic bit into the byte at a.
//
//ss:seals — flips attacker-visible bytes only.
func (s *Store) flipByte(p *fault.Plane, a mem.Addr) {
	var bb [1]byte
	s.space.Peek(a, bb[:])
	bb[0] ^= 1 << p.Pick(8)
	s.space.Tamper(a, bb[:])
}

// injectEntryFlip flips one ciphertext bit of bucket b's head entry. An
// empty bucket absorbs the fault harmlessly (the arm still counts as
// fired — the host "attacked" nothing).
func (s *Store) injectEntryFlip(p *fault.Plane, b int) {
	var head [8]byte
	s.space.Peek(s.headAddr(b), head[:])
	cur := mem.Addr(leU64(head[:]))
	if cur == 0 {
		return
	}
	var hdrBuf [entry.HeaderSize]byte
	s.space.Peek(cur, hdrBuf[:])
	hdr := entry.ParseHeader(hdrBuf[:])
	if hdr.CTLen() <= 0 || hdr.CTLen() > 64<<20 {
		return
	}
	s.flipByte(p, cur+entry.HeaderSize+mem.Addr(p.Pick(hdr.CTLen())))
}

// injectSidecarCorrupt flips one byte of bucket b's MAC-bucket sidecar
// (no-op without MAC bucketing or for an empty sidecar).
func (s *Store) injectSidecarCorrupt(p *fault.Plane, b int) {
	if !s.opts.MACBucket {
		return
	}
	var head [8]byte
	s.space.Peek(s.macHeadAddr(b), head[:])
	node := mem.Addr(leU64(head[:]))
	if node == 0 {
		return
	}
	var cntBuf [4]byte
	s.space.Peek(node+8, cntBuf[:])
	cnt := int(leU32(cntBuf[:]))
	if cnt <= 0 {
		return
	}
	if cnt > s.opts.MACBucketCap {
		cnt = s.opts.MACBucketCap
	}
	s.flipByte(p, node+macNodeHdr+mem.Addr(p.Pick(cnt*entry.MACSize)))
}

// injectMerkleTamper corrupts the untrusted Merkle node on bucket b's
// verification path (the leaf's sibling — VerifyLeaf reads siblings, not
// the leaf's own stored digest), so the very next op on b fails the root
// check. No-op outside MerkleTree mode.
func (s *Store) injectMerkleTamper(p *fault.Plane, b int) {
	if s.tree == nil {
		return
	}
	var d [16]byte
	for i := range d {
		d[i] = byte(1 + p.Pick(255))
	}
	s.tree.TamperNode((s.tree.Cap()+b)^1, d)
}

// QuarantinedParts lists the indices of partitions that have isolated
// themselves. Safe for concurrent use.
//
//ss:xpart — control-plane health probe over all partitions.
func (p *Partitioned) QuarantinedParts() []int {
	p.partsMu.RLock()
	defer p.partsMu.RUnlock()
	var out []int
	for i, s := range p.parts {
		if s.Quarantined() {
			out = append(out, i)
		}
	}
	return out
}

// SetFaultPlane attaches one plane to every partition.
//
//ss:xpart — control-plane configuration before workers start.
func (p *Partitioned) SetFaultPlane(pl *fault.Plane) {
	p.partsMu.RLock()
	defer p.partsMu.RUnlock()
	for _, s := range p.parts {
		s.SetFaultPlane(pl)
	}
}
