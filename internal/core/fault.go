// Fault-plane threading and per-partition quarantine.
//
// Injection happens where the §4.3 protocol starts — just before a
// bucket set's MAC material is collected — so every armed corruption is
// in place for the very verification pass that must catch it. Reactions
// follow DESIGN.md §10: a detected ErrIntegrity/ErrCorruptPointer
// optionally trips the partition's quarantine latch (Options.Quarantine),
// after which the partition fails its own requests with ErrQuarantined
// while sibling partitions keep serving.
package core

import (
	"errors"

	"shieldstore/internal/entry"
	"shieldstore/internal/fault"
	"shieldstore/internal/mem"
	"shieldstore/internal/sim"
)

// ErrQuarantined reports an operation rejected because this partition
// previously detected tampering and isolated itself (Options.Quarantine).
var ErrQuarantined = errors.New("shieldstore: partition quarantined after integrity failure")

// SetFaultPlane attaches a fault-injection plane (nil detaches). Test
// and experiment use only; the plane's points fire inside this store's
// operation paths.
func (s *Store) SetFaultPlane(p *fault.Plane) { s.faults = p }

// Quarantined reports whether the partition has isolated itself. Safe to
// call from any goroutine (health checks read it while the owning worker
// serves).
func (s *Store) Quarantined() bool { return s.quarantined.Load() }

// Unquarantine clears the latch (operator override after repair).
func (s *Store) Unquarantine() { s.quarantined.Store(false) }

// guard rejects operations on a quarantined partition.
func (s *Store) guard() error {
	if s.quarantined.Load() {
		return ErrQuarantined
	}
	return nil
}

// noteErr records an operation's outcome: integrity-class failures bump
// CtrIntegrityFail and, when Options.Quarantine is set, trip the latch
// (CtrQuarantine counts the transition, not repeat detections).
func (s *Store) noteErr(m *sim.Meter, err error) {
	if err == nil {
		return
	}
	if errors.Is(err, ErrIntegrity) || errors.Is(err, ErrCorruptPointer) {
		m.Count(sim.CtrIntegrityFail)
		if s.opts.Quarantine && s.quarantined.CompareAndSwap(false, true) {
			m.Count(sim.CtrQuarantine)
		}
	}
}

// injectFaults fires any armed untrusted-memory corruptions against
// bucket b. Called at the top of set collection: the damage is in place
// before the MAC material is gathered, exactly as a host attacking
// between requests would leave it. Corruption uses Peek/Tamper (host
// actions cost the enclave nothing and never touch its meters).
//
//ss:seals — emulates host corruption via Tamper; writes no enclave secrets.
func (s *Store) injectFaults(m *sim.Meter, b int) {
	p := s.faults
	if p == nil {
		return
	}
	if p.Hit(fault.PointChainSplice) {
		var zero [8]byte
		s.space.Tamper(s.headAddr(b), zero[:])
		m.Count(sim.CtrFaultInjected)
	}
	if p.Hit(fault.PointEntryFlip) {
		s.injectEntryFlip(p, b)
		m.Count(sim.CtrFaultInjected)
	}
	if p.Hit(fault.PointMACSidecar) {
		s.injectSidecarCorrupt(p, b)
		m.Count(sim.CtrFaultInjected)
	}
	if p.Hit(fault.PointMerkleLeaf) {
		s.injectMerkleTamper(p, b)
		m.Count(sim.CtrFaultInjected)
	}
}

// flipByte XORs one deterministic bit into the byte at a.
//
//ss:seals — flips attacker-visible bytes only.
func (s *Store) flipByte(p *fault.Plane, a mem.Addr) {
	var bb [1]byte
	s.space.Peek(a, bb[:])
	bb[0] ^= 1 << p.Pick(8)
	s.space.Tamper(a, bb[:])
}

// injectEntryFlip flips one ciphertext bit of bucket b's head entry. An
// empty bucket absorbs the fault harmlessly (the arm still counts as
// fired — the host "attacked" nothing).
func (s *Store) injectEntryFlip(p *fault.Plane, b int) {
	var head [8]byte
	s.space.Peek(s.headAddr(b), head[:])
	cur := mem.Addr(leU64(head[:]))
	if cur == 0 {
		return
	}
	var hdrBuf [entry.HeaderSize]byte
	s.space.Peek(cur, hdrBuf[:])
	hdr := entry.ParseHeader(hdrBuf[:])
	if hdr.CTLen() <= 0 || hdr.CTLen() > 64<<20 {
		return
	}
	s.flipByte(p, cur+entry.HeaderSize+mem.Addr(p.Pick(hdr.CTLen())))
}

// injectSidecarCorrupt flips one byte of bucket b's MAC-bucket sidecar
// (no-op without MAC bucketing or for an empty sidecar).
func (s *Store) injectSidecarCorrupt(p *fault.Plane, b int) {
	if !s.opts.MACBucket {
		return
	}
	var head [8]byte
	s.space.Peek(s.macHeadAddr(b), head[:])
	node := mem.Addr(leU64(head[:]))
	if node == 0 {
		return
	}
	var cntBuf [4]byte
	s.space.Peek(node+8, cntBuf[:])
	cnt := int(leU32(cntBuf[:]))
	if cnt <= 0 {
		return
	}
	if cnt > s.opts.MACBucketCap {
		cnt = s.opts.MACBucketCap
	}
	s.flipByte(p, node+macNodeHdr+mem.Addr(p.Pick(cnt*entry.MACSize)))
}

// injectMerkleTamper corrupts the untrusted Merkle node on bucket b's
// verification path (the leaf's sibling — VerifyLeaf reads siblings, not
// the leaf's own stored digest), so the very next op on b fails the root
// check. No-op outside MerkleTree mode.
func (s *Store) injectMerkleTamper(p *fault.Plane, b int) {
	if s.tree == nil {
		return
	}
	var d [16]byte
	for i := range d {
		d[i] = byte(1 + p.Pick(255))
	}
	s.tree.TamperNode((s.tree.Cap()+b)^1, d)
}

// QuarantinedParts lists the indices of partitions that have isolated
// themselves. Safe for concurrent use.
//
//ss:xpart — control-plane health probe over all partitions.
func (p *Partitioned) QuarantinedParts() []int {
	var out []int
	for i, s := range p.parts {
		if s.Quarantined() {
			out = append(out, i)
		}
	}
	return out
}

// SetFaultPlane attaches one plane to every partition.
//
//ss:xpart — control-plane configuration before workers start.
func (p *Partitioned) SetFaultPlane(pl *fault.Plane) {
	for _, s := range p.parts {
		s.SetFaultPlane(pl)
	}
}
