package core

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"shieldstore/internal/sim"
)

func TestPartitionedRoutingStable(t *testing.T) {
	e := testEnclave(8 << 20)
	p := NewPartitioned(e, 4, Defaults(64))
	m := sim.NewMeter(e.Model())
	for i := 0; i < 100; i++ {
		key := []byte(fmt.Sprintf("k%03d", i))
		r1 := p.Route(m, key)
		r2 := p.Route(m, key)
		if r1 != r2 {
			t.Fatalf("routing unstable for %s", key)
		}
		if r1 < 0 || r1 >= p.Parts() {
			t.Fatalf("route out of range: %d", r1)
		}
	}
}

func TestPartitionedSpreadsKeys(t *testing.T) {
	e := testEnclave(8 << 20)
	p := NewPartitioned(e, 4, Defaults(64))
	m := sim.NewMeter(e.Model())
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		counts[p.Route(m, []byte(fmt.Sprintf("key-%05d", i)))]++
	}
	for i, c := range counts {
		if c < 700 || c > 1300 {
			t.Errorf("partition %d has %d/4000 keys (want ~1000)", i, c)
		}
	}
}

func TestPartitionedWorkerOps(t *testing.T) {
	e := testEnclave(8 << 20)
	p := NewPartitioned(e, 3, Defaults(48))
	p.Start()
	defer p.Stop()
	m := sim.NewMeter(e.Model())

	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("k%04d", i))
		if err := p.Set(m, k, []byte(fmt.Sprintf("v%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if p.Keys() != 200 {
		t.Fatalf("Keys = %d", p.Keys())
	}
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("k%04d", i))
		got, err := p.Get(m, k)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, []byte(fmt.Sprintf("v%04d", i))) {
			t.Fatalf("key %d mismatch", i)
		}
	}
	// Append/Incr/Delete through the pool.
	if err := p.Append(m, []byte("k0000"), []byte("-x")); err != nil {
		t.Fatal(err)
	}
	got, _ := p.Get(m, []byte("k0000"))
	if string(got) != "v0000-x" {
		t.Fatalf("append via pool: %q", got)
	}
	if _, err := p.Incr(m, []byte("ctr"), 41); err != nil {
		t.Fatal(err)
	}
	n, err := p.Incr(m, []byte("ctr"), 1)
	if err != nil || n != 42 {
		t.Fatalf("incr via pool: %d, %v", n, err)
	}
	if err := p.Delete(m, []byte("k0001")); err != nil {
		t.Fatal(err)
	}
	if _, err := p.Get(m, []byte("k0001")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key: %v", err)
	}
}

func TestPartitionedConcurrentClients(t *testing.T) {
	e := testEnclave(8 << 20)
	p := NewPartitioned(e, 4, Defaults(64))
	p.Start()
	defer p.Stop()

	const clients = 8
	const opsPer = 200
	var wg sync.WaitGroup
	errs := make(chan error, clients)
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			m := sim.NewMeter(e.Model())
			for i := 0; i < opsPer; i++ {
				k := []byte(fmt.Sprintf("c%d-k%03d", c, i))
				if err := p.Set(m, k, []byte("v")); err != nil {
					errs <- err
					return
				}
				if _, err := p.Get(m, k); err != nil {
					errs <- err
					return
				}
			}
		}(c)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
	if p.Keys() != clients*opsPer {
		t.Fatalf("Keys = %d, want %d", p.Keys(), clients*opsPer)
	}
}

func TestPartitionedMetersAndStats(t *testing.T) {
	e := testEnclave(8 << 20)
	p := NewPartitioned(e, 2, Defaults(32))
	m := sim.NewMeter(e.Model())

	// Drive partitions directly (benchmark style).
	for i := 0; i < 50; i++ {
		k := []byte(fmt.Sprintf("k%02d", i))
		part := p.Route(m, k)
		if err := p.Part(part).Set(p.Meter(part), k, []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if p.MaxCycles() == 0 {
		t.Fatal("no cycles recorded")
	}
	agg := p.AggregateStats()
	if agg.Events[sim.CtrEncrypt] != 50 {
		t.Fatalf("aggregate encrypts = %d, want 50", agg.Events[sim.CtrEncrypt])
	}
	if agg.Cycles != p.MaxCycles() {
		t.Fatal("aggregate cycles must be the max worker time")
	}
	p.ResetMeters()
	if p.MaxCycles() != 0 {
		t.Fatal("ResetMeters failed")
	}
}

func TestPartitionedSharedCipher(t *testing.T) {
	// All partitions must share key material: an entry written through
	// partition routing must decrypt under the shared cipher.
	e := testEnclave(8 << 20)
	p := NewPartitioned(e, 4, Defaults(64))
	if p.Cipher() == nil {
		t.Fatal("nil shared cipher")
	}
	for i := 0; i < 4; i++ {
		if p.Part(i).Cipher() != p.Cipher() {
			t.Fatalf("partition %d has its own cipher", i)
		}
	}
}

func TestPartitionedSinglePartition(t *testing.T) {
	e := testEnclave(8 << 20)
	p := NewPartitioned(e, 0, Defaults(16)) // clamps to 1
	if p.Parts() != 1 {
		t.Fatalf("Parts = %d, want 1", p.Parts())
	}
	m := sim.NewMeter(e.Model())
	if p.Route(m, []byte("any")) != 0 {
		t.Fatal("single partition must route to 0")
	}
}

func TestRepartition(t *testing.T) {
	e := testEnclave(16 << 20)
	p := NewPartitioned(e, 2, Defaults(64))
	m := sim.NewMeter(e.Model())
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("k%04d", i))
		part := p.Route(m, k)
		if err := p.Part(part).Set(p.Meter(part), k, []byte(fmt.Sprintf("v%04d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := p.Repartition(m, 4); err != nil {
		t.Fatal(err)
	}
	if p.Parts() != 4 {
		t.Fatalf("Parts = %d", p.Parts())
	}
	if p.Keys() != 200 {
		t.Fatalf("Keys = %d after repartition", p.Keys())
	}
	for i := 0; i < 200; i++ {
		k := []byte(fmt.Sprintf("k%04d", i))
		part := p.Route(m, k)
		got, err := p.Part(part).Get(p.Meter(part), k)
		if err != nil || string(got) != fmt.Sprintf("v%04d", i) {
			t.Fatalf("key %d after repartition: %q %v", i, got, err)
		}
	}
	// Every partition verifies.
	for i := 0; i < p.Parts(); i++ {
		if err := p.Part(i).VerifyAll(m); err != nil {
			t.Fatalf("partition %d: %v", i, err)
		}
	}
	// Shrink back down.
	if err := p.Repartition(m, 1); err != nil {
		t.Fatal(err)
	}
	if p.Parts() != 1 || p.Keys() != 200 {
		t.Fatalf("shrink: parts=%d keys=%d", p.Parts(), p.Keys())
	}
	// No-op and guard rails.
	if err := p.Repartition(m, 1); err != nil {
		t.Fatal(err)
	}
	p.Start()
	defer p.Stop()
	if err := p.Repartition(m, 2); err == nil {
		t.Fatal("repartition with running workers must fail")
	}
}

func TestPartitionedExecBatch(t *testing.T) {
	e := testEnclave(8 << 20)
	p := NewPartitioned(e, 4, Defaults(64))
	p.Start()
	defer p.Stop()
	m := sim.NewMeter(e.Model())

	// Mixed batch spanning every partition, with misses interleaved.
	var ops []BatchOp
	for i := 0; i < 64; i++ {
		ops = append(ops, BatchOp{Kind: BatchSet, Key: []byte(fmt.Sprintf("k%03d", i)), Value: []byte(fmt.Sprintf("v%03d", i))})
	}
	for i := 0; i < 64; i++ {
		ops = append(ops, BatchOp{Kind: BatchGet, Key: []byte(fmt.Sprintf("k%03d", i))})
	}
	ops = append(ops, BatchOp{Kind: BatchGet, Key: []byte("missing")})
	rs := p.ExecBatch(m, ops)
	if len(rs) != len(ops) {
		t.Fatalf("got %d results for %d ops", len(rs), len(ops))
	}
	for i := 0; i < 64; i++ {
		if rs[i].Err != nil {
			t.Fatalf("set %d: %v", i, rs[i].Err)
		}
		if rs[64+i].Err != nil || string(rs[64+i].Val) != fmt.Sprintf("v%03d", i) {
			t.Fatalf("get %d: val %q err %v", i, rs[64+i].Val, rs[64+i].Err)
		}
	}
	if !errors.Is(rs[128].Err, ErrNotFound) {
		t.Fatalf("miss: err = %v, want ErrNotFound", rs[128].Err)
	}
	if p.Keys() != 64 {
		t.Fatalf("Keys = %d, want 64", p.Keys())
	}
}

func TestPartitionedGetMulti(t *testing.T) {
	e := testEnclave(8 << 20)
	p := NewPartitioned(e, 3, Defaults(48))
	p.Start()
	defer p.Stop()
	m := sim.NewMeter(e.Model())

	for i := 0; i < 40; i++ {
		if err := p.Set(m, []byte(fmt.Sprintf("k%02d", i)), []byte(fmt.Sprintf("v%02d", i))); err != nil {
			t.Fatal(err)
		}
	}
	keys := [][]byte{[]byte("k05"), []byte("absent"), []byte("k39"), []byte("k00")}
	vals, err := p.GetMulti(m, keys)
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"v05", "", "v39", "v00"}
	for i := range keys {
		if i == 1 {
			if vals[i] != nil {
				t.Fatalf("absent key: got %q, want nil", vals[i])
			}
			continue
		}
		if string(vals[i]) != want[i] {
			t.Fatalf("vals[%d] = %q, want %q", i, vals[i], want[i])
		}
	}
}

func TestPartitionedExecBatchConcurrent(t *testing.T) {
	// Many goroutines issuing overlapping batches: exercises the
	// disjoint-slot result scatter under the race detector.
	e := testEnclave(8 << 20)
	p := NewPartitioned(e, 4, Defaults(64))
	p.Start()
	defer p.Stop()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			m := sim.NewMeter(e.Model())
			for r := 0; r < 20; r++ {
				ops := make([]BatchOp, 16)
				for i := range ops {
					key := []byte(fmt.Sprintf("g%dk%02d", g, i))
					if r%2 == 0 {
						ops[i] = BatchOp{Kind: BatchSet, Key: key, Value: []byte(fmt.Sprintf("r%02d", r))}
					} else {
						ops[i] = BatchOp{Kind: BatchGet, Key: key}
					}
				}
				rs := p.ExecBatch(m, ops)
				for i := range rs {
					if rs[i].Err != nil {
						t.Errorf("g%d r%d op %d: %v", g, r, i, rs[i].Err)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()

	m := sim.NewMeter(e.Model())
	for g := 0; g < 8; g++ {
		for i := 0; i < 16; i++ {
			v, err := p.Get(m, []byte(fmt.Sprintf("g%dk%02d", g, i)))
			if err != nil || !bytes.Equal(v, []byte("r18")) {
				t.Fatalf("g%dk%02d = %q, %v", g, i, v, err)
			}
		}
	}
}
