package core

import (
	"shieldstore/internal/mem"
	"shieldstore/internal/sim"
)

// orderedIndex implements the range-query extension the paper's §7 defers
// to future work ("alternative designs using a balanced tree or skiplist
// can be adopted").
//
// Design: a skiplist over plaintext keys kept entirely in *enclave*
// memory. Keeping the ordered structure inside the enclave sidesteps the
// two problems §7 raises for an untrusted tree — re-designing the
// integrity metadata for ordered structures, and leaking key order to the
// host — at the price of EPC footprint proportional to the key set (keys
// only; values stay encrypted in untrusted memory). That is the opposite
// trade-off from the main table and is exactly why it is an opt-in
// Options.RangeIndex feature: range-heavy deployments pay EPC (and, past
// the EPC limit, paging) for ordered access.
//
// The skiplist nodes are real Go objects for structure, but each node
// owns a simulated enclave allocation that every traversal touches, so
// EPC costs and paging emerge from the hardware model like everywhere
// else.
type orderedIndex struct {
	space *mem.Space
	model *sim.CostModel
	head  *skipNode
	level int
	size  int
	rng   uint64
}

const skipMaxLevel = 16

type skipNode struct {
	key  string
	addr mem.Addr // simulated enclave footprint (key bytes + pointers)
	next []*skipNode
}

func newOrderedIndex(space *mem.Space) *orderedIndex {
	return &orderedIndex{
		space: space,
		model: space.Model(),
		head:  &skipNode{next: make([]*skipNode, skipMaxLevel)},
		level: 1,
		rng:   0x9E3779B97F4A7C15,
	}
}

// touch charges one node visit (key compare + pointer load in EPC).
func (ix *orderedIndex) touch(m *sim.Meter, n *skipNode) {
	if n.addr != 0 {
		var b [8]byte
		ix.space.Read(m, n.addr, b[:])
	} else {
		m.Charge(ix.model.CacheAccess)
	}
}

// randLevel draws a geometric level (p = 1/4), xorshift-based so index
// shape is deterministic per insertion order.
func (ix *orderedIndex) randLevel() int {
	ix.rng ^= ix.rng << 13
	ix.rng ^= ix.rng >> 7
	ix.rng ^= ix.rng << 17
	lvl := 1
	for v := ix.rng; v&3 == 0 && lvl < skipMaxLevel; v >>= 2 {
		lvl++
	}
	return lvl
}

// findPredecessors fills update with the rightmost node < key per level.
func (ix *orderedIndex) findPredecessors(m *sim.Meter, key string, update *[skipMaxLevel]*skipNode) *skipNode {
	x := ix.head
	for i := ix.level - 1; i >= 0; i-- {
		for x.next[i] != nil && x.next[i].key < key {
			x = x.next[i]
			ix.touch(m, x)
		}
		update[i] = x
	}
	return x.next[0]
}

// insert adds key if absent.
//
//ss:enclave-write — skiplist nodes (plaintext keys) live in enclave memory by design (§5.4).
func (ix *orderedIndex) insert(m *sim.Meter, key []byte) {
	var update [skipMaxLevel]*skipNode
	k := string(key)
	found := ix.findPredecessors(m, k, &update)
	if found != nil && found.key == k {
		return
	}
	lvl := ix.randLevel()
	if lvl > ix.level {
		for i := ix.level; i < lvl; i++ {
			update[i] = ix.head
		}
		ix.level = lvl
	}
	n := &skipNode{
		key:  k,
		addr: ix.space.Alloc(mem.Enclave, len(k)+8*lvl),
		next: make([]*skipNode, lvl),
	}
	ix.space.Write(m, n.addr, []byte(k))
	for i := 0; i < lvl; i++ {
		n.next[i] = update[i].next[i]
		update[i].next[i] = n
	}
	ix.size++
}

// remove deletes key if present.
//
//ss:nopanic-ok(levels are bounded by the skipMaxLevel invariant, not by input)
func (ix *orderedIndex) remove(m *sim.Meter, key []byte) {
	var update [skipMaxLevel]*skipNode
	k := string(key)
	found := ix.findPredecessors(m, k, &update)
	if found == nil || found.key != k {
		return
	}
	for i := 0; i < ix.level; i++ {
		if update[i].next[i] == found {
			update[i].next[i] = found.next[i]
		}
	}
	for ix.level > 1 && ix.head.next[ix.level-1] == nil {
		ix.level--
	}
	ix.size--
}

// scan calls f for every key in [start, end) in order, stopping early
// when f returns false. An empty end means "no upper bound".
func (ix *orderedIndex) scan(m *sim.Meter, start, end []byte, f func(key string) bool) {
	var update [skipMaxLevel]*skipNode
	x := ix.findPredecessors(m, string(start), &update)
	for x != nil {
		if len(end) > 0 && x.key >= string(end) {
			return
		}
		ix.touch(m, x)
		if !f(x.key) {
			return
		}
		x = x.next[0]
	}
}

// Len reports the number of indexed keys.
func (ix *orderedIndex) Len() int { return ix.size }

// --- Store integration ---

// KV is one decrypted key-value pair returned by range queries.
type KV struct {
	Key   []byte
	Value []byte
}

// Range returns up to limit pairs with start <= key < end, in key order
// (limit <= 0 means unlimited). It requires Options.RangeIndex; see the
// orderedIndex comment for the EPC trade-off. Values are fetched — and
// integrity-verified — through the normal Get path.
//
//ss:attacker — bounds arrive from the wire.
func (s *Store) Range(m *sim.Meter, start, end []byte, limit int) ([]KV, error) {
	if s.ordered == nil {
		return nil, ErrNoRangeIndex
	}
	m.Charge(s.model.RequestOverhead)
	m.Count(sim.CtrRequest)
	var keys []string
	s.ordered.scan(m, start, end, func(key string) bool {
		keys = append(keys, key)
		return limit <= 0 || len(keys) < limit
	})
	out := make([]KV, 0, len(keys))
	for _, k := range keys {
		val, err := s.Get(m, []byte(k))
		if err != nil {
			// The index and table are maintained together; divergence
			// means untrusted state was tampered with between the scan
			// and the fetch.
			return nil, err
		}
		out = append(out, KV{Key: []byte(k), Value: val})
	}
	return out, nil
}
