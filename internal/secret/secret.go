// Package secret provides memguard-style containers for enclave key
// material: canary-framed buffers that are explicitly wiped when the
// key they hold is released, a constant-time comparison primitive, and
// live-footprint accounting surfaced through the sim meter gauges.
//
// ShieldStore's security argument rests on key material (the sealing
// seed, CMAC/GCM data keys, DRBG state, replication chain keys) never
// leaving the enclave unprotected and never outliving its use. Ordinary
// Go slices satisfy neither property: they are not zeroed on free, and
// nothing marks them as sensitive. A Buffer makes both properties
// explicit and testable — the canaries on either side of the key bytes
// detect out-of-bounds writes into the guarded region, Wipe zeroes the
// key and fails loudly when a canary was clobbered, and the shieldvet
// keyflow/keylife checkers statically require derived keys to live in
// (or be wiped like) these buffers.
//
// The simulation cannot reproduce memguard's mlock/guard-page layers
// (pure Go, no mmap control over the runtime heap), and key schedules
// expanded inside crypto/aes remain unwipeable stdlib state; the canary
// + wipe-on-free + accounting discipline is the portable subset, and
// DESIGN.md §16 documents the residual gap.
//
//ss:trusted
package secret

import (
	"crypto/subtle"
	"errors"
	"sync/atomic"

	"shieldstore/internal/sim"
)

// CanarySize is the guard frame placed on each side of the key bytes.
const CanarySize = 8

// ErrCanary reports that a buffer's guard frame was overwritten — an
// out-of-bounds write reached into (or past) guarded key material.
var ErrCanary = errors.New("secret: canary corrupted (out-of-bounds write into guarded key material)")

// Live-footprint accounting: every un-wiped Buffer counts toward the
// enclave's secret-memory gauges.
var (
	liveBuffers atomic.Int64
	liveBytes   atomic.Int64
)

// Buffer is one guarded key buffer: canary | key bytes | canary. The
// key bytes are reachable only through Bytes, and the buffer must be
// Wiped exactly when the key is released. Not safe for concurrent use;
// like the cipher state it protects, a Buffer belongs to one owner.
type Buffer struct {
	raw   []byte // canary | data | canary
	data  []byte // aliases raw[CanarySize : CanarySize+n]
	wiped bool
}

// canaryByte is the deterministic guard pattern. A fixed pattern (vs.
// memguard's random canary) keeps the simulation reproducible; the
// threat here is accidental overruns, not an adversary forging frames
// inside enclave memory it cannot read.
func canaryByte(i int) byte { return byte(0xA5 ^ i*0x3D) }

func fillCanary(b []byte) {
	for i := range b {
		b[i] = canaryByte(i)
	}
}

func canaryIntact(b []byte) bool {
	var diff byte
	for i := range b {
		diff |= b[i] ^ canaryByte(i)
	}
	return diff == 0
}

// New allocates a guarded buffer for n key bytes (zero-filled).
//
//ss:nopanic-ok(n is a caller-chosen key length, never attacker input; the slice arithmetic is over the fresh allocation it sizes)
func New(n int) *Buffer {
	if n < 0 {
		panic("secret: negative buffer size")
	}
	raw := make([]byte, CanarySize+n+CanarySize)
	fillCanary(raw[:CanarySize])
	fillCanary(raw[CanarySize+n:])
	b := &Buffer{raw: raw, data: raw[CanarySize : CanarySize+n : CanarySize+n]}
	liveBuffers.Add(1)
	liveBytes.Add(int64(n))
	return b
}

// From moves key material into a guarded buffer: the bytes are copied
// in and the source is wiped, so the caller's unguarded copy does not
// linger.
//
//ss:wipes — consumes the source bytes into a guarded buffer.
func From(src []byte) *Buffer {
	b := New(len(src))
	copy(b.data, src)
	WipeBytes(src)
	return b
}

// Bytes exposes the guarded key bytes. The slice aliases the buffer —
// callers must not retain it past the buffer's Wipe. Using a wiped
// buffer is a lifecycle bug and fails loudly.
//
//ss:secret — the returned slice is raw key material.
//ss:keylife-ok(borrowed view: the Buffer owns the wipe, callers of Bytes owe nothing)
//ss:nopanic-ok(use-after-wipe is an owner lifecycle bug, not reachable from attacker-controlled input)
func (b *Buffer) Bytes() []byte {
	if b.wiped {
		panic("secret: use of wiped buffer")
	}
	return b.data
}

// Len returns the guarded key length (valid even after Wipe).
func (b *Buffer) Len() int { return len(b.data) }

// Wiped reports whether the buffer has been released.
func (b *Buffer) Wiped() bool { return b.wiped }

// Equal compares the guarded bytes against x in constant time.
func (b *Buffer) Equal(x []byte) bool {
	return subtle.ConstantTimeCompare(b.Bytes(), x) == 1
}

// Wipe zeroes the key bytes and retires the buffer from the live
// accounting. It verifies the guard frames first and returns ErrCanary
// if either was overwritten — the zeroing still happens, so a corrupted
// buffer never survives its wipe. Idempotent: wiping twice is a no-op.
//
//ss:wipes — the wipe primitive itself.
func (b *Buffer) Wipe() error {
	if b.wiped {
		return nil
	}
	b.wiped = true
	var err error
	if !canaryIntact(b.raw[:CanarySize]) || !canaryIntact(b.raw[CanarySize+len(b.data):]) {
		err = ErrCanary
	}
	WipeBytes(b.raw)
	liveBuffers.Add(-1)
	liveBytes.Add(-int64(len(b.data)))
	return err
}

// WipeBytes zeroes b in place — the wipe primitive for key material
// held in plain slices or arrays (stack-local derived keys, decoded
// sealed-metadata fields) that never got a guarded Buffer.
//
//ss:wipes — the wipe primitive itself.
func WipeBytes(b []byte) {
	for i := range b {
		b[i] = 0
	}
}

// Live returns the current guarded-buffer census: how many un-wiped
// buffers exist and how many key bytes they hold.
func Live() (buffers, bytes int64) {
	return liveBuffers.Load(), liveBytes.Load()
}

// Account publishes the live census to m's gauges, charging the secret
// footprint to enclave memory the way the value log publishes its live
// segment count. Nil meters are tolerated (setup paths).
func Account(m *sim.Meter) {
	if m == nil {
		return
	}
	buffers, bytes := Live()
	m.SetCount(sim.CtrSecretBuffersLive, uint64(buffers))
	m.SetCount(sim.CtrSecretBytesLive, uint64(bytes))
}
