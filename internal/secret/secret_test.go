package secret

import (
	"bytes"
	"errors"
	"testing"

	"shieldstore/internal/sim"
)

func TestBufferHoldsAndWipes(t *testing.T) {
	key := []byte{1, 2, 3, 4, 5, 6, 7, 8}
	src := append([]byte(nil), key...)
	b := From(src)
	// The source copy was consumed.
	if !bytes.Equal(src, make([]byte, len(src))) {
		t.Fatalf("From left the source un-wiped: %v", src)
	}
	if !bytes.Equal(b.Bytes(), key) {
		t.Fatalf("Bytes = %v, want %v", b.Bytes(), key)
	}
	if b.Len() != len(key) || b.Wiped() {
		t.Fatalf("Len=%d Wiped=%v, want %d false", b.Len(), b.Wiped(), len(key))
	}
	data := b.Bytes()
	if err := b.Wipe(); err != nil {
		t.Fatalf("Wipe: %v", err)
	}
	if !b.Wiped() {
		t.Fatal("Wiped() false after Wipe")
	}
	// Wipe-on-free: the backing bytes are zero.
	if !bytes.Equal(data, make([]byte, len(key))) {
		t.Fatalf("key bytes survived the wipe: %v", data)
	}
	// Idempotent.
	if err := b.Wipe(); err != nil {
		t.Fatalf("second Wipe: %v", err)
	}
}

func TestUseAfterWipePanics(t *testing.T) {
	b := New(16)
	if err := b.Wipe(); err != nil {
		t.Fatalf("Wipe: %v", err)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("Bytes() on a wiped buffer did not panic")
		}
	}()
	_ = b.Bytes()
}

func TestCanaryCorruptionDetected(t *testing.T) {
	b := New(4)
	// Bytes() is three-index capped, so a slice overrun cannot even reach
	// the trailing canary; simulate a stray pointer write via the frame.
	b.raw[CanarySize+4] = 0xFF
	if err := b.Wipe(); !errors.Is(err, ErrCanary) {
		t.Fatalf("Wipe after overrun = %v, want ErrCanary", err)
	}
	// The wipe still happened despite the corruption report.
	if !b.Wiped() {
		t.Fatal("buffer not retired after canary failure")
	}

	// Leading canary, via the raw frame.
	b2 := New(4)
	b2.raw[0] ^= 0x80
	if err := b2.Wipe(); !errors.Is(err, ErrCanary) {
		t.Fatalf("Wipe after leading-canary corruption = %v, want ErrCanary", err)
	}
}

func TestEqualConstantTimeSemantics(t *testing.T) {
	b := From([]byte{9, 9, 9, 9})
	defer b.Wipe()
	if !b.Equal([]byte{9, 9, 9, 9}) {
		t.Fatal("Equal(same) = false")
	}
	if b.Equal([]byte{9, 9, 9, 8}) {
		t.Fatal("Equal(diff) = true")
	}
	if b.Equal([]byte{9, 9, 9}) {
		t.Fatal("Equal(short) = true")
	}
}

func TestLiveAccounting(t *testing.T) {
	startBuffers, startBytes := Live()
	a := New(16)
	b := New(32)
	buffers, bts := Live()
	if buffers != startBuffers+2 || bts != startBytes+48 {
		t.Fatalf("Live = (%d, %d), want (%d, %d)", buffers, bts, startBuffers+2, startBytes+48)
	}

	m := sim.NewMeter(sim.DefaultCostModel())
	Account(m)
	if got := m.Events(sim.CtrSecretBytesLive); got != uint64(startBytes+48) {
		t.Fatalf("gauge secret_bytes_live = %d, want %d", got, startBytes+48)
	}
	if got := m.Events(sim.CtrSecretBuffersLive); got != uint64(startBuffers+2) {
		t.Fatalf("gauge secret_buffers_live = %d, want %d", got, startBuffers+2)
	}

	a.Wipe()
	b.Wipe()
	buffers, bts = Live()
	if buffers != startBuffers || bts != startBytes {
		t.Fatalf("Live after wipes = (%d, %d), want (%d, %d)", buffers, bts, startBuffers, startBytes)
	}
	Account(nil) // nil meters tolerated
}

func TestWipeBytes(t *testing.T) {
	b := []byte{1, 2, 3}
	WipeBytes(b)
	if !bytes.Equal(b, []byte{0, 0, 0}) {
		t.Fatalf("WipeBytes left %v", b)
	}
}
