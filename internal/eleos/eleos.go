// Package eleos implements the Eleos comparator of §6.3 (Orenbach et al.,
// EuroSys'17): exit-less user-space paging for enclaves.
//
// Eleos keeps an encrypted backing store in untrusted memory at *page*
// granularity (4 KB, or 1 KB sub-pages) and a software page cache of
// decrypted frames inside the enclave. Accesses through "secure pointers"
// hit the cache or trigger a user-space page-in — decrypt + integrity
// check of a whole page, plus re-encryption of a dirty victim — without
// ever exiting the enclave. Its memsys5-style pool allocator manages at
// most 2 GB per pool, which is why the paper's Figure 17 shows Eleos
// failing beyond 2 GB data sets.
//
// The contrast with ShieldStore is granularity: Eleos moves whole pages
// through the crypto engine no matter how small the object, so 16 B values
// cost the same as 4 KB values (Figure 16), while ShieldStore encrypts
// exactly one entry.
package eleos

import (
	"crypto/aes"
	"crypto/cipher"
	"crypto/subtle"
	"encoding/binary"
	"errors"
	"fmt"

	"shieldstore/internal/cmac"
	"shieldstore/internal/mem"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
	"shieldstore/internal/siphash"
)

// Errors returned by the pager and KV layers.
var (
	// ErrPoolExhausted reports allocation beyond the pool limit — the
	// memsys5 2 GB ceiling of the paper's evaluation.
	ErrPoolExhausted = errors.New("eleos: backing pool exhausted (memsys5 limit)")
	// ErrNotFound reports a missing key.
	ErrNotFound = errors.New("eleos: key not found")
	// ErrIntegrity reports a tampered backing page.
	ErrIntegrity = errors.New("eleos: page integrity verification failed")
)

// EAddr is a virtual address inside the paged backing store. 0 is nil.
type EAddr uint64

// PagerConfig parameterizes the user-space paging layer.
type PagerConfig struct {
	// PageSize is the paging granularity (4096 default; Eleos also
	// supports 1024-byte sub-pages).
	PageSize int
	// CacheBytes is the in-enclave page cache budget.
	CacheBytes int64
	// PoolBytes is the maximum backing-store size (the memsys5 per-pool
	// ceiling; scaled along with data sets in scaled experiments).
	PoolBytes int64
}

// Pager is the exit-less user-space paging engine.
type Pager struct {
	enclave *sgx.Enclave
	space   *mem.Space
	model   *sim.CostModel
	cfg     PagerConfig

	backing mem.Addr // untrusted ciphertext page array
	pages   int      // allocated backing capacity in pages
	next    uint64   // bump allocation offset (starts at PageSize: 0 is nil)

	block cipher.Block
	mac   *cmac.CMAC

	// Per-page metadata lives in enclave memory: version counters (IVs)
	// and page MACs. Both are real simulated allocations so they consume
	// EPC like everything else in the enclave.
	versions mem.Addr // pages x 8 B
	macs     mem.Addr // pages x 16 B

	frames map[int]*frame // resident decrypted pages by page index
	head   *frame         // LRU list
	tail   *frame
	nFrame int
	maxFrm int

	faults uint64
}

type frame struct {
	page       int
	addr       mem.Addr // enclave frame backing
	dirty      bool
	fresh      bool // never written back yet (version 0 page)
	prev, next *frame
}

// NewPager creates the paging layer.
func NewPager(e *sgx.Enclave, cfg PagerConfig) *Pager {
	if cfg.PageSize <= 0 {
		cfg.PageSize = 4096
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = 64 << 20
	}
	if cfg.PoolBytes <= 0 {
		cfg.PoolBytes = 2 << 30
	}
	pages := int(cfg.PoolBytes / int64(cfg.PageSize))
	var key [16]byte
	e.ReadRand(nil, key[:])
	block, err := aes.NewCipher(key[:])
	if err != nil {
		panic(err)
	}
	var mkey [16]byte
	e.ReadRand(nil, mkey[:])
	mc, err := cmac.New(mkey[:])
	if err != nil {
		panic(err)
	}
	p := &Pager{
		enclave: e,
		space:   e.Space(),
		model:   e.Model(),
		cfg:     cfg,
		pages:   pages,
		next:    uint64(cfg.PageSize), // page 0 reserved so EAddr 0 is nil
		block:   block,
		mac:     mc,
		backing: e.Space().Alloc(mem.Untrusted, pages*cfg.PageSize),
		// Metadata arrays are enclave-resident (and EPC-accounted).
		versions: e.Space().Alloc(mem.Enclave, pages*8),
		macs:     e.Space().Alloc(mem.Enclave, pages*16),
		frames:   map[int]*frame{},
		maxFrm:   int(cfg.CacheBytes / int64(cfg.PageSize)),
	}
	if p.maxFrm < 2 {
		p.maxFrm = 2
	}
	return p
}

// Faults reports user-space page-in events (no enclave exits involved).
func (p *Pager) Faults() uint64 { return p.faults }

// PageSize returns the paging granularity.
func (p *Pager) PageSize() int { return p.cfg.PageSize }

// Alloc reserves n bytes of paged memory. Objects never straddle the pool
// end; allocation past PoolBytes fails like memsys5 does.
func (p *Pager) Alloc(m *sim.Meter, n int) (EAddr, error) {
	if n <= 0 {
		n = 1
	}
	n = (n + 7) &^ 7
	m.Charge(p.model.CacheAccess * 2)
	if p.next+uint64(n) > uint64(p.pages)*uint64(p.cfg.PageSize) {
		return 0, ErrPoolExhausted
	}
	a := EAddr(p.next)
	p.next += uint64(n)
	return a, nil
}

// Read copies paged memory at a into buf.
func (p *Pager) Read(m *sim.Meter, a EAddr, buf []byte) error {
	return p.access(m, a, buf, false)
}

// Write copies data into paged memory at a.
func (p *Pager) Write(m *sim.Meter, a EAddr, data []byte) error {
	return p.access(m, a, data, true)
}

// ReadU64 reads a little-endian uint64 from paged memory.
func (p *Pager) ReadU64(m *sim.Meter, a EAddr) (uint64, error) {
	var b [8]byte
	if err := p.Read(m, a, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b[:]), nil
}

// WriteU64 writes a little-endian uint64 to paged memory.
func (p *Pager) WriteU64(m *sim.Meter, a EAddr, v uint64) error {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	return p.Write(m, a, b[:])
}

//ss:enclave-write — page frames are EPC-resident; plaintext never reaches backing memory here.
func (p *Pager) access(m *sim.Meter, a EAddr, buf []byte, write bool) error {
	if a == 0 {
		panic("eleos: nil dereference")
	}
	off := uint64(a)
	for len(buf) > 0 {
		page := int(off / uint64(p.cfg.PageSize))
		in := int(off % uint64(p.cfg.PageSize))
		n := p.cfg.PageSize - in
		if n > len(buf) {
			n = len(buf)
		}
		f, err := p.pin(m, page)
		if err != nil {
			return err
		}
		if write {
			p.space.Write(m, f.addr+mem.Addr(in), buf[:n])
			f.dirty = true
		} else {
			p.space.Read(m, f.addr+mem.Addr(in), buf[:n])
		}
		buf = buf[n:]
		off += uint64(n)
	}
	return nil
}

// pin returns the resident frame for a page, paging it in if needed.
func (p *Pager) pin(m *sim.Meter, page int) (*frame, error) {
	m.Charge(p.model.CacheAccess) // secure-pointer translation
	if f, ok := p.frames[page]; ok {
		m.Count(sim.CtrCacheHit)
		p.moveFront(f)
		return f, nil
	}
	m.Count(sim.CtrCacheMiss)
	p.faults++

	var f *frame
	if p.nFrame < p.maxFrm {
		f = &frame{addr: p.space.Alloc(mem.Enclave, p.cfg.PageSize)}
		p.nFrame++
	} else {
		f = p.tail
		p.unlink(f)
		delete(p.frames, f.page)
		if f.dirty {
			if err := p.writeBack(m, f); err != nil {
				return nil, err
			}
		}
	}
	f.page = page
	f.dirty = false
	if err := p.pageIn(m, f); err != nil {
		return nil, err
	}
	p.frames[page] = f
	p.pushFront(f)
	return f, nil
}

// metaU64 reads per-page metadata. The version and MAC arrays are tiny
// and touched on every pin, so they live in the CPU caches in practice;
// they are charged at cache rates rather than full MEE latency.
func (p *Pager) metaU64(m *sim.Meter, a mem.Addr) uint64 {
	var b [8]byte
	p.space.Peek(a, b[:])
	m.Charge(p.model.CacheAccess)
	return binary.LittleEndian.Uint64(b[:])
}

// pageIn decrypts and verifies a backing page into a frame. Version 0
// means the page was never written back: its content is defined as zeros.
//
//ss:enclave-write — decrypts into an EPC-resident frame.
func (p *Pager) pageIn(m *sim.Meter, f *frame) error {
	ver := p.metaU64(m, p.versions+mem.Addr(f.page*8))
	buf := make([]byte, p.cfg.PageSize)
	if ver == 0 {
		f.fresh = true
		p.space.BulkWrite(m, f.addr, buf)
		return nil
	}
	f.fresh = false
	ct := make([]byte, p.cfg.PageSize)
	p.space.BulkRead(m, p.backing+mem.Addr(f.page*p.cfg.PageSize), ct)

	// Verify page MAC (computed over version || ciphertext). Like the
	// version array this is hot metadata, charged at cache rates.
	var want [16]byte
	p.space.Peek(p.macs+mem.Addr(f.page*16), want[:])
	m.Charge(p.model.CacheAccess)
	got := p.pageMAC(m, f.page, ver, ct)
	if subtle.ConstantTimeCompare(got[:], want[:]) != 1 {
		return ErrIntegrity
	}

	stream := cipher.NewCTR(p.block, p.pageIV(f.page, ver))
	stream.XORKeyStream(buf, ct)
	m.Charge(p.model.AES(p.cfg.PageSize))
	m.Count(sim.CtrDecrypt)
	p.space.BulkWrite(m, f.addr, buf)
	return nil
}

// writeBack encrypts a dirty frame to the backing store under a bumped
// version counter.
//
//ss:seals — backing pages are encrypted and MACed before leaving the frame.
func (p *Pager) writeBack(m *sim.Meter, f *frame) error {
	ver := p.metaU64(m, p.versions+mem.Addr(f.page*8)) + 1
	p.space.WriteU64(m, p.versions+mem.Addr(f.page*8), ver)

	pt := make([]byte, p.cfg.PageSize)
	p.space.BulkRead(m, f.addr, pt)
	ct := make([]byte, p.cfg.PageSize)
	stream := cipher.NewCTR(p.block, p.pageIV(f.page, ver))
	stream.XORKeyStream(ct, pt)
	m.Charge(p.model.AES(p.cfg.PageSize))
	m.Count(sim.CtrEncrypt)

	macv := p.pageMAC(m, f.page, ver, ct)
	p.space.Write(m, p.macs+mem.Addr(f.page*16), macv[:])
	p.space.BulkWrite(m, p.backing+mem.Addr(f.page*p.cfg.PageSize), ct)
	return nil
}

// Flush writes back every dirty frame (tests and shutdown).
func (p *Pager) Flush(m *sim.Meter) error {
	for _, f := range p.frames {
		if f.dirty {
			if err := p.writeBack(m, f); err != nil {
				return err
			}
			f.dirty = false
		}
	}
	return nil
}

func (p *Pager) pageIV(page int, ver uint64) []byte {
	iv := make([]byte, 16)
	binary.LittleEndian.PutUint64(iv[:8], uint64(page))
	binary.LittleEndian.PutUint32(iv[8:12], uint32(ver))
	return iv
}

func (p *Pager) pageMAC(m *sim.Meter, page int, ver uint64, ct []byte) [16]byte {
	input := make([]byte, 16+len(ct))
	binary.LittleEndian.PutUint64(input[:8], uint64(page))
	binary.LittleEndian.PutUint64(input[8:16], ver)
	copy(input[16:], ct)
	m.Charge(p.model.CMAC(len(input)))
	m.Count(sim.CtrCMAC)
	return p.mac.Tag(input)
}

// Tamper overwrites backing-store ciphertext (tests: host attack).
//
//ss:seals — test-only host attack on backing ciphertext.
func (p *Pager) Tamper(page int, off int, data []byte) {
	p.space.Tamper(p.backing+mem.Addr(page*p.cfg.PageSize+off), data)
}

// DropCache evicts every frame, writing dirty pages back (benchmark phase
// boundaries).
func (p *Pager) DropCache(m *sim.Meter) error {
	if err := p.Flush(m); err != nil {
		return err
	}
	for k, f := range p.frames {
		delete(p.frames, k)
		p.unlink(f)
		_ = f
	}
	// Frames are abandoned; the frame pool restarts cold.
	p.nFrame = 0
	p.head, p.tail = nil, nil
	return nil
}

// --- LRU ---

func (p *Pager) pushFront(f *frame) {
	f.prev = nil
	f.next = p.head
	if p.head != nil {
		p.head.prev = f
	}
	p.head = f
	if p.tail == nil {
		p.tail = f
	}
}

func (p *Pager) unlink(f *frame) {
	if f.prev != nil {
		f.prev.next = f.next
	} else {
		p.head = f.next
	}
	if f.next != nil {
		f.next.prev = f.prev
	} else {
		p.tail = f.prev
	}
	f.prev, f.next = nil, nil
}

func (p *Pager) moveFront(f *frame) {
	if p.head == f {
		return
	}
	p.unlink(f)
	p.pushFront(f)
}

// --- key-value store over the pager ---

// KV is the baseline hash KV ported to Eleos (the configuration the paper
// benchmarks in Figures 16 and 17): plaintext table semantics, but every
// byte lives in the encrypted paged backing store.
type KV struct {
	pager   *Pager
	buckets int
	heads   EAddr
	hash    *siphash.Hash
	keys    int
}

const kvHdr = 16 // next 8, keySize 4, valSize 4

// NewKV builds an Eleos-backed store with the given bucket count.
func NewKV(e *sgx.Enclave, pcfg PagerConfig, buckets int) (*KV, error) {
	if buckets <= 0 {
		return nil, fmt.Errorf("eleos: buckets must be positive")
	}
	p := NewPager(e, pcfg)
	var hkey [16]byte
	e.ReadRand(nil, hkey[:])
	kv := &KV{pager: p, buckets: buckets, hash: siphash.New(hkey[:])}
	m := sim.NewMeter(e.Model())
	heads, err := p.Alloc(m, buckets*8)
	if err != nil {
		return nil, err
	}
	kv.heads = heads
	// Zero the head array.
	zero := make([]byte, 4096)
	for off := 0; off < buckets*8; off += len(zero) {
		n := buckets*8 - off
		if n > len(zero) {
			n = len(zero)
		}
		if err := p.Write(m, heads+EAddr(off), zero[:n]); err != nil {
			return nil, err
		}
	}
	return kv, nil
}

// Pager exposes the paging layer (stats, tamper tests).
func (kv *KV) Pager() *Pager { return kv.pager }

// Keys returns the number of live keys.
func (kv *KV) Keys() int { return kv.keys }

func (kv *KV) bucketOf(m *sim.Meter, key []byte) EAddr {
	m.Charge(kv.pager.model.Hash(len(key)))
	b := kv.hash.Sum64(key) % uint64(kv.buckets)
	return kv.heads + EAddr(b*8)
}

// Get returns the value stored under key.
func (kv *KV) Get(m *sim.Meter, key []byte) ([]byte, error) {
	m.Charge(kv.pager.model.RequestOverhead)
	headA := kv.bucketOf(m, key)
	cur, err := kv.pager.ReadU64(m, headA)
	if err != nil {
		return nil, err
	}
	var hdr [kvHdr]byte
	for cur != 0 {
		if err := kv.pager.Read(m, EAddr(cur), hdr[:]); err != nil {
			return nil, err
		}
		next := binary.LittleEndian.Uint64(hdr[0:])
		kl := int(binary.LittleEndian.Uint32(hdr[8:]))
		vl := int(binary.LittleEndian.Uint32(hdr[12:]))
		if kl == len(key) {
			kb := make([]byte, kl)
			if err := kv.pager.Read(m, EAddr(cur)+kvHdr, kb); err != nil {
				return nil, err
			}
			if string(kb) == string(key) {
				val := make([]byte, vl)
				if err := kv.pager.Read(m, EAddr(cur)+kvHdr+EAddr(kl), val); err != nil {
					return nil, err
				}
				return val, nil
			}
		}
		cur = next
	}
	return nil, ErrNotFound
}

// Set inserts or updates key.
func (kv *KV) Set(m *sim.Meter, key, value []byte) error {
	m.Charge(kv.pager.model.RequestOverhead)
	headA := kv.bucketOf(m, key)
	cur, err := kv.pager.ReadU64(m, headA)
	if err != nil {
		return err
	}
	var hdr [kvHdr]byte
	for a := cur; a != 0; {
		if err := kv.pager.Read(m, EAddr(a), hdr[:]); err != nil {
			return err
		}
		next := binary.LittleEndian.Uint64(hdr[0:])
		kl := int(binary.LittleEndian.Uint32(hdr[8:]))
		vl := int(binary.LittleEndian.Uint32(hdr[12:]))
		if kl == len(key) {
			kb := make([]byte, kl)
			if err := kv.pager.Read(m, EAddr(a)+kvHdr, kb); err != nil {
				return err
			}
			if string(kb) == string(key) && vl == len(value) {
				return kv.pager.Write(m, EAddr(a)+kvHdr+EAddr(kl), value)
			}
			if string(kb) == string(key) {
				// Size change: overwrite header size + write at a fresh
				// allocation, relinking. Simplest correct path: delete
				// then reinsert.
				if err := kv.deleteAddr(m, headA, EAddr(a)); err != nil {
					return err
				}
				kv.keys--
				break
			}
		}
		a = next
	}
	// Insert at head.
	n := kvHdr + len(key) + len(value)
	a, err := kv.pager.Alloc(m, n)
	if err != nil {
		return err
	}
	buf := make([]byte, n)
	binary.LittleEndian.PutUint64(buf[0:], cur)
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(key)))
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(value)))
	copy(buf[kvHdr:], key)
	copy(buf[kvHdr+len(key):], value)
	if err := kv.pager.Write(m, a, buf); err != nil {
		return err
	}
	if err := kv.pager.WriteU64(m, headA, uint64(a)); err != nil {
		return err
	}
	kv.keys++
	return nil
}

// deleteAddr unlinks the entry at target from the chain rooted at headA.
func (kv *KV) deleteAddr(m *sim.Meter, headA EAddr, target EAddr) error {
	cur, err := kv.pager.ReadU64(m, headA)
	if err != nil {
		return err
	}
	link := headA
	for cur != 0 {
		next, err := kv.pager.ReadU64(m, EAddr(cur))
		if err != nil {
			return err
		}
		if EAddr(cur) == target {
			return kv.pager.WriteU64(m, link, next)
		}
		link = EAddr(cur)
		cur = next
	}
	return ErrNotFound
}

// Delete removes key.
func (kv *KV) Delete(m *sim.Meter, key []byte) error {
	m.Charge(kv.pager.model.RequestOverhead)
	headA := kv.bucketOf(m, key)
	cur, err := kv.pager.ReadU64(m, headA)
	if err != nil {
		return err
	}
	var hdr [kvHdr]byte
	for cur != 0 {
		if err := kv.pager.Read(m, EAddr(cur), hdr[:]); err != nil {
			return err
		}
		next := binary.LittleEndian.Uint64(hdr[0:])
		kl := int(binary.LittleEndian.Uint32(hdr[8:]))
		if kl == len(key) {
			kb := make([]byte, kl)
			if err := kv.pager.Read(m, EAddr(cur)+kvHdr, kb); err != nil {
				return err
			}
			if string(kb) == string(key) {
				if err := kv.deleteAddr(m, headA, EAddr(cur)); err != nil {
					return err
				}
				kv.keys--
				return nil
			}
		}
		cur = next
	}
	return ErrNotFound
}
