package eleos

import (
	"bytes"
	"errors"
	"fmt"
	"testing"

	"shieldstore/internal/mem"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
)

func newEnclave() *sgx.Enclave {
	return sgx.New(sgx.Config{Space: mem.NewSpace(mem.Config{EPCBytes: 32 << 20}), Seed: 4})
}

func TestPagerReadWriteRoundTrip(t *testing.T) {
	e := newEnclave()
	p := NewPager(e, PagerConfig{PageSize: 1024, CacheBytes: 16 << 10, PoolBytes: 1 << 20})
	m := sim.NewMeter(e.Model())

	a, err := p.Alloc(m, 5000) // spans multiple pages
	if err != nil {
		t.Fatal(err)
	}
	want := make([]byte, 5000)
	for i := range want {
		want[i] = byte(i * 13)
	}
	if err := p.Write(m, a, want); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, 5000)
	if err := p.Read(m, a, got); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("round trip failed")
	}
}

func TestPagerSurvivesEviction(t *testing.T) {
	e := newEnclave()
	// 4 frames of 1 KB, data spanning 32 pages: heavy eviction.
	p := NewPager(e, PagerConfig{PageSize: 1024, CacheBytes: 4 << 10, PoolBytes: 1 << 20})
	m := sim.NewMeter(e.Model())

	addrs := make([]EAddr, 32)
	for i := range addrs {
		a, err := p.Alloc(m, 1024)
		if err != nil {
			t.Fatal(err)
		}
		addrs[i] = a
		if err := p.Write(m, a, bytes.Repeat([]byte{byte(i)}, 1024)); err != nil {
			t.Fatal(err)
		}
	}
	for i, a := range addrs {
		got := make([]byte, 1024)
		if err := p.Read(m, a, got); err != nil {
			t.Fatal(err)
		}
		if got[0] != byte(i) || got[1023] != byte(i) {
			t.Fatalf("page %d corrupted after eviction", i)
		}
	}
	if p.Faults() == 0 {
		t.Fatal("expected user-space faults under eviction")
	}
	// Eleos is exitless: zero OCALLs regardless of faults.
	if m.Events(sim.CtrOCall) != 0 {
		t.Fatalf("Eleos must not exit the enclave: %d OCALLs", m.Events(sim.CtrOCall))
	}
}

func TestBackingStoreIsEncrypted(t *testing.T) {
	e := newEnclave()
	p := NewPager(e, PagerConfig{PageSize: 1024, CacheBytes: 2 << 10, PoolBytes: 1 << 20})
	m := sim.NewMeter(e.Model())
	secret := []byte("eleos-page-secret-content")
	a, err := p.Alloc(m, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(m, a, secret); err != nil {
		t.Fatal(err)
	}
	// Force eviction by touching other pages.
	for i := 0; i < 8; i++ {
		b, _ := p.Alloc(m, 1024)
		if err := p.Write(m, b, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	used := p.space.UsedBytes(mem.Untrusted)
	dump := make([]byte, used)
	p.space.Peek(mem.UntrustedBase, dump)
	if bytes.Contains(dump, secret) {
		t.Fatal("plaintext leaked to untrusted backing store")
	}
}

func TestPageTamperDetected(t *testing.T) {
	e := newEnclave()
	p := NewPager(e, PagerConfig{PageSize: 1024, CacheBytes: 2 << 10, PoolBytes: 1 << 20})
	m := sim.NewMeter(e.Model())
	a, err := p.Alloc(m, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(m, a, bytes.Repeat([]byte{7}, 1024)); err != nil {
		t.Fatal(err)
	}
	if err := p.Flush(m); err != nil {
		t.Fatal(err)
	}
	if err := p.DropCache(m); err != nil {
		t.Fatal(err)
	}
	page := int(uint64(a) / 1024)
	p.Tamper(page, 100, []byte{0xFF, 0xFF})
	err = p.Read(m, a, make([]byte, 16))
	if !errors.Is(err, ErrIntegrity) {
		t.Fatalf("tampered page: err = %v, want ErrIntegrity", err)
	}
}

func TestPoolExhaustion(t *testing.T) {
	e := newEnclave()
	p := NewPager(e, PagerConfig{PageSize: 1024, CacheBytes: 4 << 10, PoolBytes: 16 << 10})
	m := sim.NewMeter(e.Model())
	var err error
	for i := 0; i < 100; i++ {
		if _, err = p.Alloc(m, 1024); err != nil {
			break
		}
	}
	if !errors.Is(err, ErrPoolExhausted) {
		t.Fatalf("pool limit not enforced: %v", err)
	}
}

func TestKVBasicOps(t *testing.T) {
	e := newEnclave()
	kv, err := NewKV(e, PagerConfig{PageSize: 1024, CacheBytes: 64 << 10, PoolBytes: 4 << 20}, 32)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMeter(e.Model())

	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("k%03d", i))
		if err := kv.Set(m, k, []byte(fmt.Sprintf("value-%03d", i))); err != nil {
			t.Fatal(err)
		}
	}
	if kv.Keys() != 100 {
		t.Fatalf("Keys = %d", kv.Keys())
	}
	for i := 0; i < 100; i++ {
		k := []byte(fmt.Sprintf("k%03d", i))
		got, err := kv.Get(m, k)
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != fmt.Sprintf("value-%03d", i) {
			t.Fatalf("key %d: %q", i, got)
		}
	}
	// Update in place and with resize.
	if err := kv.Set(m, []byte("k000"), []byte("value-xxx")); err != nil {
		t.Fatal(err)
	}
	got, _ := kv.Get(m, []byte("k000"))
	if string(got) != "value-xxx" {
		t.Fatalf("update: %q", got)
	}
	if err := kv.Set(m, []byte("k000"), []byte("bigger-value-entirely")); err != nil {
		t.Fatal(err)
	}
	got, _ = kv.Get(m, []byte("k000"))
	if string(got) != "bigger-value-entirely" {
		t.Fatalf("resize: %q", got)
	}
	if kv.Keys() != 100 {
		t.Fatalf("Keys changed on update: %d", kv.Keys())
	}
	// Delete.
	if err := kv.Delete(m, []byte("k050")); err != nil {
		t.Fatal(err)
	}
	if _, err := kv.Get(m, []byte("k050")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("deleted key: %v", err)
	}
	if err := kv.Delete(m, []byte("nope")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("delete absent: %v", err)
	}
}

func TestKVMissingKey(t *testing.T) {
	e := newEnclave()
	kv, err := NewKV(e, PagerConfig{PageSize: 1024, CacheBytes: 64 << 10, PoolBytes: 1 << 20}, 8)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMeter(e.Model())
	if _, err := kv.Get(m, []byte("missing")); !errors.Is(err, ErrNotFound) {
		t.Fatalf("err = %v", err)
	}
}

func TestSmallValuesPayFullPageCrypto(t *testing.T) {
	// Figure 16's mechanism: under cache pressure a 16-byte get costs a
	// whole-page decrypt, so small-value gets are barely cheaper than
	// page-size-value gets.
	e := newEnclave()
	perGet := func(valSize int) float64 {
		kv, err := NewKV(e, PagerConfig{PageSize: 4096, CacheBytes: 64 << 10, PoolBytes: 16 << 20}, 64)
		if err != nil {
			t.Fatal(err)
		}
		m := sim.NewMeter(e.Model())
		const n = 200
		for i := 0; i < n; i++ {
			if err := kv.Set(m, []byte(fmt.Sprintf("key-%04d", i)), bytes.Repeat([]byte{1}, valSize)); err != nil {
				t.Fatal(err)
			}
		}
		m.Reset()
		for i := 0; i < n; i++ {
			if _, err := kv.Get(m, []byte(fmt.Sprintf("key-%04d", i))); err != nil {
				t.Fatal(err)
			}
		}
		return float64(m.Cycles()) / n
	}
	small := perGet(16)
	large := perGet(4096 - 64)
	if large > small*6 {
		t.Fatalf("page-granularity lost: 16B get %.0f vs 4KB get %.0f cycles", small, large)
	}
	// And a small get is still expensive in absolute terms (page crypto).
	model := e.Model()
	if small < float64(model.AES(4096)) {
		t.Fatalf("16B get (%.0f cycles) cheaper than one page decrypt (%d)", small, model.AES(4096))
	}
}

func TestPoolLimitSurfacesThroughKV(t *testing.T) {
	e := newEnclave()
	kv, err := NewKV(e, PagerConfig{PageSize: 1024, CacheBytes: 16 << 10, PoolBytes: 64 << 10}, 8)
	if err != nil {
		t.Fatal(err)
	}
	m := sim.NewMeter(e.Model())
	var setErr error
	for i := 0; i < 1000; i++ {
		setErr = kv.Set(m, []byte(fmt.Sprintf("k%04d", i)), bytes.Repeat([]byte{1}, 100))
		if setErr != nil {
			break
		}
	}
	if !errors.Is(setErr, ErrPoolExhausted) {
		t.Fatalf("KV beyond pool: %v", setErr)
	}
}

func TestSubPageGranularityHelpsSmallValues(t *testing.T) {
	// The paper notes Eleos supports 1KB sub-pages: for small values a
	// finer page size wastes less crypto per miss under cache pressure.
	e := newEnclave()
	perGet := func(pageSize int) float64 {
		kv, err := NewKV(e, PagerConfig{PageSize: pageSize, CacheBytes: 32 << 10, PoolBytes: 8 << 20}, 64)
		if err != nil {
			t.Fatal(err)
		}
		m := sim.NewMeter(e.Model())
		const n = 400
		for i := 0; i < n; i++ {
			if err := kv.Set(m, []byte(fmt.Sprintf("key-%04d", i)), bytes.Repeat([]byte{1}, 64)); err != nil {
				t.Fatal(err)
			}
		}
		m.Reset()
		for i := 0; i < n; i++ {
			if _, err := kv.Get(m, []byte(fmt.Sprintf("key-%04d", i))); err != nil {
				t.Fatal(err)
			}
		}
		return float64(m.Cycles()) / n
	}
	coarse := perGet(4096)
	fine := perGet(1024)
	if fine >= coarse {
		t.Fatalf("1KB sub-pages (%.0f cyc/get) should beat 4KB pages (%.0f) for 64B values", fine, coarse)
	}
}

func TestDirtyEvictionWritesBack(t *testing.T) {
	// Dirty frames must be re-encrypted on eviction and the data must
	// survive a full cache cycle.
	e := newEnclave()
	p := NewPager(e, PagerConfig{PageSize: 1024, CacheBytes: 2 << 10, PoolBytes: 1 << 20})
	m := sim.NewMeter(e.Model())
	a, err := p.Alloc(m, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Write(m, a, []byte("dirty-data")); err != nil {
		t.Fatal(err)
	}
	encBefore := m.Events(sim.CtrEncrypt)
	// Evict by touching other pages (2 frames only).
	for i := 0; i < 4; i++ {
		b, _ := p.Alloc(m, 1024)
		if err := p.Write(m, b, []byte{1}); err != nil {
			t.Fatal(err)
		}
	}
	if m.Events(sim.CtrEncrypt) <= encBefore {
		t.Fatal("dirty eviction did not re-encrypt")
	}
	got := make([]byte, 10)
	if err := p.Read(m, a, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != "dirty-data" {
		t.Fatalf("data lost through eviction: %q", got)
	}
}
