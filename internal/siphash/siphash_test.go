package siphash

import (
	"encoding/binary"
	"testing"
	"testing/quick"
)

// referenceVectors are the first 16 of the 64 official SipHash-2-4 test
// vectors from the reference implementation (key 000102...0f, input
// 00, 0001, 000102, ...).
var referenceVectors = []uint64{
	0x726fdb47dd0e0e31, 0x74f839c593dc67fd, 0x0d6c8009d9a94f5a, 0x85676696d7fb7e2d,
	0xcf2794e0277187b7, 0x18765564cd99a68d, 0xcbc9466e58fee3ce, 0xab0200f58b01d137,
	0x93f5f5799a932462, 0x9e0082df0ba9e4b0, 0x7a5dbbc594ddb9f3, 0xf4b32f46226bada7,
	0x751e8fbc860ee5fb, 0x14ea5627c0843d90, 0xf723ca908e7af2ee, 0xa129ca6149be45e5,
}

func refKey() []byte {
	key := make([]byte, 16)
	for i := range key {
		key[i] = byte(i)
	}
	return key
}

func TestReferenceVectors(t *testing.T) {
	h := New(refKey())
	msg := make([]byte, 64)
	for i := range msg {
		msg[i] = byte(i)
	}
	for n, want := range referenceVectors {
		if got := h.Sum64(msg[:n]); got != want {
			t.Errorf("vector %d: got %#016x, want %#016x", n, got, want)
		}
	}
}

// Vector 8 exercises exactly one full 8-byte word; vector 15 straddles.
func TestWordBoundary(t *testing.T) {
	h := New(refKey())
	msg := []byte{0, 1, 2, 3, 4, 5, 6, 7}
	if got := h.Sum64(msg); got != referenceVectors[8] {
		t.Errorf("8-byte message: got %#016x, want %#016x", got, referenceVectors[8])
	}
}

func TestBadKeyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("short key must panic")
		}
	}()
	New(make([]byte, 8))
}

func TestKeyedness(t *testing.T) {
	k1 := refKey()
	k2 := refKey()
	k2[0] ^= 1
	msg := []byte("shieldstore bucket key")
	if New(k1).Sum64(msg) == New(k2).Sum64(msg) {
		t.Fatal("different keys produced identical hashes")
	}
}

func TestDeterminism(t *testing.T) {
	h := New(refKey())
	msg := []byte("determinism")
	if h.Sum64(msg) != h.Sum64(msg) {
		t.Fatal("hash not deterministic")
	}
}

// Property: flipping any single bit of a message changes the hash.
func TestAvalancheProperty(t *testing.T) {
	h := New(refKey())
	f := func(msg []byte, bitIdx uint16) bool {
		if len(msg) == 0 {
			return true
		}
		orig := h.Sum64(msg)
		i := int(bitIdx) % (len(msg) * 8)
		mut := append([]byte(nil), msg...)
		mut[i/8] ^= 1 << (i % 8)
		return h.Sum64(mut) != orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

// Property: bucket assignment is roughly uniform (chi-square sanity bound).
func TestBucketUniformity(t *testing.T) {
	h := New(refKey())
	const buckets = 64
	const keys = 64 * 1000
	var counts [buckets]int
	var kb [8]byte
	for i := 0; i < keys; i++ {
		binary.LittleEndian.PutUint64(kb[:], uint64(i))
		counts[h.Sum64(kb[:])%buckets]++
	}
	mean := keys / buckets
	for b, c := range counts {
		if c < mean*8/10 || c > mean*12/10 {
			t.Errorf("bucket %d count %d deviates >20%% from mean %d", b, c, mean)
		}
	}
}

func BenchmarkSipHash16(b *testing.B) {
	h := New(refKey())
	msg := make([]byte, 16)
	b.SetBytes(16)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = h.Sum64(msg)
	}
}
