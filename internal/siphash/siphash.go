// Package siphash implements SipHash-2-4 (Aumasson & Bernstein), a fast
// keyed hash with a 128-bit secret key and 64-bit output.
//
// ShieldStore indexes its main hash table with a *keyed* hash function so a
// host observing the untrusted hash table cannot learn the distribution of
// plaintext keys across buckets (§4.2). SipHash is the canonical choice for
// exactly this purpose; the Go standard library uses it internally for map
// hashing but does not export it, so it is implemented here from the
// specification and validated against the reference vectors.
package siphash

import "encoding/binary"

// KeySize is the secret key length in bytes.
const KeySize = 16

// Hash is a SipHash-2-4 instance bound to one 128-bit key.
type Hash struct {
	k0, k1 uint64
}

// New creates a SipHash-2-4 instance. The key must be exactly 16 bytes.
//
//ss:nopanic-ok(keys are always the enclave's 16-byte SipHash keys)
func New(key []byte) *Hash {
	if len(key) != KeySize {
		panic("siphash: key must be 16 bytes")
	}
	return &Hash{
		k0: binary.LittleEndian.Uint64(key[0:8]),
		k1: binary.LittleEndian.Uint64(key[8:16]),
	}
}

// Sum64 returns the 64-bit SipHash-2-4 of data.
func (h *Hash) Sum64(data []byte) uint64 {
	v0 := h.k0 ^ 0x736f6d6570736575
	v1 := h.k1 ^ 0x646f72616e646f6d
	v2 := h.k0 ^ 0x6c7967656e657261
	v3 := h.k1 ^ 0x7465646279746573

	n := len(data)
	// Compression: 2 SipRounds per 8-byte word.
	for len(data) >= 8 {
		m := binary.LittleEndian.Uint64(data)
		v3 ^= m
		v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
		v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
		v0 ^= m
		data = data[8:]
	}

	// Final word: remaining bytes plus the length in the top byte.
	var m uint64
	for i := len(data) - 1; i >= 0; i-- {
		m = m<<8 | uint64(data[i])
	}
	m |= uint64(n&0xff) << 56
	v3 ^= m
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0 ^= m

	// Finalization: 4 SipRounds.
	v2 ^= 0xff
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	v0, v1, v2, v3 = sipRound(v0, v1, v2, v3)
	return v0 ^ v1 ^ v2 ^ v3
}

func sipRound(v0, v1, v2, v3 uint64) (uint64, uint64, uint64, uint64) {
	v0 += v1
	v1 = rotl(v1, 13)
	v1 ^= v0
	v0 = rotl(v0, 32)
	v2 += v3
	v3 = rotl(v3, 16)
	v3 ^= v2
	v0 += v3
	v3 = rotl(v3, 21)
	v3 ^= v0
	v2 += v1
	v1 = rotl(v1, 17)
	v1 ^= v2
	v2 = rotl(v2, 32)
	return v0, v1, v2, v3
}

func rotl(x uint64, b uint) uint64 { return x<<b | x>>(64-b) }
