// Package baseline implements the comparison systems of the paper's
// evaluation:
//
//   - NaiveSGX — the §3.1 baseline: a plaintext chained hash table placed
//     entirely in *enclave* memory, so working sets beyond the EPC pay
//     demand paging on nearly every access (Figures 3, 10-14, 18).
//   - Insecure — the same engine in ordinary untrusted memory with SGX
//     disabled (the NoSGX lines of Figures 3 and 18, Table 1).
//   - MemcachedInsecure — a memcached-like variant: slab allocation, LRU
//     links and a background maintainer thread serialized on a global
//     lock (Table 1, Figure 18).
//   - MemcachedGraphene — memcached hosted in an enclave by a library OS
//     (Graphene-SGX): enclave-resident data plus a libOS syscall
//     multiplier (Figures 10, 11, 13).
//
// Unlike ShieldStore's lock-free hash-partitioned design, these engines
// share one table among all threads and serialize on a global lock —
// modeled in virtual time by a sim.SharedClock — and, when enclave-hosted,
// additionally serialize on the machine-wide EPC paging path, which is
// what flattens their scalability curves in Figure 13.
//
// in-enclave variants keep data EPC-resident — neither models ShieldStore's sealed format)
//
//ss:seals(comparison systems: the NoSGX variants make no confidentiality claim and the
package baseline

import (
	"encoding/binary"
	"errors"
	"sync"

	"shieldstore/internal/mem"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
	"shieldstore/internal/siphash"
)

// ErrNotFound reports a missing key.
var ErrNotFound = errors.New("baseline: key not found")

// Variant selects one of the comparison systems.
type Variant int

const (
	// NaiveSGX is the paper's baseline: whole table in enclave memory.
	NaiveSGX Variant = iota
	// Insecure is the same store without SGX (plain DRAM).
	Insecure
	// MemcachedInsecure models stock memcached (no SGX).
	MemcachedInsecure
	// MemcachedGraphene models memcached inside Graphene-SGX.
	MemcachedGraphene
)

// String implements fmt.Stringer.
func (v Variant) String() string {
	switch v {
	case NaiveSGX:
		return "Baseline"
	case Insecure:
		return "Insecure Baseline"
	case MemcachedInsecure:
		return "Insecure Memcached"
	case MemcachedGraphene:
		return "Memcached+graphene"
	default:
		return "baseline(?)"
	}
}

// InEnclave reports whether the variant's data lives in enclave memory.
func (v Variant) InEnclave() bool {
	return v == NaiveSGX || v == MemcachedGraphene
}

// LibOS reports whether syscalls route through a library OS.
func (v Variant) LibOS() bool { return v == MemcachedGraphene }

// memcachedLike reports slab allocation + maintainer thread behavior.
func (v Variant) memcachedLike() bool {
	return v == MemcachedInsecure || v == MemcachedGraphene
}

// Entry layout (plaintext — SGX hardware or nothing protects it):
//
//	0   8  next
//	8   4  key size
//	12  4  value size
//	16  -  key bytes, then value bytes
const hdrSize = 16

// Options configures a baseline store.
type Options struct {
	Buckets int
	Variant Variant
	// MaintainerEvery is the op cadence of the memcached maintainer
	// thread's table sweep (0 = default).
	MaintainerEvery int
}

// Store is one baseline key-value store. All threads share it; a real
// mutex protects the Go-side state while a virtual SharedClock charges the
// serialization cost to the simulated timeline.
type Store struct {
	space   *mem.Space
	model   *sim.CostModel
	enclave *sgx.Enclave
	opts    Options
	region  mem.Region
	hash    *siphash.Hash

	mu    sync.Mutex
	heads mem.Addr
	keys  int

	lock      sim.SharedClock // global table lock (virtual time)
	lockHold  uint64
	opCount   uint64
	maintEach uint64
	maintRng  uint64

	// naive free management: the baseline has no allocator cleverness;
	// memcached variants reuse slab blocks.
	slabFree map[int][]mem.Addr
}

// New creates a baseline store.
func New(e *sgx.Enclave, opts Options) *Store {
	if opts.Buckets <= 0 {
		panic("baseline: Buckets must be positive")
	}
	region := mem.Untrusted
	if opts.Variant.InEnclave() {
		region = mem.Enclave
	}
	maintEach := uint64(opts.MaintainerEvery)
	if maintEach == 0 {
		maintEach = 64
	}
	var hkey [16]byte
	e.ReadRand(nil, hkey[:])
	s := &Store{
		space:     e.Space(),
		model:     e.Model(),
		enclave:   e,
		opts:      opts,
		region:    region,
		hash:      siphash.New(hkey[:]),
		lockHold:  350,
		maintEach: maintEach,
		maintRng:  0x9E3779B97F4A7C15,
		slabFree:  map[int][]mem.Addr{},
	}
	if opts.Variant.memcachedLike() {
		s.lockHold = 550 // LRU list maintenance under the lock
	}
	s.heads = s.space.Alloc(region, opts.Buckets*8)
	return s
}

// Variant returns the store's variant.
func (s *Store) Variant() Variant { return s.opts.Variant }

// ResetClock rewinds the global-lock timeline to virtual time zero (used
// between preload and measurement phases whose meters restart at zero).
func (s *Store) ResetClock() { s.lock.Reset() }

// Keys returns the number of live keys.
func (s *Store) Keys() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.keys
}

func (s *Store) bucketOf(m *sim.Meter, key []byte) int {
	m.Charge(s.model.Hash(len(key)))
	return int(s.hash.Sum64(key) % uint64(s.opts.Buckets))
}

func (s *Store) headAddr(b int) mem.Addr { return s.heads + mem.Addr(b*8) }

// enter begins an operation: global lock, request overhead, and the
// periodic maintainer sweep for memcached variants.
func (s *Store) enter(m *sim.Meter) {
	m.Charge(s.model.RequestOverhead)
	s.lock.Acquire(m, s.lockHold)
	s.opCount++
	if s.opts.Variant.memcachedLike() && s.opCount%s.maintEach == 0 {
		s.maintainer(m)
	}
}

// maintainer models memcached's background thread rebalancing the hash
// table while holding the global lock: it touches a handful of buckets
// (paging, for enclave-hosted variants) with every other thread waiting.
func (s *Store) maintainer(m *sim.Meter) {
	before := m.Cycles()
	var buf [8]byte
	for i := 0; i < 16; i++ {
		s.maintRng = s.maintRng*6364136223846793005 + 1442695040888963407
		b := int(s.maintRng>>33) % s.opts.Buckets
		s.space.Read(m, s.headAddr(b), buf[:])
	}
	spent := m.Cycles() - before
	m.SetCycles(before)
	s.lock.Acquire(m, spent)
}

// alloc hands out table memory: naive bump allocation for the baseline, or
// slab-class reuse for memcached variants.
func (s *Store) alloc(m *sim.Meter, n int) mem.Addr {
	if s.opts.Variant.memcachedLike() {
		c := 64
		for c < n {
			c *= 2
		}
		m.Charge(s.model.CacheAccess) // slab freelist pop
		if fl := s.slabFree[c]; len(fl) > 0 {
			a := fl[len(fl)-1]
			s.slabFree[c] = fl[:len(fl)-1]
			return a
		}
		return s.space.Alloc(s.region, c)
	}
	// Naive allocator: free-list walk in shared memory.
	m.Charge(s.model.DRAMAccess * 2)
	return s.space.Alloc(s.region, n)
}

func (s *Store) free(m *sim.Meter, a mem.Addr, n int) {
	if s.opts.Variant.memcachedLike() {
		c := 64
		for c < n {
			c *= 2
		}
		s.slabFree[c] = append(s.slabFree[c], a)
		m.Charge(s.model.CacheAccess)
		return
	}
	m.Charge(s.model.DRAMAccess)
}

// found describes a located entry.
type found struct {
	addr     mem.Addr
	prevLink mem.Addr
	next     mem.Addr
	keyLen   int
	valLen   int
}

// find walks the chain comparing plaintext keys.
func (s *Store) find(m *sim.Meter, b int, key []byte) (found, bool) {
	cur := mem.Addr(s.space.ReadU64(m, s.headAddr(b)))
	link := s.headAddr(b)
	var hdr [hdrSize]byte
	for cur != 0 {
		s.space.Read(m, cur, hdr[:])
		next := mem.Addr(binary.LittleEndian.Uint64(hdr[0:]))
		kl := int(binary.LittleEndian.Uint32(hdr[8:]))
		vl := int(binary.LittleEndian.Uint32(hdr[12:]))
		if kl == len(key) {
			kb := make([]byte, kl)
			s.space.Read(m, cur+hdrSize, kb)
			if string(kb) == string(key) {
				return found{addr: cur, prevLink: link, next: next, keyLen: kl, valLen: vl}, true
			}
		}
		link = cur
		cur = next
	}
	return found{}, false
}

// Get returns the value stored under key.
func (s *Store) Get(m *sim.Meter, key []byte) ([]byte, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.enter(m)
	b := s.bucketOf(m, key)
	f, ok := s.find(m, b, key)
	if !ok {
		return nil, ErrNotFound
	}
	val := make([]byte, f.valLen)
	s.space.Read(m, f.addr+hdrSize+mem.Addr(f.keyLen), val)
	return val, nil
}

// Set inserts or updates key.
func (s *Store) Set(m *sim.Meter, key, value []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.enter(m)
	s.setLocked(m, key, value)
	return nil
}

//ss:nopanic-ok(buf is locally allocated to exactly hdrSize+len(key)+len(value))
func (s *Store) setLocked(m *sim.Meter, key, value []byte) {
	b := s.bucketOf(m, key)
	f, ok := s.find(m, b, key)
	if ok && f.valLen == len(value) {
		s.space.Write(m, f.addr+hdrSize+mem.Addr(f.keyLen), value)
		return
	}
	if ok {
		// Unlink and free; then reinsert at head.
		if f.prevLink == s.headAddr(b) {
			s.space.WriteU64(m, f.prevLink, uint64(f.next))
		} else {
			s.space.WriteU64(m, f.prevLink, uint64(f.next))
		}
		s.free(m, f.addr, hdrSize+f.keyLen+f.valLen)
		s.keys--
	}
	head := mem.Addr(s.space.ReadU64(m, s.headAddr(b)))
	n := hdrSize + len(key) + len(value)
	a := s.alloc(m, n)
	buf := make([]byte, n)
	binary.LittleEndian.PutUint64(buf[0:], uint64(head))
	binary.LittleEndian.PutUint32(buf[8:], uint32(len(key)))
	binary.LittleEndian.PutUint32(buf[12:], uint32(len(value)))
	copy(buf[hdrSize:], key)
	copy(buf[hdrSize+len(key):], value)
	s.space.Write(m, a, buf)
	s.space.WriteU64(m, s.headAddr(b), uint64(a))
	s.keys++
}

// Append appends suffix to key's value (created when absent).
func (s *Store) Append(m *sim.Meter, key, suffix []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.enter(m)
	b := s.bucketOf(m, key)
	f, ok := s.find(m, b, key)
	if !ok {
		s.setLocked(m, key, suffix)
		return nil
	}
	old := make([]byte, f.valLen)
	s.space.Read(m, f.addr+hdrSize+mem.Addr(f.keyLen), old)
	s.setLocked(m, key, append(old, suffix...))
	return nil
}

// Delete removes key.
func (s *Store) Delete(m *sim.Meter, key []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.enter(m)
	b := s.bucketOf(m, key)
	f, ok := s.find(m, b, key)
	if !ok {
		return ErrNotFound
	}
	s.space.WriteU64(m, f.prevLink, uint64(f.next))
	s.free(m, f.addr, hdrSize+f.keyLen+f.valLen)
	s.keys--
	return nil
}
