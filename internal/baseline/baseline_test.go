package baseline

import (
	"bytes"
	"errors"
	"fmt"
	"sync"
	"testing"

	"shieldstore/internal/mem"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
)

func newEnclave(epc int64) *sgx.Enclave {
	return sgx.New(sgx.Config{Space: mem.NewSpace(mem.Config{EPCBytes: epc}), Seed: 2})
}

func variants() []Variant {
	return []Variant{NaiveSGX, Insecure, MemcachedInsecure, MemcachedGraphene}
}

func TestSetGetDeleteAllVariants(t *testing.T) {
	for _, v := range variants() {
		t.Run(v.String(), func(t *testing.T) {
			e := newEnclave(8 << 20)
			s := New(e, Options{Buckets: 32, Variant: v})
			m := sim.NewMeter(e.Model())

			for i := 0; i < 150; i++ {
				k := []byte(fmt.Sprintf("k%03d", i))
				if err := s.Set(m, k, []byte(fmt.Sprintf("v%03d", i))); err != nil {
					t.Fatal(err)
				}
			}
			if s.Keys() != 150 {
				t.Fatalf("Keys = %d", s.Keys())
			}
			for i := 0; i < 150; i++ {
				k := []byte(fmt.Sprintf("k%03d", i))
				got, err := s.Get(m, k)
				if err != nil {
					t.Fatal(err)
				}
				if string(got) != fmt.Sprintf("v%03d", i) {
					t.Fatalf("key %d: %q", i, got)
				}
			}
			if err := s.Delete(m, []byte("k010")); err != nil {
				t.Fatal(err)
			}
			if _, err := s.Get(m, []byte("k010")); !errors.Is(err, ErrNotFound) {
				t.Fatalf("deleted key: %v", err)
			}
			if err := s.Delete(m, []byte("absent")); !errors.Is(err, ErrNotFound) {
				t.Fatalf("delete absent: %v", err)
			}
		})
	}
}

func TestUpdateAndResize(t *testing.T) {
	e := newEnclave(8 << 20)
	s := New(e, Options{Buckets: 8, Variant: Insecure})
	m := sim.NewMeter(e.Model())
	key := []byte("k")
	for _, v := range []string{"aaaa", "bbbb", "cccccccc", "d"} {
		if err := s.Set(m, key, []byte(v)); err != nil {
			t.Fatal(err)
		}
		got, err := s.Get(m, key)
		if err != nil || string(got) != v {
			t.Fatalf("after set %q: got %q, %v", v, got, err)
		}
	}
	if s.Keys() != 1 {
		t.Fatalf("Keys = %d after updates", s.Keys())
	}
}

func TestAppend(t *testing.T) {
	e := newEnclave(8 << 20)
	s := New(e, Options{Buckets: 8, Variant: Insecure})
	m := sim.NewMeter(e.Model())
	if err := s.Append(m, []byte("log"), []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Append(m, []byte("log"), []byte("bc")); err != nil {
		t.Fatal(err)
	}
	got, err := s.Get(m, []byte("log"))
	if err != nil || string(got) != "abc" {
		t.Fatalf("append: %q, %v", got, err)
	}
}

func TestVariantRegions(t *testing.T) {
	if !NaiveSGX.InEnclave() || !MemcachedGraphene.InEnclave() {
		t.Error("SGX variants must live in enclave memory")
	}
	if Insecure.InEnclave() || MemcachedInsecure.InEnclave() {
		t.Error("insecure variants must not live in enclave memory")
	}
	if !MemcachedGraphene.LibOS() || NaiveSGX.LibOS() {
		t.Error("LibOS flag wrong")
	}
}

func TestNaiveSGXPaysPagingBeyondEPC(t *testing.T) {
	// Tiny EPC so a modest table overflows it; the same workload in the
	// insecure variant is far cheaper. This is Figure 3's mechanism.
	model := sim.DefaultCostModel()
	run := func(v Variant) uint64 {
		space := mem.NewSpace(mem.Config{Model: model, EPCBytes: int64(32 * model.PageSize)})
		e := sgx.New(sgx.Config{Space: space, Seed: 2})
		s := New(e, Options{Buckets: 256, Variant: v})
		m := sim.NewMeter(model)
		val := bytes.Repeat([]byte{7}, 512)
		for i := 0; i < 2000; i++ {
			if err := s.Set(m, []byte(fmt.Sprintf("key-%06d", i)), val); err != nil {
				t.Fatal(err)
			}
		}
		m.Reset()
		for i := 0; i < 500; i++ {
			if _, err := s.Get(m, []byte(fmt.Sprintf("key-%06d", i*4))); err != nil {
				t.Fatal(err)
			}
		}
		return m.Cycles()
	}
	sgxCycles := run(NaiveSGX)
	insecureCycles := run(Insecure)
	if ratio := float64(sgxCycles) / float64(insecureCycles); ratio < 10 {
		t.Fatalf("beyond-EPC baseline should be >>10x slower: ratio %.1f", ratio)
	}
}

func TestNaiveSGXFastWithinEPC(t *testing.T) {
	// Small working set inside EPC: overhead is a small constant factor
	// (paper: ~60% degradation, i.e. <3x), not orders of magnitude.
	model := sim.DefaultCostModel()
	run := func(v Variant) uint64 {
		space := mem.NewSpace(mem.Config{Model: model, EPCBytes: 8 << 20})
		e := sgx.New(sgx.Config{Space: space, Seed: 2})
		s := New(e, Options{Buckets: 64, Variant: v})
		m := sim.NewMeter(model)
		for i := 0; i < 500; i++ {
			if err := s.Set(m, []byte(fmt.Sprintf("key-%04d", i)), []byte("0123456789abcdef")); err != nil {
				t.Fatal(err)
			}
		}
		// Warm residency, then measure.
		for i := 0; i < 500; i++ {
			if _, err := s.Get(m, []byte(fmt.Sprintf("key-%04d", i))); err != nil {
				t.Fatal(err)
			}
		}
		m.Reset()
		for i := 0; i < 500; i++ {
			if _, err := s.Get(m, []byte(fmt.Sprintf("key-%04d", i))); err != nil {
				t.Fatal(err)
			}
		}
		return m.Cycles()
	}
	sgxCycles := run(NaiveSGX)
	insecureCycles := run(Insecure)
	ratio := float64(sgxCycles) / float64(insecureCycles)
	if ratio > 4 {
		t.Fatalf("within-EPC baseline overhead too big: %.2fx", ratio)
	}
	if ratio < 1.05 {
		t.Fatalf("within-EPC baseline should still cost more than NoSGX: %.2fx", ratio)
	}
}

func TestGlobalLockSerializesThreads(t *testing.T) {
	// Two threads hammering the store must not finish in the time one
	// thread's share would take: the shared clock serializes lock holds.
	e := newEnclave(16 << 20)
	s := New(e, Options{Buckets: 64, Variant: Insecure})
	const perThread = 500

	var wg sync.WaitGroup
	meters := []*sim.Meter{sim.NewMeter(e.Model()), sim.NewMeter(e.Model())}
	for i, m := range meters {
		wg.Add(1)
		go func(id int, m *sim.Meter) {
			defer wg.Done()
			for j := 0; j < perThread; j++ {
				k := []byte(fmt.Sprintf("t%d-%04d", id, j))
				if err := s.Set(m, k, []byte("v")); err != nil {
					t.Error(err)
					return
				}
			}
		}(i, m)
	}
	wg.Wait()
	// Lock holds are fully serialized: total lock occupancy is visible in
	// the slower meter.
	minSerial := uint64(2*perThread) * 350
	slower := meters[0].Cycles()
	if meters[1].Cycles() > slower {
		slower = meters[1].Cycles()
	}
	if slower < minSerial {
		t.Fatalf("lock serialization missing: slower=%d < %d", slower, minSerial)
	}
	if s.Keys() != 2*perThread {
		t.Fatalf("Keys = %d", s.Keys())
	}
}

func TestMaintainerRunsForMemcached(t *testing.T) {
	e := newEnclave(16 << 20)
	s := New(e, Options{Buckets: 64, Variant: MemcachedInsecure, MaintainerEvery: 10})
	m := sim.NewMeter(e.Model())
	for i := 0; i < 100; i++ {
		if err := s.Set(m, []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	// The maintainer's bucket touches show up as extra cost vs the plain
	// insecure variant.
	s2 := New(e, Options{Buckets: 64, Variant: Insecure})
	m2 := sim.NewMeter(e.Model())
	for i := 0; i < 100; i++ {
		if err := s2.Set(m2, []byte(fmt.Sprintf("k%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	if m.Cycles() <= m2.Cycles() {
		t.Fatalf("memcached maintainer cost invisible: %d <= %d", m.Cycles(), m2.Cycles())
	}
}

func TestSlabReuse(t *testing.T) {
	e := newEnclave(16 << 20)
	s := New(e, Options{Buckets: 8, Variant: MemcachedInsecure})
	m := sim.NewMeter(e.Model())
	if err := s.Set(m, []byte("a"), []byte("0123456789")); err != nil {
		t.Fatal(err)
	}
	usedBefore := e.Space().UsedBytes(mem.Untrusted)
	// Delete and reinsert the same size: must reuse the slab.
	if err := s.Delete(m, []byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := s.Set(m, []byte("b"), []byte("9876543210")); err != nil {
		t.Fatal(err)
	}
	if got := e.Space().UsedBytes(mem.Untrusted); got != usedBefore {
		t.Fatalf("slab not reused: %d -> %d", usedBefore, got)
	}
}

func TestZeroBucketsPanics(t *testing.T) {
	e := newEnclave(1 << 20)
	defer func() {
		if recover() == nil {
			t.Fatal("must panic")
		}
	}()
	New(e, Options{})
}

func TestVariantString(t *testing.T) {
	for _, v := range variants() {
		if v.String() == "" || v.String() == "baseline(?)" {
			t.Errorf("variant %d has bad name", v)
		}
	}
	if Variant(99).String() != "baseline(?)" {
		t.Error("unknown variant must render placeholder")
	}
}
