// Package repl implements primary/replica shard replication by journal
// shipping (DESIGN.md §15). The primary tees every journaled mutation
// into a Shipper, which encodes it as a sealed, MAC-chained, monotonically
// sequenced frame and ships batches of frames over the wire protocol's
// CmdReplicate command; the replica's Applier verifies the chain, unseals
// each record, replays it through its own partition workers and acks a
// durable watermark. Because the primary's group commit (core.GroupJournal)
// runs before any client acknowledgement, a client ack implies the replica
// has acked the mutation — the invariant failover correctness rests on.
//
// Frame layout (all integers little-endian):
//
//	seq(8) | epoch(8) | part(2) | blobLen(4) | blob | mac(16)
//
// blob is the sealed (enclave AES-GCM) record — the mutation's plaintext
// never crosses the link in the clear — and mac is an AES-CMAC chained
// over the previous frame's mac, the header and the blob, so dropped,
// duplicated, reordered or spliced frames are detected before anything is
// applied. The sealed record inside blob is:
//
//	kind(1) | keyLen(4) | delta(8) | key | val
//
// with val's length implied by the record length. FrameReset is the chain
// genesis: it is MAC'd against a zero previous tag, carries no key/value,
// and instructs the replica to wipe its partitions and restart the chain
// at the reset's sequence — the first frame of every bootstrap snapshot
// stream.
package repl

import (
	"encoding/binary"
	"errors"

	"shieldstore/internal/cmac"
	"shieldstore/internal/core"
	"shieldstore/internal/secret"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
)

// Frame record kinds (the kind byte of the sealed record).
const (
	// FrameSet replicates a full-value store (core.BatchSet).
	FrameSet byte = iota + 1
	// FrameDelete replicates a removal.
	FrameDelete
	// FrameAppend replicates a suffix append.
	FrameAppend
	// FrameIncr replicates a numeric increment; delta carries the amount.
	FrameIncr
	// FrameReset is the chain-genesis frame: wipe all replica partitions,
	// adopt the frame's sequence and epoch, restart the MAC chain from a
	// zero previous tag. Sent as the first frame of a bootstrap stream.
	FrameReset
)

// frameHdr is the fixed outer header: seq(8)+epoch(8)+part(2)+blobLen(4).
const frameHdr = 22

// frameOverhead is the per-frame framing cost beyond the sealed blob.
const frameOverhead = frameHdr + cmac.Size

// recHdr is the fixed sealed-record header: kind(1)+keyLen(4)+delta(8).
const recHdr = 13

// maxBlob bounds a single frame's sealed blob — a decode-time sanity
// limit matching the wire protocol's own frame ceiling.
const maxBlob = 64 << 20

// ErrFrameCorrupt reports a malformed or truncated replication frame.
var ErrFrameCorrupt = errors.New("repl: replication frame corrupt")

// ErrChainBroken reports a frame whose MAC does not extend the verified
// chain — evidence of tampering, splicing or a desynced stream.
var ErrChainBroken = errors.New("repl: frame MAC chain broken")

// Frame is one decoded replication frame. Key and Val alias the decoded
// record buffer and are only valid until the next decode into the same
// scratch.
type Frame struct {
	Seq   uint64
	Epoch uint64
	Part  uint16
	Kind  byte
	Delta int64
	Key   []byte
	Val   []byte
}

// chainState is the sealed per-stream MAC-chain state: the chain key
// (derived inside the enclave, never exported) and the running tag. Both
// ends of a replication link derive the same key from their shared
// sealing identity, so only the paired enclave can extend or verify the
// chain.
//
//ss:trusted
type chainState struct {
	mac *cmac.CMAC
	// key is the guarded chain key, held so release can wipe it when
	// the stream ends instead of leaving it reachable until exit.
	//ss:secret
	key     *secret.Buffer
	last    [cmac.Size]byte
	scratch []byte
}

// chainLabel is the key-derivation label for the replication MAC chain.
const chainLabel = "repl-chain-v1"

// newChain derives the replication chain key from the enclave's sealing
// identity and starts the chain at the zero tag (genesis).
//
//ss:seals — derives and holds the chain key inside trusted state.
func newChain(e *sgx.Enclave) *chainState {
	key := e.DeriveKey(chainLabel)
	mac, err := cmac.New(key.Bytes()[:16])
	if err != nil {
		panic("repl: chain key derivation failed: " + err.Error())
	}
	return &chainState{mac: mac, key: key}
}

// release wipes the chain key and drops the MAC engine — called when
// the replication stream's owner (Shipper or Applier) closes. A closed
// chain cannot be extended; re-linking derives a fresh chainState.
//
//ss:seals — wipes trusted key state.
func (c *chainState) release() {
	if c == nil {
		return
	}
	if c.key != nil {
		_ = c.key.Wipe()
	}
	c.mac = nil
}

// reset rewinds the chain to genesis (zero previous tag) — done on both
// ends around a FrameReset.
//
//ss:seals — mutates only the trusted running tag.
func (c *chainState) reset() { c.last = [cmac.Size]byte{} }

// extend computes the next chain tag over last||body, advances the chain
// and returns the tag. Charges the CMAC pass to m.
//
//ss:seals — reads and advances the trusted chain tag.
func (c *chainState) extend(m *sim.Meter, model *sim.CostModel, body []byte) [cmac.Size]byte {
	c.scratch = append(c.scratch[:0], c.last[:]...)
	c.scratch = append(c.scratch, body...)
	m.Count(sim.CtrCMAC)
	m.Charge(model.CMAC(len(c.scratch)))
	c.last = c.mac.Tag(c.scratch)
	return c.last
}

// check verifies tag against the chain continuation last||body; on
// success the chain advances to tag. A failed check leaves the chain
// untouched so a good retransmission can still extend it.
//
//ss:seals — reads and conditionally advances the trusted chain tag.
func (c *chainState) check(m *sim.Meter, model *sim.CostModel, body, tag []byte) bool {
	c.scratch = append(c.scratch[:0], c.last[:]...)
	c.scratch = append(c.scratch, body...)
	m.Count(sim.CtrCMAC)
	m.Charge(model.CMAC(len(c.scratch)))
	if c.mac == nil || !c.mac.Verify(c.scratch, tag) {
		return false
	}
	copy(c.last[:], tag)
	return true
}

// checkGenesis verifies tag as a chain restart (zero previous tag); on
// success the chain adopts it. Used for FrameReset frames only.
//
//ss:seals — conditionally restarts the trusted chain tag.
func (c *chainState) checkGenesis(m *sim.Meter, model *sim.CostModel, body, tag []byte) bool {
	var zero [cmac.Size]byte
	c.scratch = append(c.scratch[:0], zero[:]...)
	c.scratch = append(c.scratch, body...)
	m.Count(sim.CtrCMAC)
	m.Charge(model.CMAC(len(c.scratch)))
	if c.mac == nil || !c.mac.Verify(c.scratch, tag) {
		return false
	}
	copy(c.last[:], tag)
	return true
}

// appendRecord encodes the sealed-record plaintext for one mutation.
func appendRecord(dst []byte, kind byte, key, val []byte, delta int64) []byte {
	var hdr [recHdr]byte
	hdr[0] = kind
	binary.LittleEndian.PutUint32(hdr[1:5], uint32(len(key)))
	binary.LittleEndian.PutUint64(hdr[5:13], uint64(delta))
	dst = append(dst, hdr[:]...)
	dst = append(dst, key...)
	dst = append(dst, val...)
	return dst
}

// decodeRecord parses a sealed-record plaintext into f's Kind/Delta/
// Key/Val fields. Every offset is length-guarded: the record came off the
// wire (sealing authenticates the bytes, but a desynced or hostile peer
// still must not be able to panic the applier).
//
//ss:attacker — defensive decode of peer-supplied record bytes.
func decodeRecord(f *Frame, rec []byte) error {
	if len(rec) < recHdr {
		return ErrFrameCorrupt
	}
	f.Kind = rec[0]
	kl := int(binary.LittleEndian.Uint32(rec[1:5]))
	f.Delta = int64(binary.LittleEndian.Uint64(rec[5:13]))
	if kl < 0 || kl > len(rec)-recHdr {
		return ErrFrameCorrupt
	}
	f.Key = rec[recHdr : recHdr+kl]
	f.Val = rec[recHdr+kl:]
	if f.Kind < FrameSet || f.Kind > FrameReset {
		return ErrFrameCorrupt
	}
	if f.Kind == FrameReset && (kl != 0 || len(f.Val) != 0) {
		return ErrFrameCorrupt
	}
	return nil
}

// decodeFrame parses the outer layer of one frame at the start of buf,
// returning the total encoded length plus the header+blob span (the MAC
// chain's message) and the trailing tag. The sealed blob is NOT opened
// here — the caller verifies the chain and unseals. Every offset is
// length-guarded against truncated or hostile input.
//
//ss:attacker — defensive decode of wire bytes.
func decodeFrame(f *Frame, buf []byte) (n int, body, blob, tag []byte, err error) {
	if len(buf) < frameOverhead {
		return 0, nil, nil, nil, ErrFrameCorrupt
	}
	f.Seq = binary.LittleEndian.Uint64(buf[0:8])
	f.Epoch = binary.LittleEndian.Uint64(buf[8:16])
	f.Part = binary.LittleEndian.Uint16(buf[16:18])
	bl := int(binary.LittleEndian.Uint32(buf[18:22]))
	if bl < 0 || bl > maxBlob || bl > len(buf)-frameOverhead {
		return 0, nil, nil, nil, ErrFrameCorrupt
	}
	n = frameOverhead + bl
	body = buf[:frameHdr+bl]
	blob = buf[frameHdr : frameHdr+bl]
	tag = buf[frameHdr+bl : n]
	return n, body, blob, tag, nil
}

// encodeFrame seals the record plaintext, assembles the outer frame and
// extends the MAC chain over it, returning the complete wire bytes.
// Sealing and MAC costs accrue to m.
//
//ss:seals(emits sealed blob + chain MAC only; advances the trusted chain tag through chainState.next)
func encodeFrame(m *sim.Meter, e *sgx.Enclave, chain *chainState, seq, epoch uint64, part uint16, rec []byte) []byte {
	blob := e.Seal(m, rec)
	out := make([]byte, frameHdr, frameHdr+len(blob)+cmac.Size)
	binary.LittleEndian.PutUint64(out[0:8], seq)
	binary.LittleEndian.PutUint64(out[8:16], epoch)
	binary.LittleEndian.PutUint16(out[16:18], part)
	binary.LittleEndian.PutUint32(out[18:22], uint32(len(blob)))
	out = append(out, blob...)
	tag := chain.extend(m, e.Model(), out)
	return append(out, tag[:]...)
}

// frameKind maps a journaled mutation kind onto its frame record kind
// (only mutations are journaled, so BatchGet never reaches here).
func frameKind(kind core.BatchKind) byte {
	switch kind {
	case core.BatchSet:
		return FrameSet
	case core.BatchDelete:
		return FrameDelete
	case core.BatchAppend:
		return FrameAppend
	case core.BatchIncr:
		return FrameIncr
	}
	return 0
}

// batchKind maps a frame record kind back onto the replica-side batch op.
func batchKind(kind byte) core.BatchKind {
	switch kind {
	case FrameSet:
		return core.BatchSet
	case FrameDelete:
		return core.BatchDelete
	case FrameAppend:
		return core.BatchAppend
	case FrameIncr:
		return core.BatchIncr
	}
	return core.BatchGet
}
