// End-to-end replication over a real wire: a primary pool whose journals
// tee through a Shipper, a replica server applying via its Applier, and a
// fault plane mangling the link. The invariants under every fault mix:
// every acknowledged write eventually lands on the replica exactly once,
// frames never apply out of order, and the link re-syncs by itself.
package repl

import (
	"fmt"
	"net"
	"testing"
	"time"

	"shieldstore/internal/client"
	"shieldstore/internal/core"
	"shieldstore/internal/fault"
	"shieldstore/internal/server"
	"shieldstore/internal/sim"
)

// replicaNode is one replica-role server over its own pool.
type replicaNode struct {
	p    *core.Partitioned
	a    *Applier
	srv  *server.Server
	addr string
}

func startReplicaNode(t *testing.T, seed uint64) *replicaNode {
	t.Helper()
	e := testEnclave(seed)
	p := core.NewPartitioned(e, 2, core.Defaults(64))
	a, err := NewApplier(p, ApplierOptions{Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	t.Cleanup(p.Stop)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.Serve(ln, server.Config{
		Engine:       server.CoreEngine{P: p},
		Enclave:      e,
		Logf:         t.Logf,
		DrainTimeout: 100 * time.Millisecond,
		Replicate:    a.Apply,
		Promote:      a.Promote,
		Writable:     a.Writable,
	})
	t.Cleanup(srv.Close)
	return &replicaNode{p: p, a: a, srv: srv, addr: srv.Addr().String()}
}

// startPrimaryPool builds a primary pool whose journals tee through a
// shipper at rep.addr, with the given fault plane on the link.
func startPrimaryPool(t *testing.T, seed uint64, addr string, faults *fault.Plane) (*core.Partitioned, *Shipper, *sim.Meter) {
	t.Helper()
	e := testEnclave(seed)
	p := core.NewPartitioned(e, 2, core.Defaults(64))
	s := NewShipper(p, ShipperOptions{
		Addr:   addr,
		Link:   client.Options{},
		Faults: faults,
		Logf:   t.Logf,
		// Tight link backoff: the matrix hammers retries.
		Backoff:    time.Millisecond,
		MaxBackoff: 10 * time.Millisecond,
	})
	for i := 0; i < p.Parts(); i++ {
		p.SetJournal(i, s.Tee(i, nil))
	}
	p.Start()
	t.Cleanup(p.Stop)
	s.Start()
	t.Cleanup(s.Close)
	return p, s, sim.NewMeter(e.Model())
}

// loadKeys drives n mixed mutations through the primary and returns the
// expected key->value map. Every call below returning nil error is an
// acknowledged write — the replica must end up holding exactly this map.
func loadKeys(t *testing.T, p *core.Partitioned, m *sim.Meter, prefix string, n int) map[string]string {
	t.Helper()
	expect := map[string]string{}
	for i := 0; i < n; i++ {
		k := fmt.Sprintf("%s%04d", prefix, i)
		v := fmt.Sprintf("val-%04d", i)
		if err := p.Set(m, []byte(k), []byte(v)); err != nil {
			t.Fatalf("Set %s: %v", k, err)
		}
		expect[k] = v
		switch i % 5 {
		case 1:
			if err := p.Append(m, []byte(k), []byte("+tail")); err != nil {
				t.Fatalf("Append %s: %v", k, err)
			}
			expect[k] = v + "+tail"
		case 2:
			if err := p.Delete(m, []byte(k)); err != nil {
				t.Fatalf("Delete %s: %v", k, err)
			}
			delete(expect, k)
		case 3:
			ctr := fmt.Sprintf("%sctr%04d", prefix, i)
			if _, err := p.Incr(m, []byte(ctr), int64(i)); err != nil {
				t.Fatalf("Incr %s: %v", ctr, err)
			}
			expect[ctr] = fmt.Sprintf("%d", i)
		case 4:
			// Batched sets drain together, so their frames share one group
			// commit — multi-frame payloads, which is what gives the
			// reorder/dup faults adjacent frames to mangle.
			ops := make([]core.BatchOp, 4)
			for j := range ops {
				bk := fmt.Sprintf("%sb%04d-%d", prefix, i, j)
				ops[j] = core.BatchOp{Kind: core.BatchSet, Key: []byte(bk), Value: []byte(v)}
				expect[bk] = v
			}
			for _, r := range p.SubmitBatch(m, ops).Wait() {
				if r.Err != nil {
					t.Fatalf("batch set: %v", r.Err)
				}
			}
		}
	}
	return expect
}

// verifyReplica asserts the replica pool holds exactly expect.
func verifyReplica(t *testing.T, rep *replicaNode, expect map[string]string) {
	t.Helper()
	m := sim.NewMeter(rep.p.Enclave().Model())
	for k, v := range expect {
		got, err := rep.p.Get(m, []byte(k))
		if err != nil {
			t.Fatalf("replica Get %s: %v", k, err)
		}
		if string(got) != v {
			t.Fatalf("replica %s = %q, want %q", k, got, v)
		}
	}
	if int(rep.p.Keys()) != len(expect) {
		t.Fatalf("replica holds %d keys, want %d", rep.p.Keys(), len(expect))
	}
}

func waitSynced(t *testing.T, s *Shipper, rep *replicaNode) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		acked, assigned := s.Watermark()
		if s.Synced() && acked == assigned && rep.a.Watermark() == assigned {
			return
		}
		// The shipper only flushes inside commits and bootstraps: nudge it
		// with an empty-cost commit via a throwaway mutation-free flush.
		s.mu.Lock()
		if !s.needsBootstrap && !s.bootstrapping && !s.closed && !s.fenced {
			s.flushLocked(s.meter)
		}
		s.mu.Unlock()
		time.Sleep(2 * time.Millisecond)
	}
	acked, assigned := s.Watermark()
	t.Fatalf("never synced: acked=%d assigned=%d replicaWM=%d synced=%v",
		acked, assigned, rep.a.Watermark(), s.Synced())
}

func TestReplPairShipsEverything(t *testing.T) {
	rep := startReplicaNode(t, 31)
	p, s, m := startPrimaryPool(t, 31, rep.addr, nil)

	expect := loadKeys(t, p, m, "k", 120)
	waitSynced(t, s, rep)
	verifyReplica(t, rep, expect)

	st := p.AggregateStats()
	if st.Events[sim.CtrReplShipped] == 0 {
		t.Fatal("CtrReplShipped = 0 on the primary")
	}
	if rep.a.Writable() {
		t.Fatal("unpromoted replica is writable")
	}
}

// TestReplFlakyLinkMatrix is the fault matrix for the shipping link:
// dropped, duplicated and reordered frames (alone and combined) must be
// detected by the replica's sequence/MAC chain — gap or chain break —
// then healed by resend or re-sync, with nothing applied out of order
// and nothing applied twice.
func TestReplFlakyLinkMatrix(t *testing.T) {
	cases := []struct {
		name   string
		points []string
	}{
		{"drop", []string{fault.PointReplDrop}},
		{"dup", []string{fault.PointReplDup}},
		{"reorder", []string{fault.PointReplReorder}},
		{"all", []string{fault.PointReplDrop, fault.PointReplDup, fault.PointReplReorder}},
	}
	for ci, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			plane := fault.New(uint64(100 + ci))
			for _, pt := range tc.points {
				// Fire on scattered payloads: Skip staggers the first hit,
				// Count bounds the total so the stream can converge.
				plane.Arm(pt, fault.Spec{Skip: 2, Count: 8})
			}
			rep := startReplicaNode(t, uint64(40+ci))
			p, s, m := startPrimaryPool(t, uint64(40+ci), rep.addr, plane)

			expect := loadKeys(t, p, m, "f", 150)
			if plane.TotalFired() == 0 {
				t.Fatal("no link fault ever fired")
			}
			waitSynced(t, s, rep)
			verifyReplica(t, rep, expect)
		})
	}
}

// TestShipperMigratesToFreshReplica is live migration phases 1+2 at the
// repl layer: retarget the stream at an empty node, bootstrap (snapshot +
// catch-up), and report Synced — the caller's cue to cut over.
func TestShipperMigratesToFreshReplica(t *testing.T) {
	rep := startReplicaNode(t, 55)
	p, s, m := startPrimaryPool(t, 55, rep.addr, nil)

	expect := loadKeys(t, p, m, "m", 80)
	waitSynced(t, s, rep)

	// New (empty) target comes up; the stream re-aims and bootstraps.
	spare := startReplicaNode(t, 55)
	s.MigrateTo(spare.addr, client.Options{})

	// Writes keep flowing during the migration window.
	for k, v := range loadKeys(t, p, m, "mw", 40) {
		expect[k] = v
	}
	waitSynced(t, s, spare)
	verifyReplica(t, spare, expect)

	// The old replica is simply abandoned mid-history; the new one is
	// complete. (Cutover/promotion is the cluster layer's job.)
	if spare.a.Writable() {
		t.Fatal("migration target writable before promotion")
	}
}

// TestShipperBuffersThroughReplicaOutage kills the replica server
// mid-load: writes keep succeeding (buffered), and when a replacement
// comes up at a new address the stream re-syncs completely.
func TestShipperBuffersThroughReplicaOutage(t *testing.T) {
	rep := startReplicaNode(t, 77)
	p, s, m := startPrimaryPool(t, 77, rep.addr, nil)

	expect := loadKeys(t, p, m, "a", 60)
	waitSynced(t, s, rep)

	rep.srv.Close() // the outage: acks stop, writes must not
	for k, v := range loadKeys(t, p, m, "b", 60) {
		expect[k] = v
	}

	rep2 := startReplicaNode(t, 77)
	s.MigrateTo(rep2.addr, client.Options{})
	waitSynced(t, s, rep2)
	verifyReplica(t, rep2, expect)
}
