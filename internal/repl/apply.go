// The replica side of replication: the Applier verifies each frame's
// chain MAC and sequence, unseals the record, replays it through its own
// partition workers, and acks the highest contiguously applied sequence
// (the watermark). Reads the replica serves before promotion are
// therefore always a prefix of the primary's acknowledged history —
// never a made-up state. Promotion (CmdPromote) seals a new fencing
// epoch and flips the node writable; a recovered old primary shipping
// frames at the stale epoch is rejected with StatusFenced.
package repl

import (
	"encoding/binary"
	"errors"
	"os"
	"path/filepath"
	"sync"

	"shieldstore/internal/core"
	"shieldstore/internal/proto"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
)

// sealEvery is how many applied frames may pass between epoch/watermark
// seals — the durability cadence of the replica's fencing state.
const sealEvery = 256

// replStateFile holds the replica's sealed {epoch, nextSeq} pair.
const replStateFile = "repl.state"

// ApplierOptions configures a replica's apply engine.
type ApplierOptions struct {
	// Dir, when set, persists the sealed fencing state (epoch). Only the
	// epoch is honored across a restart: a restarted replica always
	// re-syncs its data via bootstrap, but it must never forget that it
	// was promoted or that the old primary was fenced.
	Dir string
	// Epoch is the initial fencing epoch (default 1).
	Epoch uint64
	// Logf receives apply failures worth an operator's attention.
	Logf func(format string, args ...any)
}

// Applier is the replica-side replication engine: wire its Apply,
// Promote and Writable methods into server.Config's Replicate, Promote
// and Writable hooks.
type Applier struct {
	p       *core.Partitioned
	enclave *sgx.Enclave
	opts    ApplierOptions
	meter   *sim.Meter

	// mu serializes Apply/Promote (one replication stream at a time; the
	// serving data path never takes it).
	mu         sync.Mutex
	chain      *chainState
	nextSeq    uint64
	epoch      uint64
	promoted   bool
	sinceSeal  int
	frameBuf   Frame
	recScratch []byte
}

// NewApplier builds a replica apply engine over pool p. The pool's
// enclave must share the primary's sealing identity (the same Seed in
// the simulation) or no shipped frame will unseal or verify.
func NewApplier(p *core.Partitioned, opts ApplierOptions) (*Applier, error) {
	if opts.Epoch == 0 {
		opts.Epoch = 1
	}
	a := &Applier{
		p:       p,
		enclave: p.Enclave(),
		opts:    opts,
		meter:   sim.NewMeter(p.Enclave().Model()),
		chain:   newChain(p.Enclave()),
		nextSeq: 1,
		epoch:   opts.Epoch,
	}
	if err := a.loadState(); err != nil {
		return nil, err
	}
	return a, nil
}

// Close wipes the chain key and retires the apply engine. Frames arriving
// after Close fail chain verification (the MAC engine is gone), so a
// late-shipping primary gets StatusError rather than silent acceptance.
func (a *Applier) Close() {
	a.mu.Lock()
	defer a.mu.Unlock()
	a.chain.release()
}

// Watermark returns the highest contiguously applied frame sequence.
func (a *Applier) Watermark() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.nextSeq - 1
}

// Epoch returns the replica's current fencing epoch.
func (a *Applier) Epoch() uint64 {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.epoch
}

// Writable reports whether this node accepts client mutations: a replica
// only after promotion. Wire into server.Config.Writable.
func (a *Applier) Writable() bool {
	a.mu.Lock()
	defer a.mu.Unlock()
	return a.promoted
}

// Meter exposes the applier's own meter (state-seal costs accrue here).
func (a *Applier) Meter() *sim.Meter { return a.meter }

// Promote adopts a new fencing epoch and flips the node writable — the
// failover/cutover entry point (CmdPromote). Idempotent at the current
// epoch; a lower epoch is rejected (some other node was promoted past
// us). The epoch is sealed to disk before the promotion is acked, so the
// fence survives a replica restart.
func (a *Applier) Promote(epoch uint64) (uint64, uint8) {
	a.mu.Lock()
	defer a.mu.Unlock()
	switch {
	case epoch < a.epoch:
		return a.epoch, proto.StatusError // someone was promoted past us
	case epoch == a.epoch && a.promoted:
		return a.epoch, proto.StatusOK // idempotent re-promote
	case epoch == a.epoch:
		// Promotion must strictly advance the epoch or the old primary's
		// stream would still verify as current.
		return a.epoch, proto.StatusError
	}
	a.epoch = epoch
	a.promoted = true
	a.meter.Count(sim.CtrReplFailover)
	a.sealState()
	return a.epoch, proto.StatusOK
}

// Apply verifies and applies one CmdReplicate payload (a run of frames)
// and returns the watermark plus a wire status:
//
//   - StatusOK: every frame applied (or was a known duplicate).
//   - StatusReplGap: a contiguous prefix applied; resend from
//     watermark+1 (sequence gap, or a transient apply failure).
//   - StatusFenced: the stream's epoch is older than ours — the sender
//     was fenced out by a promotion.
//   - StatusError: chain break or malformed frame — the stream cannot
//     continue; the shipper must bootstrap a fresh one.
func (a *Applier) Apply(m *sim.Meter, payload []byte) (uint64, uint8) {
	a.mu.Lock()
	defer a.mu.Unlock()
	off := 0
	for off < len(payload) {
		f := &a.frameBuf
		n, body, blob, tag, err := decodeFrame(f, payload[off:])
		if err != nil {
			a.logf("repl: apply: malformed frame at offset %d: %v", off, err)
			return a.nextSeq - 1, proto.StatusError
		}
		off += n
		if f.Epoch < a.epoch {
			// Fencing outranks duplicate detection: a fenced ex-primary's
			// fresh stream restarts at low sequence numbers, and dup-skipping
			// those would silently "ack" writes this promoted node never saw.
			return a.nextSeq - 1, proto.StatusFenced
		}
		if f.Seq < a.nextSeq {
			// Duplicate of an already-applied frame (a resend overlaps the
			// applied prefix). The chain already covers it; skip without
			// re-verifying or re-applying (Incr/Append are not idempotent).
			continue
		}
		// A reset frame restarts the chain (genesis MAC, may jump the
		// sequence forward); anything else must extend it in exact
		// sequence order. The kind lives inside the sealed record, so
		// classify by which verification succeeds: continuation first,
		// genesis as the fallback.
		model := a.enclave.Model()
		isReset := false
		if a.chain.check(m, model, body, tag) {
			if f.Seq != a.nextSeq {
				// Chain-contiguous but sequence-discontiguous is impossible
				// for an honest stream (seq is MAC'd); treat as corrupt.
				return a.nextSeq - 1, proto.StatusError
			}
		} else if a.chain.checkGenesis(m, model, body, tag) {
			isReset = true
			if f.Seq < a.nextSeq {
				return a.nextSeq - 1, proto.StatusError
			}
		} else {
			if f.Seq > a.nextSeq {
				return a.nextSeq - 1, proto.StatusReplGap
			}
			a.logf("repl: apply: chain break at seq %d", f.Seq)
			return a.nextSeq - 1, proto.StatusError
		}
		rec, err := a.enclave.Unseal(m, blob)
		if err != nil {
			a.logf("repl: apply: unseal failed at seq %d: %v", f.Seq, err)
			return a.nextSeq - 1, proto.StatusError
		}
		if err := decodeRecord(f, rec); err != nil {
			a.logf("repl: apply: bad record at seq %d: %v", f.Seq, err)
			return a.nextSeq - 1, proto.StatusError
		}
		if isReset != (f.Kind == FrameReset) {
			// A genesis-MAC'd frame must BE a reset and vice versa.
			return a.nextSeq - 1, proto.StatusError
		}
		if f.Kind == FrameReset {
			if f.Epoch > a.epoch {
				a.epoch = f.Epoch
			}
			a.resetParts()
			a.nextSeq = f.Seq + 1
			m.Count(sim.CtrReplApplied)
			a.sealState()
			continue
		}
		if err := a.applyFrame(m, f); err != nil {
			// The frame verified but the engine refused it (e.g. the target
			// partition is mid-rebuild). Rewind the chain? No — the chain
			// advanced, so a blind retry would fail verification. Force a
			// re-sync instead: cheaper than a poisoned stream.
			a.logf("repl: apply: engine refused seq %d: %v", f.Seq, err)
			return a.nextSeq - 1, proto.StatusError
		}
		a.nextSeq = f.Seq + 1
		m.Count(sim.CtrReplApplied)
		a.sinceSeal++
		if a.sinceSeal >= sealEvery {
			a.sealState()
		}
	}
	return a.nextSeq - 1, proto.StatusOK
}

// applyFrame replays one verified mutation through the partition worker
// that owns its key — strictly sequentially, so a mid-payload failure
// never leaves later frames applied before earlier ones.
func (a *Applier) applyFrame(m *sim.Meter, f *Frame) error {
	kind := batchKind(f.Kind)
	_, _, err := a.p.Submit(m, kind, f.Key, f.Val, f.Delta).Wait()
	if kind == core.BatchDelete && errors.Is(err, core.ErrNotFound) {
		// Deleting an absent key replays cleanly (e.g. after a bootstrap
		// snapshot raced a delete the stream then repeats).
		return nil
	}
	return err
}

// resetParts wipes every partition to an empty store with the same
// options — the destructive first step of a bootstrap (FrameReset).
func (a *Applier) resetParts() {
	for i := 0; i < a.p.Parts(); i++ {
		a.p.RunCtl(i, func(st *core.WorkerState) {
			opts := st.Store.Options()
			ns := core.New(a.p.Enclave(), a.p.Cipher(), opts)
			ns.ConfigureCache(opts.CacheBytes)
			st.Store = ns
			a.p.InstallPart(i, ns)
		})
	}
}

func (a *Applier) logf(format string, args ...any) {
	if a.opts.Logf != nil {
		a.opts.Logf(format, args...)
	}
}

// sealState persists the sealed {epoch, nextSeq} pair. Only the epoch is
// authoritative across restarts (see ApplierOptions.Dir); the sequence is
// informational.
//
//ss:ocall — state persistence is a host write.
func (a *Applier) sealState() {
	a.sinceSeal = 0
	if a.opts.Dir == "" {
		return
	}
	var b [16]byte
	binary.LittleEndian.PutUint64(b[0:8], a.epoch)
	binary.LittleEndian.PutUint64(b[8:16], a.nextSeq)
	blob := a.enclave.Seal(a.meter, b[:])
	a.enclave.Syscall(a.meter, false)
	if err := os.WriteFile(filepath.Join(a.opts.Dir, replStateFile), blob, 0o600); err != nil {
		a.logf("repl: seal state: %v", err)
		return
	}
	a.meter.Charge(a.enclave.Model().StorageWrite(len(blob)))
}

// loadState restores the sealed fencing epoch after a restart. Missing
// state is a fresh replica; a higher sealed epoch than the configured one
// wins (the node was promoted or fenced before the restart).
//
//ss:ocall — state restore is a host read.
func (a *Applier) loadState() error {
	if a.opts.Dir == "" {
		return nil
	}
	a.enclave.Syscall(a.meter, false)
	blob, err := os.ReadFile(filepath.Join(a.opts.Dir, replStateFile))
	if err != nil {
		if os.IsNotExist(err) {
			return nil
		}
		return err
	}
	b, err := a.enclave.Unseal(a.meter, blob)
	if err != nil || len(b) < 16 {
		// Tampered or foreign state: refuse to guess about fencing.
		return ErrFrameCorrupt
	}
	if ep := binary.LittleEndian.Uint64(b[0:8]); ep > a.epoch {
		a.epoch = ep
	}
	return nil
}
