// Frame codec tests: round-trip through two enclaves sharing a sealing
// identity, exhaustive single-byte tamper detection, the every-byte-offset
// torn-stream sweep, and the decode fuzz target. The decoders face bytes
// from an adversary-controlled link, so the bar is: detect everything,
// panic on nothing.
package repl

import (
	"bytes"
	"testing"

	"shieldstore/internal/cmac"
	"shieldstore/internal/mem"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
)

func testEnclave(seed uint64) *sgx.Enclave {
	space := mem.NewSpace(mem.Config{EPCBytes: 16 << 20})
	return sgx.New(sgx.Config{Space: space, Seed: seed})
}

// encodeStream encodes a fixed little mutation stream (seq 1..4) on a
// fresh chain and returns the concatenated wire bytes plus the frame
// boundaries.
func encodeStream(e *sgx.Enclave) (stream []byte, bounds []int) {
	m := sim.NewMeter(e.Model())
	chain := newChain(e)
	type rec struct {
		kind     byte
		key, val string
		delta    int64
	}
	recs := []rec{
		{FrameSet, "alpha", "one", 0},
		{FrameAppend, "alpha", "-more", 0},
		{FrameIncr, "counter", "", 41},
		{FrameDelete, "alpha", "", 0},
	}
	for i, r := range recs {
		f := encodeFrame(m, e, chain, uint64(i+1), 1, uint16(i%2), appendRecord(nil, r.kind, []byte(r.key), []byte(r.val), r.delta))
		stream = append(stream, f...)
		bounds = append(bounds, len(stream))
	}
	return stream, bounds
}

func TestFrameRoundTrip(t *testing.T) {
	sender := testEnclave(7)
	stream, _ := encodeStream(sender)

	// A *different* enclave instance with the same seed must verify and
	// unseal everything: the chain key and sealing key derive from the
	// shared identity, which is what lets a replica process check frames
	// its primary produced.
	receiver := testEnclave(7)
	m := sim.NewMeter(receiver.Model())
	chain := newChain(receiver)
	model := receiver.Model()

	wantKeys := []string{"alpha", "alpha", "counter", "alpha"}
	wantKinds := []byte{FrameSet, FrameAppend, FrameIncr, FrameDelete}
	off, idx := 0, 0
	var f Frame
	for off < len(stream) {
		n, body, blob, tag, err := decodeFrame(&f, stream[off:])
		if err != nil {
			t.Fatalf("frame %d: decode: %v", idx, err)
		}
		if !chain.check(m, model, body, tag) {
			t.Fatalf("frame %d: chain verification failed", idx)
		}
		rec, err := receiver.Unseal(m, blob)
		if err != nil {
			t.Fatalf("frame %d: unseal: %v", idx, err)
		}
		if err := decodeRecord(&f, rec); err != nil {
			t.Fatalf("frame %d: record: %v", idx, err)
		}
		if f.Seq != uint64(idx+1) || f.Epoch != 1 {
			t.Fatalf("frame %d: seq=%d epoch=%d", idx, f.Seq, f.Epoch)
		}
		if f.Kind != wantKinds[idx] || !bytes.Equal(f.Key, []byte(wantKeys[idx])) {
			t.Fatalf("frame %d: kind=%d key=%q", idx, f.Kind, f.Key)
		}
		if f.Kind == FrameIncr && f.Delta != 41 {
			t.Fatalf("incr delta = %d", f.Delta)
		}
		off += n
		idx++
	}
	if idx != 4 {
		t.Fatalf("decoded %d frames, want 4", idx)
	}

	// A stranger enclave (different seed) must fail the chain on frame 1.
	stranger := newChain(testEnclave(8))
	n, body, _, tag, err := decodeFrame(&f, stream)
	if err != nil || n <= 0 {
		t.Fatalf("re-decode: %v", err)
	}
	if stranger.check(m, model, body, tag) || stranger.checkGenesis(m, model, body, tag) {
		t.Fatal("foreign enclave verified the chain")
	}
}

// TestFrameTamperEveryByte flips every single byte of a two-frame stream
// in turn; no flipped stream may survive decode + chain verification +
// unseal on both frames.
func TestFrameTamperEveryByte(t *testing.T) {
	e := testEnclave(7)
	stream, _ := encodeStream(e)
	m := sim.NewMeter(e.Model())
	model := e.Model()

	verify := func(buf []byte) bool {
		chain := newChain(e)
		off, applied := 0, 0
		var f Frame
		for off < len(buf) {
			n, body, blob, tag, err := decodeFrame(&f, buf[off:])
			if err != nil {
				return false
			}
			if !chain.check(m, model, body, tag) {
				return false
			}
			rec, err := e.Unseal(m, blob)
			if err != nil {
				return false
			}
			if err := decodeRecord(&f, rec); err != nil {
				return false
			}
			off += n
			applied++
		}
		return applied == 4
	}
	if !verify(stream) {
		t.Fatal("pristine stream failed verification")
	}
	for i := range stream {
		mut := append([]byte(nil), stream...)
		mut[i] ^= 0x40
		if verify(mut) {
			t.Fatalf("flip at byte %d went undetected", i)
		}
	}
}

// TestTornStreamEveryOffset cuts the stream at every byte offset: the
// decoder must hand back exactly the whole frames the cut retains and
// flag the torn tail — never panic, never invent a frame.
func TestTornStreamEveryOffset(t *testing.T) {
	e := testEnclave(7)
	stream, bounds := encodeStream(e)
	for cut := 0; cut <= len(stream); cut++ {
		whole := 0
		for _, b := range bounds {
			if cut >= b {
				whole++
			}
		}
		off, got := 0, 0
		var f Frame
		var torn bool
		for off < cut {
			n, _, _, _, err := decodeFrame(&f, stream[off:cut])
			if err != nil {
				torn = true
				break
			}
			off += n
			got++
		}
		if got != whole {
			t.Fatalf("cut %d: decoded %d whole frames, want %d", cut, got, whole)
		}
		aligned := cut == 0 || (whole > 0 && cut == bounds[whole-1])
		if torn == aligned {
			t.Fatalf("cut %d: torn=%v with %d whole frames (aligned=%v)", cut, torn, whole, aligned)
		}
	}
}

// FuzzReplFrameDecode throws arbitrary bytes at the outer and inner
// decoders: they may reject, they must never panic or read out of
// bounds, and accepted frames must be internally consistent.
func FuzzReplFrameDecode(f *testing.F) {
	e := testEnclave(7)
	stream, bounds := encodeStream(e)
	f.Add(stream)
	f.Add(stream[:bounds[0]])
	f.Add(stream[:bounds[0]-1])
	f.Add(stream[1:])
	f.Add([]byte{})
	f.Add(bytes.Repeat([]byte{0xff}, frameOverhead+8))
	f.Fuzz(func(t *testing.T, data []byte) {
		var fr Frame
		off := 0
		for off < len(data) {
			n, body, blob, tag, err := decodeFrame(&fr, data[off:])
			if err != nil {
				break
			}
			if n <= 0 || n > len(data)-off {
				t.Fatalf("decode length %d out of range (have %d)", n, len(data)-off)
			}
			if len(body) != frameHdr+len(blob) || len(tag) != cmac.Size {
				t.Fatalf("inconsistent spans: body=%d blob=%d tag=%d", len(body), len(blob), len(tag))
			}
			// The blob is attacker bytes too: unseal must reject or the
			// record decoder must bound-check cleanly.
			if rec, err := e.Unseal(sim.NewMeter(e.Model()), blob); err == nil {
				_ = decodeRecord(&fr, rec)
			}
			_ = decodeRecord(&fr, blob)
			off += n
		}
	})
}
