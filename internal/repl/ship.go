// The primary side of replication: the Shipper tees every journaled
// mutation into a sealed, MAC-chained frame stream and ships it to the
// replica inside the worker pool's group commit — before any client
// acknowledgement — so a client ack always implies a replica ack.
package repl

import (
	"fmt"
	"math/rand"
	"sync"
	"time"

	"shieldstore/internal/client"
	"shieldstore/internal/core"
	"shieldstore/internal/fault"
	"shieldstore/internal/proto"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
)

// ShipperOptions configures a primary's replication stream.
type ShipperOptions struct {
	// Addr is the replica endpoint frames ship to.
	Addr string
	// Link are the dial options for the replication connection. The frames
	// themselves are sealed and MAC-chained, so the link may run without
	// channel encryption; Secure adds attestation of the replica.
	Link client.Options
	// Epoch is the fencing epoch stamped on every frame (default 1). A
	// replica promoted past this epoch rejects the stream with
	// StatusFenced and the shipper latches Fenced.
	Epoch uint64
	// MaxBuffer bounds how many frames may sit unacked while the replica
	// link is down (default 65536). Overflow abandons the buffered tail
	// and schedules a full bootstrap instead — acked writes are still
	// safe on the primary; the replica just re-syncs from a snapshot.
	MaxBuffer int
	// MaxBatchBytes bounds one CmdReplicate payload (default 1 MiB).
	MaxBatchBytes int
	// Backoff / MaxBackoff bound the link-redial backoff window
	// (defaults 5ms / 1s).
	Backoff    time.Duration
	MaxBackoff time.Duration
	// Faults, when set, arms the flaky-link injection points
	// (PointReplDrop/Dup/Reorder) against outgoing payloads.
	Faults *fault.Plane
	// Logf receives background shipping failures (no caller to return to).
	Logf func(format string, args ...any)
}

// shipFrame is one encoded, unacked frame in the shipper's buffer.
type shipFrame struct {
	seq  uint64
	data []byte
}

// Shipper is the primary-side replication engine. Create one per shard
// (NewShipper), wrap every partition journal with Tee (or
// persist.HealerOptions.WrapJournal), Start it, and the worker pool's
// group commit does the rest: enqueue on journal, flush+ack on Commit.
//
// All mutable state is under mu; partition workers (enqueue/Commit) and
// the bootstrap goroutine serialize on it. Commit holds mu across the
// network flush — the price of the group-commit guarantee — so a wedged
// replica link stalls that partition's acknowledgements rather than
// acking writes the replica never saw.
type Shipper struct {
	p       *core.Partitioned
	enclave *sgx.Enclave
	opts    ShipperOptions
	meter   *sim.Meter // bootstrap/background costs: not request cost

	mu    sync.Mutex
	chain *chainState
	seq   uint64 // last assigned frame sequence
	acked uint64 // replica's durable watermark
	buf   []shipFrame

	conn      *client.Client
	down      bool
	downUntil time.Time
	backoff   time.Duration
	rng       *rand.Rand

	fenced         bool
	needsBootstrap bool
	bootstrapping  bool
	closed         bool

	bootWake chan struct{}
	quit     chan struct{}
	done     chan struct{}
}

// NewShipper builds a shipper for pool p targeting opts.Addr. Wire the
// tees (Tee / WrapJournal) before the pool starts, then call Start.
func NewShipper(p *core.Partitioned, opts ShipperOptions) *Shipper {
	if opts.Epoch == 0 {
		opts.Epoch = 1
	}
	if opts.MaxBuffer == 0 {
		opts.MaxBuffer = 1 << 16
	}
	if opts.MaxBatchBytes == 0 {
		opts.MaxBatchBytes = 1 << 20
	}
	if opts.Backoff == 0 {
		opts.Backoff = 5 * time.Millisecond
	}
	if opts.MaxBackoff == 0 {
		opts.MaxBackoff = time.Second
	}
	return &Shipper{
		p:        p,
		enclave:  p.Enclave(),
		opts:     opts,
		meter:    sim.NewMeter(p.Enclave().Model()),
		chain:    newChain(p.Enclave()),
		rng:      rand.New(rand.NewSource(1)),
		bootWake: make(chan struct{}, 1),
		quit:     make(chan struct{}),
		done:     make(chan struct{}),
	}
}

// Start launches the bootstrap worker. Call after Partitioned.Start.
func (s *Shipper) Start() { go s.bootstrapLoop() }

// Close stops the bootstrap worker and drops the link. Buffered frames
// are abandoned (the replica re-syncs from whoever ships next). Call
// before Partitioned.Stop — the bootstrap worker uses RunCtl.
func (s *Shipper) Close() {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.closed = true
	s.mu.Unlock()
	close(s.quit)
	<-s.done
	s.mu.Lock()
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
	s.chain.release()
	s.mu.Unlock()
}

// Tee wraps a partition's journal so every logged mutation is also
// enqueued as a replication frame, and the worker's group commit flushes
// and waits for the replica's ack. inner may be nil (replication without
// local durability).
func (s *Shipper) Tee(part int, inner core.Journal) core.GroupJournal {
	return &tee{s: s, part: uint16(part), inner: inner}
}

// tee is the per-partition core.GroupJournal adapter.
type tee struct {
	s     *Shipper
	part  uint16
	inner core.Journal
}

// LogOp enqueues the mutation's replication frame, then forwards to the
// wrapped journal. The frame is enqueued first — it cannot fail — so even
// when the local WAL dies (and the partition flags JournalLost) the
// mutation still reaches the replica this shard will fail over to.
func (t *tee) LogOp(m *sim.Meter, kind core.BatchKind, key, value []byte, delta int64) error {
	t.s.enqueue(m, t.part, frameKind(kind), key, value, delta)
	if t.inner == nil {
		return nil
	}
	return t.inner.LogOp(m, kind, key, value, delta)
}

// Commit is the group-commit barrier: flush every buffered frame and
// return only once the replica acked them (or the failure was absorbed
// into a buffered/bootstrap state that keeps the single-failure
// guarantee). A Fenced shipper fails the commit — the mutations of this
// drain are retracted, because a promoted replica will never count them.
func (t *tee) Commit(m *sim.Meter) error { return t.s.commit(m) }

// enqueue assigns the next sequence number, seals and chain-signs the
// frame, and appends it to the unacked buffer.
func (s *Shipper) enqueue(m *sim.Meter, part uint16, kind byte, key, value []byte, delta int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed || s.fenced {
		return
	}
	// While the link is down and no bootstrap is running, a full buffer
	// tips over into bootstrap mode: drop the tail, re-sync from snapshot.
	if s.down && !s.bootstrapping && !s.needsBootstrap && len(s.buf) >= s.opts.MaxBuffer {
		s.buf = s.buf[:0]
		s.needsBootstrap = true
		s.wake()
		s.logf("repl: unacked buffer overflow, scheduling bootstrap")
	}
	s.seq++
	rec := appendRecord(nil, kind, key, value, delta)
	s.buf = append(s.buf, shipFrame{seq: s.seq, data: encodeFrame(m, s.enclave, s.chain, s.seq, s.opts.Epoch, part, rec)})
}

// commit implements the group-commit barrier (see tee.Commit).
func (s *Shipper) commit(m *sim.Meter) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return nil
	}
	if s.fenced {
		return core.ErrFenced
	}
	if s.needsBootstrap || s.bootstrapping {
		s.wake()
		return nil
	}
	if s.down && time.Now().Before(s.downUntil) {
		return nil // buffering through the outage
	}
	return s.flushLocked(m)
}

// wake pokes the bootstrap worker (non-blocking; the channel latches).
func (s *Shipper) wake() {
	select {
	case s.bootWake <- struct{}{}:
	default:
	}
}

func (s *Shipper) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// flushLocked ships the unacked buffer in MaxBatchBytes chunks until it
// drains or the link degrades. Caller holds mu. Transport failures and
// re-syncable server states return nil (the frames stay buffered or a
// bootstrap is scheduled); only fencing is a hard error.
//
//ss:ocall — shipping crosses the enclave boundary per payload.
func (s *Shipper) flushLocked(m *sim.Meter) error {
	gapRetries := 0
	for len(s.buf) > 0 {
		if s.conn == nil && !s.redialLocked() {
			return nil
		}
		payload := s.buildPayload()
		s.enclave.Syscall(m, true)
		m.Charge(s.enclave.Model().NIC(len(payload)))
		m.Count(sim.CtrNetMessage)
		status, watermark, err := s.conn.Replicate(payload)
		if err != nil {
			s.conn.Close()
			s.conn = nil
			s.markDown()
			s.logf("repl: ship to %s failed: %v", s.opts.Addr, err)
			return nil
		}
		s.down = false
		s.backoff = 0
		// Fencing wins over every watermark heuristic: a promoted replica's
		// watermark is from its new life and must not be "repaired" around —
		// the stream is dead, this node is an ex-primary.
		if status == proto.StatusFenced {
			s.fenced = true
			s.logf("repl: fenced by replica at %s (newer epoch)", s.opts.Addr)
			return core.ErrFenced
		}
		// Watermark sanity: the two ends can restart independently, and
		// either restart desyncs the stream in a way statuses alone don't
		// surface. A watermark past anything this shipper ever assigned
		// means the replica is on a previous life's stream and is
		// dup-skipping our frames (seq below its horizon) while "acking"
		// them — jump past its horizon and re-sync. A watermark below what
		// it already acked means the replica lost applied history (it
		// restarted) — re-sync it from a snapshot.
		if watermark > s.seq {
			s.seq = watermark
			s.scheduleBootstrapLocked("replica watermark ahead of stream (primary restarted)")
			return nil
		}
		if watermark < s.acked {
			s.scheduleBootstrapLocked("replica watermark regressed (replica restarted)")
			return nil
		}
		// Trim everything the replica now vouches for.
		if watermark > s.acked {
			s.acked = watermark
		}
		trimmed := 0
		for trimmed < len(s.buf) && s.buf[trimmed].seq <= s.acked {
			trimmed++
		}
		s.buf = s.buf[trimmed:]
		for i := 0; i < trimmed; i++ {
			m.Count(sim.CtrReplShipped)
		}
		switch status {
		case proto.StatusOK:
			// Chunk fully applied; keep draining.
		case proto.StatusReplGap:
			// Prefix applied; the replica wants a resend from acked+1. If
			// the gap persists (e.g. the replica keeps failing the apply)
			// give up for this commit — the frames stay buffered.
			if len(s.buf) > 0 && s.buf[0].seq > s.acked+1 {
				// The replica needs frames we no longer hold: re-sync.
				s.scheduleBootstrapLocked("replica behind retained buffer")
				return nil
			}
			gapRetries++
			if gapRetries > 3 {
				s.markDown()
				return nil
			}
		default:
			// Chain break, malformed stream, or replica-side corruption:
			// the stream state is unrecoverable in place. Re-sync.
			s.scheduleBootstrapLocked(fmt.Sprintf("replica rejected stream (status %d)", status))
			return nil
		}
	}
	return nil
}

// buildPayload concatenates buffered frames up to MaxBatchBytes and runs
// the armed flaky-link faults against the chunk.
func (s *Shipper) buildPayload() []byte {
	frames := make([][]byte, 0, len(s.buf))
	total := 0
	for _, f := range s.buf {
		if total > 0 && total+len(f.data) > s.opts.MaxBatchBytes {
			break
		}
		frames = append(frames, f.data)
		total += len(f.data)
	}
	frames = s.injectLinkFaults(frames)
	payload := make([]byte, 0, total)
	for _, f := range frames {
		payload = append(payload, f...)
	}
	return payload
}

// injectLinkFaults applies armed drop/dup/reorder faults to one outgoing
// chunk, at frame granularity.
func (s *Shipper) injectLinkFaults(frames [][]byte) [][]byte {
	p := s.opts.Faults
	if p == nil || len(frames) == 0 {
		return frames
	}
	if p.Hit(fault.PointReplDrop) {
		i := p.Pick(len(frames))
		frames = append(frames[:i:i], frames[i+1:]...)
		s.meter.Count(sim.CtrFaultInjected)
	}
	if len(frames) > 0 && p.Hit(fault.PointReplDup) {
		i := p.Pick(len(frames))
		frames = append(frames, nil)
		copy(frames[i+1:], frames[i:])
		frames[i+1] = frames[i]
		s.meter.Count(sim.CtrFaultInjected)
	}
	if len(frames) > 1 && p.Hit(fault.PointReplReorder) {
		i := p.Pick(len(frames) - 1)
		frames[i], frames[i+1] = frames[i+1], frames[i]
		s.meter.Count(sim.CtrFaultInjected)
	}
	return frames
}

// redialLocked attempts to (re)establish the replica link, honoring the
// capped, jittered backoff window. Caller holds mu.
//
//ss:ocall — dialing is a host crossing.
func (s *Shipper) redialLocked() bool {
	now := time.Now()
	if s.down && now.Before(s.downUntil) {
		return false
	}
	s.enclave.Syscall(s.meter, false)
	c, err := client.Dial(s.opts.Addr, s.opts.Link)
	if err != nil {
		s.markDown()
		return false
	}
	s.conn = c
	s.down = false
	s.backoff = 0
	return true
}

// markDown records a link failure and arms the next backoff window
// (exponential, capped, ±25% jitter).
func (s *Shipper) markDown() {
	s.down = true
	if s.backoff == 0 {
		s.backoff = s.opts.Backoff
	} else if s.backoff < s.opts.MaxBackoff {
		s.backoff *= 2
		if s.backoff > s.opts.MaxBackoff {
			s.backoff = s.opts.MaxBackoff
		}
	}
	jitter := time.Duration(float64(s.backoff) * 0.25 * (2*s.rng.Float64() - 1))
	s.downUntil = time.Now().Add(s.backoff + jitter)
}

// scheduleBootstrapLocked abandons the stream state and queues a full
// re-sync. Caller holds mu.
func (s *Shipper) scheduleBootstrapLocked(why string) {
	s.buf = s.buf[:0]
	s.needsBootstrap = true
	s.wake()
	s.logf("repl: scheduling bootstrap: %s", why)
}

// MigrateTo retargets the stream at a new (typically empty) node and
// schedules a full bootstrap — phase one of a live shard migration. The
// caller then waits for Synced and performs the cutover (promote + ring
// swap) on the cluster client.
func (s *Shipper) MigrateTo(addr string, link client.Options) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.conn != nil {
		s.conn.Close()
		s.conn = nil
	}
	s.opts.Addr = addr
	s.opts.Link = link
	s.fenced = false
	s.down = false
	s.backoff = 0
	s.scheduleBootstrapLocked("migration target " + addr)
}

// Synced reports whether the replica has acked every frame the shipper
// ever assembled: no bootstrap pending or running, link up, buffer empty.
func (s *Shipper) Synced() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return !s.needsBootstrap && !s.bootstrapping && !s.down && !s.fenced && len(s.buf) == 0
}

// Fenced reports whether a promoted replica has fenced this primary out.
// A fenced node must stop accepting mutations (server.Config.Writable).
func (s *Shipper) Fenced() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fenced
}

// Watermark returns the replica's last acked sequence and the highest
// sequence assigned so far.
func (s *Shipper) Watermark() (acked, assigned uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.acked, s.seq
}

// ShipStats is one consistent snapshot of the stream's replication state
// — the control plane's lag-monitoring signal (Shipper.Stats).
type ShipStats struct {
	// Acked is the replica's durable watermark; Assigned the highest
	// frame sequence ever assigned. Assigned-Acked is the replication
	// lag in frames: the window a failover would have to give up.
	Acked, Assigned uint64
	// Synced mirrors Shipper.Synced; Fenced mirrors Shipper.Fenced.
	Synced, Fenced bool
	// Down reports the replica link in its backoff window;
	// Bootstrapping that a full re-sync is pending or running.
	Down, Bootstrapping bool
}

// Lag returns the unacked frame window (assigned - acked).
func (st ShipStats) Lag() uint64 {
	if st.Assigned < st.Acked {
		return 0
	}
	return st.Assigned - st.Acked
}

// Stats snapshots the stream state under one lock acquisition — the
// watermark pair and the link flags are mutually consistent, which the
// individual accessors cannot promise.
func (s *Shipper) Stats() ShipStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return ShipStats{
		Acked:         s.acked,
		Assigned:      s.seq,
		Synced:        !s.needsBootstrap && !s.bootstrapping && !s.down && !s.fenced && len(s.buf) == 0,
		Fenced:        s.fenced,
		Down:          s.down,
		Bootstrapping: s.needsBootstrap || s.bootstrapping,
	}
}

// SetEpoch restamps the stream's fencing epoch — called when the node
// owning this shipper is promoted (its writes now belong to the new
// epoch) before the stream is retargeted at a fresh replica. Frames
// sealed after SetEpoch carry the new epoch; the bootstrap's FrameReset
// hands it to the replica.
func (s *Shipper) SetEpoch(epoch uint64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if epoch > s.opts.Epoch {
		s.opts.Epoch = epoch
	}
}

// Meter exposes the shipper's own meter (bootstrap costs accrue here).
func (s *Shipper) Meter() *sim.Meter { return s.meter }

// bootstrapLoop is the background re-sync worker. It owns the three-phase
// bootstrap: (1) under mu, restart the chain with a FrameReset; (2) per
// partition, on that partition's own worker via RunCtl, snapshot every
// live entry into Set frames — the worker is parked for exactly its own
// partition's scan, so per-key mutation order is preserved and siblings
// keep serving; (3) flush everything and hand the stream back to the
// commit path. Runs on its own goroutine: a Commit that finds bootstrap
// pending just pokes this loop and returns (a bounded degraded window),
// because snapshotting from inside a worker's commit would deadlock the
// pool.
func (s *Shipper) bootstrapLoop() {
	defer close(s.done)
	for {
		select {
		case <-s.quit:
			return
		case <-s.bootWake:
		}
		s.mu.Lock()
		if s.closed || !s.needsBootstrap {
			s.mu.Unlock()
			continue
		}
		s.needsBootstrap = false
		s.bootstrapping = true
		s.buf = s.buf[:0]
		s.chain.reset()
		s.seq++
		s.buf = append(s.buf, shipFrame{seq: s.seq, data: encodeFrame(s.meter, s.enclave, s.chain, s.seq, s.opts.Epoch, 0, appendRecord(nil, FrameReset, nil, nil, 0))})
		s.mu.Unlock()

		for i := 0; i < s.p.Parts(); i++ {
			select {
			case <-s.quit:
				return
			default:
			}
			part := uint16(i)
			s.p.RunCtl(i, func(st *core.WorkerState) {
				err := st.Store.ForEachDecrypt(s.meter, func(key, val []byte) error {
					s.enqueue(s.meter, part, FrameSet, key, val, 0)
					return nil
				})
				if err != nil {
					// A quarantined/unreadable partition cannot contribute to
					// the snapshot; ship what the rest has and say so.
					s.logf("repl: bootstrap skipped partition %d: %v", i, err)
				}
			})
		}

		s.mu.Lock()
		s.bootstrapping = false
		if !s.closed && !s.needsBootstrap {
			if err := s.flushLocked(s.meter); err != nil {
				s.logf("repl: bootstrap flush: %v", err)
			}
		}
		s.mu.Unlock()
	}
}
