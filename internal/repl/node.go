// Node unifies a data node's replication roles under one manager so the
// control plane can drive role transitions over the wire (DESIGN.md §17):
// a primary owns a Shipper, a replica owns an Applier, and a promoted
// replica owns both — its Applier keeps the fencing epoch it was promoted
// with, and CmdReplAttach gives it a Shipper so the shard can be
// re-protected by bootstrapping a fresh spare through the existing
// snapshot path. The Node decides writability (promoted and not fenced)
// and renders the repl_* stats lines the supervisor's lag monitor reads.
package repl

import (
	"fmt"
	"sync"

	"shieldstore/internal/client"
	"shieldstore/internal/core"
	"shieldstore/internal/fault"
	"shieldstore/internal/proto"
	"shieldstore/internal/sim"
)

// NodeOptions configures a replication role manager.
type NodeOptions struct {
	// Link builds dial options for a replica endpoint this node is told
	// to ship to (CmdReplAttach names only an address; the deployment
	// knows how to attest its own members). Required for Attach.
	Link func(addr string) client.Options
	// Epoch is the initial fencing epoch for a node without an applier
	// (a plain primary); default 1. Nodes with an applier take their
	// epoch from it — promotion updates it.
	Epoch uint64
	// Faults arms the flaky-replication-link injection points on any
	// shipper Attach creates.
	Faults *fault.Plane
	// Logf receives background shipping/attach failures.
	Logf func(format string, args ...any)
}

// Node is one data node's replication role state. Wire Writable into
// server.Config.Writable and Attach into server.Config.Attach; pass the
// node's boot-time shipper (primary) and/or applier (replica) in.
type Node struct {
	p    *core.Partitioned
	opts NodeOptions

	mu      sync.Mutex
	shipper *Shipper
	applier *Applier
}

// NewNode builds the role manager. shipper and applier may each be nil:
// a fresh primary has only a shipper (or neither, unreplicated), a fresh
// replica only an applier.
func NewNode(p *core.Partitioned, shipper *Shipper, applier *Applier, opts NodeOptions) *Node {
	if opts.Epoch == 0 {
		opts.Epoch = 1
	}
	return &Node{p: p, opts: opts, shipper: shipper, applier: applier}
}

// Shipper returns the node's current shipper (nil until the node ships).
func (n *Node) Shipper() *Shipper {
	n.mu.Lock()
	defer n.mu.Unlock()
	return n.shipper
}

// Applier returns the node's applier (nil on a pure primary).
func (n *Node) Applier() *Applier { return n.applier }

// Writable gates mutations: a replica must be promoted, and a shipping
// node must not have been fenced out by a newer epoch. Wire into
// server.Config.Writable.
func (n *Node) Writable() bool {
	n.mu.Lock()
	sh := n.shipper
	n.mu.Unlock()
	if n.applier != nil && !n.applier.Writable() {
		return false
	}
	return sh == nil || !sh.Fenced()
}

// Epoch is the node's current fencing epoch — the applier's when the
// node has one (promotion advances it), the configured epoch otherwise.
func (n *Node) Epoch() uint64 {
	if n.applier != nil {
		return n.applier.Epoch()
	}
	return n.opts.Epoch
}

// Attach (re)targets the node's replication stream at addr — the
// server-side of CmdReplAttach, the control plane's re-protection step
// after a failover leaves a promoted ex-replica serving unprotected. A
// node that already ships simply migrates its stream (full bootstrap at
// the new target); a node that never shipped builds a Shipper at the
// node's current epoch and tees it into every partition's live journal
// before streaming. An unpromoted replica refuses: it must never ship a
// stream of its own while it is an apply target.
//
//ss:xpart — installs the shipper tee on each worker via RunCtl.
func (n *Node) Attach(addr string) uint8 {
	if n.opts.Link == nil {
		return proto.StatusError
	}
	n.mu.Lock()
	defer n.mu.Unlock()
	if n.applier != nil && !n.applier.Writable() {
		return proto.StatusError
	}
	epoch := n.opts.Epoch
	if n.applier != nil {
		epoch = n.applier.Epoch()
	}
	link := n.opts.Link(addr)
	if n.shipper != nil {
		n.shipper.SetEpoch(epoch)
		n.shipper.MigrateTo(addr, link)
		return proto.StatusOK
	}
	sh := NewShipper(n.p, ShipperOptions{
		Addr:   addr,
		Link:   link,
		Epoch:  epoch,
		Faults: n.opts.Faults,
		Logf:   n.opts.Logf,
	})
	for i := 0; i < n.p.Parts(); i++ {
		part := i
		n.p.RunCtl(part, func(st *core.WorkerState) {
			st.Journal = sh.Tee(part, st.Journal)
		})
	}
	n.shipper = sh
	sh.Start()
	// The target is a fresh spare with none of this node's history:
	// always bootstrap, never assume the chains line up.
	sh.MigrateTo(addr, link)
	return proto.StatusOK
}

// StatsLines renders the node's replication state as "name=value" lines
// for the server's CmdStats answer — the wire surface of satellite
// visibility: watermark lag, sync/fence flags, role and epoch.
func (n *Node) StatsLines() []string {
	n.mu.Lock()
	sh := n.shipper
	n.mu.Unlock()
	role := "primary"
	if n.applier != nil {
		role = "replica"
		if n.applier.Writable() {
			role = "promoted"
		}
	}
	lines := []string{
		"repl_role=" + role,
		fmt.Sprintf("repl_epoch=%d", n.Epoch()),
	}
	if sh != nil {
		st := sh.Stats()
		lines = append(lines,
			fmt.Sprintf("repl_acked=%d", st.Acked),
			fmt.Sprintf("repl_assigned=%d", st.Assigned),
			fmt.Sprintf("repl_lag=%d", st.Lag()),
			"repl_synced="+b2s(st.Synced),
			"repl_fenced="+b2s(st.Fenced),
			"repl_bootstrapping="+b2s(st.Bootstrapping),
		)
	}
	if n.applier != nil {
		lines = append(lines, fmt.Sprintf("repl_watermark=%d", n.applier.Watermark()))
	}
	return lines
}

// ReplicaMeters returns the meters replication work accrues to, for
// callers aggregating shard cost (both may be nil).
func (n *Node) ReplicaMeters() []*sim.Meter {
	n.mu.Lock()
	sh := n.shipper
	n.mu.Unlock()
	var ms []*sim.Meter
	if sh != nil {
		ms = append(ms, sh.Meter())
	}
	if n.applier != nil {
		ms = append(ms, n.applier.Meter())
	}
	return ms
}

// Close retires the node's replication engines in dependency order:
// shipper first (it drives RunCtl against the live pool), then the
// applier's chain key. Call before Partitioned.Stop.
func (n *Node) Close() {
	n.mu.Lock()
	sh := n.shipper
	n.shipper = nil
	n.mu.Unlock()
	if sh != nil {
		sh.Close()
	}
	if n.applier != nil {
		n.applier.Close()
	}
}

func b2s(v bool) string {
	if v {
		return "1"
	}
	return "0"
}
