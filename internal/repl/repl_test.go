// Applier semantics: in-order apply, gap detection and resend, duplicate
// skipping without double-apply, epoch fencing, reset (bootstrap) frames,
// and promote/state persistence. The sender side here is a hand-driven
// chain standing in for a Shipper, so each protocol transition can be
// exercised exactly.
package repl

import (
	"testing"

	"shieldstore/internal/core"
	"shieldstore/internal/proto"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
)

// testSender hand-encodes a shipper-side frame stream.
type testSender struct {
	e     *sgx.Enclave
	m     *sim.Meter
	chain *chainState
	seq   uint64
	epoch uint64
}

func newTestSender(seed uint64) *testSender {
	e := testEnclave(seed)
	return &testSender{e: e, m: sim.NewMeter(e.Model()), chain: newChain(e), epoch: 1}
}

func (s *testSender) frame(kind byte, key, val string, delta int64) []byte {
	s.seq++
	return encodeFrame(s.m, s.e, s.chain, s.seq, s.epoch, 0, appendRecord(nil, kind, []byte(key), []byte(val), delta))
}

// reset restarts the chain at genesis, as a bootstrapping shipper does.
func (s *testSender) reset() []byte {
	s.chain.reset()
	s.seq++
	return encodeFrame(s.m, s.e, s.chain, s.seq, s.epoch, 0, appendRecord(nil, FrameReset, nil, nil, 0))
}

func concat(frames ...[]byte) []byte {
	var out []byte
	for _, f := range frames {
		out = append(out, f...)
	}
	return out
}

// newTestApplier stands up a started 2-partition replica pool plus its
// applier, sharing sealing identity with seed.
func newTestApplier(t *testing.T, seed uint64, dir string) (*core.Partitioned, *Applier, *sim.Meter) {
	t.Helper()
	e := testEnclave(seed)
	p := core.NewPartitioned(e, 2, core.Defaults(64))
	a, err := NewApplier(p, ApplierOptions{Dir: dir, Logf: t.Logf})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	t.Cleanup(p.Stop)
	return p, a, sim.NewMeter(e.Model())
}

func mustGet(t *testing.T, p *core.Partitioned, m *sim.Meter, key, want string) {
	t.Helper()
	v, err := p.Get(m, []byte(key))
	if err != nil {
		t.Fatalf("Get %s: %v", key, err)
	}
	if string(v) != want {
		t.Fatalf("Get %s = %q, want %q", key, v, want)
	}
}

func TestApplierAppliesStream(t *testing.T) {
	s := newTestSender(9)
	p, a, m := newTestApplier(t, 9, "")

	wm, st := a.Apply(m, concat(
		s.frame(FrameSet, "a", "1", 0),
		s.frame(FrameSet, "b", "2", 0),
		s.frame(FrameAppend, "b", "2", 0),
		s.frame(FrameIncr, "n", "", 5),
		s.frame(FrameDelete, "a", "", 0),
	))
	if st != proto.StatusOK || wm != 5 {
		t.Fatalf("Apply = (%d, %d), want (5, OK)", wm, st)
	}
	mustGet(t, p, m, "b", "22")
	mustGet(t, p, m, "n", "5")
	if _, err := p.Get(m, []byte("a")); err != core.ErrNotFound {
		t.Fatalf("deleted key: %v", err)
	}
	if got := m.Events(sim.CtrReplApplied); got != 5 {
		t.Fatalf("CtrReplApplied = %d, want 5", got)
	}
}

func TestApplierGapThenResend(t *testing.T) {
	s := newTestSender(9)
	p, a, m := newTestApplier(t, 9, "")

	f1 := s.frame(FrameSet, "k1", "v1", 0)
	f2 := s.frame(FrameSet, "k2", "v2", 0)
	f3 := s.frame(FrameIncr, "n", "", 1)

	// Drop f2 on the floor: the prefix applies, the rest must NOT.
	wm, st := a.Apply(m, concat(f1, f3))
	if st != proto.StatusReplGap || wm != 1 {
		t.Fatalf("gapped Apply = (%d, %d), want (1, ReplGap)", wm, st)
	}
	if _, err := p.Get(m, []byte("n")); err != core.ErrNotFound {
		t.Fatal("frame after the gap was applied out of order")
	}
	// Resend from watermark+1, in order: everything lands exactly once.
	wm, st = a.Apply(m, concat(f2, f3))
	if st != proto.StatusOK || wm != 3 {
		t.Fatalf("resend Apply = (%d, %d), want (3, OK)", wm, st)
	}
	mustGet(t, p, m, "k2", "v2")
	mustGet(t, p, m, "n", "1")
}

func TestApplierSkipsDuplicatesWithoutReapply(t *testing.T) {
	s := newTestSender(9)
	p, a, m := newTestApplier(t, 9, "")

	f1 := s.frame(FrameSet, "n", "5", 0)
	f2 := s.frame(FrameIncr, "n", "", 3)
	if _, st := a.Apply(m, concat(f1, f2)); st != proto.StatusOK {
		t.Fatalf("first Apply status %d", st)
	}
	// A retransmission overlapping the applied prefix (classic after a
	// partial ack loss): the duplicate Incr must not re-apply.
	f3 := s.frame(FrameSet, "done", "yes", 0)
	wm, st := a.Apply(m, concat(f1, f2, f3))
	if st != proto.StatusOK || wm != 3 {
		t.Fatalf("resend Apply = (%d, %d), want (3, OK)", wm, st)
	}
	mustGet(t, p, m, "n", "8")
	mustGet(t, p, m, "done", "yes")
}

func TestApplierRejectsReorderedAndTampered(t *testing.T) {
	s := newTestSender(9)
	p, a, m := newTestApplier(t, 9, "")

	f1 := s.frame(FrameSet, "x", "1", 0)
	f2 := s.frame(FrameSet, "x", "2", 0)

	// Reordered: the later frame first reads as a gap (chain can't
	// continue), and nothing of it applies.
	wm, st := a.Apply(m, concat(f2, f1))
	if st != proto.StatusReplGap || wm != 0 {
		t.Fatalf("reordered Apply = (%d, %d), want (0, ReplGap)", wm, st)
	}
	if _, err := p.Get(m, []byte("x")); err != core.ErrNotFound {
		t.Fatal("reordered frame was applied")
	}
	// In order they land fine.
	if _, st := a.Apply(m, concat(f1, f2)); st != proto.StatusOK {
		t.Fatalf("ordered Apply status %d", st)
	}
	mustGet(t, p, m, "x", "2")

	// Tampered: any byte flip in a frame is a chain break -> StatusError
	// (the stream is dead; only a bootstrap recovers it).
	f3 := s.frame(FrameSet, "x", "3", 0)
	mut := append([]byte(nil), f3...)
	mut[len(mut)/2] ^= 1
	if wm, st := a.Apply(m, mut); st != proto.StatusError || wm != 2 {
		t.Fatalf("tampered Apply = (%d, %d), want (2, Error)", wm, st)
	}
	mustGet(t, p, m, "x", "2")
}

func TestApplierEpochFencing(t *testing.T) {
	s := newTestSender(9)
	_, a, m := newTestApplier(t, 9, "")

	if a.Writable() {
		t.Fatal("replica writable before promotion")
	}
	if _, st := a.Apply(m, s.frame(FrameSet, "pre", "1", 0)); st != proto.StatusOK {
		t.Fatalf("pre-promotion Apply status %d", st)
	}

	// Promote must strictly advance the epoch.
	if ep, st := a.Promote(1); st != proto.StatusError || ep != 1 {
		t.Fatalf("Promote(1) = (%d, %d), want refusal at epoch 1", ep, st)
	}
	if ep, st := a.Promote(2); st != proto.StatusOK || ep != 2 {
		t.Fatalf("Promote(2) = (%d, %d)", ep, st)
	}
	if ep, st := a.Promote(2); st != proto.StatusOK || ep != 2 {
		t.Fatalf("idempotent Promote(2) = (%d, %d)", ep, st)
	}
	if ep, st := a.Promote(1); st != proto.StatusError || ep != 2 {
		t.Fatalf("stale Promote(1) = (%d, %d)", ep, st)
	}
	if !a.Writable() {
		t.Fatal("promoted replica not writable")
	}
	if got := m.Events(sim.CtrReplFailover) + a.Meter().Events(sim.CtrReplFailover); got != 1 {
		t.Fatalf("CtrReplFailover = %d, want 1", got)
	}

	// The old primary's stream (epoch 1) is now fenced out.
	wm := a.Watermark()
	gotWM, st := a.Apply(m, s.frame(FrameSet, "post", "2", 0))
	if st != proto.StatusFenced || gotWM != wm {
		t.Fatalf("stale-epoch Apply = (%d, %d), want (%d, Fenced)", gotWM, st, wm)
	}
}

func TestApplierResetWipesAndResyncs(t *testing.T) {
	s := newTestSender(9)
	p, a, m := newTestApplier(t, 9, "")

	if _, st := a.Apply(m, concat(
		s.frame(FrameSet, "old1", "x", 0),
		s.frame(FrameSet, "old2", "y", 0),
	)); st != proto.StatusOK {
		t.Fatal("seed stream failed")
	}

	// A restarted primary's bootstrap: fresh chain, sequence jumped past
	// the replica's horizon (the shipper learns the horizon from the
	// watermark guard), genesis reset, then the snapshot.
	s2 := newTestSender(9)
	s2.seq = a.Watermark() + 3 // any jump forward is legal
	wm, st := a.Apply(m, concat(
		s2.reset(),
		s2.frame(FrameSet, "new1", "n1", 0),
	))
	if st != proto.StatusOK || wm != s2.seq {
		t.Fatalf("bootstrap Apply = (%d, %d), want (%d, OK)", wm, st, s2.seq)
	}
	if _, err := p.Get(m, []byte("old1")); err != core.ErrNotFound {
		t.Fatal("reset did not wipe old state")
	}
	mustGet(t, p, m, "new1", "n1")

	// A reset below the horizon is a replay: dup-skipped, never applied.
	s3 := newTestSender(9)
	reset := s3.reset() // seq 1 < watermark
	wmBefore := a.Watermark()
	wm, st = a.Apply(m, reset)
	if st != proto.StatusOK || wm != wmBefore {
		t.Fatalf("replayed reset = (%d, %d), want (%d, OK)", wm, st, wmBefore)
	}
	mustGet(t, p, m, "new1", "n1")
}

func TestApplierPromotionSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	_, a, _ := newTestApplier(t, 9, dir)
	if ep, st := a.Promote(4); st != proto.StatusOK || ep != 4 {
		t.Fatalf("Promote(4) = (%d, %d)", ep, st)
	}

	// A new applier over the same state dir must wake up fenced at epoch
	// 4 — the one fact that may never be forgotten across a restart.
	_, a2, m2 := newTestApplier(t, 9, dir)
	if a2.Epoch() != 4 {
		t.Fatalf("restarted epoch = %d, want 4", a2.Epoch())
	}
	s := newTestSender(9) // epoch 1 stream: the fenced old primary
	if _, st := a2.Apply(m2, s.frame(FrameSet, "k", "v", 0)); st != proto.StatusFenced {
		t.Fatalf("stale stream after restart: status %d, want Fenced", st)
	}
}
