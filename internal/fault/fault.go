// Package fault is ShieldStore's deterministic fault-injection plane.
//
// The repo's threat model (§3) assumes an adversary who controls every
// byte of untrusted memory and the whole persistence path, yet ad-hoc
// corruption tests only ever exercise the handful of attacks someone
// thought to write down. The fault plane turns "what does the store do
// when X breaks" into a first-class, seeded, repeatable experiment:
// subsystems register *named injection points* (an entry read in core, a
// WAL append in persist, a socket write in the server) and a test arms a
// point with a Spec; when execution reaches the point, the fault fires —
// a bit-flip in untrusted memory, a torn file write, a dropped
// connection — and the harness asserts the outcome is one of the three
// allowed reactions: detected (typed error), recovered (replay /
// reconnect), or isolated (quarantine / timeout). Never a panic, a hang,
// or a silently wrong value. See DESIGN.md §10.
//
// Determinism: all randomness (which bit to flip, where to tear a
// write) comes from a splitmix64 stream seeded at construction, so a
// failing matrix cell replays exactly.
//
// A nil *Plane is valid and inert: every method is nil-receiver safe, so
// instrumented code calls Hit/Pick unconditionally and pays one nil
// check on the hot path when injection is disabled.
//
//ss:host(fault plane and proxy are the hostile host itself; their I/O is the attack, not an enclave exit)
package fault

import (
	"errors"
	"fmt"
	"sort"
	"sync"
)

// ErrInjected is returned by operations aborted by an injected fault
// (e.g. a torn WAL append simulating a crash mid-write).
var ErrInjected = errors.New("fault: injected failure")

// Injection point names. Subsystems fire these; tests arm them.
const (
	// PointEntryFlip flips one ciphertext bit of a chained entry in
	// untrusted memory before a bucket-set collection (core).
	PointEntryFlip = "core.entry.flip"
	// PointMACSidecar corrupts one byte of a MAC-bucket sidecar node
	// before collection (core, MACBucket mode).
	PointMACSidecar = "core.mac.sidecar"
	// PointMerkleLeaf overwrites the target bucket's Merkle leaf node in
	// untrusted memory (core, MerkleTree mode).
	PointMerkleLeaf = "core.merkle.leaf"
	// PointChainSplice unlinks a bucket's whole entry chain by zeroing
	// its head pointer (core).
	PointChainSplice = "core.chain.splice"
	// PointWALTear tears a WAL append mid-frame: a prefix of the sealed
	// record reaches the file, then the "machine crashes" (persist).
	PointWALTear = "persist.wal.tear"
	// PointSnapshotTear truncates the snapshot data stream mid-write
	// after the sealed metadata is already durable (persist).
	PointSnapshotTear = "persist.snapshot.tear"
	// PointVLogTear tears a value-log append mid-record: a prefix of the
	// sealed record reaches the segment file, then the "machine crashes"
	// before the enclave extends its trusted extent (vlog).
	PointVLogTear = "vlog.segment.tear"
	// PointReplDrop / PointReplDup / PointReplReorder mangle the primary's
	// outgoing replication payload at frame granularity — a flaky shipping
	// link: drop deletes one frame, dup repeats one, reorder swaps two
	// adjacent frames. The replica's sequence/MAC chain must detect every
	// one (gap or chain break) and force a clean re-sync.
	PointReplDrop    = "repl.ship.drop"
	PointReplDup     = "repl.ship.dup"
	PointReplReorder = "repl.ship.reorder"
	// PointConnRead / PointConnWrite fail a wrapped connection's Nth
	// read/write (fault.Conn).
	PointConnRead  = "net.conn.read"
	PointConnWrite = "net.conn.write"
)

// Spec arms one injection point.
type Spec struct {
	// Skip passes over the first Skip hits before firing (0 = fire on
	// the first hit).
	Skip int
	// Count is how many hits fire once triggered; 0 means 1, negative
	// means every subsequent hit.
	Count int
}

// Plane is a registry of armed injection points plus the deterministic
// randomness stream they draw from. Safe for concurrent use: partition
// workers, connection handlers and the arming test all share one Plane.
type Plane struct {
	mu    sync.Mutex
	rng   uint64
	arms  map[string]*arm
	fired map[string]int
}

type arm struct {
	skip  int
	count int // remaining fires; negative = unlimited
}

// New creates a plane seeded for a reproducible fault schedule.
func New(seed uint64) *Plane {
	return &Plane{
		rng:   seed*0x9E3779B97F4A7C15 + 0x1234567,
		arms:  make(map[string]*arm),
		fired: make(map[string]int),
	}
}

// Arm schedules point to fire per spec, replacing any previous arming.
func (p *Plane) Arm(point string, s Spec) {
	if p == nil {
		return
	}
	count := s.Count
	if count == 0 {
		count = 1
	}
	p.mu.Lock()
	p.arms[point] = &arm{skip: s.Skip, count: count}
	p.mu.Unlock()
}

// Disarm removes point's arming (fired counts are kept).
func (p *Plane) Disarm(point string) {
	if p == nil {
		return
	}
	p.mu.Lock()
	delete(p.arms, point)
	p.mu.Unlock()
}

// Armed reports whether point could still fire. Instrumented code uses
// it to skip expensive fault preparation (e.g. locating a victim entry)
// on the common path.
func (p *Plane) Armed(point string) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.arms[point]
	return ok
}

// Hit registers one arrival at point and reports whether the armed
// fault fires now. Unarmed points always return false.
func (p *Plane) Hit(point string) bool {
	if p == nil {
		return false
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	a, ok := p.arms[point]
	if !ok {
		return false
	}
	if a.skip > 0 {
		a.skip--
		return false
	}
	if a.count > 0 {
		a.count--
		if a.count == 0 {
			delete(p.arms, point)
		}
	}
	p.fired[point]++
	return true
}

// Fired returns how many times point has fired.
func (p *Plane) Fired(point string) int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.fired[point]
}

// TotalFired returns the number of faults fired across all points.
func (p *Plane) TotalFired() int {
	if p == nil {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	total := 0
	for _, n := range p.fired {
		total += n
	}
	return total
}

// Pick returns a deterministic value in [0, n) from the plane's seeded
// stream (n <= 0 returns 0). Fault sites use it to choose which byte to
// corrupt or where to tear a write.
func (p *Plane) Pick(n int) int {
	if p == nil || n <= 0 {
		return 0
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	return int(p.next() % uint64(n))
}

// next advances the splitmix64 stream. Caller holds mu.
func (p *Plane) next() uint64 {
	p.rng += 0x9E3779B97F4A7C15
	z := p.rng
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Report renders "point=count" lines for every point that fired, sorted
// by name (experiment logs, server Stats).
func (p *Plane) Report() []string {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	out := make([]string, 0, len(p.fired))
	for point, n := range p.fired {
		out = append(out, fmt.Sprintf("%s=%d", point, n))
	}
	sort.Strings(out)
	return out
}
