// The fault matrix: every fault kind crossed with every operation class,
// on both the direct core path and the pipelined network path. The
// asserted contract is the one DESIGN.md §10 states — each injected
// fault must land in exactly one of three outcomes:
//
//	detected  — a typed error (ErrIntegrity, ErrCorruptPointer,
//	            ErrLogCorrupt, ErrRollback, ErrConnection, ...)
//	recovered — the operation succeeds anyway (WAL valid-prefix replay,
//	            client reconnect of idempotent ops)
//	isolated  — the failure is confined (quarantined partition, shed
//	            connection) while the rest keeps serving
//
// and never a panic, a hang, or a silently wrong value.
package fault_test

import (
	"errors"
	"fmt"
	"net"
	"os"
	"path/filepath"
	"testing"
	"time"

	"shieldstore/internal/client"
	"shieldstore/internal/core"
	"shieldstore/internal/fault"
	"shieldstore/internal/mem"
	"shieldstore/internal/persist"
	"shieldstore/internal/server"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
)

func matrixEnclave(dir string) *sgx.Enclave {
	space := mem.NewSpace(mem.Config{EPCBytes: 32 << 20})
	cfg := sgx.Config{Space: space, Seed: 77, Measurement: [32]byte{0x5D}}
	if dir != "" {
		cfg.CounterPath = filepath.Join(dir, "nvram.bin")
	}
	return sgx.New(cfg)
}

// memoryKinds are the untrusted-memory fault kinds; each fires inside
// the victimized operation's own bucket-set collection.
var memoryKinds = []struct {
	point string
	opts  func() core.Options
}{
	{fault.PointEntryFlip, func() core.Options { return core.Defaults(8) }},
	{fault.PointMACSidecar, func() core.Options { return core.Defaults(8) }},
	{fault.PointChainSplice, func() core.Options { return core.Defaults(8) }},
	{fault.PointMerkleLeaf, func() core.Options {
		o := core.Defaults(8)
		o.MerkleTree = true
		return o
	}},
}

func integrityTyped(err error) bool {
	return errors.Is(err, core.ErrIntegrity) || errors.Is(err, core.ErrCorruptPointer) ||
		errors.Is(err, core.ErrQuarantined)
}

// assertDetected classifies a memory fault's outcome on the core path:
// the op itself errors typed, or the full scrub finds the corruption.
// Anything else is a silent wrong answer and fails the matrix.
func assertDetected(t *testing.T, s *core.Store, m *sim.Meter, opErr error) {
	t.Helper()
	if opErr != nil {
		if !integrityTyped(opErr) {
			t.Fatalf("fault surfaced untyped: %v", opErr)
		}
		return
	}
	s.ForceUnquarantine() // scrub below must run even if the latch tripped
	if err := s.VerifyAll(m); !integrityTyped(err) {
		t.Fatalf("fault went undetected: op=nil scrub=%v", err)
	}
}

func TestMatrixCoreMemoryFaults(t *testing.T) {
	ops := []string{"Get", "Set", "Delete", "Batch"}
	for _, kind := range memoryKinds {
		for _, op := range ops {
			t.Run(kind.point+"/"+op, func(t *testing.T) {
				e := matrixEnclave("")
				s := core.New(e, nil, kind.opts())
				m := sim.NewMeter(e.Model())
				for i := 0; i < 32; i++ {
					if err := s.Set(m, []byte(fmt.Sprintf("mk%03d", i)), []byte("v")); err != nil {
						t.Fatal(err)
					}
				}
				p := fault.New(5)
				s.SetFaultPlane(p)
				p.Arm(kind.point, fault.Spec{})
				var opErr error
				switch op {
				case "Get":
					_, opErr = s.Get(m, []byte("mk010"))
				case "Set":
					opErr = s.Set(m, []byte("mk010"), []byte("v2"))
				case "Delete":
					opErr = s.Delete(m, []byte("mk010"))
				case "Batch":
					rs := s.ApplyBatch(m, []core.BatchOp{
						{Kind: core.BatchGet, Key: []byte("mk010")},
						{Kind: core.BatchSet, Key: []byte("mk011"), Value: []byte("v2")},
						{Kind: core.BatchGet, Key: []byte("mk012")},
					})
					for _, r := range rs {
						if r.Err != nil {
							opErr = r.Err
							break
						}
					}
				}
				if p.Fired(kind.point) != 1 {
					t.Fatalf("%s fired %d times, want 1", kind.point, p.Fired(kind.point))
				}
				if m.Events(sim.CtrFaultInjected) != 1 {
					t.Fatalf("CtrFaultInjected = %d, want 1", m.Events(sim.CtrFaultInjected))
				}
				assertDetected(t, s, m, opErr)
			})
		}
	}
}

// matrixServer runs a secure pipelined server over a quarantining
// partitioned store with the fault plane attached.
func matrixServer(t *testing.T) (*client.Client, *core.Partitioned, *fault.Plane) {
	t.Helper()
	e := matrixEnclave("")
	opts := core.Defaults(32)
	opts.Quarantine = true
	p := core.NewPartitioned(e, 4, opts)
	p.Start()
	t.Cleanup(p.Stop)
	plane := fault.New(13)
	p.SetFaultPlane(plane)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.Serve(ln, server.Config{
		Engine:       server.CoreEngine{P: p},
		Enclave:      e,
		Secure:       true,
		Logf:         t.Logf,
		IdleTimeout:  5 * time.Second,
		DrainTimeout: 100 * time.Millisecond,
	})
	t.Cleanup(srv.Close)
	c, err := client.Dial(ln.Addr().String(), client.Options{
		Secure: true, Verifier: e, Measurement: e.Measurement(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c, p, plane
}

func TestMatrixServerMemoryFaults(t *testing.T) {
	// Merkle mode is exercised on the core path; the partitioned server
	// matrix runs the default (MAC-hash) configuration.
	kinds := []string{fault.PointEntryFlip, fault.PointMACSidecar, fault.PointChainSplice}
	ops := []string{"Get", "Set", "Batch"}
	for _, kind := range kinds {
		for _, op := range ops {
			t.Run(kind+"/"+op, func(t *testing.T) {
				c, p, plane := matrixServer(t)
				keys := make([][]byte, 48)
				for i := range keys {
					keys[i] = []byte(fmt.Sprintf("sk%03d", i))
					if err := c.Set(keys[i], []byte("v")); err != nil {
						t.Fatal(err)
					}
				}
				plane.Arm(kind, fault.Spec{})
				expect := map[string]string{}
				for _, k := range keys {
					expect[string(k)] = "v"
				}
				var opErr error
				switch op {
				case "Get":
					_, opErr = c.Get(keys[10])
				case "Set":
					opErr = c.Set(keys[10], []byte("v2"))
					if opErr == nil {
						expect[string(keys[10])] = "v2"
					}
				case "Batch":
					rs, err := c.Batch(client.GetOp(keys[10]), client.SetOp(keys[11], []byte("v2")))
					if err != nil {
						t.Fatalf("batch transport: %v", err)
					}
					if rs[1].Err == nil {
						// Per-op isolation: the batched Set may commit even
						// when its sibling Get hit the fault.
						expect[string(keys[11])] = "v2"
					}
					for _, r := range rs {
						if r.Err != nil {
							opErr = r.Err
							break
						}
					}
				}
				if plane.Fired(kind) != 1 {
					t.Fatalf("%s fired %d times, want 1", kind, plane.Fired(kind))
				}
				detected := errors.Is(opErr, client.ErrIntegrity)
				if opErr != nil && !detected && !errors.Is(opErr, client.ErrNotFound) {
					t.Fatalf("fault surfaced untyped over the wire: %v", opErr)
				}
				// Probe the whole keyspace: every key either serves its
				// exact expected value or reports the integrity violation.
				// A wrong value is the one forbidden outcome.
				clean := true
				for _, k := range keys {
					got, err := c.Get(k)
					switch {
					case err == nil:
						if string(got) != expect[string(k)] {
							t.Fatalf("key %s silently wrong: %q, want %q", k, got, expect[string(k)])
						}
					case errors.Is(err, client.ErrIntegrity):
						detected, clean = true, false
					default:
						t.Fatalf("key %s: unexpected %v", k, err)
					}
				}
				if !detected {
					// Legal only as full recovery: the op overwrote the very
					// bytes the fault corrupted, and the probe above proved
					// every key serves its exact value. A Get writes nothing,
					// so for it this would mean the fault vanished — fail.
					if op == "Get" || !clean {
						t.Fatal("injected fault neither detected nor recovered")
					}
					return
				}
				// Isolated: the hit partition quarantined itself, the rest of
				// the keyspace keeps serving through the same connection.
				qp := p.QuarantinedParts()
				if len(qp) != 1 {
					t.Fatalf("QuarantinedParts = %v, want exactly one", qp)
				}
				served, refused := 0, 0
				for _, k := range keys {
					switch _, err := c.Get(k); {
					case err == nil:
						served++
					case errors.Is(err, client.ErrIntegrity):
						refused++
					default:
						t.Fatalf("key %s: unexpected %v", k, err)
					}
				}
				if served == 0 || refused == 0 {
					t.Fatalf("served=%d refused=%d: quarantine did not isolate", served, refused)
				}
			})
		}
	}
}

func TestMatrixWALTruncation(t *testing.T) {
	// Summary row for the WAL kind (the per-byte-offset sweep lives in
	// internal/persist): a torn append is never acknowledged, recovery
	// replays exactly the acknowledged prefix.
	dir := t.TempDir()
	e := matrixEnclave(dir)
	s := core.New(e, nil, core.Defaults(16))
	m := sim.NewMeter(e.Model())
	w, err := persist.NewWAL(s, dir, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 8; i++ {
		if err := w.Set(m, []byte(fmt.Sprintf("wk%d", i)), []byte("v")); err != nil {
			t.Fatal(err)
		}
	}
	p := fault.New(3)
	w.SetFaultPlane(p)
	p.Arm(fault.PointWALTear, fault.Spec{})
	if err := w.Set(m, []byte("lost"), []byte("x")); !errors.Is(err, fault.ErrInjected) {
		t.Fatalf("torn append: %v", err)
	}
	w.Close()

	e2 := matrixEnclave(dir)
	s2 := core.New(e2, nil, core.Defaults(16))
	m2 := sim.NewMeter(e2.Model())
	w2, rep, err := persist.RecoverWAL(s2, dir, 100, m2)
	if err != nil {
		t.Fatal(err)
	}
	defer w2.Close()
	if rep.Applied != 8 || rep.DiscardedBytes == 0 {
		t.Fatalf("report %+v, want 8 applied with a discarded tail", rep)
	}
	if _, err := s2.Get(m2, []byte("lost")); !errors.Is(err, core.ErrNotFound) {
		t.Fatalf("unacknowledged record visible after recovery: %v", err)
	}
}

func TestMatrixSnapshotRollback(t *testing.T) {
	// Rollback kind: the host restores an older (validly sealed!)
	// snapshot. The monotonic counter must refuse it.
	dir := t.TempDir()
	e := matrixEnclave(dir)
	s := core.New(e, nil, core.Defaults(16))
	m := sim.NewMeter(e.Model())
	ps := persist.New(s, dir, persist.Naive)
	if err := ps.Set(m, []byte("epoch"), []byte("1")); err != nil {
		t.Fatal(err)
	}
	if err := ps.Snapshot(m); err != nil {
		t.Fatal(err)
	}
	// Stash the v1 snapshot files, then move the world to v2.
	stash := map[string][]byte{}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, ent := range ents {
		if ent.Name() == "nvram.bin" {
			continue // the platform counter is NOT under host control
		}
		b, err := os.ReadFile(filepath.Join(dir, ent.Name()))
		if err != nil {
			t.Fatal(err)
		}
		stash[ent.Name()] = b
	}
	if err := ps.Set(m, []byte("epoch"), []byte("2")); err != nil {
		t.Fatal(err)
	}
	if err := ps.Snapshot(m); err != nil {
		t.Fatal(err)
	}
	for name, b := range stash { // the "host" rolls the files back
		if err := os.WriteFile(filepath.Join(dir, name), b, 0o600); err != nil {
			t.Fatal(err)
		}
	}
	e2 := matrixEnclave(dir)
	if _, err := persist.Restore(e2, dir, persist.CounterIDFor(dir), sim.NewMeter(e2.Model())); !errors.Is(err, persist.ErrRollback) {
		t.Fatalf("rolled-back snapshot restore: %v, want ErrRollback", err)
	}
}

func TestMatrixConnectionFaults(t *testing.T) {
	e := matrixEnclave("")
	p := core.NewPartitioned(e, 2, core.Defaults(32))
	p.Start()
	t.Cleanup(p.Stop)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.Serve(ln, server.Config{
		Engine:       server.CoreEngine{P: p},
		Enclave:      e,
		Logf:         t.Logf,
		ReadTimeout:  time.Second,
		DrainTimeout: 100 * time.Millisecond,
	})
	t.Cleanup(srv.Close)

	for _, kind := range []string{fault.PointConnRead, fault.PointConnWrite} {
		t.Run(kind, func(t *testing.T) {
			raw, err := net.Dial("tcp", ln.Addr().String())
			if err != nil {
				t.Fatal(err)
			}
			plane := fault.New(9)
			c, err := client.NewClient(fault.WrapConn(raw, plane, "", ""), client.Options{})
			if err != nil {
				t.Fatal(err)
			}
			t.Cleanup(func() { c.Close() })
			if err := c.Set([]byte("ck"), []byte("v")); err != nil {
				t.Fatal(err)
			}
			plane.Arm(kind, fault.Spec{})
			// Failed (read) or partial (write) I/O: the op must fail typed
			// and promptly — never hang the caller or the server.
			if _, err := c.Get([]byte("ck")); !errors.Is(err, client.ErrConnection) {
				t.Fatalf("connection fault surfaced as %v, want ErrConnection", err)
			}
			if plane.Fired(kind) != 1 {
				t.Fatalf("%s fired %d times, want 1", kind, plane.Fired(kind))
			}
		})
	}
}
