// The self-healing matrix (DESIGN.md §12): for every untrusted-memory
// fault kind, a partition of a live pipelined server is corrupted, the
// background scrubber (not a client op) detects it, the partition
// auto-quarantines into the rebuilding state, the healer restores it
// from snapshot + journal and swaps it back in — all while sibling
// partitions keep serving and clients observe nothing worse than the
// retryable StatusRebuilding. The full dataset must read back intact.
package fault_test

import (
	"errors"
	"fmt"
	"net"
	"strings"
	"testing"
	"time"

	"shieldstore/internal/client"
	"shieldstore/internal/core"
	"shieldstore/internal/fault"
	"shieldstore/internal/persist"
	"shieldstore/internal/server"
	"shieldstore/internal/sim"
)

// healRig is a pipelined secure server over a scrubbed, self-healing
// 4-partition pool.
type healRig struct {
	p      *core.Partitioned
	healer *persist.Healer
	c      *client.Client // retrying client: rides out rebuild windows
	cRaw   *client.Client // no-retry client: observes raw status codes
	route  *sim.Meter
}

func newHealRig(t *testing.T, opts core.Options, beforeSwap func(part int)) *healRig {
	t.Helper()
	e := matrixEnclave("")
	opts.Quarantine = true
	p := core.NewPartitioned(e, 4, opts)
	p.EnableScrub(2)
	healer, err := persist.NewHealer(p, t.TempDir(), persist.HealerOptions{
		BeforeSwap: beforeSwap,
		Logf:       t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	p.Start()
	t.Cleanup(p.Stop)
	t.Cleanup(func() { healer.Close() }) // LIFO: close before the pool stops
	healer.Start()

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := server.Serve(ln, server.Config{
		Engine:       server.CoreEngine{P: p},
		Enclave:      e,
		Secure:       true,
		Health:       func() []string { return core.FormatHealth(p.Health()) },
		Logf:         t.Logf,
		IdleTimeout:  10 * time.Second,
		DrainTimeout: 100 * time.Millisecond,
	})
	t.Cleanup(srv.Close)

	secure := client.Options{Secure: true, Verifier: e, Measurement: e.Measurement()}
	withRetry := secure
	withRetry.Retry = client.RetryPolicy{MaxAttempts: 500, Backoff: time.Millisecond, MaxBackoff: 4 * time.Millisecond}
	c, err := client.Dial(ln.Addr().String(), withRetry)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	cRaw, err := client.Dial(ln.Addr().String(), secure)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { cRaw.Close() })
	return &healRig{p: p, healer: healer, c: c, cRaw: cRaw, route: sim.NewMeter(e.Model())}
}

// armPart attaches a fault plane to one partition only, firing kind on
// every bucket-set collection until the scrubber catches it.
func (r *healRig) armPart(part int, kind string, seed uint64) *fault.Plane {
	plane := fault.New(seed)
	plane.Arm(kind, fault.Spec{Count: -1})
	r.p.RunCtl(part, func(st *core.WorkerState) { st.Store.SetFaultPlane(plane) })
	return plane
}

func waitUntil(t *testing.T, d time.Duration, what string, f func() bool) {
	t.Helper()
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		if f() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

func healthLine(t *testing.T, c *client.Client, part int) string {
	t.Helper()
	lines, err := c.Health()
	if err != nil {
		t.Fatalf("health probe: %v", err)
	}
	prefix := fmt.Sprintf("part%d=", part)
	for _, l := range lines {
		if strings.HasPrefix(l, prefix) {
			return l
		}
	}
	t.Fatalf("no health line for partition %d in %v", part, lines)
	return ""
}

func TestHealMatrixScrubDetectRebuildReadmit(t *testing.T) {
	const target = 2
	for _, kind := range memoryKinds {
		t.Run(kind.point, func(t *testing.T) {
			entered := make(chan int, 1)
			release := make(chan struct{})
			rig := newHealRig(t, kind.opts(), func(part int) {
				select {
				case entered <- part:
					<-release
				default:
				}
			})

			// Load the dataset, seal per-partition snapshots, then write
			// more: the rebuild must need snapshot AND journal replay.
			expect := map[string]string{}
			for i := 0; i < 64; i++ {
				k, v := fmt.Sprintf("hk%03d", i), fmt.Sprintf("hv%03d", i)
				if err := rig.c.Set([]byte(k), []byte(v)); err != nil {
					t.Fatal(err)
				}
				expect[k] = v
			}
			for i := 0; i < rig.p.Parts(); i++ {
				if err := rig.healer.Checkpoint(i); err != nil {
					t.Fatalf("checkpoint part %d: %v", i, err)
				}
			}
			for i := 0; i < 32; i++ {
				k, v := fmt.Sprintf("jk%03d", i), fmt.Sprintf("jv%03d", i)
				if err := rig.c.Set([]byte(k), []byte(v)); err != nil {
					t.Fatal(err)
				}
				expect[k] = v
			}
			var targetKey, siblingKey string
			for k := range expect {
				if rig.p.Route(rig.route, []byte(k)) == target {
					targetKey = k
				} else {
					siblingKey = k
				}
			}
			if targetKey == "" || siblingKey == "" {
				t.Fatal("dataset left a partition empty")
			}
			if l := healthLine(t, rig.cRaw, target); !strings.Contains(l, "=healthy") {
				t.Fatalf("pre-fault health: %q", l)
			}

			// The host corrupts partition 2. No client op touches it from
			// here on — only the background scrubber can notice.
			rig.armPart(target, kind.point, 21)

			// The healer parks in BeforeSwap with the rebuilt store ready:
			// the partition is authoritatively mid-rebuild. Probe the
			// degraded mode.
			var part int
			select {
			case part = <-entered:
			case <-time.After(10 * time.Second):
				t.Fatal("scrubber never triggered a rebuild")
			}
			if part != target {
				t.Fatalf("rebuild of partition %d, armed %d", part, target)
			}
			if l := healthLine(t, rig.cRaw, target); !strings.Contains(l, "=rebuilding") {
				t.Fatalf("mid-rebuild health: %q", l)
			}
			if _, err := rig.cRaw.Get([]byte(targetKey)); !errors.Is(err, client.ErrRebuilding) {
				t.Fatalf("raw Get on rebuilding partition: %v, want ErrRebuilding", err)
			}
			if v, err := rig.cRaw.Get([]byte(siblingKey)); err != nil || string(v) != expect[siblingKey] {
				t.Fatalf("sibling Get during rebuild: %q, %v", v, err)
			}
			close(release)

			waitUntil(t, 10*time.Second, "partition re-admission", func() bool {
				return rig.healer.Rebuilds() == 1 && len(rig.p.QuarantinedParts()) == 0
			})
			if l := healthLine(t, rig.cRaw, target); !strings.Contains(l, "=healthy") {
				t.Fatalf("post-heal health: %q", l)
			}

			// Full readback through the retrying client: every key, exact
			// value — snapshot state and journaled writes both survived.
			for k, v := range expect {
				got, err := rig.c.Get([]byte(k))
				if err != nil {
					t.Fatalf("readback %s: %v", k, err)
				}
				if string(got) != v {
					t.Fatalf("readback %s = %q, want %q", k, got, v)
				}
			}
			// And the healed partition accepts writes again.
			if err := rig.cRaw.Set([]byte(targetKey), []byte("post-heal")); err != nil {
				t.Fatalf("write after heal: %v", err)
			}

			var scrubbed uint64
			rig.p.RunCtl(target, func(st *core.WorkerState) { scrubbed = st.Meter.Events(sim.CtrScrub) })
			if scrubbed == 0 {
				t.Fatal("detection did not come from the scrubber (CtrScrub = 0)")
			}
			if got := rig.healer.Meter().Events(sim.CtrRebuild); got != 1 {
				t.Fatalf("CtrRebuild = %d, want 1", got)
			}
		})
	}
}

// TestScrubSoak is the randomized corrupt/heal loop the CI smoke job
// runs: a fixed-seed sequence of fault kinds strikes rotating
// partitions; every round must end with the pool fully healed and the
// whole (growing) dataset intact.
func TestScrubSoak(t *testing.T) {
	rig := newHealRig(t, core.Defaults(8), nil)
	kinds := []string{fault.PointEntryFlip, fault.PointChainSplice, fault.PointMACSidecar}

	expect := map[string]string{}
	for i := 0; i < 48; i++ {
		k, v := fmt.Sprintf("sk%03d", i), fmt.Sprintf("sv%03d", i)
		if err := rig.c.Set([]byte(k), []byte(v)); err != nil {
			t.Fatal(err)
		}
		expect[k] = v
	}

	const rounds = 6
	for round := 0; round < rounds; round++ {
		// Growing journal tail; checkpoint every other round so rebuilds
		// alternate between journal-heavy and snapshot-heavy.
		for i := 0; i < 8; i++ {
			k, v := fmt.Sprintf("r%dk%d", round, i), fmt.Sprintf("r%dv%d", round, i)
			if err := rig.c.Set([]byte(k), []byte(v)); err != nil {
				t.Fatal(err)
			}
			expect[k] = v
		}
		if round%2 == 1 {
			for i := 0; i < rig.p.Parts(); i++ {
				if err := rig.healer.Checkpoint(i); err != nil {
					t.Fatalf("round %d checkpoint part %d: %v", round, i, err)
				}
			}
		}

		part := round % rig.p.Parts()
		rig.armPart(part, kinds[round%len(kinds)], uint64(100+round))
		want := uint64(round + 1)
		waitUntil(t, 15*time.Second, fmt.Sprintf("round %d heal", round), func() bool {
			return rig.healer.Rebuilds() >= want && len(rig.p.QuarantinedParts()) == 0
		})

		for k, v := range expect {
			got, err := rig.c.Get([]byte(k))
			if err != nil {
				t.Fatalf("round %d readback %s: %v", round, k, err)
			}
			if string(got) != v {
				t.Fatalf("round %d readback %s = %q, want %q", round, k, got, v)
			}
		}
	}
	if got := rig.healer.Rebuilds(); got != rounds {
		t.Fatalf("rebuilds = %d, want %d", got, rounds)
	}
}
