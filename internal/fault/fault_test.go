package fault

import (
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

func TestNilPlaneInert(t *testing.T) {
	var p *Plane
	p.Arm(PointEntryFlip, Spec{})
	p.Disarm(PointEntryFlip)
	if p.Armed(PointEntryFlip) || p.Hit(PointEntryFlip) {
		t.Fatal("nil plane fired")
	}
	if p.Fired(PointEntryFlip) != 0 || p.TotalFired() != 0 {
		t.Fatal("nil plane counted")
	}
	if p.Pick(10) != 0 {
		t.Fatal("nil plane picked nonzero")
	}
	if p.Report() != nil {
		t.Fatal("nil plane reported")
	}
}

func TestSkipCountSemantics(t *testing.T) {
	p := New(1)
	p.Arm(PointWALTear, Spec{Skip: 2, Count: 2})
	want := []bool{false, false, true, true, false, false}
	for i, w := range want {
		if got := p.Hit(PointWALTear); got != w {
			t.Fatalf("hit %d: got %v want %v", i, got, w)
		}
	}
	if p.Fired(PointWALTear) != 2 {
		t.Fatalf("fired = %d, want 2", p.Fired(PointWALTear))
	}
	if p.Armed(PointWALTear) {
		t.Fatal("point still armed after count exhausted")
	}

	// Count 0 means one fire; negative means unlimited.
	p.Arm(PointEntryFlip, Spec{})
	if !p.Hit(PointEntryFlip) || p.Hit(PointEntryFlip) {
		t.Fatal("Count=0 should fire exactly once")
	}
	p.Arm(PointConnRead, Spec{Count: -1})
	for i := 0; i < 10; i++ {
		if !p.Hit(PointConnRead) {
			t.Fatalf("unlimited arm stopped firing at hit %d", i)
		}
	}
	if p.TotalFired() != 13 {
		t.Fatalf("TotalFired = %d, want 13", p.TotalFired())
	}
}

func TestPickDeterministic(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 100; i++ {
		if x, y := a.Pick(1000), b.Pick(1000); x != y {
			t.Fatalf("same seed diverged at draw %d: %d vs %d", i, x, y)
		}
	}
	c := New(43)
	same := true
	for i := 0; i < 100; i++ {
		if a.Pick(1000) != c.Pick(1000) {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
	if New(7).Pick(0) != 0 || New(7).Pick(-3) != 0 {
		t.Fatal("Pick must return 0 for n <= 0")
	}
}

func TestReport(t *testing.T) {
	p := New(9)
	p.Arm(PointWALTear, Spec{Count: 2})
	p.Arm(PointEntryFlip, Spec{})
	p.Hit(PointWALTear)
	p.Hit(PointWALTear)
	p.Hit(PointEntryFlip)
	got := p.Report()
	want := []string{"core.entry.flip=1", "persist.wal.tear=2"}
	if len(got) != len(want) {
		t.Fatalf("report = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("report[%d] = %q, want %q", i, got[i], want[i])
		}
	}
}

// pipeConns returns a connected TCP pair so deadline/close semantics
// match the real server paths.
func pipeConns(t *testing.T) (net.Conn, net.Conn) {
	t.Helper()
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	type res struct {
		c   net.Conn
		err error
	}
	ch := make(chan res, 1)
	go func() {
		c, err := ln.Accept()
		ch <- res{c, err}
	}()
	cli, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	r := <-ch
	if r.err != nil {
		t.Fatal(r.err)
	}
	t.Cleanup(func() { cli.Close(); r.c.Close() })
	return cli, r.c
}

func TestConnReadFault(t *testing.T) {
	cli, srv := pipeConns(t)
	p := New(3)
	p.Arm(PointConnRead, Spec{Skip: 1})
	fc := WrapConn(cli, p, "", "")

	if _, err := srv.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := io.ReadFull(fc, buf); err != nil {
		t.Fatalf("first read should pass: %v", err)
	}
	if _, err := fc.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("second read: got %v, want ErrInjected", err)
	}
	// The underlying connection was closed by the fault.
	if _, err := cli.Read(buf); err == nil {
		t.Fatal("underlying conn still open after injected read failure")
	}
}

func TestConnWritePartial(t *testing.T) {
	cli, srv := pipeConns(t)
	p := New(5)
	p.Arm(PointConnWrite, Spec{})
	fc := WrapConn(cli, p, "", "")

	msg := []byte("0123456789abcdef")
	n, err := fc.Write(msg)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("write: got %v, want ErrInjected", err)
	}
	if n >= len(msg) {
		t.Fatalf("torn write delivered %d of %d bytes", n, len(msg))
	}
	// Peer observes the prefix then EOF.
	srv.SetReadDeadline(time.Now().Add(time.Second))
	got, _ := io.ReadAll(srv)
	if len(got) != n {
		t.Fatalf("peer saw %d bytes, fault reported %d", len(got), n)
	}
	for i := range got {
		if got[i] != msg[i] {
			t.Fatalf("torn prefix corrupted at byte %d", i)
		}
	}
}

func TestFlakyListener(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	p := New(11)
	p.Arm(PointAccept, Spec{Count: 2})
	fl := WrapListener(ln, p)
	defer fl.Close()

	accepted := make(chan net.Conn, 4)
	go func() {
		for {
			c, err := fl.Accept()
			if err != nil {
				close(accepted)
				return
			}
			accepted <- c
		}
	}()

	// First two dials connect at the TCP level but get dropped; the
	// third is handed to the accept loop.
	for i := 0; i < 3; i++ {
		c, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Fatalf("dial %d: %v", i, err)
		}
		defer c.Close()
	}
	select {
	case c := <-accepted:
		c.Close()
	case <-time.After(2 * time.Second):
		t.Fatal("surviving connection never accepted")
	}
	if p.Fired(PointAccept) != 2 {
		t.Fatalf("accept faults fired %d times, want 2", p.Fired(PointAccept))
	}
}
