// Fault-injecting net.Conn wrapper: the network slice of the fault
// plane. Wrapping either end of a connection lets tests fail, truncate
// or stall I/O at deterministic operation counts — the torn-frame and
// dropped-connection cases the server's deadline/drain logic and the
// client's reconnect path must degrade through.
package fault

import (
	"net"
	"time"
)

// Conn wraps a net.Conn with armed read/write faults. The zero plane
// (nil) passes everything through.
type Conn struct {
	net.Conn
	plane *Plane
	// readPoint/writePoint are the plane points consulted on each
	// Read/Write (defaults PointConnRead / PointConnWrite).
	readPoint  string
	writePoint string
}

// WrapConn wraps c so reads and writes consult plane at the given point
// names. Empty names use the package defaults.
func WrapConn(c net.Conn, plane *Plane, readPoint, writePoint string) *Conn {
	if readPoint == "" {
		readPoint = PointConnRead
	}
	if writePoint == "" {
		writePoint = PointConnWrite
	}
	return &Conn{Conn: c, plane: plane, readPoint: readPoint, writePoint: writePoint}
}

// Read fails with ErrInjected (closing the underlying connection, as a
// reset peer would) when the read point fires.
func (c *Conn) Read(p []byte) (int, error) {
	if c.plane.Hit(c.readPoint) {
		c.Conn.Close()
		return 0, ErrInjected
	}
	return c.Conn.Read(p)
}

// Write delivers a deterministic prefix of p and then fails when the
// write point fires — the peer sees a torn frame followed by a close.
func (c *Conn) Write(p []byte) (int, error) {
	if c.plane.Hit(c.writePoint) {
		n := 0
		if len(p) > 1 {
			n, _ = c.Conn.Write(p[:c.plane.Pick(len(p))])
		}
		c.Conn.Close()
		return n, ErrInjected
	}
	return c.Conn.Write(p)
}

// FlakyListener wraps a listener so the first Flaps accepted
// connections are closed immediately — a deterministic "server came up
// but drops you" window for exercising client reconnect/backoff.
type FlakyListener struct {
	net.Listener
	plane *Plane
	point string
}

// PointAccept is the FlakyListener injection point.
const PointAccept = "net.listener.accept"

// WrapListener wraps ln; arm PointAccept on plane to drop connections.
func WrapListener(ln net.Listener, plane *Plane) *FlakyListener {
	return &FlakyListener{Listener: ln, plane: plane, point: PointAccept}
}

// Accept drops the connection (closes it right after the TCP accept)
// whenever the accept point fires, then keeps listening.
func (l *FlakyListener) Accept() (net.Conn, error) {
	for {
		c, err := l.Listener.Accept()
		if err != nil {
			return nil, err
		}
		if l.plane.Hit(l.point) {
			// Linger a moment so the client's connect completes before
			// the reset; keeps the failure on its first I/O, not Dial.
			go func(c net.Conn) {
				time.Sleep(time.Millisecond)
				c.Close()
			}(c)
			continue
		}
		return c, nil
	}
}
