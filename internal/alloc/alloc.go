// Package alloc implements the untrusted-memory allocators available to
// enclave code.
//
// The SGX SDK offers only two heaps: the trusted heap (enclave memory) and
// the conventional host heap, which costs a full OCALL per call. Because
// ShieldStore allocates one untrusted data entry per inserted key, the
// OCALL-per-allocation path dominates insert cost. Section 5.1 introduces
// an "extra heap allocator": a tcmalloc-style allocator that *runs inside
// the enclave* (its metadata stays in protected memory, per the §7
// discussion) but hands out *unprotected* memory, refilling its pool with
// chunked sbrk OCALLs. Figure 6 sweeps the chunk size from 1 MB to 32 MB
// and shows OCALL counts collapsing; the paper settles on 16 MB.
//
// Two implementations of the Allocator interface are provided:
//
//   - Outside: the naive path, one OCALL per Alloc/Free.
//   - ExtraHeap: the §5.1 optimized allocator.
package alloc

import (
	"shieldstore/internal/mem"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
)

// Allocator hands out untrusted memory to enclave code.
type Allocator interface {
	// Alloc returns the address of n bytes of untrusted memory.
	Alloc(m *sim.Meter, n int) mem.Addr
	// Free returns n bytes at addr to the allocator.
	Free(m *sim.Meter, a mem.Addr, n int)
}

// Outside is the naive allocator: every call crosses the enclave boundary
// to run on the host heap.
type Outside struct {
	enclave *sgx.Enclave
}

// NewOutside returns the naive OCALL-per-call allocator.
func NewOutside(e *sgx.Enclave) *Outside { return &Outside{enclave: e} }

// Alloc performs one OCALL + malloc.
func (o *Outside) Alloc(m *sim.Meter, n int) mem.Addr {
	return o.enclave.SbrkUntrusted(m, n)
}

// Free performs one OCALL + free. The simulated space never reuses the
// memory (the host heap does, but that is invisible to the enclave).
func (o *Outside) Free(m *sim.Meter, a mem.Addr, n int) {
	o.enclave.OCall(m)
	m.Charge(o.enclave.Model().Syscall)
}

// DefaultChunk is the sbrk granularity the paper selects (16 MB).
const DefaultChunk = 16 << 20

// numClasses is the number of allocation size classes below.
const numClasses = 20

// sizeClasses rounds request sizes to a small set of classes so freed
// blocks are reusable, tcmalloc-style. Requests above the largest class go
// straight to sbrk.
var sizeClasses = [numClasses]int{
	16, 32, 48, 64, 96, 128, 192, 256, 384, 512,
	768, 1024, 1536, 2048, 3072, 4096, 6144, 8192, 12288, 16384,
}

// classIndex returns the class for n, or -1 when n exceeds all classes.
func classIndex(n int) int {
	for i, c := range sizeClasses {
		if n <= c {
			return i
		}
	}
	return -1
}

// ExtraHeap is the §5.1 in-enclave allocator for untrusted memory. It is
// not safe for concurrent use: ShieldStore's hash-partitioned threading
// gives each partition its own heap, which is also how the paper avoids
// allocator contention.
type ExtraHeap struct {
	enclave *sgx.Enclave
	chunk   int

	cur       mem.Addr // bump pointer into the current chunk
	remaining int

	free [numClasses][]mem.Addr

	// Stats observable by the Figure 6 harness.
	sbrkCalls   uint64
	bytesServed uint64
	bytesWasted uint64 // internal fragmentation: class size - request
}

// NewExtraHeap creates an extra heap with the given sbrk chunk size
// (DefaultChunk when chunk <= 0).
func NewExtraHeap(e *sgx.Enclave, chunk int) *ExtraHeap {
	if chunk <= 0 {
		chunk = DefaultChunk
	}
	return &ExtraHeap{enclave: e, chunk: chunk}
}

// Alloc returns n bytes of untrusted memory, preferring the free pool,
// then the current chunk, and only calling out of the enclave when the
// pool is exhausted.
func (h *ExtraHeap) Alloc(m *sim.Meter, n int) mem.Addr {
	model := h.enclave.Model()
	m.Charge(model.CacheAccess * 2) // in-enclave metadata bookkeeping

	ci := classIndex(n)
	if ci < 0 {
		// Oversized: dedicated sbrk.
		h.sbrkCalls++
		h.bytesServed += uint64(n)
		return h.enclave.SbrkUntrusted(m, n)
	}
	size := sizeClasses[ci]
	if fl := h.free[ci]; len(fl) > 0 {
		a := fl[len(fl)-1]
		h.free[ci] = fl[:len(fl)-1]
		h.bytesServed += uint64(n)
		h.bytesWasted += uint64(size - n)
		return a
	}
	if h.remaining < size {
		// Refill: one OCALL for a whole chunk; leftover tail of the old
		// chunk is abandoned (bounded fragmentation).
		h.bytesWasted += uint64(h.remaining)
		h.cur = h.enclave.SbrkUntrusted(m, h.chunk)
		h.remaining = h.chunk
		h.sbrkCalls++
	}
	a := h.cur
	h.cur += mem.Addr(size)
	h.remaining -= size
	h.bytesServed += uint64(n)
	h.bytesWasted += uint64(size - n)
	return a
}

// Free returns a block to its size-class pool without leaving the enclave.
func (h *ExtraHeap) Free(m *sim.Meter, a mem.Addr, n int) {
	model := h.enclave.Model()
	m.Charge(model.CacheAccess * 2)
	ci := classIndex(n)
	if ci < 0 {
		return // oversized blocks are leaked back to the host region
	}
	h.free[ci] = append(h.free[ci], a)
}

// SbrkCalls reports how many boundary-crossing refills occurred.
func (h *ExtraHeap) SbrkCalls() uint64 { return h.sbrkCalls }

// BytesServed reports the total bytes handed to callers.
func (h *ExtraHeap) BytesServed() uint64 { return h.bytesServed }

// BytesWasted reports internal fragmentation plus abandoned chunk tails.
func (h *ExtraHeap) BytesWasted() uint64 { return h.bytesWasted }

// Chunk reports the configured sbrk granularity.
func (h *ExtraHeap) Chunk() int { return h.chunk }
