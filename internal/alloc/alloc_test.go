package alloc

import (
	"testing"

	"shieldstore/internal/mem"
	"shieldstore/internal/sgx"
	"shieldstore/internal/sim"
)

func newEnclave() *sgx.Enclave {
	return sgx.New(sgx.Config{Space: mem.NewSpace(mem.Config{EPCBytes: 1 << 20})})
}

func TestOutsideAllocCostsOCallEveryTime(t *testing.T) {
	e := newEnclave()
	o := NewOutside(e)
	m := sim.NewMeter(e.Model())
	const n = 50
	addrs := map[mem.Addr]bool{}
	for i := 0; i < n; i++ {
		a := o.Alloc(m, 100)
		if mem.RegionOf(a) != mem.Untrusted {
			t.Fatal("outside alloc must be untrusted")
		}
		if addrs[a] {
			t.Fatal("duplicate address")
		}
		addrs[a] = true
	}
	if got := m.Events(sim.CtrOCall); got != n {
		t.Fatalf("OCALLs = %d, want %d", got, n)
	}
	o.Free(m, 0, 100)
	if got := m.Events(sim.CtrOCall); got != n+1 {
		t.Fatal("Free must also OCALL")
	}
}

func TestExtraHeapAmortizesOCalls(t *testing.T) {
	e := newEnclave()
	h := NewExtraHeap(e, 1<<20)
	m := sim.NewMeter(e.Model())
	for i := 0; i < 1000; i++ {
		a := h.Alloc(m, 128)
		if mem.RegionOf(a) != mem.Untrusted {
			t.Fatal("extra heap must serve untrusted memory")
		}
	}
	// 1000 * 128 B = 128 KB from a 1 MB chunk: exactly one sbrk.
	if got := m.Events(sim.CtrOCall); got != 1 {
		t.Fatalf("OCALLs = %d, want 1", got)
	}
	if h.SbrkCalls() != 1 {
		t.Fatalf("SbrkCalls = %d, want 1", h.SbrkCalls())
	}
}

func TestExtraHeapChunkSizeTradeoff(t *testing.T) {
	// Figure 6 in miniature: larger chunks, fewer OCALLs.
	e := newEnclave()
	ocallsFor := func(chunk int) uint64 {
		h := NewExtraHeap(e, chunk)
		m := sim.NewMeter(e.Model())
		for i := 0; i < 5000; i++ {
			h.Alloc(m, 256)
		}
		return m.Events(sim.CtrOCall)
	}
	small := ocallsFor(64 << 10)
	large := ocallsFor(1 << 20)
	if small <= large {
		t.Fatalf("small-chunk OCALLs (%d) must exceed large-chunk OCALLs (%d)", small, large)
	}
	if ratio := float64(small) / float64(large); ratio < 8 {
		t.Fatalf("16x chunk growth should cut OCALLs ~16x, got %.1fx", ratio)
	}
}

func TestExtraHeapFreeListReuse(t *testing.T) {
	e := newEnclave()
	h := NewExtraHeap(e, 1<<20)
	m := sim.NewMeter(e.Model())

	a := h.Alloc(m, 100)
	h.Free(m, a, 100)
	b := h.Alloc(m, 100) // same size class: must reuse
	if a != b {
		t.Fatalf("free list not reused: %#x vs %#x", uint64(a), uint64(b))
	}
	// Different class must not reuse.
	cAddr := h.Alloc(m, 5000)
	h.Free(m, cAddr, 5000)
	d := h.Alloc(m, 100)
	if d == cAddr {
		t.Fatal("cross-class reuse")
	}
	// Frees never cross the boundary.
	if m.Events(sim.CtrOCall) != h.SbrkCalls() {
		t.Fatalf("extra OCALLs beyond sbrk: %d vs %d", m.Events(sim.CtrOCall), h.SbrkCalls())
	}
}

func TestExtraHeapOversized(t *testing.T) {
	e := newEnclave()
	h := NewExtraHeap(e, 1<<20)
	m := sim.NewMeter(e.Model())
	big := sizeClasses[len(sizeClasses)-1] + 1
	a := h.Alloc(m, big)
	if a == 0 {
		t.Fatal("oversized alloc failed")
	}
	if m.Events(sim.CtrOCall) != 1 {
		t.Fatal("oversized alloc must go straight to sbrk")
	}
	h.Free(m, a, big) // must not panic
}

func TestExtraHeapAllocationsDistinct(t *testing.T) {
	e := newEnclave()
	h := NewExtraHeap(e, 1<<20)
	m := sim.NewMeter(e.Model())
	seen := map[mem.Addr]bool{}
	for i := 0; i < 2000; i++ {
		a := h.Alloc(m, 64)
		if seen[a] {
			t.Fatalf("address %#x handed out twice", uint64(a))
		}
		seen[a] = true
	}
}

func TestExtraHeapDefaultChunk(t *testing.T) {
	e := newEnclave()
	h := NewExtraHeap(e, 0)
	if h.Chunk() != DefaultChunk {
		t.Fatalf("default chunk = %d, want %d", h.Chunk(), DefaultChunk)
	}
}

func TestExtraHeapStats(t *testing.T) {
	e := newEnclave()
	h := NewExtraHeap(e, 1<<20)
	m := sim.NewMeter(e.Model())
	h.Alloc(m, 100) // class 128: wastes 28
	if h.BytesServed() != 100 {
		t.Fatalf("BytesServed = %d", h.BytesServed())
	}
	if h.BytesWasted() != 28 {
		t.Fatalf("BytesWasted = %d, want 28", h.BytesWasted())
	}
}

func TestClassIndexMonotone(t *testing.T) {
	prev := -1
	for n := 1; n <= sizeClasses[len(sizeClasses)-1]; n++ {
		ci := classIndex(n)
		if ci < 0 {
			t.Fatalf("classIndex(%d) < 0 within range", n)
		}
		if sizeClasses[ci] < n {
			t.Fatalf("class %d too small for %d", sizeClasses[ci], n)
		}
		if ci < prev {
			t.Fatalf("classIndex not monotone at %d", n)
		}
		prev = ci
	}
	if classIndex(sizeClasses[len(sizeClasses)-1]+1) != -1 {
		t.Fatal("oversized must map to -1")
	}
}

func TestWriteThroughAllocatedMemory(t *testing.T) {
	// Allocations are real memory: data written through them round-trips.
	e := newEnclave()
	h := NewExtraHeap(e, 1<<20)
	m := sim.NewMeter(e.Model())
	a := h.Alloc(m, 64)
	b := h.Alloc(m, 64)
	e.Space().Write(m, a, []byte("AAAA"))
	e.Space().Write(m, b, []byte("BBBB"))
	buf := make([]byte, 4)
	e.Space().Read(m, a, buf)
	if string(buf) != "AAAA" {
		t.Fatal("allocation a corrupted by b")
	}
}
