package mem

import (
	"bytes"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"shieldstore/internal/sim"
)

func newSpace(epcBytes int64) *Space {
	return NewSpace(Config{EPCBytes: epcBytes})
}

func TestRegionOf(t *testing.T) {
	s := newSpace(1 << 20)
	e := s.Alloc(Enclave, 64)
	u := s.Alloc(Untrusted, 64)
	if RegionOf(e) != Enclave || !InEnclave(e) {
		t.Errorf("enclave alloc misclassified: %#x", uint64(e))
	}
	if RegionOf(u) != Untrusted || InEnclave(u) {
		t.Errorf("untrusted alloc misclassified: %#x", uint64(u))
	}
	if Enclave.String() != "enclave" || Untrusted.String() != "untrusted" {
		t.Error("region names wrong")
	}
	if Region(9).String() == "" {
		t.Error("unknown region must render")
	}
}

func TestCheckUntrusted(t *testing.T) {
	s := newSpace(1 << 20)
	e := s.Alloc(Enclave, 64)
	u := s.Alloc(Untrusted, 64)
	if err := CheckUntrusted(u); err != nil {
		t.Errorf("untrusted addr rejected: %v", err)
	}
	if err := CheckUntrusted(0); err != nil {
		t.Errorf("nil addr rejected: %v", err)
	}
	if err := CheckUntrusted(e); err == nil {
		t.Error("enclave-aliasing pointer accepted — §7 check broken")
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	s := newSpace(1 << 20)
	m := sim.NewMeter(s.Model())
	for _, r := range []Region{Enclave, Untrusted} {
		a := s.Alloc(r, 1024)
		want := make([]byte, 1024)
		for i := range want {
			want[i] = byte(i * 7)
		}
		s.Write(m, a, want)
		got := make([]byte, 1024)
		s.Read(m, a, got)
		if !bytes.Equal(got, want) {
			t.Fatalf("%v round trip failed", r)
		}
	}
}

func TestReadWriteU64(t *testing.T) {
	s := newSpace(1 << 20)
	m := sim.NewMeter(s.Model())
	a := s.Alloc(Untrusted, 8)
	s.WriteU64(m, a, 0xdeadbeefcafef00d)
	if got := s.ReadU64(m, a); got != 0xdeadbeefcafef00d {
		t.Fatalf("u64 round trip = %#x", got)
	}
}

func TestAllocationsDisjoint(t *testing.T) {
	s := newSpace(1 << 20)
	m := sim.NewMeter(s.Model())
	a := s.Alloc(Untrusted, 16)
	b := s.Alloc(Untrusted, 16)
	if a == b {
		t.Fatal("identical addresses")
	}
	s.Write(m, a, bytes.Repeat([]byte{0xAA}, 16))
	s.Write(m, b, bytes.Repeat([]byte{0xBB}, 16))
	buf := make([]byte, 16)
	s.Read(m, a, buf)
	if buf[0] != 0xAA {
		t.Fatal("allocation b clobbered a")
	}
}

func TestAllocNeverReturnsNil(t *testing.T) {
	s := newSpace(1 << 20)
	for i := 0; i < 100; i++ {
		if s.Alloc(Untrusted, 8) == 0 || s.Alloc(Enclave, 8) == 0 {
			t.Fatal("Alloc returned the nil address")
		}
	}
}

func TestSegmentBoundarySpanning(t *testing.T) {
	s := newSpace(1 << 20)
	m := sim.NewMeter(s.Model())
	// Allocate until just before a segment boundary, then span it.
	pad := segSize - int(s.UsedBytes(Untrusted)) - 100
	s.Alloc(Untrusted, pad)
	a := s.Alloc(Untrusted, 4096)
	want := make([]byte, 4096)
	for i := range want {
		want[i] = byte(i)
	}
	s.Write(m, a, want)
	got := make([]byte, 4096)
	s.Read(m, a, got)
	if !bytes.Equal(got, want) {
		t.Fatal("segment-spanning access corrupted data")
	}
}

func TestUnprotectedAccessCost(t *testing.T) {
	s := newSpace(1 << 20)
	c := s.Model()
	m := sim.NewMeter(c)
	a := s.Alloc(Untrusted, 64)
	s.Read(m, a, make([]byte, 8))
	if m.Cycles() != c.DRAMAccess {
		t.Fatalf("single-line untrusted read = %d cycles, want %d", m.Cycles(), c.DRAMAccess)
	}
}

func TestEnclaveResidentCostMultiplier(t *testing.T) {
	s := newSpace(1 << 20) // plenty of EPC
	c := s.Model()
	a := s.Alloc(Enclave, 64)

	// Prime residency.
	prime := sim.NewMeter(c)
	s.Read(prime, a, make([]byte, 8))
	if prime.Events(sim.CtrEPCFaultRead) != 1 {
		t.Fatalf("first touch should fault once, got %d", prime.Events(sim.CtrEPCFaultRead))
	}

	m := sim.NewMeter(c)
	s.Read(m, a, make([]byte, 8))
	want := uint64(float64(c.DRAMAccess) * c.EPCReadMult)
	if m.Cycles() != want {
		t.Fatalf("EPC-resident read = %d cycles, want %d", m.Cycles(), want)
	}
	if m.Events(sim.CtrEPCFaultRead) != 0 {
		t.Fatal("resident read must not fault")
	}

	w := sim.NewMeter(c)
	s.Write(w, a, make([]byte, 8))
	wantW := uint64(float64(c.DRAMAccess) * c.EPCWriteMult)
	if w.Cycles() != wantW {
		t.Fatalf("EPC-resident write = %d cycles, want %d", w.Cycles(), wantW)
	}
}

func TestDemandPagingBeyondEPC(t *testing.T) {
	c := sim.DefaultCostModel()
	epcPages := 16
	s := NewSpace(Config{Model: c, EPCBytes: int64(epcPages * c.PageSize)})

	// Working set of 64 pages, 4x the EPC.
	pages := 64
	base := s.Alloc(Enclave, pages*c.PageSize)

	m := sim.NewMeter(c)
	// First pass: everything faults.
	for p := 0; p < pages; p++ {
		s.Read(m, base+Addr(p*c.PageSize), make([]byte, 8))
	}
	if got := m.Events(sim.CtrEPCFaultRead); got != uint64(pages) {
		t.Fatalf("cold pass faults = %d, want %d", got, pages)
	}
	if got := s.EPCResidentPages(); got > epcPages {
		t.Fatalf("resident pages %d exceed capacity %d", got, epcPages)
	}

	// Second sequential pass over 4x working set with CLOCK: still ~all faults.
	before := m.Events(sim.CtrEPCFaultRead)
	for p := 0; p < pages; p++ {
		s.Read(m, base+Addr(p*c.PageSize), make([]byte, 8))
	}
	faults := m.Events(sim.CtrEPCFaultRead) - before
	if faults < uint64(pages)/2 {
		t.Fatalf("thrashing pass faults = %d, want most of %d", faults, pages)
	}
}

func TestSmallWorkingSetNoFaultsAfterWarmup(t *testing.T) {
	c := sim.DefaultCostModel()
	s := NewSpace(Config{Model: c, EPCBytes: int64(64 * c.PageSize)})
	base := s.Alloc(Enclave, 16*c.PageSize)
	m := sim.NewMeter(c)
	for p := 0; p < 16; p++ {
		s.Read(m, base+Addr(p*c.PageSize), make([]byte, 8))
	}
	warm := m.Events(sim.CtrEPCFaultRead)
	for i := 0; i < 100; i++ {
		p := i % 16
		s.Read(m, base+Addr(p*c.PageSize), make([]byte, 8))
	}
	if got := m.Events(sim.CtrEPCFaultRead); got != warm {
		t.Fatalf("faults after warmup: %d -> %d", warm, got)
	}
}

// TestFigure2Shape reproduces the microbenchmark of Figure 2 in miniature:
// random page touches across a growing working set. Below the EPC limit the
// enclave latency is a small constant multiple of NoSGX; beyond it, latency
// explodes by orders of magnitude; unprotected-from-enclave stays at NoSGX
// level throughout.
func TestFigure2Shape(t *testing.T) {
	c := sim.DefaultCostModel()
	epcBytes := int64(1 << 20) // scaled-down 1 MiB EPC
	s := NewSpace(Config{Model: c, EPCBytes: epcBytes})

	latency := func(region Region, wsBytes int) float64 {
		base := s.Alloc(region, wsBytes)
		if region == Enclave {
			s.ResetEPC()
		}
		rng := rand.New(rand.NewSource(42))
		pages := wsBytes / c.PageSize
		// Steady state: touch the whole working set once before measuring,
		// as the paper's microbenchmark does.
		warm := sim.NewMeter(c)
		for p := 0; p < pages; p++ {
			s.Read(warm, base+Addr(p*c.PageSize), make([]byte, 8))
		}
		m := sim.NewMeter(c)
		const accesses = 2000
		for i := 0; i < accesses; i++ {
			p := rng.Intn(pages)
			s.Read(m, base+Addr(p*c.PageSize), make([]byte, 8))
		}
		return c.Nanos(m.Cycles()) / accesses
	}

	small := int(epcBytes / 2)
	large := int(epcBytes * 16)

	noSGXSmall := latency(Untrusted, small)
	enclaveSmall := latency(Enclave, small)
	enclaveLarge := latency(Enclave, large)
	unprotLarge := latency(Untrusted, large)

	// Below EPC: enclave ≈ 5.7x NoSGX (allow warmup-fault slack).
	ratioSmall := enclaveSmall / noSGXSmall
	if ratioSmall < 3 || ratioSmall > 20 {
		t.Errorf("below-EPC enclave/NoSGX ratio = %.1f, want ~5.7", ratioSmall)
	}
	// Beyond EPC: enclave latency is orders of magnitude worse.
	ratioLarge := enclaveLarge / unprotLarge
	if ratioLarge < 100 {
		t.Errorf("beyond-EPC enclave/NoSGX ratio = %.0f, want >100 (paper: 578x)", ratioLarge)
	}
	// Unprotected stays flat regardless of working set.
	if unprotLarge > noSGXSmall*2 {
		t.Errorf("unprotected latency grew with WS: %.1f vs %.1f ns", unprotLarge, noSGXSmall)
	}
}

func TestPagingSerializationAcrossThreads(t *testing.T) {
	c := sim.DefaultCostModel()
	s := NewSpace(Config{Model: c, EPCBytes: int64(8 * c.PageSize)})
	pages := 256
	base := s.Alloc(Enclave, pages*c.PageSize)

	const threads = 4
	var wg sync.WaitGroup
	meters := make([]*sim.Meter, threads)
	for i := 0; i < threads; i++ {
		meters[i] = sim.NewMeter(c)
		wg.Add(1)
		go func(id int, m *sim.Meter) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(id)))
			for j := 0; j < 200; j++ {
				p := rng.Intn(pages)
				s.Read(m, base+Addr(p*c.PageSize), make([]byte, 8))
			}
		}(i, meters[i])
	}
	wg.Wait()

	// The kernel-side share of every fault is serialized machine-wide, so
	// the slowest thread's virtual time must cover at least the summed
	// serial portions — adding threads cannot add kernel-path throughput.
	var totalFaults uint64
	var maxCycles uint64
	for _, m := range meters {
		totalFaults += m.Events(sim.CtrEPCFaultRead)
		if m.Cycles() > maxCycles {
			maxCycles = m.Cycles()
		}
	}
	serializedFloor := uint64(float64(totalFaults*c.PageFaultRead) * c.PageFaultSerialFraction)
	if maxCycles < serializedFloor {
		t.Fatalf("max thread time %d < serialized paging floor %d: faults ran fully parallel", maxCycles, serializedFloor)
	}
}

func TestTamper(t *testing.T) {
	s := newSpace(1 << 20)
	m := sim.NewMeter(s.Model())
	u := s.Alloc(Untrusted, 16)
	s.Write(m, u, bytes.Repeat([]byte{1}, 16))
	s.Tamper(u, []byte{0xFF})
	got := make([]byte, 1)
	s.Read(m, u, got)
	if got[0] != 0xFF {
		t.Fatal("Tamper did not modify untrusted memory")
	}

	e := s.Alloc(Enclave, 16)
	defer func() {
		if recover() == nil {
			t.Fatal("Tamper on enclave memory must panic")
		}
	}()
	s.Tamper(e, []byte{1})
}

func TestPeekFree(t *testing.T) {
	s := newSpace(1 << 20)
	m := sim.NewMeter(s.Model())
	a := s.Alloc(Untrusted, 8)
	s.Write(m, a, []byte{1, 2, 3, 4, 5, 6, 7, 8})
	before := m.Cycles()
	buf := make([]byte, 8)
	s.Peek(a, buf)
	if m.Cycles() != before {
		t.Fatal("Peek charged cycles")
	}
	if !bytes.Equal(buf, []byte{1, 2, 3, 4, 5, 6, 7, 8}) {
		t.Fatal("Peek returned wrong data")
	}
}

func TestNilDereferencePanics(t *testing.T) {
	s := newSpace(1 << 20)
	m := sim.NewMeter(s.Model())
	defer func() {
		if recover() == nil {
			t.Fatal("nil dereference must panic")
		}
	}()
	s.Read(m, 0, make([]byte, 1))
}

func TestResetEPC(t *testing.T) {
	c := sim.DefaultCostModel()
	s := NewSpace(Config{Model: c, EPCBytes: int64(64 * c.PageSize)})
	a := s.Alloc(Enclave, 4*c.PageSize)
	m := sim.NewMeter(c)
	s.Read(m, a, make([]byte, 8))
	if s.EPCResidentPages() == 0 {
		t.Fatal("no pages resident after access")
	}
	s.ResetEPC()
	if s.EPCResidentPages() != 0 {
		t.Fatal("ResetEPC left pages resident")
	}
	before := m.Events(sim.CtrEPCFaultRead)
	s.Read(m, a, make([]byte, 8))
	if m.Events(sim.CtrEPCFaultRead) != before+1 {
		t.Fatal("access after ResetEPC must fault")
	}
}

func TestMultilineReadCheaperThanLoop(t *testing.T) {
	s := newSpace(1 << 20)
	c := s.Model()
	a := s.Alloc(Untrusted, 4096)

	bulk := sim.NewMeter(c)
	s.Read(bulk, a, make([]byte, 4096))

	loop := sim.NewMeter(c)
	for i := 0; i < 4096; i += 64 {
		s.Read(loop, a+Addr(i), make([]byte, 64))
	}
	if bulk.Cycles() >= loop.Cycles() {
		t.Fatalf("bulk read %d !< looped read %d: streaming discount missing", bulk.Cycles(), loop.Cycles())
	}
}

// Property: round trips preserve arbitrary data at arbitrary offsets.
func TestRoundTripProperty(t *testing.T) {
	s := newSpace(1 << 20)
	m := sim.NewMeter(s.Model())
	f := func(data []byte, pad uint16) bool {
		if len(data) == 0 {
			return true
		}
		s.Alloc(Untrusted, int(pad)%1000+1)
		a := s.Alloc(Untrusted, len(data))
		s.Write(m, a, data)
		got := make([]byte, len(data))
		s.Read(m, a, got)
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

// Property: EPC resident count never exceeds capacity.
func TestEPCCapacityInvariant(t *testing.T) {
	c := sim.DefaultCostModel()
	s := NewSpace(Config{Model: c, EPCBytes: int64(8 * c.PageSize)})
	base := s.Alloc(Enclave, 128*c.PageSize)
	m := sim.NewMeter(c)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 3000; i++ {
		p := rng.Intn(128)
		s.Read(m, base+Addr(p*c.PageSize), make([]byte, 8))
		if got := s.EPCResidentPages(); got > s.EPCCapacityPages() {
			t.Fatalf("resident %d > capacity %d at step %d", got, s.EPCCapacityPages(), i)
		}
	}
}

func BenchmarkUntrustedRead64(b *testing.B) {
	s := newSpace(1 << 20)
	m := sim.NewMeter(s.Model())
	a := s.Alloc(Untrusted, 64)
	buf := make([]byte, 64)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s.Read(m, a, buf)
	}
}

func BenchmarkEnclaveReadResident(b *testing.B) {
	s := newSpace(1 << 24)
	m := sim.NewMeter(s.Model())
	a := s.Alloc(Enclave, 64)
	buf := make([]byte, 64)
	s.Read(m, a, buf)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Read(m, a, buf)
	}
}

func TestBulkReadWriteRoundTrip(t *testing.T) {
	s := newSpace(1 << 20)
	m := sim.NewMeter(s.Model())
	for _, r := range []Region{Enclave, Untrusted} {
		a := s.Alloc(r, 8192)
		want := make([]byte, 8192)
		for i := range want {
			want[i] = byte(i * 3)
		}
		s.BulkWrite(m, a, want)
		got := make([]byte, 8192)
		s.BulkRead(m, a, got)
		if !bytes.Equal(got, want) {
			t.Fatalf("%v bulk round trip failed", r)
		}
	}
}

func TestBulkCheaperThanPerLine(t *testing.T) {
	s := newSpace(1 << 24)
	c := s.Model()
	a := s.Alloc(Enclave, 4096)
	warm := sim.NewMeter(c)
	s.Read(warm, a, make([]byte, 4096))

	bulk := sim.NewMeter(c)
	s.BulkRead(bulk, a, make([]byte, 4096))
	perLine := sim.NewMeter(c)
	s.Read(perLine, a, make([]byte, 4096))
	if bulk.Cycles() >= perLine.Cycles() {
		t.Fatalf("bulk enclave read %d !< per-line read %d", bulk.Cycles(), perLine.Cycles())
	}
	// Bulk accesses still touch EPC pages: beyond-EPC bulk reads fault.
	tiny := NewSpace(Config{Model: c, EPCBytes: int64(4 * c.PageSize)})
	big := tiny.Alloc(Enclave, 64*c.PageSize)
	m := sim.NewMeter(c)
	tiny.BulkRead(m, big, make([]byte, 64*c.PageSize))
	if m.Events(sim.CtrEPCFaultRead) == 0 {
		t.Fatal("bulk read bypassed EPC accounting")
	}
}

func TestBulkZeroLenFree(t *testing.T) {
	s := newSpace(1 << 20)
	m := sim.NewMeter(s.Model())
	a := s.Alloc(Untrusted, 8)
	s.BulkRead(m, a, nil)
	s.BulkWrite(m, a, nil)
	if m.Cycles() != 0 {
		t.Fatal("zero-length bulk access charged cycles")
	}
}

func TestEPCBitmapGrowth(t *testing.T) {
	// Touch an enclave page far beyond the initial bitmap coverage
	// (1<<20 pages = 4 GiB) to exercise the ensure() growth path.
	c := sim.DefaultCostModel()
	s := NewSpace(Config{Model: c, EPCBytes: int64(64 * c.PageSize)})
	a := s.Alloc(Enclave, 5<<30) // 5 GiB reservation
	m := sim.NewMeter(c)
	far := a + Addr(5<<30-c.PageSize)
	s.Read(m, far, make([]byte, 8))
	if m.Events(sim.CtrEPCFaultRead) != 1 {
		t.Fatalf("far page fault count = %d", m.Events(sim.CtrEPCFaultRead))
	}
	// And it is now resident.
	before := m.Events(sim.CtrEPCFaultRead)
	s.Read(m, far, make([]byte, 8))
	if m.Events(sim.CtrEPCFaultRead) != before {
		t.Fatal("far page not resident after fault")
	}
}

func TestWildAddressPanics(t *testing.T) {
	s := newSpace(1 << 20)
	m := sim.NewMeter(s.Model())
	defer func() {
		if recover() == nil {
			t.Fatal("wild address must panic")
		}
	}()
	s.Read(m, Addr(12345), make([]byte, 1)) // below EnclaveBase
}

func TestRegionExhaustionPanics(t *testing.T) {
	s := newSpace(1 << 20)
	defer func() {
		if recover() == nil {
			t.Fatal("region exhaustion must panic")
		}
	}()
	for i := 0; i < 70; i++ {
		s.Alloc(Untrusted, 1<<30) // 70 GiB total > 64 GiB cap
	}
}
