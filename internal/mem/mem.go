// Package mem implements the simulated physical memory of the ShieldStore
// SGX testbed: a flat address space split into an enclave region and an
// unprotected region.
//
// All data structures of every simulated key-value store live inside this
// address space and are manipulated exclusively through Read/Write calls
// that charge virtual cycles to a sim.Meter, exactly like a storage engine
// working over mmap. The enclave region carries an EPC residency model:
// once the enclave's working set exceeds the effective EPC capacity, page
// touches trigger demand paging whose cost (asynchronous exit, page
// re-encryption, kernel work) is charged through a machine-wide serialized
// paging clock — reproducing both the latency cliffs of Figure 2 and the
// multicore scalability collapse of Figure 13.
//
// The unprotected region is ordinary DRAM: accesses from enclave code cost
// the same as NoSGX accesses (Figure 2, SGX_Unprotected), which is the
// observation ShieldStore's design is built on.
//
// Writes into this space are host-visible unless the target is the enclave
// region, so the write entry points carry //ss:sink: shieldvet requires
// every caller outside this package to be audited as //ss:seals (bytes are
// sealed/MACed/non-secret) or //ss:enclave-write (target is EPC-backed).
//
//ss:untrusted
package mem

import (
	"fmt"
	"sync"
	"sync/atomic"

	"shieldstore/internal/sim"
)

// Region identifies one of the two simulated memory regions.
type Region uint8

const (
	// Enclave is EPC-backed protected memory. Only enclave code may touch
	// it; capacity beyond the EPC limit is demand-paged.
	Enclave Region = iota
	// Untrusted is ordinary unprotected DRAM.
	Untrusted
)

// String implements fmt.Stringer.
func (r Region) String() string {
	switch r {
	case Enclave:
		return "enclave"
	case Untrusted:
		return "untrusted"
	default:
		return fmt.Sprintf("region(%d)", uint8(r))
	}
}

// Addr is a simulated virtual address. The zero Addr is the null pointer.
// The enclave region occupies [EnclaveBase, UntrustedBase) and the
// untrusted region starts at UntrustedBase; the enclave virtual address
// range is contiguous, so the §7 untrusted-pointer check is a single range
// comparison, as in the paper.
type Addr uint64

const (
	// EnclaveBase is the first enclave address.
	EnclaveBase Addr = 1 << 40
	// UntrustedBase is the first untrusted address.
	UntrustedBase Addr = 1 << 44
)

const (
	segShift = 20 // 1 MiB backing segments
	segSize  = 1 << segShift
	segMask  = segSize - 1
	maxSegs  = 1 << 16 // 64 GiB per region

	lineShift = 6 // 64 B cachelines
)

// regionStore is an append-only segmented byte arena. Allocation uses an
// atomic bump pointer; segments materialize lazily. Reads and writes to
// disjoint allocations are race-free, mirroring real memory.
type regionStore struct {
	base Addr
	next atomic.Uint64 // bump offset; starts past 0 so Addr 0 is never handed out
	segs [maxSegs]atomic.Pointer[[segSize]byte]
}

func (rs *regionStore) init(base Addr) {
	rs.base = base
	rs.next.Store(64) // keep a guard gap so base+0 is never a valid object
}

//ss:nopanic-ok(simulated OOM: address-space exhaustion is a machine fault, not attacker input)
func (rs *regionStore) alloc(n int) Addr {
	if n <= 0 {
		n = 1
	}
	// Round to 8 bytes for pointer-aligned layouts.
	n = (n + 7) &^ 7
	off := rs.next.Add(uint64(n)) - uint64(n)
	end := off + uint64(n)
	if end > maxSegs*segSize {
		panic(fmt.Sprintf("mem: %s region exhausted (%d bytes)", regionOf(rs.base), end))
	}
	return rs.base + Addr(off)
}

func (rs *regionStore) used() int64 {
	return int64(rs.next.Load())
}

//ss:nopanic-ok(simulated hardware fault: enclave code sanitizes pointers via CheckUntrusted/InAllocated first)
func (rs *regionStore) slice(off uint64, n int) []byte {
	if off >= rs.next.Load() {
		panic(fmt.Sprintf("mem: access beyond allocation high-water mark at offset %#x", off))
	}
	// Segments materialize lazily on first touch, so sparse multi-GB
	// reservations (e.g. Figure 17's 8 GB working sets) cost nothing
	// until used.
	seg := rs.segs[off>>segShift].Load()
	if seg == nil {
		rs.segs[off>>segShift].CompareAndSwap(nil, new([segSize]byte))
		seg = rs.segs[off>>segShift].Load()
	}
	in := off & segMask
	avail := segSize - in
	if uint64(n) < avail {
		avail = uint64(n)
	}
	return seg[in : in+avail]
}

func regionOf(base Addr) Region {
	if base == EnclaveBase {
		return Enclave
	}
	return Untrusted
}

// Config parameterizes a Space.
type Config struct {
	// Model is the cost model; defaults to sim.DefaultCostModel().
	Model *sim.CostModel
	// EPCBytes overrides Model.EPCBytes when nonzero.
	EPCBytes int64
}

// Space is one simulated machine's memory.
type Space struct {
	model *sim.CostModel

	enclave   regionStore
	untrusted regionStore

	epc epcState

	// pagingClock serializes demand paging machine-wide, the way the
	// kernel's EPC management does on real hardware. This is what stops
	// the naive baseline from scaling past two threads (Figure 13).
	pagingClock sim.SharedClock
}

// NewSpace creates a memory space under the given configuration.
func NewSpace(cfg Config) *Space {
	model := cfg.Model
	if model == nil {
		model = sim.DefaultCostModel()
	}
	epcBytes := cfg.EPCBytes
	if epcBytes == 0 {
		epcBytes = model.EPCBytes
	}
	s := &Space{model: model}
	s.enclave.init(EnclaveBase)
	s.untrusted.init(UntrustedBase)
	s.epc.init(int(epcBytes / int64(model.PageSize)))
	return s
}

// Model returns the cost model the space charges against.
func (s *Space) Model() *sim.CostModel { return s.model }

// RegionOf reports which region an address belongs to.
func RegionOf(a Addr) Region {
	if a >= UntrustedBase {
		return Untrusted
	}
	return Enclave
}

// InEnclave reports whether a (non-nil) address points into the enclave's
// contiguous virtual range.
func InEnclave(a Addr) bool {
	return a >= EnclaveBase && a < UntrustedBase
}

// CheckUntrusted implements the §7 pointer sanitization: enclave code must
// verify that a pointer read from untrusted memory does not alias enclave
// memory before dereferencing it, or a malicious host could trick the
// enclave into overwriting its own critical data.
func CheckUntrusted(a Addr) error {
	if a != 0 && InEnclave(a) {
		return fmt.Errorf("mem: untrusted pointer %#x aliases enclave range", uint64(a))
	}
	return nil
}

// InAllocated reports whether [a, a+n) lies entirely inside memory that
// has been handed out by Alloc. Enclave code uses this to sanitize
// untrusted pointers beyond the §7 range check: a pointer into unmapped
// host memory would fault the process — an availability attack the
// enclave can refuse by knowing its own heap bounds.
func (s *Space) InAllocated(a Addr, n int) bool {
	if a == 0 || n < 0 {
		return false
	}
	rs, off := s.storeNoPanic(a)
	if rs == nil {
		return false
	}
	return off+uint64(n) <= rs.next.Load()
}

func (s *Space) storeNoPanic(a Addr) (*regionStore, uint64) {
	switch {
	case a >= UntrustedBase:
		return &s.untrusted, uint64(a - UntrustedBase)
	case a >= EnclaveBase:
		return &s.enclave, uint64(a - EnclaveBase)
	default:
		return nil, 0
	}
}

// Alloc reserves n bytes in the given region and returns the address.
// Allocation itself is free of virtual cost: the simulated allocators
// layered above (the in-enclave heap and the extra untrusted heap) charge
// their own management and OCALL costs.
func (s *Space) Alloc(r Region, n int) Addr {
	if r == Enclave {
		return s.enclave.alloc(n)
	}
	return s.untrusted.alloc(n)
}

// UsedBytes reports the high-water allocation mark of a region.
func (s *Space) UsedBytes(r Region) int64 {
	if r == Enclave {
		return s.enclave.used()
	}
	return s.untrusted.used()
}

// store returns the backing store and offset for an address span.
//
//ss:nopanic-ok(simulated hardware fault: a wild address is a bug in the simulator's caller, not reachable via sanitized pointers)
func (s *Space) store(a Addr) (*regionStore, uint64) {
	if a == 0 {
		panic("mem: nil dereference")
	}
	if a >= UntrustedBase {
		return &s.untrusted, uint64(a - UntrustedBase)
	}
	if a >= EnclaveBase {
		return &s.enclave, uint64(a - EnclaveBase)
	}
	panic(fmt.Sprintf("mem: wild address %#x", uint64(a)))
}

// Read copies len(buf) bytes at address a into buf, charging access costs.
func (s *Space) Read(m *sim.Meter, a Addr, buf []byte) {
	s.access(m, a, len(buf), false)
	s.copyOut(a, buf)
}

// Write copies src into memory at address a, charging access costs.
//
//ss:sink
func (s *Space) Write(m *sim.Meter, a Addr, src []byte) {
	s.access(m, a, len(src), true)
	s.copyIn(a, src)
}

// ReadU64 reads a little-endian uint64 (used for pointers and headers).
func (s *Space) ReadU64(m *sim.Meter, a Addr) uint64 {
	var b [8]byte
	s.Read(m, a, b[:])
	return leU64(b[:])
}

// WriteU64 writes a little-endian uint64.
func (s *Space) WriteU64(m *sim.Meter, a Addr, v uint64) {
	var b [8]byte
	putLeU64(b[:], v)
	s.Write(m, a, b[:])
}

// BulkRead copies a large span with streaming (DMA-like) cost accounting:
// one random access to reach the span plus a per-byte copy charge, instead
// of per-cacheline random-access rates. Enclave pages are still touched
// for EPC residency. Use for whole-page moves and snapshot streaming.
func (s *Space) BulkRead(m *sim.Meter, a Addr, buf []byte) {
	s.bulkAccess(m, a, len(buf), false)
	s.copyOut(a, buf)
}

// BulkWrite is the write-side counterpart of BulkRead.
//
//ss:sink
func (s *Space) BulkWrite(m *sim.Meter, a Addr, src []byte) {
	s.bulkAccess(m, a, len(src), true)
	s.copyIn(a, src)
}

func (s *Space) bulkAccess(m *sim.Meter, a Addr, n int, write bool) {
	if n <= 0 {
		return
	}
	if a == 0 {
		panic("mem: nil dereference")
	}
	if a < EnclaveBase {
		panic(fmt.Sprintf("mem: wild address %#x", uint64(a)))
	}
	c := s.model
	first := c.DRAMAccess
	if RegionOf(a) == Enclave {
		mult := c.EPCReadMult
		if write {
			mult = c.EPCWriteMult
		}
		first = uint64(float64(c.DRAMAccess) * mult)
	}
	m.Charge(first + c.MemCopy(n))
	if RegionOf(a) == Enclave {
		s.touchEnclavePages(m, a, n, write)
	}
}

// Peek reads memory without charging any cost. It exists for tests and for
// the snapshot writer, which streams ciphertext with an explicitly modeled
// bulk-copy cost instead of per-cacheline accounting.
func (s *Space) Peek(a Addr, buf []byte) { s.copyOut(a, buf) }

// Tamper overwrites untrusted memory without any cost accounting,
// simulating a malicious host OS modifying ShieldStore's exposed data
// structures. Tampering with the enclave region is impossible on SGX
// hardware and panics here.
//
//ss:sink
//ss:nopanic-ok(tampering enclave memory is impossible on hardware; the panic enforces the simulation's physics)
func (s *Space) Tamper(a Addr, src []byte) {
	if RegionOf(a) == Enclave {
		panic("mem: SGX hardware forbids host writes to enclave memory")
	}
	s.copyIn(a, src)
}

func (s *Space) copyOut(a Addr, buf []byte) {
	rs, off := s.store(a)
	for len(buf) > 0 {
		chunk := rs.slice(off, len(buf))
		n := copy(buf, chunk)
		buf = buf[n:]
		off += uint64(n)
	}
}

func (s *Space) copyIn(a Addr, src []byte) {
	rs, off := s.store(a)
	for len(src) > 0 {
		chunk := rs.slice(off, len(src))
		n := copy(chunk, src[:len(chunk)])
		src = src[n:]
		off += uint64(n)
	}
}

// access charges the virtual cost of touching [a, a+n) and drives the EPC
// residency machinery for enclave addresses.
//
//ss:nopanic-ok(simulated hardware fault behind the CheckUntrusted/InAllocated sanitizers)
func (s *Space) access(m *sim.Meter, a Addr, n int, write bool) {
	if n <= 0 {
		return
	}
	if a == 0 {
		panic("mem: nil dereference")
	}
	if a < EnclaveBase {
		panic(fmt.Sprintf("mem: wild address %#x", uint64(a)))
	}
	c := s.model
	region := RegionOf(a)

	// Cacheline accounting: the first line of an access pays a full
	// random-access charge; the remainder streams at prefetch cost.
	firstLine := uint64(a) >> lineShift
	lastLine := (uint64(a) + uint64(n) - 1) >> lineShift
	lines := lastLine - firstLine + 1

	var first, stream uint64
	switch region {
	case Untrusted:
		first = c.DRAMAccess
		stream = c.DRAMAccess / 6
	case Enclave:
		mult := c.EPCReadMult
		if write {
			mult = c.EPCWriteMult
		}
		first = uint64(float64(c.DRAMAccess) * mult)
		// The MEE's latency penalty applies to the random access; its
		// *streaming* bandwidth is only ~2x below plain DRAM, so
		// sequential lines are charged close to the untrusted stream
		// rate rather than the full multiplier.
		stream = c.DRAMAccess / 3
	}
	m.Charge(first + (lines-1)*stream)

	if region == Enclave {
		s.touchEnclavePages(m, a, n, write)
	}
}

// touchEnclavePages walks the pages an access spans and resolves faults.
func (s *Space) touchEnclavePages(m *sim.Meter, a Addr, n int, write bool) {
	pageShift := pageShiftFor(s.model.PageSize)
	firstPage := (uint64(a) - uint64(EnclaveBase)) >> pageShift
	lastPage := (uint64(a) + uint64(n) - 1 - uint64(EnclaveBase)) >> pageShift
	for p := firstPage; p <= lastPage; p++ {
		if s.epc.touch(uint32(p)) {
			continue // resident: MEE cost already charged by access()
		}
		// Demand paging: the kernel's EPC management section is serialized
		// machine-wide; the page crypto (EWB/ELDU) runs on the faulting
		// thread.
		cost := s.model.PageFaultRead
		ctr := sim.CtrEPCFaultRead
		if write {
			cost = s.model.PageFaultWrite
			ctr = sim.CtrEPCFaultWrite
		}
		serial := uint64(float64(cost) * s.model.PageFaultSerialFraction)
		s.pagingClock.Acquire(m, serial)
		m.Charge(cost - serial)
		m.Count(ctr)
		s.epc.admit(uint32(p))
	}
}

// PagingClock exposes the machine-wide paging serializer (used by tests).
func (s *Space) PagingClock() *sim.SharedClock { return &s.pagingClock }

// ResetPagingClock rewinds the paging serializer to virtual time zero.
// Benchmark harnesses call this between a preload phase (whose meters are
// discarded) and a measurement phase (whose meters restart at zero), so
// the serializer's timeline matches the measurement meters.
func (s *Space) ResetPagingClock() { s.pagingClock.Reset() }

// EPCCapacityPages reports the EPC capacity in pages.
func (s *Space) EPCCapacityPages() int { return s.epc.capacity }

// EPCResidentPages reports how many enclave pages are currently resident.
func (s *Space) EPCResidentPages() int { return int(s.epc.resident.Load()) }

// ResetEPC evicts every page (e.g. between benchmark phases).
func (s *Space) ResetEPC() { s.epc.reset() }

func pageShiftFor(pageSize int) uint {
	switch pageSize {
	case 4096:
		return 12
	case 2048:
		return 11
	case 1024:
		return 10
	default:
		// Fall back to computing the shift; page sizes are powers of two.
		sh := uint(0)
		for 1<<sh < pageSize {
			sh++
		}
		return sh
	}
}

// epcState tracks which enclave pages are EPC-resident using an atomic
// residency bitmap plus an aging CLOCK: each resident page carries a small
// reference counter that touches saturate and the clock hand decays, so
// frequently-reused pages (e.g. a naive store's bucket-head array) survive
// floods of cold pages — the behaviour of the kernel's LRU approximation.
// Hit checks are lock-free; only faults take the kernel mutex, matching
// the asymmetry of real hardware.
type epcState struct {
	capacity int
	resident atomic.Int64

	mu       sync.Mutex
	bits     []atomic.Uint64 // residency bitmap
	refs     []atomic.Uint32 // per-page aging counters (0..refMax)
	hand     uint32
	maxPage  uint32 // highest page index ever touched (clock scan bound)
	bitWords int
}

// refMax is the saturation level of the aging counter: a page must go
// refMax full clock sweeps without a touch before becoming a victim.
const refMax = 3

func (e *epcState) init(capacityPages int) {
	if capacityPages < 4 {
		capacityPages = 4
	}
	e.capacity = capacityPages
	e.bitWords = 1 << 14 // covers 2^20 pages = 4 GiB; grows on demand
	e.bits = make([]atomic.Uint64, e.bitWords)
	e.refs = make([]atomic.Uint32, e.bitWords*64)
}

func (e *epcState) ensure(page uint32) {
	w := int(page >> 6)
	if w < len(e.bits) {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if w < len(e.bits) {
		return
	}
	n := len(e.bits)
	for n <= w {
		n *= 2
	}
	nb := make([]atomic.Uint64, n)
	nr := make([]atomic.Uint32, n*64)
	for i := range e.bits {
		nb[i].Store(e.bits[i].Load())
	}
	for i := range e.refs {
		nr[i].Store(e.refs[i].Load())
	}
	e.bits = nb
	e.refs = nr
}

// touch returns true when the page is resident, refreshing its age.
func (e *epcState) touch(page uint32) bool {
	e.ensure(page)
	w, b := page>>6, uint64(1)<<(page&63)
	if e.bits[w].Load()&b != 0 {
		e.refs[page].Store(refMax)
		return true
	}
	return false
}

// admit makes a page resident, evicting victims if the EPC is full.
func (e *epcState) admit(page uint32) {
	e.ensure(page)
	e.mu.Lock()
	defer e.mu.Unlock()
	w, b := page>>6, uint64(1)<<(page&63)
	if e.bits[w].Load()&b != 0 {
		return // raced with another faulting thread; already resident
	}
	if page > e.maxPage {
		e.maxPage = page
	}
	for e.resident.Load() >= int64(e.capacity) {
		e.evictOne()
	}
	e.bits[w].Or(b)
	e.refs[page].Store(1) // new pages start cool: scan-resistant
	e.resident.Add(1)
}

// evictOne runs the aging CLOCK hand: decay counters until a page at age
// zero is found, then evict it. Called with mu held.
func (e *epcState) evictOne() {
	span := e.maxPage + 1
	for i := uint32(0); i < (refMax+2)*span+64; i++ {
		p := e.hand
		e.hand++
		if e.hand >= span {
			e.hand = 0
		}
		w, b := p>>6, uint64(1)<<(p&63)
		if e.bits[w].Load()&b == 0 {
			continue
		}
		if c := e.refs[p].Load(); c > 0 {
			e.refs[p].Store(c - 1) // age
			continue
		}
		e.bits[w].And(^b)
		e.resident.Add(-1)
		return
	}
	// Pathological: everything pinned at max age; drop the first page.
	for p := uint32(0); p < span; p++ {
		w, b := p>>6, uint64(1)<<(p&63)
		if e.bits[w].Load()&b != 0 {
			e.bits[w].And(^b)
			e.resident.Add(-1)
			return
		}
	}
}

func (e *epcState) reset() {
	e.mu.Lock()
	defer e.mu.Unlock()
	for i := range e.bits {
		e.bits[i].Store(0)
	}
	for i := range e.refs {
		e.refs[i].Store(0)
	}
	e.resident.Store(0)
	e.hand = 0
}

func leU64(b []byte) uint64 {
	return uint64(b[0]) | uint64(b[1])<<8 | uint64(b[2])<<16 | uint64(b[3])<<24 |
		uint64(b[4])<<32 | uint64(b[5])<<40 | uint64(b[6])<<48 | uint64(b[7])<<56
}

func putLeU64(b []byte, v uint64) {
	b[0] = byte(v)
	b[1] = byte(v >> 8)
	b[2] = byte(v >> 16)
	b[3] = byte(v >> 24)
	b[4] = byte(v >> 32)
	b[5] = byte(v >> 40)
	b[6] = byte(v >> 48)
	b[7] = byte(v >> 56)
}
